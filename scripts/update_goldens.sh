#!/usr/bin/env bash
# Regenerates the golden RunReports in tests/golden/ after an intentional
# behavioral change. Builds the golden test and reruns it in update mode,
# then shows what moved; review and commit the diff like any other change.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target golden_report_test

FABACUS_UPDATE_GOLDENS=1 "$BUILD_DIR/tests/golden_report_test"

echo
echo "Updated goldens:"
git -c color.status=always status --short tests/golden/ || true
echo "Review with: git diff tests/golden/"
