#!/usr/bin/env bash
# Builds everything, runs the full test suite (plain and under ASan/UBSan),
# then regenerates every paper table/figure plus the ablations. Outputs land
# in test_output.txt and bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

# Fast pass first (fail fast on the cheap tests), then the slow-labelled
# long-runners (fuzzers, crash-recovery sweeps) separately so their runtime
# is visible on its own line.
ctest --test-dir build -LE slow 2>&1 | tee test_output.txt
ctest --test-dir build -L slow 2>&1 | tee -a test_output.txt

# Sanitizer pass: the whole suite — slow tests included, since memory bugs
# love to hide in the long fault/fuzz runs — under ASan + UBSan with -Werror.
cmake -B build-asan -G Ninja -DFABACUS_SANITIZE=ON -DFABACUS_WERROR=ON
cmake --build build-asan
ctest --test-dir build-asan 2>&1 | tee test_asan_output.txt

{
  for b in build/bench/bench_*; do
    echo
    echo "##### $b"
    "$b"
  done
} 2>&1 | tee bench_output.txt
