#!/usr/bin/env bash
# Builds everything, runs the full test suite (plain and under ASan/UBSan),
# regenerates every paper table/figure plus the ablations, then runs the
# engine perf gate. Outputs land at the repository root:
#   test_output.txt / test_asan_output.txt  — ctest logs
#   bench_output.txt                        — human-readable bench tables
#   perf_output.txt                         — bench_micro_engine report
#   bench_json/<bench>.json                 — per-bench machine-readable rows
#   BENCH_perf.json                         — consolidated benches + PERF metrics
#
# Knobs:
#   FABACUS_SWEEP_THREADS       sweep-pool width (default: hardware threads;
#                               set 1 to force serial execution)
#   FABACUS_MIN_EVENTS_PER_SEC  perf-gate floor for the calendar engine's
#                               churn throughput (default below; set 0 to
#                               disable the gate on slow machines)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

# Fast pass first (fail fast on the cheap tests), then the slow-labelled
# long-runners (fuzzers, crash-recovery sweeps) separately so their runtime
# is visible on its own line.
ctest --test-dir build -LE slow 2>&1 | tee test_output.txt
ctest --test-dir build -L slow 2>&1 | tee -a test_output.txt

# Sanitizer pass: the whole suite — slow tests included, since memory bugs
# love to hide in the long fault/fuzz runs — under ASan + UBSan with -Werror.
# RelWithDebInfo (-O2 -g), not the Release default: sanitizer reports need
# line info, and GCC's -O3 inliner trips false-positive stringop warnings
# under -Werror.
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFABACUS_SANITIZE=ON -DFABACUS_WERROR=ON
cmake --build build-asan
ctest --test-dir build-asan 2>&1 | tee test_asan_output.txt

# Bench pass: every figure/table/ablation bench, with machine-readable JSON
# collected per bench (see BenchJson in bench/bench_util.h).
BENCH_JSON_DIR="$PWD/bench_json"
rm -rf "$BENCH_JSON_DIR"
mkdir -p "$BENCH_JSON_DIR"
{
  for b in build/bench/bench_*; do
    echo
    echo "##### $b"
    FABACUS_BENCH_JSON_DIR="$BENCH_JSON_DIR" "$b"
  done
} 2>&1 | tee bench_output.txt

# Snapshot pass (docs/SNAPSHOT.md): snapshot_ctl's resume-and-run gate on the
# Small() preset — segmented-vs-unbroken byte identity, then inspect/diff/
# resume-run over the snapshot it leaves behind.
SNAP_DIR="$PWD/build/snapshot_smoke"
rm -rf "$SNAP_DIR"
mkdir -p "$SNAP_DIR"
./build/tools/snapshot_ctl run-demo --out="$SNAP_DIR"
./build/tools/snapshot_ctl inspect "$SNAP_DIR/demo_device.snap" >/dev/null
./build/tools/snapshot_ctl diff "$SNAP_DIR/demo_device.snap" "$SNAP_DIR/demo_device.snap"
./build/tools/snapshot_ctl resume-run "$SNAP_DIR/demo_device.snap"

# Perf pass: the engine micro-benchmark gates on a minimum events/sec for the
# production (calendar + EventFn) engine and on heap/calendar A/B equality.
# The default floor is ~1/4 of a release-build laptop core's measured rate —
# loose enough for CI noise, tight enough to catch an accidental O(log n) or
# per-event-allocation regression. See docs/PERFORMANCE.md.
: "${FABACUS_MIN_EVENTS_PER_SEC:=4000000}"
export FABACUS_MIN_EVENTS_PER_SEC
# The conservative-PDES pass additionally gates on the 4-thread shard-churn
# speedup (the bench skips this floor by itself on machines with fewer than
# 4 hardware threads) and, unconditionally, on PDES-vs-sequential report
# identity. See docs/PERFORMANCE.md, "Parallel DES".
: "${FABACUS_MIN_PDES_SPEEDUP:=2.0}"
export FABACUS_MIN_PDES_SPEEDUP
./build/bench/bench_micro_engine 2>&1 | tee perf_output.txt

# Consolidate: one BENCH_perf.json holding every bench's JSON plus the PERF
# metric lines from the perf pass.
{
  printf '{"schema_version": 1, "benches": ['
  first=1
  for f in "$BENCH_JSON_DIR"/*.json; do
    [ -e "$f" ] || continue
    if [ "$first" -eq 0 ]; then printf ','; fi
    first=0
    cat "$f"
  done
  printf '], "perf": ['
  first=1
  while read -r _ metric label value; do
    if [ "$first" -eq 0 ]; then printf ','; fi
    first=0
    printf '{"metric": "%s", "label": "%s", "value": %s}' "$metric" "$label" "$value"
  done < <(grep '^PERF ' perf_output.txt || true)
  printf ']}\n'
} > BENCH_perf.json
echo "wrote BENCH_perf.json"
