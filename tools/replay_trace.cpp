// Replays an I/O trace file against a fresh FlashAbacus FTL and prints
// device-level latency statistics (the blktrace-style analysis of §5,
// "Profile methods", pointed at our own device).
//
//   $ ./build/tools/replay_trace trace.txt
//   $ ./build/tools/replay_trace --synth 2000 0.3    # n requests, write frac
//
// Trace format: "<issue_us> <R|W> <byte_addr> <bytes>" per line, '#' comments.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/host/io_trace.h"
#include "src/mem/dram.h"
#include "src/mem/scratchpad.h"

int main(int argc, char** argv) {
  using namespace fabacus;
  if (argc < 2) {
    std::fprintf(stderr, "usage: replay_trace <trace-file> | --synth <n> <write_frac>\n");
    return 1;
  }

  std::vector<IoTraceEntry> entries;
  NandConfig nand;  // full Table-1 geometry
  if (std::string(argv[1]) == "--synth") {
    const int n = argc > 2 ? std::atoi(argv[2]) : 2000;
    const double wf = argc > 3 ? std::atof(argv[3]) : 0.3;
    entries = SynthesizeIoTrace(n, nand.GroupBytes(), wf, 1ULL << 30, 100 * kUs, 42);
    std::printf("synthesized %d requests (%.0f%% writes)\n", n, wf * 100.0);
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    std::string error;
    if (!ParseIoTrace(ss.str(), &entries, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("parsed %zu requests from %s\n", entries.size(), argv[1]);
  }
  if (entries.empty()) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }

  Simulator sim;
  FlashBackbone backbone(nand);
  Dram dram{DramConfig{}};
  Scratchpad scratchpad{ScratchpadConfig{}};
  Flashvisor fv(&sim, &backbone, &dram, &scratchpad);

  const IoReplayResult r = ReplayIoTrace(&sim, &fv, entries);
  std::printf("\nmakespan: %.3f ms\n", TicksToMs(r.makespan));
  std::printf("reads:  %6llu (%8.1f MB)", static_cast<unsigned long long>(r.reads),
              r.read_mb);
  if (r.reads > 0) {
    std::printf("  lat us: avg %8.1f p99 %8.1f max %8.1f",
                r.read_latency_us.Mean(), r.read_latency_us.Percentile(99),
                r.read_latency_us.Max());
  }
  std::printf("\nwrites: %6llu (%8.1f MB)", static_cast<unsigned long long>(r.writes),
              r.write_mb);
  if (r.writes > 0) {
    std::printf("  lat us: avg %8.1f p99 %8.1f max %8.1f",
                r.write_latency_us.Mean(), r.write_latency_us.Percentile(99),
                r.write_latency_us.Max());
  }
  std::printf("\nflash: %llu group reads, %llu programs, %llu erases, %llu fg reclaims\n",
              static_cast<unsigned long long>(backbone.reads()),
              static_cast<unsigned long long>(backbone.programs()),
              static_cast<unsigned long long>(backbone.erases()),
              static_cast<unsigned long long>(fv.foreground_reclaims()));
  return 0;
}
