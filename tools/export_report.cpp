// export_report: runs one workload set on one system and writes the full
// observability artifacts — the versioned RunReport JSON (metrics snapshot,
// energy decomposition, latency summary, trace aggregates) and the
// Perfetto-loadable Chrome trace-event JSON. See docs/OBSERVABILITY.md.
//
// Usage:
//   export_report --workload=gemm --sched=intra_o3
//   export_report --workload=MX3 --sched=simd --instances=4 --out=/tmp/rep
//
// Flags:
//   --workload=NAME|MXn  workload name (case-insensitive) or mix MX1..MX14
//   --sched=KIND         simd | inter_st | inter_dy | intra_io | intra_o3
//   --instances=N        instances per app (default 6 single / 4 mix)
//   --out=DIR            output directory (default ".")
//   --scale=F            modelled-data scale (default 1/16)
//   --seed=N             RNG seed (default 42)
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace fabacus {
namespace {

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

const Workload* FindWorkload(const std::string& name) {
  const std::string want = Lower(name);
  for (const Workload* w : WorkloadRegistry::Get().all()) {
    if (Lower(w->name()) == want) {
      return w;
    }
  }
  return nullptr;
}

bool WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "export_report: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(body.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: export_report --workload=NAME|MXn "
               "--sched=simd|inter_st|inter_dy|intra_io|intra_o3 "
               "[--instances=N] [--out=DIR] [--scale=F] [--seed=N]\n");
  return 2;
}

}  // namespace
}  // namespace fabacus

int main(int argc, char** argv) {
  using namespace fabacus;
  std::string workload;
  std::string sched;
  std::string out_dir = ".";
  int instances = 0;
  double scale = kBenchScale;
  std::uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      return Usage();
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string val = arg.substr(eq + 1);
    if (key == "workload") {
      workload = val;
    } else if (key == "sched") {
      sched = val;
    } else if (key == "out") {
      out_dir = val;
    } else if (key == "instances") {
      instances = std::atoi(val.c_str());
    } else if (key == "scale") {
      scale = std::atof(val.c_str());
    } else if (key == "seed") {
      seed = static_cast<std::uint64_t>(std::atoll(val.c_str()));
    } else {
      return Usage();
    }
  }
  if (workload.empty() || sched.empty()) {
    return Usage();
  }

  // Resolve the workload set: a heterogeneous mix MXn or a single workload.
  std::vector<const Workload*> apps;
  const std::string wl_lower = Lower(workload);
  if (wl_lower.rfind("mx", 0) == 0) {
    const int m = std::atoi(wl_lower.c_str() + 2);
    if (m < 1 || m > WorkloadRegistry::kNumMixes) {
      std::fprintf(stderr, "export_report: unknown mix '%s' (MX1..MX%d)\n", workload.c_str(),
                   WorkloadRegistry::kNumMixes);
      return 2;
    }
    apps = WorkloadRegistry::Get().Mix(m);
    if (instances <= 0) {
      instances = 4;
    }
  } else {
    const Workload* wl = FindWorkload(workload);
    if (wl == nullptr) {
      std::fprintf(stderr, "export_report: unknown workload '%s'; known:", workload.c_str());
      for (const Workload* w : WorkloadRegistry::Get().all()) {
        std::fprintf(stderr, " %s", w->name().c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    apps = {wl};
    if (instances <= 0) {
      instances = 6;
    }
  }

  // Run the requested system. The Chrome-trace export wants every interval
  // tag, so this is one of the paths that keeps the full trace on.
  const std::string sched_lower = Lower(sched);
  BenchOptions opt;
  opt.model_scale = scale;
  opt.seed = seed;
  opt.record_full_trace = true;
  BenchRun run;
  if (sched_lower == "simd") {
    run = RunSimdSystem(apps, instances, opt);
  } else if (sched_lower == "inter_st") {
    run = RunFlashAbacusSystem(apps, instances, SchedulerKind::kInterStatic, opt);
  } else if (sched_lower == "inter_dy") {
    run = RunFlashAbacusSystem(apps, instances, SchedulerKind::kInterDynamic, opt);
  } else if (sched_lower == "intra_io") {
    run = RunFlashAbacusSystem(apps, instances, SchedulerKind::kIntraInOrder, opt);
  } else if (sched_lower == "intra_o3") {
    run = RunFlashAbacusSystem(apps, instances, SchedulerKind::kIntraOutOfOrder, opt);
  } else {
    std::fprintf(stderr, "export_report: unknown scheduler '%s'\n", sched.c_str());
    return Usage();
  }

  const std::string stem = wl_lower + "_" + sched_lower;
  const std::string report_path = out_dir + "/report_" + stem + ".json";
  const std::string trace_path = out_dir + "/trace_" + stem + ".json";
  if (!WriteFile(report_path, run.result.ToJson()) ||
      !WriteFile(trace_path, run.result.trace.ToChromeTrace())) {
    return 1;
  }

  std::printf("system: %s  workload: %s x%d  verified: %s\n", run.system.c_str(),
              workload.c_str(), instances, run.verified ? "yes" : "NO");
  std::printf("makespan: %.3f ms  throughput: %.1f MB/s  energy: %.3f J\n",
              TicksToMs(run.result.makespan), run.result.throughput_mb_s,
              run.result.EnergySummary().total_j);
  std::printf("report: %s\ntrace:  %s (load in Perfetto / chrome://tracing)\n",
              report_path.c_str(), trace_path.c_str());
  return run.verified ? 0 : 1;
}
