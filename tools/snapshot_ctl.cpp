// snapshot_ctl: operator tooling for whole-simulator snapshots
// (docs/SNAPSHOT.md).
//
// Usage:
//   snapshot_ctl inspect FILE
//       Print kind, manifest JSON and the section table (name, schema
//       version, payload bytes) of a snapshot container.
//   snapshot_ctl diff A B
//       Field-by-field manifest diff (shared JsonFieldDiff surface) plus a
//       per-section comparison: version skew, size skew, payload byte
//       equality. Exit 0 when identical, 1 when different.
//   snapshot_ctl run-demo [--out=DIR] [--seed=N]
//       The resume-and-run determinism gate on the Small() preset: runs a
//       scripted install/journal/run session unbroken, replays it split
//       across a snapshot/resume boundary, and byte-compares the final run
//       reports. Leaves the snapshot at DIR/demo_device.snap for inspect /
//       diff / resume-run. Exit 0 iff the reports are identical.
//   snapshot_ctl resume-run FILE [--seed=N]
//       Resume a Small()-preset device snapshot and serve a fresh ATAX
//       instance on the warm device (geometry-mismatched snapshots are
//       rejected cleanly).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/storengine.h"
#include "src/core/flashabacus.h"
#include "src/sim/json.h"
#include "src/sim/snapshot.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: snapshot_ctl inspect FILE\n"
               "       snapshot_ctl diff A B\n"
               "       snapshot_ctl run-demo [--out=DIR] [--seed=N]\n"
               "       snapshot_ctl resume-run FILE [--seed=N]\n");
  return 2;
}

bool LoadOrComplain(const std::string& path, SnapshotFile* out) {
  std::string err;
  if (!SnapshotFile::Load(path, out, &err)) {
    std::fprintf(stderr, "snapshot_ctl: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

int Inspect(const std::string& path) {
  SnapshotFile snap;
  if (!LoadOrComplain(path, &snap)) {
    return 1;
  }
  std::printf("file:     %s\n", path.c_str());
  std::printf("kind:     %s\n", snap.kind().c_str());
  std::printf("sections: %zu\n", snap.sections().size());
  for (const SnapshotFile::Section& s : snap.sections()) {
    std::printf("  %-24s v%-3d %10zu bytes\n", s.name.c_str(), s.version,
                s.payload.size());
  }
  std::printf("manifest: %s\n", snap.manifest_json().c_str());
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  SnapshotFile a, b;
  if (!LoadOrComplain(path_a, &a) || !LoadOrComplain(path_b, &b)) {
    return 1;
  }
  int diffs = 0;
  std::vector<std::string> lines;
  diffs += JsonFieldDiffText(a.manifest_json(), b.manifest_json(), &lines);
  for (const std::string& l : lines) {
    std::printf("manifest %s\n", l.c_str());
  }
  // Section-level comparison: union of names, then version/size/bytes.
  auto compare = [&](const SnapshotFile::Section& sa) {
    const SnapshotFile::Section* sb = b.Find(sa.name);
    if (sb == nullptr) {
      std::printf("section %s: only in %s\n", sa.name.c_str(), path_a.c_str());
      ++diffs;
      return;
    }
    if (sa.version != sb->version) {
      std::printf("section %s: version %d -> %d\n", sa.name.c_str(), sa.version,
                  sb->version);
      ++diffs;
    }
    if (sa.payload != sb->payload) {
      std::printf("section %s: payload differs (%zu -> %zu bytes)\n", sa.name.c_str(),
                  sa.payload.size(), sb->payload.size());
      ++diffs;
    }
  };
  for (const SnapshotFile::Section& sa : a.sections()) {
    compare(sa);
  }
  for (const SnapshotFile::Section& sb : b.sections()) {
    if (a.Find(sb.name) == nullptr) {
      std::printf("section %s: only in %s\n", sb.name.c_str(), path_b.c_str());
      ++diffs;
    }
  }
  std::printf("%d difference%s\n", diffs, diffs == 1 ? "" : "s");
  return diffs == 0 ? 0 : 1;
}

// One scripted session step shared by run-demo's unbroken and segmented
// variants: install `n` ATAX instances, dump the FTL journal, run them all.
struct DemoSession {
  FlashAbacusConfig cfg;
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<FlashAbacus> dev;
  std::vector<std::unique_ptr<AppInstance>> insts;

  void Fresh() {
    dev.reset();
    sim = std::make_unique<Simulator>();
    dev = std::make_unique<FlashAbacus>(sim.get(), cfg);
  }

  void Prepare(const Workload& wl, int n, std::uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      insts.push_back(std::make_unique<AppInstance>(0, i, &wl.spec(), cfg.model_scale));
      wl.Prepare(*insts.back(), rng);
    }
  }

  void InstallAllAndDump() {
    for (auto& inst : insts) {
      dev->InstallData(inst.get(), [](Tick) {});
    }
    sim->Run();
    dev->storengine().RunJournalDump([](Tick) {});
    sim->Run();
  }

  std::string RunAll() {
    std::vector<AppInstance*> raw;
    for (auto& inst : insts) {
      raw.push_back(inst.get());
    }
    std::string json;
    dev->Run(raw, SchedulerKind::kIntraOutOfOrder,
             [&](RunReport r) { json = r.ToJson(); });
    sim->Run();
    return json;
  }
};

int RunDemo(const std::string& out_dir, std::uint64_t seed) {
  const Workload* wl = WorkloadRegistry::Get().Find("ATAX");
  if (wl == nullptr) {
    std::fprintf(stderr, "snapshot_ctl: workload registry has no ATAX\n");
    return 1;
  }
  const FlashAbacusConfig cfg = FlashAbacusConfig::Small();
  const std::string snap_path = out_dir + "/demo_device.snap";

  DemoSession unbroken;
  unbroken.cfg = cfg;
  unbroken.Fresh();
  unbroken.Prepare(*wl, 2, seed);
  unbroken.InstallAllAndDump();
  const std::string report_unbroken = unbroken.RunAll();

  DemoSession seg;
  seg.cfg = cfg;
  seg.Fresh();
  seg.Prepare(*wl, 2, seed);
  seg.InstallAllAndDump();
  std::string err;
  if (!seg.dev->Snapshot(snap_path, &err)) {
    std::fprintf(stderr, "snapshot_ctl: snapshot failed: %s\n", err.c_str());
    return 1;
  }
  seg.Fresh();  // brand-new simulator + device, then resume from disk
  if (!seg.dev->Resume(snap_path, &err)) {
    std::fprintf(stderr, "snapshot_ctl: resume failed: %s\n", err.c_str());
    return 1;
  }
  const std::string report_resumed = seg.RunAll();

  const bool identical = report_unbroken == report_resumed;
  std::printf("snapshot:  %s\n", snap_path.c_str());
  std::printf("unbroken vs resumed RunReport: %s\n",
              identical ? "byte-identical" : "DIFFER");
  if (!identical) {
    std::vector<std::string> lines;
    JsonFieldDiffText(report_unbroken, report_resumed, &lines);
    for (const std::string& l : lines) {
      std::printf("  %s\n", l.c_str());
    }
  }
  return identical ? 0 : 1;
}

int ResumeRun(const std::string& path, std::uint64_t seed) {
  const Workload* wl = WorkloadRegistry::Get().Find("ATAX");
  if (wl == nullptr) {
    std::fprintf(stderr, "snapshot_ctl: workload registry has no ATAX\n");
    return 1;
  }
  const FlashAbacusConfig cfg = FlashAbacusConfig::Small();
  Simulator sim;
  FlashAbacus dev(&sim, cfg);
  std::string err;
  if (!dev.Resume(path, &err)) {
    std::fprintf(stderr, "snapshot_ctl: resume failed: %s\n", err.c_str());
    return 1;
  }
  // Serve a fresh instance on the warm device.
  auto inst = std::make_unique<AppInstance>(0, 1000, &wl->spec(), cfg.model_scale);
  Rng rng(seed);
  wl->Prepare(*inst, rng);
  dev.InstallData(inst.get(), [](Tick) {});
  sim.Run();
  bool done = false;
  RunReport report;
  dev.Run({inst.get()}, SchedulerKind::kIntraOutOfOrder, [&](RunReport r) {
    report = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "snapshot_ctl: resumed run did not complete\n");
    return 1;
  }
  std::printf("resumed %s and served 1 ATAX instance\n", path.c_str());
  std::printf("makespan: %.3f ms  throughput: %.1f MB/s  energy: %.3f J\n",
              TicksToMs(report.makespan), report.throughput_mb_s,
              report.EnergySummary().total_j);
  return 0;
}

}  // namespace
}  // namespace fabacus

int main(int argc, char** argv) {
  using namespace fabacus;
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  std::vector<std::string> pos;
  std::string out_dir = ".";
  std::uint64_t seed = 42;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_dir = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      pos.push_back(arg);
    }
  }
  if (cmd == "inspect" && pos.size() == 1) {
    return Inspect(pos[0]);
  }
  if (cmd == "diff" && pos.size() == 2) {
    return Diff(pos[0], pos[1]);
  }
  if (cmd == "run-demo" && pos.empty()) {
    return RunDemo(out_dir, seed);
  }
  if (cmd == "resume-run" && pos.size() == 1) {
    return ResumeRun(pos[0], seed);
  }
  return Usage();
}
