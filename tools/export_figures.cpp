// Exports plot-ready CSV data for the paper's figures: completion-time CDFs
// (Fig 12) and FU-utilization/power time series (Fig 15) for a chosen
// workload, one CSV per system, into an output directory.
//
//   $ ./build/tools/export_figures MX1 /tmp/fabacus_csv
//   $ ./build/tools/export_figures ATAX out/
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace fabacus;

bool WriteCsv(const std::string& path, const std::string& header,
              const std::vector<std::vector<double>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", header.c_str());
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::fprintf(f, "%s%.6g", i == 0 ? "" : ",", row[i]);
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: export_figures <workload|MXn> <output-dir>\n");
    return 1;
  }
  const std::string target = argv[1];
  const std::string outdir = argv[2];

  std::vector<const Workload*> apps;
  int per_app = 6;
  if (target.rfind("MX", 0) == 0) {
    apps = WorkloadRegistry::Get().Mix(std::atoi(target.c_str() + 2));
    per_app = 4;
  } else {
    const Workload* wl = WorkloadRegistry::Get().Find(target);
    if (wl == nullptr) {
      std::fprintf(stderr, "unknown workload %s\n", target.c_str());
      return 1;
    }
    apps.push_back(wl);
  }

  // The FU-utilization series reads kLwpCompute, so keep the full trace on.
  BenchOptions opt;
  opt.record_full_trace = true;
  std::vector<BenchRun> runs = RunAllSystems(apps, per_app, opt);

  // Fig 12-style CDF: one column per system.
  {
    std::vector<std::vector<double>> rows;
    std::size_t n = runs[0].result.completion_times.size();
    for (BenchRun& r : runs) {
      std::sort(r.result.completion_times.begin(), r.result.completion_times.end());
    }
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<double> row{static_cast<double>(k + 1)};
      for (const BenchRun& r : runs) {
        row.push_back(TicksToSeconds(r.result.completion_times[k]));
      }
      rows.push_back(std::move(row));
    }
    if (!WriteCsv(outdir + "/cdf_" + target + ".csv",
                  "kernels_done,simd_s,interst_s,intraio_s,interdy_s,intrao3_s", rows)) {
      return 1;
    }
  }

  // Fig 15-style series: FU utilization over normalized run time, per system.
  {
    constexpr std::size_t kBuckets = 48;
    std::vector<std::vector<double>> rows;
    std::vector<std::vector<double>> series;
    for (const BenchRun& r : runs) {
      series.push_back(
          r.result.trace.Series(TraceTag::kLwpCompute, r.result.makespan, kBuckets));
    }
    for (std::size_t b = 0; b < kBuckets; ++b) {
      std::vector<double> row{static_cast<double>(b) / kBuckets};
      for (const auto& s : series) {
        row.push_back(s[b]);
      }
      rows.push_back(std::move(row));
    }
    if (!WriteCsv(outdir + "/fus_" + target + ".csv",
                  "run_fraction,simd_fus,interst_fus,intraio_fus,interdy_fus,intrao3_fus",
                  rows)) {
      return 1;
    }
  }

  // Summary row per system.
  {
    std::vector<std::vector<double>> rows;
    for (const BenchRun& r : runs) {
      rows.push_back({r.result.throughput_mb_s, TicksToMs(r.result.makespan),
                      r.result.worker_utilization * 100.0, r.result.EnergySummary().total_j,
                      r.result.EnergySummary().data_movement_j, r.result.EnergySummary().computation_j,
                      r.result.EnergySummary().storage_access_j, r.verified ? 1.0 : 0.0});
    }
    if (!WriteCsv(outdir + "/summary_" + target + ".csv",
                  "throughput_mb_s,makespan_ms,utilization_pct,energy_j,e_move_j,"
                  "e_compute_j,e_storage_j,verified",
                  rows)) {
      return 1;
    }
  }
  return 0;
}
