// Scheduler tour: a guided walk through the four self-governing scheduling
// models of the paper (§4.1-4.2) on one small multi-kernel workload,
// printing each run's per-kernel completion staircase so the differences are
// visible in the terminal:
//   InterSt — kernels pinned to LWPs by app id (imbalance hurts)
//   InterDy — kernels to any free LWP (great utilization, long first kernel)
//   IntraIo — screens of the head microblock fan out (fast first kernel,
//             serial microblocks idle the device)
//   IntraO3 — screens borrowed across kernels (best of both)
//
//   $ ./build/examples/scheduler_tour
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/flashabacus.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/workloads/workload.h"

int main() {
  using namespace fabacus;
  // Six instances of ATAX: two microblocks each, one of them serial — the
  // structure that separates the four schedulers (paper Figs 5 and 7).
  const Workload* wl = WorkloadRegistry::Get().Find("ATAX");
  std::printf("workload: %s x6 — %d microblocks, %d serial\n\n", wl->name().c_str(),
              wl->spec().num_microblocks(), wl->spec().num_serial_microblocks());

  const SchedulerKind kinds[] = {SchedulerKind::kInterStatic, SchedulerKind::kInterDynamic,
                                 SchedulerKind::kIntraInOrder,
                                 SchedulerKind::kIntraOutOfOrder};
  for (SchedulerKind kind : kinds) {
    Simulator sim;
    FlashAbacusConfig config = FlashAbacusConfig::Paper();
    config.model_scale = 1.0 / 32.0;
    FlashAbacus device(&sim, config);
    Rng rng(3);
    std::vector<std::unique_ptr<AppInstance>> owned;
    std::vector<AppInstance*> instances;
    for (int i = 0; i < 6; ++i) {
      owned.push_back(std::make_unique<AppInstance>(0, i, &wl->spec(), config.model_scale));
      wl->Prepare(*owned.back(), rng);
      instances.push_back(owned.back().get());
    }
    for (AppInstance* inst : instances) {
      device.InstallData(inst, [](Tick) {});
    }
    sim.Run();
    RunReport result;
    device.Run(instances, kind, [&](RunReport r) { result = std::move(r); });
    sim.Run();

    std::sort(result.completion_times.begin(), result.completion_times.end());
    std::printf("%s  (makespan %.1f ms, utilization %.0f%%)\n", SchedulerKindName(kind),
                TicksToMs(result.makespan), result.worker_utilization * 100.0);
    const double full = TicksToMs(result.completion_times.back());
    for (std::size_t k = 0; k < result.completion_times.size(); ++k) {
      const double t = TicksToMs(result.completion_times[k]);
      const int bars = static_cast<int>(t / full * 50.0);
      std::printf("  kernel %zu |%.*s%*s| %7.1f ms\n", k + 1, bars,
                  "##################################################", 50 - bars, "", t);
    }
    std::printf("\n");
  }
  std::printf("Reading the staircases: IntraIo/IntraO3 finish kernel 1 first (screens\n"
              "parallelize a single kernel); InterDy finishes all six almost together;\n"
              "InterSt serializes everything on one LWP (all instances share app id 0).\n");
  return 0;
}
