// Quickstart: offload one GEMM kernel to a FlashAbacus device, let the
// out-of-order intra-kernel scheduler run it near flash, and verify the
// result against a reference implementation.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "src/core/flashabacus.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/workloads/workload.h"

int main() {
  using namespace fabacus;

  // 1. A simulator and a FlashAbacus device (8 LWPs, 32 GB flash backbone;
  //    see Table 1 of the paper — every knob lives in FlashAbacusConfig).
  Simulator sim;
  FlashAbacusConfig config = FlashAbacusConfig::Paper();
  config.model_scale = 1.0 / 16.0;  // modelled data = 1/16 of paper-sized inputs
  FlashAbacus device(&sim, config);

  // 2. An application instance: GEMM with real input matrices.
  const Workload* gemm = WorkloadRegistry::Get().Find("GEMM");
  AppInstance instance(/*app_id=*/0, /*instance_id=*/0, &gemm->spec(), config.model_scale);
  Rng rng(42);
  gemm->Prepare(instance, rng);

  // 3. Stage the input data on the device's flash backbone (self-governed:
  //    no host file system involved).
  device.InstallData(&instance, [](Tick t) {
    std::printf("data installed (accepted at %.2f ms)\n", TicksToMs(t));
  });
  sim.Run();

  // 4. Offload and execute under the out-of-order intra-kernel scheduler.
  device.Run({&instance}, SchedulerKind::kIntraOutOfOrder, [](RunReport result) {
    std::printf("kernel complete: %.2f ms, %.1f MB/s, worker utilization %.1f%%\n",
                TicksToMs(result.makespan), result.throughput_mb_s,
                result.worker_utilization * 100.0);
    std::printf("energy: %.3f J (compute %.3f J, storage %.3f J)\n", result.EnergySummary().total_j,
                result.EnergySummary().computation_j, result.EnergySummary().storage_access_j);
  });
  sim.Run();

  // 5. Verify the output matrix against a reference computation.
  std::printf("result %s\n", gemm->Verify(instance) ? "VERIFIED" : "MISMATCH");
  return gemm->Verify(instance) ? 0 : 1;
}
