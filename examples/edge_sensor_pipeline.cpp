// Edge sensor pipeline: the paper's low-power motivation in miniature. An
// embedded platform captures sensor frames into flash and must denoise them
// (2D convolution) and run a field simulation step (FDTD) under a watt-scale
// power budget. The demo compares the conventional architecture (host +
// external NVMe SSD, "SIMD") against the self-governing FlashAbacus and
// reports the energy both would draw from a battery.
//
//   $ ./build/examples/edge_sensor_pipeline
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/flashabacus.h"
#include "src/host/simd_system.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/workloads/workload.h"

namespace {

struct PipelineResult {
  fabacus::RunReport run;
  bool verified = true;
};

PipelineResult RunOnFlashAbacus(const std::vector<const fabacus::Workload*>& stages,
                                int frames) {
  using namespace fabacus;
  Simulator sim;
  FlashAbacusConfig config = FlashAbacusConfig::Paper();
  config.model_scale = 1.0 / 32.0;
  FlashAbacus device(&sim, config);
  Rng rng(11);
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> instances;
  for (int f = 0; f < frames; ++f) {
    for (std::size_t s = 0; s < stages.size(); ++s) {
      owned.push_back(std::make_unique<AppInstance>(static_cast<int>(s), f,
                                                    &stages[s]->spec(), config.model_scale));
      stages[s]->Prepare(*owned.back(), rng);
      instances.push_back(owned.back().get());
    }
  }
  for (AppInstance* inst : instances) {
    device.InstallData(inst, [](Tick) {});
  }
  sim.Run();
  PipelineResult out;
  device.Run(instances, SchedulerKind::kIntraOutOfOrder,
             [&](RunReport r) { out.run = std::move(r); });
  sim.Run();
  for (std::size_t i = 0; i < owned.size(); ++i) {
    out.verified = out.verified &&
                   stages[owned[i]->app_id()]->Verify(*owned[i]);
  }
  return out;
}

PipelineResult RunOnConventional(const std::vector<const fabacus::Workload*>& stages,
                                 int frames) {
  using namespace fabacus;
  Simulator sim;
  SimdConfig config;
  config.model_scale = 1.0 / 32.0;
  SimdSystem system(&sim, config);
  Rng rng(11);
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> instances;
  for (int f = 0; f < frames; ++f) {
    for (std::size_t s = 0; s < stages.size(); ++s) {
      owned.push_back(std::make_unique<AppInstance>(static_cast<int>(s), f,
                                                    &stages[s]->spec(), config.model_scale));
      stages[s]->Prepare(*owned.back(), rng);
      system.InstallData(owned.back().get());
      instances.push_back(owned.back().get());
    }
  }
  PipelineResult out;
  system.Run(instances, [&](RunReport r) { out.run = std::move(r); });
  sim.Run();
  for (std::size_t i = 0; i < owned.size(); ++i) {
    out.verified = out.verified &&
                   stages[owned[i]->app_id()]->Verify(*owned[i]);
  }
  return out;
}

}  // namespace

int main() {
  using namespace fabacus;
  const std::vector<const Workload*> stages = {
      WorkloadRegistry::Get().Find("2DCON"),  // denoise
      WorkloadRegistry::Get().Find("FDTD"),   // field simulation step
  };
  constexpr int kFrames = 3;
  std::printf("pipeline: denoise (2DCON) + field step (FDTD), %d frames each\n\n", kFrames);

  const PipelineResult fa = RunOnFlashAbacus(stages, kFrames);
  const PipelineResult simd = RunOnConventional(stages, kFrames);

  std::printf("%-24s %-14s %-12s %-12s %-8s\n", "system", "makespan(ms)", "energy(J)",
              "avg power(W)", "verified");
  auto report = [](const char* name, const PipelineResult& r) {
    const double seconds = TicksToSeconds(r.run.makespan);
    std::printf("%-24s %-14.2f %-12.3f %-12.2f %-8s\n", name, TicksToMs(r.run.makespan),
                r.run.EnergySummary().total_j, r.run.EnergySummary().total_j / seconds,
                r.verified ? "yes" : "NO");
  };
  report("FlashAbacus (IntraO3)", fa);
  report("host + NVMe (SIMD)", simd);

  const double battery_wh = 5.0;  // a small drone/sensor battery
  const double fa_frames = battery_wh * 3600.0 / (fa.run.EnergySummary().total_j / kFrames);
  const double simd_frames = battery_wh * 3600.0 / (simd.run.EnergySummary().total_j / kFrames);
  std::printf("\non a %.0f Wh battery: ~%.0f frames (FlashAbacus) vs ~%.0f frames "
              "(conventional) — %.1fx more work per charge\n",
              battery_wh, fa_frames, simd_frames, fa_frames / simd_frames);
  return fa.verified && simd.verified ? 0 : 1;
}
