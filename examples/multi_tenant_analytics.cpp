// Multi-tenant analytics: three tenants offload different applications to
// one FlashAbacus device at the same time — a linear-algebra job (BICG), a
// log-processing job (wordcount) and a similarity search (k-NN). The demo
// runs the mix under all four self-governing schedulers and shows why the
// out-of-order intra-kernel scheduler wins when tenants' kernels have
// different shapes (paper §5.1, heterogeneous workloads).
//
//   $ ./build/examples/multi_tenant_analytics
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/flashabacus.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/workloads/workload.h"

namespace {

struct Tenant {
  const char* job;
  const fabacus::Workload* workload;
  int instances;
};

}  // namespace

int main() {
  using namespace fabacus;
  const WorkloadRegistry& registry = WorkloadRegistry::Get();
  const std::vector<Tenant> tenants = {
      {"linear-algebra", registry.Find("BICG"), 2},
      {"log-processing", registry.Find("wc"), 2},
      {"similarity-search", registry.Find("nn"), 2},
  };

  std::printf("tenants:\n");
  for (const Tenant& t : tenants) {
    std::printf("  %-18s -> %-6s x%d (%d microblocks, %d serial)\n", t.job,
                t.workload->name().c_str(), t.instances,
                t.workload->spec().num_microblocks(),
                t.workload->spec().num_serial_microblocks());
  }

  const SchedulerKind kinds[] = {SchedulerKind::kInterStatic, SchedulerKind::kInterDynamic,
                                 SchedulerKind::kIntraInOrder,
                                 SchedulerKind::kIntraOutOfOrder};
  std::printf("\n%-10s %-12s %-12s %-12s %-10s\n", "scheduler", "makespan(ms)", "MB/s",
              "avg lat(ms)", "util(%)");
  for (SchedulerKind kind : kinds) {
    Simulator sim;
    FlashAbacusConfig config = FlashAbacusConfig::Paper();
    config.model_scale = 1.0 / 32.0;
    FlashAbacus device(&sim, config);
    Rng rng(7);
    std::vector<std::unique_ptr<AppInstance>> owned;
    std::vector<AppInstance*> instances;
    int app_id = 0;
    for (const Tenant& t : tenants) {
      for (int i = 0; i < t.instances; ++i) {
        owned.push_back(
            std::make_unique<AppInstance>(app_id, i, &t.workload->spec(), config.model_scale));
        t.workload->Prepare(*owned.back(), rng);
        instances.push_back(owned.back().get());
      }
      ++app_id;
    }
    for (AppInstance* inst : instances) {
      device.InstallData(inst, [](Tick) {});
    }
    sim.Run();
    RunReport result;
    device.Run(instances, kind, [&](RunReport r) { result = std::move(r); });
    sim.Run();

    bool all_ok = true;
    std::size_t idx = 0;
    for (const Tenant& t : tenants) {
      for (int i = 0; i < t.instances; ++i) {
        all_ok = all_ok && t.workload->Verify(*owned[idx++]);
      }
    }
    std::printf("%-10s %-12.2f %-12.1f %-12.2f %-10.1f %s\n", SchedulerKindName(kind),
                TicksToMs(result.makespan), result.throughput_mb_s,
                result.kernel_latency_ms.Mean(), result.worker_utilization * 100.0,
                all_ok ? "" : "VERIFY-FAILED");
  }
  std::printf("\nIntraO3 fills idle LWPs with screens borrowed across tenants, so one\n"
              "tenant's serial microblocks never idle the device.\n");
  return 0;
}
