// CLI runner: execute any registered workload on any system/scheduler.
//
//   $ ./build/examples/run_workload                      # list workloads
//   $ ./build/examples/run_workload ATAX IntraO3 6       # 6 instances
//   $ ./build/examples/run_workload bfs SIMD 4
//   $ ./build/examples/run_workload MX3 InterDy 2        # mixes: 2 per app
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/flashabacus.h"
#include "src/host/simd_system.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/workloads/workload.h"

namespace {

using namespace fabacus;

void PrintUsage() {
  std::printf("usage: run_workload <workload|MXn> <SIMD|InterSt|InterDy|IntraIo|IntraO3> "
              "[instances=6]\n\nworkloads:\n ");
  for (const Workload* wl : WorkloadRegistry::Get().all()) {
    std::printf(" %s", wl->name().c_str());
  }
  std::printf("\n  MX1..MX%d (heterogeneous mixes)\n", WorkloadRegistry::kNumMixes);
}

void Report(const RunReport& r, bool verified) {
  std::printf("system:      %s\n", r.system.c_str());
  std::printf("makespan:    %.2f ms\n", TicksToMs(r.makespan));
  std::printf("throughput:  %.1f MB/s\n", r.throughput_mb_s);
  std::printf("latency:     avg %.2f ms, max %.2f ms, min %.2f ms\n",
              r.kernel_latency_ms.Mean(), r.kernel_latency_ms.Max(),
              r.kernel_latency_ms.Min());
  std::printf("utilization: %.1f%%\n", r.worker_utilization * 100.0);
  std::printf("energy:      %.3f J  (move %.3f / compute %.3f / storage %.3f)\n",
              r.EnergySummary().total_j, r.EnergySummary().data_movement_j, r.EnergySummary().computation_j,
              r.EnergySummary().storage_access_j);
  std::printf("verified:    %s\n", verified ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    PrintUsage();
    return argc == 1 ? 0 : 1;
  }
  const std::string target = argv[1];
  const std::string system = argv[2];
  const int per_app = argc > 3 ? std::atoi(argv[3]) : 6;

  std::vector<const Workload*> apps;
  if (target.rfind("MX", 0) == 0) {
    const int m = std::atoi(target.c_str() + 2);
    if (m < 1 || m > WorkloadRegistry::kNumMixes) {
      std::fprintf(stderr, "unknown mix %s\n", target.c_str());
      return 1;
    }
    apps = WorkloadRegistry::Get().Mix(m);
  } else {
    const Workload* wl = WorkloadRegistry::Get().Find(target);
    if (wl == nullptr) {
      std::fprintf(stderr, "unknown workload %s\n", target.c_str());
      PrintUsage();
      return 1;
    }
    apps.push_back(wl);
  }

  Simulator sim;
  Rng rng(42);
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> instances;
  const double scale = 1.0 / 16.0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (int i = 0; i < per_app; ++i) {
      owned.push_back(
          std::make_unique<AppInstance>(static_cast<int>(a), i, &apps[a]->spec(), scale));
      apps[a]->Prepare(*owned.back(), rng);
      instances.push_back(owned.back().get());
    }
  }

  RunReport result;
  bool done = false;
  if (system == "SIMD") {
    SimdConfig cfg;
    cfg.model_scale = scale;
    SimdSystem simd(&sim, cfg);
    for (AppInstance* inst : instances) {
      simd.InstallData(inst);
    }
    simd.Run(instances, [&](RunReport r) {
      result = std::move(r);
      done = true;
    });
    sim.Run();
  } else {
    SchedulerKind kind;
    if (system == "InterSt") {
      kind = SchedulerKind::kInterStatic;
    } else if (system == "InterDy") {
      kind = SchedulerKind::kInterDynamic;
    } else if (system == "IntraIo") {
      kind = SchedulerKind::kIntraInOrder;
    } else if (system == "IntraO3") {
      kind = SchedulerKind::kIntraOutOfOrder;
    } else {
      std::fprintf(stderr, "unknown system %s\n", system.c_str());
      PrintUsage();
      return 1;
    }
    FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
    cfg.model_scale = scale;
    FlashAbacus dev(&sim, cfg);
    for (AppInstance* inst : instances) {
      dev.InstallData(inst, [](Tick) {});
    }
    sim.Run();
    dev.Run(instances, kind, [&](RunReport r) {
      result = std::move(r);
      done = true;
    });
    sim.Run();
  }
  if (!done) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }
  bool verified = true;
  for (const auto& inst : owned) {
    verified =
        verified && apps[static_cast<std::size_t>(inst->app_id())]->Verify(*inst);
  }
  Report(result, verified);
  return verified ? 0 : 1;
}
