#include "src/power/energy_meter.h"

#include "src/sim/log.h"

namespace fabacus {

const char* EnergyBucketName(EnergyBucket b) {
  switch (b) {
    case EnergyBucket::kDataMovement:
      return "data movement";
    case EnergyBucket::kComputation:
      return "computation";
    case EnergyBucket::kStorageAccess:
      return "storage access";
    default:
      return "?";
  }
}

void EnergyMeter::AddActive(EnergyBucket bucket, const std::string& component, double watts,
                            Tick start, Tick end) {
  FAB_CHECK_GE(end, start);
  const double joules = watts * TicksToSeconds(end - start);
  buckets_[static_cast<int>(bucket)] += joules;
  per_component_[component] += joules;
}

void EnergyMeter::AddStatic(EnergyBucket bucket, const std::string& component, double watts,
                            Tick duration) {
  const double joules = watts * TicksToSeconds(duration);
  buckets_[static_cast<int>(bucket)] += joules;
  per_component_[component] += joules;
}

double EnergyMeter::BucketJoules(EnergyBucket bucket) const {
  return buckets_[static_cast<int>(bucket)];
}

double EnergyMeter::ComponentJoules(const std::string& component) const {
  auto it = per_component_.find(component);
  return it == per_component_.end() ? 0.0 : it->second;
}

double EnergyMeter::TotalJoules() const {
  double total = 0.0;
  for (double j : buckets_) {
    total += j;
  }
  return total;
}

}  // namespace fabacus
