// Per-component power figures. Accelerator-side numbers follow Table 1 and
// the TI platform power calculator; host-side numbers follow the Xeon E5-2620
// v3 / DDR4 / Intel NVMe 750 parts the paper's testbed uses (§5, Profile
// methods). Idle (static) power is a fixed fraction of the active figure.
#ifndef SRC_POWER_POWER_MODEL_H_
#define SRC_POWER_POWER_MODEL_H_

namespace fabacus {

struct PowerModel {
  // FlashAbacus accelerator (Table 1).
  double lwp_active_w = 0.8;        // per LWP core
  double lwp_idle_w = 0.08;
  double lwp_sleep_w = 0.008;       // PSC deep-sleep state
  double ddr3l_active_w = 0.7;
  double ddr3l_idle_w = 0.1;
  double scratchpad_active_w = 0.3;
  double scratchpad_idle_w = 0.03;
  double flash_active_w = 11.0;     // whole backbone while array/bus busy
  double flash_idle_w = 0.9;
  double pcie_active_w = 0.17;
  double pcie_idle_w = 0.02;

  // Host side (SIMD baseline testbed).
  double host_cpu_active_w = 85.0;  // Xeon E5-2620 v3 TDP-class
  double host_cpu_idle_w = 15.0;
  double host_dram_active_w = 6.0;  // 32 GB DDR4
  double host_dram_idle_w = 2.0;
  double nvme_active_w = 22.0;      // Intel SSD 750 under load
  double nvme_idle_w = 4.0;
};

}  // namespace fabacus

#endif  // SRC_POWER_POWER_MODEL_H_
