// Energy accounting. Components report tagged busy intervals; the meter
// integrates active energy per (component, bucket) and adds idle/static
// energy for the whole run at Finalize(). Buckets mirror the paper's
// decomposition: data movement / computation / storage access (Fig 13, 16b).
#ifndef SRC_POWER_ENERGY_METER_H_
#define SRC_POWER_ENERGY_METER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "src/power/power_model.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

enum class EnergyBucket : int {
  kDataMovement = 0,  // host stack, memory copies, PCIe transfers
  kComputation = 1,   // LWP kernel execution
  kStorageAccess = 2, // flash backbone / NVMe device time
  kNumBuckets = 3,
};

const char* EnergyBucketName(EnergyBucket b);

class EnergyMeter {
 public:
  explicit EnergyMeter(const PowerModel& model = PowerModel{}) : model_(model) {}

  // Adds active energy: `watts` over [start, end), tagged into `bucket`.
  void AddActive(EnergyBucket bucket, const std::string& component, double watts, Tick start,
                 Tick end);

  // Adds static/idle energy for a component over the whole run. Charged to a
  // bucket so totals decompose cleanly (idle usually follows the component's
  // primary role).
  void AddStatic(EnergyBucket bucket, const std::string& component, double watts,
                 Tick duration);

  double BucketJoules(EnergyBucket bucket) const;
  double ComponentJoules(const std::string& component) const;
  double TotalJoules() const;

  const PowerModel& model() const { return model_; }
  const std::map<std::string, double>& per_component() const { return per_component_; }

 private:
  PowerModel model_;
  std::array<double, static_cast<int>(EnergyBucket::kNumBuckets)> buckets_{};
  std::map<std::string, double> per_component_;
};

}  // namespace fabacus

#endif  // SRC_POWER_ENERGY_METER_H_
