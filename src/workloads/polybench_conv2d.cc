// 2DCONV: 3x3 convolution over an N x N image — Table 2: 1 MBLK (0 serial),
// 640 MB, LD/ST 23.96%, B/KI 35.59 (data-intensive).
//
// Buffers: 0 = input image (N x N), 1 = output image (N x N).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 1024;

// PolyBench's conv-2d coefficient set.
constexpr float kC[3][3] = {{0.2f, -0.3f, 0.4f}, {-0.5f, 0.6f, -0.7f}, {0.8f, -0.9f, 0.10f}};

void ConvRows(const std::vector<float>& in, std::vector<float>* out, std::size_t row_begin,
              std::size_t row_end) {
  for (std::size_t i = std::max<std::size_t>(row_begin, 1); i < std::min(row_end, kN - 1);
       ++i) {
    for (std::size_t j = 1; j < kN - 1; ++j) {
      float acc = 0.0f;
      for (int di = -1; di <= 1; ++di) {
        for (int dj = -1; dj <= 1; ++dj) {
          const std::size_t ii = i + static_cast<std::size_t>(static_cast<std::ptrdiff_t>(di));
          const std::size_t jj = j + static_cast<std::size_t>(static_cast<std::ptrdiff_t>(dj));
          acc += kC[di + 1][dj + 1] * in[ii * kN + jj];
        }
      }
      (*out)[i * kN + j] = acc;
    }
  }
}

class Conv2dWorkload : public Workload {
 public:
  Conv2dWorkload() {
    spec_.name = "2DCON";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.2396;
    spec_.bki = 35.59;

    MicroblockSpec m0;
    m0.name = "conv3x3";
    m0.serial = false;
    m0.work_fraction = 1.0;
    SetMix(&m0, spec_.ldst_ratio, 0.35);
    m0.reuse_window_bytes = 3 * kN * sizeof(float);  // three live rows
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      ConvRows(inst.buffer(0), &inst.buffer(1), begin, end);
    };
    spec_.microblocks.push_back(m0);

    spec_.sections = {
        {"img_in", DataSectionSpec::Dir::kIn, 1.0, 0},
        {"img_out", DataSectionSpec::Dir::kOut, 1.0, 1},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(2);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillZero(&inst.buffer(1), kN * kN);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> ref(kN * kN, 0.0f);
    ConvRows(inst.buffer(0), &ref, 0, kN);
    return NearlyEqual(inst.buffer(1), ref);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeConv2d() { return std::make_unique<Conv2dWorkload>(); }

}  // namespace fabacus
