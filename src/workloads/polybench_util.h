// Shared helpers for the PolyBench workload implementations.
#ifndef SRC_WORKLOADS_POLYBENCH_UTIL_H_
#define SRC_WORKLOADS_POLYBENCH_UTIL_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/core/kernel.h"
#include "src/sim/rng.h"

namespace fabacus {

// Fills `v` with deterministic values in [-1, 1).
inline void FillRandom(std::vector<float>* v, std::size_t n, Rng& rng) {
  v->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*v)[i] = rng.NextFloat(-1.0f, 1.0f);
  }
}

inline void FillZero(std::vector<float>* v, std::size_t n) { v->assign(n, 0.0f); }

// Instruction-mix helper: load/store fraction from Table 2, the rest split
// between multiply and general-purpose FUs.
inline void SetMix(MicroblockSpec* m, double ldst, double mul_share) {
  m->frac_ldst = ldst;
  m->frac_mul = (1.0 - ldst) * mul_share;
  m->frac_alu = 1.0 - m->frac_ldst - m->frac_mul;
}

}  // namespace fabacus

#endif  // SRC_WORKLOADS_POLYBENCH_UTIL_H_
