// SYR2K: C = alpha (A B^T + B A^T) + beta C — Table 2: 1 MBLK (0 serial),
// 1280 MB, LD/ST 30.19%, B/KI 1.85 (compute-intensive).
//
// Buffers: 0 = A, 1 = B, 2 = C (all N x N; C in/out).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 192;
constexpr float kAlpha = 1.5f;
constexpr float kBeta = 1.2f;

void Syr2kRows(const std::vector<float>& a, const std::vector<float>& b,
               std::vector<float>* c, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < kN; ++k) {
        acc += a[i * kN + k] * b[j * kN + k] + b[i * kN + k] * a[j * kN + k];
      }
      (*c)[i * kN + j] = kBeta * (*c)[i * kN + j] + kAlpha * acc;
    }
  }
}

class Syr2kWorkload : public Workload {
 public:
  Syr2kWorkload() {
    spec_.name = "SYR2K";
    spec_.model_input_mb = 1280.0;
    spec_.ldst_ratio = 0.3019;
    spec_.bki = 1.85;

    MicroblockSpec m0;
    m0.name = "syr2k";
    m0.serial = false;
    m0.work_fraction = 1.0;
    SetMix(&m0, spec_.ldst_ratio, 0.45);
    m0.reuse_window_bytes = 24 * 1024;
    m0.stream_factor = 2.0;
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      Syr2kRows(inst.buffer(0), inst.buffer(1), &inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m0);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.34, 0},
        {"B", DataSectionSpec::Dir::kIn, 0.33, 1},
        {"C_in", DataSectionSpec::Dir::kIn, 0.33, 2},
        {"C", DataSectionSpec::Dir::kOut, 0.33, 2},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(4);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillRandom(&inst.buffer(1), kN * kN, rng);
    FillRandom(&inst.buffer(2), kN * kN, rng);
    inst.buffer(3) = inst.buffer(2);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> c = inst.buffer(3);
    Syr2kRows(inst.buffer(0), inst.buffer(1), &c, 0, kN);
    return NearlyEqual(inst.buffer(2), c);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeSyr2k() { return std::make_unique<Syr2kWorkload>(); }

}  // namespace fabacus
