// nw: DNA sequence alignment (Needleman-Wunsch style), §5.6. The alignment
// is banded: independent horizontal bands each run their own DP, so the
// single microblock is fully parallel ("nw and path" have no serialized
// microblocks in the paper).
//
// Buffers: 0 = sequence 1 (L), 1 = sequence 2 (L), 2 = band scores
//          (kBands x L, out): the last DP row of each band.
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kL = 1024;
constexpr std::size_t kBands = 32;
constexpr std::size_t kBandRows = kL / kBands;
constexpr float kGap = 1.0f;

float Match(float a, float b) { return a * b > 0.0f ? 2.0f : -1.0f; }

// DP for bands [band_begin, band_end); writes each band's final row.
void AlignBands(const std::vector<float>& s1, const std::vector<float>& s2,
                std::vector<float>* out, std::size_t band_begin, std::size_t band_end) {
  std::vector<float> prev(kL + 1);
  std::vector<float> cur(kL + 1);
  for (std::size_t b = band_begin; b < band_end; ++b) {
    for (std::size_t j = 0; j <= kL; ++j) {
      prev[j] = -kGap * static_cast<float>(j);
    }
    for (std::size_t r = 0; r < kBandRows; ++r) {
      const std::size_t i = b * kBandRows + r;
      cur[0] = -kGap * static_cast<float>(r + 1);
      for (std::size_t j = 1; j <= kL; ++j) {
        const float diag = prev[j - 1] + Match(s1[i], s2[j - 1]);
        const float up = prev[j] - kGap;
        const float left = cur[j - 1] - kGap;
        cur[j] = std::max({diag, up, left});
      }
      std::swap(prev, cur);
    }
    for (std::size_t j = 0; j < kL; ++j) {
      (*out)[b * kL + j] = prev[j + 1];
    }
  }
}

class NwWorkload : public Workload {
 public:
  NwWorkload() {
    spec_.name = "nw";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.35;
    spec_.bki = 25.0;

    MicroblockSpec m0;
    m0.name = "align_bands";
    m0.serial = false;
    m0.work_fraction = 1.0;
    SetMix(&m0, spec_.ldst_ratio, 0.20);
    m0.reuse_window_bytes = 2 * (kL + 1) * sizeof(float);
    m0.func_iterations = kBands;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      AlignBands(inst.buffer(0), inst.buffer(1), &inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m0);

    spec_.sections = {
        {"seq1", DataSectionSpec::Dir::kIn, 0.5, 0},
        {"seq2", DataSectionSpec::Dir::kIn, 0.5, 1},
        {"scores", DataSectionSpec::Dir::kOut, 0.5, 2},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(3);
    FillRandom(&inst.buffer(0), kL, rng);
    FillRandom(&inst.buffer(1), kL, rng);
    FillZero(&inst.buffer(2), kBands * kL);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> ref(kBands * kL, 0.0f);
    AlignBands(inst.buffer(0), inst.buffer(1), &ref, 0, kBands);
    return NearlyEqual(inst.buffer(2), ref);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeNw() { return std::make_unique<NwWorkload>(); }

}  // namespace fabacus
