// 2MM: D = alpha A B C + beta D — Table 2: 2 MBLKs (1 serial), 2560 MB,
// LD/ST 33.33%, B/KI 3.76 (compute-intensive).
//
// Buffers: 0 = A, 1 = B, 2 = C, 3 = D (in/out), 4 = tmp = A B, 5 = pristine D.
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 160;
constexpr float kAlpha = 1.5f;
constexpr float kBeta = 1.2f;

void FirstProduct(const std::vector<float>& a, const std::vector<float>& b,
                  std::vector<float>* tmp, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      (*tmp)[i * kN + j] = 0.0f;
    }
    for (std::size_t k = 0; k < kN; ++k) {
      const float aik = kAlpha * a[i * kN + k];
      for (std::size_t j = 0; j < kN; ++j) {
        (*tmp)[i * kN + j] += aik * b[k * kN + j];
      }
    }
  }
}

void SecondProduct(const std::vector<float>& tmp, const std::vector<float>& c,
                   std::vector<float>* d, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      (*d)[i * kN + j] *= kBeta;
    }
    for (std::size_t k = 0; k < kN; ++k) {
      const float tik = tmp[i * kN + k];
      for (std::size_t j = 0; j < kN; ++j) {
        (*d)[i * kN + j] += tik * c[k * kN + j];
      }
    }
  }
}

class TwoMmWorkload : public Workload {
 public:
  TwoMmWorkload() {
    spec_.name = "2MM";
    spec_.model_input_mb = 2560.0;
    spec_.ldst_ratio = 0.3333;
    spec_.bki = 3.76;

    MicroblockSpec m0;
    m0.name = "tmp=A*B";
    m0.serial = false;
    m0.work_fraction = 0.5;
    SetMix(&m0, spec_.ldst_ratio, 0.45);
    m0.reuse_window_bytes = 24 * 1024;
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      FirstProduct(inst.buffer(0), inst.buffer(1), &inst.buffer(4), begin, end);
    };
    spec_.microblocks.push_back(m0);

    MicroblockSpec m1;
    m1.name = "D=tmp*C";
    m1.serial = true;
    m1.work_fraction = 0.5;
    SetMix(&m1, spec_.ldst_ratio, 0.45);
    m1.reuse_window_bytes = 24 * 1024;
    m1.func_iterations = kN;
    m1.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      SecondProduct(inst.buffer(4), inst.buffer(2), &inst.buffer(3), begin, end);
    };
    spec_.microblocks.push_back(m1);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.25, 0},
        {"B", DataSectionSpec::Dir::kIn, 0.25, 1},
        {"C", DataSectionSpec::Dir::kIn, 0.25, 2},
        {"D_in", DataSectionSpec::Dir::kIn, 0.25, 3},
        {"D", DataSectionSpec::Dir::kOut, 0.25, 3},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(6);
    for (int i = 0; i < 4; ++i) {
      FillRandom(&inst.buffer(i), kN * kN, rng);
    }
    FillZero(&inst.buffer(4), kN * kN);
    inst.buffer(5) = inst.buffer(3);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> tmp(kN * kN);
    std::vector<float> d = inst.buffer(5);
    FirstProduct(inst.buffer(0), inst.buffer(1), &tmp, 0, kN);
    SecondProduct(tmp, inst.buffer(2), &d, 0, kN);
    return NearlyEqual(inst.buffer(3), d);
  }
};

}  // namespace

std::unique_ptr<Workload> Make2mm() { return std::make_unique<TwoMmWorkload>(); }

}  // namespace fabacus
