// Synthetic kernel for the Fig-3 motivation study: a configurable fraction
// of the modelled work is serialized (a serial microblock), the rest is
// fully parallel. The functional body is a simple streaming transform so the
// end-to-end data path stays verifiable.
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kElems = 1 << 20;

void Transform(const std::vector<float>& in, std::vector<float>* out, std::size_t begin,
               std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    (*out)[i] = in[i] * 1.7f + 0.3f;
  }
}

class SyntheticWorkload : public Workload {
 public:
  SyntheticWorkload(double serial_ratio, double input_mb, bool io_free) {
    spec_.name = "SYN" + std::to_string(static_cast<int>(serial_ratio * 100));
    spec_.model_input_mb = input_mb;
    spec_.ldst_ratio = 0.40;
    spec_.bki = 150.0;  // ~0.6 GB/s per LWP, matching the Fig-3b scale

    const bool has_serial = serial_ratio > 0.0;
    const bool has_parallel = serial_ratio < 1.0;
    // Functional split: the serial part owns [0, split), the parallel part
    // [split, kElems); a missing part hands its range to the other.
    const std::size_t split = !has_serial ? 0 : (has_parallel ? kElems / 2 : kElems);
    if (has_serial) {
      MicroblockSpec serial;
      serial.name = "serial_part";
      serial.serial = true;
      serial.work_fraction = serial_ratio;
      SetMix(&serial, spec_.ldst_ratio, 0.25);
      serial.func_iterations = split;
      serial.body = [split](AppInstance& inst, std::size_t, std::size_t) {
        Transform(inst.buffer(0), &inst.buffer(1), 0, split);
      };
      spec_.microblocks.push_back(serial);
    }
    if (has_parallel) {
      MicroblockSpec parallel;
      parallel.name = "parallel_part";
      parallel.serial = false;
      parallel.work_fraction = 1.0 - serial_ratio;
      SetMix(&parallel, spec_.ldst_ratio, 0.25);
      parallel.func_iterations = kElems - split;
      parallel.body = [split](AppInstance& inst, std::size_t begin, std::size_t end) {
        Transform(inst.buffer(0), &inst.buffer(1), split + begin, split + end);
      };
      spec_.microblocks.push_back(parallel);
    }

    if (!io_free) {
      spec_.sections = {
          {"in", DataSectionSpec::Dir::kIn, 1.0, 0},
          {"out", DataSectionSpec::Dir::kOut, 1.0, 1},
      };
    }
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(2);
    FillRandom(&inst.buffer(0), kElems, rng);
    FillZero(&inst.buffer(1), kElems);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> ref(kElems, 0.0f);
    Transform(inst.buffer(0), &ref, 0, kElems);
    return NearlyEqual(inst.buffer(1), ref);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeSynthetic(double serial_ratio, double input_mb, bool io_free) {
  return std::make_unique<SyntheticWorkload>(serial_ratio, input_mb, io_free);
}

}  // namespace fabacus
