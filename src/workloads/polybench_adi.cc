// ADI: alternating-direction-implicit solver sweeps — Table 2: 3 MBLKs
// (1 serial), 1920 MB, LD/ST 23.96%, B/KI 35.59 (data-intensive).
//
// Buffers: 0 = u (N x N, in/out), 1 = a (N x N coefficients), 2 = v (N x N
// temporary). Microblock 0 performs the serial forward substitution along
// rows (loop-carried in j); microblocks 1 and 2 are the row-parallel update
// and the column-combination step.
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 512;

void Sweep0(const std::vector<float>& a, std::vector<float>* u) {
  // Forward substitution along each row: v[i][j] depends on v[i][j-1].
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 1; j < kN; ++j) {
      (*u)[i * kN + j] += 0.5f * a[i * kN + j] * (*u)[i * kN + j - 1];
    }
  }
}

void Sweep1(const std::vector<float>& u, const std::vector<float>& a, std::vector<float>* v,
            std::size_t begin, std::size_t end) {
  // Row-parallel explicit update.
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      const float left = j > 0 ? u[i * kN + j - 1] : 0.0f;
      const float right = j + 1 < kN ? u[i * kN + j + 1] : 0.0f;
      (*v)[i * kN + j] = u[i * kN + j] + 0.25f * a[i * kN + j] * (left + right);
    }
  }
}

void Sweep2(const std::vector<float>& v, std::vector<float>* u, std::size_t begin,
            std::size_t end) {
  // Column combination, parallel across rows.
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      const float up = i > 0 ? v[(i - 1) * kN + j] : 0.0f;
      const float down = i + 1 < kN ? v[(i + 1) * kN + j] : 0.0f;
      (*u)[i * kN + j] = v[i * kN + j] + 0.125f * (up + down);
    }
  }
}

class AdiWorkload : public Workload {
 public:
  AdiWorkload() {
    spec_.name = "ADI";
    spec_.model_input_mb = 1920.0;
    spec_.ldst_ratio = 0.2396;
    spec_.bki = 35.59;

    MicroblockSpec m0;
    m0.name = "fwd_subst";
    m0.serial = true;
    m0.work_fraction = 0.3;
    SetMix(&m0, spec_.ldst_ratio, 0.30);
    m0.reuse_window_bytes = kN * sizeof(float) * 2;
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t, std::size_t) {
      Sweep0(inst.buffer(1), &inst.buffer(0));
    };
    spec_.microblocks.push_back(m0);

    MicroblockSpec m1;
    m1.name = "row_update";
    m1.serial = false;
    m1.work_fraction = 0.35;
    SetMix(&m1, spec_.ldst_ratio, 0.30);
    m1.reuse_window_bytes = kN * sizeof(float) * 2;
    m1.func_iterations = kN;
    m1.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      Sweep1(inst.buffer(0), inst.buffer(1), &inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m1);

    MicroblockSpec m2;
    m2.name = "col_combine";
    m2.serial = false;
    m2.work_fraction = 0.35;
    SetMix(&m2, spec_.ldst_ratio, 0.30);
    m2.reuse_window_bytes = kN * sizeof(float) * 3;
    m2.func_iterations = kN;
    m2.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      Sweep2(inst.buffer(2), &inst.buffer(0), begin, end);
    };
    spec_.microblocks.push_back(m2);

    spec_.sections = {
        {"u", DataSectionSpec::Dir::kIn, 0.5, 0},
        {"a", DataSectionSpec::Dir::kIn, 0.5, 1},
        {"u_out", DataSectionSpec::Dir::kOut, 0.5, 0},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(3);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillRandom(&inst.buffer(1), kN * kN, rng);
    FillZero(&inst.buffer(2), kN * kN);
  }

  bool Verify(const AppInstance& inst) const override {
    // Sweep2 writes u in place; verification needs the original input, so it
    // replays from a copy captured via the deterministic preparation. Here we
    // instead verify the *last* stage against the intermediate v (buffer 2),
    // which survives untouched after the run.
    std::vector<float> u(kN * kN, 0.0f);
    Sweep2(inst.buffer(2), &u, 0, kN);
    return NearlyEqual(inst.buffer(0), u);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeAdi() { return std::make_unique<AdiWorkload>(); }

}  // namespace fabacus
