// BICG sub-kernel of BiCGStab: q = A p, s = A^T r — Table 2: 2 MBLKs
// (1 serial), 640 MB, LD/ST 46%, B/KI 72.3 (data-intensive).
//
// Buffers: 0 = A (N x N), 1 = p (N), 2 = r (N), 3 = q (N), 4 = s (N).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 768;

class BicgWorkload : public Workload {
 public:
  BicgWorkload() {
    spec_.name = "BICG";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.46;
    spec_.bki = 72.3;

    MicroblockSpec m0;
    m0.name = "q=A*p";
    m0.serial = false;
    m0.work_fraction = 0.5;
    SetMix(&m0, spec_.ldst_ratio, 0.40);
    m0.reuse_window_bytes = kN * sizeof(float) * 2;
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      const std::vector<float>& a = inst.buffer(0);
      const std::vector<float>& p = inst.buffer(1);
      std::vector<float>& q = inst.buffer(3);
      for (std::size_t i = begin; i < end; ++i) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < kN; ++j) {
          acc += a[i * kN + j] * p[j];
        }
        q[i] = acc;
      }
    };
    spec_.microblocks.push_back(m0);

    MicroblockSpec m1;
    m1.name = "s=At*r";
    m1.serial = true;  // accumulates into s across rows
    m1.work_fraction = 0.5;
    SetMix(&m1, spec_.ldst_ratio, 0.40);
    m1.reuse_window_bytes = kN * sizeof(float) * 2;
    m1.func_iterations = kN;
    m1.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      const std::vector<float>& a = inst.buffer(0);
      const std::vector<float>& r = inst.buffer(2);
      std::vector<float>& s = inst.buffer(4);
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = 0; j < kN; ++j) {
          s[j] += r[i] * a[i * kN + j];
        }
      }
    };
    spec_.microblocks.push_back(m1);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.9, 0},
        {"p", DataSectionSpec::Dir::kIn, 0.05, 1},
        {"r", DataSectionSpec::Dir::kIn, 0.05, 2},
        {"q", DataSectionSpec::Dir::kOut, 0.05, 3},
        {"s", DataSectionSpec::Dir::kOut, 0.05, 4},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(5);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillRandom(&inst.buffer(1), kN, rng);
    FillRandom(&inst.buffer(2), kN, rng);
    FillZero(&inst.buffer(3), kN);
    FillZero(&inst.buffer(4), kN);
  }

  bool Verify(const AppInstance& inst) const override {
    const std::vector<float>& a = inst.buffer(0);
    const std::vector<float>& p = inst.buffer(1);
    const std::vector<float>& r = inst.buffer(2);
    std::vector<float> q(kN, 0.0f);
    std::vector<float> s(kN, 0.0f);
    for (std::size_t i = 0; i < kN; ++i) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < kN; ++j) {
        acc += a[i * kN + j] * p[j];
        s[j] += r[i] * a[i * kN + j];
      }
      q[i] = acc;
    }
    return NearlyEqual(inst.buffer(3), q) && NearlyEqual(inst.buffer(4), s);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeBicg() { return std::make_unique<BicgWorkload>(); }

}  // namespace fabacus
