// GEMM: C = alpha A B + beta C — Table 2: 1 MBLK (0 serial), 192 MB,
// LD/ST 30.77%, B/KI 5.29 (compute-intensive).
//
// Buffers: 0 = A, 1 = B, 2 = C (all N x N; C in/out).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 192;
constexpr float kAlpha = 1.5f;
constexpr float kBeta = 1.2f;

void GemmRows(const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>* c, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      (*c)[i * kN + j] *= kBeta;
    }
    for (std::size_t k = 0; k < kN; ++k) {
      const float aik = kAlpha * a[i * kN + k];
      for (std::size_t j = 0; j < kN; ++j) {
        (*c)[i * kN + j] += aik * b[k * kN + j];
      }
    }
  }
}

class GemmWorkload : public Workload {
 public:
  GemmWorkload() {
    spec_.name = "GEMM";
    spec_.model_input_mb = 192.0;
    spec_.ldst_ratio = 0.3077;
    spec_.bki = 5.29;

    MicroblockSpec m0;
    m0.name = "gemm";
    m0.serial = false;
    m0.work_fraction = 1.0;
    SetMix(&m0, spec_.ldst_ratio, 0.45);
    m0.reuse_window_bytes = 24 * 1024;
    m0.stream_factor = 2.0;
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      GemmRows(inst.buffer(0), inst.buffer(1), &inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m0);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.34, 0},
        {"B", DataSectionSpec::Dir::kIn, 0.33, 1},
        {"C_in", DataSectionSpec::Dir::kIn, 0.33, 2},
        {"C", DataSectionSpec::Dir::kOut, 0.33, 2},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(4);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillRandom(&inst.buffer(1), kN * kN, rng);
    FillRandom(&inst.buffer(2), kN * kN, rng);
    inst.buffer(3) = inst.buffer(2);  // pristine C
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> c = inst.buffer(3);
    GemmRows(inst.buffer(0), inst.buffer(1), &c, 0, kN);
    return NearlyEqual(inst.buffer(2), c);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeGemm() { return std::make_unique<GemmWorkload>(); }

}  // namespace fabacus
