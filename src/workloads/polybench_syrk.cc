// SYRK: C = alpha A A^T + beta C — Table 2: 1 MBLK (0 serial), 1280 MB,
// LD/ST 28.21%, B/KI 5.29 (compute-intensive).
//
// Buffers: 0 = A (N x N), 1 = C (N x N, in/out).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 192;
constexpr float kAlpha = 1.5f;
constexpr float kBeta = 1.2f;

void SyrkRows(const std::vector<float>& a, std::vector<float>* c, std::size_t begin,
              std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < kN; ++k) {
        acc += a[i * kN + k] * a[j * kN + k];
      }
      (*c)[i * kN + j] = kBeta * (*c)[i * kN + j] + kAlpha * acc;
    }
  }
}

class SyrkWorkload : public Workload {
 public:
  SyrkWorkload() {
    spec_.name = "SYRK";
    spec_.model_input_mb = 1280.0;
    spec_.ldst_ratio = 0.2821;
    spec_.bki = 5.29;

    MicroblockSpec m0;
    m0.name = "syrk";
    m0.serial = false;
    m0.work_fraction = 1.0;
    SetMix(&m0, spec_.ldst_ratio, 0.45);
    m0.reuse_window_bytes = 24 * 1024;  // blocked rank-k tiles
    m0.stream_factor = 2.0;
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      SyrkRows(inst.buffer(0), &inst.buffer(1), begin, end);
    };
    spec_.microblocks.push_back(m0);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.5, 0},
        {"C_in", DataSectionSpec::Dir::kIn, 0.5, 1},
        {"C", DataSectionSpec::Dir::kOut, 0.5, 1},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(3);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillRandom(&inst.buffer(1), kN * kN, rng);
    inst.buffer(2) = inst.buffer(1);  // pristine C for verification
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> c = inst.buffer(2);
    SyrkRows(inst.buffer(0), &c, 0, kN);
    return NearlyEqual(inst.buffer(1), c);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeSyrk() { return std::make_unique<SyrkWorkload>(); }

}  // namespace fabacus
