// ATAX: y = A^T (A x)  — Table 2: 2 MBLKs (1 serial), 640 MB input,
// LD/ST 45.61%, B/KI 68.86 (data-intensive).
//
// Buffers: 0 = A (N x N), 1 = x (N), 2 = tmp (N), 3 = y (N).
// Microblock 0 (parallel over rows):   tmp = A x
// Microblock 1 (serial, reduction over rows into columns): y = A^T tmp
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 768;

class AtaxWorkload : public Workload {
 public:
  AtaxWorkload() {
    spec_.name = "ATAX";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.4561;
    spec_.bki = 68.86;

    MicroblockSpec m0;
    m0.name = "tmp=A*x";
    m0.serial = false;
    m0.work_fraction = 0.55;
    SetMix(&m0, spec_.ldst_ratio, 0.40);
    m0.reuse_window_bytes = kN * sizeof(float) * 2;  // one row + x
    m0.stream_factor = 1.0;
    m0.func_iterations = kN;  // rows
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      const std::vector<float>& a = inst.buffer(0);
      const std::vector<float>& x = inst.buffer(1);
      std::vector<float>& tmp = inst.buffer(2);
      for (std::size_t i = begin; i < end; ++i) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < kN; ++j) {
          acc += a[i * kN + j] * x[j];
        }
        tmp[i] = acc;
      }
    };
    spec_.microblocks.push_back(m0);

    MicroblockSpec m1;
    m1.name = "y=At*tmp";
    m1.serial = true;  // column reduction: write hazards across rows
    m1.work_fraction = 0.45;
    SetMix(&m1, spec_.ldst_ratio, 0.40);
    m1.reuse_window_bytes = kN * sizeof(float) * 2;
    m1.stream_factor = 1.0;
    m1.func_iterations = kN;
    m1.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      const std::vector<float>& a = inst.buffer(0);
      const std::vector<float>& tmp = inst.buffer(2);
      std::vector<float>& y = inst.buffer(3);
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = 0; j < kN; ++j) {
          y[j] += a[i * kN + j] * tmp[i];
        }
      }
    };
    spec_.microblocks.push_back(m1);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.92, 0},
        {"x", DataSectionSpec::Dir::kIn, 0.04, 1},
        {"y", DataSectionSpec::Dir::kOut, 0.04, 3},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(4);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillRandom(&inst.buffer(1), kN, rng);
    FillZero(&inst.buffer(2), kN);
    FillZero(&inst.buffer(3), kN);
  }

  bool Verify(const AppInstance& inst) const override {
    const std::vector<float>& a = inst.buffer(0);
    const std::vector<float>& x = inst.buffer(1);
    std::vector<float> tmp(kN, 0.0f);
    std::vector<float> y(kN, 0.0f);
    for (std::size_t i = 0; i < kN; ++i) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < kN; ++j) {
        acc += a[i * kN + j] * x[j];
      }
      tmp[i] = acc;
    }
    for (std::size_t i = 0; i < kN; ++i) {
      for (std::size_t j = 0; j < kN; ++j) {
        y[j] += a[i * kN + j] * tmp[i];
      }
    }
    return NearlyEqual(inst.buffer(3), y);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeAtax() { return std::make_unique<AtaxWorkload>(); }

}  // namespace fabacus
