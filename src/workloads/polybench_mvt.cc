// MVT: x1 += A y1, x2 += A^T y2 — Table 2: 1 MBLK (0 serial), 640 MB,
// LD/ST 45.1%, B/KI 72.05 (data-intensive).
//
// Buffers: 0 = A (N x N), 1 = y1 (N), 2 = y2 (N), 3 = x1 (N), 4 = x2 (N).
// Both products are expressed per output row i, so the single microblock is
// fully parallel.
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 768;

void MvtRows(const AppInstance& inst, std::vector<float>* x1, std::vector<float>* x2,
             std::size_t begin, std::size_t end) {
  const std::vector<float>& a = inst.buffer(0);
  const std::vector<float>& y1 = inst.buffer(1);
  const std::vector<float>& y2 = inst.buffer(2);
  for (std::size_t i = begin; i < end; ++i) {
    float acc1 = 0.0f;
    float acc2 = 0.0f;
    for (std::size_t j = 0; j < kN; ++j) {
      acc1 += a[i * kN + j] * y1[j];
      acc2 += a[j * kN + i] * y2[j];
    }
    (*x1)[i] += acc1;
    (*x2)[i] += acc2;
  }
}

class MvtWorkload : public Workload {
 public:
  MvtWorkload() {
    spec_.name = "MVT";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.451;
    spec_.bki = 72.05;

    MicroblockSpec m0;
    m0.name = "mvt";
    m0.serial = false;
    m0.work_fraction = 1.0;
    SetMix(&m0, spec_.ldst_ratio, 0.40);
    m0.reuse_window_bytes = kN * sizeof(float) * 3;
    m0.stream_factor = 2.0;  // streams A twice (row- and column-order)
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      MvtRows(inst, &inst.buffer(3), &inst.buffer(4), begin, end);
    };
    spec_.microblocks.push_back(m0);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.9, 0},
        {"y1", DataSectionSpec::Dir::kIn, 0.05, 1},
        {"y2", DataSectionSpec::Dir::kIn, 0.05, 2},
        {"x1", DataSectionSpec::Dir::kOut, 0.05, 3},
        {"x2", DataSectionSpec::Dir::kOut, 0.05, 4},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(5);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillRandom(&inst.buffer(1), kN, rng);
    FillRandom(&inst.buffer(2), kN, rng);
    FillZero(&inst.buffer(3), kN);
    FillZero(&inst.buffer(4), kN);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> x1(kN, 0.0f);
    std::vector<float> x2(kN, 0.0f);
    MvtRows(inst, &x1, &x2, 0, kN);
    return NearlyEqual(inst.buffer(3), x1) && NearlyEqual(inst.buffer(4), x2);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeMvt() { return std::make_unique<MvtWorkload>(); }

}  // namespace fabacus
