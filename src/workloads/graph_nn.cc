// nn: k-nearest-neighbour search (Rodinia-style), §5.6. Distance evaluation
// is embarrassingly parallel; the top-k selection is the serial microblock.
//
// Buffers: 0 = points (2 floats each), 1 = query (2), 2 = distances (P),
//          3 = k nearest distances (K, out, ascending).
#include <cmath>

#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kPoints = 131072;
constexpr std::size_t kK = 16;

void ComputeDistances(const std::vector<float>& pts, const std::vector<float>& query,
                      std::vector<float>* dist, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const float dx = pts[2 * i] - query[0];
    const float dy = pts[2 * i + 1] - query[1];
    (*dist)[i] = std::sqrt(dx * dx + dy * dy);
  }
}

void SelectTopK(const std::vector<float>& dist, std::vector<float>* topk) {
  topk->assign(kK, 1e30f);
  for (std::size_t i = 0; i < kPoints; ++i) {
    const float d = dist[i];
    if (d < (*topk)[kK - 1]) {
      // Insertion into the sorted top-k window.
      std::size_t pos = kK - 1;
      while (pos > 0 && (*topk)[pos - 1] > d) {
        (*topk)[pos] = (*topk)[pos - 1];
        --pos;
      }
      (*topk)[pos] = d;
    }
  }
}

class NnWorkload : public Workload {
 public:
  NnWorkload() {
    spec_.name = "nn";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.45;
    spec_.bki = 60.0;

    MicroblockSpec m0;
    m0.name = "distances";
    m0.serial = false;
    m0.work_fraction = 0.8;
    SetMix(&m0, spec_.ldst_ratio, 0.35);
    m0.func_iterations = kPoints;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      ComputeDistances(inst.buffer(0), inst.buffer(1), &inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m0);

    MicroblockSpec m1;
    m1.name = "topk";
    m1.serial = true;
    m1.work_fraction = 0.2;
    SetMix(&m1, spec_.ldst_ratio, 0.10);
    m1.func_iterations = kPoints;
    m1.body = [](AppInstance& inst, std::size_t, std::size_t) {
      SelectTopK(inst.buffer(2), &inst.buffer(3));
    };
    spec_.microblocks.push_back(m1);

    spec_.sections = {
        {"points", DataSectionSpec::Dir::kIn, 0.95, 0},
        {"query", DataSectionSpec::Dir::kIn, 0.05, 1},
        {"topk", DataSectionSpec::Dir::kOut, 0.05, 3},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(4);
    FillRandom(&inst.buffer(0), 2 * kPoints, rng);
    FillRandom(&inst.buffer(1), 2, rng);
    FillZero(&inst.buffer(2), kPoints);
    FillZero(&inst.buffer(3), kK);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> dist(kPoints, 0.0f);
    std::vector<float> topk;
    ComputeDistances(inst.buffer(0), inst.buffer(1), &dist, 0, kPoints);
    SelectTopK(dist, &topk);
    return NearlyEqual(inst.buffer(3), topk);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeNn() { return std::make_unique<NnWorkload>(); }

}  // namespace fabacus
