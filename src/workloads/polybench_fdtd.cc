// FDTD-2D: one Yee-method time step — Table 2: 3 MBLKs (1 serial), 1920 MB,
// LD/ST 27.27%, B/KI 38.52 (data-intensive). Matches the paper's Figure 6:
// m0 (serial) applies the excitation fict to the ey boundary, m1 computes the
// ey/ex differentials, m2 produces the output hz.
//
// Buffers: 0 = fict (T), 1 = ex (N x N), 2 = ey (N x N), 3 = hz (N x N).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 512;

void ApplyFict(const std::vector<float>& fict, std::vector<float>* ey) {
  // m0: convert the 1-D excitation into the first row of ey (paper Fig 6a).
  for (std::size_t j = 0; j < kN; ++j) {
    (*ey)[j] = fict[j % fict.size()];
  }
}

void UpdateFields(std::vector<float>* ex, std::vector<float>* ey,
                  const std::vector<float>& hz, std::size_t begin, std::size_t end) {
  // m1: ey/hz and ex/hz differentials.
  for (std::size_t i = std::max<std::size_t>(begin, 1); i < end; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      (*ey)[i * kN + j] -= 0.5f * (hz[i * kN + j] - hz[(i - 1) * kN + j]);
    }
  }
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 1; j < kN; ++j) {
      (*ex)[i * kN + j] -= 0.5f * (hz[i * kN + j] - hz[i * kN + j - 1]);
    }
  }
}

void UpdateHz(std::vector<float>* hz, const std::vector<float>& ex,
              const std::vector<float>& ey, std::size_t begin, std::size_t end) {
  // m2: hz update; each output element independent (paper: four screens).
  for (std::size_t i = begin; i < std::min(end, kN - 1); ++i) {
    for (std::size_t j = 0; j < kN - 1; ++j) {
      (*hz)[i * kN + j] -= 0.7f * (ex[i * kN + j + 1] - ex[i * kN + j] +
                                   ey[(i + 1) * kN + j] - ey[i * kN + j]);
    }
  }
}

class FdtdWorkload : public Workload {
 public:
  FdtdWorkload() {
    spec_.name = "FDTD";
    spec_.model_input_mb = 1920.0;
    spec_.ldst_ratio = 0.2727;
    spec_.bki = 38.52;

    MicroblockSpec m0;
    m0.name = "apply_fict";
    m0.serial = true;
    m0.work_fraction = 0.05;
    SetMix(&m0, spec_.ldst_ratio, 0.25);
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t, std::size_t) {
      ApplyFict(inst.buffer(0), &inst.buffer(2));
    };
    spec_.microblocks.push_back(m0);

    MicroblockSpec m1;
    m1.name = "ex_ey_diff";
    m1.serial = false;
    m1.work_fraction = 0.5;
    SetMix(&m1, spec_.ldst_ratio, 0.3);
    m1.reuse_window_bytes = 3 * kN * sizeof(float);
    m1.func_iterations = kN;
    m1.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      UpdateFields(&inst.buffer(1), &inst.buffer(2), inst.buffer(3), begin, end);
    };
    spec_.microblocks.push_back(m1);

    MicroblockSpec m2;
    m2.name = "hz_update";
    m2.serial = false;
    m2.work_fraction = 0.45;
    SetMix(&m2, spec_.ldst_ratio, 0.3);
    m2.reuse_window_bytes = 3 * kN * sizeof(float);
    m2.func_iterations = kN;
    m2.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      UpdateHz(&inst.buffer(3), inst.buffer(1), inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m2);

    spec_.sections = {
        {"fict", DataSectionSpec::Dir::kIn, 0.02, 0},
        {"ex", DataSectionSpec::Dir::kIn, 0.32, 1},
        {"ey", DataSectionSpec::Dir::kIn, 0.32, 2},
        {"hz_in", DataSectionSpec::Dir::kIn, 0.34, 3},
        {"hz", DataSectionSpec::Dir::kOut, 0.34, 3},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(4);
    FillRandom(&inst.buffer(0), kN, rng);
    FillRandom(&inst.buffer(1), kN * kN, rng);
    FillRandom(&inst.buffer(2), kN * kN, rng);
    FillRandom(&inst.buffer(3), kN * kN, rng);
    // Stash pristine copies for verification (buffers 4-6 are scratch and
    // never sections, so they survive the run untouched).
    inst.EnsureBuffers(8);
    inst.buffer(4) = inst.buffer(1);
    inst.buffer(5) = inst.buffer(2);
    inst.buffer(6) = inst.buffer(3);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> ex = inst.buffer(4);
    std::vector<float> ey = inst.buffer(5);
    std::vector<float> hz = inst.buffer(6);
    ApplyFict(inst.buffer(0), &ey);
    UpdateFields(&ex, &ey, hz, 0, kN);
    UpdateHz(&hz, ex, ey, 0, kN);
    return NearlyEqual(inst.buffer(1), ex) && NearlyEqual(inst.buffer(2), ey) &&
           NearlyEqual(inst.buffer(3), hz);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeFdtd() { return std::make_unique<FdtdWorkload>(); }

}  // namespace fabacus
