#include "src/workloads/tenant_mix.h"

#include "src/workloads/polybench_util.h"

namespace fabacus {
namespace {

constexpr std::size_t kBullyElems = 1 << 18;
constexpr std::size_t kProbeElems = 1 << 14;

void Saxpyish(const std::vector<float>& in, std::vector<float>* out, std::size_t begin,
              std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    (*out)[i] = in[i] * 2.5f - 1.25f;
  }
}

// The noisy neighbor: four parallel microblocks of deep compute (bki ~2 puts
// it firmly in the paper's compute-intensive group, so each microblock holds
// its LWP for a long stretch), plus a full-size output section that keeps the
// write path and GC busy.
class BullyWriterWorkload : public Workload {
 public:
  explicit BullyWriterWorkload(double input_mb) {
    spec_.name = "BULLY";
    spec_.model_input_mb = input_mb;
    spec_.ldst_ratio = 0.30;
    spec_.bki = 1.0;
    for (int m = 0; m < 16; ++m) {
      MicroblockSpec mb;
      mb.name = "stage" + std::to_string(m);
      mb.serial = false;
      mb.work_fraction = 1.0 / 16.0;
      SetMix(&mb, spec_.ldst_ratio, 0.3);
      mb.func_iterations = kBullyElems;
      mb.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
        Saxpyish(inst.buffer(0), &inst.buffer(1), begin, end);
      };
      spec_.microblocks.push_back(mb);
    }
    spec_.sections = {
        {"in", DataSectionSpec::Dir::kIn, 1.0, 0},
        {"out", DataSectionSpec::Dir::kOut, 1.0, 1},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(2);
    FillRandom(&inst.buffer(0), kBullyElems, rng);
    FillZero(&inst.buffer(1), kBullyElems);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> ref(kBullyElems, 0.0f);
    Saxpyish(inst.buffer(0), &ref, 0, kBullyElems);
    return NearlyEqual(inst.buffer(1), ref);
  }
};

// The latency-sensitive probe: one shallow parallel microblock over a small
// input — the kind of interactive kernel whose tail latency a noisy neighbor
// wrecks under FIFO arbitration.
class LatencyProbeWorkload : public Workload {
 public:
  explicit LatencyProbeWorkload(double input_mb) {
    spec_.name = "PROBE";
    spec_.model_input_mb = input_mb;
    spec_.ldst_ratio = 0.45;
    spec_.bki = 60.0;
    MicroblockSpec mb;
    mb.name = "probe";
    mb.serial = false;
    mb.work_fraction = 1.0;
    SetMix(&mb, spec_.ldst_ratio, 0.25);
    mb.func_iterations = kProbeElems;
    mb.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      Saxpyish(inst.buffer(0), &inst.buffer(1), begin, end);
    };
    spec_.microblocks.push_back(mb);
    spec_.sections = {
        {"in", DataSectionSpec::Dir::kIn, 1.0, 0},
        {"out", DataSectionSpec::Dir::kOut, 1.0, 1},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(2);
    FillRandom(&inst.buffer(0), kProbeElems, rng);
    FillZero(&inst.buffer(1), kProbeElems);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> ref(kProbeElems, 0.0f);
    Saxpyish(inst.buffer(0), &ref, 0, kProbeElems);
    return NearlyEqual(inst.buffer(1), ref);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeBullyWriter(double input_mb) {
  return std::make_unique<BullyWriterWorkload>(input_mb);
}

std::unique_ptr<Workload> MakeLatencyProbe(double input_mb) {
  return std::make_unique<LatencyProbeWorkload>(input_mb);
}

TenantSchedConfig NoisyNeighborTenants(TenantSchedPolicy policy) {
  TenantSchedConfig cfg;
  cfg.policy = policy;
  TenantSpec bully;
  bully.name = "bully";
  TenantSpec probe;
  probe.name = "probe";
  probe.latency_class = true;
  cfg.tenants = {bully, probe};
  return cfg;
}

TenantSchedConfig FairShareTenants(TenantSchedPolicy policy,
                                   const std::vector<double>& weights) {
  TenantSchedConfig cfg;
  cfg.policy = policy;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    TenantSpec t;
    t.name = "t" + std::to_string(i);
    t.weight = weights[i];
    cfg.tenants.push_back(t);
  }
  return cfg;
}

TenantSchedConfig QuotaTenants(std::uint64_t quota_bytes) {
  TenantSchedConfig cfg;
  cfg.policy = TenantSchedPolicy::kPaper;
  TenantSpec unlimited;
  unlimited.name = "unlimited";
  TenantSpec capped;
  capped.name = "capped";
  capped.quota_bytes = quota_bytes;
  cfg.tenants = {unlimited, capped};
  return cfg;
}

}  // namespace fabacus
