// GESUM (gesummv): y = alpha A x + beta B x — Table 2: 1 MBLK (0 serial),
// 640 MB, LD/ST 48.08%, B/KI 72.13 (data-intensive).
//
// Buffers: 0 = A (N x N), 1 = B (N x N), 2 = x (N), 3 = y (N).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 768;
constexpr float kAlpha = 1.5f;
constexpr float kBeta = 1.2f;

void GesummvRows(const AppInstance& inst, std::vector<float>* y, std::size_t begin,
                 std::size_t end) {
  const std::vector<float>& a = inst.buffer(0);
  const std::vector<float>& b = inst.buffer(1);
  const std::vector<float>& x = inst.buffer(2);
  for (std::size_t i = begin; i < end; ++i) {
    float sa = 0.0f;
    float sb = 0.0f;
    for (std::size_t j = 0; j < kN; ++j) {
      sa += a[i * kN + j] * x[j];
      sb += b[i * kN + j] * x[j];
    }
    (*y)[i] = kAlpha * sa + kBeta * sb;
  }
}

class GesummvWorkload : public Workload {
 public:
  GesummvWorkload() {
    spec_.name = "GESUM";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.4808;
    spec_.bki = 72.13;

    MicroblockSpec m0;
    m0.name = "gesummv";
    m0.serial = false;
    m0.work_fraction = 1.0;
    SetMix(&m0, spec_.ldst_ratio, 0.40);
    m0.reuse_window_bytes = kN * sizeof(float) * 3;
    m0.func_iterations = kN;
    m0.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      GesummvRows(inst, &inst.buffer(3), begin, end);
    };
    spec_.microblocks.push_back(m0);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.47, 0},
        {"B", DataSectionSpec::Dir::kIn, 0.47, 1},
        {"x", DataSectionSpec::Dir::kIn, 0.06, 2},
        {"y", DataSectionSpec::Dir::kOut, 0.06, 3},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(4);
    FillRandom(&inst.buffer(0), kN * kN, rng);
    FillRandom(&inst.buffer(1), kN * kN, rng);
    FillRandom(&inst.buffer(2), kN, rng);
    FillZero(&inst.buffer(3), kN);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> y(kN, 0.0f);
    GesummvRows(inst, &y, 0, kN);
    return NearlyEqual(inst.buffer(3), y);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeGesummv() { return std::make_unique<GesummvWorkload>(); }

}  // namespace fabacus
