// COVAR: covariance matrix of an N x M data set — Table 2: 3 MBLKs
// (1 serial), 640 MB, LD/ST 34.33%, B/KI 2.86 (compute-intensive).
//
// Buffers: 0 = data (N samples x M features, in/centered in place),
//          1 = mean (M), 2 = cov (M x M), 3 = pristine data.
// m0 (serial): column means; m1 (parallel over samples): center the data;
// m2 (parallel over feature rows): covariance.
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kNSamples = 256;
constexpr std::size_t kM = 256;

void ColumnMeans(const std::vector<float>& data, std::vector<float>* mean) {
  for (std::size_t j = 0; j < kM; ++j) {
    (*mean)[j] = 0.0f;
  }
  for (std::size_t i = 0; i < kNSamples; ++i) {
    for (std::size_t j = 0; j < kM; ++j) {
      (*mean)[j] += data[i * kM + j];
    }
  }
  for (std::size_t j = 0; j < kM; ++j) {
    (*mean)[j] /= static_cast<float>(kNSamples);
  }
}

void CenterRows(std::vector<float>* data, const std::vector<float>& mean, std::size_t begin,
                std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kM; ++j) {
      (*data)[i * kM + j] -= mean[j];
    }
  }
}

void CovRows(const std::vector<float>& data, std::vector<float>* cov, std::size_t begin,
             std::size_t end) {
  for (std::size_t j1 = begin; j1 < end; ++j1) {
    for (std::size_t j2 = 0; j2 < kM; ++j2) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < kNSamples; ++i) {
        acc += data[i * kM + j1] * data[i * kM + j2];
      }
      (*cov)[j1 * kM + j2] = acc / static_cast<float>(kNSamples - 1);
    }
  }
}

class CovarWorkload : public Workload {
 public:
  CovarWorkload() {
    spec_.name = "COVAR";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.3433;
    spec_.bki = 2.86;

    MicroblockSpec m0;
    m0.name = "means";
    m0.serial = true;
    m0.work_fraction = 0.05;
    SetMix(&m0, spec_.ldst_ratio, 0.30);
    m0.func_iterations = kM;
    m0.body = [](AppInstance& inst, std::size_t, std::size_t) {
      ColumnMeans(inst.buffer(0), &inst.buffer(1));
    };
    spec_.microblocks.push_back(m0);

    MicroblockSpec m1;
    m1.name = "center";
    m1.serial = false;
    m1.work_fraction = 0.1;
    SetMix(&m1, spec_.ldst_ratio, 0.30);
    m1.func_iterations = kNSamples;
    m1.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      CenterRows(&inst.buffer(0), inst.buffer(1), begin, end);
    };
    spec_.microblocks.push_back(m1);

    MicroblockSpec m2;
    m2.name = "cov";
    m2.serial = false;
    m2.work_fraction = 0.85;
    SetMix(&m2, spec_.ldst_ratio, 0.45);
    m2.reuse_window_bytes = 24 * 1024;
    m2.stream_factor = 2.0;
    m2.func_iterations = kM;
    m2.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      CovRows(inst.buffer(0), &inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m2);

    spec_.sections = {
        {"data", DataSectionSpec::Dir::kIn, 0.5, 0},
        {"cov", DataSectionSpec::Dir::kOut, 0.5, 2},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(4);
    FillRandom(&inst.buffer(0), kNSamples * kM, rng);
    FillZero(&inst.buffer(1), kM);
    FillZero(&inst.buffer(2), kM * kM);
    inst.buffer(3) = inst.buffer(0);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> data = inst.buffer(3);
    std::vector<float> mean(kM, 0.0f);
    std::vector<float> cov(kM * kM, 0.0f);
    ColumnMeans(data, &mean);
    CenterRows(&data, mean, 0, kNSamples);
    CovRows(data, &cov, 0, kM);
    return NearlyEqual(inst.buffer(2), cov, 5e-4f);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeCovar() { return std::make_unique<CovarWorkload>(); }

}  // namespace fabacus
