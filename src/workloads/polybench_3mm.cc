// 3MM: G = (A B)(C D) — Table 2: 3 MBLKs (1 serial), 2560 MB, LD/ST 33.68%,
// B/KI 2.48 (compute-intensive).
//
// Buffers: 0 = A, 1 = B, 2 = C, 3 = D, 4 = E = A B, 5 = F = C D, 6 = G = E F.
// The final product is the serial microblock (the stage their port runs as a
// single instruction stream).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kN = 160;

void MatmulRows(const std::vector<float>& a, const std::vector<float>& b,
                std::vector<float>* c, std::size_t n, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      (*c)[i * n + j] = 0.0f;
    }
    for (std::size_t k = 0; k < n; ++k) {
      const float aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        (*c)[i * n + j] += aik * b[k * n + j];
      }
    }
  }
}

class ThreeMmWorkload : public Workload {
 public:
  ThreeMmWorkload() {
    spec_.name = "3MM";
    spec_.model_input_mb = 2560.0;
    spec_.ldst_ratio = 0.3368;
    spec_.bki = 2.48;

    auto make_mblk = [this](const char* name, bool serial, double frac, int ia, int ib,
                            int ic) {
      MicroblockSpec m;
      m.name = name;
      m.serial = serial;
      m.work_fraction = frac;
      SetMix(&m, spec_.ldst_ratio, 0.45);
      m.reuse_window_bytes = 24 * 1024;
      m.stream_factor = 1.0;
      m.func_iterations = kN;
      m.body = [ia, ib, ic](AppInstance& inst, std::size_t begin, std::size_t end) {
        MatmulRows(inst.buffer(ia), inst.buffer(ib), &inst.buffer(ic), kN, begin, end);
      };
      spec_.microblocks.push_back(m);
    };
    make_mblk("E=A*B", false, 0.34, 0, 1, 4);
    make_mblk("F=C*D", false, 0.33, 2, 3, 5);
    make_mblk("G=E*F", true, 0.33, 4, 5, 6);

    spec_.sections = {
        {"A", DataSectionSpec::Dir::kIn, 0.25, 0},
        {"B", DataSectionSpec::Dir::kIn, 0.25, 1},
        {"C", DataSectionSpec::Dir::kIn, 0.25, 2},
        {"D", DataSectionSpec::Dir::kIn, 0.25, 3},
        {"G", DataSectionSpec::Dir::kOut, 0.25, 6},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(7);
    for (int i = 0; i < 4; ++i) {
      FillRandom(&inst.buffer(i), kN * kN, rng);
    }
    for (int i = 4; i < 7; ++i) {
      FillZero(&inst.buffer(i), kN * kN);
    }
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> e(kN * kN);
    std::vector<float> f(kN * kN);
    std::vector<float> g(kN * kN);
    MatmulRows(inst.buffer(0), inst.buffer(1), &e, kN, 0, kN);
    MatmulRows(inst.buffer(2), inst.buffer(3), &f, kN, 0, kN);
    MatmulRows(e, f, &g, kN, 0, kN);
    return NearlyEqual(inst.buffer(6), g);
  }
};

}  // namespace

std::unique_ptr<Workload> Make3mm() { return std::make_unique<ThreeMmWorkload>(); }

}  // namespace fabacus
