// wc: MapReduce wordcount (Mars-style), §5.6. The map phase classifies each
// token in parallel; the reduce phase builds the histogram serially.
//
// Buffers: 0 = tokens (P), 1 = counts (V, out), 2 = classes (P, scratch).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kTokens = 262144;
constexpr std::size_t kVocab = 1024;

std::size_t Classify(float token) {
  // A small "hash" standing in for tokenization: deterministic and cheap.
  const std::uint32_t h = static_cast<std::uint32_t>(token * 7919.0f) * 2654435761u;
  return h % kVocab;
}

class WordcountWorkload : public Workload {
 public:
  WordcountWorkload() {
    spec_.name = "wc";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.40;
    spec_.bki = 55.0;

    MicroblockSpec map;
    map.name = "map";
    map.serial = false;
    map.work_fraction = 0.7;
    SetMix(&map, spec_.ldst_ratio, 0.20);
    map.func_iterations = kTokens;
    map.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      const std::vector<float>& tokens = inst.buffer(0);
      std::vector<float>& classes = inst.buffer(2);
      for (std::size_t i = begin; i < end; ++i) {
        classes[i] = static_cast<float>(Classify(tokens[i]));
      }
    };
    spec_.microblocks.push_back(map);

    MicroblockSpec reduce;
    reduce.name = "reduce";
    reduce.serial = true;
    reduce.work_fraction = 0.3;
    SetMix(&reduce, spec_.ldst_ratio, 0.10);
    reduce.func_iterations = kTokens;
    reduce.body = [](AppInstance& inst, std::size_t, std::size_t) {
      const std::vector<float>& classes = inst.buffer(2);
      std::vector<float>& counts = inst.buffer(1);
      for (std::size_t i = 0; i < kTokens; ++i) {
        counts[static_cast<std::size_t>(classes[i])] += 1.0f;
      }
    };
    spec_.microblocks.push_back(reduce);

    spec_.sections = {
        {"tokens", DataSectionSpec::Dir::kIn, 1.0, 0},
        {"counts", DataSectionSpec::Dir::kOut, 0.05, 1},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(3);
    FillRandom(&inst.buffer(0), kTokens, rng);
    FillZero(&inst.buffer(1), kVocab);
    FillZero(&inst.buffer(2), kTokens);
  }

  bool Verify(const AppInstance& inst) const override {
    const std::vector<float>& tokens = inst.buffer(0);
    std::vector<float> counts(kVocab, 0.0f);
    for (std::size_t i = 0; i < kTokens; ++i) {
      counts[Classify(tokens[i])] += 1.0f;
    }
    return NearlyEqual(inst.buffer(1), counts);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeWordcount() { return std::make_unique<WordcountWorkload>(); }

}  // namespace fabacus
