// Multi-tenant QoS scenario building blocks (docs/QOS.md):
//  * BullyWriter — a compute-heavy, write-heavy kernel that monopolizes LWPs
//    and generates flash write pressure (the noisy neighbor).
//  * LatencyProbe — a small, latency-sensitive kernel whose p99 the QoS
//    experiments track.
//  * TenantSchedConfig builders for the three canonical scenarios: noisy
//    neighbor (bully vs latency-class probe), N-way fair share, and quota
//    exhaustion.
// All kernels are functionally verifiable, like every other workload.
#ifndef SRC_WORKLOADS_TENANT_MIX_H_
#define SRC_WORKLOADS_TENANT_MIX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/tenant.h"
#include "src/workloads/workload.h"

namespace fabacus {

// Compute-heavy bully: bki ~1 (deep compute per byte) over sixteen parallel
// microblocks, with a full-size output section so it also stresses the write
// path and GC. `scale` multiplies the modelled input volume.
std::unique_ptr<Workload> MakeBullyWriter(double input_mb = 8.0);

// Latency-sensitive probe: shallow compute (bki ~60), one parallel
// microblock. Load-dominated, so its completion time tracks how quickly the
// device serves its flash reads under contention.
std::unique_ptr<Workload> MakeLatencyProbe(double input_mb = 32.0);

// Two tenants: 0 = "bully" (throughput class), 1 = "probe" (latency class).
// `policy` selects paper-default or weighted-fair arbitration.
TenantSchedConfig NoisyNeighborTenants(TenantSchedPolicy policy);

// `weights.size()` tenants with the given weights, none latency-class.
TenantSchedConfig FairShareTenants(TenantSchedPolicy policy,
                                   const std::vector<double>& weights);

// Two tenants where tenant 1 has a flash-space quota of `quota_bytes`
// (tenant 0 unlimited). Used by the quota-exhaustion scenarios.
TenantSchedConfig QuotaTenants(std::uint64_t quota_bytes);

}  // namespace fabacus

#endif  // SRC_WORKLOADS_TENANT_MIX_H_
