// bfs: level-synchronous graph traversal (Rodinia-style), §5.6. Three
// Bellman-Ford-style relaxation rounds; each round is a parallel edge-relax
// microblock followed by a serial frontier-merge microblock ("bfs and nn"
// are the graph workloads with serial microblocks in the paper).
//
// Buffers: 0 = edges (2 floats per edge: src, dst), 1 = levels (N, in/out),
//          2 = next levels (N, scratch).
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kNodes = 32768;
constexpr std::size_t kEdges = 131072;
constexpr int kRounds = 3;
constexpr float kInf = 1e9f;

void RelaxEdges(const std::vector<float>& edges, const std::vector<float>& levels,
                std::vector<float>* next, std::size_t begin, std::size_t end) {
  for (std::size_t e = begin; e < end; ++e) {
    const std::size_t src = static_cast<std::size_t>(edges[2 * e]);
    const std::size_t dst = static_cast<std::size_t>(edges[2 * e + 1]);
    const float cand = levels[src] + 1.0f;
    if (cand < (*next)[dst]) {
      (*next)[dst] = cand;
    }
  }
}

void MergeFrontier(std::vector<float>* levels, std::vector<float>* next) {
  for (std::size_t v = 0; v < kNodes; ++v) {
    if ((*next)[v] < (*levels)[v]) {
      (*levels)[v] = (*next)[v];
    }
    (*next)[v] = (*levels)[v];
  }
}

class BfsWorkload : public Workload {
 public:
  BfsWorkload() {
    spec_.name = "bfs";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.42;
    spec_.bki = 45.0;

    const double relax_frac = 0.8 / kRounds;
    const double merge_frac = 0.2 / kRounds;
    for (int r = 0; r < kRounds; ++r) {
      MicroblockSpec relax;
      relax.name = "relax" + std::to_string(r);
      relax.serial = false;
      relax.work_fraction = relax_frac;
      SetMix(&relax, spec_.ldst_ratio, 0.15);
      relax.reuse_window_bytes = 256 * 1024;  // scattered level accesses
      relax.func_iterations = kEdges;
      relax.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
        RelaxEdges(inst.buffer(0), inst.buffer(1), &inst.buffer(2), begin, end);
      };
      spec_.microblocks.push_back(relax);

      MicroblockSpec merge;
      merge.name = "merge" + std::to_string(r);
      merge.serial = true;
      merge.work_fraction = merge_frac;
      SetMix(&merge, spec_.ldst_ratio, 0.10);
      merge.func_iterations = kNodes;
      merge.body = [](AppInstance& inst, std::size_t, std::size_t) {
        MergeFrontier(&inst.buffer(1), &inst.buffer(2));
      };
      spec_.microblocks.push_back(merge);
    }

    spec_.sections = {
        {"edges", DataSectionSpec::Dir::kIn, 0.8, 0},
        {"levels_in", DataSectionSpec::Dir::kIn, 0.2, 1},
        {"levels", DataSectionSpec::Dir::kOut, 0.2, 1},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(3);
    std::vector<float>& edges = inst.buffer(0);
    edges.resize(2 * kEdges);
    for (std::size_t e = 0; e < kEdges; ++e) {
      edges[2 * e] = static_cast<float>(rng.NextBelow(kNodes));
      edges[2 * e + 1] = static_cast<float>(rng.NextBelow(kNodes));
    }
    std::vector<float>& levels = inst.buffer(1);
    levels.assign(kNodes, kInf);
    levels[0] = 0.0f;  // source
    inst.buffer(2).assign(kNodes, kInf);
    inst.buffer(2)[0] = 0.0f;
  }

  bool Verify(const AppInstance& inst) const override {
    const std::vector<float>& edges = inst.buffer(0);
    std::vector<float> levels(kNodes, kInf);
    levels[0] = 0.0f;
    std::vector<float> next = levels;
    for (int r = 0; r < kRounds; ++r) {
      RelaxEdges(edges, levels, &next, 0, kEdges);
      MergeFrontier(&levels, &next);
    }
    return NearlyEqual(inst.buffer(1), levels);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeBfs() { return std::make_unique<BfsWorkload>(); }

}  // namespace fabacus
