// Workload registry: the 14 PolyBench applications of Table 2, the five
// graph/bigdata applications of §5.6, and the synthetic serial-fraction
// kernel of §3.1. Every workload carries
//  * the Table-2 model parameters (input MB, LD/ST ratio, B/KI, microblock
//    structure with serial flags) driving the timing model, and
//  * a functional implementation: Prepare() fills real input buffers,
//    microblock bodies compute real outputs, Verify() checks them against an
//    independent reference implementation.
#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/kernel.h"
#include "src/sim/rng.h"

namespace fabacus {

class Workload {
 public:
  virtual ~Workload() = default;

  const KernelSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  // Sizes the instance's functional buffers and fills the inputs
  // deterministically from `rng`. Outputs are zeroed.
  virtual void Prepare(AppInstance& inst, Rng& rng) const = 0;

  // Recomputes the kernel with a reference implementation from the instance's
  // (unmodified) input buffers and compares against its outputs.
  virtual bool Verify(const AppInstance& inst) const = 0;

  // True for the compute-intensive group (B/KI below ~10, Fig 10a split).
  bool compute_intensive() const { return spec_.bki < 10.0; }

 protected:
  KernelSpec spec_;
};

// Approximate float comparison used by all Verify() implementations.
bool NearlyEqual(const std::vector<float>& a, const std::vector<float>& b,
                 float rel_tol = 1e-4f);

class WorkloadRegistry {
 public:
  static const WorkloadRegistry& Get();

  const Workload* Find(const std::string& name) const;
  // Table-2 order: ATAX BICG 2DCONV MVT ADI FDTD GESUM SYRK 3MM COVAR GEMM
  // 2MM SYR2K CORR.
  const std::vector<const Workload*>& polybench() const { return polybench_; }
  // §5.6 order: bfs wc nn nw path.
  const std::vector<const Workload*>& graph() const { return graph_; }
  const std::vector<const Workload*>& all() const { return all_; }

  // Heterogeneous workload MXi (1-based, Table 2 right half): six apps each.
  // Exact mix membership is not recoverable from the paper text; these mixes
  // follow its constraints (see DESIGN.md).
  std::vector<const Workload*> Mix(int i) const;
  static constexpr int kNumMixes = 14;

 private:
  WorkloadRegistry();
  std::vector<std::unique_ptr<Workload>> owned_;
  std::vector<const Workload*> polybench_;
  std::vector<const Workload*> graph_;
  std::vector<const Workload*> all_;
};

// Factories (one translation unit per application).
std::unique_ptr<Workload> MakeAtax();
std::unique_ptr<Workload> MakeBicg();
std::unique_ptr<Workload> MakeConv2d();
std::unique_ptr<Workload> MakeMvt();
std::unique_ptr<Workload> MakeAdi();
std::unique_ptr<Workload> MakeFdtd();
std::unique_ptr<Workload> MakeGesummv();
std::unique_ptr<Workload> MakeSyrk();
std::unique_ptr<Workload> Make3mm();
std::unique_ptr<Workload> MakeCovar();
std::unique_ptr<Workload> MakeGemm();
std::unique_ptr<Workload> Make2mm();
std::unique_ptr<Workload> MakeSyr2k();
std::unique_ptr<Workload> MakeCorr();
std::unique_ptr<Workload> MakeBfs();
std::unique_ptr<Workload> MakeWordcount();
std::unique_ptr<Workload> MakeNn();
std::unique_ptr<Workload> MakeNw();
std::unique_ptr<Workload> MakePathfinder();

// Synthetic kernel for the Fig-3 motivation study: `serial_ratio` of the
// modelled work sits in a serial microblock. When `io_free` is true the
// kernel declares no flash/file data sections (its data is assumed resident
// in accelerator DRAM) — used for the pure compute-scaling sweep of Fig 3b/c.
std::unique_ptr<Workload> MakeSynthetic(double serial_ratio, double input_mb = 640.0,
                                        bool io_free = false);

}  // namespace fabacus

#endif  // SRC_WORKLOADS_WORKLOAD_H_
