// CORR: correlation matrix — Table 2: 4 MBLKs (1 serial), 640 MB,
// LD/ST 33.04%, B/KI 2.79 (compute-intensive).
//
// Buffers: 0 = data (N x M, normalized in place), 1 = mean (M),
//          2 = stddev (M), 3 = corr (M x M), 4 = pristine data.
// m0 (serial): means; m1 (parallel over columns): stddev; m2 (parallel over
// samples): normalize; m3 (parallel over feature rows): correlation.
#include <cmath>

#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kNSamples = 256;
constexpr std::size_t kM = 256;
constexpr float kEps = 0.1f;

void Means(const std::vector<float>& data, std::vector<float>* mean) {
  for (std::size_t j = 0; j < kM; ++j) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < kNSamples; ++i) {
      acc += data[i * kM + j];
    }
    (*mean)[j] = acc / static_cast<float>(kNSamples);
  }
}

void Stddevs(const std::vector<float>& data, const std::vector<float>& mean,
             std::vector<float>* sd, std::size_t begin, std::size_t end) {
  for (std::size_t j = begin; j < end; ++j) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < kNSamples; ++i) {
      const float d = data[i * kM + j] - mean[j];
      acc += d * d;
    }
    const float v = std::sqrt(acc / static_cast<float>(kNSamples));
    (*sd)[j] = v <= kEps ? 1.0f : v;
  }
}

void Normalize(std::vector<float>* data, const std::vector<float>& mean,
               const std::vector<float>& sd, std::size_t begin, std::size_t end) {
  const float scale = std::sqrt(static_cast<float>(kNSamples));
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t j = 0; j < kM; ++j) {
      (*data)[i * kM + j] = ((*data)[i * kM + j] - mean[j]) / (scale * sd[j]);
    }
  }
}

void CorrRows(const std::vector<float>& data, std::vector<float>* corr, std::size_t begin,
              std::size_t end) {
  for (std::size_t j1 = begin; j1 < end; ++j1) {
    (*corr)[j1 * kM + j1] = 1.0f;
    for (std::size_t j2 = 0; j2 < kM; ++j2) {
      if (j1 == j2) {
        continue;
      }
      float acc = 0.0f;
      for (std::size_t i = 0; i < kNSamples; ++i) {
        acc += data[i * kM + j1] * data[i * kM + j2];
      }
      (*corr)[j1 * kM + j2] = acc;
    }
  }
}

class CorrWorkload : public Workload {
 public:
  CorrWorkload() {
    spec_.name = "CORR";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.3304;
    spec_.bki = 2.79;

    MicroblockSpec m0;
    m0.name = "means";
    m0.serial = true;
    m0.work_fraction = 0.05;
    SetMix(&m0, spec_.ldst_ratio, 0.30);
    m0.func_iterations = kM;
    m0.body = [](AppInstance& inst, std::size_t, std::size_t) {
      Means(inst.buffer(0), &inst.buffer(1));
    };
    spec_.microblocks.push_back(m0);

    MicroblockSpec m1;
    m1.name = "stddev";
    m1.serial = false;
    m1.work_fraction = 0.07;
    SetMix(&m1, spec_.ldst_ratio, 0.30);
    m1.func_iterations = kM;
    m1.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      Stddevs(inst.buffer(0), inst.buffer(1), &inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m1);

    MicroblockSpec m2;
    m2.name = "normalize";
    m2.serial = false;
    m2.work_fraction = 0.08;
    SetMix(&m2, spec_.ldst_ratio, 0.30);
    m2.func_iterations = kNSamples;
    m2.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      Normalize(&inst.buffer(0), inst.buffer(1), inst.buffer(2), begin, end);
    };
    spec_.microblocks.push_back(m2);

    MicroblockSpec m3;
    m3.name = "corr";
    m3.serial = false;
    m3.work_fraction = 0.8;
    SetMix(&m3, spec_.ldst_ratio, 0.45);
    m3.reuse_window_bytes = 24 * 1024;
    m3.stream_factor = 2.0;
    m3.func_iterations = kM;
    m3.body = [](AppInstance& inst, std::size_t begin, std::size_t end) {
      CorrRows(inst.buffer(0), &inst.buffer(3), begin, end);
    };
    spec_.microblocks.push_back(m3);

    spec_.sections = {
        {"data", DataSectionSpec::Dir::kIn, 0.5, 0},
        {"corr", DataSectionSpec::Dir::kOut, 0.5, 3},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(5);
    FillRandom(&inst.buffer(0), kNSamples * kM, rng);
    FillZero(&inst.buffer(1), kM);
    FillZero(&inst.buffer(2), kM);
    FillZero(&inst.buffer(3), kM * kM);
    inst.buffer(4) = inst.buffer(0);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> data = inst.buffer(4);
    std::vector<float> mean(kM, 0.0f);
    std::vector<float> sd(kM, 0.0f);
    std::vector<float> corr(kM * kM, 0.0f);
    Means(data, &mean);
    Stddevs(data, mean, &sd, 0, kM);
    Normalize(&data, mean, sd, 0, kNSamples);
    CorrRows(data, &corr, 0, kM);
    return NearlyEqual(inst.buffer(3), corr, 5e-4f);
  }
};

}  // namespace

std::unique_ptr<Workload> MakeCorr() { return std::make_unique<CorrWorkload>(); }

}  // namespace fabacus
