#include "src/workloads/workload.h"

#include <cmath>

#include "src/sim/log.h"

namespace fabacus {

bool NearlyEqual(const std::vector<float>& a, const std::vector<float>& b, float rel_tol) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    const float scale = std::max({std::fabs(a[i]), std::fabs(b[i]), 1.0f});
    if (diff > rel_tol * scale) {
      return false;
    }
  }
  return true;
}

WorkloadRegistry::WorkloadRegistry() {
  auto add = [this](std::unique_ptr<Workload> w, std::vector<const Workload*>* group) {
    group->push_back(w.get());
    all_.push_back(w.get());
    owned_.push_back(std::move(w));
  };
  // Table 2 order.
  add(MakeAtax(), &polybench_);
  add(MakeBicg(), &polybench_);
  add(MakeConv2d(), &polybench_);
  add(MakeMvt(), &polybench_);
  add(MakeAdi(), &polybench_);
  add(MakeFdtd(), &polybench_);
  add(MakeGesummv(), &polybench_);
  add(MakeSyrk(), &polybench_);
  add(Make3mm(), &polybench_);
  add(MakeCovar(), &polybench_);
  add(MakeGemm(), &polybench_);
  add(Make2mm(), &polybench_);
  add(MakeSyr2k(), &polybench_);
  add(MakeCorr(), &polybench_);
  // §5.6 graph / bigdata applications.
  add(MakeBfs(), &graph_);
  add(MakeWordcount(), &graph_);
  add(MakeNn(), &graph_);
  add(MakeNw(), &graph_);
  add(MakePathfinder(), &graph_);
}

const WorkloadRegistry& WorkloadRegistry::Get() {
  static const WorkloadRegistry* registry = new WorkloadRegistry();
  return *registry;
}

const Workload* WorkloadRegistry::Find(const std::string& name) const {
  for (const Workload* w : all_) {
    if (w->name() == name) {
      return w;
    }
  }
  return nullptr;
}

std::vector<const Workload*> WorkloadRegistry::Mix(int i) const {
  FAB_CHECK_GE(i, 1);
  FAB_CHECK_LE(i, kNumMixes);
  // Six applications per mix. The paper's exact memberships (Table 2, right
  // half) are not recoverable from the text; these mixes respect its stated
  // constraints — MX1 is four data-intensive kernels followed by two
  // compute-intensive ones (Fig 12b), and the data/compute balance varies
  // across mixes. Names use Table 2 spellings.
  static const char* kMixes[kNumMixes][6] = {
      {"ATAX", "BICG", "2DCON", "MVT", "GEMM", "2MM"},       // MX1
      {"BICG", "MVT", "GESUM", "ADI", "SYRK", "COVAR"},      // MX2
      {"ATAX", "2DCON", "FDTD", "GESUM", "3MM", "SYR2K"},    // MX3
      {"MVT", "ADI", "FDTD", "CORR", "COVAR", "GEMM"},       // MX4
      {"ATAX", "BICG", "GESUM", "SYRK", "2MM", "CORR"},      // MX5
      {"2DCON", "MVT", "ADI", "FDTD", "GEMM", "SYR2K"},      // MX6
      {"ATAX", "MVT", "GESUM", "COVAR", "3MM", "CORR"},      // MX7
      {"BICG", "2DCON", "ADI", "SYRK", "GEMM", "2MM"},       // MX8
      {"MVT", "FDTD", "GESUM", "3MM", "SYR2K", "CORR"},      // MX9
      {"ATAX", "ADI", "FDTD", "SYRK", "COVAR", "2MM"},       // MX10
      {"BICG", "GESUM", "2DCON", "GEMM", "3MM", "CORR"},     // MX11
      {"ATAX", "MVT", "FDTD", "SYRK", "SYR2K", "COVAR"},     // MX12
      {"BICG", "ADI", "GESUM", "GEMM", "2MM", "3MM"},        // MX13
      {"2DCON", "MVT", "FDTD", "COVAR", "CORR", "SYR2K"},    // MX14
  };
  std::vector<const Workload*> mix;
  for (const char* name : kMixes[i - 1]) {
    const Workload* w = Find(name);
    FAB_CHECK(w != nullptr) << "mix references unknown workload " << name;
    mix.push_back(w);
  }
  return mix;
}

}  // namespace fabacus
