// path: grid traversal (Rodinia pathfinder style), §5.6. Dynamic programming
// over grid rows; each row update is parallel across columns (neighbour reads
// hit only the previous row), so there are no serial microblocks — one
// parallel microblock per DP row.
//
// Buffers: 0 = cost grid ((kRows+1) x C), 1 = result row (C, out),
//          2/3 = ping-pong DP rows.
#include "src/workloads/polybench_util.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

constexpr std::size_t kCols = 65536;
constexpr std::size_t kRows = 8;  // DP steps -> 8 parallel microblocks

void StepRow(const std::vector<float>& cost, const std::vector<float>& prev,
             std::vector<float>* next, std::size_t row, std::size_t begin, std::size_t end) {
  for (std::size_t j = begin; j < end; ++j) {
    float best = prev[j];
    if (j > 0) {
      best = std::min(best, prev[j - 1]);
    }
    if (j + 1 < kCols) {
      best = std::min(best, prev[j + 1]);
    }
    (*next)[j] = cost[row * kCols + j] + best;
  }
}

class PathfinderWorkload : public Workload {
 public:
  PathfinderWorkload() {
    spec_.name = "path";
    spec_.model_input_mb = 640.0;
    spec_.ldst_ratio = 0.38;
    spec_.bki = 40.0;

    for (std::size_t r = 1; r <= kRows; ++r) {
      MicroblockSpec m;
      m.name = "row" + std::to_string(r);
      m.serial = false;
      m.work_fraction = 1.0 / kRows;
      SetMix(&m, spec_.ldst_ratio, 0.15);
      m.reuse_window_bytes = 3 * kCols / 8 * sizeof(float);
      m.func_iterations = kCols;
      const bool last = r == kRows;
      m.body = [r, last](AppInstance& inst, std::size_t begin, std::size_t end) {
        // Ping-pong between buffers 2 and 3; the final row lands in buffer 1.
        const int src = (r % 2 == 1) ? 2 : 3;
        const int dst = last ? 1 : ((r % 2 == 1) ? 3 : 2);
        StepRow(inst.buffer(0), inst.buffer(src), &inst.buffer(dst), r, begin, end);
      };
      spec_.microblocks.push_back(m);
    }

    spec_.sections = {
        {"cost", DataSectionSpec::Dir::kIn, 1.0, 0},
        {"result", DataSectionSpec::Dir::kOut, 0.1, 1},
    };
  }

  void Prepare(AppInstance& inst, Rng& rng) const override {
    inst.EnsureBuffers(4);
    FillRandom(&inst.buffer(0), (kRows + 1) * kCols, rng);
    FillZero(&inst.buffer(1), kCols);
    // DP row 0 = cost row 0.
    std::vector<float>& prev = inst.buffer(2);
    prev.resize(kCols);
    std::copy_n(inst.buffer(0).begin(), kCols, prev.begin());
    FillZero(&inst.buffer(3), kCols);
  }

  bool Verify(const AppInstance& inst) const override {
    std::vector<float> prev(kCols);
    std::copy_n(inst.buffer(0).begin(), kCols, prev.begin());
    std::vector<float> next(kCols, 0.0f);
    for (std::size_t r = 1; r <= kRows; ++r) {
      StepRow(inst.buffer(0), prev, &next, r, 0, kCols);
      std::swap(prev, next);
    }
    return NearlyEqual(inst.buffer(1), prev);
  }
};

}  // namespace

std::unique_ptr<Workload> MakePathfinder() { return std::make_unique<PathfinderWorkload>(); }

}  // namespace fabacus
