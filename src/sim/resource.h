// BandwidthResource models any serially-shared transfer resource (a DRAM
// channel, a crossbar port, a PCIe link, a flash channel bus): transfers are
// serviced FCFS at a fixed bandwidth after a fixed per-transfer latency.
//
// Reserve() returns the (start, end) interval of the transfer so callers can
// schedule completion events and account busy time / energy.
#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <algorithm>
#include <string>

#include "src/sim/log.h"
#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

class BandwidthResource {
 public:
  struct Reservation {
    Tick start;  // when the transfer begins moving data
    Tick end;    // when the last byte arrives
  };

  BandwidthResource(std::string name, double gb_per_s, Tick latency = 0)
      : name_(std::move(name)), gb_per_s_(gb_per_s), latency_(latency) {
    FAB_CHECK_GT(gb_per_s_, 0.0) << name_;
  }

  // Reserves the resource for `bytes` starting no earlier than `now`.
  Reservation Reserve(Tick now, double bytes) {
    const Tick start = std::max(now, next_free_);
    const Tick duration = latency_ + BytesAtGBps(bytes, gb_per_s_);
    const Tick end = start + duration;
    next_free_ = end;
    busy_.AddInterval(start, end);
    bytes_moved_ += bytes;
    transfers_.Add();
    return Reservation{start, end};
  }

  // Earliest time a new transfer could start.
  Tick next_free() const { return next_free_; }

  const std::string& name() const { return name_; }
  double gb_per_s() const { return gb_per_s_; }
  Tick latency() const { return latency_; }
  double bytes_moved() const { return bytes_moved_; }
  std::uint64_t transfers() const { return transfers_.value(); }
  const Counter& transfers_counter() const { return transfers_; }
  Tick BusyTime(Tick now) const { return busy_.BusyTime(now); }
  double Utilization(Tick now) const { return busy_.Utilization(now); }

  // Checkpoint/restore of the dynamic state (the name/bandwidth/latency
  // identity comes from the config that rebuilt this resource).
  void SaveState(StateWriter& w) const {
    w.U64(next_free_);
    busy_.SaveState(w);
    w.F64(bytes_moved_);
    transfers_.SaveState(w);
  }
  void LoadState(StateReader& r) {
    next_free_ = r.U64();
    busy_.LoadState(r);
    bytes_moved_ = r.F64();
    transfers_.LoadState(r);
  }

 private:
  std::string name_;
  double gb_per_s_;
  Tick latency_;
  Tick next_free_ = 0;
  BusyTracker busy_;
  double bytes_moved_ = 0.0;
  Counter transfers_;
};

}  // namespace fabacus

#endif  // SRC_SIM_RESOURCE_H_
