#include "src/sim/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/sim/log.h"

namespace fabacus {

void JsonEscape(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void JsonWriter::Raw(const std::string& s) { out_ += s; }

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    return;
  }
  Frame& top = stack_.back();
  if (top.scope == Scope::kObject) {
    FAB_CHECK(top.key_pending) << "JSON object value without a Key()";
    top.key_pending = false;
  } else if (top.emitted > 0) {
    out_ += ',';
  }
  ++top.emitted;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  FAB_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject);
  FAB_CHECK(!stack_.back().key_pending) << "dangling Key() at EndObject";
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  FAB_CHECK(!stack_.empty() && stack_.back().scope == Scope::kArray);
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  FAB_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject)
      << "Key() outside an object";
  Frame& top = stack_.back();
  FAB_CHECK(!top.key_pending) << "two Key() calls in a row";
  if (top.emitted > 0) {
    out_ += ',';
  }
  out_ += '"';
  JsonEscape(name, &out_);
  out_ += "\":";
  top.key_pending = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  out_ += '"';
  JsonEscape(v, &out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_v) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::operator[](const std::string& key) const {
  static const JsonValue kNull;
  const JsonValue* v = Find(key);
  return v == nullptr ? kNull : *v;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  bool Fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) {
      return Fail(std::string("expected '") + lit + "'");
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str_v);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_v = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_v = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->object_v.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->array_v.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          return Fail("dangling escape");
        }
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            const unsigned code =
                static_cast<unsigned>(std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            // ASCII-range escapes only (all the writer emits); others become
            // a UTF-8 encoded code point without surrogate-pair handling.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      return Fail("invalid number");
    }
    out->type = JsonValue::Type::kNumber;
    out->num_v = v;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return Parser(text, error).Parse(out);
}

namespace {

std::string RenderLeaf(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return v.bool_v ? "true" : "false";
    case JsonValue::Type::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.num_v);
      return buf;
    }
    case JsonValue::Type::kString:
      return "\"" + v.str_v + "\"";
    case JsonValue::Type::kArray:
      return "<array of " + std::to_string(v.array_v.size()) + ">";
    case JsonValue::Type::kObject:
      return "<object of " + std::to_string(v.object_v.size()) + ">";
  }
  return "?";
}

void AddDiffLine(std::vector<std::string>* lines, int max_lines, const std::string& line) {
  if (static_cast<int>(lines->size()) < max_lines) {
    lines->push_back(line);
  }
}

}  // namespace

int JsonFieldDiff(const JsonValue& before, const JsonValue& after, const std::string& path,
                  std::vector<std::string>* lines, int max_lines) {
  if (before.type != after.type) {
    AddDiffLine(lines, max_lines, path + ": " + RenderLeaf(before) + " -> " + RenderLeaf(after));
    return 1;
  }
  switch (before.type) {
    case JsonValue::Type::kObject: {
      int diffs = 0;
      for (const auto& [key, bv] : before.object_v) {
        const JsonValue* av = after.Find(key);
        if (av == nullptr) {
          AddDiffLine(lines, max_lines, path + "/" + key + ": removed (was " + RenderLeaf(bv) + ")");
          ++diffs;
          continue;
        }
        diffs += JsonFieldDiff(bv, *av, path + "/" + key, lines, max_lines);
      }
      for (const auto& [key, av] : after.object_v) {
        if (before.Find(key) == nullptr) {
          AddDiffLine(lines, max_lines, path + "/" + key + ": added (" + RenderLeaf(av) + ")");
          ++diffs;
        }
      }
      return diffs;
    }
    case JsonValue::Type::kArray: {
      int diffs = 0;
      if (before.array_v.size() != after.array_v.size()) {
        AddDiffLine(lines, max_lines,
                    path + ": array length " + std::to_string(before.array_v.size()) + " -> " +
                        std::to_string(after.array_v.size()));
        ++diffs;
      }
      const std::size_t n = std::min(before.array_v.size(), after.array_v.size());
      for (std::size_t i = 0; i < n; ++i) {
        diffs += JsonFieldDiff(before.array_v[i], after.array_v[i],
                               path + "[" + std::to_string(i) + "]", lines, max_lines);
      }
      return diffs;
    }
    case JsonValue::Type::kNumber:
      if (before.num_v != after.num_v) {
        AddDiffLine(lines, max_lines, path + ": " + RenderLeaf(before) + " -> " + RenderLeaf(after));
        return 1;
      }
      return 0;
    case JsonValue::Type::kString:
      if (before.str_v != after.str_v) {
        AddDiffLine(lines, max_lines, path + ": " + RenderLeaf(before) + " -> " + RenderLeaf(after));
        return 1;
      }
      return 0;
    case JsonValue::Type::kBool:
      if (before.bool_v != after.bool_v) {
        AddDiffLine(lines, max_lines, path + ": " + RenderLeaf(before) + " -> " + RenderLeaf(after));
        return 1;
      }
      return 0;
    case JsonValue::Type::kNull:
      return 0;
  }
  return 0;
}

int JsonFieldDiffText(const std::string& before, const std::string& after,
                      std::vector<std::string>* lines, int max_lines) {
  JsonValue bv, av;
  std::string berr, aerr;
  if (!ParseJson(before, &bv, &berr)) {
    AddDiffLine(lines, max_lines, "before document is not JSON: " + berr);
    return 1;
  }
  if (!ParseJson(after, &av, &aerr)) {
    AddDiffLine(lines, max_lines, "after document is not JSON: " + aerr);
    return 1;
  }
  return JsonFieldDiff(bv, av, "", lines, max_lines);
}

}  // namespace fabacus
