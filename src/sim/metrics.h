// MetricsRegistry: the uniform per-component statistics plumbing of the
// observability layer. Components register their counters, gauges and
// histograms under hierarchical slash-separated names ("flashvisor/
// reads_served", "flash/ch0/tag_wait_ns", "lwp/2/screens_executed"); the
// registry produces deterministic, name-sorted snapshots that RunReport
// serializes to JSON. See docs/OBSERVABILITY.md for the naming scheme.
//
// Ownership: the registry stores *references* — components keep owning their
// Counter/Histogram members (so standalone component tests need no registry)
// and must outlive the registry they registered with. Gauges are callbacks
// sampled at Snapshot() time; they receive the snapshot's `now` so
// time-derived values (busy time, utilization) stay consistent across the
// whole snapshot.
#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

class JsonWriter;

// One sampled metric in a snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  // Counter/gauge reading; for histograms, the sample count.
  double value = 0.0;
  // Histogram summary; meaningful only when kind == kHistogram and value > 0.
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// An immutable, name-sorted capture of every registered metric at one instant.
class MetricsSnapshot {
 public:
  const std::vector<MetricSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  bool Has(const std::string& name) const { return Find(name) != nullptr; }
  // nullptr when no metric of that name was registered.
  const MetricSample* Find(const std::string& name) const;
  // CHECK-fails when absent; counter/gauge reading or histogram count.
  double Value(const std::string& name) const;
  // Names matching a "prefix/" hierarchy level (e.g. "storengine/").
  std::vector<std::string> NamesWithPrefix(const std::string& prefix) const;

  // Serializes as one JSON object: {"name": value, ...}; histograms become
  // {"count":..,"min":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..}.
  void WriteJson(JsonWriter* w) const;

 private:
  friend class MetricsRegistry;
  std::vector<MetricSample> samples_;  // sorted by name
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration CHECK-fails on a duplicate name: two components silently
  // sharing one metric name would corrupt every report built on top.
  void RegisterCounter(const std::string& name, const Counter* counter);
  void RegisterGauge(const std::string& name, std::function<double(Tick)> fn);
  void RegisterHistogram(const std::string& name, const Histogram* histogram);
  // LogHistogram sketches snapshot to the same sample shape (count/min/mean/
  // p50/p95/p99/max) as exact histograms.
  void RegisterHistogram(const std::string& name, const LogHistogram* sketch);

  bool Has(const std::string& name) const { return entries_.count(name) != 0; }
  std::size_t size() const { return entries_.size(); }

  // Samples every metric at `now`. Deterministic: same registry state + same
  // `now` => identical snapshots (entries are kept name-sorted).
  MetricsSnapshot Snapshot(Tick now) const;

 private:
  struct Entry {
    MetricSample::Kind kind;
    const Counter* counter = nullptr;
    std::function<double(Tick)> gauge;
    const Histogram* histogram = nullptr;
    const LogHistogram* sketch = nullptr;
  };
  void CheckNew(const std::string& name) const;

  std::map<std::string, Entry> entries_;
};

}  // namespace fabacus

#endif  // SRC_SIM_METRICS_H_
