// Discrete-event queue: a priority queue of (time, sequence, callback).
// Sequence numbers break ties so same-tick events fire in scheduling order,
// which keeps runs deterministic.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace fabacus {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` to run at absolute time `when`. Daemon events model
  // background housekeeping (e.g. Storengine's periodic ticks): they fire in
  // time order like any event, but a queue holding only daemons counts as
  // drained, so a run loop does not spin on self-rescheduling maintenance.
  void Push(Tick when, Callback fn, bool daemon = false);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  // True when no non-daemon events are pending.
  bool OnlyDaemonsLeft() const { return non_daemon_count_ == 0; }

  // Time of the earliest pending event; only valid when !empty().
  Tick NextTime() const;

  // Removes and returns the earliest event's callback, setting *when to its
  // firing time. Only valid when !empty().
  Callback Pop(Tick* when);

  void Clear();

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;
    Callback fn;
    bool daemon;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t non_daemon_count_ = 0;
};

}  // namespace fabacus

#endif  // SRC_SIM_EVENT_QUEUE_H_
