// Discrete-event queues ordered by (time, sequence): sequence numbers break
// ties so same-tick events fire in scheduling order, which keeps runs
// deterministic.
//
// Two interchangeable implementations share that contract:
//
//  - BasicHeapEventQueue<Fn>: the classic binary-heap queue (O(log n) per
//    op). `LegacyEventQueue` instantiates it with std::function — the
//    original engine, kept as the A/B baseline for bench_micro_engine and
//    the equivalence tests.
//
//  - CalendarEventQueue: a calendar queue (R. Brown, CACM '88) over
//    non-allocating EventFn callbacks — the production engine. Events hash
//    into time buckets of power-of-two width; pushes are a sorted insert
//    into one small bucket and pops walk a cursor across bucket windows, so
//    both are O(1) amortized for the clustered event spacings a flash
//    simulation produces (1 us command overheads, 81 us tR, 2.6 ms tPROG —
//    see NandConfig). The bucket count and width adapt to the live event
//    population, and a full-rotation fallback handles sparse far-future
//    horizons (erase completions, Storengine daemon ticks).
//
// EventQueue is the facade the Simulator owns: it runs the calendar queue by
// default and can be constructed over the heap backend so a whole simulation
// can be replayed on either engine and byte-compared (tests/event_queue_test,
// tests/sweep_determinism_test).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/log.h"
#include "src/sim/time.h"

namespace fabacus {

// The original binary-heap event queue, templated on the callback type.
template <typename CallbackT>
class BasicHeapEventQueue {
 public:
  using Callback = CallbackT;

  // Schedules `fn` to run at absolute time `when`. Daemon events model
  // background housekeeping (e.g. Storengine's periodic ticks): they fire in
  // time order like any event, but a queue holding only daemons counts as
  // drained, so a run loop does not spin on self-rescheduling maintenance.
  void Push(Tick when, Callback fn, bool daemon = false) {
    heap_.push(Event{when, next_seq_++, std::move(fn), daemon});
    if (!daemon) {
      ++non_daemon_count_;
    }
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  // True when no non-daemon events are pending.
  bool OnlyDaemonsLeft() const { return non_daemon_count_ == 0; }
  // Pending non-daemon events (the PDES engine's daemon-gating input).
  std::size_t non_daemon_count() const { return non_daemon_count_; }

  // Time of the earliest pending event; only valid when !empty().
  Tick NextTime() const {
    FAB_CHECK(!heap_.empty());
    return heap_.top().when;
  }

  // Removes and returns the earliest event's callback, setting *when to its
  // firing time. Only valid when !empty().
  Callback Pop(Tick* when) {
    FAB_CHECK(!heap_.empty());
    // priority_queue::top() returns const&; the callback must be moved out,
    // so const_cast is confined to this one well-understood spot.
    Event& top = const_cast<Event&>(heap_.top());
    *when = top.when;
    Callback fn = std::move(top.fn);
    if (!top.daemon) {
      FAB_CHECK_GT(non_daemon_count_, 0u);
      --non_daemon_count_;
    }
    heap_.pop();
    return fn;
  }

  void Clear() {
    while (!heap_.empty()) {
      heap_.pop();
    }
    next_seq_ = 0;
    non_daemon_count_ = 0;
  }

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;
    Callback fn;
    bool daemon;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t non_daemon_count_ = 0;
};

// The pre-rewrite engine: binary heap over std::function (one heap
// allocation per event with any non-tiny capture). Baseline only.
using LegacyEventQueue = BasicHeapEventQueue<std::function<void()>>;

// Calendar-queue engine. See the file comment for the design; the public
// surface matches BasicHeapEventQueue except that NextTime() is non-const
// (it advances the internal bucket cursor, caching the found event so the
// following Pop is O(1)).
class CalendarEventQueue {
 public:
  using Callback = EventFn;

  CalendarEventQueue() { InitBuckets(kInitBucketShift, kInitWidthShift); }

  void Push(Tick when, Callback fn, bool daemon = false) {
    const std::uint64_t tag = (next_seq_++ << 1) | static_cast<std::uint64_t>(daemon);
    if (size_ == 0 || when < cur_window_) {
      // Rewind (or initialize) the cursor so the scan invariant — no pending
      // event earlier than cur_window_ — keeps holding. This happens when a
      // drained or deadline-parked queue accepts an event behind the cursor.
      // Either way the new event precedes everything pending, so it is also
      // the known next-to-fire.
      SeatCursorAt(when);
      cached_next_ = cur_bucket_;
    } else if (cached_next_ != kNoBucket &&
               when < buckets_[cached_next_].front().when) {
      // The new event beats the cached front, making it the new global
      // minimum: move the cursor (forward — `when >= cur_window_` here) and
      // the cache straight to it.
      SeatCursorAt(when);
      cached_next_ = cur_bucket_;
    }
    Bucket& b = buckets_[BucketIndex(when)];
    // Hot path: simulated delays are non-decreasing within a window, so the
    // common insert position is the end — O(1), no memmove.
    if (b.ev.empty() || b.ev.back().when < when ||
        (b.ev.back().when == when && b.ev.back().seq_daemon < tag)) {
      b.ev.emplace_back(when, tag, std::move(fn));
    } else {
      const auto pos = std::upper_bound(
          b.ev.begin() + static_cast<std::ptrdiff_t>(b.head), b.ev.end(),
          std::make_pair(when, tag), [](const auto& key, const Event& e) {
            return key.first != e.when ? key.first < e.when : key.second < e.seq_daemon;
          });
      b.ev.insert(pos, Event(when, tag, std::move(fn)));
    }
    ++size_;
    if (!daemon) {
      ++non_daemon_count_;
    }
    // Note the cache was NOT invalidated above in the common case: a
    // same-tick push sorts behind the cached front (seq is monotonic, and
    // same tick means same bucket) and a later push cannot displace the
    // minimum. In the dominant pop→handler→push(now + delay) pattern the
    // next Pop therefore skips the cursor scan entirely.
    if (size_ >= (buckets_.size() << 1) && buckets_.size() < (1u << kMaxBucketShift)) {
      Rebuild();
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  bool OnlyDaemonsLeft() const { return non_daemon_count_ == 0; }
  std::size_t non_daemon_count() const { return non_daemon_count_; }

  Tick NextTime() {
    FAB_CHECK(size_ > 0);
    return buckets_[FindNext()].front().when;
  }

  Callback Pop(Tick* when) {
    FAB_CHECK(size_ > 0);
    Bucket& b = buckets_[FindNext()];
    Event& e = b.front();
    *when = e.when;
    Callback fn = std::move(e.fn);
    if ((e.seq_daemon & 1u) == 0) {
      FAB_CHECK_GT(non_daemon_count_, 0u);
      --non_daemon_count_;
    }
    b.PopFront();
    --size_;
    // FindNext left the cursor on this bucket, so if the new front is still
    // inside the cursor window it remains the global minimum (all in-window
    // events live in this one bucket, sorted) — keep the cache.
    if (b.empty() || b.front().when >= cur_window_ + bucket_width()) {
      cached_next_ = kNoBucket;
    }
    if (size_ * 8 < buckets_.size() && buckets_.size() > (1u << kMinBucketShift)) {
      Rebuild();
    }
    return fn;
  }

  void Clear();

  std::size_t bucket_count() const { return buckets_.size(); }
  Tick bucket_width() const { return Tick{1} << width_shift_; }

 private:
  struct Event {
    Event(Tick w, std::uint64_t s, EventFn&& f)
        : when(w), seq_daemon(s), fn(std::move(f)) {}

    Tick when;
    // (seq << 1) | daemon: packs the tie-break sequence and the daemon flag
    // into one word while preserving the (when, seq) total order.
    std::uint64_t seq_daemon;
    EventFn fn;
  };
  // A sorted run of events with a consumed prefix: popping advances `head`
  // instead of memmoving the vector (erase(begin()) on an 80-byte Event is
  // what makes a naive calendar bucket O(k) per pop). The storage resets
  // once the bucket fully drains, so dead prefixes never outlive a window.
  struct Bucket {
    std::vector<Event> ev;
    std::size_t head = 0;

    bool empty() const { return head == ev.size(); }
    Event& front() { return ev[head]; }
    const Event& front() const { return ev[head]; }
    void PopFront() {
      if (++head == ev.size()) {
        ev.clear();
        head = 0;
      }
    }
  };

  static constexpr int kInitBucketShift = 6;   // 64 buckets
  static constexpr int kMinBucketShift = 4;    // >= 16 buckets
  static constexpr int kMaxBucketShift = 16;   // <= 65536 buckets
  // Width floor AND the initial width: ~1 us, the ONFi command granularity
  // (tR/tPROG completions land 81 us / 2.6 ms out; command + crossbar
  // overheads cluster at ~1 us). Rebuild only ever widens from here.
  static constexpr int kInitWidthShift = 10;
  static constexpr int kMaxWidthShift = 21;    // ~2 ms: tPROG/tBERS scale
  static constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);

  std::size_t BucketIndex(Tick when) const {
    return static_cast<std::size_t>(when >> width_shift_) & bucket_mask_;
  }

  void SeatCursorAt(Tick when) {
    cur_window_ = (when >> width_shift_) << width_shift_;
    cur_bucket_ = BucketIndex(when);
    cached_next_ = kNoBucket;
  }

  void InitBuckets(int bucket_shift, int width_shift) {
    // clear+resize rather than assign: assign's fill path wants copyable
    // elements, and Event is move-only.
    buckets_.clear();
    buckets_.resize(std::size_t{1} << bucket_shift);
    bucket_mask_ = buckets_.size() - 1;
    width_shift_ = width_shift;
    cur_bucket_ = 0;
    cur_window_ = 0;
    cached_next_ = kNoBucket;
  }

  // Positions the cursor on the bucket holding the next event in (when, seq)
  // order and returns its index. Amortized O(1): the forward scan only ever
  // advances the cursor, and the full-rotation fallback runs once per sparse
  // time jump.
  std::size_t FindNext();

  // Re-tunes bucket count to the live population and bucket width to the
  // observed event spacing, then redistributes. Deterministic: driven purely
  // by queue content.
  void Rebuild();

  std::vector<Bucket> buckets_;
  std::size_t bucket_mask_ = 0;
  int width_shift_ = kInitWidthShift;
  std::size_t cur_bucket_ = 0;
  Tick cur_window_ = 0;
  std::size_t cached_next_ = kNoBucket;
  std::size_t size_ = 0;
  std::size_t non_daemon_count_ = 0;
  std::uint64_t next_seq_ = 0;
};

// The queue the Simulator owns: calendar engine by default, heap engine on
// request (A/B determinism tests, bench_micro_engine attribution runs).
class EventQueue {
 public:
  using Callback = EventFn;
  enum class Backend { kCalendar, kHeap };

  EventQueue() = default;
  explicit EventQueue(Backend backend) : backend_(backend) {}

  void Push(Tick when, Callback fn, bool daemon = false) {
    if (backend_ == Backend::kCalendar) {
      calendar_.Push(when, std::move(fn), daemon);
    } else {
      heap_.Push(when, std::move(fn), daemon);
    }
  }

  bool empty() const {
    return backend_ == Backend::kCalendar ? calendar_.empty() : heap_.empty();
  }
  std::size_t size() const {
    return backend_ == Backend::kCalendar ? calendar_.size() : heap_.size();
  }
  bool OnlyDaemonsLeft() const {
    return backend_ == Backend::kCalendar ? calendar_.OnlyDaemonsLeft()
                                          : heap_.OnlyDaemonsLeft();
  }
  std::size_t non_daemon_count() const {
    return backend_ == Backend::kCalendar ? calendar_.non_daemon_count()
                                          : heap_.non_daemon_count();
  }
  Tick NextTime() {
    return backend_ == Backend::kCalendar ? calendar_.NextTime() : heap_.NextTime();
  }
  Callback Pop(Tick* when) {
    return backend_ == Backend::kCalendar ? calendar_.Pop(when) : heap_.Pop(when);
  }
  void Clear() {
    calendar_.Clear();
    heap_.Clear();
  }

  Backend backend() const { return backend_; }

 private:
  Backend backend_ = Backend::kCalendar;
  CalendarEventQueue calendar_;
  BasicHeapEventQueue<EventFn> heap_;
};

}  // namespace fabacus

#endif  // SRC_SIM_EVENT_QUEUE_H_
