// Statistics primitives shared by all simulator components:
//  * Counter        — monotonically increasing event/byte counts.
//  * BusyTracker    — integrates busy time of a resource (utilization, energy).
//  * Histogram      — latency distributions with percentile queries.
//  * TimeSeries     — (time, value) samples for the Fig-15 style traces.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/log.h"
#include "src/sim/time.h"

namespace fabacus {

class StateReader;
class StateWriter;

class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

  // Checkpoint/restore (docs/SNAPSHOT.md).
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  std::uint64_t value_ = 0;
};

// Tracks the total time a resource spends busy. Supports nested/overlapping
// demand via a depth counter: the resource is busy whenever depth > 0.
//
// Edge cases (locked in by sim_test):
//  * Leave() with depth 0 is a broken Enter/Leave pairing and CHECK-fails —
//    silently clamping would hide the component bug that unbalanced the
//    tracker and corrupt every utilization/energy figure derived from it.
//  * BusyTime(now) with an open interval and `now < open_since_` returns only
//    the accumulated closed time: the open interval has not yet contributed
//    any busy time at `now`, and must never contribute a negative span.
class BusyTracker {
 public:
  // Marks the resource busy starting at `now`.
  void Enter(Tick now);
  // Marks the end of one unit of demand at `now`. Requires depth() > 0.
  void Leave(Tick now);
  // Adds a closed busy interval [start, end) directly.
  void AddInterval(Tick start, Tick end);

  // Total busy time up to `now` (flushes any open interval; an interval
  // opened after `now` contributes nothing).
  Tick BusyTime(Tick now) const;
  // Busy fraction over [0, now].
  double Utilization(Tick now) const;

  int depth() const { return depth_; }

  // Checkpoint/restore — exact state (accumulated + open interval + depth),
  // since BusyTime feeds utilization and energy figures.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  mutable Tick accumulated_ = 0;
  mutable Tick open_since_ = 0;
  int depth_ = 0;
};

class Histogram {
 public:
  void Record(double v) { samples_.push_back(v); }
  std::size_t count() const { return samples_.size(); }
  double Min() const;
  double Max() const;
  double Mean() const;
  // p in [0, 100].
  double Percentile(double p) const;
  const std::vector<double>& samples() const { return samples_; }
  void Reset() { samples_.clear(); }

  // Checkpoint/restore of the raw sample vector (order matters for
  // byte-identical percentile interpolation).
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  std::vector<double> samples_;
};

class TimeSeries {
 public:
  struct Sample {
    Tick time;
    double value;
  };

  void Record(Tick time, double value) { samples_.push_back({time, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  // Averages samples into fixed-width buckets over [0, horizon); buckets with
  // no samples inherit the previous bucket's value (zero-order hold).
  std::vector<double> Rebucket(Tick horizon, std::size_t buckets) const;

  // Checkpoint/restore.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  std::vector<Sample> samples_;
};

}  // namespace fabacus

#endif  // SRC_SIM_STATS_H_
