// Statistics primitives shared by all simulator components:
//  * Counter           — monotonically increasing event/byte counts.
//  * BusyTracker       — integrates busy time of a resource (utilization, energy).
//  * Histogram         — exact latency distributions (stores every sample).
//  * LogHistogram      — bounded mergeable log-scale sketch for fleet scale.
//  * TimeSeries        — (time, value) samples for the Fig-15 style traces.
//  * BoundedTimeSeries — constant-memory coarsening time series for fleets.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/log.h"
#include "src/sim/time.h"

namespace fabacus {

class StateReader;
class StateWriter;

class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

  // Checkpoint/restore (docs/SNAPSHOT.md).
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  std::uint64_t value_ = 0;
};

// Tracks the total time a resource spends busy. Supports nested/overlapping
// demand via a depth counter: the resource is busy whenever depth > 0.
//
// Edge cases (locked in by sim_test):
//  * Leave() with depth 0 is a broken Enter/Leave pairing and CHECK-fails —
//    silently clamping would hide the component bug that unbalanced the
//    tracker and corrupt every utilization/energy figure derived from it.
//  * BusyTime(now) with an open interval and `now < open_since_` returns only
//    the accumulated closed time: the open interval has not yet contributed
//    any busy time at `now`, and must never contribute a negative span.
class BusyTracker {
 public:
  // Marks the resource busy starting at `now`.
  void Enter(Tick now);
  // Marks the end of one unit of demand at `now`. Requires depth() > 0.
  void Leave(Tick now);
  // Adds a closed busy interval [start, end) directly.
  void AddInterval(Tick start, Tick end);

  // Total busy time up to `now` (flushes any open interval; an interval
  // opened after `now` contributes nothing).
  Tick BusyTime(Tick now) const;
  // Busy fraction over [0, now].
  double Utilization(Tick now) const;

  int depth() const { return depth_; }

  // Checkpoint/restore — exact state (accumulated + open interval + depth),
  // since BusyTime feeds utilization and energy figures.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  mutable Tick accumulated_ = 0;
  mutable Tick open_since_ = 0;
  int depth_ = 0;
};

// One-pass distribution summary shared by the exact Histogram and the
// LogHistogram sketch. count == 0 means "no samples" and every statistic is
// 0.0 — report writers emit it instead of crashing on an empty shard.
struct HistogramSummary {
  std::uint64_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

class Histogram {
 public:
  void Record(double v) {
    samples_.push_back(v);
    sorted_valid_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  // Empty-safe: every statistic returns 0.0 when no samples were recorded
  // (a shard that dies before serving anything must not abort the report).
  double Min() const;
  double Max() const;
  double Mean() const;
  // p in [0, 100].
  double Percentile(double p) const;
  // min/mean/p50/p95/p99/max in one pass over a single sorted copy.
  HistogramSummary Summarize() const;
  const std::vector<double>& samples() const { return samples_; }
  void Reset() {
    samples_.clear();
    sorted_valid_ = false;
  }

  // Number of times the sorted cache was (re)built — Percentile/Summarize
  // share one sort per batch of queries; sim_test pins this down.
  std::uint64_t sort_count() const { return sort_count_; }

  // Checkpoint/restore of the raw sample vector (insertion order matters for
  // byte-identical SaveState bytes; the sorted view is a cache, never saved).
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  const std::vector<double>& Sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  mutable std::uint64_t sort_count_ = 0;
};

// Bounded, mergeable streaming histogram: HDR-style log-linear buckets.
// Each power-of-two octave of the value range splits into kSubBuckets
// equal-width linear sub-buckets, so the relative quantization error of any
// reconstructed quantile is at most 1/kSubBuckets (= 1/64 ≈ 1.6%, documented
// as ≤ 2% in docs/OBSERVABILITY.md). min/max/count are exact; the sum behind
// Mean() accumulates in 128-bit fixed point (2^-20 units ≈ 1 ns for values
// in ms), so every statistic is *fully order-invariant*: recording or
// merging the same samples in any order — completion order on a lockstep
// loop, id order on the partitioned path, shard order in a fleet merge —
// produces bit-identical results. Memory is constant: kNumBuckets u64
// counters (~18 KB), lazily allocated on the first Record, independent of
// sample count. Values are expected non-negative (latencies); negatives
// clamp to the underflow bucket and contribute 0 to the mean sum.
class LogHistogram {
 public:
  // Geometry: values (milliseconds in fleet use) from 2^kMinExp2 ≈ 0.24 µs
  // up to 2^kMaxExp2 ≈ 70 min; out-of-range values clamp into the edge
  // buckets (min/max stay exact regardless).
  static constexpr int kMinExp2 = -12;
  static constexpr int kMaxExp2 = 22;
  static constexpr int kSubBuckets = 64;
  static constexpr int kNumBuckets = (kMaxExp2 - kMinExp2 + 1) * kSubBuckets;
  // Max relative error of a reconstructed quantile vs. the exact sample.
  static constexpr double kMaxRelativeError = 1.0 / kSubBuckets;
  // Fixed-point scale of the mean sum: integer addition is associative and
  // commutative where double addition is not, which is what makes Mean()
  // independent of record/merge order.
  static constexpr double kSumScale = 1048576.0;  // 2^20 units per 1.0

  void Record(double v);
  // Exact element-wise merge of another sketch (integer counts + integer
  // sum), so merge order cannot change any statistic.
  void Merge(const LogHistogram& other);

  std::uint64_t count() const { return count_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const {
    if (count_ == 0) {
      return 0.0;
    }
    const double total =
        static_cast<double>(sum_hi_) * 18446744073709551616.0 +  // 2^64
        static_cast<double>(sum_lo_);
    return total / kSumScale / static_cast<double>(count_);
  }
  // p in [0, 100]; deterministic interpolation, empty-safe (returns 0.0).
  double Percentile(double p) const;
  HistogramSummary Summarize() const;
  void Reset();

  // Checkpoint/restore: geometry fingerprint + exact moments + sparse
  // non-zero buckets. Loading a sketch with different geometry fails the
  // reader (snapshots are not portable across bucket layouts).
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  static int BucketIndex(double v);
  static double BucketLo(int idx);
  static double BucketHi(int idx);

  void AddToSum(std::uint64_t lo, std::uint64_t hi);

  std::uint64_t count_ = 0;
  std::uint64_t sum_lo_ = 0;  // 128-bit fixed-point sum of samples,
  std::uint64_t sum_hi_ = 0;  // in kSumScale units
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> counts_;  // empty until first Record/Merge
};

class TimeSeries {
 public:
  struct Sample {
    Tick time;
    double value;
  };

  void Record(Tick time, double value) { samples_.push_back({time, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  // Averages samples into fixed-width buckets over [0, horizon); buckets with
  // no samples inherit the previous bucket's value (zero-order hold).
  std::vector<double> Rebucket(Tick horizon, std::size_t buckets) const;

  // Checkpoint/restore.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  std::vector<Sample> samples_;
};

// Constant-memory (time, value) series: at most max_bins equal-width bins of
// (sum, count). The bin width starts at one tick and doubles — merging
// adjacent bin pairs — whenever a sample lands past the covered range, so an
// unbounded request stream keeps a fixed-resolution summary instead of one
// Sample per event. Rebucket matches TimeSeries::Rebucket semantics
// (count-weighted averages + zero-order hold) at the bin granularity.
class BoundedTimeSeries {
 public:
  static constexpr std::size_t kDefaultMaxBins = 256;

  explicit BoundedTimeSeries(std::size_t max_bins = kDefaultMaxBins);

  void Record(Tick time, double value);
  // Total samples ever recorded (the report's "samples" field).
  std::uint64_t samples() const { return samples_; }
  bool empty() const { return samples_ == 0; }
  Tick bin_width() const { return bin_width_; }
  std::size_t max_bins() const { return max_bins_; }

  std::vector<double> Rebucket(Tick horizon, std::size_t buckets) const;

  // Checkpoint/restore.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  struct Bin {
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  void Coarsen();

  std::size_t max_bins_;
  Tick bin_width_ = 1;
  std::vector<Bin> bins_;  // bins_[i] covers [i*bin_width_, (i+1)*bin_width_)
  std::uint64_t samples_ = 0;
};

}  // namespace fabacus

#endif  // SRC_SIM_STATS_H_
