// Conservative parallel discrete-event engine: per-shard event queues that
// advance in lookahead-bounded windows (docs/PERFORMANCE.md, "Parallel DES").
//
// The event population is partitioned into S shards, each owning a private
// EventQueue (calendar or heap backend — the same (when, seq) contract the
// sequential Simulator runs on). Execution proceeds in *conservative
// windows*: every shard may safely execute all events strictly below
//
//   W_end = min over shards of NextTime() + lookahead
//
// because any event a shard sends to a neighbour must land at least
// `lookahead` past the sender's clock (CHECK-enforced; see SendCross), so no
// in-window event can receive a cross-shard event inside the same window.
// This is the classic bounded-lag / null-message-free synchronization: with
// lookahead derived from ONFi flash timings (81 us tR is the floor —
// NandConfig::OnfiLookahead()) a window holds thousands of events, which
// amortizes the barrier.
//
// Cross-shard events travel through bounded per-(src,dst) SPSC mailboxes as
// (when, stamp, src, seq)-stamped messages. Mailboxes are written only by
// the owning shard's thread during a window and drained only by the
// coordinator between windows; the drain merges all arrivals in
// (when, stamp, src, seq) order before pushing them into destination queues,
// so the destination's tie-break sequence numbers — and therefore the whole
// execution — are a pure function of the event data, never of thread timing.
//
// Determinism contract:
//  * Identical results for any thread count (1..S): windows, merges and
//    per-shard pop order depend only on queue contents.
//  * Identical results to the sequential single-queue engine whenever events
//    that share mutable state share a shard (cross-shard events must commute
//    with concurrent windows). FlashAbacus satisfies this by keeping all
//    device logic on shard 0 and sending only self-contained flash-timing
//    relay events to the per-channel shards, which is how PDES device runs
//    byte-match sequential runs (tests/sweep_determinism_test.cc).
//
// Daemon semantics mirror the sequential engine: Run() stops when only
// daemons remain globally; a daemon fires only while its own shard still
// holds a non-daemon, or while some other shard's earliest pending event —
// a lower bound on the next non-daemon anywhere — lies beyond it.
#ifndef SRC_SIM_PDES_ENGINE_H_
#define SRC_SIM_PDES_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace fabacus {

class PdesEngine {
 public:
  using Callback = EventQueue::Callback;

  struct Options {
    int shards = 1;
    // Worker threads executing shard windows (the calling thread is one of
    // them). Clamped to [1, shards]; shard s runs on thread s % threads, so
    // shard 0 always executes on the Run() caller's thread.
    int threads = 1;
    // Conservative window slack. Cross-shard sends must land at least this
    // far past the sending shard's clock; must be > 0.
    Tick lookahead = 1;
    EventQueue::Backend backend = EventQueue::Backend::kCalendar;
    // Per-(src,dst) mailbox ring capacity. One window's cross-traffic bounds
    // occupancy; overflow spills to a locked side vector (correct, slower).
    std::size_t mailbox_capacity = 1024;
  };

  explicit PdesEngine(const Options& opt);
  ~PdesEngine();
  PdesEngine(const PdesEngine&) = delete;
  PdesEngine& operator=(const PdesEngine&) = delete;

  // --- Scheduling ----------------------------------------------------------
  // Pushes onto `shard`'s queue. shard < 0 resolves to the current shard:
  // the shard whose event is executing on this thread, or shard 0 when
  // called from outside the run loop. Targeting another shard's queue while
  // the engine is running is not allowed (that is what SendCross is for).
  void Schedule(int shard, Tick when, Callback fn, bool daemon = false);

  // Sends an event to another shard, stamped (when, stamp). Must satisfy
  // when >= sender's clock + lookahead (CHECK-fails otherwise: scheduling
  // below a neighbour's committed horizon would break conservatism). Same-
  // shard sends degrade to Schedule. `stamp` orders same-tick arrivals at
  // the destination ahead of (src, per-pair seq); any deterministic value
  // works, and 0 is fine when same-tick cross-traffic cannot collide.
  void SendCross(int dst_shard, Tick when, std::uint64_t stamp, Callback fn,
                 bool daemon = false);

  // Flash-completion relay used by the device integration (see Simulator::
  // NoteFlashCompletion): when `done` lies at least two lookaheads out,
  // bounce an inert marker through `dst_shard` (hop out at done - lookahead,
  // marker back onto shard 0 at `done`). Both hops are daemons and are
  // excluded from events_executed(), so reports and snapshots stay
  // byte-identical to sequential runs. Call only from shard 0's context.
  void FlashRelay(int dst_shard, Tick done);

  // Marks the currently-executing event as engine-internal bookkeeping: it
  // is subtracted from events_executed(). Only meaningful inside a callback.
  void NoteInternalExecuted();

  // --- Run loop (call only from the owning thread, never from an event) ----
  Tick Run();
  Tick RunUntil(Tick deadline);

  // Drops every pending event and mailbox message. Callable from inside an
  // executing event (power-failure modelling): the requesting shard's queue
  // clears immediately — events the current callback schedules afterwards
  // survive, exactly like the sequential engine — and every other shard
  // stops at its next pop and is cleared at the window barrier, with all
  // clocks collapsing to the requester's. Cross-shard events racing the
  // requester's window are dropped or executed depending on shard progress,
  // which is why only commuting/internal events may cross shards.
  void Clear();

  // --- Introspection -------------------------------------------------------
  Tick Now() const;  // executing shard's clock, or the unified clock outside
  int CurrentShard() const;
  bool empty() const;
  std::size_t size() const;
  bool OnlyDaemonsLeft() const;
  // Externally-visible events executed (internal relay hops excluded) —
  // matches the sequential engine's count for a shard-safe workload.
  std::uint64_t events_executed() const;
  void set_max_events(std::uint64_t n) { max_events_ = n; }

  // Snapshot restore hook: collapses every shard clock to `now` and resets
  // the executed counter to `events` (queues must be empty — Halt first).
  void RestoreClock(Tick now, std::uint64_t events);

  int shards() const { return static_cast<int>(shards_.size()); }
  int threads() const { return threads_; }
  Tick lookahead() const { return lookahead_; }
  std::uint64_t windows() const { return windows_; }

  struct ShardStats {
    std::uint64_t executed = 0;           // all pops, relay hops included
    std::uint64_t internal_executed = 0;  // relay/marker hops only
    std::uint64_t sent = 0;               // cross-shard messages produced
    std::uint64_t received = 0;           // cross-shard messages merged in
  };
  ShardStats shard_stats(int shard) const;

 private:
  struct Message {
    Tick when = 0;
    std::uint64_t stamp = 0;
    std::uint64_t seq = 0;  // per-(src,dst) producer sequence
    int src = 0;
    bool daemon = false;
    Callback fn;
  };

  // Single-producer (source shard's thread, during a window) / single-
  // consumer (coordinator, between windows) ring. The window barrier
  // provides the cross-thread ordering; the atomics keep the in-window
  // publication race-free for the post-barrier drain under TSan.
  struct Mailbox {
    std::vector<Message> ring;
    std::atomic<std::size_t> head{0};
    std::atomic<std::size_t> tail{0};
    std::mutex spill_mu;
    std::vector<Message> spill;  // ring-full overflow (rare)
    std::uint64_t next_seq = 0;  // producer-side

    void Push(Message&& m);
    void DrainInto(std::vector<Message>* out);
    bool DrainEmptyUnsynchronized() const;
  };

  struct alignas(64) Shard {
    explicit Shard(EventQueue::Backend backend) : q(backend) {}
    EventQueue q;
    Tick now = 0;
    ShardStats stats;
  };

  struct ExecContext {
    PdesEngine* engine = nullptr;
    int shard = 0;
  };
  static thread_local ExecContext tls_ctx_;

  Mailbox& mailbox(int src, int dst) {
    return *mailboxes_[static_cast<std::size_t>(src) * shards_.size() +
                       static_cast<std::size_t>(dst)];
  }

  std::size_t GlobalNonDaemons() const;
  // Non-const: CalendarEventQueue::NextTime() advances its bucket cursor.
  Tick GlobalMinNextTime();  // kNoEvent when all queues are empty
  Tick DaemonHorizon();
  Tick RunLoop(bool bounded, Tick deadline);
  void ExecuteWindow(Tick w_end, Tick daemon_horizon, bool daemons_unconditional);
  void RunShard(int shard, Tick w_end, Tick daemon_horizon, bool daemons_unconditional);
  void DrainMailboxes();
  void ApplyDeferredClear();
  void WorkerMain(int worker_id);

  static constexpr Tick kNoEvent = std::numeric_limits<Tick>::max();

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // src * S + dst
  int threads_ = 1;
  Tick lookahead_ = 1;
  std::uint64_t max_events_ = std::numeric_limits<std::uint64_t>::max();

  Tick unified_now_ = 0;
  std::uint64_t base_events_ = 0;  // snapshot-restored offset
  std::uint64_t windows_ = 0;
  std::uint64_t relay_stamp_ = 0;  // FlashRelay's deterministic stamp source
  bool running_ = false;

  // Deferred power-failure clear (set from an executing event).
  std::atomic<bool> clear_requested_{false};
  std::atomic<Tick> clear_now_{0};
  std::atomic<int> clear_shard_{-1};

  // Window barrier: the coordinator publishes (w_end, horizon, flags) under
  // mu_, bumps the generation, runs its own shards, then waits for the
  // workers; workers wake per generation, run their shards, and report done.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t window_gen_ = 0;
  int windows_done_ = 0;
  bool stopping_ = false;
  Tick window_end_ = 0;
  Tick window_daemon_horizon_ = 0;
  bool window_daemons_unconditional_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fabacus

#endif  // SRC_SIM_PDES_ENGINE_H_
