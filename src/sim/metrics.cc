#include "src/sim/metrics.h"

#include <algorithm>

#include "src/sim/json.h"
#include "src/sim/log.h"

namespace fabacus {

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), name,
      [](const MetricSample& s, const std::string& n) { return s.name < n; });
  if (it == samples_.end() || it->name != name) {
    return nullptr;
  }
  return &*it;
}

double MetricsSnapshot::Value(const std::string& name) const {
  const MetricSample* s = Find(name);
  FAB_CHECK(s != nullptr) << "no metric named '" << name << "' in snapshot";
  return s->value;
}

std::vector<std::string> MetricsSnapshot::NamesWithPrefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const MetricSample& s : samples_) {
    if (s.name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(s.name);
    }
  }
  return out;
}

void MetricsSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  for (const MetricSample& s : samples_) {
    w->Key(s.name);
    if (s.kind == MetricSample::Kind::kHistogram) {
      w->BeginObject();
      w->Field("count", s.value);
      if (s.value > 0) {
        w->Field("min", s.min)
            .Field("mean", s.mean)
            .Field("p50", s.p50)
            .Field("p95", s.p95)
            .Field("p99", s.p99)
            .Field("max", s.max);
      }
      w->EndObject();
    } else {
      w->Value(s.value);
    }
  }
  w->EndObject();
}

void MetricsRegistry::CheckNew(const std::string& name) const {
  FAB_CHECK(!name.empty()) << "metric name must be non-empty";
  FAB_CHECK(entries_.count(name) == 0) << "duplicate metric name '" << name << "'";
}

void MetricsRegistry::RegisterCounter(const std::string& name, const Counter* counter) {
  CheckNew(name);
  FAB_CHECK(counter != nullptr) << name;
  Entry e;
  e.kind = MetricSample::Kind::kCounter;
  e.counter = counter;
  entries_.emplace(name, std::move(e));
}

void MetricsRegistry::RegisterGauge(const std::string& name, std::function<double(Tick)> fn) {
  CheckNew(name);
  FAB_CHECK(fn != nullptr) << name;
  Entry e;
  e.kind = MetricSample::Kind::kGauge;
  e.gauge = std::move(fn);
  entries_.emplace(name, std::move(e));
}

void MetricsRegistry::RegisterHistogram(const std::string& name, const Histogram* histogram) {
  CheckNew(name);
  FAB_CHECK(histogram != nullptr) << name;
  Entry e;
  e.kind = MetricSample::Kind::kHistogram;
  e.histogram = histogram;
  entries_.emplace(name, std::move(e));
}

void MetricsRegistry::RegisterHistogram(const std::string& name, const LogHistogram* sketch) {
  CheckNew(name);
  FAB_CHECK(sketch != nullptr) << name;
  Entry e;
  e.kind = MetricSample::Kind::kHistogram;
  e.sketch = sketch;
  entries_.emplace(name, std::move(e));
}

MetricsSnapshot MetricsRegistry::Snapshot(Tick now) const {
  MetricsSnapshot snap;
  snap.samples_.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map: already name-sorted
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricSample::Kind::kGauge:
        s.value = e.gauge(now);
        break;
      case MetricSample::Kind::kHistogram: {
        // Summarize() sorts the exact histogram once for all six statistics
        // (and is free for sketches); values are identical to querying each
        // statistic separately, so report bytes do not change.
        const HistogramSummary sum =
            e.sketch != nullptr ? e.sketch->Summarize() : e.histogram->Summarize();
        s.value = static_cast<double>(sum.count);
        if (sum.count > 0) {
          s.min = sum.min;
          s.mean = sum.mean;
          s.p50 = sum.p50;
          s.p95 = sum.p95;
          s.p99 = sum.p99;
          s.max = sum.max;
        }
        break;
      }
    }
    snap.samples_.push_back(std::move(s));
  }
  return snap;
}

}  // namespace fabacus
