// Versioned whole-simulator checkpoint/restore (see docs/SNAPSHOT.md).
//
// Every stateful component exposes its persistent state through one API:
//
//   SaveState(StateWriter&) / LoadState(StateReader&)
//
// either as plain member functions (the stats/RNG/byte-store primitives) or
// via the virtual Snapshottable interface (top-level components that a
// SnapshotBuilder serializes as named sections). State is written to a flat
// little-endian byte stream; the container that holds the streams is a
// single-file format:
//
//   magic "FABSNAP1" | u32 container version | u32 manifest length |
//   manifest JSON | u32 section count |
//   { u16 name length | name | u32 schema version | u64 payload length |
//     payload } * | u64 FNV-1a checksum over everything before it
//
// The JSON manifest duplicates the section directory (name/version/bytes)
// plus caller-supplied metadata (snapshot kind, config fingerprint, sim
// clock), so `tools/snapshot_ctl` can inspect and diff snapshots without
// decoding any payload.
//
// Failure discipline: writing is infallible (CHECKs on misuse only); reading
// is defensive. A truncated, corrupt, or version-mismatched file never
// CHECK-fails — StateReader latches the first error, every later read
// returns zeroes, and the caller observes one clean diagnostic via ok() /
// error(). Component LoadState implementations therefore only need to check
// reader.ok() at their own CHECK-relevant boundaries.
#ifndef SRC_SIM_SNAPSHOT_H_
#define SRC_SIM_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/log.h"

namespace fabacus {

// Append-only little-endian encoder for one component's state.
class StateWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void F64(double v);
  void Str(const std::string& s);
  void Bytes(const std::uint8_t* data, std::size_t n);

  // Length-prefixed homogeneous vectors.
  void VecU8(const std::vector<std::uint8_t>& v);
  void VecU32(const std::vector<std::uint32_t>& v);
  void VecU64(const std::vector<std::uint64_t>& v);
  void VecI32(const std::vector<std::int32_t>& v);
  void VecF64(const std::vector<double>& v);

  const std::vector<std::uint8_t>& buffer() const { return out_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

// Sequential decoder over a StateWriter stream. Never aborts on malformed
// input: the first out-of-bounds or invalid read latches error() and every
// subsequent read returns a zero value.
class StateReader {
 public:
  StateReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit StateReader(const std::vector<std::uint8_t>& buf)
      : StateReader(buf.data(), buf.size()) {}

  std::uint8_t U8();
  bool Bool() { return U8() != 0; }
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  double F64();
  std::string Str();

  std::vector<std::uint8_t> VecU8();
  std::vector<std::uint32_t> VecU32();
  std::vector<std::uint64_t> VecU64();
  std::vector<std::int32_t> VecI32();
  std::vector<double> VecF64();

  // True until the first malformed read (or explicit Fail()).
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  // Latches a caller-detected consistency error (first one wins).
  void Fail(const std::string& message);

  // Everything consumed exactly once? Useful as an end-of-section check.
  bool AtEnd() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool Take(std::size_t n, const std::uint8_t** out);
  // Reads a length prefix and rejects lengths larger than the bytes left —
  // a corrupt length must not drive a multi-gigabyte allocation.
  bool TakeCount(std::size_t elem_size, std::uint64_t* count);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string error_;
};

// The uniform state interface of top-level simulator components. A
// component's schema version travels with its section; LoadState is only
// invoked when the stored version matches StateVersion() (the container
// rejects mismatches up front — there are no cross-version migrations yet,
// see docs/SNAPSHOT.md for the compat policy).
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;

  // Stable section name, e.g. "flashvisor" or "nand/pkg0".
  virtual std::string StateName() const = 0;
  // Bump when the SaveState layout changes shape.
  virtual int StateVersion() const { return 1; }
  virtual void SaveState(StateWriter& w) const = 0;
  // Restores from a stream produced by SaveState at the same StateVersion.
  // Malformed input must latch r.Fail(...) rather than abort.
  virtual void LoadState(StateReader& r) = 0;
};

// Assembles named sections plus manifest metadata and writes the container.
class SnapshotBuilder {
 public:
  // `kind` names the snapshot flavor ("device", "fleet-shard", "fleet").
  explicit SnapshotBuilder(std::string kind) : kind_(std::move(kind)) {}

  // Manifest metadata (string or numeric), surfaced verbatim by inspect/diff.
  void SetMeta(const std::string& key, const std::string& value);
  void SetMeta(const std::string& key, double value);

  // Appends a section; the returned writer stays valid until the next call.
  StateWriter& AddSection(const std::string& name, int version);
  // Captures `s` as a section named s->StateName() at s->StateVersion().
  void AddComponent(const Snapshottable& s);

  // Embeds `file_bytes` (a complete nested snapshot container) as an opaque
  // section — how fleet snapshots fan in their per-shard device snapshots.
  void AddBlobSection(const std::string& name, int version,
                      std::vector<std::uint8_t> payload);

  // The manifest JSON that WriteFile will embed (sections recorded so far).
  std::string ManifestJson() const;

  // Serializes the container. False (with *error filled) on I/O failure.
  bool WriteFile(const std::string& path, std::string* error) const;
  // In-memory form of WriteFile, for nesting and tests.
  std::vector<std::uint8_t> Serialize() const;

 private:
  struct Section {
    std::string name;
    int version = 1;
    std::vector<std::uint8_t> payload;
  };

  std::string kind_;
  std::vector<std::pair<std::string, std::string>> meta_str_;
  std::vector<std::pair<std::string, double>> meta_num_;
  std::vector<Section> sections_;
  StateWriter open_;      // writer handed out by the last AddSection
  int open_index_ = -1;   // section the open_ writer belongs to
  void FlushOpen() const;
};

// A parsed snapshot container. Load never aborts: truncated files, bad
// magic, checksum mismatches and malformed manifests all come back as a
// false return plus a one-line diagnostic.
class SnapshotFile {
 public:
  struct Section {
    std::string name;
    int version = 1;
    std::vector<std::uint8_t> payload;
  };

  static constexpr char kMagic[9] = "FABSNAP1";
  static constexpr std::uint32_t kContainerVersion = 1;

  static bool Load(const std::string& path, SnapshotFile* out, std::string* error);
  static bool Parse(const std::vector<std::uint8_t>& bytes, SnapshotFile* out,
                    std::string* error);

  const std::string& kind() const { return kind_; }
  const std::string& manifest_json() const { return manifest_json_; }
  const std::vector<Section>& sections() const { return sections_; }

  // nullptr when absent.
  const Section* Find(const std::string& name) const;

  // Opens `name` for reading, enforcing presence and an exact version match.
  // On failure the returned reader is empty with error() latched.
  StateReader Open(const std::string& name, int expected_version) const;

  // Feeds the named section into `s` (version check + LoadState + trailing
  // bytes check). Returns false with *error filled on any failure.
  bool Restore(Snapshottable* s, std::string* error) const;

 private:
  std::string kind_;
  std::string manifest_json_;
  std::vector<Section> sections_;
  std::vector<std::uint8_t> empty_;
};

}  // namespace fabacus

#endif  // SRC_SIM_SNAPSHOT_H_
