#include "src/sim/snapshot.h"

#include <cstdio>
#include <cstring>

#include "src/sim/json.h"

namespace fabacus {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t h = kFnvOffset) {
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * kFnvPrime;
  }
  return h;
}

}  // namespace

// --- StateWriter -----------------------------------------------------------

void StateWriter::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateWriter::F64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void StateWriter::Str(const std::string& s) {
  U64(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void StateWriter::Bytes(const std::uint8_t* data, std::size_t n) {
  out_.insert(out_.end(), data, data + n);
}

void StateWriter::VecU8(const std::vector<std::uint8_t>& v) {
  U64(v.size());
  Bytes(v.data(), v.size());
}

void StateWriter::VecU32(const std::vector<std::uint32_t>& v) {
  U64(v.size());
  for (std::uint32_t x : v) {
    U32(x);
  }
}

void StateWriter::VecU64(const std::vector<std::uint64_t>& v) {
  U64(v.size());
  for (std::uint64_t x : v) {
    U64(x);
  }
}

void StateWriter::VecI32(const std::vector<std::int32_t>& v) {
  U64(v.size());
  for (std::int32_t x : v) {
    I32(x);
  }
}

void StateWriter::VecF64(const std::vector<double>& v) {
  U64(v.size());
  for (double x : v) {
    F64(x);
  }
}

// --- StateReader -----------------------------------------------------------

bool StateReader::Take(std::size_t n, const std::uint8_t** out) {
  if (!ok()) {
    return false;
  }
  if (n > size_ - pos_) {
    Fail("truncated stream: need " + std::to_string(n) + " bytes at offset " +
         std::to_string(pos_) + ", have " + std::to_string(size_ - pos_));
    return false;
  }
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

bool StateReader::TakeCount(std::size_t elem_size, std::uint64_t* count) {
  const std::uint64_t n = U64();
  if (!ok()) {
    return false;
  }
  if (elem_size != 0 && n > (size_ - pos_) / elem_size) {
    Fail("corrupt length prefix " + std::to_string(n) + " at offset " +
         std::to_string(pos_));
    return false;
  }
  *count = n;
  return true;
}

void StateReader::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
  }
  pos_ = size_;  // poison: every later Take() sees zero bytes remaining
}

std::uint8_t StateReader::U8() {
  const std::uint8_t* p;
  return Take(1, &p) ? p[0] : 0;
}

std::uint32_t StateReader::U32() {
  const std::uint8_t* p;
  if (!Take(4, &p)) {
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t StateReader::U64() {
  const std::uint8_t* p;
  if (!Take(8, &p)) {
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

double StateReader::F64() {
  const std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok() ? v : 0.0;
}

std::string StateReader::Str() {
  std::uint64_t n;
  if (!TakeCount(1, &n)) {
    return {};
  }
  const std::uint8_t* p;
  if (!Take(static_cast<std::size_t>(n), &p)) {
    return {};
  }
  return std::string(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
}

std::vector<std::uint8_t> StateReader::VecU8() {
  std::uint64_t n;
  if (!TakeCount(1, &n)) {
    return {};
  }
  const std::uint8_t* p;
  if (!Take(static_cast<std::size_t>(n), &p)) {
    return {};
  }
  return std::vector<std::uint8_t>(p, p + n);
}

std::vector<std::uint32_t> StateReader::VecU32() {
  std::uint64_t n;
  if (!TakeCount(4, &n)) {
    return {};
  }
  std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = U32();
  }
  return v;
}

std::vector<std::uint64_t> StateReader::VecU64() {
  std::uint64_t n;
  if (!TakeCount(8, &n)) {
    return {};
  }
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = U64();
  }
  return v;
}

std::vector<std::int32_t> StateReader::VecI32() {
  std::uint64_t n;
  if (!TakeCount(4, &n)) {
    return {};
  }
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = I32();
  }
  return v;
}

std::vector<double> StateReader::VecF64() {
  std::uint64_t n;
  if (!TakeCount(8, &n)) {
    return {};
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = F64();
  }
  return v;
}

// --- SnapshotBuilder -------------------------------------------------------

void SnapshotBuilder::SetMeta(const std::string& key, const std::string& value) {
  meta_str_.emplace_back(key, value);
}

void SnapshotBuilder::SetMeta(const std::string& key, double value) {
  meta_num_.emplace_back(key, value);
}

void SnapshotBuilder::FlushOpen() const {
  auto* self = const_cast<SnapshotBuilder*>(this);
  if (self->open_index_ >= 0) {
    self->sections_[static_cast<std::size_t>(self->open_index_)].payload =
        self->open_.TakeBuffer();
    self->open_index_ = -1;
  }
}

StateWriter& SnapshotBuilder::AddSection(const std::string& name, int version) {
  FlushOpen();
  for (const Section& s : sections_) {
    FAB_CHECK(s.name != name) << "duplicate snapshot section " << name;
  }
  sections_.push_back(Section{name, version, {}});
  open_index_ = static_cast<int>(sections_.size()) - 1;
  open_ = StateWriter();
  return open_;
}

void SnapshotBuilder::AddComponent(const Snapshottable& s) {
  StateWriter& w = AddSection(s.StateName(), s.StateVersion());
  s.SaveState(w);
}

void SnapshotBuilder::AddBlobSection(const std::string& name, int version,
                                     std::vector<std::uint8_t> payload) {
  AddSection(name, version);
  FlushOpen();
  sections_.back().payload = std::move(payload);
}

std::string SnapshotBuilder::ManifestJson() const {
  FlushOpen();
  JsonWriter w;
  w.BeginObject();
  w.Field("schema_version", kJsonSchemaVersion);
  w.Field("kind", kind_);
  for (const auto& [k, v] : meta_str_) {
    w.Field(k, v);
  }
  for (const auto& [k, v] : meta_num_) {
    w.Field(k, v);
  }
  w.Key("sections").BeginArray();
  for (const Section& s : sections_) {
    w.BeginObject()
        .Field("name", s.name)
        .Field("version", s.version)
        .Field("bytes", static_cast<std::uint64_t>(s.payload.size()))
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::vector<std::uint8_t> SnapshotBuilder::Serialize() const {
  FlushOpen();
  const std::string manifest = ManifestJson();
  StateWriter w;
  w.Bytes(reinterpret_cast<const std::uint8_t*>(SnapshotFile::kMagic), 8);
  w.U32(SnapshotFile::kContainerVersion);
  w.U32(static_cast<std::uint32_t>(manifest.size()));
  w.Bytes(reinterpret_cast<const std::uint8_t*>(manifest.data()), manifest.size());
  w.U32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    FAB_CHECK_LE(s.name.size(), 0xffffu) << "section name too long";
    w.U32(static_cast<std::uint32_t>(s.name.size()));
    w.Bytes(reinterpret_cast<const std::uint8_t*>(s.name.data()), s.name.size());
    w.U32(static_cast<std::uint32_t>(s.version));
    w.U64(s.payload.size());
    w.Bytes(s.payload.data(), s.payload.size());
  }
  std::vector<std::uint8_t> out = w.TakeBuffer();
  const std::uint64_t checksum = Fnv1a(out.data(), out.size());
  StateWriter tail;
  tail.U64(checksum);
  out.insert(out.end(), tail.buffer().begin(), tail.buffer().end());
  return out;
}

bool SnapshotBuilder::WriteFile(const std::string& path, std::string* error) const {
  const std::vector<std::uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    *error = "short write to " + path;
    return false;
  }
  return true;
}

// --- SnapshotFile ----------------------------------------------------------

bool SnapshotFile::Load(const std::string& path, SnapshotFile* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    *error = "read error on " + path;
    return false;
  }
  if (!Parse(bytes, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool SnapshotFile::Parse(const std::vector<std::uint8_t>& bytes, SnapshotFile* out,
                         std::string* error) {
  if (bytes.size() < 8 + 4 + 8) {
    *error = "not a snapshot: file too short (" + std::to_string(bytes.size()) + " bytes)";
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, 8) != 0) {
    *error = "not a snapshot: bad magic";
    return false;
  }
  const std::size_t body = bytes.size() - 8;
  StateReader tail(bytes.data() + body, 8);
  const std::uint64_t stored = tail.U64();
  const std::uint64_t computed = Fnv1a(bytes.data(), body);
  if (stored != computed) {
    *error = "corrupt snapshot: checksum mismatch";
    return false;
  }

  StateReader r(bytes.data() + 8, body - 8);
  const std::uint32_t container_version = r.U32();
  if (container_version != kContainerVersion) {
    *error = "unsupported snapshot container version " + std::to_string(container_version) +
             " (this build reads version " + std::to_string(kContainerVersion) + ")";
    return false;
  }
  const std::uint32_t manifest_len = r.U32();
  std::string manifest;
  if (manifest_len > r.remaining()) {
    *error = "corrupt snapshot: manifest length overruns file";
    return false;
  }
  manifest.resize(manifest_len);
  for (std::uint32_t i = 0; i < manifest_len; ++i) {
    manifest[i] = static_cast<char>(r.U8());
  }

  JsonValue mv;
  std::string jerr;
  if (!ParseJson(manifest, &mv, &jerr)) {
    *error = "corrupt snapshot: manifest is not JSON (" + jerr + ")";
    return false;
  }
  const JsonValue* kind = mv.Find("kind");
  if (kind == nullptr || !kind->is_string()) {
    *error = "corrupt snapshot: manifest lacks a \"kind\"";
    return false;
  }

  std::vector<Section> sections;
  const std::uint32_t count = r.U32();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    Section s;
    const std::uint32_t name_len = r.U32();
    if (name_len > r.remaining()) {
      r.Fail("section name overruns file");
      break;
    }
    s.name.resize(name_len);
    for (std::uint32_t j = 0; j < name_len; ++j) {
      s.name[j] = static_cast<char>(r.U8());
    }
    s.version = static_cast<int>(r.U32());
    const std::uint64_t payload_len = r.U64();
    if (payload_len > r.remaining()) {
      r.Fail("section " + s.name + " overruns file");
      break;
    }
    s.payload.resize(static_cast<std::size_t>(payload_len));
    for (std::uint64_t j = 0; j < payload_len; ++j) {
      s.payload[static_cast<std::size_t>(j)] = r.U8();
    }
    sections.push_back(std::move(s));
  }
  if (!r.ok()) {
    *error = "corrupt snapshot: " + r.error();
    return false;
  }
  if (!r.AtEnd()) {
    *error = "corrupt snapshot: " + std::to_string(r.remaining()) + " trailing bytes";
    return false;
  }

  out->kind_ = kind->str_v;
  out->manifest_json_ = std::move(manifest);
  out->sections_ = std::move(sections);
  return true;
}

const SnapshotFile::Section* SnapshotFile::Find(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

StateReader SnapshotFile::Open(const std::string& name, int expected_version) const {
  const Section* s = Find(name);
  if (s == nullptr) {
    StateReader r(empty_.data(), 0);
    r.Fail("snapshot has no section \"" + name + "\"");
    return r;
  }
  if (s->version != expected_version) {
    StateReader r(empty_.data(), 0);
    r.Fail("section \"" + name + "\" is version " + std::to_string(s->version) +
           ", this build expects version " + std::to_string(expected_version));
    return r;
  }
  return StateReader(s->payload.data(), s->payload.size());
}

bool SnapshotFile::Restore(Snapshottable* s, std::string* error) const {
  StateReader r = Open(s->StateName(), s->StateVersion());
  if (r.ok()) {
    s->LoadState(r);
  }
  if (!r.ok()) {
    *error = "restoring \"" + s->StateName() + "\": " + r.error();
    return false;
  }
  if (!r.AtEnd()) {
    *error = "restoring \"" + s->StateName() + "\": " + std::to_string(r.remaining()) +
             " trailing bytes (schema drift without a version bump?)";
    return false;
  }
  return true;
}

}  // namespace fabacus
