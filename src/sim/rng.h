// Deterministic pseudo-random numbers (SplitMix64 core). The simulator never
// uses std::random_device so that every run is reproducible from a seed.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace fabacus {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).
  std::uint64_t NextBelow(std::uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + (hi - lo) * static_cast<float>(NextDouble());
  }

 private:
  std::uint64_t state_;
};

}  // namespace fabacus

#endif  // SRC_SIM_RNG_H_
