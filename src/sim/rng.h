// Deterministic pseudo-random numbers (SplitMix64 core). The simulator never
// uses std::random_device so that every run is reproducible from a seed.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace fabacus {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). Rejection sampling: a bare `Next() % n` over-weights
  // the low residues whenever n does not divide 2^64. Draws below
  // 2^64 mod n are rejected, which leaves a whole multiple of n outcomes, so
  // every residue is exactly equally likely. Still deterministic per seed
  // (the rejection schedule is itself a pure function of the stream).
  std::uint64_t NextBelow(std::uint64_t n) {
    if (n == 0) {
      return 0;
    }
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t v = Next();
      if (v >= threshold) {
        return v % n;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + (hi - lo) * static_cast<float>(NextDouble());
  }

  // Raw stream position, for checkpoint/restore: a restored Rng continues
  // the exact draw sequence of the saved one (docs/SNAPSHOT.md).
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

 private:
  std::uint64_t state_;
};

}  // namespace fabacus

#endif  // SRC_SIM_RNG_H_
