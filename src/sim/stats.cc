#include "src/sim/stats.h"

#include <cmath>
#include <numeric>

#include "src/sim/snapshot.h"

namespace fabacus {

void Counter::SaveState(StateWriter& w) const { w.U64(value_); }

void Counter::LoadState(StateReader& r) { value_ = r.U64(); }

void BusyTracker::SaveState(StateWriter& w) const {
  w.U64(accumulated_);
  w.U64(open_since_);
  w.I32(depth_);
}

void BusyTracker::LoadState(StateReader& r) {
  accumulated_ = r.U64();
  open_since_ = r.U64();
  depth_ = r.I32();
  if (depth_ < 0) {
    r.Fail("BusyTracker depth is negative");
    depth_ = 0;
  }
}

void Histogram::SaveState(StateWriter& w) const { w.VecF64(samples_); }

void Histogram::LoadState(StateReader& r) { samples_ = r.VecF64(); }

void TimeSeries::SaveState(StateWriter& w) const {
  w.U64(samples_.size());
  for (const Sample& s : samples_) {
    w.U64(s.time);
    w.F64(s.value);
  }
}

void TimeSeries::LoadState(StateReader& r) {
  const std::uint64_t n = r.U64();
  samples_.clear();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    Sample s;
    s.time = r.U64();
    s.value = r.F64();
    samples_.push_back(s);
  }
}

void BusyTracker::Enter(Tick now) {
  if (depth_ == 0) {
    open_since_ = now;
  }
  ++depth_;
}

void BusyTracker::Leave(Tick now) {
  FAB_CHECK_GT(depth_, 0) << "Leave without matching Enter";
  --depth_;
  if (depth_ == 0) {
    FAB_CHECK_GE(now, open_since_);
    accumulated_ += now - open_since_;
  }
}

void BusyTracker::AddInterval(Tick start, Tick end) {
  FAB_CHECK_GE(end, start);
  accumulated_ += end - start;
}

Tick BusyTracker::BusyTime(Tick now) const {
  Tick busy = accumulated_;
  if (depth_ > 0 && now > open_since_) {
    busy += now - open_since_;
  }
  return busy;
}

double BusyTracker::Utilization(Tick now) const {
  if (now == 0) {
    return 0.0;
  }
  return static_cast<double>(BusyTime(now)) / static_cast<double>(now);
}

double Histogram::Min() const {
  FAB_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  FAB_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Mean() const {
  FAB_CHECK(!samples_.empty());
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Percentile(double p) const {
  FAB_CHECK(!samples_.empty());
  FAB_CHECK_GE(p, 0.0);
  FAB_CHECK_LE(p, 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> TimeSeries::Rebucket(Tick horizon, std::size_t buckets) const {
  FAB_CHECK_GT(buckets, 0u);
  std::vector<double> out(buckets, 0.0);
  std::vector<std::size_t> counts(buckets, 0);
  if (horizon == 0) {
    return out;
  }
  for (const Sample& s : samples_) {
    if (s.time >= horizon) {
      continue;
    }
    const std::size_t b = static_cast<std::size_t>(
        static_cast<unsigned long long>(s.time) * buckets / horizon);
    out[b] += s.value;
    ++counts[b];
  }
  double last = 0.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] > 0) {
      out[b] /= static_cast<double>(counts[b]);
      last = out[b];
    } else {
      out[b] = last;
    }
  }
  return out;
}

}  // namespace fabacus
