#include "src/sim/stats.h"

#include <cmath>
#include <numeric>

#include "src/sim/snapshot.h"

namespace fabacus {

void Counter::SaveState(StateWriter& w) const { w.U64(value_); }

void Counter::LoadState(StateReader& r) { value_ = r.U64(); }

void BusyTracker::SaveState(StateWriter& w) const {
  w.U64(accumulated_);
  w.U64(open_since_);
  w.I32(depth_);
}

void BusyTracker::LoadState(StateReader& r) {
  accumulated_ = r.U64();
  open_since_ = r.U64();
  depth_ = r.I32();
  if (depth_ < 0) {
    r.Fail("BusyTracker depth is negative");
    depth_ = 0;
  }
}

void Histogram::SaveState(StateWriter& w) const { w.VecF64(samples_); }

void Histogram::LoadState(StateReader& r) {
  samples_ = r.VecF64();
  sorted_valid_ = false;
}

void TimeSeries::SaveState(StateWriter& w) const {
  w.U64(samples_.size());
  for (const Sample& s : samples_) {
    w.U64(s.time);
    w.F64(s.value);
  }
}

void TimeSeries::LoadState(StateReader& r) {
  const std::uint64_t n = r.U64();
  samples_.clear();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    Sample s;
    s.time = r.U64();
    s.value = r.F64();
    samples_.push_back(s);
  }
}

void BusyTracker::Enter(Tick now) {
  if (depth_ == 0) {
    open_since_ = now;
  }
  ++depth_;
}

void BusyTracker::Leave(Tick now) {
  FAB_CHECK_GT(depth_, 0) << "Leave without matching Enter";
  --depth_;
  if (depth_ == 0) {
    FAB_CHECK_GE(now, open_since_);
    accumulated_ += now - open_since_;
  }
}

void BusyTracker::AddInterval(Tick start, Tick end) {
  FAB_CHECK_GE(end, start);
  accumulated_ += end - start;
}

Tick BusyTracker::BusyTime(Tick now) const {
  Tick busy = accumulated_;
  if (depth_ > 0 && now > open_since_) {
    busy += now - open_since_;
  }
  return busy;
}

double BusyTracker::Utilization(Tick now) const {
  if (now == 0) {
    return 0.0;
  }
  return static_cast<double>(BusyTime(now)) / static_cast<double>(now);
}

double Histogram::Min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

const std::vector<double>& Histogram::Sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    ++sort_count_;
    sorted_valid_ = true;
  }
  return sorted_;
}

double Histogram::Percentile(double p) const {
  FAB_CHECK_GE(p, 0.0);
  FAB_CHECK_LE(p, 100.0);
  if (samples_.empty()) {
    return 0.0;
  }
  const std::vector<double>& sorted = Sorted();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

HistogramSummary Histogram::Summarize() const {
  HistogramSummary s;
  s.count = samples_.size();
  if (s.count == 0) {
    return s;
  }
  const std::vector<double>& sorted = Sorted();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = Mean();
  s.p50 = Percentile(50.0);
  s.p95 = Percentile(95.0);
  s.p99 = Percentile(99.0);
  return s;
}

// --- LogHistogram -----------------------------------------------------------

int LogHistogram::BucketIndex(double v) {
  if (!(v > 0.0)) {
    return 0;  // non-positive (and NaN) clamp into the underflow bucket
  }
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant ∈ [0.5,1)
  if (exp < kMinExp2) {
    return 0;
  }
  if (exp > kMaxExp2) {
    return kNumBuckets - 1;
  }
  int sub = static_cast<int>((mant - 0.5) * (2.0 * kSubBuckets));
  if (sub < 0) {
    sub = 0;
  } else if (sub >= kSubBuckets) {
    sub = kSubBuckets - 1;
  }
  return (exp - kMinExp2) * kSubBuckets + sub;
}

double LogHistogram::BucketLo(int idx) {
  const int oct = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  return std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets),
                    kMinExp2 + oct);
}

double LogHistogram::BucketHi(int idx) {
  const int oct = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  return std::ldexp(0.5 + static_cast<double>(sub + 1) / (2.0 * kSubBuckets),
                    kMinExp2 + oct);
}

void LogHistogram::AddToSum(std::uint64_t lo, std::uint64_t hi) {
  // 128-bit unsigned addition via (lo, hi) limbs; exact and commutative.
  sum_lo_ += lo;
  sum_hi_ += hi + (sum_lo_ < lo ? 1 : 0);
}

void LogHistogram::Record(double v) {
  if (counts_.empty()) {
    counts_.assign(kNumBuckets, 0);
  }
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  // Negative (out-of-domain) values contribute 0; enormous values saturate
  // one limb rather than overflowing llround.
  const double scaled = v > 0.0 ? v * kSumScale : 0.0;
  const std::uint64_t delta =
      scaled >= 9.0e18 ? static_cast<std::uint64_t>(9.0e18)
                       : static_cast<std::uint64_t>(std::llround(scaled));
  AddToSum(delta, 0);
  ++counts_[static_cast<std::size_t>(BucketIndex(v))];
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  AddToSum(other.sum_lo_, other.sum_hi_);
  if (counts_.empty()) {
    counts_.assign(kNumBuckets, 0);
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    counts_[static_cast<std::size_t>(i)] +=
        other.counts_[static_cast<std::size_t>(i)];
  }
}

double LogHistogram::Percentile(double p) const {
  FAB_CHECK_GE(p, 0.0);
  FAB_CHECK_LE(p, 100.0);
  if (count_ == 0) {
    return 0.0;
  }
  if (p <= 0.0 || count_ == 1) {
    return min_;
  }
  if (p >= 100.0) {
    return max_;
  }
  // Same rank convention as Histogram::Percentile (0-indexed, linear), but
  // interpolated within the containing bucket instead of between samples.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = counts_[static_cast<std::size_t>(i)];
    if (n == 0) {
      continue;
    }
    if (rank < static_cast<double>(cum + n)) {
      const double frac = (rank - static_cast<double>(cum)) /
                          static_cast<double>(n);
      const double lo = BucketLo(i);
      const double v = lo + frac * (BucketHi(i) - lo);
      return std::min(std::max(v, min_), max_);
    }
    cum += n;
  }
  return max_;
}

HistogramSummary LogHistogram::Summarize() const {
  HistogramSummary s;
  s.count = count_;
  if (count_ == 0) {
    return s;
  }
  s.min = Min();
  s.max = Max();
  s.mean = Mean();
  s.p50 = Percentile(50.0);
  s.p95 = Percentile(95.0);
  s.p99 = Percentile(99.0);
  return s;
}

void LogHistogram::Reset() {
  count_ = 0;
  sum_lo_ = 0;
  sum_hi_ = 0;
  min_ = 0.0;
  max_ = 0.0;
  counts_.clear();
}

void LogHistogram::SaveState(StateWriter& w) const {
  // Geometry fingerprint first: a sketch restored into a binary with a
  // different bucket layout would silently mis-bucket every count.
  w.I32(kMinExp2);
  w.I32(kMaxExp2);
  w.I32(kSubBuckets);
  w.U64(count_);
  w.U64(sum_lo_);
  w.U64(sum_hi_);
  w.F64(min_);
  w.F64(max_);
  std::uint64_t nonzero = 0;
  for (std::uint64_t c : counts_) {
    if (c != 0) {
      ++nonzero;
    }
  }
  w.U64(nonzero);
  for (int i = 0; i < static_cast<int>(counts_.size()); ++i) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
    if (c != 0) {
      w.U32(static_cast<std::uint32_t>(i));
      w.U64(c);
    }
  }
}

void LogHistogram::LoadState(StateReader& r) {
  Reset();
  const int min_exp = r.I32();
  const int max_exp = r.I32();
  const int sub = r.I32();
  if (min_exp != kMinExp2 || max_exp != kMaxExp2 || sub != kSubBuckets) {
    r.Fail("LogHistogram geometry mismatch");
    return;
  }
  count_ = r.U64();
  sum_lo_ = r.U64();
  sum_hi_ = r.U64();
  min_ = r.F64();
  max_ = r.F64();
  const std::uint64_t nonzero = r.U64();
  if (nonzero > 0 || count_ > 0) {
    counts_.assign(kNumBuckets, 0);
  }
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < nonzero && r.ok(); ++i) {
    const std::uint32_t idx = r.U32();
    const std::uint64_t c = r.U64();
    if (idx >= static_cast<std::uint32_t>(kNumBuckets)) {
      r.Fail("LogHistogram bucket index out of range");
      return;
    }
    counts_[idx] = c;
    total += c;
  }
  if (r.ok() && total != count_) {
    r.Fail("LogHistogram bucket counts disagree with total");
  }
}

// --- TimeSeries -------------------------------------------------------------

std::vector<double> TimeSeries::Rebucket(Tick horizon, std::size_t buckets) const {
  FAB_CHECK_GT(buckets, 0u);
  std::vector<double> out(buckets, 0.0);
  std::vector<std::size_t> counts(buckets, 0);
  if (horizon == 0) {
    return out;
  }
  for (const Sample& s : samples_) {
    if (s.time >= horizon) {
      continue;
    }
    const std::size_t b = static_cast<std::size_t>(
        static_cast<unsigned long long>(s.time) * buckets / horizon);
    out[b] += s.value;
    ++counts[b];
  }
  double last = 0.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] > 0) {
      out[b] /= static_cast<double>(counts[b]);
      last = out[b];
    } else {
      out[b] = last;
    }
  }
  return out;
}

// --- BoundedTimeSeries ------------------------------------------------------

BoundedTimeSeries::BoundedTimeSeries(std::size_t max_bins)
    : max_bins_(max_bins) {
  FAB_CHECK_GT(max_bins_, 1u);
}

void BoundedTimeSeries::Coarsen() {
  bin_width_ *= 2;
  const std::size_t half = (bins_.size() + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    Bin merged = bins_[2 * i];
    if (2 * i + 1 < bins_.size()) {
      merged.sum += bins_[2 * i + 1].sum;
      merged.count += bins_[2 * i + 1].count;
    }
    bins_[i] = merged;
  }
  bins_.resize(half);
}

void BoundedTimeSeries::Record(Tick time, double value) {
  while (time / bin_width_ >= max_bins_) {
    Coarsen();
  }
  const std::size_t idx = static_cast<std::size_t>(time / bin_width_);
  if (idx >= bins_.size()) {
    bins_.resize(idx + 1);
  }
  bins_[idx].sum += value;
  ++bins_[idx].count;
  ++samples_;
}

std::vector<double> BoundedTimeSeries::Rebucket(Tick horizon,
                                                std::size_t buckets) const {
  FAB_CHECK_GT(buckets, 0u);
  std::vector<double> out(buckets, 0.0);
  std::vector<std::uint64_t> counts(buckets, 0);
  if (horizon == 0) {
    return out;
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].count == 0) {
      continue;
    }
    // A bin stands in for its samples at the bin midpoint.
    const Tick mid = static_cast<Tick>(i) * bin_width_ + bin_width_ / 2;
    if (mid >= horizon) {
      continue;
    }
    const std::size_t b = static_cast<std::size_t>(
        static_cast<unsigned long long>(mid) * buckets / horizon);
    out[b] += bins_[i].sum;
    counts[b] += bins_[i].count;
  }
  double last = 0.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] > 0) {
      out[b] /= static_cast<double>(counts[b]);
      last = out[b];
    } else {
      out[b] = last;
    }
  }
  return out;
}

void BoundedTimeSeries::SaveState(StateWriter& w) const {
  w.U64(max_bins_);
  w.U64(bin_width_);
  w.U64(samples_);
  w.U64(bins_.size());
  for (const Bin& b : bins_) {
    w.F64(b.sum);
    w.U64(b.count);
  }
}

void BoundedTimeSeries::LoadState(StateReader& r) {
  const std::uint64_t max_bins = r.U64();
  if (max_bins != max_bins_) {
    r.Fail("BoundedTimeSeries max_bins mismatch");
    return;
  }
  bin_width_ = r.U64();
  if (bin_width_ == 0) {
    r.Fail("BoundedTimeSeries bin width is zero");
    bin_width_ = 1;
    return;
  }
  samples_ = r.U64();
  const std::uint64_t n = r.U64();
  if (n > max_bins_) {
    r.Fail("BoundedTimeSeries bin count exceeds max_bins");
    return;
  }
  bins_.assign(static_cast<std::size_t>(n), Bin{});
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    bins_[static_cast<std::size_t>(i)].sum = r.F64();
    bins_[static_cast<std::size_t>(i)].count = r.U64();
  }
}

}  // namespace fabacus
