#include "src/sim/pdes_engine.h"

#include <algorithm>

#include "src/sim/log.h"

namespace fabacus {

thread_local PdesEngine::ExecContext PdesEngine::tls_ctx_;

PdesEngine::PdesEngine(const Options& opt) {
  FAB_CHECK_GE(opt.shards, 1);
  FAB_CHECK_GE(opt.lookahead, Tick{1}) << "conservative window needs positive lookahead";
  threads_ = std::max(1, std::min(opt.threads, opt.shards));
  lookahead_ = opt.lookahead;
  shards_.reserve(static_cast<std::size_t>(opt.shards));
  for (int s = 0; s < opt.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(opt.backend));
  }
  const std::size_t n = shards_.size() * shards_.size();
  mailboxes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto mb = std::make_unique<Mailbox>();
    mb->ring.resize(std::max<std::size_t>(opt.mailbox_capacity, 2));
    mailboxes_.push_back(std::move(mb));
  }
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back(&PdesEngine::WorkerMain, this, w);
  }
}

PdesEngine::~PdesEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

// --- Mailbox ---------------------------------------------------------------

void PdesEngine::Mailbox::Push(Message&& m) {
  const std::size_t h = head.load(std::memory_order_acquire);
  const std::size_t t = tail.load(std::memory_order_relaxed);
  if (t - h >= ring.size()) {
    // The consumer only drains at window barriers, so a full ring stays full
    // for the rest of the window; every later message spills. Merge order is
    // unaffected — the drain sorts by (when, stamp, src, seq) regardless.
    std::lock_guard<std::mutex> lk(spill_mu);
    spill.push_back(std::move(m));
    return;
  }
  ring[t % ring.size()] = std::move(m);
  tail.store(t + 1, std::memory_order_release);
}

void PdesEngine::Mailbox::DrainInto(std::vector<Message>* out) {
  std::size_t h = head.load(std::memory_order_relaxed);
  const std::size_t t = tail.load(std::memory_order_acquire);
  while (h != t) {
    out->push_back(std::move(ring[h % ring.size()]));
    ++h;
  }
  head.store(h, std::memory_order_release);
  std::lock_guard<std::mutex> lk(spill_mu);
  for (auto& m : spill) {
    out->push_back(std::move(m));
  }
  spill.clear();
}

bool PdesEngine::Mailbox::DrainEmptyUnsynchronized() const {
  return head.load(std::memory_order_relaxed) == tail.load(std::memory_order_relaxed) &&
         spill.empty();
}

// --- Scheduling ------------------------------------------------------------

void PdesEngine::Schedule(int shard, Tick when, Callback fn, bool daemon) {
  const bool in_event = tls_ctx_.engine == this;
  const int cur = in_event ? tls_ctx_.shard : 0;
  const int dst = shard < 0 ? cur : shard;
  FAB_CHECK_GE(dst, 0);
  FAB_CHECK_LT(dst, shards());
  if (in_event) {
    FAB_CHECK_EQ(dst, cur) << "cross-shard Schedule from a running event; use SendCross";
    Shard& sh = *shards_[static_cast<std::size_t>(cur)];
    FAB_CHECK_GE(when, sh.now) << "event scheduled in the past";
    sh.q.Push(when, std::move(fn), daemon);
  } else {
    FAB_CHECK(!running_) << "Schedule from a foreign thread while the engine runs";
    FAB_CHECK_GE(when, unified_now_) << "event scheduled in the past";
    shards_[static_cast<std::size_t>(dst)]->q.Push(when, std::move(fn), daemon);
  }
}

void PdesEngine::SendCross(int dst_shard, Tick when, std::uint64_t stamp, Callback fn,
                           bool daemon) {
  FAB_CHECK_GE(dst_shard, 0);
  FAB_CHECK_LT(dst_shard, shards());
  const bool in_event = tls_ctx_.engine == this;
  const int src = in_event ? tls_ctx_.shard : 0;
  if (!in_event || dst_shard == src) {
    Schedule(dst_shard, when, std::move(fn), daemon);
    return;
  }
  Shard& sh = *shards_[static_cast<std::size_t>(src)];
  // The conservative contract: the destination has been promised nothing
  // lands below its committed horizon, and that promise is exactly the
  // sender's clock + lookahead. Firing below it would corrupt the window.
  FAB_CHECK_GE(when, sh.now + lookahead_)
      << "lookahead violation: cross-shard event below the neighbor's committed horizon"
      << " (src shard " << src << " now=" << sh.now << " lookahead=" << lookahead_
      << " dst shard " << dst_shard << " when=" << when << ")";
  Mailbox& mb = mailbox(src, dst_shard);
  Message m;
  m.when = when;
  m.stamp = stamp;
  m.seq = mb.next_seq++;
  m.src = src;
  m.daemon = daemon;
  m.fn = std::move(fn);
  mb.Push(std::move(m));
  ++sh.stats.sent;
}

void PdesEngine::FlashRelay(int dst_shard, Tick done) {
  FAB_CHECK_GE(dst_shard, 1);
  FAB_CHECK_LT(dst_shard, shards());
  const bool in_event = tls_ctx_.engine == this;
  if (in_event && tls_ctx_.shard != 0) {
    return;  // only shard-0 device logic relays
  }
  const Tick now = Now();
  if (done < now + 2 * lookahead_) {
    return;  // not enough slack to hop out and back; keep the op local
  }
  const Tick hop = done - lookahead_;
  const std::uint64_t stamp = relay_stamp_++;
  PdesEngine* eng = this;
  auto hop_fn = [eng, done, stamp] {
    eng->NoteInternalExecuted();
    eng->SendCross(0, done, stamp, [eng] { eng->NoteInternalExecuted(); },
                   /*daemon=*/true);
  };
  if (in_event) {
    SendCross(dst_shard, hop, stamp, std::move(hop_fn), /*daemon=*/true);
  } else {
    shards_[static_cast<std::size_t>(dst_shard)]->q.Push(hop, std::move(hop_fn),
                                                         /*daemon=*/true);
  }
}

void PdesEngine::NoteInternalExecuted() {
  if (tls_ctx_.engine != this) {
    return;
  }
  ++shards_[static_cast<std::size_t>(tls_ctx_.shard)]->stats.internal_executed;
}

// --- Run loop --------------------------------------------------------------

Tick PdesEngine::Run() { return RunLoop(/*bounded=*/false, /*deadline=*/0); }

Tick PdesEngine::RunUntil(Tick deadline) { return RunLoop(/*bounded=*/true, deadline); }

Tick PdesEngine::RunLoop(bool bounded, Tick deadline) {
  FAB_CHECK(tls_ctx_.engine == nullptr) << "re-entrant Run from inside an event";
  running_ = true;
  for (;;) {
    if (clear_requested_.load(std::memory_order_acquire)) {
      ApplyDeferredClear();
    }
    const Tick gmin = GlobalMinNextTime();
    if (gmin == kNoEvent) {
      break;
    }
    if (!bounded && GlobalNonDaemons() == 0) {
      break;  // only daemons remain — they stay queued, like the sequential Run
    }
    if (bounded && gmin > deadline) {
      break;
    }
    // Safety valve, checked per window rather than per event: close enough
    // for a storm guard (a single window holds at most lookahead's worth).
    FAB_CHECK_LT(events_executed(), max_events_) << "event budget exhausted";
    Tick w_end = gmin > kNoEvent - lookahead_ ? kNoEvent : gmin + lookahead_;
    if (bounded && w_end > deadline) {
      w_end = deadline + 1;  // the window is half-open; deadline-exact events fire
    }
    const Tick horizon = DaemonHorizon();
    ExecuteWindow(w_end, horizon, /*daemons_unconditional=*/bounded);
    ++windows_;
    DrainMailboxes();
  }
  if (clear_requested_.load(std::memory_order_acquire)) {
    ApplyDeferredClear();
  }
  Tick final_now = unified_now_;
  for (auto& sh : shards_) {
    final_now = std::max(final_now, sh->now);
  }
  if (bounded) {
    // Sequential RunUntil parks the clock on the deadline; everything at or
    // below it has fired (daemons included), so no shard clock regresses.
    final_now = std::max(final_now, deadline);
    for (auto& sh : shards_) {
      sh->now = final_now;
    }
  }
  unified_now_ = final_now;
  running_ = false;
  return unified_now_;
}

void PdesEngine::ExecuteWindow(Tick w_end, Tick daemon_horizon,
                               bool daemons_unconditional) {
  if (threads_ == 1) {
    for (int s = 0; s < shards(); ++s) {
      RunShard(s, w_end, daemon_horizon, daemons_unconditional);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    window_end_ = w_end;
    window_daemon_horizon_ = daemon_horizon;
    window_daemons_unconditional_ = daemons_unconditional;
    windows_done_ = 0;
    ++window_gen_;
  }
  cv_work_.notify_all();
  for (int s = 0; s < shards(); s += threads_) {
    RunShard(s, w_end, daemon_horizon, daemons_unconditional);
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return windows_done_ == threads_ - 1; });
}

void PdesEngine::WorkerMain(int worker_id) {
  std::uint64_t seen = 0;
  for (;;) {
    Tick w_end = 0;
    Tick horizon = 0;
    bool uncond = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stopping_ || window_gen_ != seen; });
      if (stopping_) {
        return;
      }
      seen = window_gen_;
      w_end = window_end_;
      horizon = window_daemon_horizon_;
      uncond = window_daemons_unconditional_;
    }
    for (int s = worker_id; s < shards(); s += threads_) {
      RunShard(s, w_end, horizon, uncond);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++windows_done_;
    }
    cv_done_.notify_one();
  }
}

void PdesEngine::RunShard(int shard, Tick w_end, Tick daemon_horizon,
                          bool daemons_unconditional) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  const ExecContext prev = tls_ctx_;
  tls_ctx_ = ExecContext{this, shard};
  while (!sh.q.empty()) {
    if (clear_requested_.load(std::memory_order_acquire)) {
      break;  // a power failure elsewhere; stop popping, barrier cleans up
    }
    const Tick t = sh.q.NextTime();
    if (t >= w_end) {
      break;
    }
    // Daemon gating (sequential parity): once this shard holds only daemons,
    // one fires only while it provably precedes the next non-daemon anywhere
    // (daemon_horizon is a lower bound on that). Everything left here is a
    // daemon at >= t, so holding means breaking.
    if (!daemons_unconditional && sh.q.non_daemon_count() == 0 && t >= daemon_horizon) {
      break;
    }
    Tick when = 0;
    Callback fn = sh.q.Pop(&when);
    FAB_CHECK_GE(when, sh.now);
    sh.now = when;
    ++sh.stats.executed;
    fn();
  }
  tls_ctx_ = prev;
}

void PdesEngine::DrainMailboxes() {
  std::vector<Message> batch;
  for (int dst = 0; dst < shards(); ++dst) {
    batch.clear();
    for (int src = 0; src < shards(); ++src) {
      if (src == dst) {
        continue;
      }
      mailbox(src, dst).DrainInto(&batch);
    }
    if (batch.empty()) {
      continue;
    }
    // Deterministic merge: a total order over the stamps, independent of
    // which thread produced what first. The destination queue then assigns
    // its own tie-break seqs in this order.
    std::sort(batch.begin(), batch.end(), [](const Message& a, const Message& b) {
      if (a.when != b.when) {
        return a.when < b.when;
      }
      if (a.stamp != b.stamp) {
        return a.stamp < b.stamp;
      }
      if (a.src != b.src) {
        return a.src < b.src;
      }
      return a.seq < b.seq;
    });
    Shard& sh = *shards_[static_cast<std::size_t>(dst)];
    for (auto& m : batch) {
      sh.q.Push(m.when, std::move(m.fn), m.daemon);
      ++sh.stats.received;
    }
  }
}

// --- Clear / power failure -------------------------------------------------

void PdesEngine::Clear() {
  if (tls_ctx_.engine == this) {
    const int s = tls_ctx_.shard;
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    // Synchronous for the requesting shard: anything the current callback
    // schedules after this call lands in a fresh queue and survives, exactly
    // like the sequential engine's Halt. Seq counters reset with the queue,
    // so a post-crash run re-derives identical (when, seq) ordering.
    sh.q.Clear();
    clear_now_.store(sh.now, std::memory_order_relaxed);
    clear_shard_.store(s, std::memory_order_relaxed);
    clear_requested_.store(true, std::memory_order_release);
    return;
  }
  // Outside the run loop (Resume/Halt): synchronous everywhere.
  for (auto& sh : shards_) {
    sh->q.Clear();
  }
  std::vector<Message> scratch;
  for (auto& mb : mailboxes_) {
    mb->DrainInto(&scratch);
    scratch.clear();
    mb->next_seq = 0;
  }
}

void PdesEngine::ApplyDeferredClear() {
  const int requester = clear_shard_.load(std::memory_order_relaxed);
  const Tick t = clear_now_.load(std::memory_order_relaxed);
  for (int s = 0; s < shards(); ++s) {
    if (s != requester) {
      shards_[static_cast<std::size_t>(s)]->q.Clear();
    }
  }
  std::vector<Message> scratch;
  for (auto& mb : mailboxes_) {
    mb->DrainInto(&scratch);
    scratch.clear();
    mb->next_seq = 0;
  }
  // Shards that raced ahead of the failure tick executed only inert
  // cross-shard events (the shard-safety contract); collapse every clock to
  // the requester's so recovery sees the sequential power-loss time.
  for (auto& sh : shards_) {
    sh->now = t;
  }
  unified_now_ = t;
  clear_shard_.store(-1, std::memory_order_relaxed);
  clear_requested_.store(false, std::memory_order_release);
}

// --- Introspection ---------------------------------------------------------

Tick PdesEngine::Now() const {
  if (tls_ctx_.engine == this) {
    return shards_[static_cast<std::size_t>(tls_ctx_.shard)]->now;
  }
  return unified_now_;
}

int PdesEngine::CurrentShard() const {
  return tls_ctx_.engine == this ? tls_ctx_.shard : 0;
}

bool PdesEngine::empty() const {
  for (const auto& sh : shards_) {
    if (!sh->q.empty()) {
      return false;
    }
  }
  return true;
}

std::size_t PdesEngine::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    n += sh->q.size();
  }
  return n;
}

bool PdesEngine::OnlyDaemonsLeft() const { return GlobalNonDaemons() == 0; }

std::uint64_t PdesEngine::events_executed() const {
  std::uint64_t n = base_events_;
  for (const auto& sh : shards_) {
    n += sh->stats.executed - sh->stats.internal_executed;
  }
  return n;
}

void PdesEngine::RestoreClock(Tick now, std::uint64_t events) {
  for (auto& sh : shards_) {
    FAB_CHECK(sh->q.empty()) << "RestoreClock with pending events; Halt first";
    sh->now = now;
    sh->stats = ShardStats{};
  }
  unified_now_ = now;
  base_events_ = events;
}

PdesEngine::ShardStats PdesEngine::shard_stats(int shard) const {
  FAB_CHECK_GE(shard, 0);
  FAB_CHECK_LT(shard, shards());
  return shards_[static_cast<std::size_t>(shard)]->stats;
}

std::size_t PdesEngine::GlobalNonDaemons() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    n += sh->q.non_daemon_count();
  }
  return n;
}

Tick PdesEngine::GlobalMinNextTime() {
  Tick m = kNoEvent;
  for (auto& sh : shards_) {
    if (!sh->q.empty()) {
      m = std::min(m, sh->q.NextTime());
    }
  }
  return m;
}

Tick PdesEngine::DaemonHorizon() {
  Tick h = kNoEvent;
  for (auto& sh : shards_) {
    if (sh->q.non_daemon_count() > 0) {
      h = std::min(h, sh->q.NextTime());
    }
  }
  return h;
}

}  // namespace fabacus
