#include "src/sim/event_queue.h"

#include <bit>

namespace fabacus {

std::size_t CalendarEventQueue::FindNext() {
  FAB_CHECK(size_ > 0);
  if (cached_next_ != kNoBucket) {
    return cached_next_;
  }
  // Forward scan: visit bucket windows in increasing time order. All events
  // whose `when` falls inside the current window live (sorted) in the current
  // bucket, so the first in-window front is the global (when, seq) minimum.
  const Tick width = bucket_width();
  for (std::size_t step = 0; step <= buckets_.size(); ++step) {
    const Bucket& b = buckets_[cur_bucket_];
    if (!b.empty() && b.front().when < cur_window_ + width) {
      return cached_next_ = cur_bucket_;
    }
    cur_bucket_ = (cur_bucket_ + 1) & bucket_mask_;
    cur_window_ += width;
  }
  // Nothing within a full rotation: the next event is more than one "year"
  // ahead (e.g. a lone tBERS completion or daemon tick). Jump the cursor
  // straight to the earliest front.
  const Event* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    if (b.empty()) {
      continue;
    }
    const Event& e = b.front();
    if (best == nullptr || e.when < best->when ||
        (e.when == best->when && e.seq_daemon < best->seq_daemon)) {
      best = &e;
      best_bucket = i;
    }
  }
  FAB_CHECK(best != nullptr);
  cur_bucket_ = best_bucket;
  cur_window_ = (best->when >> width_shift_) << width_shift_;
  return cached_next_ = best_bucket;
}

void CalendarEventQueue::Rebuild() {
  // Pull every event out, then re-seed the geometry from the live
  // population: bucket count tracks the event count, bucket width tracks the
  // spacing of the NEAREST events so the windows the cursor is about to walk
  // hold O(1) events each. Using the full span instead would let one distant
  // tBERS completion (6 ms) inflate the width by orders of magnitude and pile
  // the dense near-now cluster (1 us command overheads) into a single bucket.
  // Far-future events simply wrap laps; bucket order keeps them behind the
  // near ones, and the full-rotation fallback in FindNext absorbs the rare
  // sparse jump past them.
  std::vector<Event> all;
  all.reserve(size_);
  for (Bucket& b : buckets_) {
    for (std::size_t i = b.head; i < b.ev.size(); ++i) {
      all.push_back(std::move(b.ev[i]));
    }
    b.ev.clear();
    b.head = 0;
  }
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& c) {
    return a.when != c.when ? a.when < c.when : a.seq_daemon < c.seq_daemon;
  });

  // Aim for ~1 event per bucket: 2^(bit_width-1) <= size, so buckets end up
  // within [0.5x, 1x] of the population. Overshooting to 2x size doubles the
  // bucket-header footprint (32 B each) for no scan savings and measurably
  // hurts cache behaviour at 10k+ live events.
  int bucket_shift = all.empty() ? kMinBucketShift
                                 : std::bit_width(all.size()) - 1;
  bucket_shift = std::clamp(bucket_shift, kMinBucketShift, kMaxBucketShift);

  // Width floor = 1 us (kInitWidthShift), the ONFi command granularity:
  // events denser than that are same-window appends, so narrower buckets buy
  // nothing and shred locality (measured in bench_micro_engine — a 4-tick
  // width costs ~10x at 8k live events). The estimator only ever WIDENS the
  // windows, for sparse horizons (a drained device ticking on tPROG/tBERS
  // completions) where walking 1 us windows between events would dominate.
  int width_shift = kInitWidthShift;
  if (all.size() >= 8) {
    // Sample the nearest quarter (capped at 256) so the estimate tracks the
    // dense head of the schedule, not the tPROG/tBERS tail.
    const std::size_t k = std::clamp<std::size_t>(all.size() / 4, 2, 256);
    const Tick near_span = all[k - 1].when - all[0].when;
    const Tick spacing = near_span / static_cast<Tick>(k - 1);
    width_shift = spacing == 0 ? kInitWidthShift : std::bit_width(spacing);
  }
  width_shift = std::clamp(width_shift, kInitWidthShift, kMaxWidthShift);

  InitBuckets(bucket_shift, width_shift);
  if (!all.empty()) {
    SeatCursorAt(all.front().when);
  }
  // `all` is globally sorted, so each bucket receives its events in sorted
  // order: plain appends, no per-event search or memmove.
  for (Event& e : all) {
    buckets_[BucketIndex(e.when)].ev.push_back(std::move(e));
  }
}

void CalendarEventQueue::Clear() {
  for (Bucket& b : buckets_) {
    b.ev.clear();
    b.head = 0;
  }
  size_ = 0;
  non_daemon_count_ = 0;
  next_seq_ = 0;
  SeatCursorAt(0);
}

}  // namespace fabacus
