#include "src/sim/event_queue.h"

#include "src/sim/log.h"

namespace fabacus {

void EventQueue::Push(Tick when, Callback fn, bool daemon) {
  heap_.push(Event{when, next_seq_++, std::move(fn), daemon});
  if (!daemon) {
    ++non_daemon_count_;
  }
}

Tick EventQueue::NextTime() const {
  FAB_CHECK(!heap_.empty());
  return heap_.top().when;
}

EventQueue::Callback EventQueue::Pop(Tick* when) {
  FAB_CHECK(!heap_.empty());
  // priority_queue::top() returns const&; the callback must be moved out, so
  // const_cast is confined to this one well-understood spot.
  Event& top = const_cast<Event&>(heap_.top());
  *when = top.when;
  Callback fn = std::move(top.fn);
  if (!top.daemon) {
    FAB_CHECK_GT(non_daemon_count_, 0u);
    --non_daemon_count_;
  }
  heap_.pop();
  return fn;
}

void EventQueue::Clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
  next_seq_ = 0;
  non_daemon_count_ = 0;
}

}  // namespace fabacus
