// EventFn: the simulator's zero-allocation event callback.
//
// `std::function<void()>` heap-allocates for any capture larger than its
// small-object buffer (16 bytes on libstdc++), which every modelled NAND
// read, bus beat, and screen dispatch pays on the hot path. EventFn instead
// stores the callable inline in a fixed 32-byte buffer whenever it is
// trivially copyable (lambdas capturing pointers, ids and ticks — the common
// case across the simulator), and falls back to a thread-local slab/freelist
// for the rare oversized or non-trivial callables (e.g. ones capturing a
// `std::function` continuation). The slab never touches malloc after warmup,
// and being thread-local it is safe under SweepRunner's per-thread
// simulators without any locking.
//
// The inline budget is deliberately 32 and not larger: together with the two
// dispatch pointers it makes EventFn 48 bytes, so a calendar-queue Event
// (when + seq + EventFn) is exactly one 64-byte cache line. Measured on the
// engine micro-bench, the smaller event beats a 48-byte buffer by ~25% at
// 16k+ live events — one line of traffic per push/pop instead of two.
//
// EventFn is move-only; a moved-from EventFn is empty. Inline callables are
// relocated by memcpy (that is what the trivially-copyable requirement buys),
// so queue reshuffles (calendar-bucket inserts, heap sifts) stay cheap.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/log.h"

namespace fabacus {

namespace internal {

// Thread-local fixed-chunk pool for callables that do not fit inline.
// Chunks are carved from 64 KiB slabs and recycled through a freelist, so a
// steady-state simulation performs no heap allocation per event. Chunks
// larger than kChunkBytes (rare: very fat captures) go straight to new[].
class EventSlabPool {
 public:
  static constexpr std::size_t kChunkBytes = 128;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  static void* Alloc(std::size_t n) {
    if (n > kChunkBytes) {
      return ::operator new(n, std::align_val_t{alignof(std::max_align_t)});
    }
    EventSlabPool& pool = Local();
    if (pool.free_ == nullptr) {
      pool.Refill();
    }
    FreeNode* node = pool.free_;
    pool.free_ = node->next;
    return node;
  }

  static void Free(void* p, std::size_t n) {
    if (n > kChunkBytes) {
      ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
      return;
    }
    EventSlabPool& pool = Local();
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = pool.free_;
    pool.free_ = node;
  }

  // Outstanding chunks currently handed out (test/diagnostic hook).
  static std::size_t LiveChunks() {
    EventSlabPool& pool = Local();
    std::size_t free_chunks = 0;
    for (FreeNode* n = pool.free_; n != nullptr; n = n->next) {
      ++free_chunks;
    }
    return pool.total_chunks_ - free_chunks;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static EventSlabPool& Local() {
    thread_local EventSlabPool pool;
    return pool;
  }

  void Refill() {
    slabs_.push_back(std::make_unique<AlignedSlab>());
    unsigned char* base = slabs_.back()->bytes;
    const std::size_t chunks = kSlabBytes / kChunkBytes;
    for (std::size_t i = 0; i < chunks; ++i) {
      FreeNode* node = reinterpret_cast<FreeNode*>(base + i * kChunkBytes);
      node->next = free_;
      free_ = node;
    }
    total_chunks_ += chunks;
  }

  struct AlignedSlab {
    alignas(std::max_align_t) unsigned char bytes[kSlabBytes];
  };

  FreeNode* free_ = nullptr;
  std::size_t total_chunks_ = 0;
  std::vector<std::unique_ptr<AlignedSlab>> slabs_;
};

}  // namespace internal

class EventFn {
 public:
  // Inline capacity: four pointer-sized captures. Hot-path lambdas across
  // the simulator capture [this, state*, id, tick] and fit; anything bigger
  // or non-trivial rides the slab.
  static constexpr std::size_t kInlineBytes = 32;

  // True when F is stored inline (no allocation on construction or move).
  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(std::decay_t<F>) <= kInlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_trivially_copyable_v<std::decay_t<F>> &&
      std::is_trivially_destructible_v<std::decay_t<F>>;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>, "EventFn callable must be void()");
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &InvokeInline<D>;
      drop_ = nullptr;
    } else {
      void* mem = internal::EventSlabPool::Alloc(sizeof(D));
      ::new (mem) D(std::forward<F>(f));
      std::memcpy(buf_, &mem, sizeof(void*));
      invoke_ = &InvokeHeap<D>;
      drop_ = &DropHeap<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { StealFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      StealFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() {
    FAB_CHECK(invoke_ != nullptr) << "invoking an empty EventFn";
    invoke_(this);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  template <typename D>
  static void InvokeInline(EventFn* self) {
    (*std::launder(reinterpret_cast<D*>(self->buf_)))();
  }

  template <typename D>
  static void InvokeHeap(EventFn* self) {
    D* p = nullptr;
    std::memcpy(&p, self->buf_, sizeof(void*));
    (*p)();
  }

  template <typename D>
  static void DropHeap(EventFn* self) {
    D* p = nullptr;
    std::memcpy(&p, self->buf_, sizeof(void*));
    p->~D();
    internal::EventSlabPool::Free(p, sizeof(D));
  }

  void Reset() {
    if (drop_ != nullptr) {
      drop_(this);
    }
    invoke_ = nullptr;
    drop_ = nullptr;
  }

  void StealFrom(EventFn& other) noexcept {
    // Inline callables are trivially copyable by construction, heap ones are
    // just a pointer — a raw byte copy relocates either kind. The copy is a
    // fixed kInlineBytes regardless of the callable's real size; for small or
    // captureless callables the tail bytes are uninitialized and unused,
    // which GCC's -Wmaybe-uninitialized flags when it inlines deep enough.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
    std::memcpy(buf_, other.buf_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    invoke_ = other.invoke_;
    drop_ = other.drop_;
    other.invoke_ = nullptr;
    other.drop_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(EventFn*) = nullptr;
  void (*drop_)(EventFn*) = nullptr;
};

static_assert(sizeof(EventFn) == 48,
              "EventFn must stay 48 bytes so a queue Event (when + seq + fn) "
              "is exactly one 64-byte cache line");

}  // namespace fabacus

#endif  // SRC_SIM_EVENT_FN_H_
