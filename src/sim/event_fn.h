// EventFn: the simulator's zero-allocation event callback.
//
// `std::function<void()>` heap-allocates for any capture larger than its
// small-object buffer (16 bytes on libstdc++), which every modelled NAND
// read, bus beat, and screen dispatch pays on the hot path. EventFn instead
// stores the callable inline in a fixed 32-byte buffer whenever it is
// trivially copyable (lambdas capturing pointers, ids and ticks — the common
// case across the simulator), and falls back to a thread-local slab/freelist
// for the rare oversized or non-trivial callables (e.g. ones capturing a
// `std::function` continuation). The slab never touches malloc after warmup.
// Each chunk is tagged with its owning pool, so an EventFn may be destroyed
// on a different thread than the one that built it (the PDES engine moves
// events across shard threads): a local free is a lock-free push onto the
// owner's freelist, a remote free is a lock-free push onto the owner's
// return stack, drained by the owner on its next refill.
//
// The inline budget is deliberately 32 and not larger: together with the two
// dispatch pointers it makes EventFn 48 bytes, so a calendar-queue Event
// (when + seq + EventFn) is exactly one 64-byte cache line. Measured on the
// engine micro-bench, the smaller event beats a 48-byte buffer by ~25% at
// 16k+ live events — one line of traffic per push/pop instead of two.
//
// EventFn is move-only; a moved-from EventFn is empty. Inline callables are
// relocated by memcpy (that is what the trivially-copyable requirement buys),
// so queue reshuffles (calendar-bucket inserts, heap sifts) stay cheap.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/log.h"

namespace fabacus {

namespace internal {

// Thread-local fixed-chunk pool for callables that do not fit inline.
// Chunks are carved from 64 KiB slabs and recycled through a freelist, so a
// steady-state simulation performs no heap allocation per event. Chunks
// larger than kChunkBytes (rare: very fat captures) go straight to new[],
// which is cross-thread-safe by construction.
//
// Cross-thread free: every chunk carries a header naming its owning pool.
// Freeing on the owner thread is the original freelist push; freeing
// anywhere else CAS-pushes the chunk onto the owner's lock-free return
// stack, which the owner splices back into its freelist before growing.
// Pools are heap-allocated and reference-counted (one ref per outstanding
// chunk plus one for the owning thread), so a chunk freed after its
// allocating thread has exited still lands on a live pool; whoever drops
// the last reference deletes the pool and its slabs wholesale.
class EventSlabPool {
 public:
  static constexpr std::size_t kChunkBytes = 128;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  static void* Alloc(std::size_t n) {
    if (n > kChunkBytes) {
      return ::operator new(n, std::align_val_t{alignof(std::max_align_t)});
    }
    return Local()->AllocChunk();
  }

  static void Free(void* p, std::size_t n) {
    if (n > kChunkBytes) {
      ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
      return;
    }
    Header* h = reinterpret_cast<Header*>(static_cast<unsigned char*>(p) - kHeaderBytes);
    EventSlabPool* owner = h->owner;
    if (owner == tl_pool_) {
      owner->FreeLocal(h);
    } else {
      owner->FreeRemote(h);
    }
  }

  // Outstanding chunks handed out by this thread's pool and not yet freed on
  // any thread (test/diagnostic hook).
  static std::size_t LiveChunks() {
    return Local()->refs_.load(std::memory_order_relaxed) - 1;
  }

 private:
  // Per-chunk header. `owner` stays valid for the chunk's whole lifetime
  // (it holds a pool reference); `next` is freelist/return-stack linkage,
  // dead while the chunk is handed out.
  struct Header {
    EventSlabPool* owner;
    Header* next;
  };
  // Payload offset: big enough for the header, aligned for any capture.
  static constexpr std::size_t kHeaderBytes =
      ((sizeof(Header) + alignof(std::max_align_t) - 1) / alignof(std::max_align_t)) *
      alignof(std::max_align_t);
  static constexpr std::size_t kStride = kHeaderBytes + kChunkBytes;
  static_assert(kStride % alignof(std::max_align_t) == 0,
                "chunk stride must preserve payload alignment");

  static EventSlabPool* Local() {
    // The holder pins tl_pool_ for the thread's lifetime; on thread exit it
    // drops the owner reference, after which the last in-flight remote free
    // deletes the pool.
    struct Holder {
      EventSlabPool* pool = new EventSlabPool();
      Holder() { tl_pool_ = pool; }
      ~Holder() {
        tl_pool_ = nullptr;
        pool->OnOwnerExit();
      }
    };
    thread_local Holder holder;
    return holder.pool;
  }

  void* AllocChunk() {
    if (free_ == nullptr) {
      DrainRemote();
      if (free_ == nullptr) {
        Refill();
      }
    }
    Header* h = free_;
    free_ = h->next;
    h->owner = this;
    refs_.fetch_add(1, std::memory_order_relaxed);
    return reinterpret_cast<unsigned char*>(h) + kHeaderBytes;
  }

  void FreeLocal(Header* h) {
    h->next = free_;
    free_ = h;
    // Cannot hit zero: the owner reference is still held by this thread.
    refs_.fetch_sub(1, std::memory_order_relaxed);
  }

  void FreeRemote(Header* h) {
    // Publish the chunk before dropping its reference, so a concurrent
    // pool deletion (owner already gone, refs hitting zero) reclaims it.
    Header* old = remote_free_.load(std::memory_order_relaxed);
    do {
      h->next = old;
    } while (!remote_free_.compare_exchange_weak(old, h, std::memory_order_release,
                                                 std::memory_order_relaxed));
    Unref();
  }

  void DrainRemote() {
    // Acquire pairs with FreeRemote's release: the remote thread's final
    // writes to the chunk happen-before its reuse here.
    Header* list = remote_free_.exchange(nullptr, std::memory_order_acquire);
    while (list != nullptr) {
      Header* next = list->next;
      list->next = free_;
      free_ = list;
      list = next;
    }
  }

  void OnOwnerExit() {
    DrainRemote();
    Unref();
  }

  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }

  void Refill() {
    slabs_.push_back(std::make_unique<AlignedSlab>());
    unsigned char* base = slabs_.back()->bytes;
    const std::size_t chunks = kSlabBytes / kStride;
    for (std::size_t i = 0; i < chunks; ++i) {
      Header* h = reinterpret_cast<Header*>(base + i * kStride);
      h->owner = this;
      h->next = free_;
      free_ = h;
    }
  }

  struct AlignedSlab {
    alignas(std::max_align_t) unsigned char bytes[kSlabBytes];
  };

  Header* free_ = nullptr;                      // owner-thread freelist
  std::atomic<Header*> remote_free_{nullptr};   // cross-thread return stack
  // Outstanding chunks + 1 for the owning thread; see class comment.
  std::atomic<std::size_t> refs_{1};
  std::vector<std::unique_ptr<AlignedSlab>> slabs_;

  static thread_local EventSlabPool* tl_pool_;
};

inline thread_local EventSlabPool* EventSlabPool::tl_pool_ = nullptr;

}  // namespace internal

class EventFn {
 public:
  // Inline capacity: four pointer-sized captures. Hot-path lambdas across
  // the simulator capture [this, state*, id, tick] and fit; anything bigger
  // or non-trivial rides the slab.
  static constexpr std::size_t kInlineBytes = 32;

  // True when F is stored inline (no allocation on construction or move).
  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(std::decay_t<F>) <= kInlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_trivially_copyable_v<std::decay_t<F>> &&
      std::is_trivially_destructible_v<std::decay_t<F>>;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>, "EventFn callable must be void()");
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &InvokeInline<D>;
      drop_ = nullptr;
    } else {
      void* mem = internal::EventSlabPool::Alloc(sizeof(D));
      ::new (mem) D(std::forward<F>(f));
      std::memcpy(buf_, &mem, sizeof(void*));
      invoke_ = &InvokeHeap<D>;
      drop_ = &DropHeap<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { StealFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      StealFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() {
    FAB_CHECK(invoke_ != nullptr) << "invoking an empty EventFn";
    invoke_(this);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  template <typename D>
  static void InvokeInline(EventFn* self) {
    (*std::launder(reinterpret_cast<D*>(self->buf_)))();
  }

  template <typename D>
  static void InvokeHeap(EventFn* self) {
    D* p = nullptr;
    std::memcpy(&p, self->buf_, sizeof(void*));
    (*p)();
  }

  template <typename D>
  static void DropHeap(EventFn* self) {
    D* p = nullptr;
    std::memcpy(&p, self->buf_, sizeof(void*));
    p->~D();
    internal::EventSlabPool::Free(p, sizeof(D));
  }

  void Reset() {
    if (drop_ != nullptr) {
      drop_(this);
    }
    invoke_ = nullptr;
    drop_ = nullptr;
  }

  void StealFrom(EventFn& other) noexcept {
    // Inline callables are trivially copyable by construction, heap ones are
    // just a pointer — a raw byte copy relocates either kind. The copy is a
    // fixed kInlineBytes regardless of the callable's real size; for small or
    // captureless callables the tail bytes are uninitialized and unused,
    // which GCC's -Wmaybe-uninitialized flags when it inlines deep enough.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
    std::memcpy(buf_, other.buf_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    invoke_ = other.invoke_;
    drop_ = other.drop_;
    other.invoke_ = nullptr;
    other.drop_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(EventFn*) = nullptr;
  void (*drop_)(EventFn*) = nullptr;
};

static_assert(sizeof(EventFn) == 48,
              "EventFn must stay 48 bytes so a queue Event (when + seq + fn) "
              "is exactly one 64-byte cache line");

}  // namespace fabacus

#endif  // SRC_SIM_EVENT_FN_H_
