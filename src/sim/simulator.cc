#include "src/sim/simulator.h"

#include "src/sim/log.h"

namespace fabacus {

void Simulator::ScheduleAt(Tick when, EventQueue::Callback fn) {
  FAB_CHECK_GE(when, now_) << "event scheduled in the past";
  queue_.Push(when, std::move(fn));
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  Tick when = 0;
  EventQueue::Callback fn = queue_.Pop(&when);
  FAB_CHECK_GE(when, now_);
  now_ = when;
  ++events_executed_;
  fn();
  return true;
}

Tick Simulator::Run() {
  while (!queue_.empty() && !queue_.OnlyDaemonsLeft()) {
    FAB_CHECK_LT(events_executed_, max_events_) << "event budget exhausted";
    Step();
  }
  return now_;
}

Tick Simulator::RunUntil(Tick deadline) {
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    FAB_CHECK_LT(events_executed_, max_events_) << "event budget exhausted";
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace fabacus
