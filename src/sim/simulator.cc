#include "src/sim/simulator.h"

#include <utility>

#include "src/sim/log.h"
#include "src/sim/pdes_engine.h"

namespace fabacus {

Simulator::Simulator(EventQueue::Backend backend) : queue_(backend) {}
Simulator::~Simulator() = default;

void Simulator::EnablePdes(const PdesConfig& cfg) {
  FAB_CHECK(!pdes_) << "PDES already enabled";
  FAB_CHECK(queue_.empty()) << "EnablePdes before scheduling anything";
  FAB_CHECK_EQ(now_, Tick{0}) << "EnablePdes on a fresh simulator";
  PdesEngine::Options opt;
  opt.shards = cfg.shards;
  opt.threads = cfg.threads;
  opt.lookahead = cfg.lookahead;
  opt.backend = queue_.backend();
  pdes_ = std::make_unique<PdesEngine>(opt);
  pdes_->set_max_events(max_events_);
}

Tick Simulator::PdesNow() const { return pdes_->Now(); }

void Simulator::PdesSchedule(Tick delay, EventQueue::Callback fn, bool daemon) {
  pdes_->Schedule(/*shard=*/-1, pdes_->Now() + delay, std::move(fn), daemon);
}

void Simulator::ScheduleAt(Tick when, EventQueue::Callback fn) {
  if (pdes_) {
    // The engine re-checks against the executing shard's clock.
    pdes_->Schedule(/*shard=*/-1, when, std::move(fn), /*daemon=*/false);
    return;
  }
  FAB_CHECK_GE(when, now_) << "event scheduled in the past";
  queue_.Push(when, std::move(fn));
}

void Simulator::NoteFlashCompletion(int channel, Tick done) {
  if (!pdes_ || channel < 0) {
    return;
  }
  const int dst = 1 + channel;  // shard 0 is the device; channels map to 1..N
  if (dst < pdes_->shards()) {
    pdes_->FlashRelay(dst, done);
  }
}

bool Simulator::Step() {
  FAB_CHECK(!pdes_) << "Step is sequential-only; PDES runs whole windows";
  if (queue_.empty()) {
    return false;
  }
  Tick when = 0;
  EventQueue::Callback fn = queue_.Pop(&when);
  FAB_CHECK_GE(when, now_);
  now_ = when;
  ++events_executed_;
  fn();
  return true;
}

Tick Simulator::Run() {
  if (pdes_) {
    return pdes_->Run();
  }
  while (!queue_.empty() && !queue_.OnlyDaemonsLeft()) {
    FAB_CHECK_LT(events_executed_, max_events_) << "event budget exhausted";
    Step();
  }
  return now_;
}

Tick Simulator::RunUntil(Tick deadline) {
  if (pdes_) {
    return pdes_->RunUntil(deadline);
  }
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    FAB_CHECK_LT(events_executed_, max_events_) << "event budget exhausted";
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

void Simulator::Halt() {
  if (pdes_) {
    pdes_->Clear();
    return;
  }
  queue_.Clear();
}

std::size_t Simulator::pending_events() const {
  return pdes_ ? pdes_->size() : queue_.size();
}

std::uint64_t Simulator::events_executed() const {
  return pdes_ ? pdes_->events_executed() : events_executed_;
}

void Simulator::set_max_events(std::uint64_t n) {
  max_events_ = n;
  if (pdes_) {
    pdes_->set_max_events(n);
  }
}

bool Simulator::OnlyDaemonsPending() const {
  return pdes_ ? pdes_->OnlyDaemonsLeft() : queue_.OnlyDaemonsLeft();
}

void Simulator::LoadState(StateReader& r) {
  now_ = r.U64();
  events_executed_ = r.U64();
  if (pdes_) {
    pdes_->RestoreClock(now_, events_executed_);
  }
}

}  // namespace fabacus
