// SweepRunner: a small thread pool for running independent simulations
// concurrently — the experiment layer's unit of parallelism.
//
// Each job is a self-contained closure that builds its own Simulator, device,
// RNG and metrics registry, runs to completion, and returns its result by
// value; nothing is shared across jobs, so the only synchronization is the
// work-stealing index. Results land in a vector indexed by submission order,
// which makes output ordering — and therefore every printed table and every
// exported JSON byte — independent of the thread count (the property
// tests/sweep_determinism_test.cc locks down).
//
// Thread count: explicit argument > FABACUS_SWEEP_THREADS > hardware
// concurrency. A single-thread pool runs jobs inline on the caller's thread
// (no spawn), which keeps gdb/perf sessions simple.
#ifndef SRC_SIM_SWEEP_RUNNER_H_
#define SRC_SIM_SWEEP_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/log.h"

namespace fabacus {

class SweepRunner {
 public:
  // threads <= 0 selects the default (env override, else hardware threads).
  explicit SweepRunner(int threads = 0)
      : threads_(threads > 0 ? threads : DefaultThreads()) {}

  // FABACUS_SWEEP_THREADS if set and positive, else hardware_concurrency.
  static int DefaultThreads();

  int threads() const { return threads_; }

  // Runs every job, at most `threads()` concurrently, and returns their
  // results in submission order regardless of completion order. R must be
  // default-constructible and movable. Jobs must not touch shared mutable
  // state (see file comment); a job that CHECK-fails aborts the process,
  // exactly as it would have serially.
  template <typename R>
  std::vector<R> Run(std::vector<std::function<R()>> jobs) const {
    std::vector<R> results(jobs.size());
    RunIndexed(jobs.size(), [&](std::size_t i) { results[i] = jobs[i](); });
    return results;
  }

  // Index-space variant: invokes fn(0..count-1) across the pool.
  void RunIndexed(std::size_t count, const std::function<void(std::size_t)>& fn) const {
    if (count == 0) {
      return;
    }
    const std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(threads_), count);
    if (workers <= 1) {
      for (std::size_t i = 0; i < count; ++i) {
        fn(i);
      }
      return;
    }
    std::atomic<std::size_t> next{0};
    auto drain = [&]() {
      for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        fn(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t) {
      pool.emplace_back(drain);
    }
    drain();  // the calling thread participates
    for (std::thread& t : pool) {
      t.join();
    }
  }

 private:
  int threads_;
};

}  // namespace fabacus

#endif  // SRC_SIM_SWEEP_RUNNER_H_
