#include "src/sim/sweep_runner.h"

#include <cstdlib>

namespace fabacus {

int SweepRunner::DefaultThreads() {
  if (const char* env = std::getenv("FABACUS_SWEEP_THREADS");
      env != nullptr && env[0] != '\0') {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace fabacus
