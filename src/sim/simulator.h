// The simulation kernel: owns the clock and the event queue, and runs events
// until the queue drains (or a time/event budget is hit).
//
// Two execution modes share one API:
//  - sequential (default): a single EventQueue popped in (when, seq) order;
//  - conservative PDES (EnablePdes): per-shard queues advanced in
//    lookahead-bounded windows by a PdesEngine (src/sim/pdes_engine.h),
//    byte-identical to sequential for shard-safe workloads — see
//    docs/PERFORMANCE.md, "Parallel DES".
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "src/sim/event_queue.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace fabacus {

class PdesEngine;

// Conservative-PDES knobs (see PdesEngine::Options for semantics). Shard 0
// hosts everything not explicitly relayed elsewhere; FlashAbacus maps flash
// channels onto shards 1..channels.
struct PdesConfig {
  int shards = 1;
  int threads = 1;
  Tick lookahead = 1;
};

class Simulator : public Snapshottable {
 public:
  // The queue backend is selectable so a whole run can be replayed on the
  // legacy heap engine and byte-compared against the calendar engine (see
  // src/sim/event_queue.h and tests/sweep_determinism_test.cc).
  explicit Simulator(EventQueue::Backend backend = EventQueue::Backend::kCalendar);
  ~Simulator();  // out-of-line (like the ctor): PdesEngine is incomplete here
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Switches this simulator to conservative-parallel execution. Must be
  // called before anything is scheduled (fresh simulator, clock at zero).
  // With cfg.threads == 1 the engine still shards but runs windows inline —
  // same results, no worker threads.
  void EnablePdes(const PdesConfig& cfg);
  bool pdes_enabled() const { return pdes_ != nullptr; }
  // The underlying engine (null in sequential mode) — bench/test hook.
  PdesEngine* pdes() { return pdes_.get(); }

  Tick Now() const {
    if (pdes_) {
      return PdesNow();
    }
    return now_;
  }

  // Schedules `fn` to run `delay` ns from now.
  void Schedule(Tick delay, EventQueue::Callback fn) {
    if (pdes_) {
      PdesSchedule(delay, std::move(fn), /*daemon=*/false);
      return;
    }
    queue_.Push(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `when` (must not be in the past).
  void ScheduleAt(Tick when, EventQueue::Callback fn);

  // Background housekeeping: fires like a normal event, but pending daemons
  // alone do not keep Run() alive (see EventQueue). Periodic services
  // (Storengine ticks) use this so the simulation drains naturally.
  void ScheduleDaemon(Tick delay, EventQueue::Callback fn) {
    if (pdes_) {
      PdesSchedule(delay, std::move(fn), /*daemon=*/true);
      return;
    }
    queue_.Push(now_ + delay, std::move(fn), /*daemon=*/true);
  }

  // In PDES mode: notes that a flash operation on `channel` completes at
  // absolute time `done`, letting the engine park the op's dead time on that
  // channel's shard. Inert bookkeeping — safe to call unconditionally; a
  // no-op in sequential mode or when `channel` has no shard.
  void NoteFlashCompletion(int channel, Tick done);

  // Runs until only daemon events (or nothing) remain. Returns the final time.
  Tick Run();

  // Runs until the queue is empty or the clock would pass `deadline`.
  // Events at exactly `deadline` still fire. Returns the final time.
  Tick RunUntil(Tick deadline);

  // Runs a single event if one is pending; returns false when idle.
  // Sequential mode only.
  bool Step();

  // Drops every pending event (daemons included) without running it. The
  // clock keeps its value. Models an abrupt power failure: whatever was in
  // flight simply never completes. Callers must Reset/rebuild any component
  // whose invariants depend on a scheduled continuation (queues, daemons).
  void Halt();

  std::size_t pending_events() const;
  std::uint64_t events_executed() const;

  // Safety valve: aborts the run loop after this many events (guards against
  // accidental event storms in tests). Default effectively unlimited.
  void set_max_events(std::uint64_t n);

  // True when only daemon events remain — the quiescence condition for
  // checkpointing. Event callbacks are closures and are never serialized;
  // snapshots happen at points where every pending event is an inert
  // housekeeping tick that re-arms from component state (docs/SNAPSHOT.md).
  bool OnlyDaemonsPending() const;

  // Snapshottable: the kernel's plain state (clock + event counter). The
  // queue itself is rebuilt empty on restore; both backends re-derive
  // identical ordering from the (when, seq) contract as events are re-pushed.
  // PDES runs save and load the same two words (unified clock, external
  // event count), so a snapshot taken under either mode resumes under either.
  std::string StateName() const override { return "sim"; }
  void SaveState(StateWriter& w) const override {
    w.U64(Now());
    w.U64(events_executed());
  }
  void LoadState(StateReader& r) override;

 private:
  Tick PdesNow() const;
  void PdesSchedule(Tick delay, EventQueue::Callback fn, bool daemon);

  EventQueue queue_;
  Tick now_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t max_events_ = std::numeric_limits<std::uint64_t>::max();
  std::unique_ptr<PdesEngine> pdes_;
};

}  // namespace fabacus

#endif  // SRC_SIM_SIMULATOR_H_
