// The simulation kernel: owns the clock and the event queue, and runs events
// until the queue drains (or a time/event budget is hit).
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "src/sim/event_queue.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace fabacus {

class Simulator : public Snapshottable {
 public:
  // The queue backend is selectable so a whole run can be replayed on the
  // legacy heap engine and byte-compared against the calendar engine (see
  // src/sim/event_queue.h and tests/sweep_determinism_test.cc).
  explicit Simulator(EventQueue::Backend backend = EventQueue::Backend::kCalendar)
      : queue_(backend) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick Now() const { return now_; }

  // Schedules `fn` to run `delay` ns from now.
  void Schedule(Tick delay, EventQueue::Callback fn) { queue_.Push(now_ + delay, std::move(fn)); }

  // Schedules `fn` at absolute time `when` (must not be in the past).
  void ScheduleAt(Tick when, EventQueue::Callback fn);

  // Background housekeeping: fires like a normal event, but pending daemons
  // alone do not keep Run() alive (see EventQueue). Periodic services
  // (Storengine ticks) use this so the simulation drains naturally.
  void ScheduleDaemon(Tick delay, EventQueue::Callback fn) {
    queue_.Push(now_ + delay, std::move(fn), /*daemon=*/true);
  }

  // Runs until only daemon events (or nothing) remain. Returns the final time.
  Tick Run();

  // Runs until the queue is empty or the clock would pass `deadline`.
  // Events at exactly `deadline` still fire. Returns the final time.
  Tick RunUntil(Tick deadline);

  // Runs a single event if one is pending; returns false when idle.
  bool Step();

  // Drops every pending event (daemons included) without running it. The
  // clock keeps its value. Models an abrupt power failure: whatever was in
  // flight simply never completes. Callers must Reset/rebuild any component
  // whose invariants depend on a scheduled continuation (queues, daemons).
  void Halt() { queue_.Clear(); }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

  // Safety valve: aborts the run loop after this many events (guards against
  // accidental event storms in tests). Default effectively unlimited.
  void set_max_events(std::uint64_t n) { max_events_ = n; }

  // True when only daemon events remain — the quiescence condition for
  // checkpointing. Event callbacks are closures and are never serialized;
  // snapshots happen at points where every pending event is an inert
  // housekeeping tick that re-arms from component state (docs/SNAPSHOT.md).
  bool OnlyDaemonsPending() const { return queue_.OnlyDaemonsLeft(); }

  // Snapshottable: the kernel's plain state (clock + event counter). The
  // queue itself is rebuilt empty on restore; both backends re-derive
  // identical ordering from the (when, seq) contract as events are re-pushed.
  std::string StateName() const override { return "sim"; }
  void SaveState(StateWriter& w) const override {
    w.U64(now_);
    w.U64(events_executed_);
  }
  void LoadState(StateReader& r) override {
    now_ = r.U64();
    events_executed_ = r.U64();
  }

 private:
  EventQueue queue_;
  Tick now_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t max_events_ = std::numeric_limits<std::uint64_t>::max();
};

}  // namespace fabacus

#endif  // SRC_SIM_SIMULATOR_H_
