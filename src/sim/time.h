// Simulation time. The simulator runs on a single monotonically increasing
// nanosecond clock; all component timing is expressed in Tick (ns).
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace fabacus {

using Tick = std::uint64_t;  // nanoseconds

inline constexpr Tick kNs = 1;
inline constexpr Tick kUs = 1000 * kNs;
inline constexpr Tick kMs = 1000 * kUs;
inline constexpr Tick kSec = 1000 * kMs;

// Converts a transfer of `bytes` at `gbps_bytes` GB/s into a duration.
// GB here means 1e9 bytes, matching datasheet bandwidth figures.
inline constexpr Tick BytesAtGBps(double bytes, double gb_per_s) {
  if (gb_per_s <= 0.0) {
    return 0;
  }
  const double ns = bytes / gb_per_s;  // bytes / (GB/s) = ns since 1 GB = 1e9 B
  return static_cast<Tick>(ns + 0.5);
}

inline constexpr double TicksToSeconds(Tick t) { return static_cast<double>(t) / 1e9; }
inline constexpr double TicksToUs(Tick t) { return static_cast<double>(t) / 1e3; }
inline constexpr double TicksToMs(Tick t) { return static_cast<double>(t) / 1e6; }

}  // namespace fabacus

#endif  // SRC_SIM_TIME_H_
