// Lightweight logging and invariant-checking facilities used across the
// FlashAbacus simulator. Modelled after the usual LOG/CHECK idiom: CHECK
// failures indicate a broken simulator invariant and abort the process.
#ifndef SRC_SIM_LOG_H_
#define SRC_SIM_LOG_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace fabacus {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum severity; messages below it are dropped. Default kWarning so
// tests and benches stay quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows a stream expression inside a ternary; `&` binds looser than `<<`,
// so the full message chain is built before being voided.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define FAB_LOG(severity)                                                       \
  (::fabacus::LogLevel::k##severity < ::fabacus::GetLogLevel())                 \
      ? (void)0                                                                 \
      : ::fabacus::internal::Voidify() &                                        \
            ::fabacus::internal::LogMessage(::fabacus::LogLevel::k##severity,   \
                                            __FILE__, __LINE__)                 \
                .stream()

#define FAB_CHECK(cond)                                                          \
  (cond) ? (void)0                                                              \
         : ::fabacus::internal::Voidify() &                                     \
               ::fabacus::internal::LogMessage(::fabacus::LogLevel::kFatal,     \
                                               __FILE__, __LINE__)              \
                       .stream()                                                \
                   << "CHECK failed: " #cond " "

#define FAB_CHECK_EQ(a, b) FAB_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define FAB_CHECK_NE(a, b) FAB_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define FAB_CHECK_LT(a, b) FAB_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define FAB_CHECK_LE(a, b) FAB_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define FAB_CHECK_GT(a, b) FAB_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define FAB_CHECK_GE(a, b) FAB_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace fabacus

#endif  // SRC_SIM_LOG_H_
