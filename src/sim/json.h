// Minimal JSON support for the observability layer:
//  * JsonWriter — a small streaming writer (automatic commas, string escaping,
//    finite-number formatting) used by RunReport, MetricsSnapshot and the
//    Chrome-trace exporter.
//  * JsonValue / ParseJson — a compact recursive-descent parser, enough to
//    round-trip everything the writer emits. Tests use it to assert that
//    exported reports and traces are well-formed and self-consistent.
// No external dependencies; numbers are doubles (as in JSON itself).
#ifndef SRC_SIM_JSON_H_
#define SRC_SIM_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fabacus {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Writes an object key; must be followed by a value or Begin*().
  JsonWriter& Key(const std::string& name);

  JsonWriter& Value(double v);
  JsonWriter& Value(std::uint64_t v);
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Null();

  // Convenience: Key(name) + Value(v).
  template <typename T>
  JsonWriter& Field(const std::string& name, T v) {
    Key(name);
    return Value(v);
  }

  // The document so far. Valid once every Begin has been matched by an End.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();
  void Raw(const std::string& s);

  enum class Scope { kObject, kArray };
  struct Frame {
    Scope scope;
    int emitted = 0;
    bool key_pending = false;
  };
  std::string out_;
  std::vector<Frame> stack_;
};

// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
void JsonEscape(const std::string& s, std::string* out);

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> array_v;
  // Insertion-ordered; lookup via Find().
  std::vector<std::pair<std::string, JsonValue>> object_v;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Find() + CHECK-style semantics for tests: returns a null value when
  // absent so chained reads do not crash.
  const JsonValue& operator[](const std::string& key) const;
};

// Parses `text` into `*out`. Returns false (and fills `*error` with a
// position-tagged message) on malformed input. Trailing whitespace is
// permitted; trailing garbage is not.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// --- Versioned documents ---------------------------------------------------
//
// Every JSON document the simulator emits — RunReport, FleetReport, BenchJson
// rows, the snapshot manifest — opens with the same "schema_version" field
// carrying this one number. Bump it when any of those layouts changes shape
// (adding fields is compatible and does not require a bump; renaming or
// removing does). Consumers (goldens, snapshot_ctl, external tooling) check
// this single version instead of per-document ad-hoc ones.
// v2: fleet reports moved latency/queue-depth aggregation onto bounded
// mergeable sketches (LogHistogram / BoundedTimeSeries) and added per-
// priority latency summaries; see docs/OBSERVABILITY.md "Streaming sketches".
// v3: RunReport gained the per-tenant QoS rows ("tenants") and the Jain's-
// index "fairness" object; see docs/QOS.md.
inline constexpr int kJsonSchemaVersion = 3;

// Recursively walks `before` vs. `after`, appending one
// "path: before -> after" line per leaf difference (object members compared
// by key, arrays element-wise plus a length line). At most `max_lines` lines
// are appended; the returned total difference count is not capped. This is
// the one diff used by the golden-report gate, fleet report comparisons and
// `snapshot_ctl diff`.
int JsonFieldDiff(const JsonValue& before, const JsonValue& after, const std::string& path,
                  std::vector<std::string>* lines, int max_lines = 40);

// Parses two documents and diffs them. Unparseable input counts as one
// difference with a diagnostic line.
int JsonFieldDiffText(const std::string& before, const std::string& after,
                      std::vector<std::string>* lines, int max_lines = 40);

}  // namespace fabacus

#endif  // SRC_SIM_JSON_H_
