#include "src/mem/scratchpad.h"

#include <cstring>

#include "src/sim/log.h"

namespace fabacus {

Scratchpad::Scratchpad(const ScratchpadConfig& config)
    : config_(config),
      port_("scratchpad", config.total_gb_per_s, config.access_latency),
      bytes_(config.capacity_bytes, 0) {}

Tick Scratchpad::Access(Tick now, double bytes) { return port_.Reserve(now, bytes).end; }

void Scratchpad::Store(std::uint64_t offset, const void* data, std::uint64_t len) {
  FAB_CHECK_LE(offset + len, bytes_.size()) << "scratchpad overflow";
  std::memcpy(bytes_.data() + offset, data, len);
}

void Scratchpad::Load(std::uint64_t offset, void* out, std::uint64_t len) const {
  FAB_CHECK_LE(offset + len, bytes_.size()) << "scratchpad overflow";
  std::memcpy(out, bytes_.data() + offset, len);
}

}  // namespace fabacus
