// Analytic L1/L2 cache traffic estimator for LWP screens.
//
// A full set-associative simulation per load/store would dominate runtime, so
// the LWP charges memory stalls from an analytic model: given the bytes a
// screen touches and its streaming reuse factor, the model estimates how much
// traffic spills past L1 (64 KB) and L2 (512 KB) into DDR3L. Working sets
// within a level are fully captured (hit rate ~1 after the cold pass);
// working sets past L2 stream at miss rate ~1.
#ifndef SRC_MEM_CACHE_MODEL_H_
#define SRC_MEM_CACHE_MODEL_H_

#include <cstdint>

namespace fabacus {

struct CacheConfig {
  std::uint64_t l1_bytes = 64 * 1024;
  std::uint64_t l2_bytes = 512 * 1024;
  double line_bytes = 64.0;
  // Fraction of cold-miss traffic that later accesses re-fetch when the
  // working set thrashes the level (conflict/capacity pessimism).
  double thrash_factor = 1.0;
};

struct CacheTraffic {
  double l1_to_l2_bytes = 0.0;   // traffic past L1
  double l2_to_dram_bytes = 0.0; // traffic past L2 (hits DDR3L)
};

class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config = CacheConfig{}) : config_(config) {}

  // `touched_bytes` — total bytes of loads+stores issued by the screen.
  // `window_bytes`  — the reuse window (tile): the live working set between
  //                   repeated touches of the same data. Windows inside a
  //                   cache level keep repeat traffic there.
  // `distinct_bytes`— distinct bytes the screen streams over; every distinct
  //                   byte crosses each level at least once (cold traffic).
  CacheTraffic Estimate(double touched_bytes, double window_bytes,
                        double distinct_bytes) const;

  const CacheConfig& config() const { return config_; }

 private:
  CacheConfig config_;
};

}  // namespace fabacus

#endif  // SRC_MEM_CACHE_MODEL_H_
