// DDR3L model. Table 1: 1 GB, 8 banks, 800 MHz, 6.4 GB/s aggregate, 0.7 W
// typical. Requests are striped over banks by address; each bank is a
// bandwidth-limited FCFS resource so concurrent kernels contend realistically.
#ifndef SRC_MEM_DRAM_H_
#define SRC_MEM_DRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/resource.h"
#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

struct DramConfig {
  std::string name = "ddr3l";
  std::uint64_t capacity_bytes = 1ULL << 30;  // 1 GB
  int banks = 8;
  double total_gb_per_s = 6.4;
  Tick access_latency = 60;  // ns, CAS + controller
};

class Dram : public Snapshottable {
 public:
  explicit Dram(const DramConfig& config);

  // Reserves bandwidth for `bytes` starting at address `addr` (bank selection
  // by address interleave). Returns the completion time.
  Tick Access(Tick now, std::uint64_t addr, double bytes);

  // Spreads a bulk transfer across all banks (DMA-style sequential access).
  Tick BulkAccess(Tick now, double bytes);

  const DramConfig& config() const { return config_; }
  double bytes_moved() const;
  std::uint64_t accesses() const { return accesses_.value(); }
  Tick BusyTime(Tick now) const;
  double Utilization(Tick now) const;

  // Registers access counter plus bytes/busy/utilization gauges under
  // `prefix` (e.g. "dram").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

  // Snapshottable: per-bank timing horizons + the access counter. DRAM
  // contents are scratch kernel working sets, not persistent state — only
  // the timing model is restored.
  std::string StateName() const override { return "dram"; }
  void SaveState(StateWriter& w) const override {
    w.U64(banks_.size());
    for (const auto& bank : banks_) {
      bank->SaveState(w);
    }
    accesses_.SaveState(w);
  }
  void LoadState(StateReader& r) override {
    const std::uint64_t n = r.U64();
    if (r.ok() && n != banks_.size()) {
      r.Fail("dram bank count mismatch");
      return;
    }
    for (auto& bank : banks_) {
      bank->LoadState(r);
    }
    accesses_.LoadState(r);
  }

 private:
  DramConfig config_;
  std::vector<std::unique_ptr<BandwidthResource>> banks_;
  std::uint64_t interleave_granule_ = 4096;
  Counter accesses_;
};

}  // namespace fabacus

#endif  // SRC_MEM_DRAM_H_
