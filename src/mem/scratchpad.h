// Scratchpad SRAM. Table 1: 4 MB over 8 banks at 500 MHz, 16 GB/s, serving
// administrative traffic (Flashvisor's mapping table, queue entries) "as fast
// as an L2 cache". It also owns the real bytes of the mapping-table region so
// Storengine snapshots copy genuine state.
#ifndef SRC_MEM_SCRATCHPAD_H_
#define SRC_MEM_SCRATCHPAD_H_

#include <cstdint>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/resource.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace fabacus {

struct ScratchpadConfig {
  std::uint64_t capacity_bytes = 4ULL << 20;  // 4 MB
  int banks = 8;
  double total_gb_per_s = 16.0;
  Tick access_latency = 4;  // ns (2 cycles @ 500 MHz)
};

class Scratchpad : public Snapshottable {
 public:
  explicit Scratchpad(const ScratchpadConfig& config);

  // Timing-only access (e.g., a mapping-table lookup touching `bytes`).
  Tick Access(Tick now, double bytes);

  // Byte-accurate storage for persistent structures hosted in scratchpad.
  void Store(std::uint64_t offset, const void* data, std::uint64_t len);
  void Load(std::uint64_t offset, void* out, std::uint64_t len) const;

  const ScratchpadConfig& config() const { return config_; }
  Tick BusyTime(Tick now) const { return port_.BusyTime(now); }
  double Utilization(Tick now) const { return port_.Utilization(now); }
  double bytes_moved() const { return port_.bytes_moved(); }

  // Registers access counter plus bytes/busy gauges under `prefix`
  // (e.g. "scratchpad").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
    reg->RegisterCounter(prefix + "/accesses", &port_.transfers_counter());
    reg->RegisterGauge(prefix + "/bytes_moved", [this](Tick) { return bytes_moved(); });
    reg->RegisterGauge(prefix + "/busy_ns",
                       [this](Tick now) { return static_cast<double>(BusyTime(now)); });
  }

  // Snapshottable: the port's timing state plus the full byte contents.
  std::string StateName() const override { return "scratchpad"; }
  void SaveState(StateWriter& w) const override {
    port_.SaveState(w);
    w.VecU8(bytes_);
  }
  void LoadState(StateReader& r) override {
    port_.LoadState(r);
    std::vector<std::uint8_t> bytes = r.VecU8();
    if (r.ok() && bytes.size() != bytes_.size()) {
      r.Fail("scratchpad capacity mismatch");
      return;
    }
    if (r.ok()) {
      bytes_ = std::move(bytes);
    }
  }

 private:
  ScratchpadConfig config_;
  BandwidthResource port_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace fabacus

#endif  // SRC_MEM_SCRATCHPAD_H_
