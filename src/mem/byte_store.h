// Sparse byte-addressed backing store. Used for the contents of flash pages
// and host SSD files: regions only consume host RAM once real data is written
// to them; unwritten regions read back as zero. This lets the simulator model
// multi-GB devices while tests still verify real data round-trips.
#ifndef SRC_MEM_BYTE_STORE_H_
#define SRC_MEM_BYTE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/log.h"

namespace fabacus {

class StateReader;
class StateWriter;

class ByteStore {
 public:
  explicit ByteStore(std::uint64_t chunk_size = 64 * 1024) : chunk_size_(chunk_size) {
    FAB_CHECK_GT(chunk_size_, 0u);
  }

  void Write(std::uint64_t offset, const void* data, std::uint64_t len);
  void Read(std::uint64_t offset, void* out, std::uint64_t len) const;

  // Zero-fills [offset, offset+len) and releases chunks fully covered.
  void Erase(std::uint64_t offset, std::uint64_t len);

  // Number of chunks with real data (for memory-footprint assertions).
  std::size_t allocated_chunks() const { return chunks_.size(); }
  std::uint64_t chunk_size() const { return chunk_size_; }

  // Checkpoint/restore: chunks are emitted in ascending index order so the
  // stream is deterministic regardless of hash-map iteration order.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  std::uint64_t chunk_size_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> chunks_;
};

}  // namespace fabacus

#endif  // SRC_MEM_BYTE_STORE_H_
