#include "src/mem/byte_store.h"

#include <algorithm>
#include <cstring>

#include "src/sim/snapshot.h"

namespace fabacus {

void ByteStore::Write(std::uint64_t offset, const void* data, std::uint64_t len) {
  const std::uint8_t* src = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const std::uint64_t chunk_idx = offset / chunk_size_;
    const std::uint64_t in_chunk = offset % chunk_size_;
    const std::uint64_t n = std::min<std::uint64_t>(len, chunk_size_ - in_chunk);
    std::vector<std::uint8_t>& chunk = chunks_[chunk_idx];
    if (chunk.empty()) {
      chunk.resize(chunk_size_, 0);
    }
    std::memcpy(chunk.data() + in_chunk, src, n);
    src += n;
    offset += n;
    len -= n;
  }
}

void ByteStore::Read(std::uint64_t offset, void* out, std::uint64_t len) const {
  std::uint8_t* dst = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    const std::uint64_t chunk_idx = offset / chunk_size_;
    const std::uint64_t in_chunk = offset % chunk_size_;
    const std::uint64_t n = std::min<std::uint64_t>(len, chunk_size_ - in_chunk);
    auto it = chunks_.find(chunk_idx);
    if (it == chunks_.end()) {
      std::memset(dst, 0, n);
    } else {
      std::memcpy(dst, it->second.data() + in_chunk, n);
    }
    dst += n;
    offset += n;
    len -= n;
  }
}

void ByteStore::Erase(std::uint64_t offset, std::uint64_t len) {
  while (len > 0) {
    const std::uint64_t chunk_idx = offset / chunk_size_;
    const std::uint64_t in_chunk = offset % chunk_size_;
    const std::uint64_t n = std::min<std::uint64_t>(len, chunk_size_ - in_chunk);
    if (in_chunk == 0 && n == chunk_size_) {
      chunks_.erase(chunk_idx);
    } else {
      auto it = chunks_.find(chunk_idx);
      if (it != chunks_.end()) {
        std::memset(it->second.data() + in_chunk, 0, n);
      }
    }
    offset += n;
    len -= n;
  }
}

void ByteStore::SaveState(StateWriter& w) const {
  w.U64(chunk_size_);
  std::vector<std::uint64_t> indices;
  indices.reserve(chunks_.size());
  for (const auto& [idx, chunk] : chunks_) {
    indices.push_back(idx);
  }
  std::sort(indices.begin(), indices.end());
  w.U64(indices.size());
  for (const std::uint64_t idx : indices) {
    w.U64(idx);
    w.VecU8(chunks_.at(idx));
  }
}

void ByteStore::LoadState(StateReader& r) {
  const std::uint64_t chunk_size = r.U64();
  if (r.ok() && chunk_size != chunk_size_) {
    r.Fail("ByteStore chunk size mismatch");
    return;
  }
  chunks_.clear();
  const std::uint64_t n = r.U64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::uint64_t idx = r.U64();
    std::vector<std::uint8_t> chunk = r.VecU8();
    if (r.ok() && chunk.size() != chunk_size_) {
      r.Fail("ByteStore chunk " + std::to_string(idx) + " has wrong size");
      return;
    }
    if (r.ok()) {
      chunks_[idx] = std::move(chunk);
    }
  }
}

}  // namespace fabacus
