#include "src/mem/dram.h"

#include <algorithm>

#include "src/sim/log.h"

namespace fabacus {

Dram::Dram(const DramConfig& config) : config_(config) {
  FAB_CHECK_GT(config_.banks, 0);
  const double per_bank = config_.total_gb_per_s / config_.banks;
  banks_.reserve(config_.banks);
  for (int b = 0; b < config_.banks; ++b) {
    banks_.push_back(std::make_unique<BandwidthResource>(
        config_.name + ".bank" + std::to_string(b), per_bank, config_.access_latency));
  }
}

Tick Dram::Access(Tick now, std::uint64_t addr, double bytes) {
  accesses_.Add();
  const std::size_t bank =
      static_cast<std::size_t>((addr / interleave_granule_) % banks_.size());
  return banks_[bank]->Reserve(now, bytes).end;
}

Tick Dram::BulkAccess(Tick now, double bytes) {
  accesses_.Add();
  const double per_bank = bytes / static_cast<double>(banks_.size());
  Tick end = now;
  for (auto& bank : banks_) {
    end = std::max(end, bank->Reserve(now, per_bank).end);
  }
  return end;
}

double Dram::bytes_moved() const {
  double total = 0.0;
  for (const auto& bank : banks_) {
    total += bank->bytes_moved();
  }
  return total;
}

Tick Dram::BusyTime(Tick now) const {
  Tick max_busy = 0;
  for (const auto& bank : banks_) {
    max_busy = std::max(max_busy, bank->BusyTime(now));
  }
  return max_busy;
}

double Dram::Utilization(Tick now) const {
  if (now == 0) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& bank : banks_) {
    sum += bank->Utilization(now);
  }
  return sum / static_cast<double>(banks_.size());
}

void Dram::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/accesses", &accesses_);
  reg->RegisterGauge(prefix + "/bytes_moved", [this](Tick) { return bytes_moved(); });
  reg->RegisterGauge(prefix + "/busy_ns",
                     [this](Tick now) { return static_cast<double>(BusyTime(now)); });
  reg->RegisterGauge(prefix + "/utilization",
                     [this](Tick now) { return Utilization(now); });
}

}  // namespace fabacus
