#include "src/mem/cache_model.h"

#include <algorithm>

namespace fabacus {
namespace {

// Fraction of repeat accesses that miss a level of capacity `cap` when the
// reuse window is `window` bytes, blending the "window fits" and "window
// streams" regimes.
double MissFraction(double window, double cap) {
  if (window <= 0.0) {
    return 0.0;
  }
  if (window <= cap) {
    return 0.0;  // the whole reuse window stays resident
  }
  return 1.0 - cap / window;
}

}  // namespace

CacheTraffic CacheModel::Estimate(double touched_bytes, double window_bytes,
                                  double distinct_bytes) const {
  CacheTraffic t;
  if (touched_bytes <= 0.0) {
    return t;
  }
  // Cold traffic: every distinct byte crosses each level once.
  const double cold = std::min(std::max(distinct_bytes, 0.0), touched_bytes);
  const double repeat = touched_bytes - cold;

  const double l1_miss = MissFraction(window_bytes, static_cast<double>(config_.l1_bytes));
  const double l2_miss = MissFraction(window_bytes, static_cast<double>(config_.l2_bytes));

  t.l1_to_l2_bytes = cold + repeat * l1_miss * config_.thrash_factor;
  t.l2_to_dram_bytes = cold + repeat * l1_miss * l2_miss * config_.thrash_factor;
  return t;
}

}  // namespace fabacus
