// The flash backbone: the self-existent backend storage complex (paper §2.2).
// Aggregates four FPGA channel controllers behind the SRIO/FMC link and
// exposes page-group granular operations to Flashvisor. Page-group contents
// are byte-accurate (backed by a sparse store), so the FTL above it can be
// validated end to end: data written must read back identically across GC,
// wear-levelling and journaling.
#ifndef SRC_FLASH_FLASH_BACKBONE_H_
#define SRC_FLASH_FLASH_BACKBONE_H_

#include <memory>
#include <vector>

#include <functional>

#include "src/flash/flash_controller.h"
#include "src/flash/nand_config.h"
#include "src/mem/byte_store.h"
#include "src/noc/srio_link.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

class FlashBackbone {
 public:
  struct OpResult {
    Tick done = 0;
    bool ecc_event = false;   // correctable-error threshold crossed (reads)
    bool became_bad = false;  // block retired (erases)
  };

  explicit FlashBackbone(const NandConfig& config, std::uint64_t seed = 1);

  // Reads physical page group `group`; if `out` is non-null it receives
  // GroupBytes() of data (data travels over SRIO to the compute complex).
  OpResult ReadGroup(Tick now, std::uint64_t group, void* out);

  // Programs physical page group `group` with `data` (nullable = timing-only,
  // contents become zero). Data first crosses SRIO into the controllers.
  OpResult ProgramGroup(Tick now, std::uint64_t group, const void* data);

  // Erases block group `block`: that block index on every package of every
  // channel (superblock erase).
  OpResult EraseBlockGroup(Tick now, int block);

  const NandConfig& config() const { return config_; }
  FlashController& controller(int ch) { return *controllers_[ch]; }
  const FlashController& controller(int ch) const { return *controllers_[ch]; }
  SrioLink& srio() { return srio_; }

  bool IsBadBlockGroup(int block) const;
  std::uint64_t MaxWear() const;
  std::uint64_t TotalErases() const;
  std::uint64_t reads() const { return reads_.value(); }
  std::uint64_t programs() const { return programs_.value(); }
  std::uint64_t erases() const { return erases_.value(); }
  // Read-retry passes triggered by correctable-error thresholds.
  std::uint64_t read_retries() const { return read_retries_.value(); }
  double bytes_read() const { return bytes_read_; }
  double bytes_programmed() const { return bytes_programmed_; }
  // Peak package utilization, a proxy for flash-array activity (energy model).
  Tick ArrayBusyTime(Tick now) const;

  // Observer invoked once per device operation with its (issue, completion)
  // interval — the energy model and Fig-15 traces are built from these.
  using OpObserver = std::function<void(Tick start, Tick end)>;
  void set_op_observer(OpObserver obs) { op_observer_ = std::move(obs); }

  // Installs a per-channel bus observer on every controller (see
  // FlashController::set_bus_observer).
  void set_bus_observer(FlashController::BusObserver obs);

  // Registers device-level op counters under `prefix` (e.g. "flash") plus
  // every controller's channel/package metrics ("flash/ch<k>/...").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

 private:
  NandConfig config_;
  std::vector<std::unique_ptr<FlashController>> controllers_;
  SrioLink srio_;
  ByteStore data_;
  Rng rng_;
  Counter reads_;
  Counter programs_;
  Counter erases_;
  Counter read_retries_;
  double bytes_read_ = 0.0;
  double bytes_programmed_ = 0.0;
  OpObserver op_observer_;
};

}  // namespace fabacus

#endif  // SRC_FLASH_FLASH_BACKBONE_H_
