// The flash backbone: the self-existent backend storage complex (paper §2.2).
// Aggregates four FPGA channel controllers behind the SRIO/FMC link and
// exposes page-group granular operations to Flashvisor. Page-group contents
// are byte-accurate (backed by a sparse store), so the FTL above it can be
// validated end to end: data written must read back identically across GC,
// wear-levelling, journaling — and now power loss: every program deposits a
// small out-of-band record ({owner tag, monotonic sequence}) alongside the
// data, which is all crash recovery has to rebuild the mapping table from.
#ifndef SRC_FLASH_FLASH_BACKBONE_H_
#define SRC_FLASH_FLASH_BACKBONE_H_

#include <memory>
#include <vector>

#include <functional>

#include "src/flash/fault_model.h"
#include "src/flash/flash_controller.h"
#include "src/flash/nand_config.h"
#include "src/mem/byte_store.h"
#include "src/noc/srio_link.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

// Reserved out-of-band tags. Values below kOobReservedFloor are logical page
// group numbers (data written on behalf of the mapping table).
inline constexpr std::uint32_t kOobUnwritten = 0xFFFFFFFFu;  // erased, never programmed
inline constexpr std::uint32_t kOobTorn = 0xFFFFFFFEu;       // program interrupted by power loss
inline constexpr std::uint32_t kOobJournal = 0xFFFFFFFDu;    // Storengine journal payload
inline constexpr std::uint32_t kOobFooter = 0xFFFFFFFCu;     // block-group seal footer
inline constexpr std::uint32_t kOobNone = 0xFFFFFFFBu;       // timing-only / untracked program
inline constexpr std::uint32_t kOobReservedFloor = kOobNone;

class FlashBackbone : public Snapshottable {
 public:
  struct OpResult {
    Tick done = 0;
    IoStatus status = IoStatus::kOk;
    int retry_rungs = 0;      // deepest read-retry rung walked by any channel
    bool ecc_event = false;   // correctable-error threshold crossed (reads)
    bool became_bad = false;  // block retired (erases)
    // Channel whose die finished last (the op's critical path; lowest index
    // on ties, -1 if unset). PDES shard affinity: the op's dead time is
    // parked on this channel's event shard (see Simulator::NoteFlashCompletion).
    int primary_channel = -1;
  };

  // Durable out-of-band record kept next to each physical page group.
  struct OobEntry {
    std::uint32_t tag = kOobUnwritten;
    std::uint64_t seq = 0;
  };

  explicit FlashBackbone(const NandConfig& config, std::uint64_t seed = 1);

  // Reads physical page group `group`; if `out` is non-null it receives
  // GroupBytes() of data (data travels over SRIO to the compute complex).
  // status: kDegraded when any channel walked retry rungs or detoured a dead
  // die; kUncorrectable when a slice exhausted the retry ladder.
  OpResult ReadGroup(Tick now, std::uint64_t group, void* out);

  // Programs physical page group `group` with `data` (nullable = timing-only,
  // contents become zero). Data first crosses SRIO into the controllers.
  // `oob_tag` is the logical group this program serves, or a kOob* constant;
  // it lands in the group's out-of-band record together with a monotonically
  // increasing sequence number. status: kProgramFailed when any die reported
  // a program-status fail (the caller must re-allocate; cells are suspect).
  OpResult ProgramGroup(Tick now, std::uint64_t group, const void* data,
                        std::uint32_t oob_tag = kOobNone);

  // Erases block group `block`: that block index on every package of every
  // channel (superblock erase). Clears the OOB records of every group inside.
  OpResult EraseBlockGroup(Tick now, int block);

  // Power loss at tick `now`: programs still in flight (completion after
  // `now`) are torn — their contents are dropped and their OOB records are
  // marked kOobTorn so recovery can tell "never written" from "half written".
  void PowerFail(Tick now);

  const NandConfig& config() const { return config_; }
  FlashController& controller(int ch) { return *controllers_[ch]; }
  const FlashController& controller(int ch) const { return *controllers_[ch]; }
  SrioLink& srio() { return srio_; }
  FaultModel& faults() { return faults_; }
  const FaultModel& faults() const { return faults_; }

  const OobEntry& Oob(std::uint64_t group) const { return oob_[group]; }
  std::uint64_t program_seq() const { return program_seq_; }

  bool IsBadBlockGroup(int block) const;
  std::uint64_t MaxWear() const;
  std::uint64_t TotalErases() const;
  // Max wear / accumulated correctable-read-error count of one block group
  // (feeds the patrol scrubber's victim policy). Error counts reset on erase.
  std::uint64_t BlockGroupWear(int block) const;
  std::uint64_t BlockGroupErrors(int block) const { return block_errors_[block]; }
  std::uint64_t reads() const { return reads_.value(); }
  std::uint64_t programs() const { return programs_.value(); }
  std::uint64_t erases() const { return erases_.value(); }
  // Read-retry passes triggered by correctable-error thresholds.
  std::uint64_t read_retries() const { return read_retries_.value(); }
  std::uint64_t uncorrectable_reads() const { return uncorrectable_reads_.value(); }
  std::uint64_t program_failures() const { return program_failures_.value(); }
  std::uint64_t erase_failures() const { return erase_failures_.value(); }
  std::uint64_t dead_die_reads() const { return dead_die_reads_.value(); }
  std::uint64_t dead_die_programs() const { return dead_die_programs_.value(); }
  std::uint64_t torn_groups() const { return torn_groups_.value(); }
  double bytes_read() const { return bytes_read_; }
  double bytes_programmed() const { return bytes_programmed_; }
  // Peak package utilization, a proxy for flash-array activity (energy model).
  Tick ArrayBusyTime(Tick now) const;

  // Observer invoked once per device operation with its (issue, completion)
  // interval — the energy model and Fig-15 traces are built from these.
  using OpObserver = std::function<void(Tick start, Tick end)>;
  void set_op_observer(OpObserver obs) { op_observer_ = std::move(obs); }

  // Installs a per-channel bus observer on every controller (see
  // FlashController::set_bus_observer).
  void set_bus_observer(FlashController::BusObserver obs);

  // Registers device-level op counters under `prefix` (e.g. "flash") plus
  // every controller's channel/package metrics ("flash/ch<k>/...").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

  // Snapshottable: page contents, OOB records, program sequence, error/op
  // accounting and the in-flight program horizon. The fault model and the
  // channel controllers are snapshotted as their own sections (they are
  // Snapshottable themselves), so this section carries only backbone-local
  // state.
  std::string StateName() const override { return "flash"; }
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  NandConfig config_;
  FaultModel faults_;  // before controllers_: they hold a pointer into it
  std::vector<std::unique_ptr<FlashController>> controllers_;
  SrioLink srio_;
  ByteStore data_;
  std::vector<OobEntry> oob_;               // one record per physical group
  std::uint64_t program_seq_ = 0;
  std::vector<std::uint64_t> block_errors_;  // per block group, reset on erase
  // Programs whose die completion lies in the future; PowerFail tears them.
  struct InflightProgram {
    std::uint64_t group;
    Tick done;
  };
  std::vector<InflightProgram> inflight_programs_;
  Counter reads_;
  Counter programs_;
  Counter erases_;
  Counter read_retries_;
  Counter uncorrectable_reads_;
  Counter program_failures_;
  Counter erase_failures_;
  Counter dead_die_reads_;
  Counter dead_die_programs_;
  Counter torn_groups_;
  std::vector<Counter> retry_rung_counts_;  // [rung-1] -> ops whose deepest rung was `rung`
  double bytes_read_ = 0.0;
  double bytes_programmed_ = 0.0;
  OpObserver op_observer_;
};

}  // namespace fabacus

#endif  // SRC_FLASH_FLASH_BACKBONE_H_
