#include "src/flash/flash_backbone.h"

#include <algorithm>
#include <cstring>

#include "src/sim/log.h"

namespace fabacus {

namespace {
// Folds the legacy backbone seed into the fault stream so two backbones built
// with different seeds draw different fault schedules even under one config.
FaultConfig SeededFaultConfig(const NandConfig& config, std::uint64_t seed) {
  FaultConfig fc = config.fault;
  fc.seed ^= seed * 0x9e3779b97f4a7c15ULL;
  return fc;
}
}  // namespace

FlashBackbone::FlashBackbone(const NandConfig& config, std::uint64_t seed)
    : config_(config),
      faults_(SeededFaultConfig(config, seed), config.channels, config.packages_per_channel,
              config.endurance_cycles, config.read_retry_ladder),
      srio_(SrioConfig{}),
      data_(config.GroupBytes()),
      oob_(config.TotalGroups()),
      block_errors_(config.blocks_per_plane, 0),
      retry_rung_counts_(config.read_retry_ladder) {
  controllers_.reserve(config_.channels);
  for (int ch = 0; ch < config_.channels; ++ch) {
    controllers_.push_back(std::make_unique<FlashController>(config_, ch, &faults_));
  }
}

FlashBackbone::OpResult FlashBackbone::ReadGroup(Tick now, std::uint64_t group, void* out) {
  FAB_CHECK_LT(group, config_.TotalGroups());
  const GroupAddress addr = DecodeGroup(config_, group);
  OpResult r;
  Tick slices_done = 0;
  bool any_dead = false;
  for (std::size_t ch = 0; ch < controllers_.size(); ++ch) {
    FlashController& ctrl = *controllers_[ch];
    const FlashController::ReadSliceResult s = ctrl.ReadSlice(now, addr);
    if (s.done > slices_done || r.primary_channel < 0) {
      r.primary_channel = static_cast<int>(ch);
    }
    slices_done = std::max(slices_done, s.done);
    r.retry_rungs = std::max(r.retry_rungs, s.rungs);
    if (s.uncorrectable) {
      r.status = WorseStatus(r.status, IoStatus::kUncorrectable);
    }
    any_dead = any_dead || s.dead_die;
  }
  if (r.retry_rungs > 0) {
    r.ecc_event = true;
    read_retries_.Add();
    retry_rung_counts_[r.retry_rungs - 1].Add();
    block_errors_[addr.block] += 1;
    r.status = WorseStatus(r.status, IoStatus::kDegraded);
  }
  if (any_dead) {
    dead_die_reads_.Add();
    r.status = WorseStatus(r.status, IoStatus::kDegraded);
  }
  if (r.status == IoStatus::kUncorrectable) {
    uncorrectable_reads_.Add();
  }
  r.done = srio_.Transfer(slices_done, static_cast<double>(config_.GroupBytes()));
  if (op_observer_) {
    op_observer_(now, r.done);
  }
  if (out != nullptr) {
    data_.Read(group * config_.GroupBytes(), out, config_.GroupBytes());
  }
  reads_.Add();
  bytes_read_ += static_cast<double>(config_.GroupBytes());
  return r;
}

FlashBackbone::OpResult FlashBackbone::ProgramGroup(Tick now, std::uint64_t group,
                                                    const void* data, std::uint32_t oob_tag) {
  FAB_CHECK_LT(group, config_.TotalGroups());
  const GroupAddress addr = DecodeGroup(config_, group);
  const Tick at_fmc = srio_.Transfer(now, static_cast<double>(config_.GroupBytes()));
  OpResult r;
  bool any_dead = false;
  bool failed = false;
  Tick done = 0;
  for (std::size_t ch = 0; ch < controllers_.size(); ++ch) {
    const FlashController::ProgramSliceResult s = controllers_[ch]->ProgramSlice(at_fmc, addr);
    if (s.done > done || r.primary_channel < 0) {
      r.primary_channel = static_cast<int>(ch);
    }
    done = std::max(done, s.done);
    failed = failed || s.failed;
    any_dead = any_dead || s.dead_die;
  }
  if (failed) {
    r.status = IoStatus::kProgramFailed;
    program_failures_.Add();
    // The page state is suspect: the caller re-programs elsewhere and retires
    // this block group. Contents stay zeroed so a stray read sees no data.
    data_.Erase(group * config_.GroupBytes(), config_.GroupBytes());
    oob_[group] = OobEntry{kOobNone, ++program_seq_};
  } else {
    if (data != nullptr) {
      data_.Write(group * config_.GroupBytes(), data, config_.GroupBytes());
    } else {
      data_.Erase(group * config_.GroupBytes(), config_.GroupBytes());
    }
    oob_[group] = OobEntry{oob_tag, ++program_seq_};
    // A program only becomes durable when every die reports completion;
    // power loss before `done` tears it (recovery must not trust the data).
    inflight_programs_.push_back(InflightProgram{group, done});
  }
  if (any_dead) {
    dead_die_programs_.Add();
    r.status = WorseStatus(r.status, IoStatus::kDegraded);
  }
  // Lazily prune completed entries so the in-flight list stays small.
  if (inflight_programs_.size() > 64) {
    inflight_programs_.erase(
        std::remove_if(inflight_programs_.begin(), inflight_programs_.end(),
                       [now](const InflightProgram& p) { return p.done <= now; }),
        inflight_programs_.end());
  }
  programs_.Add();
  bytes_programmed_ += static_cast<double>(config_.GroupBytes());
  if (op_observer_) {
    op_observer_(now, done);
  }
  r.done = done;
  return r;
}

FlashBackbone::OpResult FlashBackbone::EraseBlockGroup(Tick now, int block) {
  OpResult r;
  Tick done = 0;
  // One failure draw per superblock erase: a failed erase retires the whole
  // block group, so every die's block is fenced off together.
  const bool failed = faults_.EraseFails(BlockGroupWear(block));
  for (std::size_t ch = 0; ch < controllers_.size(); ++ch) {
    for (int pkg = 0; pkg < config_.packages_per_channel; ++pkg) {
      const FlashController::EraseSliceResult s =
          controllers_[ch]->EraseSlice(now, pkg, block, failed);
      if (s.done > done || r.primary_channel < 0) {
        r.primary_channel = static_cast<int>(ch);
      }
      done = std::max(done, s.done);
    }
  }
  // Drop the stored contents of every group in the superblock: all packages,
  // all pages at this block index.
  for (int pkg = 0; pkg < config_.packages_per_channel; ++pkg) {
    for (int page = 0; page < config_.pages_per_block; ++page) {
      const std::uint64_t g = EncodeGroup(config_, GroupAddress{pkg, block, page});
      data_.Erase(g * config_.GroupBytes(), config_.GroupBytes());
      oob_[g] = OobEntry{};
    }
  }
  block_errors_[block] = 0;
  erases_.Add();
  if (op_observer_) {
    op_observer_(now, done);
  }
  r.done = done;
  if (failed) {
    r.became_bad = true;
    erase_failures_.Add();
  }
  return r;
}

void FlashBackbone::PowerFail(Tick now) {
  for (const InflightProgram& p : inflight_programs_) {
    if (p.done > now) {
      data_.Erase(p.group * config_.GroupBytes(), config_.GroupBytes());
      oob_[p.group].tag = kOobTorn;  // keep the seq: recovery orders torn pages too
      torn_groups_.Add();
    }
  }
  inflight_programs_.clear();
}

bool FlashBackbone::IsBadBlockGroup(int block) const {
  for (const auto& ctrl : controllers_) {
    for (int pkg = 0; pkg < config_.packages_per_channel; ++pkg) {
      if (ctrl->package(pkg).IsBad(block)) {
        return true;
      }
    }
  }
  return false;
}

std::uint64_t FlashBackbone::MaxWear() const {
  std::uint64_t w = 0;
  for (const auto& ctrl : controllers_) {
    for (int p = 0; p < config_.packages_per_channel; ++p) {
      w = std::max(w, ctrl->package(p).max_wear());
    }
  }
  return w;
}

std::uint64_t FlashBackbone::TotalErases() const {
  std::uint64_t n = 0;
  for (const auto& ctrl : controllers_) {
    for (int p = 0; p < config_.packages_per_channel; ++p) {
      n += ctrl->package(p).total_erases();
    }
  }
  return n;
}

std::uint64_t FlashBackbone::BlockGroupWear(int block) const {
  std::uint64_t w = 0;
  for (const auto& ctrl : controllers_) {
    for (int p = 0; p < config_.packages_per_channel; ++p) {
      w = std::max(w, ctrl->package(p).wear(block));
    }
  }
  return w;
}

Tick FlashBackbone::ArrayBusyTime(Tick now) const {
  Tick busy = 0;
  for (const auto& ctrl : controllers_) {
    for (int p = 0; p < config_.packages_per_channel; ++p) {
      busy = std::max(busy, ctrl->package(p).BusyTime(now));
    }
  }
  return busy;
}

void FlashBackbone::set_bus_observer(FlashController::BusObserver obs) {
  for (auto& ctrl : controllers_) {
    ctrl->set_bus_observer(obs);
  }
}

void FlashBackbone::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/reads", &reads_);
  reg->RegisterCounter(prefix + "/programs", &programs_);
  reg->RegisterCounter(prefix + "/erases", &erases_);
  reg->RegisterCounter(prefix + "/read_retries", &read_retries_);
  reg->RegisterCounter(prefix + "/uncorrectable_reads", &uncorrectable_reads_);
  reg->RegisterCounter(prefix + "/program_failures", &program_failures_);
  reg->RegisterCounter(prefix + "/erase_failures", &erase_failures_);
  reg->RegisterCounter(prefix + "/dead_die_reads", &dead_die_reads_);
  reg->RegisterCounter(prefix + "/dead_die_programs", &dead_die_programs_);
  reg->RegisterCounter(prefix + "/torn_groups", &torn_groups_);
  for (std::size_t i = 0; i < retry_rung_counts_.size(); ++i) {
    reg->RegisterCounter(prefix + "/retry_rung" + std::to_string(i + 1),
                         &retry_rung_counts_[i]);
  }
  reg->RegisterGauge(prefix + "/dead_dies",
                     [this](Tick) { return static_cast<double>(faults_.dead_die_count()); });
  reg->RegisterGauge(prefix + "/bytes_read", [this](Tick) { return bytes_read_; });
  reg->RegisterGauge(prefix + "/bytes_programmed",
                     [this](Tick) { return bytes_programmed_; });
  for (std::size_t ch = 0; ch < controllers_.size(); ++ch) {
    controllers_[ch]->RegisterMetrics(reg, prefix + "/ch" + std::to_string(ch));
  }
}

void FlashBackbone::SaveState(StateWriter& w) const {
  srio_.SaveState(w);
  data_.SaveState(w);
  w.U64(oob_.size());
  for (const OobEntry& e : oob_) {
    w.U32(e.tag);
    w.U64(e.seq);
  }
  w.U64(program_seq_);
  w.VecU64(block_errors_);
  w.U64(inflight_programs_.size());
  for (const InflightProgram& p : inflight_programs_) {
    w.U64(p.group);
    w.U64(p.done);
  }
  reads_.SaveState(w);
  programs_.SaveState(w);
  erases_.SaveState(w);
  read_retries_.SaveState(w);
  uncorrectable_reads_.SaveState(w);
  program_failures_.SaveState(w);
  erase_failures_.SaveState(w);
  dead_die_reads_.SaveState(w);
  dead_die_programs_.SaveState(w);
  torn_groups_.SaveState(w);
  w.U64(retry_rung_counts_.size());
  for (const Counter& c : retry_rung_counts_) {
    c.SaveState(w);
  }
  w.F64(bytes_read_);
  w.F64(bytes_programmed_);
}

void FlashBackbone::LoadState(StateReader& r) {
  srio_.LoadState(r);
  data_.LoadState(r);
  const std::uint64_t oob_count = r.U64();
  if (r.ok() && oob_count != oob_.size()) {
    r.Fail("OOB record count mismatch");
    return;
  }
  for (OobEntry& e : oob_) {
    e.tag = r.U32();
    e.seq = r.U64();
  }
  program_seq_ = r.U64();
  std::vector<std::uint64_t> block_errors = r.VecU64();
  if (r.ok() && block_errors.size() != block_errors_.size()) {
    r.Fail("block error count mismatch");
    return;
  }
  if (r.ok()) {
    block_errors_ = std::move(block_errors);
  }
  const std::uint64_t inflight = r.U64();
  if (r.ok() && inflight > oob_.size()) {
    r.Fail("corrupt in-flight program count");
    return;
  }
  inflight_programs_.clear();
  for (std::uint64_t i = 0; i < inflight && r.ok(); ++i) {
    InflightProgram p;
    p.group = r.U64();
    p.done = r.U64();
    inflight_programs_.push_back(p);
  }
  reads_.LoadState(r);
  programs_.LoadState(r);
  erases_.LoadState(r);
  read_retries_.LoadState(r);
  uncorrectable_reads_.LoadState(r);
  program_failures_.LoadState(r);
  erase_failures_.LoadState(r);
  dead_die_reads_.LoadState(r);
  dead_die_programs_.LoadState(r);
  torn_groups_.LoadState(r);
  const std::uint64_t rungs = r.U64();
  if (r.ok() && rungs != retry_rung_counts_.size()) {
    r.Fail("retry ladder depth mismatch");
    return;
  }
  for (Counter& c : retry_rung_counts_) {
    c.LoadState(r);
  }
  bytes_read_ = r.F64();
  bytes_programmed_ = r.F64();
}

}  // namespace fabacus
