#include "src/flash/flash_backbone.h"

#include <algorithm>
#include <cstring>

#include "src/sim/log.h"

namespace fabacus {

FlashBackbone::FlashBackbone(const NandConfig& config, std::uint64_t seed)
    : config_(config), srio_(SrioConfig{}), data_(config.GroupBytes()), rng_(seed) {
  controllers_.reserve(config_.channels);
  for (int ch = 0; ch < config_.channels; ++ch) {
    controllers_.push_back(std::make_unique<FlashController>(config_, ch));
  }
}

FlashBackbone::OpResult FlashBackbone::ReadGroup(Tick now, std::uint64_t group, void* out) {
  FAB_CHECK_LT(group, config_.TotalGroups());
  const GroupAddress addr = DecodeGroup(config_, group);
  Tick slices_done = 0;
  for (auto& ctrl : controllers_) {
    slices_done = std::max(slices_done, ctrl->ReadSlice(now, addr));
  }
  OpResult r;
  if (config_.read_error_rate > 0.0 && rng_.NextDouble() < config_.read_error_rate) {
    // Correctable-error threshold crossed: the controller re-reads the page
    // with tuned read-reference voltages (read retry) before returning data.
    r.ecc_event = true;
    read_retries_.Add();
    for (auto& ctrl : controllers_) {
      slices_done = std::max(slices_done, ctrl->ReadSlice(slices_done, addr));
    }
  }
  r.done = srio_.Transfer(slices_done, static_cast<double>(config_.GroupBytes()));
  if (op_observer_) {
    op_observer_(now, r.done);
  }
  if (out != nullptr) {
    data_.Read(group * config_.GroupBytes(), out, config_.GroupBytes());
  }
  reads_.Add();
  bytes_read_ += static_cast<double>(config_.GroupBytes());
  return r;
}

FlashBackbone::OpResult FlashBackbone::ProgramGroup(Tick now, std::uint64_t group,
                                                    const void* data) {
  FAB_CHECK_LT(group, config_.TotalGroups());
  const GroupAddress addr = DecodeGroup(config_, group);
  const Tick at_fmc = srio_.Transfer(now, static_cast<double>(config_.GroupBytes()));
  Tick done = 0;
  for (auto& ctrl : controllers_) {
    done = std::max(done, ctrl->ProgramSlice(at_fmc, addr));
  }
  if (data != nullptr) {
    data_.Write(group * config_.GroupBytes(), data, config_.GroupBytes());
  } else {
    data_.Erase(group * config_.GroupBytes(), config_.GroupBytes());
  }
  programs_.Add();
  bytes_programmed_ += static_cast<double>(config_.GroupBytes());
  if (op_observer_) {
    op_observer_(now, done);
  }
  OpResult r;
  r.done = done;
  return r;
}

FlashBackbone::OpResult FlashBackbone::EraseBlockGroup(Tick now, int block) {
  Tick done = 0;
  for (auto& ctrl : controllers_) {
    for (int pkg = 0; pkg < config_.packages_per_channel; ++pkg) {
      done = std::max(done, ctrl->EraseSlice(now, pkg, block));
    }
  }
  // Drop the stored contents of every group in the superblock: all packages,
  // all pages at this block index.
  for (int pkg = 0; pkg < config_.packages_per_channel; ++pkg) {
    for (int page = 0; page < config_.pages_per_block; ++page) {
      const std::uint64_t g = EncodeGroup(config_, GroupAddress{pkg, block, page});
      data_.Erase(g * config_.GroupBytes(), config_.GroupBytes());
    }
  }
  erases_.Add();
  if (op_observer_) {
    op_observer_(now, done);
  }
  OpResult r;
  r.done = done;
  if (config_.erase_failure_rate > 0.0 && rng_.NextDouble() < config_.erase_failure_rate) {
    for (auto& ctrl : controllers_) {
      for (int pkg = 0; pkg < config_.packages_per_channel; ++pkg) {
        ctrl->package(pkg).MarkBad(block);
      }
    }
    r.became_bad = true;
  }
  return r;
}

bool FlashBackbone::IsBadBlockGroup(int block) const {
  for (const auto& ctrl : controllers_) {
    for (int pkg = 0; pkg < config_.packages_per_channel; ++pkg) {
      if (ctrl->package(pkg).IsBad(block)) {
        return true;
      }
    }
  }
  return false;
}

std::uint64_t FlashBackbone::MaxWear() const {
  std::uint64_t w = 0;
  for (const auto& ctrl : controllers_) {
    for (int p = 0; p < config_.packages_per_channel; ++p) {
      w = std::max(w, ctrl->package(p).max_wear());
    }
  }
  return w;
}

std::uint64_t FlashBackbone::TotalErases() const {
  std::uint64_t n = 0;
  for (const auto& ctrl : controllers_) {
    for (int p = 0; p < config_.packages_per_channel; ++p) {
      n += ctrl->package(p).total_erases();
    }
  }
  return n;
}

Tick FlashBackbone::ArrayBusyTime(Tick now) const {
  Tick busy = 0;
  for (const auto& ctrl : controllers_) {
    for (int p = 0; p < config_.packages_per_channel; ++p) {
      busy = std::max(busy, ctrl->package(p).BusyTime(now));
    }
  }
  return busy;
}

void FlashBackbone::set_bus_observer(FlashController::BusObserver obs) {
  for (auto& ctrl : controllers_) {
    ctrl->set_bus_observer(obs);
  }
}

void FlashBackbone::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/reads", &reads_);
  reg->RegisterCounter(prefix + "/programs", &programs_);
  reg->RegisterCounter(prefix + "/erases", &erases_);
  reg->RegisterCounter(prefix + "/read_retries", &read_retries_);
  reg->RegisterGauge(prefix + "/bytes_read", [this](Tick) { return bytes_read_; });
  reg->RegisterGauge(prefix + "/bytes_programmed",
                     [this](Tick) { return bytes_programmed_; });
  for (std::size_t ch = 0; ch < controllers_.size(); ++ch) {
    controllers_[ch]->RegisterMetrics(reg, prefix + "/ch" + std::to_string(ch));
  }
}

}  // namespace fabacus
