// Flash backbone geometry and timing (paper §2.2, Table 1).
//
// 4 NV-DDR2 channels, 4 TLC packages per channel, 2 planes per package,
// 8 KB pages, 32 GB total, page read 81 us, page program 2.6 ms. A *page
// group* — Flashvisor's mapping unit — stripes one page per plane across all
// channels at the same (package, block, page) coordinate:
//   64 KB = 4 channels x 2 planes x 8 KB          (paper §4.3)
// which makes the full mapping table 32 GB / 64 KB * 4 B = 2 MB, exactly the
// scratchpad budget the paper quotes.
#ifndef SRC_FLASH_NAND_CONFIG_H_
#define SRC_FLASH_NAND_CONFIG_H_

#include <cstdint>

#include "src/flash/fault_model.h"
#include "src/sim/time.h"

namespace fabacus {

struct NandConfig {
  int channels = 4;
  int packages_per_channel = 4;
  int planes_per_package = 2;
  int blocks_per_plane = 512;
  int pages_per_block = 256;
  std::uint64_t page_bytes = 8 * 1024;

  Tick read_latency = 81 * kUs;       // tR, multi-plane
  Tick program_latency = 2600 * kUs;  // tPROG, TLC
  Tick erase_latency = 6 * kMs;       // tBERS
  double channel_gb_per_s = 0.8;      // NV-DDR2 @ 200 MHz DDR
  Tick channel_cmd_overhead = 1 * kUs;

  int controller_tag_queue_depth = 8;  // in-flight ops per FPGA controller

  // Reliability model (see src/flash/fault_model.h and docs/RELIABILITY.md).
  FaultConfig fault;
  std::uint64_t endurance_cycles = 3000;  // TLC rated program/erase cycles
  // ONFi-style read-retry ladder: up to `read_retry_ladder` re-reads with
  // shifted reference voltages; rung k adds k * read_retry_step of sensing
  // setup on top of the full tR re-read.
  int read_retry_ladder = 5;
  Tick read_retry_step = 20 * kUs;

  // Derived quantities -------------------------------------------------------
  std::uint64_t GroupBytes() const {
    return static_cast<std::uint64_t>(channels) * planes_per_package * page_bytes;
  }
  // Group slots per package: one slot = one page on each plane.
  std::uint64_t GroupsPerPackage() const {
    return static_cast<std::uint64_t>(blocks_per_plane) * pages_per_block;
  }
  // Total page groups in the backbone.
  std::uint64_t TotalGroups() const { return GroupsPerPackage() * packages_per_channel; }
  std::uint64_t TotalBytes() const { return TotalGroups() * GroupBytes(); }
  // Block groups ("superblocks", the GC/erase unit): one block index across
  // every package of every channel. Slots within a block group stride the
  // packages so a sequential write point pipelines die programs.
  std::uint64_t TotalBlockGroups() const { return blocks_per_plane; }
  std::uint64_t GroupsPerBlockGroup() const {
    return static_cast<std::uint64_t>(pages_per_block) * packages_per_channel;
  }
  std::uint64_t BlockGroupBytes() const { return GroupsPerBlockGroup() * GroupBytes(); }
  int total_dies() const { return channels * packages_per_channel; }
  // Conservative-PDES lookahead (docs/PERFORMANCE.md): no flash operation
  // completes in less than the fastest ONFi op, so a per-channel shard never
  // needs to hear from a neighbor sooner than this. tR (81 us default) is
  // the floor; cmd/bus overheads ride on top of it, never alone.
  Tick OnfiLookahead() const {
    Tick m = read_latency < program_latency ? read_latency : program_latency;
    return m < erase_latency ? m : erase_latency;
  }
};

// Physical coordinate of one page-group slot.
struct GroupAddress {
  int package;  // package index within each channel (0..packages_per_channel)
  int block;    // block index within each plane
  int page;     // page index within the block
};

// Consecutive flat group indices interleave across the packages of each
// channel so sequential streams pipeline die operations behind the channel
// bus (this is what sustains Table 1's 3.2 GB/s estimate; without it a
// sequential read serializes on one die's tR).
inline GroupAddress DecodeGroup(const NandConfig& cfg, std::uint64_t group) {
  GroupAddress a;
  a.package = static_cast<int>(group % cfg.packages_per_channel);
  const std::uint64_t rem = group / cfg.packages_per_channel;
  a.block = static_cast<int>(rem / cfg.pages_per_block);
  a.page = static_cast<int>(rem % cfg.pages_per_block);
  return a;
}

inline std::uint64_t EncodeGroup(const NandConfig& cfg, const GroupAddress& a) {
  return (static_cast<std::uint64_t>(a.block) * cfg.pages_per_block +
          static_cast<std::uint64_t>(a.page)) *
             cfg.packages_per_channel +
         static_cast<std::uint64_t>(a.package);
}

}  // namespace fabacus

#endif  // SRC_FLASH_NAND_CONFIG_H_
