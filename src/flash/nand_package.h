// One NAND package (2 planes). Tracks per-block erase/program state so the
// simulator can enforce real NAND discipline: pages must be programmed in
// order within an erased block, and never re-programmed without an erase.
// Timing is a single busy-until horizon per package (multi-plane ops occupy
// both planes simultaneously, as on real parts).
#ifndef SRC_FLASH_NAND_PACKAGE_H_
#define SRC_FLASH_NAND_PACKAGE_H_

#include <cstdint>
#include <vector>

#include "src/flash/nand_config.h"
#include "src/sim/metrics.h"
#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

class NandPackage : public Snapshottable {
 public:
  NandPackage(const NandConfig& config, int channel, int index);

  // Multi-plane page read: both planes at (block, page). Returns completion.
  Tick ReadPages(Tick now, int block, int page);
  // Multi-plane page program. CHECKs NAND discipline (erased, in-order).
  Tick ProgramPages(Tick now, int block, int page);
  // Block erase (both planes). Returns completion; bumps wear.
  Tick EraseBlock(Tick now, int block);

  bool IsErased(int block, int page) const;
  bool IsProgrammed(int block, int page) const;
  std::uint64_t wear(int block) const { return wear_[block]; }
  std::uint64_t max_wear() const;
  std::uint64_t total_erases() const { return total_erases_.value(); }
  std::uint64_t total_reads() const { return reads_.value(); }
  std::uint64_t total_programs() const { return programs_.value(); }
  bool IsBad(int block) const { return bad_[block]; }
  void MarkBad(int block) { bad_[block] = true; }

  Tick busy_until() const { return busy_until_; }
  Tick BusyTime(Tick now) const { return busy_.BusyTime(now); }
  double Utilization(Tick now) const { return busy_.Utilization(now); }
  int channel() const { return channel_; }
  int index() const { return index_; }

  // Registers read/program/erase counters and a busy-time gauge under
  // `prefix` (e.g. "flash/ch0/pkg1").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

  // Snapshottable: per-block wear/bad/write-point state plus the timing
  // horizon — the on-die truth that makes long-horizon aging studies
  // resumable.
  std::string StateName() const override;
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  Tick Occupy(Tick now, Tick duration);

  const NandConfig& config_;
  int channel_;
  int index_;
  Tick busy_until_ = 0;
  BusyTracker busy_;
  // Per block: index of the next page expected to be programmed (0 right
  // after erase; pages_per_block when full). kNeverErased before first erase.
  std::vector<std::int32_t> write_point_;
  std::vector<std::uint64_t> wear_;
  std::vector<bool> bad_;
  Counter reads_;
  Counter programs_;
  Counter total_erases_;

  static constexpr std::int32_t kNeverErased = -1;
};

}  // namespace fabacus

#endif  // SRC_FLASH_NAND_PACKAGE_H_
