#include "src/flash/nand_package.h"

#include <algorithm>

#include "src/sim/log.h"

namespace fabacus {

NandPackage::NandPackage(const NandConfig& config, int channel, int index)
    : config_(config),
      channel_(channel),
      index_(index),
      // Fresh parts ship erased: accept programs from page 0.
      write_point_(config.blocks_per_plane, 0),
      wear_(config.blocks_per_plane, 0),
      bad_(config.blocks_per_plane, false) {}

Tick NandPackage::Occupy(Tick now, Tick duration) {
  const Tick start = std::max(now, busy_until_);
  busy_until_ = start + duration;
  busy_.AddInterval(start, busy_until_);
  return busy_until_;
}

Tick NandPackage::ReadPages(Tick now, int block, int page) {
  FAB_CHECK_GE(block, 0);
  FAB_CHECK_LT(block, config_.blocks_per_plane);
  FAB_CHECK_GE(page, 0);
  FAB_CHECK_LT(page, config_.pages_per_block);
  reads_.Add();
  return Occupy(now, config_.read_latency);
}

Tick NandPackage::ProgramPages(Tick now, int block, int page) {
  FAB_CHECK_GE(block, 0);
  FAB_CHECK_LT(block, config_.blocks_per_plane);
  FAB_CHECK(!bad_[block]) << "program to bad block " << block;
  FAB_CHECK_NE(write_point_[block], kNeverErased) << "program to un-erased block " << block;
  FAB_CHECK_EQ(page, write_point_[block])
      << "out-of-order program in block " << block << " (pkg " << index_ << ")";
  FAB_CHECK_LT(page, config_.pages_per_block) << "program past end of block " << block;
  ++write_point_[block];
  programs_.Add();
  return Occupy(now, config_.program_latency);
}

Tick NandPackage::EraseBlock(Tick now, int block) {
  FAB_CHECK_GE(block, 0);
  FAB_CHECK_LT(block, config_.blocks_per_plane);
  FAB_CHECK(!bad_[block]) << "erase of bad block " << block;
  write_point_[block] = 0;
  ++wear_[block];
  total_erases_.Add();
  return Occupy(now, config_.erase_latency);
}

bool NandPackage::IsErased(int block, int page) const {
  return write_point_[block] != kNeverErased && page >= write_point_[block];
}

bool NandPackage::IsProgrammed(int block, int page) const {
  return write_point_[block] != kNeverErased && page < write_point_[block];
}

std::uint64_t NandPackage::max_wear() const {
  return *std::max_element(wear_.begin(), wear_.end());
}

void NandPackage::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/reads", &reads_);
  reg->RegisterCounter(prefix + "/programs", &programs_);
  reg->RegisterCounter(prefix + "/erases", &total_erases_);
  reg->RegisterGauge(prefix + "/busy_ns",
                     [this](Tick now) { return static_cast<double>(BusyTime(now)); });
}

}  // namespace fabacus
