#include "src/flash/nand_package.h"

#include <algorithm>

#include "src/sim/log.h"

namespace fabacus {

NandPackage::NandPackage(const NandConfig& config, int channel, int index)
    : config_(config),
      channel_(channel),
      index_(index),
      // Fresh parts ship erased: accept programs from page 0.
      write_point_(config.blocks_per_plane, 0),
      wear_(config.blocks_per_plane, 0),
      bad_(config.blocks_per_plane, false) {}

Tick NandPackage::Occupy(Tick now, Tick duration) {
  const Tick start = std::max(now, busy_until_);
  busy_until_ = start + duration;
  busy_.AddInterval(start, busy_until_);
  return busy_until_;
}

Tick NandPackage::ReadPages(Tick now, int block, int page) {
  FAB_CHECK_GE(block, 0);
  FAB_CHECK_LT(block, config_.blocks_per_plane);
  FAB_CHECK_GE(page, 0);
  FAB_CHECK_LT(page, config_.pages_per_block);
  reads_.Add();
  return Occupy(now, config_.read_latency);
}

Tick NandPackage::ProgramPages(Tick now, int block, int page) {
  FAB_CHECK_GE(block, 0);
  FAB_CHECK_LT(block, config_.blocks_per_plane);
  FAB_CHECK(!bad_[block]) << "program to bad block " << block;
  FAB_CHECK_NE(write_point_[block], kNeverErased) << "program to un-erased block " << block;
  FAB_CHECK_EQ(page, write_point_[block])
      << "out-of-order program in block " << block << " (pkg " << index_ << ")";
  FAB_CHECK_LT(page, config_.pages_per_block) << "program past end of block " << block;
  ++write_point_[block];
  programs_.Add();
  return Occupy(now, config_.program_latency);
}

Tick NandPackage::EraseBlock(Tick now, int block) {
  FAB_CHECK_GE(block, 0);
  FAB_CHECK_LT(block, config_.blocks_per_plane);
  FAB_CHECK(!bad_[block]) << "erase of bad block " << block;
  write_point_[block] = 0;
  ++wear_[block];
  total_erases_.Add();
  return Occupy(now, config_.erase_latency);
}

bool NandPackage::IsErased(int block, int page) const {
  return write_point_[block] != kNeverErased && page >= write_point_[block];
}

bool NandPackage::IsProgrammed(int block, int page) const {
  return write_point_[block] != kNeverErased && page < write_point_[block];
}

std::uint64_t NandPackage::max_wear() const {
  return *std::max_element(wear_.begin(), wear_.end());
}

void NandPackage::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/reads", &reads_);
  reg->RegisterCounter(prefix + "/programs", &programs_);
  reg->RegisterCounter(prefix + "/erases", &total_erases_);
  reg->RegisterGauge(prefix + "/busy_ns",
                     [this](Tick now) { return static_cast<double>(BusyTime(now)); });
}

std::string NandPackage::StateName() const {
  return "nand/ch" + std::to_string(channel_) + "/pkg" + std::to_string(index_);
}

void NandPackage::SaveState(StateWriter& w) const {
  w.U64(busy_until_);
  busy_.SaveState(w);
  w.VecI32(write_point_);
  w.VecU64(wear_);
  std::vector<std::uint8_t> bad(bad_.size());
  for (std::size_t i = 0; i < bad_.size(); ++i) {
    bad[i] = bad_[i] ? 1 : 0;
  }
  w.VecU8(bad);
  reads_.SaveState(w);
  programs_.SaveState(w);
  total_erases_.SaveState(w);
}

void NandPackage::LoadState(StateReader& r) {
  busy_until_ = r.U64();
  busy_.LoadState(r);
  std::vector<std::int32_t> write_point = r.VecI32();
  std::vector<std::uint64_t> wear = r.VecU64();
  std::vector<std::uint8_t> bad = r.VecU8();
  if (!r.ok()) {
    return;
  }
  if (write_point.size() != write_point_.size() || wear.size() != wear_.size() ||
      bad.size() != bad_.size()) {
    r.Fail("NAND package geometry mismatch");
    return;
  }
  write_point_ = std::move(write_point);
  wear_ = std::move(wear);
  for (std::size_t i = 0; i < bad.size(); ++i) {
    bad_[i] = bad[i] != 0;
  }
  reads_.LoadState(r);
  programs_.LoadState(r);
  total_erases_.LoadState(r);
}

}  // namespace fabacus
