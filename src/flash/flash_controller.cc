#include "src/flash/flash_controller.h"

#include <algorithm>
#include <string>

#include "src/sim/log.h"

namespace fabacus {

TagQueue::TagQueue(int depth) : depth_(depth) { FAB_CHECK_GT(depth, 0); }

Tick TagQueue::Acquire(Tick now) {
  acquires_.Add();
  if (static_cast<int>(inflight_.size()) < depth_) {
    return now;
  }
  const Tick earliest = inflight_.top();
  inflight_.pop();
  if (earliest > now) {
    wait_ns_.Add(earliest - now);
  }
  return std::max(now, earliest);
}

void TagQueue::Release(Tick completion) {
  FAB_CHECK_LT(static_cast<int>(inflight_.size()), depth_);
  inflight_.push(completion);
}

FlashController::FlashController(const NandConfig& config, int channel, FaultModel* faults)
    : config_(config),
      channel_(channel),
      faults_(faults),
      bus_("flash.ch" + std::to_string(channel), config.channel_gb_per_s,
           config.channel_cmd_overhead),
      tags_(config.controller_tag_queue_depth) {
  packages_.reserve(config.packages_per_channel);
  for (int p = 0; p < config.packages_per_channel; ++p) {
    packages_.push_back(std::make_unique<NandPackage>(config, channel, p));
  }
}

Tick FlashController::ReserveBus(Tick now, double bytes) {
  const BandwidthResource::Reservation r = bus_.Reserve(now, bytes);
  if (bus_observer_) {
    bus_observer_(channel_, r.start, r.end);
  }
  return r.end;
}

int FlashController::AlivePackage(int preferred) const {
  if (!faults_->IsDeadDie(channel_, preferred)) {
    return preferred;
  }
  for (int p = 0; p < config_.packages_per_channel; ++p) {
    if (!faults_->IsDeadDie(channel_, p)) {
      return p;
    }
  }
  return -1;
}

FlashController::ReadSliceResult FlashController::ReadSlice(Tick now, const GroupAddress& addr) {
  faults_->Advance(now);
  ReadSliceResult res;
  const int pkg = AlivePackage(addr.package);
  res.dead_die = pkg != addr.package;
  if (pkg < 0) {
    // Whole channel gone: nothing to sense, nothing crosses the bus. The
    // backbone degrades the op; the stored slice is reconstructed host-side.
    res.done = now + config_.channel_cmd_overhead;
    return res;
  }
  const Tick start = tags_.Acquire(now);
  // Command phase: a few bus cycles, modelled as pure latency so queued
  // commands to other dies are not serialized behind data transfers (the
  // FCFS bus reservation would otherwise forfeit die-level pipelining).
  const Tick cmd_done = start + config_.channel_cmd_overhead + faults_->StallTicks();
  const ReadFault fault = faults_->OnRead(packages_[pkg]->wear(addr.block));
  Tick read_done = packages_[pkg]->ReadPages(cmd_done, addr.block, addr.page);
  // Walk the retry ladder: rung k re-senses the page after k * read_retry_step
  // of reference-voltage adjustment, so correctable errors cost real time.
  for (int rung = 1; rung <= fault.rungs; ++rung) {
    read_done = packages_[pkg]->ReadPages(
        read_done + static_cast<Tick>(rung) * config_.read_retry_step, addr.block, addr.page);
  }
  res.rungs = fault.rungs;
  res.uncorrectable = fault.uncorrectable;
  const double slice_bytes =
      static_cast<double>(config_.planes_per_package) * config_.page_bytes;
  res.done = ReserveBus(read_done, slice_bytes);
  tags_.Release(res.done);
  return res;
}

FlashController::ProgramSliceResult FlashController::ProgramSlice(Tick now,
                                                                  const GroupAddress& addr) {
  faults_->Advance(now);
  ProgramSliceResult res;
  const Tick start = tags_.Acquire(now);
  const double slice_bytes =
      static_cast<double>(config_.planes_per_package) * config_.page_bytes;
  const Tick xfer_done = ReserveBus(start, slice_bytes);
  if (faults_->IsDeadDie(channel_, addr.package)) {
    // The transfer still crosses the bus before the die's absence is observed;
    // no cells change. The group's contents survive at reduced redundancy.
    res.dead_die = true;
    res.done = xfer_done;
    tags_.Release(res.done);
    return res;
  }
  const Tick program_start = xfer_done + faults_->StallTicks();
  res.failed = faults_->ProgramFails(packages_[addr.package]->wear(addr.block));
  res.done = packages_[addr.package]->ProgramPages(program_start, addr.block, addr.page);
  tags_.Release(res.done);
  return res;
}

FlashController::EraseSliceResult FlashController::EraseSlice(Tick now, int package, int block,
                                                              bool inject_failure) {
  faults_->Advance(now);
  EraseSliceResult res;
  if (faults_->IsDeadDie(channel_, package)) {
    res.done = now + config_.channel_cmd_overhead;
    return res;
  }
  const Tick start = tags_.Acquire(now);
  const Tick cmd_done = start + config_.channel_cmd_overhead;
  // The failure draw happens once per superblock in the backbone (an erase
  // failure retires the whole block group); the erase itself still executes
  // for timing and wear before the block is fenced off.
  res.failed = inject_failure;
  res.done = packages_[package]->EraseBlock(cmd_done, block);
  if (res.failed) {
    packages_[package]->MarkBad(block);
  }
  tags_.Release(res.done);
  return res;
}

void FlashController::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/tag_acquires", &tags_.acquires_counter());
  reg->RegisterCounter(prefix + "/tag_wait_ns", &tags_.wait_ns_counter());
  reg->RegisterGauge(prefix + "/bus_bytes_moved",
                     [this](Tick) { return bus_.bytes_moved(); });
  reg->RegisterGauge(prefix + "/bus_busy_ns",
                     [this](Tick now) { return static_cast<double>(BusBusyTime(now)); });
  for (std::size_t p = 0; p < packages_.size(); ++p) {
    packages_[p]->RegisterMetrics(reg, prefix + "/pkg" + std::to_string(p));
  }
}

void TagQueue::SaveState(StateWriter& w) const {
  // Drain a copy of the min-heap: ascending completion times, deterministic.
  auto inflight = inflight_;
  std::vector<std::uint64_t> completions;
  completions.reserve(inflight.size());
  while (!inflight.empty()) {
    completions.push_back(inflight.top());
    inflight.pop();
  }
  w.U64(static_cast<std::uint64_t>(depth_));
  w.VecU64(completions);
  acquires_.SaveState(w);
  wait_ns_.SaveState(w);
}

void TagQueue::LoadState(StateReader& r) {
  const std::uint64_t depth = r.U64();
  const std::vector<std::uint64_t> completions = r.VecU64();
  if (!r.ok()) {
    return;
  }
  if (depth != static_cast<std::uint64_t>(depth_) || completions.size() > static_cast<std::size_t>(depth_)) {
    r.Fail("tag queue depth mismatch");
    return;
  }
  inflight_ = {};
  for (const Tick t : completions) {
    inflight_.push(t);
  }
  acquires_.LoadState(r);
  wait_ns_.LoadState(r);
}

std::string FlashController::StateName() const {
  return "flash/ch" + std::to_string(channel_);
}

void FlashController::SaveState(StateWriter& w) const {
  bus_.SaveState(w);
  tags_.SaveState(w);
  w.U64(packages_.size());
  for (const auto& pkg : packages_) {
    pkg->SaveState(w);
  }
}

void FlashController::LoadState(StateReader& r) {
  bus_.LoadState(r);
  tags_.LoadState(r);
  const std::uint64_t n = r.U64();
  if (r.ok() && n != packages_.size()) {
    r.Fail("package count mismatch");
    return;
  }
  for (auto& pkg : packages_) {
    pkg->LoadState(r);
  }
}

}  // namespace fabacus
