#include "src/flash/flash_controller.h"

#include <algorithm>
#include <string>

#include "src/sim/log.h"

namespace fabacus {

TagQueue::TagQueue(int depth) : depth_(depth) { FAB_CHECK_GT(depth, 0); }

Tick TagQueue::Acquire(Tick now) {
  acquires_.Add();
  if (static_cast<int>(inflight_.size()) < depth_) {
    return now;
  }
  const Tick earliest = inflight_.top();
  inflight_.pop();
  if (earliest > now) {
    wait_ns_.Add(earliest - now);
  }
  return std::max(now, earliest);
}

void TagQueue::Release(Tick completion) {
  FAB_CHECK_LT(static_cast<int>(inflight_.size()), depth_);
  inflight_.push(completion);
}

FlashController::FlashController(const NandConfig& config, int channel)
    : config_(config),
      channel_(channel),
      bus_("flash.ch" + std::to_string(channel), config.channel_gb_per_s,
           config.channel_cmd_overhead),
      tags_(config.controller_tag_queue_depth) {
  packages_.reserve(config.packages_per_channel);
  for (int p = 0; p < config.packages_per_channel; ++p) {
    packages_.push_back(std::make_unique<NandPackage>(config, channel, p));
  }
}

Tick FlashController::ReserveBus(Tick now, double bytes) {
  const BandwidthResource::Reservation r = bus_.Reserve(now, bytes);
  if (bus_observer_) {
    bus_observer_(channel_, r.start, r.end);
  }
  return r.end;
}

Tick FlashController::ReadSlice(Tick now, const GroupAddress& addr) {
  const Tick start = tags_.Acquire(now);
  // Command phase: a few bus cycles, modelled as pure latency so queued
  // commands to other dies are not serialized behind data transfers (the
  // FCFS bus reservation would otherwise forfeit die-level pipelining).
  const Tick cmd_done = start + config_.channel_cmd_overhead;
  const Tick read_done = packages_[addr.package]->ReadPages(cmd_done, addr.block, addr.page);
  const double slice_bytes =
      static_cast<double>(config_.planes_per_package) * config_.page_bytes;
  const Tick done = ReserveBus(read_done, slice_bytes);
  tags_.Release(done);
  return done;
}

Tick FlashController::ProgramSlice(Tick now, const GroupAddress& addr) {
  const Tick start = tags_.Acquire(now);
  const double slice_bytes =
      static_cast<double>(config_.planes_per_package) * config_.page_bytes;
  const Tick xfer_done = ReserveBus(start, slice_bytes);
  const Tick done = packages_[addr.package]->ProgramPages(xfer_done, addr.block, addr.page);
  tags_.Release(done);
  return done;
}

Tick FlashController::EraseSlice(Tick now, int package, int block) {
  const Tick start = tags_.Acquire(now);
  const Tick cmd_done = start + config_.channel_cmd_overhead;
  const Tick done = packages_[package]->EraseBlock(cmd_done, block);
  tags_.Release(done);
  return done;
}

void FlashController::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/tag_acquires", &tags_.acquires_counter());
  reg->RegisterCounter(prefix + "/tag_wait_ns", &tags_.wait_ns_counter());
  reg->RegisterGauge(prefix + "/bus_bytes_moved",
                     [this](Tick) { return bus_.bytes_moved(); });
  reg->RegisterGauge(prefix + "/bus_busy_ns",
                     [this](Tick now) { return static_cast<double>(BusBusyTime(now)); });
  for (std::size_t p = 0; p < packages_.size(); ++p) {
    packages_[p]->RegisterMetrics(reg, prefix + "/pkg" + std::to_string(p));
  }
}

}  // namespace fabacus
