// Deterministic, seeded fault injection for the flash backbone (the
// reliability machinery behind the paper's self-governance claim, §4.3).
//
// One FaultModel instance is owned by FlashBackbone and consulted by every
// channel controller on each device operation. It decides
//   * read errors: a wear-dependent raw-bit-error process. An affected read
//     needs one or more rungs of the ONFi-style read-retry ladder (re-reads
//     with shifted reference voltages, each at escalating latency); a read
//     that exhausts the ladder is uncorrectable.
//   * program failures: a program-status fail, scaled by wear. Flashvisor
//     responds by re-allocating the page group to a fresh block group and
//     retiring the failed one.
//   * erase failures: the block fails to erase and is marked bad (the
//     pre-existing behaviour of NandConfig::erase_failure_rate, now
//     wear-scaled and owned here).
//   * transient die stalls: a die occasionally holds busy for an extra
//     interval (cache conflicts, internal housekeeping on real parts).
//   * scripted faults: a fault plan ("at tick T, kill die/channel X") for
//     degraded-mode experiments. Dead dies are permanent; the controllers
//     remap around them at reduced bandwidth instead of CHECK-failing.
//
// Everything is driven by one SplitMix64 stream seeded from FaultConfig, so
// identical seed + plan => identical fault schedule (tests assert this).
#ifndef SRC_FLASH_FAULT_MODEL_H_
#define SRC_FLASH_FAULT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace fabacus {

// Outcome severity of an I/O request, propagated from the backbone through
// Flashvisor::IoRequest completions up to the offload runtime.
enum class IoStatus {
  kOk = 0,           // completed cleanly (correctable retries are still kOk-adjacent
                     // at request level only if no rung was walked; see kDegraded)
  kDegraded = 1,     // completed, but via retry rungs or a dead-die detour
  kUncorrectable = 2,  // read data could not be corrected within the ladder
  kProgramFailed = 3,  // program-status fail; data did not land
};

const char* IoStatusName(IoStatus s);
inline IoStatus WorseStatus(IoStatus a, IoStatus b) { return a < b ? b : a; }

struct FaultPlanEntry {
  enum class Kind { kKillDie, kKillChannel };
  Kind kind = Kind::kKillDie;
  Tick at = 0;      // simulation tick at which the fault manifests
  int channel = 0;
  int package = 0;  // ignored for kKillChannel
};

struct FaultConfig {
  std::uint64_t seed = 0x5eedf00dULL;

  // P(read needs the retry ladder) = read_error_base +
  // read_error_wear_slope * (block wear / endurance_cycles), clamped to [0,1].
  double read_error_base = 0.0;
  double read_error_wear_slope = 0.0;
  // Given a read error, each ladder rung independently fails to correct with
  // this probability; exhausting every rung makes the read uncorrectable.
  double retry_rung_fail = 0.35;

  // Program/erase failure probabilities, each scaled by (1 + wear/endurance).
  double program_failure_rate = 0.0;
  double erase_failure_rate = 0.0;

  // Transient die stalls: probability per die operation, and the stall length.
  double die_stall_rate = 0.0;
  Tick die_stall_ns = 200 * kUs;

  // Scripted faults, applied when simulation time reaches each entry's tick.
  std::vector<FaultPlanEntry> plan;

  bool AnyRandomFaults() const {
    return read_error_base > 0.0 || read_error_wear_slope > 0.0 ||
           program_failure_rate > 0.0 || erase_failure_rate > 0.0 ||
           die_stall_rate > 0.0;
  }
};

// Per-read fault outcome: how many retry rungs the controller must walk
// (0 = the first read sensed clean), and whether the ladder was exhausted.
struct ReadFault {
  int rungs = 0;
  bool uncorrectable = false;
};

class FaultModel : public Snapshottable {
 public:
  FaultModel(const FaultConfig& config, int channels, int packages_per_channel,
             std::uint64_t endurance_cycles, int ladder_depth);

  // Applies every plan entry with `at` <= now. Idempotent; called by the
  // controllers at each device op so scripted faults take effect on time.
  void Advance(Tick now);

  // Immediate die/channel kill (what the plan entries resolve to; also used
  // directly by tests and chaos tooling).
  void KillDie(int channel, int package);
  void KillChannel(int channel);
  bool IsDeadDie(int channel, int package) const;
  int dead_die_count() const { return dead_dies_; }

  // Fault draws. `wear` is the erase count of the block being touched.
  ReadFault OnRead(std::uint64_t wear);
  bool ProgramFails(std::uint64_t wear);
  bool EraseFails(std::uint64_t wear);
  Tick StallTicks();  // 0 when the die does not stall

  const FaultConfig& config() const { return config_; }

  // Snapshottable: RNG stream position, dead-die map and plan cursor, so a
  // resumed run draws the exact fault sequence the unbroken run would have.
  std::string StateName() const override { return "faults"; }
  void SaveState(StateWriter& w) const override {
    w.U64(rng_.state());
    std::vector<std::uint8_t> dead(dead_.size());
    for (std::size_t i = 0; i < dead_.size(); ++i) {
      dead[i] = dead_[i] ? 1 : 0;
    }
    w.VecU8(dead);
    w.U64(static_cast<std::uint64_t>(next_plan_));
  }
  void LoadState(StateReader& r) override {
    rng_.set_state(r.U64());
    const std::vector<std::uint8_t> dead = r.VecU8();
    const std::uint64_t next_plan = r.U64();
    if (!r.ok()) {
      return;
    }
    if (dead.size() != dead_.size() || next_plan > config_.plan.size()) {
      r.Fail("fault model shape mismatch");
      return;
    }
    dead_dies_ = 0;
    for (std::size_t i = 0; i < dead.size(); ++i) {
      dead_[i] = dead[i] != 0;
      if (dead_[i]) {
        ++dead_dies_;
      }
    }
    next_plan_ = static_cast<std::size_t>(next_plan);
  }

 private:
  double WearScale(std::uint64_t wear) const;

  FaultConfig config_;
  int channels_;
  int packages_per_channel_;
  double endurance_;
  int ladder_depth_;
  Rng rng_;
  std::vector<bool> dead_;  // [channel * packages_per_channel + package]
  int dead_dies_ = 0;
  std::size_t next_plan_ = 0;  // plan entries are pre-sorted by tick
};

}  // namespace fabacus

#endif  // SRC_FLASH_FAULT_MODEL_H_
