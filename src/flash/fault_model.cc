#include "src/flash/fault_model.h"

#include <algorithm>

#include "src/sim/log.h"

namespace fabacus {

const char* IoStatusName(IoStatus s) {
  switch (s) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kDegraded:
      return "degraded";
    case IoStatus::kUncorrectable:
      return "uncorrectable";
    case IoStatus::kProgramFailed:
      return "program_failed";
  }
  return "?";
}

FaultModel::FaultModel(const FaultConfig& config, int channels, int packages_per_channel,
                       std::uint64_t endurance_cycles, int ladder_depth)
    : config_(config),
      channels_(channels),
      packages_per_channel_(packages_per_channel),
      endurance_(static_cast<double>(std::max<std::uint64_t>(endurance_cycles, 1))),
      ladder_depth_(ladder_depth),
      rng_(config.seed),
      dead_(static_cast<std::size_t>(channels) * packages_per_channel, false) {
  FAB_CHECK_GT(ladder_depth_, 0);
  std::stable_sort(config_.plan.begin(), config_.plan.end(),
                   [](const FaultPlanEntry& a, const FaultPlanEntry& b) { return a.at < b.at; });
}

void FaultModel::Advance(Tick now) {
  while (next_plan_ < config_.plan.size() && config_.plan[next_plan_].at <= now) {
    const FaultPlanEntry& e = config_.plan[next_plan_];
    if (e.kind == FaultPlanEntry::Kind::kKillChannel) {
      KillChannel(e.channel);
    } else {
      KillDie(e.channel, e.package);
    }
    ++next_plan_;
  }
}

void FaultModel::KillDie(int channel, int package) {
  FAB_CHECK_GE(channel, 0);
  FAB_CHECK_LT(channel, channels_);
  FAB_CHECK_GE(package, 0);
  FAB_CHECK_LT(package, packages_per_channel_);
  const std::size_t idx =
      static_cast<std::size_t>(channel) * packages_per_channel_ + package;
  if (!dead_[idx]) {
    dead_[idx] = true;
    ++dead_dies_;
  }
}

void FaultModel::KillChannel(int channel) {
  for (int p = 0; p < packages_per_channel_; ++p) {
    KillDie(channel, p);
  }
}

bool FaultModel::IsDeadDie(int channel, int package) const {
  return dead_[static_cast<std::size_t>(channel) * packages_per_channel_ + package];
}

double FaultModel::WearScale(std::uint64_t wear) const {
  return static_cast<double>(wear) / endurance_;
}

ReadFault FaultModel::OnRead(std::uint64_t wear) {
  ReadFault f;
  const double p = std::clamp(
      config_.read_error_base + config_.read_error_wear_slope * WearScale(wear), 0.0, 1.0);
  if (p <= 0.0 || rng_.NextDouble() >= p) {
    return f;
  }
  // The nominal read crossed the correctable-bits threshold: walk the retry
  // ladder until one rung corrects or the ladder is exhausted.
  for (int rung = 1; rung <= ladder_depth_; ++rung) {
    f.rungs = rung;
    if (rng_.NextDouble() >= config_.retry_rung_fail) {
      return f;  // this rung corrected the data
    }
  }
  f.uncorrectable = true;
  return f;
}

bool FaultModel::ProgramFails(std::uint64_t wear) {
  if (config_.program_failure_rate <= 0.0) {
    return false;
  }
  const double p =
      std::clamp(config_.program_failure_rate * (1.0 + WearScale(wear)), 0.0, 1.0);
  return rng_.NextDouble() < p;
}

bool FaultModel::EraseFails(std::uint64_t wear) {
  if (config_.erase_failure_rate <= 0.0) {
    return false;
  }
  const double p =
      std::clamp(config_.erase_failure_rate * (1.0 + WearScale(wear)), 0.0, 1.0);
  return rng_.NextDouble() < p;
}

Tick FaultModel::StallTicks() {
  if (config_.die_stall_rate <= 0.0 || rng_.NextDouble() >= config_.die_stall_rate) {
    return 0;
  }
  return config_.die_stall_ns;
}

}  // namespace fabacus
