// FPGA-based flash channel controller (paper §2.2): converts requests from
// the processor network into the flash clock domain. Implements the inbound/
// outbound "tag" queues — a bounded pool of in-flight operations per channel —
// and arbitrates the shared NV-DDR2 channel bus among its four packages.
#ifndef SRC_FLASH_FLASH_CONTROLLER_H_
#define SRC_FLASH_FLASH_CONTROLLER_H_

#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/flash/fault_model.h"
#include "src/flash/nand_config.h"
#include "src/flash/nand_package.h"
#include "src/sim/metrics.h"
#include "src/sim/resource.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

// Bounded tag pool: Acquire blocks (in simulated time) until a tag frees up.
class TagQueue {
 public:
  explicit TagQueue(int depth);

  // Earliest time at/after `now` a tag is available; the tag is then held
  // until the caller's op completes (pass that completion to Release).
  Tick Acquire(Tick now);
  void Release(Tick completion);

  int depth() const { return depth_; }
  std::uint64_t acquires() const { return acquires_.value(); }
  // Total simulated time Acquire() callers waited for a free tag.
  std::uint64_t wait_ns() const { return wait_ns_.value(); }
  const Counter& acquires_counter() const { return acquires_; }
  const Counter& wait_ns_counter() const { return wait_ns_; }

  // Checkpoint/restore: the in-flight completion horizon is plain data (no
  // callbacks), so a tag pool mid-drain round-trips exactly.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  int depth_;
  // Completion times of in-flight ops, earliest first.
  std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>> inflight_;
  Counter acquires_;
  Counter wait_ns_;
};

class FlashController : public Snapshottable {
 public:
  // Per-channel outcome of one page-group slice; the backbone aggregates the
  // worst case across channels into an OpResult / IoStatus.
  struct ReadSliceResult {
    Tick done = 0;
    int rungs = 0;            // read-retry rungs walked (0 = clean first sense)
    bool uncorrectable = false;
    bool dead_die = false;    // served via detour to an alive die (or skipped)
  };
  struct ProgramSliceResult {
    Tick done = 0;
    bool failed = false;      // program-status fail reported by the die
    bool dead_die = false;    // die gone: bus charged, no cells written
  };
  struct EraseSliceResult {
    Tick done = 0;
    bool failed = false;      // erase fail: the block was marked bad
  };

  FlashController(const NandConfig& config, int channel, FaultModel* faults);

  // This channel's slice of a page-group read: multi-plane read on `package`
  // at (block, page), then the 2-page data transfer out over the bus. A
  // correctable-error read re-senses the page once per retry rung before the
  // transfer; a dead target die is detoured to an alive package (re-reading
  // the RAID-style slice reconstruction at reduced channel bandwidth).
  ReadSliceResult ReadSlice(Tick now, const GroupAddress& addr);
  // Slice of a page-group program: data in over the bus, then program.
  ProgramSliceResult ProgramSlice(Tick now, const GroupAddress& addr);
  // Slice of a block-group erase. `inject_failure` is the backbone's one
  // per-superblock erase-failure draw (a failure retires the whole group).
  EraseSliceResult EraseSlice(Tick now, int package, int block, bool inject_failure);

  NandPackage& package(int i) { return *packages_[i]; }
  const NandPackage& package(int i) const { return *packages_[i]; }
  int channel() const { return channel_; }
  double bus_bytes_moved() const { return bus_.bytes_moved(); }
  Tick BusBusyTime(Tick now) const { return bus_.BusyTime(now); }
  double BusUtilization(Tick now) const { return bus_.Utilization(now); }
  const TagQueue& tags() const { return tags_; }

  // Observer invoked with (channel, start, end) for every NV-DDR2 bus data
  // transfer — the per-channel kFlashChan trace tracks are built from these.
  using BusObserver = std::function<void(int channel, Tick start, Tick end)>;
  void set_bus_observer(BusObserver obs) { bus_observer_ = std::move(obs); }

  // Registers this channel's bus/tag metrics plus every package's counters
  // under `prefix` (e.g. "flash/ch0" -> "flash/ch0/pkg1/reads").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

  // Snapshottable: bus horizon + tag pool + every package on this channel.
  std::string StateName() const override;
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  Tick ReserveBus(Tick now, double bytes);
  // First alive package in this channel, or -1 when the whole channel is dead.
  int AlivePackage(int preferred) const;

  const NandConfig& config_;
  int channel_;
  FaultModel* faults_;
  BandwidthResource bus_;
  TagQueue tags_;
  std::vector<std::unique_ptr<NandPackage>> packages_;
  BusObserver bus_observer_;
};

}  // namespace fabacus

#endif  // SRC_FLASH_FLASH_CONTROLLER_H_
