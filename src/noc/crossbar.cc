#include "src/noc/crossbar.h"

#include <algorithm>

#include "src/sim/log.h"

namespace fabacus {

Crossbar::Crossbar(const CrossbarConfig& config)
    : config_(config),
      fabric_(config.name + ".fabric", config.fabric_gb_per_s, config.hop_latency) {
  FAB_CHECK_GT(config_.ports, 0);
  ports_.reserve(config_.ports);
  for (int p = 0; p < config_.ports; ++p) {
    ports_.push_back(std::make_unique<BandwidthResource>(
        config_.name + ".port" + std::to_string(p), config_.port_gb_per_s));
  }
}

Tick Crossbar::Transfer(Tick now, int src_port, int dst_port, double bytes) {
  FAB_CHECK_GE(src_port, 0);
  FAB_CHECK_LT(src_port, config_.ports);
  FAB_CHECK_GE(dst_port, 0);
  FAB_CHECK_LT(dst_port, config_.ports);
  const Tick src_done = ports_[src_port]->Reserve(now, bytes).end;
  const Tick fabric_done = fabric_.Reserve(now, bytes).end;
  const Tick dst_done = ports_[dst_port]->Reserve(now, bytes).end;
  return std::max({src_done, fabric_done, dst_done});
}

}  // namespace fabacus
