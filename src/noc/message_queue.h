// Hardware message queue (paper: KeyStone Multicore Navigator-style queues
// attached to the crossbar). LWPs and Flashvisor communicate exclusively over
// these queues; each message pays a fixed fabric latency, and the queue is
// bounded — a full queue back-pressures the sender, which is one of the IPC
// overheads the paper charges against fine-grained (IntraO3) scheduling.
#ifndef SRC_NOC_MESSAGE_QUEUE_H_
#define SRC_NOC_MESSAGE_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "src/sim/log.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace fabacus {

// One-directional queue carrying messages of type T to a single consumer.
// The consumer drains messages serially: the sink callback is invoked once
// per message, and the next message is delivered only after the consumer
// reports it is done (via the Done handle), modelling a single control core.
template <typename T>
class MessageQueue {
 public:
  // Called for each delivered message. The consumer must invoke `done(t)`
  // exactly once, at the simulation time `t` when it finished handling the
  // message; the queue then delivers the next message.
  using Done = std::function<void(Tick)>;
  using Sink = std::function<void(T, Done)>;

  MessageQueue(Simulator* sim, std::string name, Tick delivery_latency = 100,
               std::size_t capacity = 4096)
      : sim_(sim),
        name_(std::move(name)),
        delivery_latency_(delivery_latency),
        capacity_(capacity) {}

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // Enqueues a message. Returns false when the queue is full (the caller is
  // expected to retry; the schedulers treat this as back-pressure).
  bool TrySend(T msg) {
    if (pending_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    pending_.push_back(std::move(msg));
    ++sent_;
    MaybeDeliver();
    return true;
  }

  // Express-lane enqueue: the message goes ahead of every queued normal-lane
  // message (Navigator queues support multiple priority levels). Used by the
  // tenant QoS layer for latency-class I/O (docs/QOS.md); express messages
  // among themselves stay FIFO.
  bool TrySendPriority(T msg) {
    if (pending_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    pending_.insert(pending_.begin() + static_cast<std::ptrdiff_t>(express_), std::move(msg));
    ++express_;
    ++sent_;
    MaybeDeliver();
    return true;
  }

  // Drops queued messages and the busy latch. For crash recovery: after
  // Simulator::Halt() the scheduled redelivery event is gone, so `busy_`
  // would otherwise stick forever and wedge the queue.
  void Reset() {
    pending_.clear();
    express_ = 0;
    busy_ = false;
  }

  std::size_t depth() const { return pending_.size(); }
  // True when no message is queued or being delivered. Snapshots require the
  // queue to be idle: messages carry closures, which cannot be serialized.
  bool Idle() const { return pending_.empty() && !busy_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t delivered() const { return delivered_; }
  const std::string& name() const { return name_; }

  // Checkpoint/restore of the queue's counters. The queue itself must be
  // idle (see Idle()) — enforced by the caller before snapshotting.
  void SaveState(StateWriter& w) const {
    FAB_CHECK(Idle()) << "message queue " << name_ << " not idle at snapshot";
    w.U64(sent_);
    w.U64(rejected_);
    w.U64(delivered_);
  }
  void LoadState(StateReader& r) {
    pending_.clear();
    busy_ = false;
    sent_ = r.U64();
    rejected_ = r.U64();
    delivered_ = r.U64();
  }

 private:
  void MaybeDeliver() {
    if (busy_ || pending_.empty()) {
      return;
    }
    busy_ = true;
    T msg = std::move(pending_.front());
    pending_.pop_front();
    if (express_ > 0) {
      --express_;
    }
    sim_->Schedule(delivery_latency_, [this, msg = std::move(msg)]() mutable {
      FAB_CHECK(sink_) << "message queue " << name_ << " has no sink";
      ++delivered_;
      sink_(std::move(msg), [this](Tick when) {
        sim_->ScheduleAt(when, [this]() {
          busy_ = false;
          MaybeDeliver();
        });
      });
    });
  }

  Simulator* sim_;
  std::string name_;
  Tick delivery_latency_;
  std::size_t capacity_;
  Sink sink_;
  std::deque<T> pending_;
  std::size_t express_ = 0;  // prefix of pending_ holding express messages
  bool busy_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace fabacus

#endif  // SRC_NOC_MESSAGE_QUEUE_H_
