// Serial RapidIO lanes connecting the tier-2 AMC to the flash backbone's FMC
// (paper §2.2): four lanes at 5 Gbps each, i.e. 2.5 GB/s raw, ~2 GB/s after
// 8b/10b-style encoding overhead.
#ifndef SRC_NOC_SRIO_LINK_H_
#define SRC_NOC_SRIO_LINK_H_

#include "src/sim/resource.h"
#include "src/sim/time.h"

namespace fabacus {

struct SrioConfig {
  int lanes = 4;
  double gbps_per_lane = 5.0;   // raw line rate
  double encoding_efficiency = 1.0;  // payload efficiency after framing
  Tick latency = 200;           // ns, serdes + FMC hop
};

class SrioLink {
 public:
  explicit SrioLink(const SrioConfig& config = SrioConfig{})
      : config_(config),
        link_("srio",
              config.lanes * config.gbps_per_lane / 8.0 * config.encoding_efficiency,
              config.latency) {}

  Tick Transfer(Tick now, double bytes) { return link_.Reserve(now, bytes).end; }

  const SrioConfig& config() const { return config_; }

  double gb_per_s() const { return link_.gb_per_s(); }
  double bytes_moved() const { return link_.bytes_moved(); }
  Tick BusyTime(Tick now) const { return link_.BusyTime(now); }
  double Utilization(Tick now) const { return link_.Utilization(now); }

  // Checkpoint/restore of the link's timing state.
  void SaveState(StateWriter& w) const { link_.SaveState(w); }
  void LoadState(StateReader& r) { link_.LoadState(r); }

 private:
  SrioConfig config_;
  BandwidthResource link_;
};

}  // namespace fabacus

#endif  // SRC_NOC_SRIO_LINK_H_
