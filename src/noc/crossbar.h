// Partial crossbar network (paper §2.2, Table 1):
//  * tier-1 streaming crossbar, 256 lanes @ 500 MHz, 16 GB/s — LWPs <-> memory
//  * tier-2 simplified crossbars, 128 lanes @ 333 MHz, 5.2 GB/s — AMC/PCIe side
// A transfer reserves its source and destination ports plus the shared fabric;
// the fabric itself has an aggregate bandwidth several ports can saturate.
#ifndef SRC_NOC_CROSSBAR_H_
#define SRC_NOC_CROSSBAR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/resource.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace fabacus {

struct CrossbarConfig {
  std::string name = "xbar";
  int ports = 8;
  double port_gb_per_s = 16.0;     // per-port peak
  double fabric_gb_per_s = 16.0;   // aggregate fabric ceiling
  Tick hop_latency = 10;           // ns per traversal
};

class Crossbar : public Snapshottable {
 public:
  explicit Crossbar(const CrossbarConfig& config);

  // Moves `bytes` from `src_port` to `dst_port`; returns delivery time.
  Tick Transfer(Tick now, int src_port, int dst_port, double bytes);

  const CrossbarConfig& config() const { return config_; }
  double bytes_moved() const { return fabric_.bytes_moved(); }
  double Utilization(Tick now) const { return fabric_.Utilization(now); }
  Tick BusyTime(Tick now) const { return fabric_.BusyTime(now); }

  // Registers fabric transfer counter plus bytes/busy/utilization gauges
  // under `prefix` (e.g. "noc/tier1").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
    reg->RegisterCounter(prefix + "/transfers", &fabric_.transfers_counter());
    reg->RegisterGauge(prefix + "/bytes_moved", [this](Tick) { return bytes_moved(); });
    reg->RegisterGauge(prefix + "/busy_ns",
                       [this](Tick now) { return static_cast<double>(BusyTime(now)); });
    reg->RegisterGauge(prefix + "/utilization",
                       [this](Tick now) { return Utilization(now); });
  }

  // Snapshottable: fabric + per-port timing horizons.
  std::string StateName() const override { return "noc/" + config_.name; }
  void SaveState(StateWriter& w) const override {
    fabric_.SaveState(w);
    w.U64(ports_.size());
    for (const auto& port : ports_) {
      port->SaveState(w);
    }
  }
  void LoadState(StateReader& r) override {
    fabric_.LoadState(r);
    const std::uint64_t n = r.U64();
    if (r.ok() && n != ports_.size()) {
      r.Fail("crossbar port count mismatch");
      return;
    }
    for (auto& port : ports_) {
      port->LoadState(r);
    }
  }

 private:
  CrossbarConfig config_;
  BandwidthResource fabric_;
  std::vector<std::unique_ptr<BandwidthResource>> ports_;
};

}  // namespace fabacus

#endif  // SRC_NOC_CROSSBAR_H_
