// Lightweight processor (LWP) model. Paper §2.2: TI C6678-class VLIW core at
// 1 GHz with eight functional units (2 multiply, 4 general-purpose, 2
// load/store), private 64 KB L1 / 512 KB L2, no out-of-order scheduling.
//
// Screen cost model: effective IPC is the static VLIW issue bound given the
// instruction mix and the per-class FU counts; memory stalls come from the
// analytic cache model's DDR3L spill traffic, reserved against the real DRAM
// banks (so co-running screens contend). Compute and memory overlap
// imperfectly on an in-order VLIW, controlled by `overlap_factor`.
#ifndef SRC_CORE_LWP_H_
#define SRC_CORE_LWP_H_

#include <string>
#include <utility>
#include <vector>

#include "src/core/kernel.h"
#include "src/mem/cache_model.h"
#include "src/mem/dram.h"
#include "src/noc/crossbar.h"
#include "src/sim/metrics.h"
#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

struct LwpConfig {
  double clock_ghz = 1.0;
  int mul_fus = 2;
  int alu_fus = 4;
  int ldst_fus = 2;
  int issue_width = 8;
  // Fraction of min(compute, memory) hidden by overlap; 1.0 = perfect
  // overlap (duration = max), 0.0 = fully serialized (duration = sum).
  double overlap_factor = 0.75;
  // Power/sleep controller: boot-address write + IPI + wake (paper §4,
  // "Execution") per kernel dispatched onto this LWP.
  Tick boot_overhead = 5 * kUs;
  // PSC sleep policy: an LWP idle longer than this is put into the sleep
  // state (deep-sleep power instead of idle power); waking costs
  // boot_overhead. Used by the energy model.
  Tick psc_sleep_threshold = 100 * kUs;
};

class Lwp : public Snapshottable {
 public:
  struct ScreenTiming {
    Tick start;
    Tick end;
    double avg_fus_busy;  // average FU occupancy while computing (for Fig 15a)
  };

  Lwp(int id, const LwpConfig& config, Dram* dram, Crossbar* tier1,
      const CacheConfig& cache_config = CacheConfig{});

  // Effective sustained IPC for an instruction mix.
  double EffectiveIpc(double frac_mul, double frac_alu, double frac_ldst) const;

  // Executes a screen starting no earlier than `now` (the LWP may still be
  // finishing earlier work). Reserves DRAM/crossbar bandwidth for the spill
  // traffic and accounts busy time. Purely timing; the functional body runs
  // separately.
  ScreenTiming ExecuteScreen(Tick now, const ScreenWork& work);

  // Charges the PSC kernel-boot sequence; returns when the LWP is runnable.
  Tick BootKernel(Tick now);

  int id() const { return id_; }
  Tick busy_until() const { return busy_until_; }
  Tick BusyTime(Tick now) const { return busy_.BusyTime(now); }
  double Utilization(Tick now) const { return busy_.Utilization(now); }
  std::uint64_t screens_executed() const { return screens_executed_.value(); }
  std::uint64_t kernel_boots() const { return kernel_boots_.value(); }
  const LwpConfig& config() const { return config_; }

  // Registers this LWP's metrics under `prefix` (e.g. "lwp/2"):
  // <prefix>/screens_executed, <prefix>/kernel_boots, <prefix>/busy_ns,
  // <prefix>/utilization.
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

  // Busy intervals in execution order (for PSC sleep accounting and traces).
  const std::vector<std::pair<Tick, Tick>>& busy_intervals() const { return intervals_; }

  // Time this LWP spends in the PSC sleep state over [window_start,
  // window_end): idle gaps between busy intervals beyond the sleep
  // threshold (each entered once the threshold expires).
  Tick SleepTime(Tick window_start, Tick window_end) const;

  // Snapshottable: occupancy horizon, busy accounting, the interval history
  // (PSC sleep/energy accounting replays it) and dispatch counters. The
  // cache model is stateless.
  std::string StateName() const override { return "lwp/" + std::to_string(id_); }
  void SaveState(StateWriter& w) const override {
    w.U64(busy_until_);
    busy_.SaveState(w);
    w.U64(intervals_.size());
    for (const auto& iv : intervals_) {
      w.U64(iv.first);
      w.U64(iv.second);
    }
    screens_executed_.SaveState(w);
    kernel_boots_.SaveState(w);
  }
  void LoadState(StateReader& r) override {
    busy_until_ = r.U64();
    busy_.LoadState(r);
    const std::uint64_t n = r.U64();
    intervals_.clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const Tick start = r.U64();
      const Tick end = r.U64();
      intervals_.emplace_back(start, end);
    }
    screens_executed_.LoadState(r);
    kernel_boots_.LoadState(r);
  }

 private:
  int id_;
  LwpConfig config_;
  Dram* dram_;
  Crossbar* tier1_;
  CacheModel cache_;
  Tick busy_until_ = 0;
  BusyTracker busy_;
  std::vector<std::pair<Tick, Tick>> intervals_;
  Counter screens_executed_;
  Counter kernel_boots_;
};

}  // namespace fabacus

#endif  // SRC_CORE_LWP_H_
