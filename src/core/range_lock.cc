#include "src/core/range_lock.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace fabacus {
namespace {

bool Overlaps(std::uint64_t a_first, std::uint64_t a_last, std::uint64_t b_first,
              std::uint64_t b_last) {
  return a_first <= b_last && b_first <= a_last;
}

// Two lock requests conflict when their ranges overlap and at least one of
// them intends to write (reader/reader sharing is allowed).
bool ModesConflict(LockMode a, LockMode b) {
  return a == LockMode::kWrite || b == LockMode::kWrite;
}

}  // namespace

RangeLock::~RangeLock() { FreeSubtree(root_); }

void RangeLock::Reset() {
  FreeSubtree(root_);
  root_ = nullptr;
  by_id_.clear();
  waiters_.clear();
  held_ = 0;
}

void RangeLock::FreeSubtree(Node* n) {
  if (n == nullptr) {
    return;
  }
  FreeSubtree(n->left);
  FreeSubtree(n->right);
  delete n;
}

std::uint64_t RangeLock::MaxLastOf(const Node* n) { return n == nullptr ? 0 : n->max_last; }

void RangeLock::UpdateMaxUp(Node* n) {
  // No early exit: after a deletion an ancestor may hold a stale max that
  // coincidentally matches an intermediate node's unchanged value, so the
  // whole path to the root must be recomputed.
  while (n != nullptr) {
    n->max_last = std::max({n->last, MaxLastOf(n->left), MaxLastOf(n->right)});
    n = n->parent;
  }
}

void RangeLock::RotateLeft(Node* x) {
  Node* y = x->right;
  x->right = y->left;
  if (y->left != nullptr) {
    y->left->parent = x;
  }
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->left) {
    x->parent->left = y;
  } else {
    x->parent->right = y;
  }
  y->left = x;
  x->parent = y;
  // x is now y's child: recompute x first, then y.
  x->max_last = std::max({x->last, MaxLastOf(x->left), MaxLastOf(x->right)});
  y->max_last = std::max({y->last, MaxLastOf(y->left), MaxLastOf(y->right)});
}

void RangeLock::RotateRight(Node* x) {
  Node* y = x->left;
  x->left = y->right;
  if (y->right != nullptr) {
    y->right->parent = x;
  }
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->right) {
    x->parent->right = y;
  } else {
    x->parent->left = y;
  }
  y->right = x;
  x->parent = y;
  x->max_last = std::max({x->last, MaxLastOf(x->left), MaxLastOf(x->right)});
  y->max_last = std::max({y->last, MaxLastOf(y->left), MaxLastOf(y->right)});
}

void RangeLock::InsertFixup(Node* z) {
  while (z->parent != nullptr && z->parent->color == kRed) {
    Node* gp = z->parent->parent;
    if (z->parent == gp->left) {
      Node* uncle = gp->right;
      if (uncle != nullptr && uncle->color == kRed) {
        z->parent->color = kBlack;
        uncle->color = kBlack;
        gp->color = kRed;
        z = gp;
      } else {
        if (z == z->parent->right) {
          z = z->parent;
          RotateLeft(z);
        }
        z->parent->color = kBlack;
        gp->color = kRed;
        RotateRight(gp);
      }
    } else {
      Node* uncle = gp->left;
      if (uncle != nullptr && uncle->color == kRed) {
        z->parent->color = kBlack;
        uncle->color = kBlack;
        gp->color = kRed;
        z = gp;
      } else {
        if (z == z->parent->left) {
          z = z->parent;
          RotateRight(z);
        }
        z->parent->color = kBlack;
        gp->color = kRed;
        RotateLeft(gp);
      }
    }
  }
  root_->color = kBlack;
}

RangeLock::Node* RangeLock::InsertRange(std::uint64_t first, std::uint64_t last, LockMode mode,
                                        LockId id, std::uint16_t tenant) {
  Node* z = new Node{first, last, last, mode, id, tenant};
  Node* parent = nullptr;
  Node* cur = root_;
  while (cur != nullptr) {
    parent = cur;
    cur = (first < cur->first) ? cur->left : cur->right;
  }
  z->parent = parent;
  if (parent == nullptr) {
    root_ = z;
  } else if (first < parent->first) {
    parent->left = z;
  } else {
    parent->right = z;
  }
  UpdateMaxUp(parent);
  InsertFixup(z);
  return z;
}

RangeLock::Node* RangeLock::Minimum(Node* n) {
  while (n->left != nullptr) {
    n = n->left;
  }
  return n;
}

void RangeLock::Transplant(Node* u, Node* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) {
    v->parent = u->parent;
  }
}

void RangeLock::DeleteNode(Node* z) {
  Node* y = z;
  Color y_original = y->color;
  Node* x = nullptr;
  Node* x_parent = nullptr;
  if (z->left == nullptr) {
    x = z->right;
    x_parent = z->parent;
    Transplant(z, z->right);
  } else if (z->right == nullptr) {
    x = z->left;
    x_parent = z->parent;
    Transplant(z, z->left);
  } else {
    y = Minimum(z->right);
    y_original = y->color;
    x = y->right;
    if (y->parent == z) {
      x_parent = y;
    } else {
      x_parent = y->parent;
      Transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    }
    Transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
    y->color = z->color;
  }
  // Recompute augmentation along the spine that changed.
  UpdateMaxUp(x_parent);
  if (y != z) {
    UpdateMaxUp(y);
  }
  if (y_original == kBlack) {
    DeleteFixup(x, x_parent);
  }
  delete z;
}

void RangeLock::DeleteFixup(Node* x, Node* x_parent) {
  while (x != root_ && (x == nullptr || x->color == kBlack)) {
    if (x_parent == nullptr) {
      break;
    }
    if (x == x_parent->left) {
      Node* w = x_parent->right;
      if (w != nullptr && w->color == kRed) {
        w->color = kBlack;
        x_parent->color = kRed;
        RotateLeft(x_parent);
        w = x_parent->right;
      }
      if (w == nullptr) {
        x = x_parent;
        x_parent = x->parent;
        continue;
      }
      const bool left_black = w->left == nullptr || w->left->color == kBlack;
      const bool right_black = w->right == nullptr || w->right->color == kBlack;
      if (left_black && right_black) {
        w->color = kRed;
        x = x_parent;
        x_parent = x->parent;
      } else {
        if (right_black) {
          if (w->left != nullptr) {
            w->left->color = kBlack;
          }
          w->color = kRed;
          RotateRight(w);
          w = x_parent->right;
        }
        w->color = x_parent->color;
        x_parent->color = kBlack;
        if (w->right != nullptr) {
          w->right->color = kBlack;
        }
        RotateLeft(x_parent);
        x = root_;
        x_parent = nullptr;
      }
    } else {
      Node* w = x_parent->left;
      if (w != nullptr && w->color == kRed) {
        w->color = kBlack;
        x_parent->color = kRed;
        RotateRight(x_parent);
        w = x_parent->left;
      }
      if (w == nullptr) {
        x = x_parent;
        x_parent = x->parent;
        continue;
      }
      const bool left_black = w->left == nullptr || w->left->color == kBlack;
      const bool right_black = w->right == nullptr || w->right->color == kBlack;
      if (left_black && right_black) {
        w->color = kRed;
        x = x_parent;
        x_parent = x->parent;
      } else {
        if (left_black) {
          if (w->right != nullptr) {
            w->right->color = kBlack;
          }
          w->color = kRed;
          RotateLeft(w);
          w = x_parent->left;
        }
        w->color = x_parent->color;
        x_parent->color = kBlack;
        if (w->left != nullptr) {
          w->left->color = kBlack;
        }
        RotateRight(x_parent);
        x = root_;
        x_parent = nullptr;
      }
    }
  }
  if (x != nullptr) {
    x->color = kBlack;
  }
}

bool RangeLock::Conflicts(std::uint64_t first, std::uint64_t last, LockMode mode) const {
  const Node* n = root_;
  // Interval-tree overlap search, pruned by the max-end augmentation; must
  // examine every overlapping node because only incompatible modes conflict.
  std::vector<const Node*> stack;
  if (n != nullptr) {
    stack.push_back(n);
  }
  while (!stack.empty()) {
    const Node* cur = stack.back();
    stack.pop_back();
    if (cur->max_last < first) {
      continue;  // nothing in this subtree reaches our range
    }
    if (Overlaps(cur->first, cur->last, first, last) && ModesConflict(cur->mode, mode)) {
      return true;
    }
    if (cur->left != nullptr) {
      stack.push_back(cur->left);
    }
    if (cur->right != nullptr && cur->first <= last) {
      stack.push_back(cur->right);
    }
  }
  return false;
}

std::vector<std::uint16_t> RangeLock::CollectBlockingTenants(std::uint64_t first,
                                                             std::uint64_t last,
                                                             LockMode mode) const {
  std::vector<std::uint16_t> blockers;
  std::vector<const Node*> stack;
  if (root_ != nullptr) {
    stack.push_back(root_);
  }
  while (!stack.empty()) {
    const Node* cur = stack.back();
    stack.pop_back();
    if (cur->max_last < first) {
      continue;
    }
    if (Overlaps(cur->first, cur->last, first, last) && ModesConflict(cur->mode, mode)) {
      blockers.push_back(cur->tenant);
    }
    if (cur->left != nullptr) {
      stack.push_back(cur->left);
    }
    if (cur->right != nullptr && cur->first <= last) {
      stack.push_back(cur->right);
    }
  }
  for (const Waiter& w : waiters_) {
    if (Overlaps(w.first, w.last, first, last) && ModesConflict(w.mode, mode)) {
      blockers.push_back(w.tenant);
    }
  }
  std::sort(blockers.begin(), blockers.end());
  blockers.erase(std::unique(blockers.begin(), blockers.end()), blockers.end());
  return blockers;
}

bool RangeLock::TryAcquire(std::uint64_t first, std::uint64_t last, LockMode mode, LockId* id,
                           std::uint16_t tenant) {
  FAB_CHECK_LE(first, last);
  if (Conflicts(first, last, mode)) {
    return false;
  }
  const LockId new_id = next_id_++;
  Node* node = InsertRange(first, last, mode, new_id, tenant);
  by_id_.emplace(new_id, node);
  ++held_;
  ++total_grants_;
  *id = new_id;
  return true;
}

void RangeLock::Acquire(std::uint64_t first, std::uint64_t last, LockMode mode,
                        Granted granted, std::uint16_t tenant) {
  FAB_CHECK_LE(first, last);
  // FIFO fairness: even if the range is currently free, queue behind any
  // earlier conflicting waiter.
  bool behind_waiter = false;
  for (const Waiter& w : waiters_) {
    if (Overlaps(w.first, w.last, first, last) && ModesConflict(w.mode, mode)) {
      behind_waiter = true;
      break;
    }
  }
  LockId id = 0;
  if (!behind_waiter && TryAcquire(first, last, mode, &id, tenant)) {
    granted(id);
    return;
  }
  if (observer_) {
    // Attribute the wait before queueing, so the blocker set excludes us.
    for (std::uint16_t holder : CollectBlockingTenants(first, last, mode)) {
      observer_(tenant, holder);
    }
  }
  ++total_waits_;
  waiters_.push_back(Waiter{first, last, mode, tenant, std::move(granted)});
}

void RangeLock::Release(LockId id) {
  auto it = by_id_.find(id);
  FAB_CHECK(it != by_id_.end()) << "release of unknown lock id " << id;
  DeleteNode(it->second);
  by_id_.erase(it);
  --held_;
  DispatchWaiters();
}

void RangeLock::DispatchWaiters() {
  if (dispatching_) {
    return;  // re-entrancy guard: a grant callback may Release() another lock
  }
  dispatching_ = true;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Grant any waiter compatible with held locks and with every earlier
    // still-queued waiter (to preserve FIFO ordering between conflicters).
    std::vector<Waiter> still_waiting;
    std::vector<std::pair<LockId, Granted>> to_grant;
    for (auto& w : waiters_) {
      bool blocked_by_earlier = false;
      for (const Waiter& earlier : still_waiting) {
        if (Overlaps(earlier.first, earlier.last, w.first, w.last) &&
            ModesConflict(earlier.mode, w.mode)) {
          blocked_by_earlier = true;
          break;
        }
      }
      LockId id = 0;
      if (!blocked_by_earlier && TryAcquire(w.first, w.last, w.mode, &id, w.tenant)) {
        to_grant.emplace_back(id, std::move(w.granted));
        progressed = true;
      } else {
        still_waiting.push_back(std::move(w));
      }
    }
    waiters_.assign(std::make_move_iterator(still_waiting.begin()),
                    std::make_move_iterator(still_waiting.end()));
    for (auto& [id, cb] : to_grant) {
      cb(id);
    }
  }
  dispatching_ = false;
}

bool RangeLock::CheckNode(const Node* n, int* black_height) const {
  if (n == nullptr) {
    *black_height = 1;
    return true;
  }
  if (n->color == kRed) {
    if ((n->left != nullptr && n->left->color == kRed) ||
        (n->right != nullptr && n->right->color == kRed)) {
      return false;  // red node with red child
    }
  }
  if (n->left != nullptr && n->left->first > n->first) {
    return false;  // BST order violated
  }
  if (n->right != nullptr && n->right->first < n->first) {
    return false;
  }
  const std::uint64_t expect =
      std::max({n->last, MaxLastOf(n->left), MaxLastOf(n->right)});
  if (n->max_last != expect) {
    return false;  // augmentation stale
  }
  int lh = 0;
  int rh = 0;
  if (!CheckNode(n->left, &lh) || !CheckNode(n->right, &rh)) {
    return false;
  }
  if (lh != rh) {
    return false;  // black-height mismatch
  }
  *black_height = lh + (n->color == kBlack ? 1 : 0);
  return true;
}

bool RangeLock::CheckInvariants() const {
  if (root_ == nullptr) {
    return true;
  }
  if (root_->color != kBlack) {
    return false;
  }
  int bh = 0;
  return CheckNode(root_, &bh);
}

}  // namespace fabacus
