#include "src/core/flashvisor.h"

#include <algorithm>
#include <cstring>

#include "src/sim/log.h"

namespace fabacus {
namespace {

// Block groups held back from the logical capacity so garbage collection
// always has somewhere to migrate into (standard SSD over-provisioning).
constexpr double kOverProvisionFraction = 0.08;

}  // namespace

Flashvisor::Flashvisor(Simulator* sim, FlashBackbone* backbone, Dram* dram,
                       Scratchpad* scratchpad, const FlashvisorConfig& config)
    : sim_(sim),
      backbone_(backbone),
      dram_(dram),
      config_(config),
      core_("flashvisor"),
      map_(backbone->config(), scratchpad),
      blocks_(backbone->config()),
      inbound_(sim, "flashvisor.inq", config.queue_latency) {
  inbound_.set_sink([this](IoRequest req, MessageQueue<IoRequest>::Done done) {
    HandleIo(std::move(req), std::move(done));
  });
  EnsureActiveBlockGroup(0);
}

std::uint32_t Flashvisor::DataSlotsPerBlockGroup() const {
  // The last two slots of each block group hold the block's mapping summary.
  // (The paper places the summary in the first two pages; NAND program-order
  // discipline in our model requires the footer position — see DESIGN.md.)
  return static_cast<std::uint32_t>(backbone_->config().GroupsPerBlockGroup()) - 2;
}

// A block group is a superblock: block index `bg` across every package.
// Slot s maps to page s / P on package s % P, so consecutive slots stride
// the packages and the write point pipelines die programs.
std::uint64_t Flashvisor::BlockGroupOf(std::uint32_t phys_group) const {
  const auto& cfg = backbone_->config();
  return (phys_group / cfg.packages_per_channel) / cfg.pages_per_block;
}

std::uint32_t Flashvisor::SlotOf(std::uint32_t phys_group) const {
  const auto& cfg = backbone_->config();
  const std::uint32_t package = phys_group % cfg.packages_per_channel;
  const std::uint32_t page =
      static_cast<std::uint32_t>((phys_group / cfg.packages_per_channel) % cfg.pages_per_block);
  return page * cfg.packages_per_channel + package;
}

std::uint32_t Flashvisor::GroupOfSlot(std::uint64_t bg, std::uint32_t slot) const {
  const auto& cfg = backbone_->config();
  const std::uint32_t package = slot % cfg.packages_per_channel;
  const std::uint32_t page = slot / cfg.packages_per_channel;
  return static_cast<std::uint32_t>(
      (bg * cfg.pages_per_block + page) * cfg.packages_per_channel + package);
}

std::uint64_t Flashvisor::LogicalCapacityBytes() const {
  const auto& cfg = backbone_->config();
  const double usable =
      static_cast<double>(cfg.TotalBlockGroups()) * (1.0 - kOverProvisionFraction);
  return static_cast<std::uint64_t>(usable) * DataSlotsPerBlockGroup() * cfg.GroupBytes();
}

std::uint64_t Flashvisor::AllocLogicalExtent(std::uint64_t bytes) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t aligned = (bytes + group_bytes - 1) / group_bytes * group_bytes;
  FAB_CHECK_LE(logical_alloc_cursor_ + aligned, LogicalCapacityBytes())
      << "logical flash space exhausted";
  const std::uint64_t addr = logical_alloc_cursor_;
  logical_alloc_cursor_ += aligned;
  return addr;
}

void Flashvisor::set_tenants(TenantManager* tenants) {
  tenants_ = tenants;
  if (tenants_ != nullptr) {
    lock_.set_contention_observer([this](std::uint16_t waiter, std::uint16_t holder) {
      tenants_->RecordLockBlocked(static_cast<TenantId>(waiter),
                                  static_cast<TenantId>(holder));
    });
  } else {
    lock_.set_contention_observer(nullptr);
  }
}

bool Flashvisor::TryAllocTenantExtents(TenantId tenant, const std::vector<std::uint64_t>& sizes,
                                       std::vector<std::uint64_t>* addrs) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  if (tenants_ != nullptr) {
    std::uint64_t aligned_total = 0;
    for (std::uint64_t b : sizes) {
      aligned_total += (b + group_bytes - 1) / group_bytes * group_bytes;
    }
    if (!tenants_->TryChargeQuota(tenant, aligned_total, group_bytes)) {
      return false;
    }
  }
  addrs->clear();
  addrs->reserve(sizes.size());
  for (std::uint64_t b : sizes) {
    addrs->push_back(AllocLogicalExtent(b));
  }
  return true;
}

void Flashvisor::RefundTenantExtents(TenantId tenant, const std::vector<std::uint64_t>& sizes) {
  if (tenants_ == nullptr) {
    return;
  }
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  std::uint64_t aligned_total = 0;
  for (std::uint64_t b : sizes) {
    aligned_total += (b + group_bytes - 1) / group_bytes * group_bytes;
  }
  tenants_->RefundQuota(tenant, aligned_total);
}

TenantId Flashvisor::SlotOwner(std::uint32_t phys_group) const {
  return phys_group < slot_tenant_.size()
             ? static_cast<TenantId>(slot_tenant_[phys_group])
             : kDefaultTenant;
}

void Flashvisor::SetSlotOwner(std::uint32_t phys_group, TenantId tenant) {
  // Attribution only matters (and only costs memory) in multi-tenant mode.
  if (tenants_ == nullptr || !tenants_->configured()) {
    return;
  }
  if (phys_group >= slot_tenant_.size()) {
    slot_tenant_.resize(phys_group + 1, 0);
  }
  slot_tenant_[phys_group] = tenant;
}

void Flashvisor::NoteMigration(std::uint32_t phys_old, std::uint32_t phys_new) {
  if (tenants_ == nullptr || !tenants_->configured()) {
    return;
  }
  const TenantId owner = SlotOwner(phys_old);
  tenants_->RecordGcDrag(owner, 1);
  SetSlotOwner(phys_new, owner);
}

void Flashvisor::SubmitIo(IoRequest req) {
  FAB_CHECK(req.on_complete) << "IoRequest without completion callback";
  FAB_CHECK_EQ(req.flash_addr % backbone_->config().GroupBytes(), 0u)
      << "flash address must be group aligned";
  // Latency-class tenants ride the express lane of the inbound queue under
  // weighted-fair QoS (docs/QOS.md): their I/O is serviced ahead of queued
  // throughput-class requests instead of FIFO behind a noisy neighbor's
  // streaming loads.
  const bool express = tenants_ != nullptr && tenants_->configured() &&
                       tenants_->weighted_fair() && tenants_->latency_class(req.tenant);
  if (express) {
    FAB_CHECK(inbound_.TrySendPriority(std::move(req)))
        << "flashvisor inbound queue overflow";
    return;
  }
  FAB_CHECK(inbound_.TrySend(std::move(req))) << "flashvisor inbound queue overflow";
}

void Flashvisor::ReleaseLock(RangeLock::LockId id) { lock_.Release(id); }

void Flashvisor::RunSchedulingTask(std::function<void(Tick)> done) {
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), config_.scheduling_cost);
  sim_->ScheduleAt(iv.end, [done = std::move(done), end = iv.end]() { done(end); });
}

void Flashvisor::HandleIo(IoRequest req, std::function<void(Tick)> core_done) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t n_groups = std::max<std::uint64_t>(
      1, (req.model_bytes + group_bytes - 1) / group_bytes);
  // Translation + issue occupies the Flashvisor core serially.
  const Tick service =
      config_.request_fixed_cost + static_cast<Tick>(n_groups) * config_.per_group_translate;
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), service);

  sim_->ScheduleAt(iv.end, [this, req = std::move(req), end = iv.end,
                            core_done = std::move(core_done)]() mutable {
    // The core is free for the next queue message once translation is done;
    // the flash operations themselves proceed in the controllers.
    core_done(end);
    if (req.type == IoRequest::Type::kRead) {
      DoRead(std::move(req), end);
    } else {
      DoWrite(std::move(req), end);
    }
  });
}

void Flashvisor::DoRead(IoRequest req, Tick service_end) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t first_lg = req.flash_addr / group_bytes;
  const std::uint64_t n_groups =
      std::max<std::uint64_t>(1, (req.model_bytes + group_bytes - 1) / group_bytes);
  const std::uint64_t last_lg = first_lg + n_groups - 1;

  // Shared state captured for the (possibly deferred) grant continuation.
  const TenantId tenant = req.tenant;
  const Tick acquire_time = sim_->Now();
  auto work = [this, req = std::move(req), first_lg, n_groups,
               group_bytes, acquire_time](RangeLock::LockId lock_id) mutable {
    const Tick start = sim_->Now();
    if (tenants_ != nullptr && start > acquire_time) {
      tenants_->RecordLockWait(req.tenant, start - acquire_time);
    }
    Tick flash_done = start;
    IoStatus status = IoStatus::kOk;
    int primary_ch = -1;  // critical-path channel of the slowest group
    std::vector<std::uint8_t> group_buf(group_bytes);
    for (std::uint64_t i = 0; i < n_groups; ++i) {
      const std::uint64_t lg = first_lg + i;
      const std::uint32_t phys = map_.Lookup(lg);
      const std::uint64_t req_off = i * group_bytes;
      const bool carries_data = req.func_data != nullptr && req_off < req.func_bytes;
      if (phys == MappingTable::kUnmapped) {
        // Never-written logical space reads back as zeros with no device op.
        if (carries_data) {
          const std::uint64_t n = std::min(group_bytes, req.func_bytes - req_off);
          std::memset(static_cast<std::uint8_t*>(req.func_data) + req_off, 0, n);
        }
        continue;
      }
      FlashBackbone::OpResult r =
          backbone_->ReadGroup(start, phys, carries_data ? group_buf.data() : nullptr);
      if (r.ecc_event) {
        ecc_events_.Add();
      }
      if (r.status == IoStatus::kUncorrectable) {
        uncorrectable_reads_.Add();
      }
      status = WorseStatus(status, r.status);
      if (r.done >= flash_done) {
        primary_ch = r.primary_channel;
      }
      flash_done = std::max(flash_done, r.done);
      if (carries_data) {
        const std::uint64_t n = std::min(group_bytes, req.func_bytes - req_off);
        std::memcpy(static_cast<std::uint8_t*>(req.func_data) + req_off, group_buf.data(), n);
      }
    }
    reads_served_.Add();
    const bool hold = req.hold_lock;
    if (hold) {
      FAB_CHECK(req.lock_holder) << "hold_lock without lock_holder";
      req.lock_holder(lock_id);
    }
    // The DDR3L landing is booked at the flash-completion *event* (not at
    // the analytic future time) so memory bandwidth is granted in simulated
    // time order and concurrent kernel compute is not queued behind
    // transfers that have not started yet.
    const double model_bytes = static_cast<double>(req.model_bytes);
    // PDES affinity: park the read's flash dead time on its critical-path
    // channel's shard (no-op in sequential mode).
    sim_->NoteFlashCompletion(primary_ch, flash_done);
    sim_->ScheduleAt(flash_done, [this, model_bytes, cb = std::move(req.on_complete), hold,
                                  lock_id, status]() mutable {
      const Tick done = dram_->BulkAccess(sim_->Now(), model_bytes);
      sim_->ScheduleAt(done, [this, cb = std::move(cb), done, hold, lock_id, status]() {
        if (!hold) {
          lock_.Release(lock_id);
        }
        cb(done, status);
      });
    });
  };

  (void)service_end;
  lock_.Acquire(first_lg, last_lg, LockMode::kRead,
                [work = std::move(work)](RangeLock::LockId id) mutable { work(id); }, tenant);
}

void Flashvisor::DoWrite(IoRequest req, Tick service_end) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t first_lg = req.flash_addr / group_bytes;
  const std::uint64_t n_groups =
      std::max<std::uint64_t>(1, (req.model_bytes + group_bytes - 1) / group_bytes);
  const std::uint64_t last_lg = first_lg + n_groups - 1;

  const TenantId tenant = req.tenant;
  const Tick acquire_time = sim_->Now();
  auto work = [this, req = std::move(req), first_lg, n_groups,
               group_bytes, acquire_time](RangeLock::LockId lock_id) mutable {
    const Tick start = sim_->Now();
    if (tenants_ != nullptr && start > acquire_time) {
      tenants_->RecordLockWait(req.tenant, start - acquire_time);
    }
    // Any foreground reclaim this write triggers stalls *this* tenant; the
    // dragged valid data is attributed to its own owners (docs/QOS.md).
    active_io_tenant_ = req.tenant;
    // Stage the data out of the kernel's data section in DDR3L.
    const Tick staged = dram_->BulkAccess(start, static_cast<double>(req.model_bytes));
    Tick flash_done = staged;
    IoStatus status = IoStatus::kOk;
    int primary_ch = -1;  // critical-path channel of the slowest program
    std::vector<std::uint8_t> group_buf(group_bytes);
    for (std::uint64_t i = 0; i < n_groups; ++i) {
      const std::uint64_t lg = first_lg + i;
      const std::uint64_t req_off = i * group_bytes;
      const bool carries_data = req.func_data != nullptr && req_off < req.func_bytes;
      const void* payload = nullptr;
      if (carries_data) {
        const std::uint64_t n = std::min(group_bytes, req.func_bytes - req_off);
        std::memset(group_buf.data(), 0, group_bytes);
        std::memcpy(group_buf.data(), static_cast<const std::uint8_t*>(req.func_data) + req_off,
                    n);
        payload = group_buf.data();
      }
      // Program first, then map: the mapping only ever points at a group the
      // device accepted (a program-status fail re-allocates transparently).
      Tick prog_done = staged;
      int prog_ch = -1;
      const std::uint32_t phys = ProgramReliable(
          staged, static_cast<std::uint32_t>(lg), payload, &prog_done, &status, &prog_ch);
      const std::uint32_t old = map_.Update(lg, phys);
      if (old != MappingTable::kUnmapped) {
        blocks_.MarkInvalid(BlockGroupOf(old), SlotOf(old));
        if (tenants_ != nullptr) {
          // Overwrite garbage is the overwriter's doing, whoever owned the
          // stale copy: GC pressure is charged to who creates it.
          tenants_->RecordGarbageCreated(req.tenant, 1);
        }
      }
      blocks_.MarkValid(BlockGroupOf(phys), SlotOf(phys));
      SetSlotOwner(phys, req.tenant);
      if (prog_done >= flash_done) {
        primary_ch = prog_ch;
      }
      flash_done = std::max(flash_done, prog_done);
    }
    active_io_tenant_ = kDefaultTenant;
    write_drain_horizon_ = std::max(write_drain_horizon_, flash_done);
    writes_served_.Add();
    // The caller sees completion once the DDR3L write buffer holds the data
    // — but the buffer is finite: acceptance stalls until enough earlier
    // writes have programmed out. The range lock is held until the programs
    // land so overlapping readers see the paper's blocking behaviour.
    const Tick accepted = AdmitWrite(staged, req.model_bytes, flash_done);
    sim_->ScheduleAt(accepted, [cb = std::move(req.on_complete), accepted, status]() {
      cb(accepted, status);
    });
    // PDES affinity: the program's dead time belongs to its critical-path
    // channel's shard (no-op in sequential mode).
    sim_->NoteFlashCompletion(primary_ch, flash_done);
    sim_->ScheduleAt(flash_done, [this, lock_id]() { lock_.Release(lock_id); });
  };

  (void)service_end;
  lock_.Acquire(first_lg, last_lg, LockMode::kWrite,
                [work = std::move(work)](RangeLock::LockId id) mutable { work(id); }, tenant);
}

Tick Flashvisor::AdmitWrite(Tick staged, std::uint64_t bytes, Tick flash_done) {
  Tick accept = staged;
  // Reclaim buffer space from writes whose programs already landed.
  while (!write_buffer_.empty() && write_buffer_.top().first <= accept) {
    write_buffer_used_ -= write_buffer_.top().second;
    write_buffer_.pop();
  }
  const std::uint64_t cap = config_.write_buffer_bytes;
  if (bytes >= cap) {
    // Larger than the whole buffer: the request effectively streams to
    // flash; acceptance tracks its own drain.
    accept = std::max(accept, flash_done);
  } else {
    while (write_buffer_used_ + bytes > cap && !write_buffer_.empty()) {
      accept = std::max(accept, write_buffer_.top().first);
      write_buffer_used_ -= write_buffer_.top().second;
      write_buffer_.pop();
    }
  }
  write_buffer_.push({flash_done, bytes});
  write_buffer_used_ += bytes;
  return accept;
}

void Flashvisor::EnsureActiveBlockGroup(Tick now) {
  while (active_bg_ == BlockManager::kNone) {
    const std::uint64_t bg = blocks_.AllocBlockGroup();
    if (bg == BlockManager::kNone) {
      // Background reclamation fell behind the write stream: reclaim inline
      // (the queued device time is the foreground-GC stall the paper's
      // Storengine design exists to avoid).
      ForegroundReclaim(now);
      continue;
    }
    if (backbone_->IsBadBlockGroup(static_cast<int>(bg))) {
      blocks_.Retire(bg);
      continue;
    }
    active_bg_ = bg;
    active_slot_ = 0;
  }
  if (blocks_.free_count() < config_.gc_low_watermark && gc_trigger_) {
    gc_trigger_(now);
  }
}

void Flashvisor::ForegroundReclaim(Tick now) {
  FAB_CHECK_LT(reclaim_depth_, 8) << "flash capacity exhausted (reclaim cannot make progress)";
  ++reclaim_depth_;
  const std::uint64_t victim = blocks_.PickVictim();
  FAB_CHECK_NE(victim, BlockManager::kNone) << "no sealed block groups to reclaim";
  foreground_reclaims_.Add();
  // Inline reclamation monopolizes the Flashvisor core (the overhead the
  // Storengine split exists to avoid): queued requests wait behind it.
  core_.Occupy(now, 20 * kUs);
  if (tenants_ != nullptr) {
    // The stall lands on whichever tenant's write forced the inline reclaim.
    tenants_->RecordGcStall(active_io_tenant_, 20 * kUs);
  }
  // This runs atomically within one simulation event (Flashvisor's own
  // context), so no kernel mapping can interleave: the range lock is not
  // needed here. Valid groups migrate to the active write point; device time
  // queues naturally in the controllers, stalling subsequent writes.
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  std::vector<std::uint8_t> buf(group_bytes);
  const std::uint32_t data_slots = DataSlotsPerBlockGroup();
  for (std::uint32_t slot = 0; slot < data_slots; ++slot) {
    if (!blocks_.IsValid(victim, slot)) {
      continue;
    }
    const std::uint32_t phys_old = GroupOfSlot(victim, slot);
    const std::uint32_t lg = map_.ReverseLookup(phys_old);
    if (lg == MappingTable::kUnmapped) {
      blocks_.MarkInvalid(victim, slot);
      continue;
    }
    FlashBackbone::OpResult rd = backbone_->ReadGroup(now, phys_old, buf.data());
    if (rd.status == IoStatus::kUncorrectable) {
      uncorrectable_reads_.Add();
    }
    Tick prog_done = rd.done;
    const std::uint32_t phys_new = ProgramReliable(rd.done, lg, buf.data(), &prog_done);
    write_drain_horizon_ = std::max(write_drain_horizon_, prog_done);
    map_.Update(lg, phys_new);
    blocks_.MarkInvalid(victim, slot);
    blocks_.MarkValid(BlockGroupOf(phys_new), SlotOf(phys_new));
    NoteMigration(phys_old, phys_new);
  }
  // The per-package busy horizon already serializes this erase behind the
  // reads above, so issuing it "now" is safe.
  FlashBackbone::OpResult er = backbone_->EraseBlockGroup(now, static_cast<int>(victim));
  if (er.became_bad) {
    blocks_.Retire(victim);
  } else {
    blocks_.OnErased(victim);
  }
  --reclaim_depth_;
}

std::uint32_t Flashvisor::ProgramReliable(Tick now, std::uint32_t oob_tag, const void* payload,
                                          Tick* done_out, IoStatus* status_out,
                                          int* primary_channel) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    Tick alloc_io = now;
    const std::uint32_t phys = AllocatePhysicalGroup(now, &alloc_io);
    FlashBackbone::OpResult r =
        backbone_->ProgramGroup(std::max(now, alloc_io), phys, payload, oob_tag);
    if (primary_channel != nullptr && r.done >= *done_out) {
      *primary_channel = r.primary_channel;
    }
    *done_out = std::max(*done_out, r.done);
    if (r.status != IoStatus::kProgramFailed) {
      if (status_out != nullptr) {
        *status_out = WorseStatus(*status_out, r.status);
      }
      return phys;
    }
    // Program-status fail: abandon the whole active block group — its
    // remaining pages are suspect — and re-program in a fresh one. Slots that
    // already hold valid data stay readable in the retired group until the
    // patrol scrubber migrates them out.
    program_failure_reallocs_.Add();
    RetireActiveBlockGroup();
  }
  FAB_CHECK(false) << "programs keep failing across fresh block groups";
  return 0;
}

void Flashvisor::RetireActiveBlockGroup() {
  FAB_CHECK_NE(active_bg_, BlockManager::kNone);
  blocks_.Retire(active_bg_);
  retired_block_groups_.Add();
  active_bg_ = BlockManager::kNone;
  active_slot_ = 0;
}

std::uint32_t Flashvisor::AllocatePhysicalGroup(Tick now, Tick* io_done) {
  // Lazy seal: once the previous allocation handed out the last data slot,
  // the caller's program for it has been issued by the time the *next*
  // allocation arrives — only then may the footer pages program (NAND blocks
  // must be written strictly in page order).
  if (active_bg_ != BlockManager::kNone && active_slot_ >= DataSlotsPerBlockGroup()) {
    SealActiveBlockGroup(now);
  }
  EnsureActiveBlockGroup(now);
  const std::uint32_t phys = GroupOfSlot(active_bg_, active_slot_);
  ++active_slot_;
  *io_done = now;
  return phys;
}

void Flashvisor::SealActiveBlockGroup(Tick now) {
  const auto& cfg = backbone_->config();
  // Build the block summary: the logical group currently stored in each data
  // slot (kUnmapped for slots already invalidated). Two footer slots hold it.
  const std::uint32_t data_slots = DataSlotsPerBlockGroup();
  std::vector<std::uint32_t> summary(data_slots);
  for (std::uint32_t s = 0; s < data_slots; ++s) {
    summary[s] = map_.ReverseLookup(GroupOfSlot(active_bg_, s));
  }
  std::vector<std::uint8_t> footer(2 * cfg.GroupBytes(), 0);
  std::memcpy(footer.data(), summary.data(),
              std::min<std::uint64_t>(summary.size() * sizeof(std::uint32_t), footer.size()));
  bool failed = false;
  for (std::uint32_t f = 0; f < 2; ++f) {
    const std::uint32_t phys = GroupOfSlot(active_bg_, data_slots + f);
    FlashBackbone::OpResult r =
        backbone_->ProgramGroup(now, phys, footer.data() + f * cfg.GroupBytes(), kOobFooter);
    failed = failed || r.status == IoStatus::kProgramFailed;
    write_drain_horizon_ = std::max(write_drain_horizon_, r.done);
  }
  if (failed) {
    // A block whose footer won't program is not trustworthy as a sealed GC
    // candidate; retire it (the data slots remain readable for the scrubber).
    RetireActiveBlockGroup();
    return;
  }
  blocks_.SealBlockGroup(active_bg_);
  active_bg_ = BlockManager::kNone;
  active_slot_ = 0;
}

void Flashvisor::OnPowerLoss() {
  map_.Clear();
  blocks_.Reset();
  while (!write_buffer_.empty()) {
    write_buffer_.pop();
  }
  write_buffer_used_ = 0;
  active_bg_ = BlockManager::kNone;
  active_slot_ = 0;
  write_drain_horizon_ = 0;
  reclaim_depth_ = 0;
  lock_.Reset();
  inbound_.Reset();
}

Flashvisor::RecoveryReport Flashvisor::RecoverFromFlash(Tick now) {
  const auto& cfg = backbone_->config();
  const std::uint64_t group_bytes = cfg.GroupBytes();
  const std::uint64_t total_bgs = cfg.TotalBlockGroups();
  const std::uint32_t data_slots = DataSlotsPerBlockGroup();
  const std::uint64_t journal_groups = (map_.table_bytes() + group_bytes - 1) / group_bytes;
  RecoveryReport rep;
  rep.done = now;

  // Phase 1: locate the newest *complete* journal. One timed read per block
  // group probes its first page; the OOB records tell us what lives there.
  // Dumps are serialized, so the highest-sequence complete journal wins (a
  // torn dump falls back to its still-intact predecessor).
  for (std::uint64_t bg = 0; bg < total_bgs; ++bg) {
    const std::uint32_t g0 = GroupOfSlot(bg, 0);
    FlashBackbone::OpResult r = backbone_->ReadGroup(now, g0, nullptr);
    rep.done = std::max(rep.done, r.done);
    if (backbone_->Oob(g0).tag != kOobJournal) {
      continue;
    }
    bool complete = true;
    std::uint64_t seq = 0;
    for (std::uint64_t j = 0; j < journal_groups; ++j) {
      const FlashBackbone::OobEntry& e =
          backbone_->Oob(GroupOfSlot(bg, static_cast<std::uint32_t>(j)));
      complete = complete && e.tag == kOobJournal;
      seq = std::max(seq, e.seq);
    }
    if (complete && (!rep.found_journal || seq > rep.journal_seq)) {
      rep.found_journal = true;
      rep.journal_bg = bg;
      rep.journal_seq = seq;
    }
  }

  // Phase 2: restore the snapshot (timed reads of the journal payload).
  map_.Clear();
  if (rep.found_journal) {
    std::vector<std::uint8_t> snapshot(journal_groups * group_bytes);
    for (std::uint64_t j = 0; j < journal_groups; ++j) {
      FlashBackbone::OpResult r =
          backbone_->ReadGroup(now, GroupOfSlot(rep.journal_bg, static_cast<std::uint32_t>(j)),
                               snapshot.data() + j * group_bytes);
      rep.done = std::max(rep.done, r.done);
    }
    snapshot.resize(map_.table_bytes());
    map_.Restore(snapshot);
    rep.restored_entries = map_.mapped_count();
  }

  // Phase 3: replay post-journal data programs in device order. The OOB
  // sequence numbers give the exact program order, so later writes to the
  // same logical group supersede earlier ones just as they did pre-crash.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> replay;  // (seq, phys)
  for (std::uint64_t g = 0; g < cfg.TotalGroups(); ++g) {
    const FlashBackbone::OobEntry& e = backbone_->Oob(g);
    if (e.tag == kOobTorn) {
      ++rep.torn_groups;
      continue;
    }
    if (e.tag < kOobReservedFloor && e.seq > rep.journal_seq) {
      replay.emplace_back(e.seq, static_cast<std::uint32_t>(g));
    }
  }
  std::sort(replay.begin(), replay.end());
  for (const auto& entry : replay) {
    const std::uint32_t phys = entry.second;
    map_.Update(backbone_->Oob(phys).tag, phys);
    ++rep.replayed_groups;
  }

  // Phase 4: integrity check — a mapping is only kept if its target still
  // carries the matching OOB tag (not erased, torn, or re-purposed since the
  // journal). Anything else is reported lost rather than served as garbage.
  for (std::uint64_t lg = 0; lg < map_.entries(); ++lg) {
    const std::uint32_t phys = map_.Lookup(lg);
    if (phys == MappingTable::kUnmapped) {
      continue;
    }
    if (backbone_->Oob(phys).tag != static_cast<std::uint32_t>(lg)) {
      map_.Unmap(lg);
      ++rep.lost_groups;
    }
  }

  // Phase 5: rebuild the block-group pools from device state. Any group with
  // a programmed page cannot be handed out as free (NAND program-order
  // discipline); it becomes a sealed GC candidate instead.
  blocks_.Reset();
  for (std::uint64_t bg = 0; bg < total_bgs; ++bg) {
    if (backbone_->IsBadBlockGroup(static_cast<int>(bg))) {
      FAB_CHECK(blocks_.TakeFree(bg));
      blocks_.Retire(bg);
      retired_block_groups_.Add();
      continue;
    }
    bool programmed = false;
    for (std::uint64_t s = 0; s < cfg.GroupsPerBlockGroup() && !programmed; ++s) {
      programmed = backbone_->Oob(GroupOfSlot(bg, static_cast<std::uint32_t>(s))).tag !=
                   kOobUnwritten;
    }
    if (!programmed) {
      continue;  // stays in the free pool
    }
    FAB_CHECK(blocks_.TakeFree(bg));
    if (rep.found_journal && bg == rep.journal_bg) {
      // The live journal: held out of both pools, exactly as during normal
      // operation (the next dump erases and frees it).
      continue;
    }
    blocks_.SealBlockGroup(bg);
    for (std::uint32_t s = 0; s < data_slots; ++s) {
      if (map_.ReverseLookup(GroupOfSlot(bg, s)) != MappingTable::kUnmapped) {
        blocks_.MarkValid(bg, s);
      }
    }
  }
  return rep;
}

void Flashvisor::SaveState(StateWriter& w) const {
  FAB_CHECK(inbound_.Idle()) << "flashvisor inbound queue not idle at snapshot";
  // Drain a copy of the write-buffer min-heap into ascending (drain tick,
  // bytes) pairs: deterministic order, trivially rebuildable.
  auto pending = write_buffer_;
  w.U64(pending.size());
  while (!pending.empty()) {
    w.U64(pending.top().first);
    w.U64(pending.top().second);
    pending.pop();
  }
  w.U64(write_buffer_used_);
  w.U64(active_bg_);
  w.U32(active_slot_);
  w.U64(logical_alloc_cursor_);
  w.U64(write_drain_horizon_);
  core_.SaveState(w);
  inbound_.SaveState(w);
  reads_served_.SaveState(w);
  writes_served_.SaveState(w);
  ecc_events_.SaveState(w);
  uncorrectable_reads_.SaveState(w);
  program_failure_reallocs_.SaveState(w);
  retired_block_groups_.SaveState(w);
  foreground_reclaims_.SaveState(w);
  // v2: sparse per-physical-group tenant ownership (non-default only,
  // ascending physical group) for GC attribution across resume.
  std::uint64_t owned = 0;
  for (std::uint16_t t : slot_tenant_) {
    if (t != 0) {
      ++owned;
    }
  }
  w.U64(owned);
  for (std::uint32_t i = 0; i < slot_tenant_.size(); ++i) {
    if (slot_tenant_[i] != 0) {
      w.U32(i);
      w.U32(slot_tenant_[i]);
    }
  }
}

void Flashvisor::LoadState(StateReader& r) {
  const std::uint64_t n = r.U64();
  if (!r.ok()) {
    return;
  }
  write_buffer_ = {};
  std::uint64_t used = 0;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const Tick done = r.U64();
    const std::uint64_t bytes = r.U64();
    write_buffer_.emplace(done, bytes);
    used += bytes;
  }
  write_buffer_used_ = r.U64();
  if (r.ok() && used != write_buffer_used_) {
    r.Fail("write-buffer byte accounting mismatch");
    return;
  }
  active_bg_ = r.U64();
  active_slot_ = r.U32();
  logical_alloc_cursor_ = r.U64();
  write_drain_horizon_ = r.U64();
  core_.LoadState(r);
  inbound_.LoadState(r);
  reads_served_.LoadState(r);
  writes_served_.LoadState(r);
  ecc_events_.LoadState(r);
  uncorrectable_reads_.LoadState(r);
  program_failure_reallocs_.LoadState(r);
  retired_block_groups_.LoadState(r);
  foreground_reclaims_.LoadState(r);
  reclaim_depth_ = 0;
  slot_tenant_.clear();
  const std::uint64_t owned = r.U64();
  for (std::uint64_t i = 0; i < owned && r.ok(); ++i) {
    const std::uint32_t phys = r.U32();
    const std::uint32_t t = r.U32();
    if (t > 65535) {
      r.Fail("flashvisor: slot tenant out of range");
      return;
    }
    if (phys >= slot_tenant_.size()) {
      slot_tenant_.resize(phys + 1, 0);
    }
    slot_tenant_[phys] = static_cast<std::uint16_t>(t);
  }
}

void Flashvisor::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/reads_served", &reads_served_);
  reg->RegisterCounter(prefix + "/writes_served", &writes_served_);
  reg->RegisterCounter(prefix + "/ecc_events", &ecc_events_);
  reg->RegisterCounter(prefix + "/uncorrectable_reads", &uncorrectable_reads_);
  reg->RegisterCounter(prefix + "/program_failure_reallocs", &program_failure_reallocs_);
  reg->RegisterCounter(prefix + "/retired_block_groups", &retired_block_groups_);
  reg->RegisterCounter(prefix + "/foreground_reclaims", &foreground_reclaims_);
  reg->RegisterGauge(prefix + "/write_buffer_used_bytes",
                     [this](Tick) { return static_cast<double>(write_buffer_used_); });
  reg->RegisterGauge(prefix + "/core_busy_ns",
                     [this](Tick now) { return static_cast<double>(core_.BusyTime(now)); });
  reg->RegisterGauge(prefix + "/core_utilization",
                     [this](Tick now) { return core_.Utilization(now); });
}

}  // namespace fabacus
