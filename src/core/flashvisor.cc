#include "src/core/flashvisor.h"

#include <algorithm>
#include <cstring>

#include "src/sim/log.h"

namespace fabacus {
namespace {

// Block groups held back from the logical capacity so garbage collection
// always has somewhere to migrate into (standard SSD over-provisioning).
constexpr double kOverProvisionFraction = 0.08;

}  // namespace

Flashvisor::Flashvisor(Simulator* sim, FlashBackbone* backbone, Dram* dram,
                       Scratchpad* scratchpad, const FlashvisorConfig& config)
    : sim_(sim),
      backbone_(backbone),
      dram_(dram),
      config_(config),
      core_("flashvisor"),
      map_(backbone->config(), scratchpad),
      blocks_(backbone->config()),
      inbound_(sim, "flashvisor.inq", config.queue_latency) {
  inbound_.set_sink([this](IoRequest req, MessageQueue<IoRequest>::Done done) {
    HandleIo(std::move(req), std::move(done));
  });
  EnsureActiveBlockGroup(0);
}

std::uint32_t Flashvisor::DataSlotsPerBlockGroup() const {
  // The last two slots of each block group hold the block's mapping summary.
  // (The paper places the summary in the first two pages; NAND program-order
  // discipline in our model requires the footer position — see DESIGN.md.)
  return static_cast<std::uint32_t>(backbone_->config().GroupsPerBlockGroup()) - 2;
}

// A block group is a superblock: block index `bg` across every package.
// Slot s maps to page s / P on package s % P, so consecutive slots stride
// the packages and the write point pipelines die programs.
std::uint64_t Flashvisor::BlockGroupOf(std::uint32_t phys_group) const {
  const auto& cfg = backbone_->config();
  return (phys_group / cfg.packages_per_channel) / cfg.pages_per_block;
}

std::uint32_t Flashvisor::SlotOf(std::uint32_t phys_group) const {
  const auto& cfg = backbone_->config();
  const std::uint32_t package = phys_group % cfg.packages_per_channel;
  const std::uint32_t page =
      static_cast<std::uint32_t>((phys_group / cfg.packages_per_channel) % cfg.pages_per_block);
  return page * cfg.packages_per_channel + package;
}

std::uint32_t Flashvisor::GroupOfSlot(std::uint64_t bg, std::uint32_t slot) const {
  const auto& cfg = backbone_->config();
  const std::uint32_t package = slot % cfg.packages_per_channel;
  const std::uint32_t page = slot / cfg.packages_per_channel;
  return static_cast<std::uint32_t>(
      (bg * cfg.pages_per_block + page) * cfg.packages_per_channel + package);
}

std::uint64_t Flashvisor::LogicalCapacityBytes() const {
  const auto& cfg = backbone_->config();
  const double usable =
      static_cast<double>(cfg.TotalBlockGroups()) * (1.0 - kOverProvisionFraction);
  return static_cast<std::uint64_t>(usable) * DataSlotsPerBlockGroup() * cfg.GroupBytes();
}

std::uint64_t Flashvisor::AllocLogicalExtent(std::uint64_t bytes) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t aligned = (bytes + group_bytes - 1) / group_bytes * group_bytes;
  FAB_CHECK_LE(logical_alloc_cursor_ + aligned, LogicalCapacityBytes())
      << "logical flash space exhausted";
  const std::uint64_t addr = logical_alloc_cursor_;
  logical_alloc_cursor_ += aligned;
  return addr;
}

void Flashvisor::SubmitIo(IoRequest req) {
  FAB_CHECK(req.on_complete) << "IoRequest without completion callback";
  FAB_CHECK_EQ(req.flash_addr % backbone_->config().GroupBytes(), 0u)
      << "flash address must be group aligned";
  FAB_CHECK(inbound_.TrySend(std::move(req))) << "flashvisor inbound queue overflow";
}

void Flashvisor::ReleaseLock(RangeLock::LockId id) { lock_.Release(id); }

void Flashvisor::RunSchedulingTask(std::function<void(Tick)> done) {
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), config_.scheduling_cost);
  sim_->ScheduleAt(iv.end, [done = std::move(done), end = iv.end]() { done(end); });
}

void Flashvisor::HandleIo(IoRequest req, std::function<void(Tick)> core_done) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t n_groups = std::max<std::uint64_t>(
      1, (req.model_bytes + group_bytes - 1) / group_bytes);
  // Translation + issue occupies the Flashvisor core serially.
  const Tick service =
      config_.request_fixed_cost + static_cast<Tick>(n_groups) * config_.per_group_translate;
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), service);

  sim_->ScheduleAt(iv.end, [this, req = std::move(req), end = iv.end,
                            core_done = std::move(core_done)]() mutable {
    // The core is free for the next queue message once translation is done;
    // the flash operations themselves proceed in the controllers.
    core_done(end);
    if (req.type == IoRequest::Type::kRead) {
      DoRead(std::move(req), end);
    } else {
      DoWrite(std::move(req), end);
    }
  });
}

void Flashvisor::DoRead(IoRequest req, Tick service_end) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t first_lg = req.flash_addr / group_bytes;
  const std::uint64_t n_groups =
      std::max<std::uint64_t>(1, (req.model_bytes + group_bytes - 1) / group_bytes);
  const std::uint64_t last_lg = first_lg + n_groups - 1;

  // Shared state captured for the (possibly deferred) grant continuation.
  auto work = [this, req = std::move(req), first_lg, n_groups,
               group_bytes](RangeLock::LockId lock_id) mutable {
    const Tick start = sim_->Now();
    Tick flash_done = start;
    std::vector<std::uint8_t> group_buf(group_bytes);
    for (std::uint64_t i = 0; i < n_groups; ++i) {
      const std::uint64_t lg = first_lg + i;
      const std::uint32_t phys = map_.Lookup(lg);
      const std::uint64_t req_off = i * group_bytes;
      const bool carries_data = req.func_data != nullptr && req_off < req.func_bytes;
      if (phys == MappingTable::kUnmapped) {
        // Never-written logical space reads back as zeros with no device op.
        if (carries_data) {
          const std::uint64_t n = std::min(group_bytes, req.func_bytes - req_off);
          std::memset(static_cast<std::uint8_t*>(req.func_data) + req_off, 0, n);
        }
        continue;
      }
      FlashBackbone::OpResult r =
          backbone_->ReadGroup(start, phys, carries_data ? group_buf.data() : nullptr);
      if (r.ecc_event) {
        ecc_events_.Add();
      }
      flash_done = std::max(flash_done, r.done);
      if (carries_data) {
        const std::uint64_t n = std::min(group_bytes, req.func_bytes - req_off);
        std::memcpy(static_cast<std::uint8_t*>(req.func_data) + req_off, group_buf.data(), n);
      }
    }
    reads_served_.Add();
    const bool hold = req.hold_lock;
    if (hold) {
      FAB_CHECK(req.lock_holder) << "hold_lock without lock_holder";
      req.lock_holder(lock_id);
    }
    // The DDR3L landing is booked at the flash-completion *event* (not at
    // the analytic future time) so memory bandwidth is granted in simulated
    // time order and concurrent kernel compute is not queued behind
    // transfers that have not started yet.
    const double model_bytes = static_cast<double>(req.model_bytes);
    sim_->ScheduleAt(flash_done, [this, model_bytes, cb = std::move(req.on_complete), hold,
                                  lock_id]() mutable {
      const Tick done = dram_->BulkAccess(sim_->Now(), model_bytes);
      sim_->ScheduleAt(done, [this, cb = std::move(cb), done, hold, lock_id]() {
        if (!hold) {
          lock_.Release(lock_id);
        }
        cb(done);
      });
    });
  };

  (void)service_end;
  lock_.Acquire(first_lg, last_lg, LockMode::kRead,
                [work = std::move(work)](RangeLock::LockId id) mutable { work(id); });
}

void Flashvisor::DoWrite(IoRequest req, Tick service_end) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t first_lg = req.flash_addr / group_bytes;
  const std::uint64_t n_groups =
      std::max<std::uint64_t>(1, (req.model_bytes + group_bytes - 1) / group_bytes);
  const std::uint64_t last_lg = first_lg + n_groups - 1;

  auto work = [this, req = std::move(req), first_lg, n_groups,
               group_bytes](RangeLock::LockId lock_id) mutable {
    const Tick start = sim_->Now();
    // Stage the data out of the kernel's data section in DDR3L.
    const Tick staged = dram_->BulkAccess(start, static_cast<double>(req.model_bytes));
    Tick flash_done = staged;
    std::vector<std::uint8_t> group_buf(group_bytes);
    for (std::uint64_t i = 0; i < n_groups; ++i) {
      const std::uint64_t lg = first_lg + i;
      Tick alloc_io = staged;
      const std::uint32_t phys = AllocatePhysicalGroup(staged, &alloc_io);
      const std::uint32_t old = map_.Update(lg, phys);
      if (old != MappingTable::kUnmapped) {
        blocks_.MarkInvalid(BlockGroupOf(old), SlotOf(old));
      }
      blocks_.MarkValid(BlockGroupOf(phys), SlotOf(phys));
      const std::uint64_t req_off = i * group_bytes;
      const bool carries_data = req.func_data != nullptr && req_off < req.func_bytes;
      const void* payload = nullptr;
      if (carries_data) {
        const std::uint64_t n = std::min(group_bytes, req.func_bytes - req_off);
        std::memset(group_buf.data(), 0, group_bytes);
        std::memcpy(group_buf.data(), static_cast<const std::uint8_t*>(req.func_data) + req_off,
                    n);
        payload = group_buf.data();
      }
      FlashBackbone::OpResult r =
          backbone_->ProgramGroup(std::max(staged, alloc_io), phys, payload);
      flash_done = std::max(flash_done, r.done);
    }
    write_drain_horizon_ = std::max(write_drain_horizon_, flash_done);
    writes_served_.Add();
    // The caller sees completion once the DDR3L write buffer holds the data
    // — but the buffer is finite: acceptance stalls until enough earlier
    // writes have programmed out. The range lock is held until the programs
    // land so overlapping readers see the paper's blocking behaviour.
    const Tick accepted = AdmitWrite(staged, req.model_bytes, flash_done);
    sim_->ScheduleAt(accepted,
                     [cb = std::move(req.on_complete), accepted]() { cb(accepted); });
    sim_->ScheduleAt(flash_done, [this, lock_id]() { lock_.Release(lock_id); });
  };

  (void)service_end;
  lock_.Acquire(first_lg, last_lg, LockMode::kWrite,
                [work = std::move(work)](RangeLock::LockId id) mutable { work(id); });
}

Tick Flashvisor::AdmitWrite(Tick staged, std::uint64_t bytes, Tick flash_done) {
  Tick accept = staged;
  // Reclaim buffer space from writes whose programs already landed.
  while (!write_buffer_.empty() && write_buffer_.top().first <= accept) {
    write_buffer_used_ -= write_buffer_.top().second;
    write_buffer_.pop();
  }
  const std::uint64_t cap = config_.write_buffer_bytes;
  if (bytes >= cap) {
    // Larger than the whole buffer: the request effectively streams to
    // flash; acceptance tracks its own drain.
    accept = std::max(accept, flash_done);
  } else {
    while (write_buffer_used_ + bytes > cap && !write_buffer_.empty()) {
      accept = std::max(accept, write_buffer_.top().first);
      write_buffer_used_ -= write_buffer_.top().second;
      write_buffer_.pop();
    }
  }
  write_buffer_.push({flash_done, bytes});
  write_buffer_used_ += bytes;
  return accept;
}

void Flashvisor::EnsureActiveBlockGroup(Tick now) {
  while (active_bg_ == BlockManager::kNone) {
    const std::uint64_t bg = blocks_.AllocBlockGroup();
    if (bg == BlockManager::kNone) {
      // Background reclamation fell behind the write stream: reclaim inline
      // (the queued device time is the foreground-GC stall the paper's
      // Storengine design exists to avoid).
      ForegroundReclaim(now);
      continue;
    }
    if (backbone_->IsBadBlockGroup(static_cast<int>(bg))) {
      blocks_.Retire(bg);
      continue;
    }
    active_bg_ = bg;
    active_slot_ = 0;
  }
  if (blocks_.free_count() < config_.gc_low_watermark && gc_trigger_) {
    gc_trigger_(now);
  }
}

void Flashvisor::ForegroundReclaim(Tick now) {
  FAB_CHECK_LT(reclaim_depth_, 8) << "flash capacity exhausted (reclaim cannot make progress)";
  ++reclaim_depth_;
  const std::uint64_t victim = blocks_.PickVictim();
  FAB_CHECK_NE(victim, BlockManager::kNone) << "no sealed block groups to reclaim";
  foreground_reclaims_.Add();
  // Inline reclamation monopolizes the Flashvisor core (the overhead the
  // Storengine split exists to avoid): queued requests wait behind it.
  core_.Occupy(now, 20 * kUs);
  // This runs atomically within one simulation event (Flashvisor's own
  // context), so no kernel mapping can interleave: the range lock is not
  // needed here. Valid groups migrate to the active write point; device time
  // queues naturally in the controllers, stalling subsequent writes.
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  std::vector<std::uint8_t> buf(group_bytes);
  const std::uint32_t data_slots = DataSlotsPerBlockGroup();
  for (std::uint32_t slot = 0; slot < data_slots; ++slot) {
    if (!blocks_.IsValid(victim, slot)) {
      continue;
    }
    const std::uint32_t phys_old = GroupOfSlot(victim, slot);
    const std::uint32_t lg = map_.ReverseLookup(phys_old);
    if (lg == MappingTable::kUnmapped) {
      blocks_.MarkInvalid(victim, slot);
      continue;
    }
    FlashBackbone::OpResult rd = backbone_->ReadGroup(now, phys_old, buf.data());
    Tick alloc_io = rd.done;
    const std::uint32_t phys_new = AllocatePhysicalGroup(rd.done, &alloc_io);
    FlashBackbone::OpResult pr =
        backbone_->ProgramGroup(std::max(rd.done, alloc_io), phys_new, buf.data());
    write_drain_horizon_ = std::max(write_drain_horizon_, pr.done);
    map_.Update(lg, phys_new);
    blocks_.MarkInvalid(victim, slot);
    blocks_.MarkValid(BlockGroupOf(phys_new), SlotOf(phys_new));
  }
  // The per-package busy horizon already serializes this erase behind the
  // reads above, so issuing it "now" is safe.
  FlashBackbone::OpResult er = backbone_->EraseBlockGroup(now, static_cast<int>(victim));
  if (er.became_bad) {
    blocks_.Retire(victim);
  } else {
    blocks_.OnErased(victim);
  }
  --reclaim_depth_;
}

std::uint32_t Flashvisor::AllocatePhysicalGroup(Tick now, Tick* io_done) {
  // Lazy seal: once the previous allocation handed out the last data slot,
  // the caller's program for it has been issued by the time the *next*
  // allocation arrives — only then may the footer pages program (NAND blocks
  // must be written strictly in page order).
  if (active_bg_ != BlockManager::kNone && active_slot_ >= DataSlotsPerBlockGroup()) {
    SealActiveBlockGroup(now);
  }
  EnsureActiveBlockGroup(now);
  const std::uint32_t phys = GroupOfSlot(active_bg_, active_slot_);
  ++active_slot_;
  *io_done = now;
  return phys;
}

void Flashvisor::SealActiveBlockGroup(Tick now) {
  const auto& cfg = backbone_->config();
  // Build the block summary: the logical group currently stored in each data
  // slot (kUnmapped for slots already invalidated). Two footer slots hold it.
  const std::uint32_t data_slots = DataSlotsPerBlockGroup();
  std::vector<std::uint32_t> summary(data_slots);
  for (std::uint32_t s = 0; s < data_slots; ++s) {
    summary[s] = map_.ReverseLookup(GroupOfSlot(active_bg_, s));
  }
  std::vector<std::uint8_t> footer(2 * cfg.GroupBytes(), 0);
  std::memcpy(footer.data(), summary.data(),
              std::min<std::uint64_t>(summary.size() * sizeof(std::uint32_t), footer.size()));
  for (std::uint32_t f = 0; f < 2; ++f) {
    const std::uint32_t phys = GroupOfSlot(active_bg_, data_slots + f);
    FlashBackbone::OpResult r =
        backbone_->ProgramGroup(now, phys, footer.data() + f * cfg.GroupBytes());
    write_drain_horizon_ = std::max(write_drain_horizon_, r.done);
  }
  blocks_.SealBlockGroup(active_bg_);
  active_bg_ = BlockManager::kNone;
  active_slot_ = 0;
}

void Flashvisor::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/reads_served", &reads_served_);
  reg->RegisterCounter(prefix + "/writes_served", &writes_served_);
  reg->RegisterCounter(prefix + "/ecc_events", &ecc_events_);
  reg->RegisterCounter(prefix + "/foreground_reclaims", &foreground_reclaims_);
  reg->RegisterGauge(prefix + "/write_buffer_used_bytes",
                     [this](Tick) { return static_cast<double>(write_buffer_used_); });
  reg->RegisterGauge(prefix + "/core_busy_ns",
                     [this](Tick now) { return static_cast<double>(core_.BusyTime(now)); });
  reg->RegisterGauge(prefix + "/core_utilization",
                     [this](Tick now) { return core_.Utilization(now); });
}

}  // namespace fabacus
