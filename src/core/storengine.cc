#include "src/core/storengine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/sim/log.h"

namespace fabacus {

Storengine::Storengine(Simulator* sim, Flashvisor* flashvisor, const StorengineConfig& config)
    : sim_(sim), fv_(flashvisor), config_(config), core_("storengine") {}

void Storengine::Start() {
  running_ = true;
  // A maintenance pass interrupted by a crash never completes its
  // continuation; restart with a clean slate.
  maintenance_in_progress_ = false;
  fv_->set_gc_trigger([this](Tick) {
    if (running_ && !maintenance_in_progress_ && GcCanReclaim()) {
      RunGcPass([](Tick) {});
    }
  });
  if (config_.enable_background_gc) {
    ScheduleNextGc();
  }
  if (config_.enable_journaling) {
    ScheduleNextJournal();
  }
  if (config_.enable_scrub) {
    ScheduleNextScrub();
  }
}

void Storengine::ScheduleNextGc() {
  if (!running_) {
    return;
  }
  sim_->ScheduleDaemon(config_.gc_interval, [this, epoch = epoch_]() {
    if (epoch != epoch_ || !running_) {
      return;  // stopped (or stopped and restarted) since this was scheduled
    }
    if (!maintenance_in_progress_ && fv_->blocks().free_count() < config_.gc_high_watermark &&
        GcCanReclaim()) {
      RunGcPass([this](Tick) { ScheduleNextGc(); });
    } else {
      ScheduleNextGc();
    }
  });
}

void Storengine::ScheduleNextJournal() {
  if (!running_) {
    return;
  }
  sim_->ScheduleDaemon(config_.journal_interval, [this, epoch = epoch_]() {
    if (epoch != epoch_ || !running_) {
      return;
    }
    RunJournalDump([this](Tick) { ScheduleNextJournal(); });
  });
}

void Storengine::ScheduleNextScrub() {
  if (!running_) {
    return;
  }
  sim_->ScheduleDaemon(config_.scrub_interval, [this, epoch = epoch_]() {
    if (epoch != epoch_ || !running_) {
      return;
    }
    if (!maintenance_in_progress_) {
      RunScrubPass([this](Tick) { ScheduleNextScrub(); });
    } else {
      ScheduleNextScrub();
    }
  });
}

void Storengine::RunGcPass(std::function<void(Tick)> done) {
  FAB_CHECK(!maintenance_in_progress_) << "overlapping maintenance passes";
  const std::uint64_t victim = fv_->blocks().PickVictim();
  if (victim == BlockManager::kNone) {
    done(sim_->Now());
    return;
  }
  maintenance_in_progress_ = true;
  gc_passes_.Add();
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), config_.pass_fixed_cpu);
  // Trace the whole pass (orchestration + migrations + erase) on GC track 0.
  auto traced = [this, pass_start = iv.start, done = std::move(done)](Tick t) mutable {
    if (trace_ != nullptr) {
      trace_->Add(TraceTag::kGc, pass_start, t, 1.0, /*track=*/0);
    }
    done(t);
  };
  // Walk the victim's data slots sequentially, migrating each valid group.
  sim_->ScheduleAt(iv.end, [this, victim, done = std::move(traced)]() mutable {
    MigrateRange(victim, 0, sim_->Now(), &groups_migrated_,
                 [this, victim, done = std::move(done)](Tick barrier) mutable {
                   FinishVictim(victim, barrier, std::move(done));
                 });
  });
}

bool Storengine::GcCanReclaim() const {
  const std::uint32_t data_slots = fv_->DataSlotsPerBlockGroup();
  for (const std::uint64_t bg : fv_->blocks().used()) {
    if (fv_->blocks().ValidCount(bg) < data_slots) {
      return true;
    }
  }
  return false;
}

std::uint64_t Storengine::PickScrubVictim(bool* retired_mode) const {
  // Priority 1: data stranded in retired block groups (program-failure
  // abandonment leaves valid groups behind in a block that can never erase).
  const std::uint64_t total = fv_->blocks().total_block_groups();
  for (std::uint64_t bg = 0; bg < total; ++bg) {
    if (fv_->blocks().IsRetired(bg) && fv_->blocks().ValidCount(bg) > 0) {
      *retired_mode = true;
      return bg;
    }
  }
  // Priority 2: sealed block groups past the wear/error refresh thresholds.
  const auto& cfg = fv_->backbone().config();
  const auto wear_limit = static_cast<std::uint64_t>(
      config_.scrub_wear_ratio * static_cast<double>(cfg.endurance_cycles));
  for (const std::uint64_t bg : fv_->blocks().used()) {
    const int b = static_cast<int>(bg);
    if (fv_->backbone().BlockGroupWear(b) >= wear_limit ||
        fv_->backbone().BlockGroupErrors(b) >= config_.scrub_error_threshold) {
      *retired_mode = false;
      return bg;
    }
  }
  *retired_mode = false;
  return BlockManager::kNone;
}

void Storengine::RunScrubPass(std::function<void(Tick)> done) {
  FAB_CHECK(!maintenance_in_progress_) << "overlapping maintenance passes";
  bool retired_mode = false;
  const std::uint64_t victim = PickScrubVictim(&retired_mode);
  if (victim == BlockManager::kNone) {
    done(sim_->Now());
    return;
  }
  maintenance_in_progress_ = true;
  scrub_passes_.Add();
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), config_.pass_fixed_cpu);
  // Scrub activity shares the GC trace tag on its own track (2).
  auto traced = [this, pass_start = iv.start, done = std::move(done)](Tick t) mutable {
    if (trace_ != nullptr) {
      trace_->Add(TraceTag::kGc, pass_start, t, 1.0, /*track=*/2);
    }
    done(t);
  };
  if (!retired_mode) {
    // Pull the victim out of the GC candidate pool; it is erased and freed
    // (or retired) when the migration finishes, like a GC victim.
    FAB_CHECK(fv_->blocks().TakeUsed(victim));
  }
  sim_->ScheduleAt(iv.end, [this, victim, retired_mode, done = std::move(traced)]() mutable {
    MigrateRange(victim, 0, sim_->Now(), &scrub_migrations_,
                 [this, victim, retired_mode, done = std::move(done)](Tick barrier) mutable {
                   if (retired_mode) {
                     // The block group stays retired; its data now lives
                     // elsewhere and nothing references it again.
                     maintenance_in_progress_ = false;
                     done(barrier);
                     return;
                   }
                   FinishVictim(victim, barrier, std::move(done));
                 });
  });
}

void Storengine::MigrateRange(std::uint64_t victim, std::uint32_t slot, Tick barrier,
                              Counter* migrated, std::function<void(Tick)> finish) {
  const std::uint32_t data_slots = fv_->DataSlotsPerBlockGroup();
  if (slot >= data_slots) {
    finish(barrier);
    return;
  }
  if (!fv_->blocks().IsValid(victim, slot)) {
    MigrateRange(victim, slot + 1, barrier, migrated, std::move(finish));
    return;
  }
  const std::uint32_t phys_old = fv_->GroupOfSlot(victim, slot);
  const std::uint32_t lg = fv_->mapping().ReverseLookup(phys_old);
  if (lg == MappingTable::kUnmapped) {
    // Stale validity (should not happen; defensive).
    fv_->blocks().MarkInvalid(victim, slot);
    MigrateRange(victim, slot + 1, barrier, migrated, std::move(finish));
    return;
  }
  // Lock the logical group so in-flight kernel mappings can't race the move
  // (paper: "locking the address ranges that Storengine generates ... for the
  // block reclaim is necessary").
  fv_->range_lock().Acquire(
      lg, lg, LockMode::kWrite,
      [this, victim, slot, phys_old, lg, barrier, migrated,
       finish = std::move(finish)](RangeLock::LockId lock_id) mutable {
        const Tick now = std::max(sim_->Now(), barrier);
        // Re-validate after a potential wait: the kernel may have rewritten
        // the logical group while we queued, invalidating this slot.
        if (fv_->mapping().Lookup(lg) != phys_old || !fv_->blocks().IsValid(victim, slot)) {
          fv_->range_lock().Release(lock_id);
          MigrateRange(victim, slot + 1, barrier, migrated, std::move(finish));
          return;
        }
        const SerialCore::Interval iv = core_.Occupy(now, config_.per_group_cpu);
        const std::uint64_t group_bytes = fv_->backbone().config().GroupBytes();
        std::vector<std::uint8_t> buf(group_bytes);
        FlashBackbone::OpResult rd = fv_->backbone().ReadGroup(iv.end, phys_old, buf.data());
        Tick prog_done = rd.done;
        const std::uint32_t phys_new = fv_->ProgramReliable(rd.done, lg, buf.data(), &prog_done);
        fv_->mapping().Update(lg, phys_new);
        fv_->blocks().MarkInvalid(victim, slot);
        fv_->blocks().MarkValid(fv_->BlockGroupOf(phys_new), fv_->SlotOf(phys_new));
        fv_->NoteMigration(phys_old, phys_new);
        migrated->Add();
        const Tick slot_done = prog_done;
        sim_->ScheduleAt(slot_done, [this, victim, slot, slot_done, lock_id, migrated,
                                     finish = std::move(finish)]() mutable {
          fv_->range_lock().Release(lock_id);
          MigrateRange(victim, slot + 1, slot_done, migrated, std::move(finish));
        });
      });
}

void Storengine::FinishVictim(std::uint64_t victim, Tick barrier,
                              std::function<void(Tick)> done) {
  FlashBackbone::OpResult er =
      fv_->backbone().EraseBlockGroup(barrier, static_cast<int>(victim));
  sim_->ScheduleAt(er.done, [this, victim, became_bad = er.became_bad, done = std::move(done),
                             when = er.done]() {
    if (became_bad) {
      fv_->blocks().Retire(victim);
    } else {
      fv_->blocks().OnErased(victim);
      blocks_reclaimed_.Add();
    }
    maintenance_in_progress_ = false;
    done(when);
  });
}

void Storengine::RunJournalDump(std::function<void(Tick)> done) {
  // Snapshot the scratchpad-resident mapping table atomically, then stream it
  // into a dedicated journal block group.
  std::vector<std::uint8_t> snapshot;
  fv_->mapping().Snapshot(&snapshot);
  const auto& cfg = fv_->backbone().config();
  const std::uint64_t group_bytes = cfg.GroupBytes();
  const std::uint64_t groups_needed = (snapshot.size() + group_bytes - 1) / group_bytes;
  FAB_CHECK_LE(groups_needed, fv_->DataSlotsPerBlockGroup())
      << "mapping snapshot larger than one journal block group";

  const std::uint64_t bg = fv_->blocks().AllocBlockGroup();
  if (bg == BlockManager::kNone) {
    // No room for a journal this round; try again next interval.
    done(sim_->Now());
    return;
  }
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), config_.pass_fixed_cpu);
  // Trace the dump (orchestration + programs + old-journal erase) on track 1.
  auto traced = [this, dump_start = iv.start, done = std::move(done)](Tick t) mutable {
    if (trace_ != nullptr) {
      trace_->Add(TraceTag::kGc, dump_start, t, 1.0, /*track=*/1);
    }
    done(t);
  };
  done = std::move(traced);
  Tick flash_done = iv.end;
  bool failed = false;
  std::vector<std::uint8_t> buf(group_bytes, 0);
  for (std::uint64_t g = 0; g < groups_needed; ++g) {
    const std::uint64_t off = g * group_bytes;
    const std::uint64_t n = std::min<std::uint64_t>(group_bytes, snapshot.size() - off);
    std::fill(buf.begin(), buf.end(), 0);
    std::copy_n(snapshot.begin() + static_cast<std::ptrdiff_t>(off), n, buf.begin());
    FlashBackbone::OpResult r = fv_->backbone().ProgramGroup(
        flash_done, fv_->GroupOfSlot(bg, static_cast<std::uint32_t>(g)), buf.data(),
        kOobJournal);
    failed = failed || r.status == IoStatus::kProgramFailed;
    flash_done = std::max(flash_done, r.done);
  }
  if (failed) {
    // Incomplete journal: abandon the block group (recovery would reject it
    // anyway — the OOB record of the failed group is not a journal tag) and
    // keep the previous dump as the durable mapping.
    fv_->blocks().Retire(bg);
    journal_aborts_.Add();
    sim_->ScheduleAt(flash_done, [done = std::move(done), flash_done]() { done(flash_done); });
    return;
  }
  journal_dumps_.Add();
  const std::uint64_t old_journal = prev_journal_bg_;
  prev_journal_bg_ = bg;
  sim_->ScheduleAt(flash_done, [this, old_journal, done = std::move(done), flash_done]() {
    if (old_journal != BlockManager::kNone) {
      FlashBackbone::OpResult er =
          fv_->backbone().EraseBlockGroup(flash_done, static_cast<int>(old_journal));
      sim_->ScheduleAt(er.done, [this, old_journal, became_bad = er.became_bad,
                                 done = std::move(done), when = er.done]() {
        if (became_bad) {
          fv_->blocks().Retire(old_journal);
        } else {
          fv_->blocks().OnErased(old_journal);
        }
        done(when);
      });
    } else {
      done(flash_done);
    }
  });
}

void Storengine::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/gc_passes", &gc_passes_);
  reg->RegisterCounter(prefix + "/groups_migrated", &groups_migrated_);
  reg->RegisterCounter(prefix + "/blocks_reclaimed", &blocks_reclaimed_);
  reg->RegisterCounter(prefix + "/journal_dumps", &journal_dumps_);
  reg->RegisterCounter(prefix + "/journal_aborts", &journal_aborts_);
  reg->RegisterCounter(prefix + "/scrub_passes", &scrub_passes_);
  reg->RegisterCounter(prefix + "/scrub_migrations", &scrub_migrations_);
  reg->RegisterGauge(prefix + "/core_busy_ns",
                     [this](Tick now) { return static_cast<double>(core_.BusyTime(now)); });
  reg->RegisterGauge(prefix + "/core_utilization",
                     [this](Tick now) { return core_.Utilization(now); });
}

}  // namespace fabacus
