#include "src/core/storengine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/sim/log.h"

namespace fabacus {

Storengine::Storengine(Simulator* sim, Flashvisor* flashvisor, const StorengineConfig& config)
    : sim_(sim), fv_(flashvisor), config_(config), core_("storengine") {}

void Storengine::Start() {
  running_ = true;
  fv_->set_gc_trigger([this](Tick) {
    if (!gc_in_progress_) {
      RunGcPass([](Tick) {});
    }
  });
  if (config_.enable_background_gc) {
    ScheduleNextGc();
  }
  if (config_.enable_journaling) {
    ScheduleNextJournal();
  }
}

void Storengine::ScheduleNextGc() {
  if (!running_) {
    return;
  }
  sim_->ScheduleDaemon(config_.gc_interval, [this]() {
    if (running_ && !gc_in_progress_ &&
        fv_->blocks().free_count() < config_.gc_high_watermark) {
      RunGcPass([this](Tick) { ScheduleNextGc(); });
    } else {
      ScheduleNextGc();
    }
  });
}

void Storengine::ScheduleNextJournal() {
  if (!running_) {
    return;
  }
  sim_->ScheduleDaemon(config_.journal_interval, [this]() {
    if (!running_) {
      return;
    }
    RunJournalDump([this](Tick) { ScheduleNextJournal(); });
  });
}

void Storengine::RunGcPass(std::function<void(Tick)> done) {
  FAB_CHECK(!gc_in_progress_) << "overlapping GC passes";
  const std::uint64_t victim = fv_->blocks().PickVictim();
  if (victim == BlockManager::kNone) {
    done(sim_->Now());
    return;
  }
  gc_in_progress_ = true;
  gc_passes_.Add();
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), config_.pass_fixed_cpu);
  // Trace the whole pass (orchestration + migrations + erase) on GC track 0.
  auto traced = [this, pass_start = iv.start, done = std::move(done)](Tick t) mutable {
    if (trace_ != nullptr) {
      trace_->Add(TraceTag::kGc, pass_start, t, 1.0, /*track=*/0);
    }
    done(t);
  };
  // Walk the victim's data slots sequentially, migrating each valid group.
  sim_->ScheduleAt(iv.end, [this, victim, done = std::move(traced)]() mutable {
    MigrateSlot(victim, 0, sim_->Now(), std::move(done));
  });
}

void Storengine::MigrateSlot(std::uint64_t victim, std::uint32_t slot, Tick barrier,
                             std::function<void(Tick)> done) {
  const std::uint32_t data_slots = fv_->DataSlotsPerBlockGroup();
  if (slot >= data_slots) {
    FinishVictim(victim, barrier, std::move(done));
    return;
  }
  if (!fv_->blocks().IsValid(victim, slot)) {
    MigrateSlot(victim, slot + 1, barrier, std::move(done));
    return;
  }
  const std::uint32_t phys_old = fv_->GroupOfSlot(victim, slot);
  const std::uint32_t lg = fv_->mapping().ReverseLookup(phys_old);
  if (lg == MappingTable::kUnmapped) {
    // Stale validity (should not happen; defensive).
    fv_->blocks().MarkInvalid(victim, slot);
    MigrateSlot(victim, slot + 1, barrier, std::move(done));
    return;
  }
  // Lock the logical group so in-flight kernel mappings can't race the move
  // (paper: "locking the address ranges that Storengine generates ... for the
  // block reclaim is necessary").
  fv_->range_lock().Acquire(
      lg, lg, LockMode::kWrite,
      [this, victim, slot, phys_old, lg, barrier,
       done = std::move(done)](RangeLock::LockId lock_id) mutable {
        const Tick now = std::max(sim_->Now(), barrier);
        // Re-validate after a potential wait: the kernel may have rewritten
        // the logical group while we queued, invalidating this slot.
        if (fv_->mapping().Lookup(lg) != phys_old || !fv_->blocks().IsValid(victim, slot)) {
          fv_->range_lock().Release(lock_id);
          MigrateSlot(victim, slot + 1, barrier, std::move(done));
          return;
        }
        const SerialCore::Interval iv = core_.Occupy(now, config_.per_group_cpu);
        const std::uint64_t group_bytes = fv_->backbone().config().GroupBytes();
        std::vector<std::uint8_t> buf(group_bytes);
        FlashBackbone::OpResult rd = fv_->backbone().ReadGroup(iv.end, phys_old, buf.data());
        Tick alloc_io = rd.done;
        const std::uint32_t phys_new = fv_->AllocatePhysicalGroup(rd.done, &alloc_io);
        FlashBackbone::OpResult pr = fv_->backbone().ProgramGroup(
            std::max(rd.done, alloc_io), phys_new, buf.data());
        fv_->mapping().Update(lg, phys_new);
        fv_->blocks().MarkInvalid(victim, slot);
        fv_->blocks().MarkValid(fv_->BlockGroupOf(phys_new), fv_->SlotOf(phys_new));
        groups_migrated_.Add();
        const Tick slot_done = pr.done;
        sim_->ScheduleAt(slot_done, [this, victim, slot, slot_done, lock_id,
                                     done = std::move(done)]() mutable {
          fv_->range_lock().Release(lock_id);
          MigrateSlot(victim, slot + 1, slot_done, std::move(done));
        });
      });
}

void Storengine::FinishVictim(std::uint64_t victim, Tick barrier,
                              std::function<void(Tick)> done) {
  FlashBackbone::OpResult er =
      fv_->backbone().EraseBlockGroup(barrier, static_cast<int>(victim));
  sim_->ScheduleAt(er.done, [this, victim, became_bad = er.became_bad, done = std::move(done),
                             when = er.done]() {
    if (became_bad) {
      fv_->blocks().Retire(victim);
    } else {
      fv_->blocks().OnErased(victim);
      blocks_reclaimed_.Add();
    }
    gc_in_progress_ = false;
    done(when);
  });
}

void Storengine::RunJournalDump(std::function<void(Tick)> done) {
  // Snapshot the scratchpad-resident mapping table atomically, then stream it
  // into a dedicated journal block group.
  std::vector<std::uint8_t> snapshot;
  fv_->mapping().Snapshot(&snapshot);
  const auto& cfg = fv_->backbone().config();
  const std::uint64_t group_bytes = cfg.GroupBytes();
  const std::uint64_t groups_needed = (snapshot.size() + group_bytes - 1) / group_bytes;
  FAB_CHECK_LE(groups_needed, fv_->DataSlotsPerBlockGroup())
      << "mapping snapshot larger than one journal block group";

  const std::uint64_t bg = fv_->blocks().AllocBlockGroup();
  if (bg == BlockManager::kNone) {
    // No room for a journal this round; try again next interval.
    done(sim_->Now());
    return;
  }
  const SerialCore::Interval iv = core_.Occupy(sim_->Now(), config_.pass_fixed_cpu);
  // Trace the dump (orchestration + programs + old-journal erase) on track 1.
  auto traced = [this, dump_start = iv.start, done = std::move(done)](Tick t) mutable {
    if (trace_ != nullptr) {
      trace_->Add(TraceTag::kGc, dump_start, t, 1.0, /*track=*/1);
    }
    done(t);
  };
  done = std::move(traced);
  Tick flash_done = iv.end;
  std::vector<std::uint8_t> buf(group_bytes, 0);
  for (std::uint64_t g = 0; g < groups_needed; ++g) {
    const std::uint64_t off = g * group_bytes;
    const std::uint64_t n = std::min<std::uint64_t>(group_bytes, snapshot.size() - off);
    std::fill(buf.begin(), buf.end(), 0);
    std::copy_n(snapshot.begin() + static_cast<std::ptrdiff_t>(off), n, buf.begin());
    FlashBackbone::OpResult r = fv_->backbone().ProgramGroup(
        flash_done, fv_->GroupOfSlot(bg, static_cast<std::uint32_t>(g)), buf.data());
    flash_done = std::max(flash_done, r.done);
  }
  journal_dumps_.Add();
  const std::uint64_t old_journal = prev_journal_bg_;
  prev_journal_bg_ = bg;
  sim_->ScheduleAt(flash_done, [this, old_journal, done = std::move(done), flash_done]() {
    if (old_journal != BlockManager::kNone) {
      FlashBackbone::OpResult er =
          fv_->backbone().EraseBlockGroup(flash_done, static_cast<int>(old_journal));
      sim_->ScheduleAt(er.done, [this, old_journal, became_bad = er.became_bad,
                                 done = std::move(done), when = er.done]() {
        if (became_bad) {
          fv_->blocks().Retire(old_journal);
        } else {
          fv_->blocks().OnErased(old_journal);
        }
        done(when);
      });
    } else {
      done(flash_done);
    }
  });
}

void Storengine::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/gc_passes", &gc_passes_);
  reg->RegisterCounter(prefix + "/groups_migrated", &groups_migrated_);
  reg->RegisterCounter(prefix + "/blocks_reclaimed", &blocks_reclaimed_);
  reg->RegisterCounter(prefix + "/journal_dumps", &journal_dumps_);
  reg->RegisterGauge(prefix + "/core_busy_ns",
                     [this](Tick now) { return static_cast<double>(core_.BusyTime(now)); });
  reg->RegisterGauge(prefix + "/core_utilization",
                     [this](Tick now) { return core_.Utilization(now); });
}

}  // namespace fabacus
