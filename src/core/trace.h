// Tagged interval trace of a run. Every component of interest records its
// active intervals; benches derive the Fig-15 time series (FU utilization,
// power) and the energy decomposition from the same trace, so the numbers in
// different figures are self-consistent.
//
// Intervals additionally carry a `track` — the instance of the tagged
// component (LWP id, flash channel, ...). Aggregations (UnionTime, TotalTime,
// Series) ignore it; the Chrome-trace exporter uses it to lay each LWP /
// flash channel / control-core out on its own timeline row.
#ifndef SRC_CORE_TRACE_H_
#define SRC_CORE_TRACE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace fabacus {

enum class TraceTag : int {
  kLwpCompute = 0,   // weight = average FUs busy during the interval
  kFlashOp,          // flash backbone array/bus activity (whole device op)
  kHostStack,        // host CPU driving the storage stack / memory copies
  kSsdOp,            // external NVMe device activity
  kPcieXfer,         // PCIe DMA
  kSchedule,         // Flashvisor scheduling / translation work
  kGc,               // Storengine background work (track 0 = GC, 1 = journal)
  kFlashChan,        // per-channel NV-DDR2 bus activity (track = channel)
};

// Human-readable tag name (Chrome-trace process names, report JSON keys).
const char* TraceTagName(TraceTag tag);

constexpr unsigned TraceTagBit(TraceTag tag) { return 1u << static_cast<int>(tag); }

// Record everything (Chrome-trace export, Fig-14/15 series).
inline constexpr unsigned kAllTraceTags = 0xffffffffu;
// The minimal tag set the energy models integrate over (UnionTime of flash /
// PCIe / host-stack / SSD activity). Recording only these keeps run results —
// energy decomposition included — bit-identical while skipping the
// high-volume per-screen and per-bus-beat intervals, which are pure overhead
// in throughput benches (see FlashAbacusConfig::record_full_trace).
inline constexpr unsigned kEnergyTraceTags =
    TraceTagBit(TraceTag::kFlashOp) | TraceTagBit(TraceTag::kPcieXfer) |
    TraceTagBit(TraceTag::kHostStack) | TraceTagBit(TraceTag::kSsdOp);

struct TaggedInterval {
  Tick start;
  Tick end;
  TraceTag tag;
  double weight;  // tag-specific magnitude (e.g. FUs busy); 1.0 by default
  int track;      // component instance within the tag (LWP id, channel, ...)
};

class RunTrace : public Snapshottable {
 public:
  void Add(TraceTag tag, Tick start, Tick end, double weight = 1.0, int track = 0) {
    if (end > start && (mask_ & TraceTagBit(tag)) != 0) {
      intervals_.push_back({start, end, tag, weight, track});
    }
  }

  // Restricts recording to the given tag set (kAllTraceTags by default, so a
  // bare RunTrace behaves as before). Gated Adds are dropped at the call.
  void SetMask(unsigned mask) { mask_ = mask; }
  unsigned mask() const { return mask_; }

  // Pre-sizes the interval vector so steady-state recording never regrows it
  // mid-run.
  void Reserve(std::size_t n) { intervals_.reserve(n); }

  const std::vector<TaggedInterval>& intervals() const { return intervals_; }

  // Total time covered by the union of intervals with `tag` (overlaps merged)
  // — e.g. "time the flash device was active" for the energy model.
  Tick UnionTime(TraceTag tag) const;

  // Sum of interval durations with `tag` (overlaps counted multiply) — e.g.
  // total LWP-seconds of compute.
  Tick TotalTime(TraceTag tag) const;

  // Weighted activity sampled into `buckets` bins over [0, horizon): for each
  // bin, the time-average of the summed weights of intervals alive in it.
  std::vector<double> Series(TraceTag tag, Tick horizon, std::size_t buckets) const;

  // Returns a copy containing only activity inside [start, end), clipped and
  // re-based so `start` becomes time 0. Used to scope a device-lifetime
  // trace to one run (dropping e.g. dataset-install activity).
  RunTrace Window(Tick start, Tick end) const;

  // Serializes the trace as Chrome trace-event JSON (the format Perfetto and
  // chrome://tracing load): one complete ("ph":"X") event per interval, one
  // process per tag, one named thread per track, timestamps in microseconds.
  // The interval weight rides along in args.weight. See docs/OBSERVABILITY.md.
  std::string ToChromeTrace() const;

  void Clear() { intervals_.clear(); }

  // Snapshottable: the full interval history plus the recording mask. Runs
  // window the device-lifetime trace, so a resumed segment needs everything
  // recorded before the snapshot point.
  std::string StateName() const override { return "trace"; }
  void SaveState(StateWriter& w) const override {
    w.U32(mask_);
    w.U64(intervals_.size());
    for (const auto& iv : intervals_) {
      w.U64(iv.start);
      w.U64(iv.end);
      w.I32(static_cast<std::int32_t>(iv.tag));
      w.F64(iv.weight);
      w.I32(iv.track);
    }
  }
  void LoadState(StateReader& r) override {
    mask_ = r.U32();
    const std::uint64_t n = r.U64();
    intervals_.clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      TaggedInterval iv;
      iv.start = r.U64();
      iv.end = r.U64();
      iv.tag = static_cast<TraceTag>(r.I32());
      iv.weight = r.F64();
      iv.track = r.I32();
      intervals_.push_back(iv);
    }
  }

 private:
  std::vector<TaggedInterval> intervals_;
  unsigned mask_ = kAllTraceTags;
};

}  // namespace fabacus

#endif  // SRC_CORE_TRACE_H_
