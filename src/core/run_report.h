// RunReport: the outcome of one accelerated run (one workload set, one
// scheduler), bundling everything the paper's evaluation reads — makespan and
// throughput, per-instance latency histogram and completion times, the energy
// decomposition, the full tagged interval trace, and a MetricsSnapshot of
// every component counter/gauge/histogram. Serializes to versioned JSON
// (schema_version pins the layout; see docs/OBSERVABILITY.md).
#ifndef SRC_CORE_RUN_REPORT_H_
#define SRC_CORE_RUN_REPORT_H_

#include <string>
#include <vector>

#include "src/core/tenant.h"
#include "src/core/trace.h"
#include "src/power/energy_meter.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

class JsonWriter;

// The paper's Fig-13/16 energy decomposition, in joules.
struct EnergyBreakdown {
  double data_movement_j = 0.0;
  double computation_j = 0.0;
  double storage_access_j = 0.0;
  double total_j = 0.0;
};

struct RunReport {
  std::string system;
  Tick makespan = 0;
  double input_bytes = 0.0;   // modelled bytes processed (all instances)
  double throughput_mb_s = 0.0;
  Histogram kernel_latency_ms;         // per-instance submit->complete
  std::vector<Tick> completion_times;  // for the Fig-12 CDFs
  double worker_utilization = 0.0;     // mean across worker LWPs
  // Per-tenant QoS rows (docs/QOS.md) and the Jain's-index fairness summary.
  // Empty / identity values on single-tenant devices.
  std::vector<TenantQosReport> tenants;
  TenantFairness fairness;
  EnergyMeter energy;
  RunTrace trace;
  MetricsSnapshot metrics;  // every component counter/gauge at run end

  EnergyBreakdown EnergySummary() const;

  // Serializes the report (metrics snapshot, energy decomposition, latency
  // summary, completion times, per-tag trace summary) as versioned JSON.
  // The full interval trace is exported separately via trace.ToChromeTrace().
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
};

}  // namespace fabacus

#endif  // SRC_CORE_RUN_REPORT_H_
