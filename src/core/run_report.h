// RunReport: the outcome of one accelerated run (one workload set, one
// scheduler), bundling everything the paper's evaluation reads — makespan and
// throughput, per-instance latency histogram and completion times, the energy
// decomposition, the full tagged interval trace, and a MetricsSnapshot of
// every component counter/gauge/histogram. Serializes to versioned JSON
// (schema_version pins the layout; see docs/OBSERVABILITY.md).
//
// RunReport supersedes the RunResult grab-bag; RunResult remains as a
// deprecated alias for one release so downstream code keeps compiling.
#ifndef SRC_CORE_RUN_REPORT_H_
#define SRC_CORE_RUN_REPORT_H_

#include <string>
#include <vector>

#include "src/core/trace.h"
#include "src/power/energy_meter.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

class JsonWriter;

// The paper's Fig-13/16 energy decomposition, in joules.
struct EnergyBreakdown {
  double data_movement_j = 0.0;
  double computation_j = 0.0;
  double storage_access_j = 0.0;
  double total_j = 0.0;
};

struct RunReport {
  // Bump when the JSON layout changes shape (adding fields is compatible and
  // does not require a bump; renaming/removing does).
  static constexpr int kSchemaVersion = 1;

  std::string system;
  Tick makespan = 0;
  double input_bytes = 0.0;   // modelled bytes processed (all instances)
  double throughput_mb_s = 0.0;
  Histogram kernel_latency_ms;         // per-instance submit->complete
  std::vector<Tick> completion_times;  // for the Fig-12 CDFs
  double worker_utilization = 0.0;     // mean across worker LWPs
  EnergyMeter energy;
  RunTrace trace;
  MetricsSnapshot metrics;  // every component counter/gauge at run end

  EnergyBreakdown EnergySummary() const;

  // Serializes the report (metrics snapshot, energy decomposition, latency
  // summary, completion times, per-tag trace summary) as versioned JSON.
  // The full interval trace is exported separately via trace.ToChromeTrace().
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;

  // --- RunResult-era accessors, kept for one release ---
  [[deprecated("use EnergySummary().data_movement_j")]] double EnergyDataMovement() const {
    return energy.BucketJoules(EnergyBucket::kDataMovement);
  }
  [[deprecated("use EnergySummary().computation_j")]] double EnergyComputation() const {
    return energy.BucketJoules(EnergyBucket::kComputation);
  }
  [[deprecated("use EnergySummary().storage_access_j")]] double EnergyStorage() const {
    return energy.BucketJoules(EnergyBucket::kStorageAccess);
  }
  [[deprecated("use EnergySummary().total_j")]] double EnergyTotal() const {
    return energy.TotalJoules();
  }
};

// Deprecated name of RunReport, kept for one release for downstream callers.
using RunResult [[deprecated("RunResult has been redesigned as RunReport")]] = RunReport;

}  // namespace fabacus

#endif  // SRC_CORE_RUN_REPORT_H_
