// Kernel description table, microblocks, screens and application instances
// (paper §4, Figures 4, 6 and 8).
//
// A kernel is an executable object (an ELF-like "kernel description table"
// with .text/.ddr3_arr/.heap/.stack sections). Its body is an ordered list of
// *microblocks*; execution of consecutive microblocks must serialize, but a
// non-serial microblock splits into *screens* — independent slices of its
// input — that different LWPs execute concurrently.
//
// Each microblock carries two faces:
//  * a timing face: the modelled share of the kernel's instructions and
//    memory traffic (parameterised from Table 2's LD/ST ratio and B/KI);
//  * a functional face: a real C++ body operating on the instance's float
//    buffers, validated against reference implementations in the tests.
#ifndef SRC_CORE_KERNEL_H_
#define SRC_CORE_KERNEL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace fabacus {

class AppInstance;

// Functional body of one microblock: processes outer-loop iterations
// [begin, end) against the instance's buffers.
using MicroblockBody = std::function<void(AppInstance&, std::size_t begin, std::size_t end)>;

struct MicroblockSpec {
  std::string name;
  bool serial = false;        // a "serial MBLK": no screens, runs on one LWP
  double work_fraction = 1.0; // share of the kernel's modelled instructions
  // Instruction mix for the VLIW FU-bottleneck model. Fractions over all
  // issued instructions; frac_ldst defaults from the workload's LD/ST ratio.
  double frac_ldst = 0.3;
  double frac_mul = 0.2;
  double frac_alu = 0.5;
  // Reuse window (tile) of the microblock's access pattern: windows within a
  // cache level keep repeat traffic there (see CacheModel).
  double reuse_window_bytes = 32 * 1024;
  // Distinct bytes streamed by the microblock, as a multiple of the kernel's
  // modelled input volume x work_fraction (1.0 = each input byte once).
  double stream_factor = 1.0;
  std::size_t func_iterations = 0;  // functional outer-loop trip count
  MicroblockBody body;              // may be empty for timing-only workloads
};

struct DataSectionSpec {
  enum class Dir { kIn, kOut };
  std::string name;
  Dir dir = Dir::kIn;
  // Fraction of the instance's modelled input volume held by this section
  // (inputs should sum to ~1; outputs are typically smaller).
  double model_fraction = 1.0;
  int buffer_index = -1;  // index into AppInstance::buffers(); -1 = none
};

// The immutable per-application description (shared by all instances).
struct KernelSpec {
  std::string name;
  double model_input_mb = 0.0;  // Table 2 "Input" per instance (unscaled)
  double ldst_ratio = 0.3;      // Table 2 "LD/ST ratio" (fraction, not %)
  double bki = 30.0;            // Table 2 "B/KI": bytes per kilo-instruction
  std::vector<MicroblockSpec> microblocks;
  std::vector<DataSectionSpec> sections;
  // ELF-ish auxiliary sections (sized for the PCIe offload cost).
  std::uint64_t text_bytes = 64 * 1024;
  std::uint64_t heap_bytes = 256 * 1024;
  std::uint64_t stack_bytes = 64 * 1024;

  int num_microblocks() const { return static_cast<int>(microblocks.size()); }
  int num_serial_microblocks() const;
  // Total modelled instructions for an instance processing `model_bytes`.
  double ModelInstructions(double model_bytes) const { return model_bytes * 1000.0 / bki; }
};

// A live data section of one instance: the logical flash extent it maps and
// the functional buffer behind it.
struct DataSection {
  const DataSectionSpec* spec = nullptr;
  std::uint64_t flash_addr = 0;   // logical flash byte address (group aligned)
  std::uint64_t model_bytes = 0;  // modelled size
  // Live read locks (input sections map as one or more streamed requests).
  std::vector<std::uint64_t> lock_ids;
};

// One offloaded instance of an application kernel.
class AppInstance {
 public:
  AppInstance(int app_id, int instance_id, const KernelSpec* spec, double model_scale);

  int app_id() const { return app_id_; }
  int instance_id() const { return instance_id_; }
  const KernelSpec& spec() const { return *spec_; }
  // Modelled input volume in bytes after the global scale factor.
  double model_input_bytes() const { return model_input_bytes_; }

  std::vector<std::vector<float>>& buffers() { return buffers_; }
  const std::vector<std::vector<float>>& buffers() const { return buffers_; }
  std::vector<float>& buffer(int i) { return buffers_.at(static_cast<std::size_t>(i)); }
  const std::vector<float>& buffer(int i) const {
    return buffers_.at(static_cast<std::size_t>(i));
  }
  // Ensures `count` buffers exist (workload Prepare() uses this).
  void EnsureBuffers(std::size_t count) {
    if (buffers_.size() < count) {
      buffers_.resize(count);
    }
  }

  std::vector<DataSection>& sections() { return sections_; }
  const std::vector<DataSection>& sections() const { return sections_; }

  // Scratch integer state some workloads need besides float buffers.
  std::vector<std::int32_t>& int_state() { return int_state_; }
  const std::vector<std::int32_t>& int_state() const { return int_state_; }

  // Owning tenant (docs/QOS.md). Indexes FlashAbacusConfig::tenant_sched
  // .tenants when tenants are configured; 0 (the default tenant) otherwise.
  std::uint16_t tenant = 0;

  // Timeline (filled in by the execution engine).
  Tick submit_time = 0;
  Tick load_done_time = 0;
  Tick compute_done_time = 0;
  Tick complete_time = 0;
  bool done = false;

 private:
  int app_id_;
  int instance_id_;
  const KernelSpec* spec_;
  double model_input_bytes_;
  std::vector<std::vector<float>> buffers_;
  std::vector<DataSection> sections_;
  std::vector<std::int32_t> int_state_;
};

// Modelled cost of one screen (a slice of one microblock of one instance).
struct ScreenWork {
  double instructions = 0.0;
  double frac_ldst = 0.3;
  double frac_mul = 0.2;
  double frac_alu = 0.5;
  double touched_bytes = 0.0;   // load/store traffic issued by the screen
  double window_bytes = 0.0;    // reuse window (tile)
  double distinct_bytes = 0.0;  // distinct bytes streamed
};

// Computes the modelled cost of screen `screen_idx` of `num_screens` for
// microblock `mblk` of `inst`.
ScreenWork ComputeScreenWork(const AppInstance& inst, int mblk, int screen_idx,
                             int num_screens);

// Functional iteration range of that screen.
void ScreenFuncRange(const AppInstance& inst, int mblk, int screen_idx, int num_screens,
                     std::size_t* begin, std::size_t* end);

}  // namespace fabacus

#endif  // SRC_CORE_KERNEL_H_
