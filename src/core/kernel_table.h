// Kernel description table (paper §4, "Kernel"): the executable object a
// host offloads to FlashAbacus. It is a variation of ELF/COFF: a fixed
// header, a section table (.text, .ddr3_arr data-section descriptors, .heap,
// .stack) and a microblock table describing the kernel's execution structure
// (serial flags, work fractions, instruction mixes) — everything the
// self-governing schedulers need, with no host-side runtime involvement
// afterwards.
//
// This module defines the on-the-wire binary format plus a serializer
// (host-side tool chain) and a validating loader (device side). The offload
// path transfers these real bytes over PCIe into DDR3L, and the device
// parses them back before scheduling.
#ifndef SRC_CORE_KERNEL_TABLE_H_
#define SRC_CORE_KERNEL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/kernel.h"

namespace fabacus {

// All on-wire structures are little-endian, packed by construction (only
// fixed-width members, manually ordered).
struct KdtHeader {
  static constexpr std::uint32_t kMagic = 0x4B414246;  // "FBAK"
  static constexpr std::uint16_t kVersion = 2;

  std::uint32_t magic = kMagic;
  std::uint16_t version = kVersion;
  std::uint16_t flags = 0;
  std::uint32_t total_bytes = 0;     // whole table, header included
  std::uint32_t name_offset = 0;     // NUL-terminated kernel name
  std::uint32_t section_offset = 0;  // KdtSection[section_count]
  std::uint32_t section_count = 0;
  std::uint32_t mblk_offset = 0;     // KdtMicroblock[mblk_count]
  std::uint32_t mblk_count = 0;
  std::uint32_t checksum = 0;        // FNV-1a over the table with this field 0
  // Modelled workload characteristics (Table 2).
  double model_input_mb = 0.0;
  double ldst_ratio = 0.0;
  double bki = 0.0;
};

enum class KdtSectionKind : std::uint32_t {
  kText = 0,      // .text — kernel code
  kHeap = 1,      // .heap
  kStack = 2,     // .stack
  kDataIn = 3,    // .ddr3_arr, flash-mapped input
  kDataOut = 4,   // .ddr3_arr, flash-mapped output
};

struct KdtSection {
  KdtSectionKind kind = KdtSectionKind::kText;
  std::uint32_t name_offset = 0;   // into the string pool
  std::uint64_t size_bytes = 0;    // .text/.heap/.stack sizes
  double model_fraction = 0.0;     // data sections: share of the input volume
  std::int32_t buffer_index = -1;  // data sections: functional buffer binding
  std::uint32_t reserved = 0;
};

struct KdtMicroblock {
  std::uint32_t name_offset = 0;
  std::uint32_t serial = 0;
  double work_fraction = 0.0;
  double frac_ldst = 0.0;
  double frac_mul = 0.0;
  double frac_alu = 0.0;
  double reuse_window_bytes = 0.0;
  double stream_factor = 0.0;
  std::uint64_t func_iterations = 0;
};

// Host-side: serializes a KernelSpec into a kernel description table.
// Functional bodies are not serialized (they stand in for the compiled
// .text payload, which travels as opaque bytes of the declared size).
std::vector<std::uint8_t> SerializeKernelTable(const KernelSpec& spec);

// Device-side loader: parses and validates a table. Returns false (and
// fills *error) on any structural problem — bad magic/version/checksum,
// out-of-bounds offsets, non-normalized fractions. On success fills *spec
// with everything except the functional bodies (the caller rebinds those
// from its registry, as the real device would jump into the .text payload).
bool ParseKernelTable(const std::vector<std::uint8_t>& bytes, KernelSpec* spec,
                      std::string* error);

// FNV-1a, the checksum the loader verifies.
std::uint32_t KdtChecksum(const std::uint8_t* data, std::size_t len);

}  // namespace fabacus

#endif  // SRC_CORE_KERNEL_TABLE_H_
