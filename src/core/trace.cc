#include "src/core/trace.h"

#include <map>
#include <set>
#include <utility>

#include "src/sim/json.h"

namespace fabacus {

const char* TraceTagName(TraceTag tag) {
  switch (tag) {
    case TraceTag::kLwpCompute:
      return "lwp_compute";
    case TraceTag::kFlashOp:
      return "flash_op";
    case TraceTag::kHostStack:
      return "host_stack";
    case TraceTag::kSsdOp:
      return "ssd_op";
    case TraceTag::kPcieXfer:
      return "pcie_xfer";
    case TraceTag::kSchedule:
      return "schedule";
    case TraceTag::kGc:
      return "storengine";
    case TraceTag::kFlashChan:
      return "flash_chan";
  }
  return "?";
}

RunTrace RunTrace::Window(Tick start, Tick end) const {
  RunTrace out;
  for (const TaggedInterval& iv : intervals_) {
    const Tick s = std::max(iv.start, start);
    const Tick e = std::min(iv.end, end);
    if (e > s) {
      out.Add(iv.tag, s - start, e - start, iv.weight, iv.track);
    }
  }
  return out;
}

std::string RunTrace::ToChromeTrace() const {
  // pid = tag, tid = track. Metadata events name each process after its tag
  // and each thread after its (tag, track) instance so Perfetto shows e.g.
  // "lwp_compute" with one row per LWP and "flash_chan" with one row per
  // channel bus.
  std::set<std::pair<int, int>> tracks;
  for (const TaggedInterval& iv : intervals_) {
    tracks.emplace(static_cast<int>(iv.tag), iv.track);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const auto& [pid, tid] : tracks) {
    const TraceTag tag = static_cast<TraceTag>(pid);
    w.BeginObject()
        .Field("ph", "M")
        .Field("pid", pid)
        .Field("tid", 0)
        .Field("name", "process_name")
        .Key("args")
        .BeginObject()
        .Field("name", TraceTagName(tag))
        .EndObject()
        .EndObject();
    w.BeginObject()
        .Field("ph", "M")
        .Field("pid", pid)
        .Field("tid", tid)
        .Field("name", "thread_name")
        .Key("args")
        .BeginObject()
        .Field("name", std::string(TraceTagName(tag)) + "/" + std::to_string(tid))
        .EndObject()
        .EndObject();
  }
  for (const TaggedInterval& iv : intervals_) {
    // Chrome trace timestamps are microseconds; ticks are nanoseconds.
    w.BeginObject()
        .Field("name", TraceTagName(iv.tag))
        .Field("cat", "fabacus")
        .Field("ph", "X")
        .Field("ts", static_cast<double>(iv.start) / 1e3)
        .Field("dur", static_cast<double>(iv.end - iv.start) / 1e3)
        .Field("pid", static_cast<int>(iv.tag))
        .Field("tid", iv.track)
        .Key("args")
        .BeginObject()
        .Field("weight", iv.weight)
        .EndObject()
        .EndObject();
  }
  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.EndObject();
  return w.TakeString();
}

Tick RunTrace::UnionTime(TraceTag tag) const {
  std::vector<std::pair<Tick, Tick>> spans;
  for (const TaggedInterval& iv : intervals_) {
    if (iv.tag == tag) {
      spans.emplace_back(iv.start, iv.end);
    }
  }
  if (spans.empty()) {
    return 0;
  }
  std::sort(spans.begin(), spans.end());
  Tick total = 0;
  Tick cur_start = spans[0].first;
  Tick cur_end = spans[0].second;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first <= cur_end) {
      cur_end = std::max(cur_end, spans[i].second);
    } else {
      total += cur_end - cur_start;
      cur_start = spans[i].first;
      cur_end = spans[i].second;
    }
  }
  total += cur_end - cur_start;
  return total;
}

Tick RunTrace::TotalTime(TraceTag tag) const {
  Tick total = 0;
  for (const TaggedInterval& iv : intervals_) {
    if (iv.tag == tag) {
      total += iv.end - iv.start;
    }
  }
  return total;
}

std::vector<double> RunTrace::Series(TraceTag tag, Tick horizon, std::size_t buckets) const {
  std::vector<double> out(buckets, 0.0);
  if (horizon == 0 || buckets == 0) {
    return out;
  }
  const double bucket_ns = static_cast<double>(horizon) / static_cast<double>(buckets);
  for (const TaggedInterval& iv : intervals_) {
    if (iv.tag != tag || iv.start >= horizon) {
      continue;
    }
    const Tick end = std::min(iv.end, horizon);
    const std::size_t b0 = static_cast<std::size_t>(iv.start / bucket_ns);
    const std::size_t b1 = std::min(buckets - 1, static_cast<std::size_t>(
                                                     static_cast<double>(end - 1) / bucket_ns));
    for (std::size_t b = b0; b <= b1; ++b) {
      const double bin_start = static_cast<double>(b) * bucket_ns;
      const double bin_end = bin_start + bucket_ns;
      const double overlap = std::min(static_cast<double>(end), bin_end) -
                             std::max(static_cast<double>(iv.start), bin_start);
      if (overlap > 0.0) {
        out[b] += iv.weight * overlap / bucket_ns;
      }
    }
  }
  return out;
}

}  // namespace fabacus
