#include "src/core/trace.h"

namespace fabacus {

RunTrace RunTrace::Window(Tick start, Tick end) const {
  RunTrace out;
  for (const TaggedInterval& iv : intervals_) {
    const Tick s = std::max(iv.start, start);
    const Tick e = std::min(iv.end, end);
    if (e > s) {
      out.Add(iv.tag, s - start, e - start, iv.weight);
    }
  }
  return out;
}

Tick RunTrace::UnionTime(TraceTag tag) const {
  std::vector<std::pair<Tick, Tick>> spans;
  for (const TaggedInterval& iv : intervals_) {
    if (iv.tag == tag) {
      spans.emplace_back(iv.start, iv.end);
    }
  }
  if (spans.empty()) {
    return 0;
  }
  std::sort(spans.begin(), spans.end());
  Tick total = 0;
  Tick cur_start = spans[0].first;
  Tick cur_end = spans[0].second;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first <= cur_end) {
      cur_end = std::max(cur_end, spans[i].second);
    } else {
      total += cur_end - cur_start;
      cur_start = spans[i].first;
      cur_end = spans[i].second;
    }
  }
  total += cur_end - cur_start;
  return total;
}

Tick RunTrace::TotalTime(TraceTag tag) const {
  Tick total = 0;
  for (const TaggedInterval& iv : intervals_) {
    if (iv.tag == tag) {
      total += iv.end - iv.start;
    }
  }
  return total;
}

std::vector<double> RunTrace::Series(TraceTag tag, Tick horizon, std::size_t buckets) const {
  std::vector<double> out(buckets, 0.0);
  if (horizon == 0 || buckets == 0) {
    return out;
  }
  const double bucket_ns = static_cast<double>(horizon) / static_cast<double>(buckets);
  for (const TaggedInterval& iv : intervals_) {
    if (iv.tag != tag || iv.start >= horizon) {
      continue;
    }
    const Tick end = std::min(iv.end, horizon);
    const std::size_t b0 = static_cast<std::size_t>(iv.start / bucket_ns);
    const std::size_t b1 = std::min(buckets - 1, static_cast<std::size_t>(
                                                     static_cast<double>(end - 1) / bucket_ns));
    for (std::size_t b = b0; b <= b1; ++b) {
      const double bin_start = static_cast<double>(b) * bucket_ns;
      const double bin_end = bin_start + bucket_ns;
      const double overlap = std::min(static_cast<double>(end), bin_end) -
                             std::max(static_cast<double>(iv.start), bin_start);
      if (overlap > 0.0) {
        out[b] += iv.weight * overlap / bucket_ns;
      }
    }
  }
  return out;
}

}  // namespace fabacus
