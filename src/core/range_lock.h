// Flashvisor's range lock (paper §4.3, "Protection and access control").
//
// Instead of per-page permission bits in the (persistent) mapping table, the
// paper guards flash-mapped data sections with an in-memory range lock built
// on a red-black tree: the key is the first page-group number of a mapping
// request, each node is augmented with the last group number and the request
// type. A read mapping is blocked while an overlapping *write* mapping is
// live; a write mapping is blocked while *any* overlapping mapping is live.
//
// This is a from-scratch augmented red-black interval tree (max-end
// augmentation) with an asynchronous waiter queue: Acquire() invokes the
// grant callback immediately when compatible, otherwise the request waits in
// FIFO order and is granted on Release(). FIFO fairness prevents writer
// starvation: a waiter is only granted if no earlier waiter with a
// conflicting overlapping range is still queued.
#ifndef SRC_CORE_RANGE_LOCK_H_
#define SRC_CORE_RANGE_LOCK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/log.h"
#include "src/sim/snapshot.h"

namespace fabacus {

enum class LockMode { kRead, kWrite };

class RangeLock : public Snapshottable {
 public:
  using LockId = std::uint64_t;
  // Called when the request is granted, with the lock id to release later.
  using Granted = std::function<void(LockId)>;

  RangeLock() = default;
  ~RangeLock();
  RangeLock(const RangeLock&) = delete;
  RangeLock& operator=(const RangeLock&) = delete;

  // Requests [first_group, last_group] (inclusive) in `mode`. If compatible
  // with all held locks (and no conflicting earlier waiter), `granted` runs
  // before Acquire returns; otherwise it runs during a later Release().
  // `tenant` tags the request for contention attribution (docs/QOS.md).
  void Acquire(std::uint64_t first_group, std::uint64_t last_group, LockMode mode,
               Granted granted, std::uint16_t tenant = 0);

  // Non-blocking variant: returns true and sets *id on success.
  bool TryAcquire(std::uint64_t first_group, std::uint64_t last_group, LockMode mode,
                  LockId* id, std::uint16_t tenant = 0);

  // QoS attribution hook: fired once per (queued request, distinct blocking
  // tenant) at the moment a request has to wait — the holder set is every
  // tenant holding or already queued for a conflicting overlapping range,
  // deduplicated and tenant-sorted for determinism.
  using ContentionObserver = std::function<void(std::uint16_t waiter, std::uint16_t holder)>;
  void set_contention_observer(ContentionObserver obs) { observer_ = std::move(obs); }

  // Releases a held lock; may synchronously grant queued waiters.
  void Release(LockId id);

  // Drops every held lock and queued waiter without granting anything (crash
  // recovery: the holders' continuations are gone). Lock ids keep advancing
  // so a stale pre-crash id can never alias a post-recovery lock.
  void Reset();

  // True when [first, last] conflicts with a held lock of incompatible mode.
  bool Conflicts(std::uint64_t first_group, std::uint64_t last_group, LockMode mode) const;

  std::size_t held_count() const { return held_; }
  std::size_t waiter_count() const { return waiters_.size(); }
  std::uint64_t total_grants() const { return total_grants_; }
  std::uint64_t total_waits() const { return total_waits_; }

  // Tree-structure validation for tests: checks red-black and max-end
  // invariants over the whole tree. Returns false on violation.
  bool CheckInvariants() const;

  // Snapshottable. Grant callbacks are closures, so a lock can only be
  // checkpointed while quiescent (nothing held, nobody waiting) — SaveState
  // CHECK-enforces that and serializes just the id cursor and counters.
  std::string StateName() const override { return "ftl/lock"; }
  void SaveState(StateWriter& w) const override {
    FAB_CHECK_EQ(held_, 0u) << "cannot snapshot a range lock with held locks";
    FAB_CHECK(waiters_.empty()) << "cannot snapshot a range lock with waiters";
    w.U64(next_id_);
    w.U64(total_grants_);
    w.U64(total_waits_);
  }
  void LoadState(StateReader& r) override {
    if (held_ != 0 || !waiters_.empty()) {
      r.Fail("cannot restore into a range lock with live state");
      return;
    }
    next_id_ = r.U64();
    total_grants_ = r.U64();
    total_waits_ = r.U64();
  }

 private:
  enum Color : std::uint8_t { kRed, kBlack };

  struct Node {
    std::uint64_t first;  // key: first group of the range
    std::uint64_t last;   // augmentation payload: last group (inclusive)
    std::uint64_t max_last;  // max `last` in this subtree
    LockMode mode;
    LockId id;
    std::uint16_t tenant = 0;
    Color color = kRed;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
  };

  struct Waiter {
    std::uint64_t first;
    std::uint64_t last;
    LockMode mode;
    std::uint16_t tenant = 0;
    Granted granted;
  };

  // Red-black machinery.
  void RotateLeft(Node* x);
  void RotateRight(Node* x);
  void InsertFixup(Node* z);
  void DeleteNode(Node* z);
  void DeleteFixup(Node* x, Node* x_parent);
  void Transplant(Node* u, Node* v);
  static Node* Minimum(Node* n);
  void UpdateMaxUp(Node* n);
  static std::uint64_t MaxLastOf(const Node* n);
  void FreeSubtree(Node* n);

  Node* InsertRange(std::uint64_t first, std::uint64_t last, LockMode mode, LockId id,
                    std::uint16_t tenant);
  void DispatchWaiters();
  // Distinct tenants currently blocking [first, last] in `mode`: conflicting
  // overlapping holders plus earlier conflicting queued waiters, sorted.
  std::vector<std::uint16_t> CollectBlockingTenants(std::uint64_t first, std::uint64_t last,
                                                    LockMode mode) const;

  bool CheckNode(const Node* n, int* black_height) const;

  Node* root_ = nullptr;
  std::unordered_map<LockId, Node*> by_id_;
  std::deque<Waiter> waiters_;
  LockId next_id_ = 1;
  std::size_t held_ = 0;
  std::uint64_t total_grants_ = 0;
  std::uint64_t total_waits_ = 0;
  bool dispatching_ = false;
  ContentionObserver observer_;
};

}  // namespace fabacus

#endif  // SRC_CORE_RANGE_LOCK_H_
