#include "src/core/tenant.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/sim/log.h"

namespace fabacus {

const char* TenantSchedPolicyName(TenantSchedPolicy policy) {
  switch (policy) {
    case TenantSchedPolicy::kPaper:
      return "paper";
    case TenantSchedPolicy::kWeightedFair:
      return "weighted-fair";
  }
  return "unknown";
}

std::string TenantSchedConfig::Validate() const {
  if (tenants.size() > 4096) {
    return "tenant_sched: too many tenants (max 4096)";
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantSpec& t = tenants[i];
    if (!(t.weight > 0.0) || !std::isfinite(t.weight)) {
      return "tenant_sched: tenant " + std::to_string(i) +
             " weight must be positive and finite";
    }
  }
  if (policy == TenantSchedPolicy::kWeightedFair && tenants.empty()) {
    return "tenant_sched: weighted-fair policy requires explicit tenants";
  }
  return "";
}

TenantManager::TenantManager(const TenantSchedConfig& config) : config_(config) {
  FAB_CHECK(config_.Validate().empty()) << config_.Validate();
}

const TenantSpec& TenantManager::spec(TenantId t) const {
  if (!configured()) {
    FAB_CHECK_EQ(t, kDefaultTenant)
        << "tenant id used without tenant_sched.tenants configured";
    return default_spec_;
  }
  FAB_CHECK_LT(t, config_.tenants.size()) << "tenant id out of range";
  return config_.tenants[t];
}

std::string TenantManager::TenantName(TenantId t) const {
  const TenantSpec& s = spec(t);
  if (!s.name.empty()) {
    return s.name;
  }
  return "tenant" + std::to_string(t);
}

std::string TenantManager::ConfigSuffix() const {
  if (!configured()) {
    return "";
  }
  std::ostringstream ss;
  ss << ";tsched=" << TenantSchedPolicyName(config_.policy) << ";tn=";
  for (std::size_t i = 0; i < config_.tenants.size(); ++i) {
    const TenantSpec& t = config_.tenants[i];
    if (i != 0) {
      ss << ",";
    }
    ss << t.weight << ":" << t.quota_bytes << ":" << (t.latency_class ? 1 : 0);
  }
  return ss.str();
}

bool TenantManager::TryChargeQuota(TenantId t, std::uint64_t aligned_bytes,
                                   std::uint64_t group_bytes) {
  FAB_CHECK_GT(group_bytes, 0u);
  State& s = EnsureState(t);
  const std::uint64_t quota = spec(t).quota_bytes;
  if (quota != 0) {
    // Effective limit: quota rounded up to the allocation unit, so usage may
    // overshoot the configured quota by strictly less than one unit.
    const std::uint64_t limit =
        (quota + group_bytes - 1) / group_bytes * group_bytes;
    if (s.quota_used + aligned_bytes > limit) {
      ++s.quota_denials;
      return false;
    }
  }
  s.quota_used += aligned_bytes;
  return true;
}

void TenantManager::RefundQuota(TenantId t, std::uint64_t aligned_bytes) {
  State& s = EnsureState(t);
  FAB_CHECK_LE(aligned_bytes, s.quota_used);
  s.quota_used -= aligned_bytes;
}

std::uint64_t TenantManager::quota_used(TenantId t) const {
  auto it = state_.find(t);
  return it == state_.end() ? 0 : it->second.quota_used;
}

std::uint64_t TenantManager::quota_denials(TenantId t) const {
  auto it = state_.find(t);
  return it == state_.end() ? 0 : it->second.quota_denials;
}

void TenantManager::OnSubmit(TenantId t, Tick now) {
  State& s = EnsureState(t);
  ++s.kernels_submitted;
  if (!s.saw_submit) {
    s.saw_submit = true;
    s.first_submit = now;
  }
}

void TenantManager::OnComplete(TenantId t, double latency_ms, Tick now) {
  State& s = EnsureState(t);
  ++s.kernels_completed;
  s.latency_ms.Record(latency_ms);
  s.last_complete = std::max(s.last_complete, now);
}

void TenantManager::ChargeWork(TenantId t, double instructions) {
  State& s = EnsureState(t);
  s.work_instructions += instructions;
  s.vt += instructions / weight(t);
}

double TenantManager::virtual_time(TenantId t) const {
  auto it = state_.find(t);
  return it == state_.end() ? 0.0 : it->second.vt;
}

void TenantManager::ClampVirtualTime(TenantId t, double floor_vt) {
  State& s = EnsureState(t);
  s.vt = std::max(s.vt, floor_vt);
}

void TenantManager::RecordLockWait(TenantId waiter, Tick wait_ns) {
  State& s = EnsureState(waiter);
  ++s.lock_waits;
  s.lock_wait_ns += wait_ns;
}

void TenantManager::RecordLockBlocked(TenantId waiter, TenantId holder) {
  State& s = EnsureState(waiter);
  ++s.blocked_by[holder];
}

void TenantManager::RecordGcStall(TenantId delayed, Tick stall_ns) {
  EnsureState(delayed).gc_stall_ns += stall_ns;
}

void TenantManager::RecordGarbageCreated(TenantId causer, std::uint64_t groups) {
  EnsureState(causer).garbage_created_groups += groups;
}

void TenantManager::RecordGcDrag(TenantId owner, std::uint64_t groups) {
  EnsureState(owner).gc_dragged_groups += groups;
}

std::vector<TenantQosReport> TenantManager::BuildReport() const {
  std::vector<TenantQosReport> rows;
  rows.reserve(state_.size());
  for (const auto& [id, s] : state_) {
    TenantQosReport row;
    row.id = id;
    row.name = TenantName(id);
    row.weight = weight(id);
    row.latency_class = latency_class(id);
    row.kernels_submitted = s.kernels_submitted;
    row.kernels_completed = s.kernels_completed;
    row.latency_ms = s.latency_ms.Summarize();
    row.work_instructions = s.work_instructions;
    row.first_submit = s.first_submit;
    row.last_complete = s.last_complete;
    row.quota_bytes = spec(id).quota_bytes;
    row.quota_used_bytes = s.quota_used;
    row.quota_denials = s.quota_denials;
    row.lock_waits = s.lock_waits;
    row.lock_wait_ns = s.lock_wait_ns;
    for (const auto& [holder, count] : s.blocked_by) {
      row.blocked_by.emplace_back(holder, count);
    }
    row.gc_stall_ns = s.gc_stall_ns;
    row.garbage_created_groups = s.garbage_created_groups;
    row.gc_dragged_groups = s.gc_dragged_groups;
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

double JainIndex(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 1.0;
  }
  double sum = 0.0, sumsq = 0.0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq <= 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(xs.size()) * sumsq);
}

}  // namespace

TenantFairness TenantManager::ComputeFairness(
    const std::vector<TenantQosReport>& rows) {
  TenantFairness f;
  std::vector<double> rates, p99s;
  for (const TenantQosReport& row : rows) {
    if (row.kernels_completed == 0) {
      continue;
    }
    // Weighted throughput rate over the tenant's own active window: under a
    // fair schedule every tenant progresses at work/weight parity, so equal
    // rates <=> fairness even when offered loads differ.
    const double window = std::max<double>(
        1.0, static_cast<double>(row.last_complete - row.first_submit));
    rates.push_back(row.work_instructions / row.weight / window);
    p99s.push_back(row.latency_ms.p99);
  }
  f.active_tenants = static_cast<std::uint32_t>(rates.size());
  f.jain_throughput = JainIndex(rates);
  f.jain_p99 = JainIndex(p99s);
  return f;
}

TenantManager::State& TenantManager::EnsureState(TenantId t) {
  // Validates the id against the config before materializing state.
  (void)spec(t);
  auto it = state_.find(t);
  if (it != state_.end()) {
    return it->second;
  }
  State& s = state_[t];
  RegisterTenantMetrics(t, s);
  return s;
}

void TenantManager::RegisterTenantMetrics(TenantId t, State& s) {
  if (registry_ == nullptr || metrics_registered_.count(t) != 0) {
    return;
  }
  metrics_registered_.insert(t);
  const std::string p = "tenant/" + std::to_string(t) + "/";
  State* sp = &s;  // map nodes are pointer-stable
  registry_->RegisterGauge(p + "kernels_completed", [sp](Tick) {
    return static_cast<double>(sp->kernels_completed);
  });
  registry_->RegisterGauge(p + "quota_used_bytes", [sp](Tick) {
    return static_cast<double>(sp->quota_used);
  });
  registry_->RegisterGauge(p + "quota_denials", [sp](Tick) {
    return static_cast<double>(sp->quota_denials);
  });
  registry_->RegisterGauge(p + "lock_wait_ns", [sp](Tick) {
    return static_cast<double>(sp->lock_wait_ns);
  });
  registry_->RegisterGauge(p + "gc_stall_ns", [sp](Tick) {
    return static_cast<double>(sp->gc_stall_ns);
  });
  registry_->RegisterGauge(p + "garbage_created_groups", [sp](Tick) {
    return static_cast<double>(sp->garbage_created_groups);
  });
  registry_->RegisterGauge(p + "gc_dragged_groups", [sp](Tick) {
    return static_cast<double>(sp->gc_dragged_groups);
  });
  registry_->RegisterHistogram(p + "latency_ms", &sp->latency_ms);
}

void TenantManager::SaveState(StateWriter& w) const {
  w.U64(state_.size());
  for (const auto& [id, s] : state_) {
    w.U32(id);
    w.U64(s.kernels_submitted);
    w.U64(s.kernels_completed);
    w.U64(s.quota_used);
    w.U64(s.quota_denials);
    w.F64(s.vt);
    w.F64(s.work_instructions);
    w.U64(s.first_submit);
    w.Bool(s.saw_submit);
    w.U64(s.last_complete);
    w.U64(s.lock_waits);
    w.U64(s.lock_wait_ns);
    w.U64(s.gc_stall_ns);
    w.U64(s.garbage_created_groups);
    w.U64(s.gc_dragged_groups);
    s.latency_ms.SaveState(w);
    w.U64(s.blocked_by.size());
    for (const auto& [holder, count] : s.blocked_by) {
      w.U32(holder);
      w.U64(count);
    }
  }
}

void TenantManager::LoadState(StateReader& r) {
  state_.clear();
  const std::uint64_t n = r.U64();
  if (n > 65536) {
    r.Fail("tenants: implausible state count");
    return;
  }
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::uint32_t raw_id = r.U32();
    if (raw_id >= num_tenants()) {
      r.Fail("tenants: tenant id out of range for config");
      return;
    }
    State& s = EnsureState(static_cast<TenantId>(raw_id));
    s.kernels_submitted = r.U64();
    s.kernels_completed = r.U64();
    s.quota_used = r.U64();
    s.quota_denials = r.U64();
    s.vt = r.F64();
    s.work_instructions = r.F64();
    s.first_submit = r.U64();
    s.saw_submit = r.Bool();
    s.last_complete = r.U64();
    s.lock_waits = r.U64();
    s.lock_wait_ns = r.U64();
    s.gc_stall_ns = r.U64();
    s.garbage_created_groups = r.U64();
    s.gc_dragged_groups = r.U64();
    s.latency_ms.LoadState(r);
    const std::uint64_t nb = r.U64();
    if (nb > 65536) {
      r.Fail("tenants: implausible blocked_by count");
      return;
    }
    s.blocked_by.clear();
    for (std::uint64_t j = 0; j < nb && r.ok(); ++j) {
      const std::uint32_t holder = r.U32();
      s.blocked_by[static_cast<TenantId>(holder)] = r.U64();
    }
  }
}

}  // namespace fabacus
