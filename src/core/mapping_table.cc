#include "src/core/mapping_table.h"

#include <cstring>

namespace fabacus {

MappingTable::MappingTable(const NandConfig& config, Scratchpad* scratchpad)
    : scratchpad_(scratchpad),
      forward_(config.TotalGroups(), kUnmapped),
      reverse_(config.TotalGroups(), kUnmapped) {
  FAB_CHECK(scratchpad_ != nullptr);
  FAB_CHECK_LE(table_bytes(), scratchpad_->config().capacity_bytes)
      << "mapping table does not fit in scratchpad";
}

std::uint32_t MappingTable::Lookup(std::uint64_t logical_group) const {
  FAB_CHECK_LT(logical_group, forward_.size());
  return forward_[logical_group];
}

std::uint32_t MappingTable::Update(std::uint64_t logical_group, std::uint32_t physical_group) {
  FAB_CHECK_LT(logical_group, forward_.size());
  FAB_CHECK_LT(physical_group, reverse_.size());
  const std::uint32_t old = forward_[logical_group];
  if (old != kUnmapped) {
    reverse_[old] = kUnmapped;
  } else {
    ++mapped_count_;
  }
  forward_[logical_group] = physical_group;
  reverse_[physical_group] = static_cast<std::uint32_t>(logical_group);
  SyncEntryToScratchpad(logical_group);
  return old;
}

std::uint32_t MappingTable::ReverseLookup(std::uint32_t physical_group) const {
  FAB_CHECK_LT(physical_group, reverse_.size());
  return reverse_[physical_group];
}

void MappingTable::Unmap(std::uint64_t logical_group) {
  FAB_CHECK_LT(logical_group, forward_.size());
  const std::uint32_t old = forward_[logical_group];
  if (old != kUnmapped) {
    reverse_[old] = kUnmapped;
    forward_[logical_group] = kUnmapped;
    --mapped_count_;
    SyncEntryToScratchpad(logical_group);
  }
}

void MappingTable::Snapshot(std::vector<std::uint8_t>* out) const {
  out->resize(table_bytes());
  std::memcpy(out->data(), forward_.data(), table_bytes());
}

void MappingTable::Restore(const std::vector<std::uint8_t>& snapshot) {
  FAB_CHECK_EQ(snapshot.size(), table_bytes());
  std::memcpy(forward_.data(), snapshot.data(), table_bytes());
  // Rebuild the reverse map and count from the restored forward table.
  std::fill(reverse_.begin(), reverse_.end(), kUnmapped);
  mapped_count_ = 0;
  for (std::uint64_t lg = 0; lg < forward_.size(); ++lg) {
    if (forward_[lg] != kUnmapped) {
      reverse_[forward_[lg]] = static_cast<std::uint32_t>(lg);
      ++mapped_count_;
      SyncEntryToScratchpad(lg);
    }
  }
}

void MappingTable::SaveState(StateWriter& w) const {
  w.VecU32(forward_);
  w.U64(mapped_count_);
}

void MappingTable::LoadState(StateReader& r) {
  std::vector<std::uint32_t> forward = r.VecU32();
  const std::uint64_t mapped = r.U64();
  if (!r.ok()) {
    return;
  }
  if (forward.size() != forward_.size()) {
    r.Fail("mapping table has " + std::to_string(forward.size()) + " entries, device expects " +
           std::to_string(forward_.size()));
    return;
  }
  forward_ = std::move(forward);
  // Rebuild the reverse map and re-mirror into the scratchpad, exactly as
  // Restore() does for crash recovery.
  std::fill(reverse_.begin(), reverse_.end(), kUnmapped);
  std::uint64_t count = 0;
  for (std::uint64_t lg = 0; lg < forward_.size(); ++lg) {
    if (forward_[lg] != kUnmapped) {
      reverse_[forward_[lg]] = static_cast<std::uint32_t>(lg);
      ++count;
    }
  }
  if (count != mapped) {
    r.Fail("mapping table count mismatch");
    return;
  }
  mapped_count_ = count;
  scratchpad_->Store(scratchpad_offset_, forward_.data(), table_bytes());
}

void MappingTable::Clear() {
  std::fill(forward_.begin(), forward_.end(), kUnmapped);
  std::fill(reverse_.begin(), reverse_.end(), kUnmapped);
  mapped_count_ = 0;
  scratchpad_->Store(scratchpad_offset_, forward_.data(), table_bytes());
}

void MappingTable::SyncEntryToScratchpad(std::uint64_t logical_group) {
  scratchpad_->Store(scratchpad_offset_ + logical_group * sizeof(std::uint32_t),
                     &forward_[logical_group], sizeof(std::uint32_t));
}

}  // namespace fabacus
