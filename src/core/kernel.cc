#include "src/core/kernel.h"

#include <algorithm>

#include "src/sim/log.h"

namespace fabacus {

int KernelSpec::num_serial_microblocks() const {
  int n = 0;
  for (const MicroblockSpec& m : microblocks) {
    if (m.serial) {
      ++n;
    }
  }
  return n;
}

AppInstance::AppInstance(int app_id, int instance_id, const KernelSpec* spec,
                         double model_scale)
    : app_id_(app_id), instance_id_(instance_id), spec_(spec) {
  FAB_CHECK(spec != nullptr);
  FAB_CHECK_GT(model_scale, 0.0);
  model_input_bytes_ = spec->model_input_mb * 1024.0 * 1024.0 * model_scale;
}

ScreenWork ComputeScreenWork(const AppInstance& inst, int mblk, int screen_idx,
                             int num_screens) {
  const KernelSpec& spec = inst.spec();
  FAB_CHECK_GE(mblk, 0);
  FAB_CHECK_LT(mblk, spec.num_microblocks());
  FAB_CHECK_GT(num_screens, 0);
  FAB_CHECK_GE(screen_idx, 0);
  FAB_CHECK_LT(screen_idx, num_screens);
  const MicroblockSpec& m = spec.microblocks[static_cast<std::size_t>(mblk)];

  const double kernel_instr = spec.ModelInstructions(inst.model_input_bytes());
  const double mblk_instr = kernel_instr * m.work_fraction;
  // Screens split the microblock's iteration space evenly; give the last
  // screen any remainder via fractional boundaries.
  const double f0 = static_cast<double>(screen_idx) / num_screens;
  const double f1 = static_cast<double>(screen_idx + 1) / num_screens;

  ScreenWork w;
  w.instructions = mblk_instr * (f1 - f0);
  w.frac_ldst = m.frac_ldst;
  w.frac_mul = m.frac_mul;
  w.frac_alu = m.frac_alu;
  // Each load/store moves one 8-byte VLIW word on average.
  w.touched_bytes = w.instructions * w.frac_ldst * 8.0;
  w.window_bytes = m.reuse_window_bytes;
  w.distinct_bytes =
      inst.model_input_bytes() * m.work_fraction * m.stream_factor * (f1 - f0);
  return w;
}

void ScreenFuncRange(const AppInstance& inst, int mblk, int screen_idx, int num_screens,
                     std::size_t* begin, std::size_t* end) {
  const MicroblockSpec& m = inst.spec().microblocks[static_cast<std::size_t>(mblk)];
  const std::size_t total = m.func_iterations;
  *begin = total * static_cast<std::size_t>(screen_idx) / static_cast<std::size_t>(num_screens);
  *end = total * static_cast<std::size_t>(screen_idx + 1) / static_cast<std::size_t>(num_screens);
}

}  // namespace fabacus
