// The FlashAbacus accelerator device: 8 LWPs over tier-1/tier-2 crossbars,
// DDR3L + scratchpad, the flash backbone behind SRIO, Flashvisor and
// Storengine on two dedicated LWPs, and the remaining six LWPs as workers
// executing offloaded multi-kernel workloads under one of four scheduling
// models (paper §4.1-4.2):
//   InterSt  — static inter-kernel   (kernel -> LWP by app id)
//   InterDy  — dynamic inter-kernel  (kernel -> first free LWP)
//   IntraIo  — in-order intra-kernel (screens of the head microblock fan out)
//   IntraO3  — out-of-order intra-kernel (screens steal across kernels/apps)
#ifndef SRC_CORE_FLASHABACUS_H_
#define SRC_CORE_FLASHABACUS_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/execution_chain.h"
#include "src/core/flashvisor.h"
#include "src/core/kernel.h"
#include "src/core/kernel_table.h"
#include "src/core/lwp.h"
#include "src/core/run_report.h"
#include "src/core/storengine.h"
#include "src/core/trace.h"
#include "src/flash/flash_backbone.h"
#include "src/mem/dram.h"
#include "src/mem/scratchpad.h"
#include "src/noc/crossbar.h"
#include "src/power/energy_meter.h"
#include "src/sim/metrics.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"
#include "src/sim/stats.h"

namespace fabacus {

enum class SchedulerKind { kInterStatic, kInterDynamic, kIntraInOrder, kIntraOutOfOrder };

const char* SchedulerKindName(SchedulerKind kind);

struct FlashAbacusConfig {
  int num_lwps = 8;  // two of them host Flashvisor and Storengine
  LwpConfig lwp;
  CacheConfig cache;
  NandConfig nand;
  DramConfig dram;
  ScratchpadConfig scratchpad;
  CrossbarConfig tier1{.name = "tier1",
                       .ports = 12,
                       .port_gb_per_s = 16.0,
                       .fabric_gb_per_s = 16.0,
                       .hop_latency = 10};
  FlashvisorConfig flashvisor;
  StorengineConfig storengine;
  double pcie_gb_per_s = 1.0;  // Table 1: PCIe v2.0 x2
  Tick pcie_latency = 1 * kUs;
  // Global scale on modelled data volumes (paper-sized inputs are hundreds of
  // MB; see EXPERIMENTS.md for the scaling discussion).
  double model_scale = 1.0 / 16.0;
  // Streamed section loads (paper §2.2: DDR3L "hides the long latency
  // imposed by flash accesses"): kernels start computing once this fraction
  // of their input sections is resident; the tail streams in behind the
  // compute. 1.0 reverts to fully-gated loads.
  double load_stream_fraction = 0.2;
  // Host-visible I/O retry policy: an uncorrectable completion is retried
  // (whole request) up to io_max_attempts total submissions, each resubmit
  // delayed by io_retry_backoff.
  int io_max_attempts = 3;
  Tick io_retry_backoff = 200 * kUs;
  // Record the full per-screen / per-bus-beat interval trace (Chrome-trace
  // export, Fig-14/15 time series). Off by default: throughput runs then keep
  // only the kEnergyTraceTags intervals the energy model integrates, which
  // leaves every reported number bit-identical while skipping the dominant
  // trace-append cost (see docs/PERFORMANCE.md).
  bool record_full_trace = false;
  PowerModel power;
  // Conservative parallel-DES mode (docs/PERFORMANCE.md, "Parallel DES").
  // 0 = sequential (default). N >= 1 enables the sharded engine with N worker
  // threads over 1 + nand.channels shards (shard 0 = device, one shard per
  // flash channel) and ONFi-derived lookahead. Reports and snapshots are
  // byte-identical to sequential at any thread count, so this knob is
  // deliberately excluded from ConfigFingerprint().
  int pdes_threads = 0;
  // Multi-tenant QoS (docs/QOS.md): tenant specs, per-tenant flash quotas and
  // the scheduling policy layered under the four paper schedulers. Empty
  // tenants = single-tenant mode, byte-identical to the pre-tenant device.
  TenantSchedConfig tenant_sched;

  // The Table-1 device of the paper (the defaults above).
  static FlashAbacusConfig Paper();
  // A scaled-down device for unit tests and quick smoke runs: same geometry,
  // model_scale = 1/256 so end-to-end runs finish in milliseconds of sim time.
  static FlashAbacusConfig Small();

  // Returns an empty string when the configuration is a buildable device, or
  // a human-readable description of the first problem found (e.g. fewer than
  // 3 LWPs — Flashvisor + Storengine + at least one worker — or non-positive
  // link bandwidths/scales). The FlashAbacus constructor CHECK-fails on a
  // non-empty result.
  std::string Validate() const;
};

class FlashAbacus {
 public:
  explicit FlashAbacus(Simulator* sim, const FlashAbacusConfig& config = FlashAbacusConfig{});
  ~FlashAbacus();
  FlashAbacus(const FlashAbacus&) = delete;
  FlashAbacus& operator=(const FlashAbacus&) = delete;

  // Allocates flash extents for the instance's data sections and writes the
  // input buffers to flash (device-resident dataset). `done` fires when the
  // data is accepted; durable after DrainWrites(). Returns false (and `done`
  // never fires, nothing is allocated) when the instance's tenant is over
  // its flash-space quota — the denial is counted in the tenant's metrics.
  bool InstallData(AppInstance* inst, std::function<void(Tick)> done);

  // Offloads and executes the instances under `kind`; `done` receives the
  // report when every instance has completed (including output writeback to
  // the DDR3L write buffer).
  void Run(std::vector<AppInstance*> instances, SchedulerKind kind,
           std::function<void(RunReport)> done);

  // Reads an output section's current flash contents into `out` (sized to the
  // section's functional bytes) — used by tests to verify end-to-end flow.
  void ReadSectionFromFlash(AppInstance* inst, int section_idx, std::vector<float>* out,
                            std::function<void(Tick)> done);

  // --- Power-loss crash injection and recovery -----------------------------
  // Schedules a power failure at absolute tick `when`: the event queue is
  // cleared (nothing after the cut executes), in-flight flash programs tear,
  // and every volatile structure (mapping table, block pools, write buffer,
  // locks, queues) is wiped. Any in-progress Run() is abandoned — its done
  // callback never fires.
  void CrashAt(Tick when);
  // Rebuilds the FTL from flash alone (journal snapshot + OOB replay); see
  // Flashvisor::RecoverFromFlash. Re-seats Storengine's journal location and
  // re-arms it so the device is usable again. Only valid after a crash.
  Flashvisor::RecoveryReport RecoverFromFlash();
  bool crashed() const { return crashed_; }

  // --- Whole-device checkpoint/restore (docs/SNAPSHOT.md) ------------------
  // Captures the complete device state — simulator clock, flash contents and
  // OOB records, FTL (mapping/blocks/locks), wear and fault state, memories,
  // LWP occupancy, trace and every counter — as a versioned snapshot. Only
  // valid at a quiescent point: no Run() in flight, Flashvisor's inbound
  // queue idle, and nothing but inert daemon ticks pending in the event
  // queue (CHECK-enforced).
  bool Snapshot(const std::string& path, std::string* error = nullptr) const;
  // In-memory form, used by FleetSim's per-shard fan-in and by tests.
  SnapshotBuilder BuildSnapshot() const;

  // Restores a snapshot taken from an identically-configured device into
  // this one (typically freshly constructed). Returns false with *error set
  // on kind/config/version mismatches or corrupt payloads; the device state
  // is unspecified after a failed resume — discard it. Pending events are
  // dropped first; a run split into snapshot/resume segments reproduces the
  // unbroken run's RunReport byte for byte (tests/snapshot_test.cc).
  bool Resume(const SnapshotFile& snap, std::string* error = nullptr);
  bool Resume(const std::string& path, std::string* error = nullptr);

  // Stable digest of the geometry-relevant configuration. Snapshots embed it
  // and Resume refuses snapshots taken from a differently-shaped device.
  std::string ConfigFingerprint() const;

  std::uint64_t io_retries() const { return io_retries_.value(); }
  std::uint64_t io_failures() const { return io_failures_.value(); }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  Flashvisor& flashvisor() { return *flashvisor_; }
  TenantManager& tenants() { return *tenants_; }
  Storengine& storengine() { return *storengine_; }
  FlashBackbone& backbone() { return *backbone_; }
  Dram& dram() { return *dram_; }
  Lwp& worker(int i) { return *workers_[static_cast<std::size_t>(i)]; }
  const FlashAbacusConfig& config() const { return config_; }
  RunTrace& trace() { return trace_; }
  // Every component's counters/gauges, registered under the naming scheme of
  // docs/OBSERVABILITY.md; RunReport carries a Snapshot() of this registry.
  const MetricsRegistry& metrics() const { return metrics_; }
  Simulator& sim() { return *sim_; }

 private:
  struct RunState;
  struct PendingKernel;

  void RegisterMetrics();
  // Submits through Flashvisor with host-side retry: an uncorrectable
  // completion is resubmitted (bounded attempts, io_retry_backoff apart);
  // the caller's on_complete sees the final outcome only.
  void SubmitIoReliable(Flashvisor::IoRequest req, int attempt = 0);
  void Crash();

  void OffloadKernel(RunState* rs, AppInstance* inst);
  void StartLoad(RunState* rs, AppInstance* inst);
  void TryDispatch(RunState* rs);
  void DispatchInterKernel(RunState* rs);
  void DispatchIntraKernel(RunState* rs);
  void RunWholeKernel(RunState* rs, AppInstance* inst, int worker, int start_mblk = 0);
  void RunKernelMicroblock(RunState* rs, AppInstance* inst, int worker, int mblk);
  // Weighted-fair helpers (docs/QOS.md). The preference order ranks run
  // instances latency-class first, then least virtual time, then tenant id,
  // then arrival. PickPendingKernel applies the same key to an inter queue;
  // ShouldPreemptInter decides whether a worker yields at a microblock
  // boundary to a queued latency-class kernel.
  std::vector<int> TenantDispatchOrder(const RunState* rs) const;
  std::size_t PickPendingKernel(const RunState* rs, const std::deque<PendingKernel>& q) const;
  bool ShouldPreemptInter(const RunState* rs, const AppInstance* inst, int worker) const;
  void ExecuteScreenOn(RunState* rs, const ScreenRef& ref, int worker);
  void StreamTail(RunState* rs, AppInstance* inst, DataSection* section, std::uint64_t addr,
                  std::uint64_t remaining, std::uint8_t* func_data,
                  std::uint64_t func_remaining);
  void OnComputeDone(RunState* rs, AppInstance* inst);
  void StartWriteback(RunState* rs, AppInstance* inst);
  void FinishInstance(RunState* rs, AppInstance* inst, Tick when);
  void MaybeFinishRun(RunState* rs);
  void FinalizeResult(RunState* rs);
  std::uint64_t SectionFuncBytes(const AppInstance& inst, const DataSection& s) const;

  Simulator* sim_;
  FlashAbacusConfig config_;
  std::unique_ptr<Dram> dram_;
  std::unique_ptr<Scratchpad> scratchpad_;
  std::unique_ptr<Crossbar> tier1_;
  std::unique_ptr<FlashBackbone> backbone_;
  std::unique_ptr<Flashvisor> flashvisor_;
  std::unique_ptr<Storengine> storengine_;
  std::unique_ptr<TenantManager> tenants_;
  std::unique_ptr<BandwidthResource> pcie_;
  std::vector<std::unique_ptr<Lwp>> workers_;
  RunTrace trace_;
  MetricsRegistry metrics_;
  std::unique_ptr<RunState> run_;

  bool crashed_ = false;
  Counter io_retries_;
  Counter io_failures_;
  Counter crashes_;
  Counter recoveries_;
  Counter recovery_lost_groups_;
  Counter recovery_torn_groups_;
  Tick last_recovery_ns_ = 0;
};

}  // namespace fabacus

#endif  // SRC_CORE_FLASHABACUS_H_
