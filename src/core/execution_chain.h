// Multi-app execution chain (paper §4.2, Figure 8): the root holds one node
// list per offloaded application; each node is a microblock with the status
// of its screens. The node order encodes the only data dependency the
// schedulers must respect — microblock m+1 of a kernel starts after every
// screen of microblock m completes. Apps are independent of each other.
#ifndef SRC_CORE_EXECUTION_CHAIN_H_
#define SRC_CORE_EXECUTION_CHAIN_H_

#include <cstdint>
#include <vector>

#include "src/core/kernel.h"
#include "src/sim/log.h"

namespace fabacus {

struct ScreenRef {
  AppInstance* inst = nullptr;
  int mblk = 0;
  int screen = 0;
  int num_screens = 1;
};

class ExecutionChain {
 public:
  // `screens_per_parallel_mblk` is the fan-out used for non-serial
  // microblocks (typically the number of worker LWPs).
  void AddApp(AppInstance* inst, int screens_per_parallel_mblk);

  void MarkLoadDone(AppInstance* inst);
  bool IsLoadDone(const AppInstance* inst) const;

  // Out-of-order policy (IntraO3): the next undispatched screen of *any* app
  // whose load is done and whose chain permits it (FIFO by arrival order,
  // then microblock, then screen). Returns false when nothing is ready.
  bool NextReadyScreen(ScreenRef* out);

  // In-order policy (IntraIo): screens only from the globally-first
  // incomplete microblock (strict barrier across apps).
  bool NextReadyScreenInOrder(ScreenRef* out);

  // Weighted-fair variants (docs/QOS.md): same dependency rules, but apps
  // are visited in the caller-supplied preference `order` (a permutation of
  // arrival indices) instead of arrival order. The in-order variant keeps
  // its strict barrier — only the first unfinished app in preference order
  // may dispatch.
  bool NextReadyScreenOrdered(const std::vector<int>& order, ScreenRef* out);
  bool NextReadyScreenInOrderOrdered(const std::vector<int>& order, ScreenRef* out);

  void OnDispatched(const ScreenRef& ref);
  // Returns true when this completion finished the instance's last microblock.
  bool OnScreenComplete(const ScreenRef& ref);

  bool ComputeDone(const AppInstance* inst) const;
  bool AllComputeDone() const;
  // True when some screen is dispatched but not yet complete.
  bool AnyInFlight() const;

  std::size_t num_apps() const { return apps_.size(); }

 private:
  struct Node {
    int screens_total = 1;
    int dispatched = 0;
    int completed = 0;
  };
  struct App {
    AppInstance* inst = nullptr;
    std::vector<Node> nodes;
    int current = 0;  // first incomplete microblock
    bool load_done = false;
  };

  int FindApp(const AppInstance* inst) const;
  bool ReadyScreenOfApp(App& app, int app_idx, ScreenRef* out);

  std::vector<App> apps_;  // arrival order
};

}  // namespace fabacus

#endif  // SRC_CORE_EXECUTION_CHAIN_H_
