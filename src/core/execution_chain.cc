#include "src/core/execution_chain.h"

namespace fabacus {

void ExecutionChain::AddApp(AppInstance* inst, int screens_per_parallel_mblk) {
  FAB_CHECK(inst != nullptr);
  FAB_CHECK_GT(screens_per_parallel_mblk, 0);
  App app;
  app.inst = inst;
  for (const MicroblockSpec& m : inst->spec().microblocks) {
    Node node;
    node.screens_total = m.serial ? 1 : screens_per_parallel_mblk;
    app.nodes.push_back(node);
  }
  FAB_CHECK(!app.nodes.empty()) << "kernel without microblocks";
  apps_.push_back(std::move(app));
}

int ExecutionChain::FindApp(const AppInstance* inst) const {
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].inst == inst) {
      return static_cast<int>(i);
    }
  }
  FAB_CHECK(false) << "unknown instance " << inst->app_id() << "/" << inst->instance_id();
  return -1;
}

void ExecutionChain::MarkLoadDone(AppInstance* inst) {
  apps_[static_cast<std::size_t>(FindApp(inst))].load_done = true;
}

bool ExecutionChain::IsLoadDone(const AppInstance* inst) const {
  return apps_[static_cast<std::size_t>(FindApp(inst))].load_done;
}

bool ExecutionChain::ReadyScreenOfApp(App& app, int app_idx, ScreenRef* out) {
  (void)app_idx;
  if (!app.load_done || app.current >= static_cast<int>(app.nodes.size())) {
    return false;
  }
  Node& node = app.nodes[static_cast<std::size_t>(app.current)];
  if (node.dispatched >= node.screens_total) {
    return false;  // all screens of the current microblock already in flight
  }
  out->inst = app.inst;
  out->mblk = app.current;
  out->screen = node.dispatched;
  out->num_screens = node.screens_total;
  return true;
}

bool ExecutionChain::NextReadyScreen(ScreenRef* out) {
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (ReadyScreenOfApp(apps_[i], static_cast<int>(i), out)) {
      return true;
    }
  }
  return false;
}

bool ExecutionChain::NextReadyScreenInOrder(ScreenRef* out) {
  // The strict in-order policy: find the earliest app with an incomplete
  // microblock; only its current microblock may dispatch. If its screens are
  // exhausted (but still running) nothing else may start.
  for (auto& app : apps_) {
    if (app.current >= static_cast<int>(app.nodes.size())) {
      continue;  // app finished; look at the next one
    }
    return ReadyScreenOfApp(app, 0, out);
  }
  return false;
}

bool ExecutionChain::NextReadyScreenOrdered(const std::vector<int>& order, ScreenRef* out) {
  FAB_CHECK_EQ(order.size(), apps_.size());
  for (int i : order) {
    if (ReadyScreenOfApp(apps_[static_cast<std::size_t>(i)], i, out)) {
      return true;
    }
  }
  return false;
}

bool ExecutionChain::NextReadyScreenInOrderOrdered(const std::vector<int>& order,
                                                   ScreenRef* out) {
  FAB_CHECK_EQ(order.size(), apps_.size());
  for (int i : order) {
    App& app = apps_[static_cast<std::size_t>(i)];
    if (app.current >= static_cast<int>(app.nodes.size())) {
      continue;  // app finished; the barrier moves to the next preferred app
    }
    return ReadyScreenOfApp(app, 0, out);
  }
  return false;
}

void ExecutionChain::OnDispatched(const ScreenRef& ref) {
  App& app = apps_[static_cast<std::size_t>(FindApp(ref.inst))];
  FAB_CHECK_EQ(ref.mblk, app.current);
  Node& node = app.nodes[static_cast<std::size_t>(ref.mblk)];
  FAB_CHECK_LT(node.dispatched, node.screens_total);
  ++node.dispatched;
}

bool ExecutionChain::OnScreenComplete(const ScreenRef& ref) {
  App& app = apps_[static_cast<std::size_t>(FindApp(ref.inst))];
  Node& node = app.nodes[static_cast<std::size_t>(ref.mblk)];
  ++node.completed;
  FAB_CHECK_LE(node.completed, node.screens_total);
  if (ref.mblk == app.current && node.completed == node.screens_total) {
    ++app.current;
    return app.current == static_cast<int>(app.nodes.size());
  }
  return false;
}

bool ExecutionChain::ComputeDone(const AppInstance* inst) const {
  const App& app = apps_[static_cast<std::size_t>(FindApp(inst))];
  return app.current == static_cast<int>(app.nodes.size());
}

bool ExecutionChain::AllComputeDone() const {
  for (const App& app : apps_) {
    if (app.current < static_cast<int>(app.nodes.size())) {
      return false;
    }
  }
  return true;
}

bool ExecutionChain::AnyInFlight() const {
  for (const App& app : apps_) {
    for (const Node& node : app.nodes) {
      if (node.dispatched > node.completed) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace fabacus
