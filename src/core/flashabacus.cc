#include "src/core/flashabacus.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>

#include "src/sim/log.h"

namespace fabacus {

FlashAbacusConfig FlashAbacusConfig::Paper() { return FlashAbacusConfig{}; }

FlashAbacusConfig FlashAbacusConfig::Small() {
  FlashAbacusConfig cfg;
  cfg.model_scale = 1.0 / 256.0;
  return cfg;
}

std::string FlashAbacusConfig::Validate() const {
  if (num_lwps < 3) {
    return "num_lwps must be >= 3 (Flashvisor + Storengine + at least one worker), got " +
           std::to_string(num_lwps);
  }
  if (tier1.ports < num_lwps) {
    return "tier1.ports (" + std::to_string(tier1.ports) +
           ") must cover every LWP plus the memory port (num_lwps = " +
           std::to_string(num_lwps) + ")";
  }
  if (pcie_gb_per_s <= 0.0) {
    return "pcie_gb_per_s must be positive";
  }
  if (model_scale <= 0.0) {
    return "model_scale must be positive";
  }
  if (load_stream_fraction < 0.0 || load_stream_fraction > 1.0) {
    return "load_stream_fraction must be in [0, 1]";
  }
  if (nand.channels <= 0 || nand.packages_per_channel <= 0) {
    return "nand geometry must have at least one channel and one package per channel";
  }
  if (dram.banks <= 0 || dram.total_gb_per_s <= 0.0) {
    return "dram must have at least one bank and positive bandwidth";
  }
  if (lwp.clock_ghz <= 0.0 || lwp.issue_width <= 0) {
    return "lwp must have positive clock and issue width";
  }
  if (pdes_threads < 0 || pdes_threads > 1 + nand.channels) {
    return "pdes_threads must be in [0, 1 + nand.channels], got " +
           std::to_string(pdes_threads);
  }
  return "";
}

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kInterStatic:
      return "InterSt";
    case SchedulerKind::kInterDynamic:
      return "InterDy";
    case SchedulerKind::kIntraInOrder:
      return "IntraIo";
    case SchedulerKind::kIntraOutOfOrder:
      return "IntraO3";
  }
  return "?";
}

// An inter-kernel queue entry. `resume_mblk` is 0 for fresh kernels and the
// next microblock for kernels a weighted-fair preemption point re-queued.
struct FlashAbacus::PendingKernel {
  AppInstance* inst = nullptr;
  int resume_mblk = 0;
};

struct FlashAbacus::RunState {
  SchedulerKind kind = SchedulerKind::kIntraOutOfOrder;
  std::vector<AppInstance*> instances;
  std::function<void(RunReport)> done_cb;
  ExecutionChain chain;
  Tick start_time = 0;

  std::vector<bool> worker_free;
  std::vector<std::deque<PendingKernel>> static_queues;  // per worker
  std::deque<PendingKernel> dynamic_queue;

  // Inter-kernel: worker stalled waiting for an instance's load.
  std::unordered_map<AppInstance*, int> waiting_worker;
  std::unordered_map<AppInstance*, int> loads_pending;  // head requests (compute gate)
  std::unordered_map<AppInstance*, int> tails_pending;  // streamed tails
  std::unordered_map<AppInstance*, bool> awaiting_tail; // compute done, tails not
  std::unordered_map<AppInstance*, int> stores_pending;

  int instances_remaining = 0;
  bool finished = false;
  RunReport result;
};

FlashAbacus::FlashAbacus(Simulator* sim, const FlashAbacusConfig& config)
    : sim_(sim), config_(config) {
  const std::string err = config_.Validate();
  FAB_CHECK(err.empty()) << "invalid FlashAbacusConfig: " << err;
  if (config_.pdes_threads > 0 && !sim_->pdes_enabled()) {
    // Shard 0 hosts the device; flash channels map to shards 1..channels.
    // Must happen before any component schedules its first event.
    PdesConfig pdes;
    pdes.shards = 1 + config_.nand.channels;
    pdes.threads = config_.pdes_threads;
    pdes.lookahead = config_.nand.OnfiLookahead();
    sim_->EnablePdes(pdes);
  }
  if (!config_.record_full_trace) {
    trace_.SetMask(kEnergyTraceTags);
  }
  trace_.Reserve(config_.record_full_trace ? 16384 : 1024);
  dram_ = std::make_unique<Dram>(config_.dram);
  scratchpad_ = std::make_unique<Scratchpad>(config_.scratchpad);
  tier1_ = std::make_unique<Crossbar>(config_.tier1);
  backbone_ = std::make_unique<FlashBackbone>(config_.nand);
  backbone_->set_op_observer(
      [this](Tick start, Tick end) { trace_.Add(TraceTag::kFlashOp, start, end); });
  backbone_->set_bus_observer([this](int ch, Tick start, Tick end) {
    trace_.Add(TraceTag::kFlashChan, start, end, 1.0, ch);
  });
  flashvisor_ = std::make_unique<Flashvisor>(sim_, backbone_.get(), dram_.get(),
                                             scratchpad_.get(), config_.flashvisor);
  tenants_ = std::make_unique<TenantManager>(config_.tenant_sched);
  flashvisor_->set_tenants(tenants_.get());
  storengine_ = std::make_unique<Storengine>(sim_, flashvisor_.get(), config_.storengine);
  storengine_->set_trace(&trace_);
  pcie_ = std::make_unique<BandwidthResource>("pcie", config_.pcie_gb_per_s,
                                              config_.pcie_latency);
  const int n_workers = config_.num_lwps - 2;  // LWP0 Flashvisor, LWP1 Storengine
  for (int i = 0; i < n_workers; ++i) {
    workers_.push_back(
        std::make_unique<Lwp>(i + 2, config_.lwp, dram_.get(), tier1_.get(), config_.cache));
  }
  RegisterMetrics();
}

void FlashAbacus::RegisterMetrics() {
  for (const auto& w : workers_) {
    w->RegisterMetrics(&metrics_, "lwp/" + std::to_string(w->id()));
  }
  flashvisor_->RegisterMetrics(&metrics_, "flashvisor");
  storengine_->RegisterMetrics(&metrics_, "storengine");
  backbone_->RegisterMetrics(&metrics_, "flash");
  dram_->RegisterMetrics(&metrics_, "dram");
  scratchpad_->RegisterMetrics(&metrics_, "scratchpad");
  tier1_->RegisterMetrics(&metrics_, "noc/tier1");
  metrics_.RegisterCounter("pcie/transfers", &pcie_->transfers_counter());
  metrics_.RegisterGauge("pcie/bytes_moved", [this](Tick) { return pcie_->bytes_moved(); });
  metrics_.RegisterGauge("pcie/busy_ns", [this](Tick now) {
    return static_cast<double>(pcie_->BusyTime(now));
  });
  metrics_.RegisterCounter("host/io_retries", &io_retries_);
  metrics_.RegisterCounter("host/io_failures", &io_failures_);
  metrics_.RegisterCounter("device/crashes", &crashes_);
  metrics_.RegisterCounter("device/recoveries", &recoveries_);
  metrics_.RegisterCounter("device/recovery_lost_groups", &recovery_lost_groups_);
  metrics_.RegisterCounter("device/recovery_torn_groups", &recovery_torn_groups_);
  metrics_.RegisterGauge("device/last_recovery_ns",
                         [this](Tick) { return static_cast<double>(last_recovery_ns_); });
  // Per-tenant metrics register lazily as tenants first become active.
  tenants_->AttachMetrics(&metrics_);
}

void FlashAbacus::SubmitIoReliable(Flashvisor::IoRequest req, int attempt) {
  // Snapshot the request (with its original on_complete) before wrapping, so
  // a retry resubmits an identical request through the same path.
  Flashvisor::IoRequest retry_copy = req;
  req.on_complete = [this, retry_copy = std::move(retry_copy), attempt](Tick t,
                                                                        IoStatus status) mutable {
    if (status == IoStatus::kUncorrectable && attempt + 1 < config_.io_max_attempts) {
      // The device could not correct the data; back off and re-read. A
      // transient cause (die stall, marginal rung) may clear; a hard loss
      // exhausts the attempts and surfaces below.
      io_retries_.Add();
      sim_->Schedule(config_.io_retry_backoff,
                     [this, retry_copy = std::move(retry_copy), attempt]() mutable {
                       SubmitIoReliable(std::move(retry_copy), attempt + 1);
                     });
      return;
    }
    if (status == IoStatus::kUncorrectable || status == IoStatus::kProgramFailed) {
      io_failures_.Add();
    }
    retry_copy.on_complete(t, status);
  };
  flashvisor_->SubmitIo(std::move(req));
}

std::string FlashAbacus::ConfigFingerprint() const {
  // Everything that shapes serialized state: geometry, capacities, core
  // counts. Timing-only knobs are excluded — restoring into a device with
  // different latencies is well-defined (the horizons are absolute ticks).
  std::string fp;
  fp += "lwps=" + std::to_string(config_.num_lwps);
  fp += ";ch=" + std::to_string(config_.nand.channels);
  fp += ";pkg=" + std::to_string(config_.nand.packages_per_channel);
  fp += ";pl=" + std::to_string(config_.nand.planes_per_package);
  fp += ";blk=" + std::to_string(config_.nand.blocks_per_plane);
  fp += ";pgs=" + std::to_string(config_.nand.pages_per_block);
  fp += ";pb=" + std::to_string(config_.nand.page_bytes);
  fp += ";tagq=" + std::to_string(config_.nand.controller_tag_queue_depth);
  fp += ";dram=" + std::to_string(config_.dram.banks);
  fp += ";spad=" + std::to_string(config_.scratchpad.capacity_bytes);
  fp += ";xbar=" + std::to_string(config_.tier1.ports);
  // Multi-tenant configs shape serialized tenant/quota state; single-tenant
  // devices keep the historical fingerprint (empty suffix).
  fp += tenants_->ConfigSuffix();
  return fp;
}

SnapshotBuilder FlashAbacus::BuildSnapshot() const {
  FAB_CHECK(run_ == nullptr || run_->finished) << "cannot snapshot mid-run";
  FAB_CHECK(flashvisor_->QuiescedForSnapshot())
      << "cannot snapshot with I/O queued at Flashvisor";
  FAB_CHECK(sim_->OnlyDaemonsPending())
      << "cannot snapshot with live (non-daemon) events pending";
  SnapshotBuilder b("device");
  b.SetMeta("config", ConfigFingerprint());
  b.SetMeta("sim_now_ns", static_cast<double>(sim_->Now()));
  b.SetMeta("events_executed", static_cast<double>(sim_->events_executed()));
  b.SetMeta("crashed", crashed_ ? "true" : "false");

  b.AddComponent(*sim_);
  // v2: the device section is followed by the tenant-QoS component.
  StateWriter& w = b.AddSection("device", 2);
  w.Str(ConfigFingerprint());
  w.Bool(crashed_);
  pcie_->SaveState(w);
  io_retries_.SaveState(w);
  io_failures_.SaveState(w);
  crashes_.SaveState(w);
  recoveries_.SaveState(w);
  recovery_lost_groups_.SaveState(w);
  recovery_torn_groups_.SaveState(w);
  w.U64(last_recovery_ns_);

  b.AddComponent(trace_);
  b.AddComponent(*dram_);
  b.AddComponent(*scratchpad_);
  b.AddComponent(*tier1_);
  b.AddComponent(*backbone_);
  b.AddComponent(backbone_->faults());
  for (int ch = 0; ch < config_.nand.channels; ++ch) {
    b.AddComponent(backbone_->controller(ch));
  }
  b.AddComponent(*flashvisor_);
  b.AddComponent(flashvisor_->mapping());
  b.AddComponent(flashvisor_->blocks());
  b.AddComponent(flashvisor_->range_lock());
  b.AddComponent(*tenants_);
  b.AddComponent(*storengine_);
  for (const auto& worker : workers_) {
    b.AddComponent(*worker);
  }
  return b;
}

bool FlashAbacus::Snapshot(const std::string& path, std::string* error) const {
  return BuildSnapshot().WriteFile(path, error);
}

bool FlashAbacus::Resume(const SnapshotFile& snap, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  FAB_CHECK(run_ == nullptr || run_->finished) << "cannot resume into a running device";
  if (snap.kind() != "device") {
    return fail("snapshot kind '" + snap.kind() + "' is not a device snapshot");
  }
  // Gate on the config fingerprint before touching any state.
  {
    StateReader r = snap.Open("device", 2);
    if (!r.ok()) {
      return fail(r.error());
    }
    const std::string fp = r.Str();
    if (!r.ok()) {
      return fail("corrupt device section: " + r.error());
    }
    if (fp != ConfigFingerprint()) {
      return fail("config mismatch: snapshot built for '" + fp + "', this device is '" +
                  ConfigFingerprint() + "'");
    }
  }
  // Stale events (inert daemon ticks from a previous run) must not fire into
  // the restored state; the queue rebuilds from component state as the
  // resumed run schedules work.
  sim_->Halt();
  run_.reset();

  std::string err;
  auto restore = [&](Snapshottable* s) { return snap.Restore(s, &err); };
  if (!restore(sim_) || !restore(&trace_) || !restore(dram_.get()) ||
      !restore(scratchpad_.get()) || !restore(tier1_.get()) || !restore(backbone_.get()) ||
      !restore(&backbone_->faults())) {
    return fail(err);
  }
  for (int ch = 0; ch < config_.nand.channels; ++ch) {
    if (!restore(&backbone_->controller(ch))) {
      return fail(err);
    }
  }
  if (!restore(flashvisor_.get()) || !restore(&flashvisor_->mapping()) ||
      !restore(&flashvisor_->blocks()) || !restore(&flashvisor_->range_lock()) ||
      !restore(tenants_.get()) || !restore(storengine_.get())) {
    return fail(err);
  }
  for (const auto& worker : workers_) {
    if (!restore(worker.get())) {
      return fail(err);
    }
  }

  StateReader r = snap.Open("device", 2);
  r.Str();  // fingerprint, validated above
  crashed_ = r.Bool();
  pcie_->LoadState(r);
  io_retries_.LoadState(r);
  io_failures_.LoadState(r);
  crashes_.LoadState(r);
  recoveries_.LoadState(r);
  recovery_lost_groups_.LoadState(r);
  recovery_torn_groups_.LoadState(r);
  last_recovery_ns_ = r.U64();
  if (!r.ok()) {
    return fail("corrupt device section: " + r.error());
  }
  if (!r.AtEnd()) {
    return fail("device section has trailing bytes");
  }
  return true;
}

bool FlashAbacus::Resume(const std::string& path, std::string* error) {
  SnapshotFile snap;
  std::string err;
  if (!SnapshotFile::Load(path, &snap, &err)) {
    if (error != nullptr) {
      *error = err;
    }
    return false;
  }
  return Resume(snap, error);
}

void FlashAbacus::CrashAt(Tick when) {
  sim_->ScheduleAt(when, [this]() { Crash(); });
}

void FlashAbacus::Crash() {
  // Power cut: everything scheduled after this instant never happens, flash
  // programs still in flight tear, and all volatile state vanishes. The
  // flash array itself (data + OOB) survives inside the backbone.
  crashed_ = true;
  crashes_.Add();
  sim_->Halt();
  storengine_->Stop();
  backbone_->PowerFail(sim_->Now());
  flashvisor_->OnPowerLoss();
  if (run_ != nullptr) {
    // The range lock died with the device; the abandoned run's lock handles
    // are meaningless and must not be released against the rebuilt lock.
    for (AppInstance* inst : run_->instances) {
      for (DataSection& s : inst->sections()) {
        s.lock_ids.clear();
      }
    }
  }
  run_.reset();  // the abandoned run's done callback never fires
}

Flashvisor::RecoveryReport FlashAbacus::RecoverFromFlash() {
  FAB_CHECK(crashed_) << "RecoverFromFlash is only valid after a crash";
  const Tick start = sim_->Now();
  const Flashvisor::RecoveryReport rep = flashvisor_->RecoverFromFlash(start);
  // Point Storengine at the journal found on flash so its next dump frees
  // the right predecessor, then re-arm the background daemons.
  storengine_->SetJournalLocation(rep.found_journal ? rep.journal_bg : BlockManager::kNone);
  recoveries_.Add();
  recovery_lost_groups_.Add(rep.lost_groups);
  recovery_torn_groups_.Add(rep.torn_groups);
  last_recovery_ns_ = rep.done - start;
  crashed_ = false;
  return rep;
}

FlashAbacus::~FlashAbacus() = default;

std::uint64_t FlashAbacus::SectionFuncBytes(const AppInstance& inst,
                                            const DataSection& s) const {
  if (s.spec->buffer_index < 0) {
    return 0;
  }
  return inst.buffer(s.spec->buffer_index).size() * sizeof(float);
}

bool FlashAbacus::InstallData(AppInstance* inst, std::function<void(Tick)> done) {
  // Materialize the instance's data sections: allocate logical flash extents
  // (charged against the tenant's flash-space quota, all-or-nothing) and
  // stream the input buffers in through Flashvisor's normal write path.
  inst->sections().clear();
  std::vector<std::uint64_t> sizes;
  for (const DataSectionSpec& spec : inst->spec().sections) {
    DataSection s;
    s.spec = &spec;
    std::uint64_t func_bytes = 0;
    if (spec.buffer_index >= 0) {
      func_bytes = inst->buffer(spec.buffer_index).size() * sizeof(float);
    }
    const double model = inst->model_input_bytes() * spec.model_fraction;
    s.model_bytes = std::max<std::uint64_t>(static_cast<std::uint64_t>(model), func_bytes);
    s.model_bytes = std::max<std::uint64_t>(s.model_bytes, 1);
    sizes.push_back(s.model_bytes);
    inst->sections().push_back(s);
  }
  std::vector<std::uint64_t> addrs;
  if (!flashvisor_->TryAllocTenantExtents(inst->tenant, sizes, &addrs)) {
    inst->sections().clear();  // quota denial: nothing allocated, done never fires
    return false;
  }
  for (std::size_t i = 0; i < inst->sections().size(); ++i) {
    inst->sections()[i].flash_addr = addrs[i];
  }

  auto pending = std::make_shared<int>(0);
  auto latest = std::make_shared<Tick>(sim_->Now());
  for (DataSection& s : inst->sections()) {
    if (s.spec->dir != DataSectionSpec::Dir::kIn) {
      continue;
    }
    ++*pending;
    Flashvisor::IoRequest req;
    req.type = Flashvisor::IoRequest::Type::kWrite;
    req.flash_addr = s.flash_addr;
    req.model_bytes = s.model_bytes;
    req.tenant = inst->tenant;
    if (s.spec->buffer_index >= 0) {
      req.func_data = inst->buffer(s.spec->buffer_index).data();
      req.func_bytes = SectionFuncBytes(*inst, s);
    }
    req.on_complete = [pending, latest, done](Tick t, IoStatus) {
      *latest = std::max(*latest, t);
      if (--*pending == 0) {
        done(*latest);
      }
    };
    SubmitIoReliable(std::move(req));
  }
  if (*pending == 0) {
    sim_->Schedule(0, [done, latest]() { done(*latest); });
  }
  return true;
}

void FlashAbacus::ReadSectionFromFlash(AppInstance* inst, int section_idx,
                                       std::vector<float>* out,
                                       std::function<void(Tick)> done) {
  DataSection& s = inst->sections().at(static_cast<std::size_t>(section_idx));
  const std::uint64_t func_bytes = SectionFuncBytes(*inst, s);
  out->assign(func_bytes / sizeof(float), 0.0f);
  Flashvisor::IoRequest req;
  req.type = Flashvisor::IoRequest::Type::kRead;
  req.flash_addr = s.flash_addr;
  req.model_bytes = s.model_bytes;
  req.tenant = inst->tenant;
  req.func_data = out->data();
  req.func_bytes = func_bytes;
  req.on_complete = [done = std::move(done)](Tick t, IoStatus) { done(t); };
  SubmitIoReliable(std::move(req));
}

void FlashAbacus::Run(std::vector<AppInstance*> instances, SchedulerKind kind,
                      std::function<void(RunReport)> done) {
  FAB_CHECK(run_ == nullptr || run_->finished) << "device already running a workload";
  FAB_CHECK(!instances.empty());
  run_ = std::make_unique<RunState>();
  RunState* rs = run_.get();
  rs->kind = kind;
  rs->instances = std::move(instances);
  rs->done_cb = std::move(done);
  rs->start_time = sim_->Now();
  rs->worker_free.assign(workers_.size(), true);
  rs->static_queues.assign(workers_.size(), {});
  rs->instances_remaining = static_cast<int>(rs->instances.size());
  rs->result.system = SchedulerKindName(kind);

  storengine_->Start();

  // Inter-kernel modes execute each kernel as a single instruction stream,
  // so their chain nodes have exactly one screen per microblock.
  const bool inter = kind == SchedulerKind::kInterStatic || kind == SchedulerKind::kInterDynamic;
  const int fanout = inter ? 1 : num_workers();
  for (AppInstance* inst : rs->instances) {
    rs->chain.AddApp(inst, fanout);
    inst->submit_time = sim_->Now();
    tenants_->OnSubmit(inst->tenant, sim_->Now());
    OffloadKernel(rs, inst);
  }
}

void FlashAbacus::OffloadKernel(RunState* rs, AppInstance* inst) {
  // Host-side toolchain: serialize the kernel into its description table
  // (real bytes — an ELF-like object, see kernel_table.h), then write it
  // through the PCIe BAR into DDR3L and raise an interrupt that Flashvisor
  // services (paper §4, "Offload"/"Execution"). The transferred payload is
  // the table plus the .text/.heap/.stack images it declares.
  auto table = std::make_shared<std::vector<std::uint8_t>>(
      SerializeKernelTable(inst->spec()));
  const double table_bytes =
      static_cast<double>(table->size()) + static_cast<double>(inst->spec().text_bytes);
  const BandwidthResource::Reservation r = pcie_->Reserve(sim_->Now(), table_bytes);
  trace_.Add(TraceTag::kPcieXfer, r.start, r.end);
  const Tick dram_done = dram_->BulkAccess(r.end, table_bytes);
  sim_->ScheduleAt(dram_done, [this, rs, inst, table]() {
    // Interrupt -> Flashvisor parses and validates the description table
    // before registering the kernel (a corrupted offload must not execute).
    KernelSpec parsed;
    std::string error;
    FAB_CHECK(ParseKernelTable(*table, &parsed, &error))
        << "kernel table rejected: " << error;
    FAB_CHECK_EQ(parsed.name, inst->spec().name);
    FAB_CHECK_EQ(parsed.num_microblocks(), inst->spec().num_microblocks());
    FAB_CHECK_EQ(parsed.sections.size(), inst->spec().sections.size());
    StartLoad(rs, inst);
    if (tenants_->weighted_fair()) {
      // Activation clamp: a tenant that was idle must not bank credit — its
      // virtual time jumps forward to the floor of the currently-active set,
      // so it competes fairly from "now" instead of replaying its idle past.
      double floor_vt = 0.0;
      bool have_floor = false;
      for (const AppInstance* other : rs->instances) {
        if (other->tenant == inst->tenant || other->done) {
          continue;
        }
        const double vt = tenants_->virtual_time(other->tenant);
        if (!have_floor || vt < floor_vt) {
          floor_vt = vt;
          have_floor = true;
        }
      }
      if (have_floor) {
        tenants_->ClampVirtualTime(inst->tenant, floor_vt);
      }
    }
    switch (rs->kind) {
      case SchedulerKind::kInterStatic:
        rs->static_queues[static_cast<std::size_t>(inst->app_id()) % workers_.size()]
            .push_back(PendingKernel{inst, 0});
        break;
      case SchedulerKind::kInterDynamic:
        rs->dynamic_queue.push_back(PendingKernel{inst, 0});
        break;
      default:
        break;
    }
    TryDispatch(rs);
  });
}

void FlashAbacus::StartLoad(RunState* rs, AppInstance* inst) {
  // Streamed loads (paper §2.2: DDR3L hides flash latency): each input
  // section splits into a *head* request — the prefix the kernel needs
  // before its first microblock can run — and a background *tail* that
  // streams in under the compute. Functional bytes ride whichever request
  // covers their offsets; both hold read locks until the kernel finishes.
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const double head_frac = std::clamp(config_.load_stream_fraction, 0.0, 1.0);

  int n_heads = 0;
  int n_tails = 0;
  struct Piece {
    DataSection* section;
    std::uint64_t addr;
    std::uint64_t model_bytes;
    void* func_data;
    std::uint64_t func_bytes;
    bool is_head;
  };
  std::vector<Piece> pieces;
  for (DataSection& s : inst->sections()) {
    if (s.spec->dir != DataSectionSpec::Dir::kIn) {
      continue;
    }
    const std::uint64_t n_groups = (s.model_bytes + group_bytes - 1) / group_bytes;
    std::uint64_t head_groups = static_cast<std::uint64_t>(
        static_cast<double>(n_groups) * head_frac + 0.999);
    head_groups = std::max<std::uint64_t>(1, std::min(head_groups, n_groups));
    const std::uint64_t head_bytes = std::min(head_groups * group_bytes, s.model_bytes);
    std::uint8_t* func = nullptr;
    std::uint64_t func_bytes = 0;
    if (s.spec->buffer_index >= 0) {
      func = reinterpret_cast<std::uint8_t*>(inst->buffer(s.spec->buffer_index).data());
      func_bytes = SectionFuncBytes(*inst, s);
    }
    pieces.push_back(Piece{&s, s.flash_addr, head_bytes, func,
                           std::min(func_bytes, head_bytes), true});
    ++n_heads;
    if (head_bytes < s.model_bytes) {
      const std::uint64_t tail_func =
          func_bytes > head_bytes ? func_bytes - head_bytes : 0;
      pieces.push_back(Piece{&s, s.flash_addr + head_groups * group_bytes,
                             s.model_bytes - head_bytes,
                             tail_func > 0 ? func + head_bytes : nullptr, tail_func, false});
      ++n_tails;
    }
  }
  rs->loads_pending[inst] = n_heads;
  rs->tails_pending[inst] = n_tails;
  rs->awaiting_tail[inst] = false;
  if (n_heads == 0) {
    inst->load_done_time = sim_->Now();
    rs->chain.MarkLoadDone(inst);
    TryDispatch(rs);
    return;
  }
  for (Piece& p : pieces) {
    Flashvisor::IoRequest req;
    req.type = Flashvisor::IoRequest::Type::kRead;
    req.flash_addr = p.addr;
    req.model_bytes = p.model_bytes;
    req.tenant = inst->tenant;
    req.func_data = p.func_data;
    req.func_bytes = p.func_bytes;
    req.hold_lock = true;
    DataSection* section = p.section;
    req.lock_holder = [section](RangeLock::LockId id) { section->lock_ids.push_back(id); };
    if (p.is_head) {
      req.on_complete = [this, rs, inst](Tick t, IoStatus) {
        if (--rs->loads_pending[inst] == 0) {
          inst->load_done_time = t;
          rs->chain.MarkLoadDone(inst);
          // Wake a worker stalled on this kernel's data (inter-kernel modes).
          auto it = rs->waiting_worker.find(inst);
          if (it != rs->waiting_worker.end()) {
            const int w = it->second;
            rs->waiting_worker.erase(it);
            RunKernelMicroblock(rs, inst, w, 0);
          } else {
            TryDispatch(rs);
          }
        }
      };
      SubmitIoReliable(std::move(req));
    } else {
      // Tails self-pace: one outstanding chunk per section, so background
      // streaming never books the whole device ahead of other kernels'
      // demand (head) fetches.
      StreamTail(rs, inst, p.section, p.addr, p.model_bytes,
                 static_cast<std::uint8_t*>(p.func_data), p.func_bytes);
    }
  }
}

void FlashAbacus::StreamTail(RunState* rs, AppInstance* inst, DataSection* section,
                             std::uint64_t addr, std::uint64_t remaining,
                             std::uint8_t* func_data, std::uint64_t func_remaining) {
  const std::uint64_t group_bytes = backbone_->config().GroupBytes();
  const std::uint64_t chunk = std::min<std::uint64_t>(remaining, 16 * group_bytes);
  Flashvisor::IoRequest req;
  req.type = Flashvisor::IoRequest::Type::kRead;
  req.flash_addr = addr;
  req.model_bytes = chunk;
  req.tenant = inst->tenant;
  req.func_data = func_remaining > 0 ? func_data : nullptr;
  req.func_bytes = std::min(func_remaining, chunk);
  req.hold_lock = true;
  req.lock_holder = [section](RangeLock::LockId id) { section->lock_ids.push_back(id); };
  req.on_complete = [this, rs, inst, section, addr, remaining, chunk, func_data,
                     func_remaining](Tick, IoStatus) {
    if (remaining > chunk) {
      const std::uint64_t consumed_func = std::min(func_remaining, chunk);
      StreamTail(rs, inst, section, addr + chunk, remaining - chunk,
                 func_data == nullptr ? nullptr : func_data + consumed_func,
                 func_remaining - consumed_func);
      return;
    }
    if (--rs->tails_pending[inst] == 0 && rs->awaiting_tail[inst]) {
      rs->awaiting_tail[inst] = false;
      StartWriteback(rs, inst);
    }
  };
  SubmitIoReliable(std::move(req));
}

void FlashAbacus::OnComputeDone(RunState* rs, AppInstance* inst) {
  inst->compute_done_time = sim_->Now();
  if (rs->tails_pending[inst] > 0) {
    // The kernel consumed its streamed input no faster than it arrived:
    // completion waits for the last tail bytes.
    rs->awaiting_tail[inst] = true;
    return;
  }
  StartWriteback(rs, inst);
}

void FlashAbacus::TryDispatch(RunState* rs) {
  if (rs->finished) {
    return;
  }
  if (rs->kind == SchedulerKind::kInterStatic || rs->kind == SchedulerKind::kInterDynamic) {
    DispatchInterKernel(rs);
  } else {
    DispatchIntraKernel(rs);
  }
}

std::vector<int> FlashAbacus::TenantDispatchOrder(const RunState* rs) const {
  // Preference order over the run's instances: latency-class tenants first,
  // then least tenant virtual time, then tenant id; stable sort keeps the
  // submission order within a tenant.
  std::vector<int> order(rs->instances.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::stable_sort(order.begin(), order.end(), [this, rs](int a, int b) {
    const TenantId ta = rs->instances[static_cast<std::size_t>(a)]->tenant;
    const TenantId tb = rs->instances[static_cast<std::size_t>(b)]->tenant;
    if (ta == tb) {
      return false;
    }
    const bool la = tenants_->latency_class(ta);
    const bool lb = tenants_->latency_class(tb);
    if (la != lb) {
      return la;
    }
    const double va = tenants_->virtual_time(ta);
    const double vb = tenants_->virtual_time(tb);
    if (va != vb) {
      return va < vb;
    }
    return ta < tb;
  });
  return order;
}

std::size_t FlashAbacus::PickPendingKernel(const RunState* rs,
                                           const std::deque<PendingKernel>& q) const {
  (void)rs;
  // Same key as TenantDispatchOrder, applied to one inter-kernel queue:
  // latency class, then least virtual time, then tenant id, then FIFO.
  std::size_t best = 0;
  for (std::size_t i = 1; i < q.size(); ++i) {
    const TenantId ti = q[i].inst->tenant;
    const TenantId tb = q[best].inst->tenant;
    if (ti == tb) {
      continue;  // FIFO within a tenant
    }
    const bool li = tenants_->latency_class(ti);
    const bool lb = tenants_->latency_class(tb);
    if (li != lb) {
      if (li) {
        best = i;
      }
      continue;
    }
    const double vi = tenants_->virtual_time(ti);
    const double vb = tenants_->virtual_time(tb);
    if (vi != vb) {
      if (vi < vb) {
        best = i;
      }
      continue;
    }
    if (ti < tb) {
      best = i;
    }
  }
  return best;
}

bool FlashAbacus::ShouldPreemptInter(const RunState* rs, const AppInstance* inst,
                                     int worker) const {
  if (!tenants_->weighted_fair() || tenants_->latency_class(inst->tenant)) {
    return false;
  }
  const std::deque<PendingKernel>& q = rs->kind == SchedulerKind::kInterStatic
                                           ? rs->static_queues[static_cast<std::size_t>(worker)]
                                           : rs->dynamic_queue;
  for (const PendingKernel& pk : q) {
    if (tenants_->latency_class(pk.inst->tenant) && rs->chain.IsLoadDone(pk.inst)) {
      return true;
    }
  }
  return false;
}

void FlashAbacus::DispatchInterKernel(RunState* rs) {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!rs->worker_free[w]) {
      continue;
    }
    std::deque<PendingKernel>& q =
        rs->kind == SchedulerKind::kInterStatic ? rs->static_queues[w] : rs->dynamic_queue;
    if (q.empty()) {
      continue;
    }
    const std::size_t pick = tenants_->weighted_fair() ? PickPendingKernel(rs, q) : 0;
    const PendingKernel pk = q[pick];
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
    rs->worker_free[w] = false;
    const int worker = static_cast<int>(w);
    flashvisor_->RunSchedulingTask([this, rs, pk, worker](Tick t) {
      trace_.Add(TraceTag::kSchedule, t - flashvisor_->config().scheduling_cost, t);
      RunWholeKernel(rs, pk.inst, worker, pk.resume_mblk);
    });
  }
}

void FlashAbacus::RunWholeKernel(RunState* rs, AppInstance* inst, int worker, int start_mblk) {
  // PSC wake/boot sequence, then execute the kernel as a single instruction
  // stream: every microblock in order on this one LWP. A preempted kernel
  // resumes at the microblock boundary where it yielded.
  workers_[static_cast<std::size_t>(worker)]->BootKernel(sim_->Now());
  if (!rs->chain.IsLoadDone(inst)) {
    // Stall (occupied but not utilized) until the data sections arrive.
    FAB_CHECK_EQ(start_mblk, 0);  // a preempted kernel already had its data
    rs->waiting_worker[inst] = worker;
    return;
  }
  RunKernelMicroblock(rs, inst, worker, start_mblk);
}

void FlashAbacus::RunKernelMicroblock(RunState* rs, AppInstance* inst, int worker, int mblk) {
  Lwp& lwp = *workers_[static_cast<std::size_t>(worker)];
  const ScreenWork work = ComputeScreenWork(*inst, mblk, 0, 1);
  tenants_->ChargeWork(inst->tenant, work.instructions);
  const Lwp::ScreenTiming t = lwp.ExecuteScreen(sim_->Now(), work);
  trace_.Add(TraceTag::kLwpCompute, t.start, t.end, t.avg_fus_busy, lwp.id());
  ScreenRef ref{inst, mblk, 0, 1};
  rs->chain.OnDispatched(ref);
  sim_->ScheduleAt(t.end, [this, rs, inst, worker, mblk, ref]() {
    const MicroblockSpec& spec = inst->spec().microblocks[static_cast<std::size_t>(mblk)];
    if (spec.body) {
      spec.body(*inst, 0, spec.func_iterations);
    }
    const bool kernel_done = rs->chain.OnScreenComplete(ref);
    if (!kernel_done) {
      if (ShouldPreemptInter(rs, inst, worker)) {
        // Weighted-fair preemption point: yield the LWP to a queued
        // latency-class kernel; this one re-queues at its next microblock.
        std::deque<PendingKernel>& q =
            rs->kind == SchedulerKind::kInterStatic
                ? rs->static_queues[static_cast<std::size_t>(worker)]
                : rs->dynamic_queue;
        q.push_back(PendingKernel{inst, mblk + 1});
        rs->worker_free[static_cast<std::size_t>(worker)] = true;
        TryDispatch(rs);
        return;
      }
      RunKernelMicroblock(rs, inst, worker, mblk + 1);
      return;
    }
    rs->worker_free[static_cast<std::size_t>(worker)] = true;
    OnComputeDone(rs, inst);
    TryDispatch(rs);
  });
}

void FlashAbacus::DispatchIntraKernel(RunState* rs) {
  while (true) {
    int worker = -1;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (rs->worker_free[w]) {
        worker = static_cast<int>(w);
        break;
      }
    }
    if (worker < 0) {
      return;
    }
    ScreenRef ref;
    bool found;
    if (tenants_->weighted_fair()) {
      // Re-rank every iteration: each dispatch advances the tenant's virtual
      // time, which can flip the preference before the next free worker.
      const std::vector<int> order = TenantDispatchOrder(rs);
      found = rs->kind == SchedulerKind::kIntraInOrder
                  ? rs->chain.NextReadyScreenInOrderOrdered(order, &ref)
                  : rs->chain.NextReadyScreenOrdered(order, &ref);
    } else {
      found = rs->kind == SchedulerKind::kIntraInOrder ? rs->chain.NextReadyScreenInOrder(&ref)
                                                       : rs->chain.NextReadyScreen(&ref);
    }
    if (!found) {
      return;
    }
    rs->chain.OnDispatched(ref);
    tenants_->ChargeWork(
        ref.inst->tenant,
        ComputeScreenWork(*ref.inst, ref.mblk, ref.screen, ref.num_screens).instructions);
    rs->worker_free[static_cast<std::size_t>(worker)] = false;
    // Each screen dispatch is a Flashvisor decision plus queue round trips —
    // the fine-granularity overhead the paper measures against IntraO3.
    flashvisor_->RunSchedulingTask([this, rs, ref, worker](Tick t) {
      trace_.Add(TraceTag::kSchedule, t - flashvisor_->config().scheduling_cost, t);
      ExecuteScreenOn(rs, ref, worker);
    });
  }
}

void FlashAbacus::ExecuteScreenOn(RunState* rs, const ScreenRef& ref, int worker) {
  Lwp& lwp = *workers_[static_cast<std::size_t>(worker)];
  const ScreenWork work = ComputeScreenWork(*ref.inst, ref.mblk, ref.screen, ref.num_screens);
  const Tick start = sim_->Now() + flashvisor_->config().queue_latency;
  const Lwp::ScreenTiming t = lwp.ExecuteScreen(start, work);
  trace_.Add(TraceTag::kLwpCompute, t.start, t.end, t.avg_fus_busy, lwp.id());
  sim_->ScheduleAt(t.end, [this, rs, ref, worker]() {
    const MicroblockSpec& spec =
        ref.inst->spec().microblocks[static_cast<std::size_t>(ref.mblk)];
    if (spec.body) {
      std::size_t begin = 0;
      std::size_t end = 0;
      ScreenFuncRange(*ref.inst, ref.mblk, ref.screen, ref.num_screens, &begin, &end);
      spec.body(*ref.inst, begin, end);
    }
    const bool kernel_done = rs->chain.OnScreenComplete(ref);
    rs->worker_free[static_cast<std::size_t>(worker)] = true;
    if (kernel_done) {
      OnComputeDone(rs, ref.inst);
    }
    TryDispatch(rs);
  });
}

void FlashAbacus::StartWriteback(RunState* rs, AppInstance* inst) {
  // The kernel no longer uses its input mappings: release the read locks.
  for (DataSection& s : inst->sections()) {
    for (std::uint64_t id : s.lock_ids) {
      flashvisor_->ReleaseLock(id);
    }
    s.lock_ids.clear();
  }
  int n_outputs = 0;
  for (DataSection& s : inst->sections()) {
    if (s.spec->dir == DataSectionSpec::Dir::kOut) {
      ++n_outputs;
    }
  }
  rs->stores_pending[inst] = n_outputs;
  if (n_outputs == 0) {
    FinishInstance(rs, inst, sim_->Now());
    return;
  }
  for (DataSection& s : inst->sections()) {
    if (s.spec->dir != DataSectionSpec::Dir::kOut) {
      continue;
    }
    Flashvisor::IoRequest req;
    req.type = Flashvisor::IoRequest::Type::kWrite;
    req.flash_addr = s.flash_addr;
    req.model_bytes = s.model_bytes;
    req.tenant = inst->tenant;
    if (s.spec->buffer_index >= 0) {
      req.func_data = inst->buffer(s.spec->buffer_index).data();
      req.func_bytes = SectionFuncBytes(*inst, s);
    }
    req.on_complete = [this, rs, inst](Tick t, IoStatus) {
      if (--rs->stores_pending[inst] == 0) {
        FinishInstance(rs, inst, t);
      }
    };
    SubmitIoReliable(std::move(req));
  }
}

void FlashAbacus::FinishInstance(RunState* rs, AppInstance* inst, Tick when) {
  inst->complete_time = when;
  inst->done = true;
  rs->result.completion_times.push_back(when - rs->start_time);
  rs->result.kernel_latency_ms.Record(TicksToMs(when - inst->submit_time));
  tenants_->OnComplete(inst->tenant, TicksToMs(when - inst->submit_time), when);
  --rs->instances_remaining;
  MaybeFinishRun(rs);
}

void FlashAbacus::MaybeFinishRun(RunState* rs) {
  if (rs->finished || rs->instances_remaining > 0) {
    return;
  }
  rs->finished = true;
  storengine_->Stop();
  FinalizeResult(rs);
  // Hand the result out; keep run_ alive until the next Run() replaces it.
  if (rs->done_cb) {
    rs->done_cb(std::move(rs->result));
  }
}

void FlashAbacus::FinalizeResult(RunState* rs) {
  RunReport& res = rs->result;
  const Tick end = sim_->Now();
  res.metrics = metrics_.Snapshot(end);
  res.tenants = tenants_->BuildReport();
  res.fairness = TenantManager::ComputeFairness(res.tenants);
  res.makespan = end - rs->start_time;
  double input_bytes = 0.0;
  for (const AppInstance* inst : rs->instances) {
    input_bytes += inst->model_input_bytes();
  }
  res.input_bytes = input_bytes;
  res.throughput_mb_s =
      res.makespan == 0 ? 0.0
                        : input_bytes / (1024.0 * 1024.0) / TicksToSeconds(res.makespan);

  // Utilization over the run window only (workers are idle during the
  // pre-run data install, which must not dilute the denominator).
  double util = 0.0;
  for (const auto& w : workers_) {
    util += res.makespan == 0
                ? 0.0
                : static_cast<double>(std::min(w->BusyTime(end), res.makespan)) /
                      static_cast<double>(res.makespan);
  }
  res.worker_utilization = workers_.empty() ? 0.0 : util / static_cast<double>(workers_.size());

  // ---- Energy (accelerator only; no host in the loop) ----
  const PowerModel& p = config_.power;
  EnergyMeter& e = res.energy;
  const Tick T = res.makespan;
  for (const auto& w : workers_) {
    const Tick busy = std::min(w->BusyTime(end), T);
    // PSC sleep accounting (paper §4, "Execution": Flashvisor parks idle
    // LWPs through the power/sleep controller): long idle gaps draw the
    // deep-sleep power instead of the idle power.
    const Tick sleep = std::min(w->SleepTime(rs->start_time, end), T - busy);
    e.AddActive(EnergyBucket::kComputation, "lwp", p.lwp_active_w, 0, busy);
    e.AddStatic(EnergyBucket::kComputation, "lwp", p.lwp_sleep_w, sleep);
    e.AddStatic(EnergyBucket::kComputation, "lwp", p.lwp_idle_w, T - busy - sleep);
  }
  // Flashvisor and Storengine poll their queues for the whole run — the paper
  // charges them as always-active cores (InterSt's energy penalty).
  e.AddStatic(EnergyBucket::kComputation, "flashvisor", p.lwp_active_w, T);
  e.AddStatic(EnergyBucket::kComputation, "storengine", p.lwp_active_w, T);

  const Tick dram_busy = std::min(dram_->BusyTime(end), T);
  e.AddActive(EnergyBucket::kComputation, "ddr3l", p.ddr3l_active_w, 0, dram_busy);
  e.AddStatic(EnergyBucket::kComputation, "ddr3l", p.ddr3l_idle_w, T - dram_busy);

  const Tick spm_busy = std::min(scratchpad_->BusyTime(end), T);
  e.AddActive(EnergyBucket::kComputation, "scratchpad", p.scratchpad_active_w, 0, spm_busy);
  e.AddStatic(EnergyBucket::kComputation, "scratchpad", p.scratchpad_idle_w, T - spm_busy);

  // Scope the device-lifetime trace to this run (drops install activity and
  // re-bases interval times to the run start).
  res.trace = trace_.Window(rs->start_time, end);

  const Tick flash_busy = std::min(res.trace.UnionTime(TraceTag::kFlashOp), T);
  e.AddActive(EnergyBucket::kStorageAccess, "flash", p.flash_active_w, 0, flash_busy);
  e.AddStatic(EnergyBucket::kStorageAccess, "flash", p.flash_idle_w, T - flash_busy);

  const Tick pcie_busy = std::min(res.trace.UnionTime(TraceTag::kPcieXfer), T);
  e.AddActive(EnergyBucket::kDataMovement, "pcie", p.pcie_active_w, 0, pcie_busy);
  e.AddStatic(EnergyBucket::kDataMovement, "pcie", p.pcie_idle_w, T - pcie_busy);
}

}  // namespace fabacus
