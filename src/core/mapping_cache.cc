#include "src/core/mapping_cache.h"

namespace fabacus {

MappingCache::MappingCache(std::uint64_t total_entries, const MappingCacheConfig& config)
    : config_(config), table_(total_entries, kUnmapped) {
  FAB_CHECK_GT(config_.entries_per_page, 0u);
  // cache_pages == 0 is the degenerate always-miss cache: every Lookup pays
  // the miss cost and every Update pays miss + write-back (nothing can stay
  // resident to absorb the dirty bit).
}

void MappingCache::FetchPage(std::uint64_t page_index, Tick* cost) {
  ++misses_;
  *cost += config_.miss_cost;
  if (config_.cache_pages == 0) {
    return;  // nowhere to cache the fetched page
  }
  if (lru_.size() >= config_.cache_pages) {
    const CachedPage victim = lru_.back();
    if (victim.dirty) {
      ++writebacks_;
      *cost += config_.writeback_cost;
    }
    index_.erase(victim.page_index);
    lru_.pop_back();
  }
  lru_.push_front(CachedPage{page_index, false});
  index_[page_index] = lru_.begin();
}

std::uint32_t MappingCache::Lookup(std::uint64_t logical_group, Tick* cost) {
  FAB_CHECK_LT(logical_group, table_.size());
  *cost = config_.hit_cost;
  const std::uint64_t page = logical_group / config_.entries_per_page;
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
  } else {
    FetchPage(page, cost);
  }
  return table_[logical_group];
}

void MappingCache::Update(std::uint64_t logical_group, std::uint32_t physical_group,
                          Tick* cost) {
  FAB_CHECK_LT(logical_group, table_.size());
  *cost = config_.hit_cost;
  const std::uint64_t page = logical_group / config_.entries_per_page;
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    FetchPage(page, cost);
  }
  if (lru_.empty()) {
    // Zero-capacity cache: the dirtied page flushes straight back out.
    ++writebacks_;
    *cost += config_.writeback_cost;
  } else {
    lru_.begin()->dirty = true;
  }
  table_[logical_group] = physical_group;
}

void MappingCache::SaveState(StateWriter& w) const {
  w.VecU32(table_);
  w.U64(lru_.size());
  for (const CachedPage& page : lru_) {  // front (most recent) first
    w.U64(page.page_index);
    w.Bool(page.dirty);
  }
  w.U64(hits_);
  w.U64(misses_);
  w.U64(writebacks_);
}

void MappingCache::LoadState(StateReader& r) {
  const std::vector<std::uint32_t> table = r.VecU32();
  if (r.ok() && table.size() != table_.size()) {
    r.Fail("mapping cache table size mismatch");
    return;
  }
  const std::uint64_t resident = r.U64();
  if (r.ok() && resident > config_.cache_pages) {
    r.Fail("mapping cache residency exceeds capacity");
    return;
  }
  lru_.clear();
  index_.clear();
  for (std::uint64_t i = 0; i < resident && r.ok(); ++i) {
    CachedPage page;
    page.page_index = r.U64();
    page.dirty = r.Bool();
    lru_.push_back(page);
    index_[page.page_index] = std::prev(lru_.end());
  }
  hits_ = r.U64();
  misses_ = r.U64();
  writebacks_ = r.U64();
  if (r.ok()) {
    table_ = table;
  }
}

}  // namespace fabacus
