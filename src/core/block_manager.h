// Block-group lifecycle for Flashvisor/Storengine. A block group is the
// GC/erase unit: one block at the same index on every plane of one package,
// striped across all four channels (paper §4.3). The manager tracks the free
// pool, the used pool in allocation order (Storengine picks GC victims from
// it round-robin rather than by valid-count, §4.3 "Storage management"),
// per-group valid bitmaps, and retired (bad) block groups.
#ifndef SRC_CORE_BLOCK_MANAGER_H_
#define SRC_CORE_BLOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/flash/nand_config.h"
#include "src/sim/log.h"
#include "src/sim/snapshot.h"

namespace fabacus {

class BlockManager : public Snapshottable {
 public:
  explicit BlockManager(const NandConfig& config);

  // Pulls a block group from the free pool. Returns kNone when empty.
  std::uint64_t AllocBlockGroup();
  // Moves a fully-written block group into the used pool (GC candidates).
  void SealBlockGroup(std::uint64_t bg);
  // Round-robin GC victim: the oldest sealed block group. kNone when empty.
  std::uint64_t PickVictim();
  // Returns an erased block group to the free pool.
  void OnErased(std::uint64_t bg);
  // Permanently retires a block group (uncorrectable error / erase failure /
  // program-status fail). A retired group never re-enters the free pool, but
  // slots already holding valid data stay readable until the scrubber
  // migrates them out.
  void Retire(std::uint64_t bg);
  bool IsRetired(std::uint64_t bg) const { return is_retired_[bg]; }

  // Crash-recovery rebuild support -------------------------------------------
  // Returns every block group to the free pool and clears all valid bitmaps
  // and retirement state (the on-die wear/bad state lives in the backbone).
  void Reset();
  // Removes `bg` from the free pool (so recovery can re-seal/retire it).
  // Returns false when `bg` is not currently free.
  bool TakeFree(std::uint64_t bg);
  // Removes `bg` from the used pool (scrub victim selection). False when absent.
  bool TakeUsed(std::uint64_t bg);
  const std::deque<std::uint64_t>& used() const { return used_; }

  // Valid-page-group bookkeeping. `slot` indexes the group within its block
  // group [0, GroupsPerBlockGroup).
  void MarkValid(std::uint64_t bg, std::uint32_t slot);
  void MarkInvalid(std::uint64_t bg, std::uint32_t slot);
  bool IsValid(std::uint64_t bg, std::uint32_t slot) const;
  std::uint32_t ValidCount(std::uint64_t bg) const { return valid_count_[bg]; }

  std::size_t free_count() const { return free_.size(); }
  std::size_t used_count() const { return used_.size(); }
  std::size_t retired_count() const { return retired_count_; }
  std::uint64_t total_block_groups() const { return total_; }

  static constexpr std::uint64_t kNone = ~0ULL;

  // Snapshottable (docs/SNAPSHOT.md). Pool order is serialized verbatim:
  // allocation and GC-victim order are part of deterministic replay.
  std::string StateName() const override { return "ftl/blocks"; }
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  std::uint64_t total_;
  std::uint64_t groups_per_block_;
  std::deque<std::uint64_t> free_;
  std::deque<std::uint64_t> used_;  // allocation order; front = oldest
  std::vector<std::vector<bool>> valid_;
  std::vector<std::uint32_t> valid_count_;
  std::vector<bool> is_retired_;
  std::size_t retired_count_ = 0;
};

}  // namespace fabacus

#endif  // SRC_CORE_BLOCK_MANAGER_H_
