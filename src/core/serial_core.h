// A single-threaded control processor (one LWP) modelled as a serial FCFS
// server: work items occupy the core back to back. Flashvisor and Storengine
// each run on one of these — the serialization is exactly the IPC/scheduling
// overhead the paper charges against fine-grained scheduling.
#ifndef SRC_CORE_SERIAL_CORE_H_
#define SRC_CORE_SERIAL_CORE_H_

#include <algorithm>
#include <string>

#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

class SerialCore {
 public:
  explicit SerialCore(std::string name) : name_(std::move(name)) {}

  // Occupies the core for `duration` starting no earlier than `now`; returns
  // the interval actually used.
  struct Interval {
    Tick start;
    Tick end;
  };
  Interval Occupy(Tick now, Tick duration) {
    const Tick start = std::max(now, next_free_);
    const Tick end = start + duration;
    next_free_ = end;
    busy_.AddInterval(start, end);
    return Interval{start, end};
  }

  Tick next_free() const { return next_free_; }
  Tick BusyTime(Tick now) const { return busy_.BusyTime(now); }
  double Utilization(Tick now) const { return busy_.Utilization(now); }
  const std::string& name() const { return name_; }

  // Checkpoint/restore of the core's occupancy horizon and busy accounting.
  void SaveState(StateWriter& w) const {
    w.U64(next_free_);
    busy_.SaveState(w);
  }
  void LoadState(StateReader& r) {
    next_free_ = r.U64();
    busy_.LoadState(r);
  }

 private:
  std::string name_;
  Tick next_free_ = 0;
  BusyTracker busy_;
};

}  // namespace fabacus

#endif  // SRC_CORE_SERIAL_CORE_H_
