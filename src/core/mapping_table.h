// Flashvisor's page-group mapping table (paper §4.3).
//
// Log-structured pure page(-group) mapping: logical group -> physical group,
// resident in the scratchpad (32 GB / 64 KB groups x 4 B entries = 2 MB,
// matching the paper's scratchpad budget), with a reverse map for GC
// migration. The table also serializes itself for persistence: Storengine's
// journaling dumps it to flash and a block-summary footer is written into
// each sealed block group so the mapping survives power loss.
#ifndef SRC_CORE_MAPPING_TABLE_H_
#define SRC_CORE_MAPPING_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/flash/nand_config.h"
#include "src/mem/scratchpad.h"
#include "src/sim/log.h"
#include "src/sim/snapshot.h"

namespace fabacus {

class MappingTable : public Snapshottable {
 public:
  static constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;

  MappingTable(const NandConfig& config, Scratchpad* scratchpad);

  // Logical -> physical group lookup; kUnmapped when never written.
  std::uint32_t Lookup(std::uint64_t logical_group) const;
  // Installs logical -> physical; returns the previous physical mapping (or
  // kUnmapped). Also maintains the reverse map.
  std::uint32_t Update(std::uint64_t logical_group, std::uint32_t physical_group);
  // Reverse lookup: which logical group currently lives at `physical_group`
  // (kUnmapped when the slot holds stale/no data).
  std::uint32_t ReverseLookup(std::uint32_t physical_group) const;
  // Drops the logical mapping entirely (TRIM-style; used by tests/tools).
  void Unmap(std::uint64_t logical_group);

  std::uint64_t entries() const { return static_cast<std::uint64_t>(forward_.size()); }
  std::uint64_t mapped_count() const { return mapped_count_; }
  std::uint64_t table_bytes() const { return entries() * sizeof(std::uint32_t); }

  // Serializes the forward table into `out` (for journal dumps / block
  // summaries); Restore() is the inverse, used by recovery tests.
  void Snapshot(std::vector<std::uint8_t>* out) const;
  void Restore(const std::vector<std::uint8_t>& snapshot);

  // Power loss: drops every mapping (the scratchpad is volatile). One bulk
  // scratchpad store mirrors the now-empty table region.
  void Clear();

  // Mirror of the table region inside the scratchpad byte store, kept in sync
  // on Update() so snapshots read genuine scratchpad state.
  std::uint64_t scratchpad_offset() const { return scratchpad_offset_; }

  // Snapshottable (docs/SNAPSHOT.md). LoadState re-mirrors the restored
  // table into the scratchpad, so restore order vs. the scratchpad section
  // does not matter (both end on the same bytes).
  std::string StateName() const override { return "ftl/map"; }
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  void SyncEntryToScratchpad(std::uint64_t logical_group);

  Scratchpad* scratchpad_;
  std::uint64_t scratchpad_offset_ = 0;
  std::vector<std::uint32_t> forward_;
  std::vector<std::uint32_t> reverse_;
  std::uint64_t mapped_count_ = 0;
};

}  // namespace fabacus

#endif  // SRC_CORE_MAPPING_TABLE_H_
