// Demand-cached page-group mapping (the DFTL-style alternative the paper
// rejects in favour of a scratchpad-resident full table, §4.3). The full
// logical-to-physical table lives in slow memory (DDR3L or flash); a bounded
// SRAM cache holds recently-used mapping *pages* (runs of consecutive
// entries, as DFTL caches translation pages). Lookups report their cost so
// the mapping ablation can replay real access traces and measure hit ratios
// rather than assuming them.
#ifndef SRC_CORE_MAPPING_CACHE_H_
#define SRC_CORE_MAPPING_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/sim/log.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace fabacus {

struct MappingCacheConfig {
  // Entries per cached translation page (DFTL: one flash page of mappings).
  std::uint32_t entries_per_page = 2048;
  // Cached translation pages (SRAM budget / page size). 0 is legal and means
  // an always-miss cache: every access pays the slow-memory price.
  std::uint32_t cache_pages = 64;
  Tick hit_cost = 150;        // ns: SRAM lookup
  Tick miss_cost = 81 * kUs;  // ns: fetch the translation page from flash
  // Evicting a dirty translation page writes it back first.
  Tick writeback_cost = 200 * kUs;
};

class MappingCache : public Snapshottable {
 public:
  static constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;

  MappingCache(std::uint64_t total_entries, const MappingCacheConfig& config);

  // Translates `logical_group`, charging *cost with the hit or miss price
  // (plus a write-back if a dirty page is evicted).
  std::uint32_t Lookup(std::uint64_t logical_group, Tick* cost);

  // Installs a mapping, dirtying the cached translation page.
  void Update(std::uint64_t logical_group, std::uint32_t physical_group, Tick* cost);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  double HitRatio() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  std::size_t cached_pages() const { return lru_.size(); }

  // Snapshottable: backing table, LRU residency (recency order preserved)
  // and hit/miss accounting.
  std::string StateName() const override { return "ftl/mapcache"; }
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  struct CachedPage {
    std::uint64_t page_index;
    bool dirty = false;
  };
  using LruList = std::list<CachedPage>;

  // Charges a miss (and possibly an eviction) and caches the page.
  void FetchPage(std::uint64_t page_index, Tick* cost);

  MappingCacheConfig config_;
  std::vector<std::uint32_t> table_;  // backing store (slow memory)
  LruList lru_;                       // front = most recent
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace fabacus

#endif  // SRC_CORE_MAPPING_CACHE_H_
