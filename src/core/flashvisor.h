// Flashvisor (paper §3.3, §4.3): the LWP dedicated to self-governing the
// flash backbone. It virtualizes flash into the processors' shared memory
// address space: kernels send queue messages naming a logical flash range and
// a DDR3L data-section pointer; Flashvisor translates through the
// scratchpad-resident page-group mapping table, enforces the range lock, and
// drives the FPGA controllers. Writes are log-structured: every write
// allocates the next page-group slot in the active block group, and sealed
// block groups carry a two-slot mapping summary for persistence.
//
// Real data flows: the functional prefix of every section round-trips through
// the byte-accurate flash store, so FTL correctness (including under GC) is
// observable by tests.
#ifndef SRC_CORE_FLASHVISOR_H_
#define SRC_CORE_FLASHVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/core/block_manager.h"
#include "src/core/mapping_table.h"
#include "src/core/range_lock.h"
#include "src/core/serial_core.h"
#include "src/core/tenant.h"
#include "src/flash/flash_backbone.h"
#include "src/mem/dram.h"
#include "src/mem/scratchpad.h"
#include "src/noc/message_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace fabacus {

struct FlashvisorConfig {
  Tick per_group_translate = 150;   // ns of Flashvisor core time per group
  Tick request_fixed_cost = 500;    // ns per queue message (parse + reply)
  Tick queue_latency = 100;         // ns hardware-queue delivery
  Tick scheduling_cost = 1500;      // ns per scheduling decision (intra modes)
  std::size_t gc_low_watermark = 4; // free block groups that trigger GC help
  // DDR3L write-buffer budget (paper §2.2: DDR3L "buffer[s] the majority of
  // flash writes"). A write is accepted once staged in this buffer; when the
  // outstanding un-programmed bytes exceed the budget, acceptance stalls
  // until enough programs drain.
  std::uint64_t write_buffer_bytes = 256ULL << 20;
};

class Flashvisor : public Snapshottable {
 public:
  struct IoRequest {
    enum class Type { kRead, kWrite };
    Type type = Type::kRead;
    std::uint64_t flash_addr = 0;    // logical byte address, group-aligned
    std::uint64_t model_bytes = 0;   // modeled transfer length (timing)
    void* func_data = nullptr;       // functional payload buffer
    std::uint64_t func_bytes = 0;    // bytes of real data (<= model_bytes)
    // Fires when the request is complete: read data resident in DDR3L, or
    // write accepted into the DDR3L write buffer. The status is the worst
    // outcome across the request's groups — kUncorrectable read data is
    // still delivered (garbage at device level) so the host can decide to
    // retry or fail the offload.
    std::function<void(Tick, IoStatus)> on_complete;
    // Reads: when true the section's read lock is held after completion and
    // its id is handed to `lock_holder`; the owner calls ReleaseLock() later
    // (at kernel completion). Writes always hold their lock until the flash
    // programs land.
    bool hold_lock = false;
    std::function<void(RangeLock::LockId)> lock_holder;
    // Owning tenant: range-lock contention, lock-wait time, GC stalls and
    // created garbage are attributed to it (docs/QOS.md).
    TenantId tenant = kDefaultTenant;
  };

  Flashvisor(Simulator* sim, FlashBackbone* backbone, Dram* dram, Scratchpad* scratchpad,
             const FlashvisorConfig& config = FlashvisorConfig{});

  // Enqueues an I/O request over the hardware message queue.
  void SubmitIo(IoRequest req);

  void ReleaseLock(RangeLock::LockId id);

  // Occupies the Flashvisor core for a scheduling decision; `done` fires when
  // the decision completes. Used by the intra-kernel schedulers.
  void RunSchedulingTask(std::function<void(Tick)> done);

  // Logical capacity exposed to applications (total minus an over-provisioned
  // reserve that keeps GC able to make progress).
  std::uint64_t LogicalCapacityBytes() const;

  // Simple logical-extent allocator for data sections (group aligned).
  std::uint64_t AllocLogicalExtent(std::uint64_t bytes);

  // Tenant-aware variant: atomically admits the whole extent list against
  // the tenant's flash-space quota (all-or-nothing — a denial allocates
  // nothing and counts one quota denial), then allocates each extent.
  // `addrs` receives one group-aligned logical address per requested size.
  // Without an attached TenantManager the quota check is skipped.
  bool TryAllocTenantExtents(TenantId tenant, const std::vector<std::uint64_t>& sizes,
                             std::vector<std::uint64_t>* addrs);
  // Rolls back the quota charge of a TryAllocTenantExtents reservation whose
  // extents were abandoned before any IO (install aborted).
  void RefundTenantExtents(TenantId tenant, const std::vector<std::uint64_t>& sizes);

  // Attaches per-tenant QoS accounting (quota admission, lock-wait and GC
  // attribution). Optional: a null manager keeps all paths tenant-blind.
  void set_tenants(TenantManager* tenants);
  TenantManager* tenants() const { return tenants_; }

  // GC attribution hook shared with Storengine: valid-data migration moves
  // the slot's tenant ownership to the new physical group and credits one
  // dragged group to the owner.
  void NoteMigration(std::uint32_t phys_old, std::uint32_t phys_new);

  MappingTable& mapping() { return map_; }
  BlockManager& blocks() { return blocks_; }
  RangeLock& range_lock() { return lock_; }
  FlashBackbone& backbone() { return *backbone_; }
  SerialCore& core() { return core_; }
  const FlashvisorConfig& config() const { return config_; }
  Simulator& sim() { return *sim_; }
  Dram& dram() { return *dram_; }

  // Pending flash writes become durable once their program reservations
  // complete; this is the latest such completion (tests run the simulator to
  // this horizon before checking flash contents).
  Tick write_drain_horizon() const { return write_drain_horizon_; }
  std::uint64_t reads_served() const { return reads_served_.value(); }
  std::uint64_t writes_served() const { return writes_served_.value(); }
  std::uint64_t ecc_events() const { return ecc_events_.value(); }
  std::uint64_t uncorrectable_reads() const { return uncorrectable_reads_.value(); }
  // Program-status fails absorbed by re-allocating to a fresh block group.
  std::uint64_t program_failure_reallocs() const { return program_failure_reallocs_.value(); }
  std::uint64_t retired_block_groups() const { return retired_block_groups_.value(); }
  // Emergency reclaims performed inline on the write path because the free
  // pool was exhausted (paper §4.3: "garbage collection [is] invoked on
  // demand" when background reclamation falls behind).
  std::uint64_t foreground_reclaims() const { return foreground_reclaims_.value(); }

  // Registers request/ECC/reclaim counters plus core-occupancy and
  // write-buffer gauges under `prefix` (e.g. "flashvisor").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

  // Storengine hook: invoked (with current time) when the free pool dips
  // below the GC watermark.
  void set_gc_trigger(std::function<void(Tick)> cb) { gc_trigger_ = std::move(cb); }

  // --- Storengine-facing FTL internals (also used by recovery tooling) ---
  // Allocates the next physical page-group slot in the active block group,
  // sealing it (with a summary write) when full. Returns the physical group.
  std::uint32_t AllocatePhysicalGroup(Tick now, Tick* io_done);
  // Allocate + program with program-failure handling: a program-status fail
  // retires the active block group (its already-written slots stay readable
  // until the scrubber migrates them) and re-allocates in a fresh one.
  // `oob_tag` lands in the group's out-of-band record (the logical group for
  // data, or a kOob* constant). `*done_out` is max'ed with the program
  // completion; `*status_out` (optional) accumulates the worst non-fatal
  // status (dead-die degradation). `*primary_channel` (optional) receives the
  // critical-path channel of the accepted program (PDES shard affinity).
  // Returns the physical group programmed.
  std::uint32_t ProgramReliable(Tick now, std::uint32_t oob_tag, const void* payload,
                                Tick* done_out, IoStatus* status_out = nullptr,
                                int* primary_channel = nullptr);

  // --- Power-loss crash recovery -------------------------------------------
  // Models the volatile state vanishing: mapping table, block-manager
  // bookkeeping, write buffer, range lock and inbound queue all clear. The
  // flash array (including OOB records) survives in the backbone.
  void OnPowerLoss();

  struct RecoveryReport {
    bool found_journal = false;
    std::uint64_t journal_bg = BlockManager::kNone;
    std::uint64_t journal_seq = 0;     // programs up to here are in the snapshot
    std::uint64_t restored_entries = 0;  // mappings restored from the journal
    std::uint64_t replayed_groups = 0;   // post-journal programs replayed from OOB
    std::uint64_t torn_groups = 0;       // half-programmed groups found
    std::uint64_t lost_groups = 0;       // mappings dropped (stale/torn target)
    Tick done = 0;                       // completion of the recovery reads
  };
  // Rebuilds the mapping table from flash alone: locate the newest complete
  // journal by OOB scan, restore its snapshot, replay every data program
  // with a later sequence number in order, drop mappings whose target does
  // not carry the matching OOB tag, and rebuild the block-group pools.
  RecoveryReport RecoverFromFlash(Tick now);
  // Number of data slots per block group (excludes the summary footer).
  std::uint32_t DataSlotsPerBlockGroup() const;
  std::uint64_t BlockGroupOf(std::uint32_t phys_group) const;
  std::uint32_t SlotOf(std::uint32_t phys_group) const;
  std::uint32_t GroupOfSlot(std::uint64_t bg, std::uint32_t slot) const;

  // Snapshottable: write-buffer occupancy, allocation cursors and service
  // counters. The owned mapping table, block manager and range lock are
  // Snapshottable in their own right and saved as separate sections (via the
  // mapping()/blocks()/range_lock() accessors); the inbound message queue
  // must be idle (closures cannot be serialized).
  std::string StateName() const override { return "flashvisor"; }
  int StateVersion() const override { return 2; }  // v2: + sparse slot tenants
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;
  // True when no queued/undelivered I/O message is outstanding — a
  // precondition for snapshotting.
  bool QuiescedForSnapshot() const { return inbound_.Idle(); }

 private:
  void HandleIo(IoRequest req, std::function<void(Tick)> core_done);
  void DoRead(IoRequest req, Tick service_end);
  void DoWrite(IoRequest req, Tick service_end);
  void RetireActiveBlockGroup();
  void SealActiveBlockGroup(Tick now);
  void EnsureActiveBlockGroup(Tick now);
  void ForegroundReclaim(Tick now);
  // Admits a staged write into the finite DDR3L write buffer; returns the
  // time the caller may consider the write accepted.
  Tick AdmitWrite(Tick staged, std::uint64_t bytes, Tick flash_done);
  // Tenant ownership of a physical group's data (attribution only; 0 when
  // untracked). The backing vector stays empty until tenants are configured.
  TenantId SlotOwner(std::uint32_t phys_group) const;
  void SetSlotOwner(std::uint32_t phys_group, TenantId tenant);

  Simulator* sim_;
  FlashBackbone* backbone_;
  Dram* dram_;
  FlashvisorConfig config_;
  SerialCore core_;
  MappingTable map_;
  BlockManager blocks_;
  RangeLock lock_;
  MessageQueue<IoRequest> inbound_;

  // Outstanding write-buffer entries: (program-completion time, bytes),
  // earliest-draining first.
  std::priority_queue<std::pair<Tick, std::uint64_t>,
                      std::vector<std::pair<Tick, std::uint64_t>>,
                      std::greater<std::pair<Tick, std::uint64_t>>>
      write_buffer_;
  std::uint64_t write_buffer_used_ = 0;

  std::uint64_t active_bg_ = BlockManager::kNone;
  std::uint32_t active_slot_ = 0;
  std::uint64_t logical_alloc_cursor_ = 0;
  Tick write_drain_horizon_ = 0;
  Counter reads_served_;
  Counter writes_served_;
  Counter ecc_events_;
  Counter uncorrectable_reads_;
  Counter program_failure_reallocs_;
  Counter retired_block_groups_;
  Counter foreground_reclaims_;
  int reclaim_depth_ = 0;
  std::function<void(Tick)> gc_trigger_;
  TenantManager* tenants_ = nullptr;
  // Tenant of the write being serviced when a foreground reclaim fires (the
  // victim of the GC stall). Set/cleared within one DoWrite event.
  TenantId active_io_tenant_ = kDefaultTenant;
  // Per-physical-group owner, sized lazily on first multi-tenant write.
  std::vector<std::uint16_t> slot_tenant_;
};

}  // namespace fabacus

#endif  // SRC_CORE_FLASHVISOR_H_
