#include "src/core/kernel_table.h"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "src/sim/log.h"

namespace fabacus {
namespace {

// Simple growable byte writer with a string pool at the end of the table.
class Writer {
 public:
  std::uint32_t Tell() const { return static_cast<std::uint32_t>(bytes_.size()); }

  template <typename T>
  void Append(const T& value) {
    const std::size_t at = bytes_.size();
    bytes_.resize(at + sizeof(T));
    std::memcpy(bytes_.data() + at, &value, sizeof(T));
  }

  std::uint32_t AppendString(const std::string& s) {
    const std::uint32_t at = Tell();
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    bytes_.push_back(0);
    return at;
  }

  void Patch(std::size_t offset, const void* data, std::size_t len) {
    FAB_CHECK_LE(offset + len, bytes_.size());
    std::memcpy(bytes_.data() + offset, data, len);
  }

  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Bounds-checked reader.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(std::uint32_t offset, T* out) const {
    if (static_cast<std::size_t>(offset) + sizeof(T) > bytes_.size()) {
      return false;
    }
    std::memcpy(out, bytes_.data() + offset, sizeof(T));
    return true;
  }

  bool ReadString(std::uint32_t offset, std::string* out) const {
    if (offset >= bytes_.size()) {
      return false;
    }
    const auto* begin = bytes_.data() + offset;
    const auto* end = bytes_.data() + bytes_.size();
    const auto* nul = std::find(begin, end, 0);
    if (nul == end) {
      return false;  // unterminated string
    }
    out->assign(begin, nul);
    return true;
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
};

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
  return false;
}

}  // namespace

std::uint32_t KdtChecksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

std::vector<std::uint8_t> SerializeKernelTable(const KernelSpec& spec) {
  Writer w;
  KdtHeader header;
  header.model_input_mb = spec.model_input_mb;
  header.ldst_ratio = spec.ldst_ratio;
  header.bki = spec.bki;
  w.Append(header);  // patched below once offsets are known

  // Section table: the three ELF-ish sections plus one entry per data
  // section. Name offsets are patched after the string pool is emitted.
  struct PendingName {
    std::size_t field_offset;  // where the u32 name_offset lives
    std::string text;
  };
  std::vector<PendingName> names;

  header.section_offset = w.Tell();
  header.section_count = 3 + static_cast<std::uint32_t>(spec.sections.size());
  {
    KdtSection text;
    text.kind = KdtSectionKind::kText;
    text.size_bytes = spec.text_bytes;
    names.push_back({w.Tell() + offsetof(KdtSection, name_offset), ".text"});
    w.Append(text);
    KdtSection heap;
    heap.kind = KdtSectionKind::kHeap;
    heap.size_bytes = spec.heap_bytes;
    names.push_back({w.Tell() + offsetof(KdtSection, name_offset), ".heap"});
    w.Append(heap);
    KdtSection stack;
    stack.kind = KdtSectionKind::kStack;
    stack.size_bytes = spec.stack_bytes;
    names.push_back({w.Tell() + offsetof(KdtSection, name_offset), ".stack"});
    w.Append(stack);
  }
  for (const DataSectionSpec& s : spec.sections) {
    KdtSection sec;
    sec.kind = s.dir == DataSectionSpec::Dir::kIn ? KdtSectionKind::kDataIn
                                                  : KdtSectionKind::kDataOut;
    sec.model_fraction = s.model_fraction;
    sec.buffer_index = s.buffer_index;
    names.push_back({w.Tell() + offsetof(KdtSection, name_offset), s.name});
    w.Append(sec);
  }

  header.mblk_offset = w.Tell();
  header.mblk_count = static_cast<std::uint32_t>(spec.microblocks.size());
  for (const MicroblockSpec& m : spec.microblocks) {
    KdtMicroblock kb;
    kb.serial = m.serial ? 1 : 0;
    kb.work_fraction = m.work_fraction;
    kb.frac_ldst = m.frac_ldst;
    kb.frac_mul = m.frac_mul;
    kb.frac_alu = m.frac_alu;
    kb.reuse_window_bytes = m.reuse_window_bytes;
    kb.stream_factor = m.stream_factor;
    kb.func_iterations = m.func_iterations;
    names.push_back({w.Tell() + offsetof(KdtMicroblock, name_offset), m.name});
    w.Append(kb);
  }

  // String pool.
  header.name_offset = w.AppendString(spec.name);
  for (const PendingName& pn : names) {
    const std::uint32_t at = w.AppendString(pn.text);
    w.Patch(pn.field_offset, &at, sizeof(at));
  }

  std::vector<std::uint8_t> bytes = w.Take();
  header.total_bytes = static_cast<std::uint32_t>(bytes.size());
  header.checksum = 0;
  std::memcpy(bytes.data(), &header, sizeof(header));
  header.checksum = KdtChecksum(bytes.data(), bytes.size());
  std::memcpy(bytes.data(), &header, sizeof(header));
  return bytes;
}

bool ParseKernelTable(const std::vector<std::uint8_t>& bytes, KernelSpec* spec,
                      std::string* error) {
  FAB_CHECK(spec != nullptr);
  Reader r(bytes);
  KdtHeader header;
  if (!r.Read(0, &header)) {
    return Fail(error, "table shorter than header");
  }
  if (header.magic != KdtHeader::kMagic) {
    return Fail(error, "bad magic");
  }
  if (header.version != KdtHeader::kVersion) {
    return Fail(error, "unsupported version");
  }
  if (header.total_bytes != bytes.size()) {
    return Fail(error, "size mismatch");
  }
  // Verify the checksum with the field zeroed.
  std::vector<std::uint8_t> copy = bytes;
  KdtHeader zeroed = header;
  zeroed.checksum = 0;
  std::memcpy(copy.data(), &zeroed, sizeof(zeroed));
  if (KdtChecksum(copy.data(), copy.size()) != header.checksum) {
    return Fail(error, "checksum mismatch");
  }
  if (header.mblk_count == 0) {
    return Fail(error, "kernel has no microblocks");
  }

  KernelSpec out;
  if (!r.ReadString(header.name_offset, &out.name)) {
    return Fail(error, "bad kernel name offset");
  }
  out.model_input_mb = header.model_input_mb;
  out.ldst_ratio = header.ldst_ratio;
  out.bki = header.bki;

  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    KdtSection sec;
    const std::uint32_t at = header.section_offset + i * sizeof(KdtSection);
    if (!r.Read(at, &sec)) {
      return Fail(error, "section table out of bounds");
    }
    std::string name;
    if (!r.ReadString(sec.name_offset, &name)) {
      return Fail(error, "bad section name offset");
    }
    switch (sec.kind) {
      case KdtSectionKind::kText:
        out.text_bytes = sec.size_bytes;
        break;
      case KdtSectionKind::kHeap:
        out.heap_bytes = sec.size_bytes;
        break;
      case KdtSectionKind::kStack:
        out.stack_bytes = sec.size_bytes;
        break;
      case KdtSectionKind::kDataIn:
      case KdtSectionKind::kDataOut: {
        if (sec.model_fraction < 0.0 || sec.model_fraction > 1.0) {
          return Fail(error, "data section fraction out of range");
        }
        DataSectionSpec ds;
        ds.name = name;
        ds.dir = sec.kind == KdtSectionKind::kDataIn ? DataSectionSpec::Dir::kIn
                                                     : DataSectionSpec::Dir::kOut;
        ds.model_fraction = sec.model_fraction;
        ds.buffer_index = sec.buffer_index;
        out.sections.push_back(std::move(ds));
        break;
      }
      default:
        return Fail(error, "unknown section kind");
    }
  }

  double work_sum = 0.0;
  for (std::uint32_t i = 0; i < header.mblk_count; ++i) {
    KdtMicroblock kb;
    const std::uint32_t at = header.mblk_offset + i * sizeof(KdtMicroblock);
    if (!r.Read(at, &kb)) {
      return Fail(error, "microblock table out of bounds");
    }
    const double mix = kb.frac_ldst + kb.frac_mul + kb.frac_alu;
    if (mix < 0.999 || mix > 1.001) {
      return Fail(error, "microblock instruction mix not normalized");
    }
    MicroblockSpec m;
    if (!r.ReadString(kb.name_offset, &m.name)) {
      return Fail(error, "bad microblock name offset");
    }
    m.serial = kb.serial != 0;
    m.work_fraction = kb.work_fraction;
    m.frac_ldst = kb.frac_ldst;
    m.frac_mul = kb.frac_mul;
    m.frac_alu = kb.frac_alu;
    m.reuse_window_bytes = kb.reuse_window_bytes;
    m.stream_factor = kb.stream_factor;
    m.func_iterations = kb.func_iterations;
    work_sum += m.work_fraction;
    out.microblocks.push_back(std::move(m));
  }
  if (work_sum < 0.99 || work_sum > 1.01) {
    return Fail(error, "microblock work fractions do not sum to 1");
  }
  *spec = std::move(out);
  return true;
}

}  // namespace fabacus
