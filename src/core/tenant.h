// Multi-tenant QoS (docs/QOS.md): tenant identity, per-tenant flash-space
// quotas, the weighted-fair virtual-time credit scheduler layered under the
// paper's four policies, and per-tenant contention/GC-attribution accounting.
//
// `TenantManager` is the single per-device home for tenant state. Stats are
// lazily materialized on first activity (submit, quota charge, lock wait),
// so configuring N tenants costs nothing for tenants that never show up —
// the PR 8 flat-RSS guarantee extends to per-tenant LogHistogram sketches.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

using TenantId = std::uint16_t;
inline constexpr TenantId kDefaultTenant = 0;

// How the device arbitrates among tenants. kPaper keeps the paper's
// schedulers byte-identical (FIFO within each policy); kWeightedFair layers
// a per-tenant virtual-time credit scheduler under whichever of the four
// policies is selected, with preemption points for latency-class tenants.
enum class TenantSchedPolicy : std::uint8_t { kPaper = 0, kWeightedFair = 1 };

const char* TenantSchedPolicyName(TenantSchedPolicy policy);

struct TenantSpec {
  std::string name;            // empty -> "tenant<id>"
  double weight = 1.0;         // share of LWP time under kWeightedFair
  bool latency_class = false;  // scheduled ahead of throughput tenants
  std::uint64_t quota_bytes = 0;  // flash-space quota; 0 = unlimited
};

struct TenantSchedConfig {
  TenantSchedPolicy policy = TenantSchedPolicy::kPaper;
  // Index == TenantId. Empty means single-tenant mode: every kernel runs as
  // tenant 0 with no quota, and scheduling is exactly the paper's.
  std::vector<TenantSpec> tenants;

  // Returns an error message, or empty when valid.
  std::string Validate() const;
};

// One row of RunReport's per-tenant section.
struct TenantQosReport {
  std::uint32_t id = 0;
  std::string name;
  double weight = 1.0;
  bool latency_class = false;
  std::uint64_t kernels_submitted = 0;
  std::uint64_t kernels_completed = 0;
  HistogramSummary latency_ms;
  double work_instructions = 0.0;
  Tick first_submit = 0;
  Tick last_complete = 0;
  std::uint64_t quota_bytes = 0;  // configured limit (0 = unlimited)
  std::uint64_t quota_used_bytes = 0;
  std::uint64_t quota_denials = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t lock_wait_ns = 0;
  // (holder tenant, times this tenant queued behind it), holder-sorted.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> blocked_by;
  std::uint64_t gc_stall_ns = 0;
  std::uint64_t garbage_created_groups = 0;
  std::uint64_t gc_dragged_groups = 0;
};

// Jain's fairness index J = (sum x)^2 / (n * sum x^2) over the active
// tenants, on two axes: weighted throughput rate (work per weight-second of
// each tenant's own active window) and p99 kernel latency.
struct TenantFairness {
  double jain_throughput = 1.0;
  double jain_p99 = 1.0;
  std::uint32_t active_tenants = 0;
};

class TenantManager : public Snapshottable {
 public:
  explicit TenantManager(const TenantSchedConfig& config);

  // Per-tenant metrics/sketches register lazily against `reg` as tenants
  // first become active, under "tenant/<id>/...".
  void AttachMetrics(MetricsRegistry* reg) { registry_ = reg; }

  // True when the config names tenants explicitly (multi-tenant mode).
  bool configured() const { return !config_.tenants.empty(); }
  bool weighted_fair() const {
    return config_.policy == TenantSchedPolicy::kWeightedFair;
  }
  TenantSchedPolicy policy() const { return config_.policy; }
  std::size_t num_tenants() const {
    return configured() ? config_.tenants.size() : 1;
  }
  const TenantSpec& spec(TenantId t) const;
  std::string TenantName(TenantId t) const;
  double weight(TenantId t) const { return spec(t).weight; }
  bool latency_class(TenantId t) const { return spec(t).latency_class; }
  // Compact config descriptor folded into the device ConfigFingerprint.
  std::string ConfigSuffix() const;

  // --- Flash-space quotas -------------------------------------------------
  // Admits `aligned_bytes` (already rounded up to the allocation unit)
  // against the tenant's quota. The effective limit is the quota rounded up
  // to `group_bytes`, so usage can exceed the configured quota by strictly
  // less than one allocation unit, never more. Denials are counted.
  bool TryChargeQuota(TenantId t, std::uint64_t aligned_bytes,
                      std::uint64_t group_bytes);
  // Rolls back a successful charge (install aborted before any IO).
  void RefundQuota(TenantId t, std::uint64_t aligned_bytes);
  std::uint64_t quota_used(TenantId t) const;
  std::uint64_t quota_denials(TenantId t) const;

  // --- Weighted-fair scheduling -------------------------------------------
  void OnSubmit(TenantId t, Tick now);
  void OnComplete(TenantId t, double latency_ms, Tick now);
  // Charges `instructions` of LWP work: advances the tenant's virtual time
  // by work/weight and its work_instructions total.
  void ChargeWork(TenantId t, double instructions);
  double virtual_time(TenantId t) const;
  // Activation clamp: a tenant that sat idle must not monopolize workers on
  // return; its virtual time jumps forward to `floor_vt` if behind.
  void ClampVirtualTime(TenantId t, double floor_vt);

  // --- Contention / GC attribution ----------------------------------------
  void RecordLockWait(TenantId waiter, Tick wait_ns);
  void RecordLockBlocked(TenantId waiter, TenantId holder);
  void RecordGcStall(TenantId delayed, Tick stall_ns);
  void RecordGarbageCreated(TenantId causer, std::uint64_t groups);
  void RecordGcDrag(TenantId owner, std::uint64_t groups);

  // Number of tenants with materialized stats (== tenants that ever acted).
  // Pinned by tests to hold the lazy-allocation guarantee.
  std::size_t allocated_stats_count() const { return state_.size(); }
  bool HasState(TenantId t) const { return state_.count(t) != 0; }

  // --- Reporting ----------------------------------------------------------
  // One row per active tenant, id-sorted. Idle tenants are absent.
  std::vector<TenantQosReport> BuildReport() const;
  static TenantFairness ComputeFairness(const std::vector<TenantQosReport>& rows);

  // --- Snapshot ------------------------------------------------------------
  std::string StateName() const override { return "tenants"; }
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  struct State {
    std::uint64_t kernels_submitted = 0;
    std::uint64_t kernels_completed = 0;
    std::uint64_t quota_used = 0;
    std::uint64_t quota_denials = 0;
    double vt = 0.0;  // virtual time, instruction units / weight
    double work_instructions = 0.0;
    Tick first_submit = 0;
    bool saw_submit = false;
    Tick last_complete = 0;
    std::uint64_t lock_waits = 0;
    std::uint64_t lock_wait_ns = 0;
    std::uint64_t gc_stall_ns = 0;
    std::uint64_t garbage_created_groups = 0;
    std::uint64_t gc_dragged_groups = 0;
    LogHistogram latency_ms;  // lazy: ~18 KB only after first Record
    std::map<TenantId, std::uint64_t> blocked_by;
  };

  State& EnsureState(TenantId t);
  void RegisterTenantMetrics(TenantId t, State& s);

  TenantSchedConfig config_;
  TenantSpec default_spec_;  // single-tenant mode spec for tenant 0
  // Keyed map (not a dense vector): nodes materialize on first activity and
  // pointers stay stable for the metric gauges capturing them.
  std::map<TenantId, State> state_;
  MetricsRegistry* registry_ = nullptr;
  std::set<TenantId> metrics_registered_;
};

}  // namespace fabacus
