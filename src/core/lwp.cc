#include "src/core/lwp.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/sim/log.h"

namespace fabacus {

Lwp::Lwp(int id, const LwpConfig& config, Dram* dram, Crossbar* tier1,
         const CacheConfig& cache_config)
    : id_(id), config_(config), dram_(dram), tier1_(tier1), cache_(cache_config) {}

double Lwp::EffectiveIpc(double frac_mul, double frac_alu, double frac_ldst) const {
  // The binding FU class limits sustained issue: with fraction f of
  // instructions needing one of k units, at most k/f instructions retire per
  // cycle through that class.
  double bound = static_cast<double>(config_.issue_width);
  if (frac_mul > 0.0) {
    bound = std::min(bound, config_.mul_fus / frac_mul);
  }
  if (frac_alu > 0.0) {
    bound = std::min(bound, config_.alu_fus / frac_alu);
  }
  if (frac_ldst > 0.0) {
    bound = std::min(bound, config_.ldst_fus / frac_ldst);
  }
  return std::max(1.0, bound);
}

Lwp::ScreenTiming Lwp::ExecuteScreen(Tick now, const ScreenWork& work) {
  const Tick start = std::max(now, busy_until_);

  const double ipc = EffectiveIpc(work.frac_mul, work.frac_alu, work.frac_ldst);
  const double cycles = work.instructions / ipc;
  const Tick compute_ns = static_cast<Tick>(cycles / config_.clock_ghz + 0.5);

  // Memory stalls: traffic past L2 hits DDR3L through the tier-1 crossbar.
  const CacheTraffic traffic =
      cache_.Estimate(work.touched_bytes, work.window_bytes, work.distinct_bytes);
  Tick mem_ns = 0;
  if (traffic.l2_to_dram_bytes > 1.0) {
    const Tick dram_done = dram_->BulkAccess(start, traffic.l2_to_dram_bytes);
    const Tick xbar_done = tier1_->Transfer(start, id_ % tier1_->config().ports,
                                            tier1_->config().ports - 1,
                                            traffic.l2_to_dram_bytes);
    mem_ns = std::max(dram_done, xbar_done) - start;
  }

  // Set FAB_LWP_DEBUG=1 to trace per-screen cost-model decisions.
  static const bool debug = std::getenv("FAB_LWP_DEBUG") != nullptr;
  if (debug) {
    std::fprintf(stderr,
                 "lwp%d screen start=%.2fms compute=%.2fms mem=%.2fms dram_bytes=%.3e\n", id_,
                 start / 1e6, compute_ns / 1e6, mem_ns / 1e6, traffic.l2_to_dram_bytes);
  }
  const Tick longer = std::max(compute_ns, mem_ns);
  const Tick shorter = std::min(compute_ns, mem_ns);
  const Tick duration =
      longer + static_cast<Tick>((1.0 - config_.overlap_factor) * shorter);

  busy_until_ = start + std::max<Tick>(duration, 1);
  busy_.AddInterval(start, busy_until_);
  intervals_.emplace_back(start, busy_until_);
  screens_executed_.Add();

  ScreenTiming t;
  t.start = start;
  t.end = busy_until_;
  // Average FU occupancy while busy: issue-bound share of the window.
  const double compute_share =
      duration == 0 ? 0.0 : static_cast<double>(compute_ns) / duration;
  t.avg_fus_busy = std::min<double>(config_.issue_width, ipc) * compute_share;
  return t;
}

Tick Lwp::SleepTime(Tick window_start, Tick window_end) const {
  if (window_end <= window_start) {
    return 0;
  }
  Tick sleep = 0;
  Tick cursor = window_start;
  auto account_gap = [&](Tick gap_end) {
    if (gap_end > cursor) {
      const Tick gap = gap_end - cursor;
      if (gap > config_.psc_sleep_threshold) {
        sleep += gap - config_.psc_sleep_threshold;
      }
    }
  };
  for (const auto& [start, end] : intervals_) {
    if (end <= window_start) {
      continue;
    }
    if (start >= window_end) {
      break;
    }
    account_gap(std::min(start, window_end));
    cursor = std::max(cursor, std::min(end, window_end));
  }
  account_gap(window_end);
  return sleep;
}

Tick Lwp::BootKernel(Tick now) {
  const Tick start = std::max(now, busy_until_);
  busy_until_ = start + config_.boot_overhead;
  kernel_boots_.Add();
  // Boot time is occupancy but not useful execution; don't count it busy.
  return busy_until_;
}

void Lwp::RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
  reg->RegisterCounter(prefix + "/screens_executed", &screens_executed_);
  reg->RegisterCounter(prefix + "/kernel_boots", &kernel_boots_);
  reg->RegisterGauge(prefix + "/busy_ns",
                     [this](Tick now) { return static_cast<double>(BusyTime(now)); });
  reg->RegisterGauge(prefix + "/utilization", [this](Tick now) { return Utilization(now); });
}

}  // namespace fabacus
