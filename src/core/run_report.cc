#include "src/core/run_report.h"

#include "src/sim/json.h"

namespace fabacus {
namespace {

// Tags worth summarizing in the report; the full interval list lives in the
// Chrome-trace export, the report only carries per-tag aggregates.
constexpr TraceTag kSummaryTags[] = {
    TraceTag::kLwpCompute, TraceTag::kFlashOp,  TraceTag::kHostStack,
    TraceTag::kSsdOp,      TraceTag::kPcieXfer, TraceTag::kSchedule,
    TraceTag::kGc,         TraceTag::kFlashChan,
};

void WriteSummary(JsonWriter* w, const HistogramSummary& s) {
  w->BeginObject();
  w->Field("count", static_cast<double>(s.count));
  if (s.count > 0) {
    w->Field("min", s.min)
        .Field("mean", s.mean)
        .Field("p50", s.p50)
        .Field("p95", s.p95)
        .Field("p99", s.p99)
        .Field("max", s.max);
  }
  w->EndObject();
}

void WriteHistogramSummary(JsonWriter* w, const Histogram& h) {
  // Summarize() sorts once for all six statistics; values are identical to
  // per-statistic queries, so goldens only see the schema_version change.
  WriteSummary(w, h.Summarize());
}

}  // namespace

EnergyBreakdown RunReport::EnergySummary() const {
  EnergyBreakdown b;
  b.data_movement_j = energy.BucketJoules(EnergyBucket::kDataMovement);
  b.computation_j = energy.BucketJoules(EnergyBucket::kComputation);
  b.storage_access_j = energy.BucketJoules(EnergyBucket::kStorageAccess);
  b.total_j = energy.TotalJoules();
  return b;
}

void RunReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("schema_version", kJsonSchemaVersion);
  w->Field("system", system);
  w->Field("makespan_ns", static_cast<double>(makespan));
  w->Field("input_bytes", input_bytes);
  w->Field("throughput_mb_s", throughput_mb_s);
  w->Field("worker_utilization", worker_utilization);

  w->Key("kernel_latency_ms");
  WriteHistogramSummary(w, kernel_latency_ms);

  w->Key("completion_times_ms").BeginArray();
  for (Tick t : completion_times) {
    w->Value(TicksToMs(t));
  }
  w->EndArray();

  // Per-tenant QoS rows (docs/QOS.md). Always present since schema v3; an
  // empty array means the device ran single-tenant.
  w->Key("tenants").BeginArray();
  for (const TenantQosReport& t : tenants) {
    w->BeginObject();
    w->Field("id", static_cast<double>(t.id));
    w->Field("name", t.name);
    w->Field("weight", t.weight);
    w->Field("latency_class", t.latency_class);
    w->Field("kernels_submitted", static_cast<double>(t.kernels_submitted));
    w->Field("kernels_completed", static_cast<double>(t.kernels_completed));
    w->Key("latency_ms");
    WriteSummary(w, t.latency_ms);
    w->Field("work_instructions", t.work_instructions);
    w->Field("first_submit_ns", static_cast<double>(t.first_submit));
    w->Field("last_complete_ns", static_cast<double>(t.last_complete));
    w->Key("quota").BeginObject();
    w->Field("limit_bytes", static_cast<double>(t.quota_bytes))
        .Field("used_bytes", static_cast<double>(t.quota_used_bytes))
        .Field("denials", static_cast<double>(t.quota_denials))
        .EndObject();
    w->Key("locks").BeginObject();
    w->Field("waits", static_cast<double>(t.lock_waits))
        .Field("wait_ns", static_cast<double>(t.lock_wait_ns));
    w->Key("blocked_by").BeginObject();
    for (const auto& [holder, count] : t.blocked_by) {
      w->Field(std::to_string(holder), static_cast<double>(count));
    }
    w->EndObject();
    w->EndObject();
    w->Key("gc").BeginObject();
    w->Field("stall_ns", static_cast<double>(t.gc_stall_ns))
        .Field("garbage_created_groups", static_cast<double>(t.garbage_created_groups))
        .Field("dragged_groups", static_cast<double>(t.gc_dragged_groups))
        .EndObject();
    w->EndObject();
  }
  w->EndArray();

  w->Key("fairness").BeginObject();
  w->Field("jain_throughput", fairness.jain_throughput)
      .Field("jain_p99", fairness.jain_p99)
      .Field("active_tenants", static_cast<double>(fairness.active_tenants))
      .EndObject();

  const EnergyBreakdown e = EnergySummary();
  w->Key("energy").BeginObject();
  w->Field("total_j", e.total_j)
      .Field("data_movement_j", e.data_movement_j)
      .Field("computation_j", e.computation_j)
      .Field("storage_access_j", e.storage_access_j);
  w->Key("components").BeginObject();
  for (const auto& [name, joules] : energy.per_component()) {
    w->Field(name, joules);
  }
  w->EndObject();
  w->EndObject();

  w->Key("metrics");
  metrics.WriteJson(w);

  w->Key("trace_summary").BeginObject();
  for (TraceTag tag : kSummaryTags) {
    std::size_t n = 0;
    for (const TaggedInterval& iv : trace.intervals()) {
      if (iv.tag == tag) {
        ++n;
      }
    }
    if (n == 0) {
      continue;
    }
    w->Key(TraceTagName(tag)).BeginObject();
    w->Field("intervals", static_cast<double>(n))
        .Field("union_ns", static_cast<double>(trace.UnionTime(tag)))
        .Field("total_ns", static_cast<double>(trace.TotalTime(tag)))
        .EndObject();
  }
  w->EndObject();

  w->EndObject();
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

}  // namespace fabacus
