#include "src/core/run_report.h"

#include "src/sim/json.h"

namespace fabacus {
namespace {

// Tags worth summarizing in the report; the full interval list lives in the
// Chrome-trace export, the report only carries per-tag aggregates.
constexpr TraceTag kSummaryTags[] = {
    TraceTag::kLwpCompute, TraceTag::kFlashOp,  TraceTag::kHostStack,
    TraceTag::kSsdOp,      TraceTag::kPcieXfer, TraceTag::kSchedule,
    TraceTag::kGc,         TraceTag::kFlashChan,
};

void WriteHistogramSummary(JsonWriter* w, const Histogram& h) {
  // Summarize() sorts once for all six statistics; values are identical to
  // per-statistic queries, so goldens only see the schema_version change.
  const HistogramSummary s = h.Summarize();
  w->BeginObject();
  w->Field("count", static_cast<double>(s.count));
  if (s.count > 0) {
    w->Field("min", s.min)
        .Field("mean", s.mean)
        .Field("p50", s.p50)
        .Field("p95", s.p95)
        .Field("p99", s.p99)
        .Field("max", s.max);
  }
  w->EndObject();
}

}  // namespace

EnergyBreakdown RunReport::EnergySummary() const {
  EnergyBreakdown b;
  b.data_movement_j = energy.BucketJoules(EnergyBucket::kDataMovement);
  b.computation_j = energy.BucketJoules(EnergyBucket::kComputation);
  b.storage_access_j = energy.BucketJoules(EnergyBucket::kStorageAccess);
  b.total_j = energy.TotalJoules();
  return b;
}

void RunReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("schema_version", kJsonSchemaVersion);
  w->Field("system", system);
  w->Field("makespan_ns", static_cast<double>(makespan));
  w->Field("input_bytes", input_bytes);
  w->Field("throughput_mb_s", throughput_mb_s);
  w->Field("worker_utilization", worker_utilization);

  w->Key("kernel_latency_ms");
  WriteHistogramSummary(w, kernel_latency_ms);

  w->Key("completion_times_ms").BeginArray();
  for (Tick t : completion_times) {
    w->Value(TicksToMs(t));
  }
  w->EndArray();

  const EnergyBreakdown e = EnergySummary();
  w->Key("energy").BeginObject();
  w->Field("total_j", e.total_j)
      .Field("data_movement_j", e.data_movement_j)
      .Field("computation_j", e.computation_j)
      .Field("storage_access_j", e.storage_access_j);
  w->Key("components").BeginObject();
  for (const auto& [name, joules] : energy.per_component()) {
    w->Field(name, joules);
  }
  w->EndObject();
  w->EndObject();

  w->Key("metrics");
  metrics.WriteJson(w);

  w->Key("trace_summary").BeginObject();
  for (TraceTag tag : kSummaryTags) {
    std::size_t n = 0;
    for (const TaggedInterval& iv : trace.intervals()) {
      if (iv.tag == tag) {
        ++n;
      }
    }
    if (n == 0) {
      continue;
    }
    w->Key(TraceTagName(tag)).BeginObject();
    w->Field("intervals", static_cast<double>(n))
        .Field("union_ns", static_cast<double>(trace.UnionTime(tag)))
        .Field("total_ns", static_cast<double>(trace.TotalTime(tag)))
        .EndObject();
  }
  w->EndObject();

  w->EndObject();
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

}  // namespace fabacus
