#include "src/core/block_manager.h"

namespace fabacus {

BlockManager::BlockManager(const NandConfig& config)
    : total_(config.TotalBlockGroups()),
      groups_per_block_(config.GroupsPerBlockGroup()),
      valid_(total_),
      valid_count_(total_, 0),
      is_retired_(total_, false) {
  for (std::uint64_t bg = 0; bg < total_; ++bg) {
    free_.push_back(bg);
    valid_[bg].assign(groups_per_block_, false);
  }
}

std::uint64_t BlockManager::AllocBlockGroup() {
  if (free_.empty()) {
    return kNone;
  }
  const std::uint64_t bg = free_.front();
  free_.pop_front();
  return bg;
}

void BlockManager::SealBlockGroup(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK(!is_retired_[bg]);
  used_.push_back(bg);
}

std::uint64_t BlockManager::PickVictim() {
  if (used_.empty()) {
    return kNone;
  }
  const std::uint64_t bg = used_.front();
  used_.pop_front();
  return bg;
}

void BlockManager::OnErased(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK(!is_retired_[bg]);
  FAB_CHECK_EQ(valid_count_[bg], 0u) << "erase of block group with valid data";
  valid_[bg].assign(groups_per_block_, false);
  free_.push_back(bg);
}

void BlockManager::Reset() {
  free_.clear();
  used_.clear();
  retired_count_ = 0;
  for (std::uint64_t bg = 0; bg < total_; ++bg) {
    free_.push_back(bg);
    valid_[bg].assign(groups_per_block_, false);
    valid_count_[bg] = 0;
    is_retired_[bg] = false;
  }
}

namespace {
bool EraseFromDeque(std::deque<std::uint64_t>* dq, std::uint64_t bg) {
  for (auto it = dq->begin(); it != dq->end(); ++it) {
    if (*it == bg) {
      dq->erase(it);
      return true;
    }
  }
  return false;
}
}  // namespace

bool BlockManager::TakeFree(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  return EraseFromDeque(&free_, bg);
}

bool BlockManager::TakeUsed(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  return EraseFromDeque(&used_, bg);
}

void BlockManager::Retire(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  if (!is_retired_[bg]) {
    is_retired_[bg] = true;
    ++retired_count_;
  }
}

void BlockManager::MarkValid(std::uint64_t bg, std::uint32_t slot) {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK_LT(slot, groups_per_block_);
  if (!valid_[bg][slot]) {
    valid_[bg][slot] = true;
    ++valid_count_[bg];
  }
}

void BlockManager::MarkInvalid(std::uint64_t bg, std::uint32_t slot) {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK_LT(slot, groups_per_block_);
  if (valid_[bg][slot]) {
    valid_[bg][slot] = false;
    FAB_CHECK_GT(valid_count_[bg], 0u);
    --valid_count_[bg];
  }
}

bool BlockManager::IsValid(std::uint64_t bg, std::uint32_t slot) const {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK_LT(slot, groups_per_block_);
  return valid_[bg][slot];
}

}  // namespace fabacus
