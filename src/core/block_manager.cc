#include "src/core/block_manager.h"

namespace fabacus {

BlockManager::BlockManager(const NandConfig& config)
    : total_(config.TotalBlockGroups()),
      groups_per_block_(config.GroupsPerBlockGroup()),
      valid_(total_),
      valid_count_(total_, 0),
      is_retired_(total_, false) {
  for (std::uint64_t bg = 0; bg < total_; ++bg) {
    free_.push_back(bg);
    valid_[bg].assign(groups_per_block_, false);
  }
}

std::uint64_t BlockManager::AllocBlockGroup() {
  if (free_.empty()) {
    return kNone;
  }
  const std::uint64_t bg = free_.front();
  free_.pop_front();
  return bg;
}

void BlockManager::SealBlockGroup(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK(!is_retired_[bg]);
  used_.push_back(bg);
}

std::uint64_t BlockManager::PickVictim() {
  if (used_.empty()) {
    return kNone;
  }
  const std::uint64_t bg = used_.front();
  used_.pop_front();
  return bg;
}

void BlockManager::OnErased(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK(!is_retired_[bg]);
  FAB_CHECK_EQ(valid_count_[bg], 0u) << "erase of block group with valid data";
  valid_[bg].assign(groups_per_block_, false);
  free_.push_back(bg);
}

void BlockManager::Reset() {
  free_.clear();
  used_.clear();
  retired_count_ = 0;
  for (std::uint64_t bg = 0; bg < total_; ++bg) {
    free_.push_back(bg);
    valid_[bg].assign(groups_per_block_, false);
    valid_count_[bg] = 0;
    is_retired_[bg] = false;
  }
}

namespace {
bool EraseFromDeque(std::deque<std::uint64_t>* dq, std::uint64_t bg) {
  for (auto it = dq->begin(); it != dq->end(); ++it) {
    if (*it == bg) {
      dq->erase(it);
      return true;
    }
  }
  return false;
}
}  // namespace

bool BlockManager::TakeFree(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  return EraseFromDeque(&free_, bg);
}

bool BlockManager::TakeUsed(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  return EraseFromDeque(&used_, bg);
}

void BlockManager::Retire(std::uint64_t bg) {
  FAB_CHECK_LT(bg, total_);
  if (!is_retired_[bg]) {
    is_retired_[bg] = true;
    ++retired_count_;
  }
}

void BlockManager::MarkValid(std::uint64_t bg, std::uint32_t slot) {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK_LT(slot, groups_per_block_);
  if (!valid_[bg][slot]) {
    valid_[bg][slot] = true;
    ++valid_count_[bg];
  }
}

void BlockManager::MarkInvalid(std::uint64_t bg, std::uint32_t slot) {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK_LT(slot, groups_per_block_);
  if (valid_[bg][slot]) {
    valid_[bg][slot] = false;
    FAB_CHECK_GT(valid_count_[bg], 0u);
    --valid_count_[bg];
  }
}

bool BlockManager::IsValid(std::uint64_t bg, std::uint32_t slot) const {
  FAB_CHECK_LT(bg, total_);
  FAB_CHECK_LT(slot, groups_per_block_);
  return valid_[bg][slot];
}

void BlockManager::SaveState(StateWriter& w) const {
  w.U64(total_);
  w.U64(groups_per_block_);
  w.VecU64(std::vector<std::uint64_t>(free_.begin(), free_.end()));
  w.VecU64(std::vector<std::uint64_t>(used_.begin(), used_.end()));
  for (std::uint64_t bg = 0; bg < total_; ++bg) {
    std::vector<std::uint8_t> bits(groups_per_block_);
    for (std::uint64_t s = 0; s < groups_per_block_; ++s) {
      bits[s] = valid_[bg][s] ? 1 : 0;
    }
    w.VecU8(bits);
  }
  w.VecU32(valid_count_);
  std::vector<std::uint8_t> retired(total_);
  for (std::uint64_t bg = 0; bg < total_; ++bg) {
    retired[bg] = is_retired_[bg] ? 1 : 0;
  }
  w.VecU8(retired);
}

void BlockManager::LoadState(StateReader& r) {
  if (r.U64() != total_ || r.U64() != groups_per_block_) {
    if (r.ok()) {
      r.Fail("block manager geometry mismatch");
    }
    return;
  }
  const std::vector<std::uint64_t> free = r.VecU64();
  const std::vector<std::uint64_t> used = r.VecU64();
  std::vector<std::vector<std::uint8_t>> bits(total_);
  for (std::uint64_t bg = 0; bg < total_ && r.ok(); ++bg) {
    bits[bg] = r.VecU8();
    if (r.ok() && bits[bg].size() != groups_per_block_) {
      r.Fail("valid bitmap size mismatch");
    }
  }
  const std::vector<std::uint32_t> valid_count = r.VecU32();
  const std::vector<std::uint8_t> retired = r.VecU8();
  if (!r.ok()) {
    return;
  }
  if (valid_count.size() != total_ || retired.size() != total_) {
    r.Fail("block manager vector size mismatch");
    return;
  }
  free_.assign(free.begin(), free.end());
  used_.assign(used.begin(), used.end());
  retired_count_ = 0;
  for (std::uint64_t bg = 0; bg < total_; ++bg) {
    for (std::uint64_t s = 0; s < groups_per_block_; ++s) {
      valid_[bg][s] = bits[bg][s] != 0;
    }
    is_retired_[bg] = retired[bg] != 0;
    if (is_retired_[bg]) {
      ++retired_count_;
    }
  }
  valid_count_ = valid_count;
}

}  // namespace fabacus
