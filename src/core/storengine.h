// Storengine (paper §4.3, "Storage management"): the LWP that takes the
// time-consuming flash-management tasks off Flashvisor's critical path.
//  * Garbage collection: victims are picked from the used pool round-robin
//    (not by valid-count), valid page groups migrate to the active write
//    point, and the erased block group returns to the free pool — all in the
//    background, overlapped with kernel execution and address translation.
//  * Metadata journaling: periodically dumps the scratchpad-resident mapping
//    table to flash so the mapping survives power loss.
//  * Wear levelling falls out of the round-robin victim policy; stats are
//    exposed so tests can bound the wear spread.
#ifndef SRC_CORE_STORENGINE_H_
#define SRC_CORE_STORENGINE_H_

#include <cstdint>
#include <functional>

#include "src/core/flashvisor.h"
#include "src/core/serial_core.h"
#include "src/core/trace.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace fabacus {

struct StorengineConfig {
  Tick journal_interval = 200 * kMs;
  Tick gc_interval = 50 * kMs;
  // Background GC aims to keep at least this many block groups free.
  std::size_t gc_high_watermark = 8;
  Tick per_group_cpu = 200;   // ns of Storengine core time per migrated group
  Tick pass_fixed_cpu = 2000; // ns per GC pass / journal dump orchestration
  bool enable_journaling = true;
  bool enable_background_gc = true;
  // Patrol scrubber: refresh-migrates (1) valid data stranded in retired
  // block groups and (2) sealed block groups whose wear or accumulated
  // correctable-error count crossed the refresh thresholds.
  bool enable_scrub = true;
  Tick scrub_interval = 400 * kMs;
  double scrub_wear_ratio = 0.85;          // of NandConfig::endurance_cycles
  std::uint32_t scrub_error_threshold = 4; // correctable errors per block group
};

class Storengine : public Snapshottable {
 public:
  Storengine(Simulator* sim, Flashvisor* flashvisor,
             const StorengineConfig& config = StorengineConfig{});

  // Arms the periodic background tasks and registers the on-demand GC
  // trigger with Flashvisor.
  void Start();
  // Stops background work: no journal/GC/scrub event fires after this.
  // Bumping the epoch invalidates every already-scheduled daemon (it wakes,
  // sees a stale epoch, and neither acts nor reschedules), so the simulator
  // drains instead of ticking idle daemons forever.
  void Stop() {
    running_ = false;
    ++epoch_;
  }

  // Runs one GC pass immediately (also used by the on-demand trigger and by
  // tests); `done` fires when the victim has been reclaimed (or when there
  // was nothing to do).
  void RunGcPass(std::function<void(Tick)> done);

  // Dumps the mapping table to flash now.
  void RunJournalDump(std::function<void(Tick)> done);

  // Runs one patrol-scrub pass now: picks the neediest victim (stranded data
  // in a retired block group first, then worn/error-heavy sealed groups) and
  // refresh-migrates it. `done` fires when the pass completes (immediately
  // when there is nothing to scrub).
  void RunScrubPass(std::function<void(Tick)> done);

  // Block group holding the most recent mapping-table journal (kNone before
  // the first dump). Recovery tooling reads the snapshot back from here.
  std::uint64_t last_journal_bg() const { return prev_journal_bg_; }
  // Crash recovery re-seats the journal location found on flash, so the next
  // dump erases/frees the right block group.
  void SetJournalLocation(std::uint64_t bg) { prev_journal_bg_ = bg; }

  std::uint64_t gc_passes() const { return gc_passes_.value(); }
  std::uint64_t groups_migrated() const { return groups_migrated_.value(); }
  std::uint64_t blocks_reclaimed() const { return blocks_reclaimed_.value(); }
  std::uint64_t journal_dumps() const { return journal_dumps_.value(); }
  std::uint64_t journal_aborts() const { return journal_aborts_.value(); }
  std::uint64_t scrub_passes() const { return scrub_passes_.value(); }
  std::uint64_t scrub_migrations() const { return scrub_migrations_.value(); }
  SerialCore& core() { return core_; }
  const StorengineConfig& config() const { return config_; }

  // When set, background work records kGc intervals into `trace`:
  // track 0 = GC passes (pass start -> victim reclaimed), track 1 = metadata
  // journal dumps.
  void set_trace(RunTrace* trace) { trace_ = trace; }

  // Registers GC/journal counters plus core-occupancy gauges under `prefix`
  // (e.g. "storengine").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

  // Snapshottable: journal location, maintenance counters and core occupancy.
  // The daemon arming state (running_/epoch_) is deliberately not saved: the
  // device snapshots with Storengine stopped and re-arms it after resume.
  // No maintenance pass may be mid-flight (its continuation is a closure).
  std::string StateName() const override { return "storengine"; }
  void SaveState(StateWriter& w) const override {
    FAB_CHECK(!maintenance_in_progress_) << "storengine maintenance in flight at snapshot";
    w.U64(prev_journal_bg_);
    core_.SaveState(w);
    gc_passes_.SaveState(w);
    groups_migrated_.SaveState(w);
    blocks_reclaimed_.SaveState(w);
    journal_dumps_.SaveState(w);
    journal_aborts_.SaveState(w);
    scrub_passes_.SaveState(w);
    scrub_migrations_.SaveState(w);
  }
  void LoadState(StateReader& r) override {
    if (maintenance_in_progress_) {
      r.Fail("storengine busy during restore");
      return;
    }
    prev_journal_bg_ = r.U64();
    core_.LoadState(r);
    gc_passes_.LoadState(r);
    groups_migrated_.LoadState(r);
    blocks_reclaimed_.LoadState(r);
    journal_dumps_.LoadState(r);
    journal_aborts_.LoadState(r);
    scrub_passes_.LoadState(r);
    scrub_migrations_.LoadState(r);
  }

 private:
  void ScheduleNextGc();
  void ScheduleNextJournal();
  void ScheduleNextScrub();
  // Walks the victim's data slots from `slot`, migrating each valid group to
  // the active write point (bumping `migrated`); calls `finish` with the
  // final barrier once the slots are exhausted.
  void MigrateRange(std::uint64_t victim, std::uint32_t slot, Tick barrier, Counter* migrated,
                    std::function<void(Tick)> finish);
  void FinishVictim(std::uint64_t victim, Tick barrier, std::function<void(Tick)> done);
  // Scrub victim selection: returns the block group to refresh, or kNone.
  // Sets *retired_mode when the victim is a retired group (migrate-only).
  std::uint64_t PickScrubVictim(bool* retired_mode) const;
  // True when at least one sealed block group holds an invalid slot, i.e. a
  // round of round-robin GC can eventually net free space. When every sealed
  // group is fully valid the device is simply full: migrating victims would
  // shuffle data forever (and burn erase cycles) without ever freeing a
  // block, so the background daemon and the low-watermark trigger must back
  // off instead of livelocking.
  bool GcCanReclaim() const;

  Simulator* sim_;
  Flashvisor* fv_;
  StorengineConfig config_;
  SerialCore core_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  // bumped by Stop(); stale daemons self-cancel
  // GC and scrub share the migration machinery and the active write point;
  // one maintenance pass at a time keeps them from interleaving half-moved
  // block groups.
  bool maintenance_in_progress_ = false;
  std::uint64_t prev_journal_bg_ = BlockManager::kNone;
  RunTrace* trace_ = nullptr;
  Counter gc_passes_;
  Counter groups_migrated_;
  Counter blocks_reclaimed_;
  Counter journal_dumps_;
  Counter journal_aborts_;
  Counter scrub_passes_;
  Counter scrub_migrations_;
};

}  // namespace fabacus

#endif  // SRC_CORE_STORENGINE_H_
