// Storengine (paper §4.3, "Storage management"): the LWP that takes the
// time-consuming flash-management tasks off Flashvisor's critical path.
//  * Garbage collection: victims are picked from the used pool round-robin
//    (not by valid-count), valid page groups migrate to the active write
//    point, and the erased block group returns to the free pool — all in the
//    background, overlapped with kernel execution and address translation.
//  * Metadata journaling: periodically dumps the scratchpad-resident mapping
//    table to flash so the mapping survives power loss.
//  * Wear levelling falls out of the round-robin victim policy; stats are
//    exposed so tests can bound the wear spread.
#ifndef SRC_CORE_STORENGINE_H_
#define SRC_CORE_STORENGINE_H_

#include <cstdint>
#include <functional>

#include "src/core/flashvisor.h"
#include "src/core/serial_core.h"
#include "src/core/trace.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace fabacus {

struct StorengineConfig {
  Tick journal_interval = 200 * kMs;
  Tick gc_interval = 50 * kMs;
  // Background GC aims to keep at least this many block groups free.
  std::size_t gc_high_watermark = 8;
  Tick per_group_cpu = 200;   // ns of Storengine core time per migrated group
  Tick pass_fixed_cpu = 2000; // ns per GC pass / journal dump orchestration
  bool enable_journaling = true;
  bool enable_background_gc = true;
};

class Storengine {
 public:
  Storengine(Simulator* sim, Flashvisor* flashvisor,
             const StorengineConfig& config = StorengineConfig{});

  // Arms the periodic background tasks and registers the on-demand GC
  // trigger with Flashvisor.
  void Start();
  // Stops scheduling further periodic work (in-flight passes finish).
  void Stop() { running_ = false; }

  // Runs one GC pass immediately (also used by the on-demand trigger and by
  // tests); `done` fires when the victim has been reclaimed (or when there
  // was nothing to do).
  void RunGcPass(std::function<void(Tick)> done);

  // Dumps the mapping table to flash now.
  void RunJournalDump(std::function<void(Tick)> done);

  // Block group holding the most recent mapping-table journal (kNone before
  // the first dump). Recovery tooling reads the snapshot back from here.
  std::uint64_t last_journal_bg() const { return prev_journal_bg_; }

  std::uint64_t gc_passes() const { return gc_passes_.value(); }
  std::uint64_t groups_migrated() const { return groups_migrated_.value(); }
  std::uint64_t blocks_reclaimed() const { return blocks_reclaimed_.value(); }
  std::uint64_t journal_dumps() const { return journal_dumps_.value(); }
  SerialCore& core() { return core_; }
  const StorengineConfig& config() const { return config_; }

  // When set, background work records kGc intervals into `trace`:
  // track 0 = GC passes (pass start -> victim reclaimed), track 1 = metadata
  // journal dumps.
  void set_trace(RunTrace* trace) { trace_ = trace; }

  // Registers GC/journal counters plus core-occupancy gauges under `prefix`
  // (e.g. "storengine").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const;

 private:
  void ScheduleNextGc();
  void ScheduleNextJournal();
  void MigrateSlot(std::uint64_t victim, std::uint32_t slot, Tick barrier,
                   std::function<void(Tick)> next);
  void FinishVictim(std::uint64_t victim, Tick barrier, std::function<void(Tick)> done);

  Simulator* sim_;
  Flashvisor* fv_;
  StorengineConfig config_;
  SerialCore core_;
  bool running_ = false;
  bool gc_in_progress_ = false;
  std::uint64_t prev_journal_bg_ = BlockManager::kNone;
  RunTrace* trace_ = nullptr;
  Counter gc_passes_;
  Counter groups_migrated_;
  Counter blocks_reclaimed_;
  Counter journal_dumps_;
};

}  // namespace fabacus

#endif  // SRC_CORE_STORENGINE_H_
