// ShardRouter: pluggable placement of client requests onto fleet shards.
//
//  * kRoundRobin       — rotate over the devices in arrival order. Oblivious
//    to device state; the throughput baseline.
//  * kLeastOutstanding — pick the device with the fewest queued + in-flight
//    requests (ties to the lowest index). The classic join-shortest-queue
//    latency policy; needs live fleet state.
//  * kDataAffinity     — hash the request's workload to a home device so
//    repeated requests for a dataset land where its flash-resident copy
//    already lives (install-cache hits instead of fresh flash writes).
//    Oblivious; trades balance for flash locality.
//
// `attempt` > 0 asks for the policy's next-best candidate after an admission
// rejection; every policy enumerates all devices across num_devices attempts.
#ifndef SRC_FLEET_SHARD_ROUTER_H_
#define SRC_FLEET_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "src/fleet/traffic.h"
#include "src/sim/snapshot.h"

namespace fabacus {

enum class PlacementPolicy { kRoundRobin, kLeastOutstanding, kDataAffinity };

const char* PlacementPolicyName(PlacementPolicy p);

// True when the policy's choice depends only on the request stream, never on
// device state — the precondition for routing a whole open-loop schedule up
// front and simulating the shards in parallel (see FleetSim).
bool PolicyIsOblivious(PlacementPolicy p);

class ShardRouter {
 public:
  ShardRouter(PlacementPolicy policy, int num_devices);

  PlacementPolicy policy() const { return policy_; }
  int num_devices() const { return num_devices_; }

  // Device for `r`. `outstanding[d]` = queued + in-flight requests on shard d
  // (consulted only by state-aware policies; pass zeros for oblivious ones).
  // `attempt` 0 is the primary choice, 1.. the fallbacks after rejections.
  int Route(const FleetRequest& r, const std::vector<int>& outstanding, int attempt = 0);

  // Checkpoint/restore of the rotation cursor (round-robin's only state).
  void SaveState(StateWriter& w) const { w.U64(rr_next_); }
  void LoadState(StateReader& r) { rr_next_ = r.U64(); }

 private:
  PlacementPolicy policy_;
  int num_devices_;
  std::uint64_t rr_next_ = 0;
};

}  // namespace fabacus

#endif  // SRC_FLEET_SHARD_ROUTER_H_
