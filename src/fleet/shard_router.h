// ShardRouter: pluggable placement of client requests onto fleet shards.
//
//  * kRoundRobin       — rotate over the devices in arrival order. Oblivious
//    to device state; the throughput baseline.
//  * kLeastOutstanding — pick the device with the fewest queued + in-flight
//    requests (ties to the lowest index). The classic join-shortest-queue
//    latency policy; needs live fleet state.
//  * kDataAffinity     — hash the request's workload to a home device so
//    repeated requests for a dataset land where its flash-resident copy
//    already lives (install-cache hits instead of fresh flash writes).
//    Oblivious; trades balance for flash locality.
//  * kHealthAware      — rank routable devices (breaker closed, or half-open
//    with probe-quota room) ahead of unroutable ones, then by outstanding
//    load and EWMA health score (docs/FLEET.md "Fleet fault tolerance").
//    Routes around crashed, open-breaker and slow shards while still
//    enumerating every device across attempts, so a degraded fleet fails
//    static instead of failing closed; half-open shards receive a bounded
//    probe trickle so they can prove themselves and rejoin.
//
// `attempt` > 0 asks for the policy's next-best candidate after an admission
// rejection; every policy enumerates all devices across num_devices attempts,
// even when some of them are down (the unroutable ones come last).
#ifndef SRC_FLEET_SHARD_ROUTER_H_
#define SRC_FLEET_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "src/fleet/traffic.h"
#include "src/sim/snapshot.h"

namespace fabacus {

enum class PlacementPolicy { kRoundRobin, kLeastOutstanding, kDataAffinity, kHealthAware };

const char* PlacementPolicyName(PlacementPolicy p);

// True when the policy's choice depends only on the request stream, never on
// device state — the precondition for routing a whole open-loop schedule up
// front and simulating the shards in parallel (see FleetSim).
bool PolicyIsOblivious(PlacementPolicy p);

// One shard's admission posture as seen by the router (built by FleetSim from
// the shard's CircuitBreaker + HealthTracker each time it routes).
struct ShardHealthView {
  bool routable = true;  // false: breaker open, shard down or permanently dead
  bool probing = false;  // half-open: admit only the probe trickle
  double score = 0.0;    // HealthTracker::Score(); lower is healthier
};

// Live fleet state consulted by the state-aware policies. Oblivious policies
// ignore both fields; a null `health` means every shard is presumed healthy.
struct RouteState {
  const std::vector<int>* outstanding = nullptr;  // queued + in-flight per shard
  const std::vector<ShardHealthView>* health = nullptr;
};

class ShardRouter {
 public:
  ShardRouter(PlacementPolicy policy, int num_devices);

  PlacementPolicy policy() const { return policy_; }
  int num_devices() const { return num_devices_; }

  // Device for `r`. `attempt` 0 is the primary choice, 1.. the fallbacks
  // after rejections; attempts 0..num_devices-1 visit every device once.
  int Route(const FleetRequest& r, const RouteState& state, int attempt = 0);
  // Convenience for callers with no health signal (oblivious paths, tests).
  int Route(const FleetRequest& r, const std::vector<int>& outstanding, int attempt = 0);

  // Checkpoint/restore: a versioned per-policy state blob (format version
  // byte, policy tag, then the policy's own payload — the rotation cursor for
  // round-robin, nothing for the stateless policies). LoadState rejects
  // version or policy mismatches via the reader's latched-error discipline.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  static constexpr std::uint8_t kStateFormatVersion = 1;

  PlacementPolicy policy_;
  int num_devices_;
  std::uint64_t rr_next_ = 0;
};

}  // namespace fabacus

#endif  // SRC_FLEET_SHARD_ROUTER_H_
