#include "src/fleet/admission_queue.h"

#include "src/sim/log.h"

namespace fabacus {

AdmissionQueue::AdmissionQueue(std::size_t max_depth) : max_depth_(max_depth) {
  FAB_CHECK_GT(max_depth, 0u) << "admission queue needs at least one slot";
}

bool AdmissionQueue::TryEnqueue(FleetRequest* r, Tick now) {
  FAB_CHECK(r != nullptr);
  if (queue_.size() >= max_depth_) {
    rejected_.Add();
    return false;
  }
  queue_.push_back(r);
  enqueued_.Add();
  peak_depth_ = std::max(peak_depth_, queue_.size());
  depth_series_.Record(now, static_cast<double>(queue_.size()));
  return true;
}

FleetRequest* AdmissionQueue::Dequeue(Tick now) {
  FAB_CHECK(!queue_.empty()) << "dequeue from empty admission queue";
  FleetRequest* r = queue_.front();
  queue_.pop_front();
  depth_series_.Record(now, static_cast<double>(queue_.size()));
  return r;
}

}  // namespace fabacus
