#include "src/fleet/admission_queue.h"

#include "src/sim/log.h"

namespace fabacus {

AdmissionQueue::AdmissionQueue(std::size_t max_depth) : max_depth_(max_depth) {
  FAB_CHECK_GT(max_depth, 0u) << "admission queue needs at least one slot";
}

bool AdmissionQueue::TryEnqueue(FleetRequest* r, Tick now) {
  FAB_CHECK(r != nullptr);
  if (queue_.size() >= max_depth_) {
    rejected_.Add();
    return false;
  }
  queue_.push_back(r);
  enqueued_.Add();
  peak_depth_ = std::max(peak_depth_, queue_.size());
  depth_series_.Record(now, static_cast<double>(queue_.size()));
  return true;
}

bool AdmissionQueue::Remove(FleetRequest* r, Tick now) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == r) {
      queue_.erase(it);
      depth_series_.Record(now, static_cast<double>(queue_.size()));
      return true;
    }
  }
  return false;
}

FleetRequest* AdmissionQueue::EvictWorseThan(RequestPriority p, Tick now) {
  // Youngest of the worst class present: the least sunk queueing investment.
  auto victim = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (static_cast<int>((*it)->priority) <= static_cast<int>(p)) {
      continue;
    }
    if (victim == queue_.end() ||
        static_cast<int>((*it)->priority) >= static_cast<int>((*victim)->priority)) {
      victim = it;
    }
  }
  if (victim == queue_.end()) {
    return nullptr;
  }
  FleetRequest* r = *victim;
  queue_.erase(victim);
  depth_series_.Record(now, static_cast<double>(queue_.size()));
  return r;
}

FleetRequest* AdmissionQueue::Dequeue(Tick now) {
  FAB_CHECK(!queue_.empty()) << "dequeue from empty admission queue";
  FleetRequest* r = queue_.front();
  queue_.pop_front();
  depth_series_.Record(now, static_cast<double>(queue_.size()));
  return r;
}

}  // namespace fabacus
