#include "src/fleet/fleet_faults.h"

#include <algorithm>

#include "src/sim/rng.h"

namespace fabacus {

const char* FleetFaultKindName(FleetFaultEvent::Kind k) {
  switch (k) {
    case FleetFaultEvent::Kind::kStall:
      return "stall";
    case FleetFaultEvent::Kind::kDegrade:
      return "degrade";
    case FleetFaultEvent::Kind::kCrash:
      return "crash";
    case FleetFaultEvent::Kind::kDeath:
      return "death";
  }
  return "?";
}

const char* FleetRecoveryName(FleetFaultConfig::Recovery r) {
  switch (r) {
    case FleetFaultConfig::Recovery::kFlash:
      return "flash";
    case FleetFaultConfig::Recovery::kSnapshot:
      return "snapshot";
  }
  return "?";
}

std::string FleetFaultConfig::Validate(int num_devices) const {
  for (const FleetFaultEvent& e : plan) {
    if (e.shard < 0 || e.shard >= num_devices) {
      return "fault plan targets shard " + std::to_string(e.shard) + " but the fleet has " +
             std::to_string(num_devices) + " devices";
    }
    if (e.at < 0) {
      return "fault plan entries need a non-negative tick";
    }
    if (e.kind == FleetFaultEvent::Kind::kStall) {
      if (e.duration < 1) {
        return "stall events need a positive duration";
      }
      if (e.stall_factor <= 1.0) {
        return "stall_factor must exceed 1.0, got " + std::to_string(e.stall_factor);
      }
    }
    if (e.kind == FleetFaultEvent::Kind::kCrash && e.duration < 1) {
      return "crash events need a positive downtime duration";
    }
  }
  if (random_events < 0) {
    return "random_events must be >= 0, got " + std::to_string(random_events);
  }
  if (random_events > 0) {
    if (random_horizon < 1) {
      return "random chaos needs a positive random_horizon";
    }
    if (weight_stall < 0.0 || weight_degrade < 0.0 || weight_crash < 0.0) {
      return "chaos kind weights must be non-negative";
    }
    if (weight_stall + weight_degrade + weight_crash <= 0.0) {
      return "at least one chaos kind weight must be positive";
    }
    if (random_crash_downtime < 1 || random_stall_duration < 1) {
      return "chaos downtime/stall durations must be positive";
    }
    if (random_stall_factor <= 1.0) {
      return "random_stall_factor must exceed 1.0";
    }
  }
  if (checkpoint_every_batches < 1) {
    return "checkpoint_every_batches must be >= 1, got " +
           std::to_string(checkpoint_every_batches);
  }
  return "";
}

std::vector<FleetFaultEvent> FleetFaultConfig::Materialize(int num_devices) const {
  std::vector<FleetFaultEvent> events = plan;
  if (random_events > 0 && num_devices > 0) {
    Rng rng(seed);
    const double total = weight_stall + weight_degrade + weight_crash;
    for (int i = 0; i < random_events; ++i) {
      FleetFaultEvent e;
      e.shard = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(num_devices)));
      e.at = static_cast<Tick>(rng.NextBelow(static_cast<std::uint64_t>(random_horizon)));
      const double u = rng.NextDouble() * total;
      if (u < weight_stall) {
        e.kind = FleetFaultEvent::Kind::kStall;
        e.duration = random_stall_duration;
        e.stall_factor = random_stall_factor;
      } else if (u < weight_stall + weight_degrade) {
        e.kind = FleetFaultEvent::Kind::kDegrade;
        e.kill_whole_channel = rng.NextBelow(4) == 0;  // mostly single-die kills
        e.kill_channel = static_cast<int>(rng.NextBelow(1u << 16));
        e.kill_package = static_cast<int>(rng.NextBelow(1u << 16));
      } else {
        e.kind = FleetFaultEvent::Kind::kCrash;
        e.duration = random_crash_downtime;
      }
      events.push_back(e);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FleetFaultEvent& a, const FleetFaultEvent& b) {
                     if (a.at != b.at) {
                       return a.at < b.at;
                     }
                     if (a.shard != b.shard) {
                       return a.shard < b.shard;
                     }
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return events;
}

}  // namespace fabacus
