#include "src/fleet/shard_router.h"

#include <algorithm>
#include <numeric>

#include "src/sim/log.h"

namespace fabacus {

const char* PlacementPolicyName(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kLeastOutstanding:
      return "least-outstanding";
    case PlacementPolicy::kDataAffinity:
      return "data-affinity";
    case PlacementPolicy::kHealthAware:
      return "health-aware";
  }
  return "?";
}

bool PolicyIsOblivious(PlacementPolicy p) {
  return p != PlacementPolicy::kLeastOutstanding && p != PlacementPolicy::kHealthAware;
}

ShardRouter::ShardRouter(PlacementPolicy policy, int num_devices)
    : policy_(policy), num_devices_(num_devices) {
  FAB_CHECK_GE(num_devices, 1);
}

int ShardRouter::Route(const FleetRequest& r, const std::vector<int>& outstanding,
                       int attempt) {
  RouteState state;
  state.outstanding = &outstanding;
  return Route(r, state, attempt);
}

int ShardRouter::Route(const FleetRequest& r, const RouteState& state, int attempt) {
  const std::uint64_t n = static_cast<std::uint64_t>(num_devices_);
  const std::uint64_t a = static_cast<std::uint64_t>(attempt);
  switch (policy_) {
    case PlacementPolicy::kRoundRobin: {
      // One rotation step per request; retries probe the following devices.
      if (attempt == 0) {
        rr_next_ = (rr_next_ + 1) % n;
      }
      return static_cast<int>((rr_next_ + a) % n);
    }
    case PlacementPolicy::kLeastOutstanding: {
      FAB_CHECK(state.outstanding != nullptr) << "least-outstanding needs live queue depths";
      const std::vector<int>& outstanding = *state.outstanding;
      FAB_CHECK_EQ(outstanding.size(), n) << "outstanding vector size mismatch";
      // attempt-th smallest (outstanding, index); deterministic under ties.
      std::vector<int> order(num_devices_);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int x, int y) {
        const std::size_t sx = static_cast<std::size_t>(x);
        const std::size_t sy = static_cast<std::size_t>(y);
        return outstanding[sx] != outstanding[sy] ? outstanding[sx] < outstanding[sy] : x < y;
      });
      return order[static_cast<std::size_t>(a % n)];
    }
    case PlacementPolicy::kDataAffinity: {
      // SplitMix64-style scramble of the workload id: the dataset's home
      // device. Retries spiral outward from home.
      std::uint64_t z = static_cast<std::uint64_t>(r.workload_idx) + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<int>(((z ^ (z >> 31)) + a) % n);
    }
    case PlacementPolicy::kHealthAware: {
      FAB_CHECK(state.outstanding != nullptr) << "health-aware needs live queue depths";
      const std::vector<int>& outstanding = *state.outstanding;
      FAB_CHECK_EQ(outstanding.size(), n) << "outstanding vector size mismatch";
      if (state.health != nullptr) {
        FAB_CHECK_EQ(state.health->size(), n) << "health view size mismatch";
      }
      // Rank routable shards (closed, or half-open with probe-quota room)
      // ahead of unroutable ones, then by load, then EWMA score, ties to the
      // lowest index — the attempt-th entry of that ranking. A half-open
      // shard competes like a closed one on purpose: the breaker's probe
      // quota flips it to unroutable once enough probes are in flight, so it
      // receives a bounded trickle instead of starving (a shard that never
      // sees traffic can never prove itself and rejoin). Unroutable shards
      // still appear at the tail so retries enumerate the whole fleet
      // ("fail static").
      auto category = [&](int d) {
        if (state.health == nullptr) {
          return 0;
        }
        return (*state.health)[static_cast<std::size_t>(d)].routable ? 0 : 1;
      };
      auto score = [&](int d) {
        return state.health == nullptr ? 0.0
                                       : (*state.health)[static_cast<std::size_t>(d)].score;
      };
      std::vector<int> order(num_devices_);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int x, int y) {
        const int cx = category(x);
        const int cy = category(y);
        if (cx != cy) {
          return cx < cy;
        }
        const std::size_t sx = static_cast<std::size_t>(x);
        const std::size_t sy = static_cast<std::size_t>(y);
        if (outstanding[sx] != outstanding[sy]) {
          return outstanding[sx] < outstanding[sy];
        }
        const double hx = score(x);
        const double hy = score(y);
        if (hx != hy) {
          return hx < hy;
        }
        return x < y;
      });
      return order[static_cast<std::size_t>(a % n)];
    }
  }
  return 0;
}

void ShardRouter::SaveState(StateWriter& w) const {
  w.U8(kStateFormatVersion);
  w.U8(static_cast<std::uint8_t>(policy_));
  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      w.U64(rr_next_);
      break;
    case PlacementPolicy::kLeastOutstanding:
    case PlacementPolicy::kDataAffinity:
    case PlacementPolicy::kHealthAware:
      break;  // stateless: their choices derive from live fleet state
  }
}

void ShardRouter::LoadState(StateReader& r) {
  const std::uint8_t version = r.U8();
  if (r.ok() && version != kStateFormatVersion) {
    r.Fail("router state format version " + std::to_string(version) + " != " +
           std::to_string(kStateFormatVersion));
    return;
  }
  const std::uint8_t policy = r.U8();
  if (r.ok() && policy != static_cast<std::uint8_t>(policy_)) {
    r.Fail("router state saved under policy " + std::to_string(policy) +
           " but this router runs " + PlacementPolicyName(policy_));
    return;
  }
  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      rr_next_ = r.U64();
      break;
    case PlacementPolicy::kLeastOutstanding:
    case PlacementPolicy::kDataAffinity:
    case PlacementPolicy::kHealthAware:
      break;
  }
}

}  // namespace fabacus
