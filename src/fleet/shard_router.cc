#include "src/fleet/shard_router.h"

#include <algorithm>
#include <numeric>

#include "src/sim/log.h"

namespace fabacus {

const char* PlacementPolicyName(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kLeastOutstanding:
      return "least-outstanding";
    case PlacementPolicy::kDataAffinity:
      return "data-affinity";
  }
  return "?";
}

bool PolicyIsOblivious(PlacementPolicy p) { return p != PlacementPolicy::kLeastOutstanding; }

ShardRouter::ShardRouter(PlacementPolicy policy, int num_devices)
    : policy_(policy), num_devices_(num_devices) {
  FAB_CHECK_GE(num_devices, 1);
}

int ShardRouter::Route(const FleetRequest& r, const std::vector<int>& outstanding, int attempt) {
  const std::uint64_t n = static_cast<std::uint64_t>(num_devices_);
  const std::uint64_t a = static_cast<std::uint64_t>(attempt);
  switch (policy_) {
    case PlacementPolicy::kRoundRobin: {
      // One rotation step per request; retries probe the following devices.
      if (attempt == 0) {
        rr_next_ = (rr_next_ + 1) % n;
      }
      return static_cast<int>((rr_next_ + a) % n);
    }
    case PlacementPolicy::kLeastOutstanding: {
      FAB_CHECK_EQ(outstanding.size(), n) << "outstanding vector size mismatch";
      // attempt-th smallest (outstanding, index); deterministic under ties.
      std::vector<int> order(num_devices_);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int x, int y) {
        const std::size_t sx = static_cast<std::size_t>(x);
        const std::size_t sy = static_cast<std::size_t>(y);
        return outstanding[sx] != outstanding[sy] ? outstanding[sx] < outstanding[sy] : x < y;
      });
      return order[static_cast<std::size_t>(a % n)];
    }
    case PlacementPolicy::kDataAffinity: {
      // SplitMix64-style scramble of the workload id: the dataset's home
      // device. Retries spiral outward from home.
      std::uint64_t z = static_cast<std::uint64_t>(r.workload_idx) + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<int>(((z ^ (z >> 31)) + a) % n);
    }
  }
  return 0;
}

}  // namespace fabacus
