#include "src/fleet/fleet.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>

#include "src/sim/json.h"
#include "src/sim/log.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep_runner.h"

namespace fabacus {
namespace {

std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stable per-instance seed: the same (fleet seed, shard, workload, slot)
// always prepares the same dataset, independent of execution order — the
// partitioned and lockstep paths must produce identical flash contents.
std::uint64_t InstanceSeed(std::uint64_t base, int shard, int workload, std::size_t slot) {
  std::uint64_t z = base;
  z = Mix64(z + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1));
  z = Mix64(z + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(workload) + 1));
  z = Mix64(z + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(slot) + 1));
  return z;
}

void WriteHistogramSummary(JsonWriter* w, const Histogram& h) {
  w->BeginObject();
  w->Field("count", static_cast<double>(h.count()));
  if (h.count() > 0) {
    w->Field("min", h.Min())
        .Field("mean", h.Mean())
        .Field("p50", h.Percentile(50))
        .Field("p95", h.Percentile(95))
        .Field("p99", h.Percentile(99))
        .Field("max", h.Max());
  }
  w->EndObject();
}

constexpr std::size_t kQueueDepthBuckets = 32;

}  // namespace

std::string FleetConfig::Validate() const {
  if (num_devices < 1) {
    return "num_devices must be >= 1, got " + std::to_string(num_devices);
  }
  const std::string dev = device.Validate();
  if (!dev.empty()) {
    return "device config: " + dev;
  }
  const std::string tr = traffic.Validate();
  if (!tr.empty()) {
    return "traffic config: " + tr;
  }
  if (queue_depth < 1) {
    return "queue_depth must be >= 1";
  }
  if (max_batch < 1) {
    return "max_batch must be >= 1, got " + std::to_string(max_batch);
  }
  if (max_route_attempts < 1 || max_route_attempts > num_devices) {
    return "max_route_attempts must be in [1, num_devices], got " +
           std::to_string(max_route_attempts);
  }
  if (slo_ms <= 0.0) {
    return "slo_ms must be positive, got " + std::to_string(slo_ms);
  }
  if (execution == Execution::kPartitioned && !CanPartition()) {
    return "partitioned execution needs open-loop traffic, an oblivious placement "
           "policy and max_route_attempts == 1";
  }
  return "";
}

bool FleetConfig::CanPartition() const {
  return traffic.model == TrafficConfig::Model::kOpenLoop && PolicyIsOblivious(policy) &&
         max_route_attempts == 1;
}

// One independently-simulated device plus its fleet-side serving state.
struct FleetSim::Shard {
  explicit Shard(std::size_t queue_slots) : queue(queue_slots) {}

  int index = 0;
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<FlashAbacus> dev;
  AdmissionQueue queue;

  bool busy = false;
  std::vector<FleetRequest*> current_batch;

  // Installed (flash-resident) workload instances, reusable across requests.
  struct CachedInstance {
    std::unique_ptr<AppInstance> inst;
    std::uint64_t seed = 0;
    bool in_use = false;
  };
  std::vector<std::vector<CachedInstance>> cache;  // [workload_idx]

  FleetDeviceStats stats;
  bool verified = true;
};

// Advances a set of shards through their arrival/batch-completion events in
// deterministic (time, sequence) order. The lockstep path runs one loop over
// every shard; the partitioned path runs one loop per shard (pre-routed
// arrivals, no router, no closed-loop generator) on the sweep pool.
struct FleetSim::ServeLoop {
  FleetSim* fleet;
  std::vector<Shard*> shards;             // lockstep: indexed by device id
  ShardRouter* router = nullptr;          // null = arrivals are pre-routed
  TrafficGenerator* gen = nullptr;        // closed-loop source (lockstep only)
  std::deque<FleetRequest>* pool = nullptr;  // owner of generated requests

  struct Ev {
    Tick t;
    std::uint64_t seq;
    bool arrival;
    FleetRequest* req;    // arrival payload
    Shard* shard;         // batch-done payload
  };
  struct EvAfter {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, EvAfter> heap;
  std::uint64_t seq = 0;

  void PushArrival(FleetRequest* r) { heap.push({r->arrival, seq++, true, r, nullptr}); }
  void PushBatchDone(Shard* s, Tick t) { heap.push({t, seq++, false, nullptr, s}); }

  void Run() {
    while (!heap.empty()) {
      const Ev e = heap.top();
      heap.pop();
      if (e.arrival) {
        OnArrival(e.req, e.t);
      } else {
        OnBatchDone(e.shard, e.t);
      }
    }
  }

  Shard* ShardByIndex(int index) const {
    for (Shard* s : shards) {
      if (s->index == index) {
        return s;
      }
    }
    FAB_CHECK(false) << "no shard " << index << " in this serve loop";
    return nullptr;
  }

  std::vector<int> Outstanding() const {
    std::vector<int> out(static_cast<std::size_t>(fleet->config_.num_devices), 0);
    for (const Shard* s : shards) {
      out[static_cast<std::size_t>(s->index)] =
          static_cast<int>(s->queue.depth() + s->current_batch.size());
    }
    return out;
  }

  void OnArrival(FleetRequest* r, Tick now) {
    Shard* admitted = nullptr;
    int primary = -1;
    if (router == nullptr) {
      primary = r->device;  // pre-routed
      Shard* s = ShardByIndex(primary);
      if (s->queue.TryEnqueue(r, now)) {
        admitted = s;
      }
    } else {
      const std::vector<int> outstanding = Outstanding();
      for (int attempt = 0; attempt < fleet->config_.max_route_attempts; ++attempt) {
        const int d = router->Route(*r, outstanding, attempt);
        if (attempt == 0) {
          primary = d;
        } else {
          ++r->route_retries;
        }
        Shard* s = ShardByIndex(d);
        if (s->queue.TryEnqueue(r, now)) {
          admitted = s;
          break;
        }
      }
    }
    if (admitted == nullptr) {
      r->outcome = FleetRequest::Outcome::kShed;
      r->device = -1;
      ShardByIndex(primary)->stats.shed += 1;
      ClientDone(r, now);  // a shed response still frees the client to retry
      return;
    }
    r->device = admitted->index;
    if (!admitted->busy) {
      StartBatch(admitted, now);
    }
  }

  void OnBatchDone(Shard* s, Tick now) {
    const std::vector<FleetRequest*> batch = std::move(s->current_batch);
    s->current_batch.clear();
    s->busy = false;
    for (FleetRequest* r : batch) {
      ClientDone(r, r->complete);
    }
    if (!s->queue.empty()) {
      StartBatch(s, now);
    }
  }

  void ClientDone(FleetRequest* r, Tick now) {
    if (gen == nullptr) {
      return;
    }
    FleetRequest next;
    if (gen->NextForClient(r->client_id, now, &next)) {
      pool->push_back(next);
      PushArrival(&pool->back());
    }
  }

  void StartBatch(Shard* s, Tick now) {
    FAB_CHECK(!s->busy);
    FAB_CHECK(!s->queue.empty());
    s->busy = true;
    while (!s->queue.empty() &&
           s->current_batch.size() < static_cast<std::size_t>(fleet->config_.max_batch)) {
      FleetRequest* r = s->queue.Dequeue(now);
      r->dispatch = now;
      s->current_batch.push_back(r);
    }
    PushBatchDone(s, RunBatch(s, now));
  }

  // Executes the shard's current batch on its device, eagerly running the
  // device simulator to completion, and returns the batch-done tick. Eager
  // execution is sound because shards only interact through routing, which
  // reads fleet-level bookkeeping processed in global event order.
  Tick RunBatch(Shard* s, Tick now) {
    if (s->sim->Now() < now) {
      // Align the shard clock with fleet time (the previous batch's write
      // drain may have advanced it, an idle gap may lag it).
      s->sim->ScheduleAt(now, []() {});
      s->sim->Run();
    }
    std::vector<AppInstance*> insts;
    insts.reserve(s->current_batch.size());
    bool fresh_install = false;
    for (FleetRequest* r : s->current_batch) {
      insts.push_back(Acquire(s, r, &fresh_install));
    }
    if (fresh_install) {
      s->sim->Run();  // drain the dataset installs before the offload
    }
    bool completed = false;
    Tick end = 0;
    RunReport rep;
    s->dev->Run(insts, fleet->config_.scheduler, [&](RunReport rr) {
      rep = std::move(rr);
      end = s->sim->Now();
      completed = true;
    });
    s->sim->Run();
    FAB_CHECK(completed) << "fleet batch did not complete on shard " << s->index;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      FleetRequest* r = s->current_batch[i];
      r->complete = insts[i]->complete_time;
      r->outcome = FleetRequest::Outcome::kServed;
      if (fleet->config_.verify_outputs) {
        s->verified = s->verified &&
                      fleet->traffic_->mix()[static_cast<std::size_t>(r->workload_idx)]->Verify(
                          *insts[i]);
      }
      Release(s, r, insts[i]);
    }
    s->stats.batches += 1;
    s->stats.served += insts.size();
    s->stats.busy_ns += end - now;
    s->stats.batch_ms.Record(TicksToMs(end - now));
    s->stats.energy_j += rep.EnergySummary().total_j;
    return end;
  }

  AppInstance* Acquire(Shard* s, FleetRequest* r, bool* fresh_install) {
    const Workload* wl = fleet->traffic_->mix()[static_cast<std::size_t>(r->workload_idx)];
    auto& cache = s->cache[static_cast<std::size_t>(r->workload_idx)];
    for (Shard::CachedInstance& slot : cache) {
      if (slot.in_use) {
        continue;
      }
      // Dataset already flash-resident: re-prepare the buffers with the
      // slot's original seed (matching the flash contents) and reset the
      // execution timeline.
      slot.in_use = true;
      AppInstance* inst = slot.inst.get();
      Rng rng(slot.seed);
      wl->Prepare(*inst, rng);
      inst->done = false;
      inst->submit_time = 0;
      inst->load_done_time = 0;
      inst->compute_done_time = 0;
      inst->complete_time = 0;
      s->stats.install_hits += 1;
      return inst;
    }
    const std::uint64_t seed =
        InstanceSeed(fleet->config_.traffic.seed, s->index, r->workload_idx, cache.size());
    auto inst = std::make_unique<AppInstance>(r->workload_idx, static_cast<int>(cache.size()),
                                              &wl->spec(), fleet->config_.device.model_scale);
    Rng rng(seed);
    wl->Prepare(*inst, rng);
    s->dev->InstallData(inst.get(), [](Tick) {});
    *fresh_install = true;
    s->stats.installs += 1;
    cache.push_back({std::move(inst), seed, true});
    return cache.back().inst.get();
  }

  void Release(Shard* s, FleetRequest* r, AppInstance* inst) {
    for (Shard::CachedInstance& slot : s->cache[static_cast<std::size_t>(r->workload_idx)]) {
      if (slot.inst.get() == inst) {
        slot.in_use = false;
        return;
      }
    }
    FAB_CHECK(false) << "released instance not in shard cache";
  }
};

FleetSim::FleetSim(const FleetConfig& config)
    : config_(config), router_(config.policy, std::max(config.num_devices, 1)) {
  const std::string problem = config_.Validate();
  FAB_CHECK(problem.empty()) << "bad FleetConfig: " << problem;
  traffic_ = std::make_unique<TrafficGenerator>(config_.traffic);
  BuildShards();
}

FleetSim::~FleetSim() = default;

void FleetSim::BuildShards() {
  for (int d = 0; d < config_.num_devices; ++d) {
    auto shard = std::make_unique<Shard>(config_.queue_depth);
    shard->index = d;
    shard->sim = std::make_unique<Simulator>(config_.backend);
    FlashAbacusConfig dev_cfg = config_.device;
    // Decorrelate the shards' random fault schedules; a common seed would
    // make "independent" devices fail in lockstep.
    dev_cfg.nand.fault.seed ^= Mix64(static_cast<std::uint64_t>(d) + 0x51aDULL);
    shard->dev = std::make_unique<FlashAbacus>(shard->sim.get(), dev_cfg);
    shard->cache.resize(traffic_->mix().size());
    shards_.push_back(std::move(shard));
  }
}

SnapshotBuilder FleetSim::BuildSnapshot() const {
  SnapshotBuilder b("fleet");
  b.SetMeta("policy", PlacementPolicyName(config_.policy));
  b.SetMeta("traffic_model", TrafficModelName(config_.traffic.model));
  b.SetMeta("scheduler", SchedulerKindName(config_.scheduler));
  b.SetMeta("num_devices", static_cast<double>(config_.num_devices));
  {
    StateWriter& w = b.AddSection("fleet", 1);
    w.U32(static_cast<std::uint32_t>(config_.num_devices));
    w.U64(traffic_->mix().size());
    router_.SaveState(w);
    traffic_->SaveState(w);
  }
  for (const auto& shard : shards_) {
    FAB_CHECK(!shard->busy && shard->queue.empty())
        << "fleet shard " << shard->index << " still serving at snapshot";
    const std::string prefix = "shard/" + std::to_string(shard->index);
    b.AddBlobSection(prefix + "/device", 1, shard->dev->BuildSnapshot().Serialize());
    // Install-cache directory: which datasets are flash-resident on this
    // shard, their preparation seeds and the extents they map. Enough to
    // rebuild the cached AppInstances without re-installing anything.
    StateWriter& w = b.AddSection(prefix + "/cache", 1);
    w.U64(shard->cache.size());
    for (const auto& slots : shard->cache) {
      w.U64(slots.size());
      for (const Shard::CachedInstance& slot : slots) {
        FAB_CHECK(!slot.in_use) << "cached instance in use at snapshot";
        w.U64(slot.seed);
        w.U64(slot.inst->sections().size());
        for (const DataSection& s : slot.inst->sections()) {
          w.U64(s.flash_addr);
          w.U64(s.model_bytes);
        }
      }
    }
  }
  return b;
}

bool FleetSim::Snapshot(const std::string& path, std::string* error) const {
  return BuildSnapshot().WriteFile(path, error);
}

bool FleetSim::Resume(const SnapshotFile& snap, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  FAB_CHECK(!ran_) << "resume into a fresh FleetSim";
  if (snap.kind() != "fleet") {
    return fail("snapshot kind '" + snap.kind() + "' is not a fleet snapshot");
  }
  {
    StateReader r = snap.Open("fleet", 1);
    if (!r.ok()) {
      return fail(r.error());
    }
    const std::uint32_t devices = r.U32();
    const std::uint64_t mix = r.U64();
    if (!r.ok()) {
      return fail("corrupt fleet section: " + r.error());
    }
    if (devices != static_cast<std::uint32_t>(config_.num_devices)) {
      return fail("snapshot has " + std::to_string(devices) + " devices, this fleet has " +
                  std::to_string(config_.num_devices));
    }
    if (mix != traffic_->mix().size()) {
      return fail("snapshot workload mix size mismatch");
    }
    router_.LoadState(r);
    traffic_->LoadState(r);
    if (!r.ok()) {
      return fail("corrupt fleet section: " + r.error());
    }
    if (!r.AtEnd()) {
      return fail("fleet section has trailing bytes");
    }
  }
  resume_base_ = 0;
  for (auto& shard : shards_) {
    const std::string prefix = "shard/" + std::to_string(shard->index);
    const SnapshotFile::Section* dev = snap.Find(prefix + "/device");
    if (dev == nullptr) {
      return fail("missing section " + prefix + "/device");
    }
    SnapshotFile nested;
    std::string err;
    if (!SnapshotFile::Parse(dev->payload, &nested, &err)) {
      return fail(prefix + "/device: " + err);
    }
    if (!shard->dev->Resume(nested, &err)) {
      return fail(prefix + "/device: " + err);
    }
    resume_base_ = std::max(resume_base_, shard->sim->Now());

    StateReader c = snap.Open(prefix + "/cache", 1);
    if (!c.ok()) {
      return fail(c.error());
    }
    const std::uint64_t workloads = c.U64();
    if (!c.ok() || workloads != shard->cache.size()) {
      return fail(prefix + "/cache: workload count mismatch");
    }
    for (std::size_t wl_idx = 0; wl_idx < shard->cache.size() && c.ok(); ++wl_idx) {
      auto& slots = shard->cache[wl_idx];
      slots.clear();
      const Workload* wl = traffic_->mix()[wl_idx];
      const std::uint64_t n_slots = c.U64();
      for (std::uint64_t slot_i = 0; slot_i < n_slots && c.ok(); ++slot_i) {
        const std::uint64_t seed = c.U64();
        auto inst = std::make_unique<AppInstance>(static_cast<int>(wl_idx),
                                                  static_cast<int>(slot_i), &wl->spec(),
                                                  config_.device.model_scale);
        Rng rng(seed);
        wl->Prepare(*inst, rng);
        const std::uint64_t n_secs = c.U64();
        if (n_secs != wl->spec().sections.size()) {
          c.Fail("cached instance section count mismatch");
          break;
        }
        inst->sections().clear();
        for (std::uint64_t si = 0; si < n_secs; ++si) {
          DataSection s;
          s.spec = &wl->spec().sections[si];
          s.flash_addr = c.U64();
          s.model_bytes = c.U64();
          inst->sections().push_back(s);
        }
        slots.push_back({std::move(inst), seed, false});
      }
    }
    if (!c.ok()) {
      return fail(prefix + "/cache: " + c.error());
    }
    if (!c.AtEnd()) {
      return fail(prefix + "/cache has trailing bytes");
    }
  }
  return true;
}

bool FleetSim::Resume(const std::string& path, std::string* error) {
  SnapshotFile snap;
  std::string err;
  if (!SnapshotFile::Load(path, &snap, &err)) {
    if (error != nullptr) {
      *error = err;
    }
    return false;
  }
  return Resume(snap, error);
}

FleetReport FleetSim::Run() {
  FAB_CHECK(!ran_) << "FleetSim is one-shot; build a new one per run";
  ran_ = true;
  // The lazily-built registry must exist before any worker threads read it.
  WorkloadRegistry::Get();

  std::deque<FleetRequest> pool;
  for (FleetRequest& r : traffic_->InitialArrivals()) {
    // A resumed fleet's shard clocks sit at the snapshot point; arrivals
    // shift past it so the new serving window starts where the devices are.
    r.arrival += resume_base_;
    pool.push_back(r);
  }
  const std::size_t initial = pool.size();

  const bool partitioned = config_.execution == FleetConfig::Execution::kPartitioned ||
                           (config_.execution == FleetConfig::Execution::kAuto &&
                            config_.CanPartition());
  if (partitioned) {
    FAB_CHECK(config_.CanPartition());
    // Oblivious routing: place the whole schedule up front, then serve every
    // shard's slice independently on the sweep pool. Per-request outcomes
    // merge in submission order, so the report is identical to lockstep
    // execution at any thread count.
    const std::vector<int> zeros(static_cast<std::size_t>(config_.num_devices), 0);
    std::vector<std::vector<FleetRequest*>> slices(
        static_cast<std::size_t>(config_.num_devices));
    for (FleetRequest& r : pool) {
      r.device = router_.Route(r, zeros, 0);
      slices[static_cast<std::size_t>(r.device)].push_back(&r);
    }
    SweepRunner runner(config_.sweep_threads);
    runner.RunIndexed(shards_.size(), [&](std::size_t d) {
      ServeLoop loop;
      loop.fleet = this;
      loop.shards = {shards_[d].get()};
      for (FleetRequest* r : slices[d]) {
        loop.PushArrival(r);
      }
      loop.Run();
    });
  } else {
    ServeLoop loop;
    loop.fleet = this;
    for (auto& s : shards_) {
      loop.shards.push_back(s.get());
    }
    loop.router = &router_;
    loop.gen = traffic_.get();
    loop.pool = &pool;
    for (std::size_t i = 0; i < initial; ++i) {
      loop.PushArrival(&pool[i]);
    }
    loop.Run();
  }

  std::vector<FleetRequest*> requests;
  requests.reserve(pool.size());
  for (FleetRequest& r : pool) {
    requests.push_back(&r);
  }
  return Finalize(std::move(requests), partitioned ? "partitioned" : "lockstep");
}

FleetReport FleetSim::Finalize(std::vector<FleetRequest*> requests,
                               const std::string& execution) {
  std::sort(requests.begin(), requests.end(),
            [](const FleetRequest* a, const FleetRequest* b) { return a->id < b->id; });

  FleetReport rep;
  rep.policy = PlacementPolicyName(config_.policy);
  rep.traffic_model = TrafficModelName(config_.traffic.model);
  rep.scheduler = SchedulerKindName(config_.scheduler);
  rep.execution = execution;
  rep.num_devices = config_.num_devices;
  rep.client_latency_ms.resize(static_cast<std::size_t>(config_.traffic.num_clients));

  double served_bytes = 0.0;
  for (FleetRequest* r : requests) {
    ++rep.offered;
    rep.route_retries += static_cast<std::uint64_t>(r->route_retries);
    if (r->outcome == FleetRequest::Outcome::kShed) {
      ++rep.shed;
      rep.makespan = std::max(rep.makespan, r->arrival);
      continue;
    }
    FAB_CHECK(r->outcome == FleetRequest::Outcome::kServed)
        << "request " << r->id << " neither served nor shed";
    ++rep.served;
    rep.makespan = std::max(rep.makespan, r->complete);
    const double lat_ms = TicksToMs(r->complete - r->arrival);
    r->slo_violated = lat_ms > config_.slo_ms;
    if (r->slo_violated) {
      ++rep.slo_violations;
    }
    rep.latency_ms.Record(lat_ms);
    rep.client_latency_ms[static_cast<std::size_t>(r->client_id)].Record(lat_ms);
    shards_[static_cast<std::size_t>(r->device)]->stats.latency_ms.Record(lat_ms);
    const KernelSpec& spec = traffic_->mix()[static_cast<std::size_t>(r->workload_idx)]->spec();
    served_bytes += spec.model_input_mb * 1024.0 * 1024.0 * config_.device.model_scale;
  }
  // A resumed fleet reports its serving window only: the clock floor
  // inherited from the snapshot is not time this run spent serving.
  rep.makespan = rep.makespan > resume_base_ ? rep.makespan - resume_base_ : 0;

  const double seconds = TicksToSeconds(rep.makespan);
  rep.throughput_rps = seconds > 0.0 ? static_cast<double>(rep.served) / seconds : 0.0;
  rep.served_mb_s = seconds > 0.0 ? served_bytes / (1024.0 * 1024.0) / seconds : 0.0;

  for (auto& shard : shards_) {
    shard->stats.utilization =
        rep.makespan > 0
            ? static_cast<double>(std::min(shard->stats.busy_ns, rep.makespan)) /
                  static_cast<double>(rep.makespan)
            : 0.0;
    shard->stats.peak_queue_depth = shard->queue.peak_depth();
    shard->stats.queue_depth = shard->queue.depth_series();
    shard->stats.events_executed = shard->sim->events_executed();
    rep.verified = rep.verified && shard->verified;
    rep.devices.push_back(shard->stats);
  }

  // Everything above also flows through the observability layer: one
  // fleet/* metrics hierarchy, snapshotted at the fleet makespan.
  MetricsRegistry reg;
  std::deque<Counter> counters;
  auto counter = [&](const std::string& name, std::uint64_t v) {
    counters.emplace_back();
    counters.back().Add(v);
    reg.RegisterCounter(name, &counters.back());
  };
  counter("fleet/offered", rep.offered);
  counter("fleet/served", rep.served);
  counter("fleet/shed", rep.shed);
  counter("fleet/route_retries", rep.route_retries);
  counter("fleet/slo_violations", rep.slo_violations);
  reg.RegisterGauge("fleet/throughput_rps", [&rep](Tick) { return rep.throughput_rps; });
  reg.RegisterHistogram("fleet/latency_ms", &rep.latency_ms);
  for (std::size_t d = 0; d < rep.devices.size(); ++d) {
    const std::string p = "fleet/device/" + std::to_string(d) + "/";
    const FleetDeviceStats& st = rep.devices[d];
    counter(p + "served", st.served);
    counter(p + "shed", st.shed);
    counter(p + "batches", st.batches);
    counter(p + "installs", st.installs);
    counter(p + "install_hits", st.install_hits);
    counter(p + "peak_queue_depth", st.peak_queue_depth);
    reg.RegisterGauge(p + "utilization", [&rep, d](Tick) { return rep.devices[d].utilization; });
    reg.RegisterHistogram(p + "latency_ms", &rep.devices[d].latency_ms);
    reg.RegisterHistogram(p + "batch_ms", &rep.devices[d].batch_ms);
  }
  for (std::size_t c = 0; c < rep.client_latency_ms.size(); ++c) {
    reg.RegisterHistogram("fleet/client/" + std::to_string(c) + "/latency_ms",
                          &rep.client_latency_ms[c]);
  }
  rep.metrics = reg.Snapshot(rep.makespan);
  return rep;
}

void FleetReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("schema_version", kJsonSchemaVersion);
  w->Field("policy", policy);
  w->Field("traffic_model", traffic_model);
  w->Field("scheduler", scheduler);
  w->Field("execution", execution);
  w->Field("num_devices", num_devices);
  w->Field("makespan_ms", TicksToMs(makespan));
  w->Field("offered", static_cast<double>(offered));
  w->Field("served", static_cast<double>(served));
  w->Field("shed", static_cast<double>(shed));
  w->Field("route_retries", static_cast<double>(route_retries));
  w->Field("slo_violations", static_cast<double>(slo_violations));
  w->Field("throughput_rps", throughput_rps);
  w->Field("served_mb_s", served_mb_s);
  w->Field("verified", verified);

  w->Key("latency_ms");
  WriteHistogramSummary(w, latency_ms);

  w->Key("clients").BeginArray();
  for (std::size_t c = 0; c < client_latency_ms.size(); ++c) {
    w->BeginObject().Field("client", static_cast<double>(c)).Key("latency_ms");
    WriteHistogramSummary(w, client_latency_ms[c]);
    w->EndObject();
  }
  w->EndArray();

  w->Key("devices").BeginArray();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const FleetDeviceStats& st = devices[d];
    w->BeginObject()
        .Field("device", static_cast<double>(d))
        .Field("served", static_cast<double>(st.served))
        .Field("shed", static_cast<double>(st.shed))
        .Field("batches", static_cast<double>(st.batches))
        .Field("installs", static_cast<double>(st.installs))
        .Field("install_hits", static_cast<double>(st.install_hits))
        .Field("busy_ms", TicksToMs(st.busy_ns))
        .Field("utilization", st.utilization)
        .Field("energy_j", st.energy_j)
        .Field("events_executed", static_cast<double>(st.events_executed))
        .Field("peak_queue_depth", static_cast<double>(st.peak_queue_depth));
    w->Key("latency_ms");
    WriteHistogramSummary(w, st.latency_ms);
    w->Key("batch_ms");
    WriteHistogramSummary(w, st.batch_ms);
    w->Key("queue_depth").BeginObject();
    w->Field("samples", static_cast<double>(st.queue_depth.samples().size()));
    w->Key("series").BeginArray();
    if (!st.queue_depth.empty() && makespan > 0) {
      for (double v : st.queue_depth.Rebucket(makespan, kQueueDepthBuckets)) {
        w->Value(v);
      }
    }
    w->EndArray();
    w->EndObject();
    w->EndObject();
  }
  w->EndArray();

  w->Key("metrics");
  metrics.WriteJson(w);

  w->EndObject();
}

std::string FleetReport::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

FleetReport RunFleet(const FleetConfig& config) { return FleetSim(config).Run(); }

}  // namespace fabacus
