#include "src/fleet/fleet.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>

#include "src/sim/json.h"
#include "src/sim/log.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep_runner.h"

namespace fabacus {
namespace {

std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stable per-instance seed: the same (fleet seed, shard, workload, slot)
// always prepares the same dataset, independent of execution order — the
// partitioned and lockstep paths must produce identical flash contents.
std::uint64_t InstanceSeed(std::uint64_t base, int shard, int workload, std::size_t slot) {
  std::uint64_t z = base;
  z = Mix64(z + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1));
  z = Mix64(z + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(workload) + 1));
  z = Mix64(z + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(slot) + 1));
  return z;
}

void WriteHistogramSummary(JsonWriter* w, const HistogramSummary& s) {
  w->BeginObject();
  w->Field("count", static_cast<double>(s.count));
  if (s.count > 0) {
    w->Field("min", s.min)
        .Field("mean", s.mean)
        .Field("p50", s.p50)
        .Field("p95", s.p95)
        .Field("p99", s.p99)
        .Field("max", s.max);
  }
  w->EndObject();
}

constexpr std::size_t kQueueDepthBuckets = 32;

// Synthetic service model: nanoseconds of device time per modelled megabyte
// of request input. Sized so the default kernel mix serves in the same
// order of magnitude as a small real device (~0.1 ms per request).
constexpr double kSyntheticNsPerMb = 50000.0;

}  // namespace

std::string FleetConfig::Validate() const {
  if (num_devices < 1) {
    return "num_devices must be >= 1, got " + std::to_string(num_devices);
  }
  const std::string dev = device.Validate();
  if (!dev.empty()) {
    return "device config: " + dev;
  }
  const std::string tr = traffic.Validate();
  if (!tr.empty()) {
    return "traffic config: " + tr;
  }
  if (queue_depth < 1) {
    return "queue_depth must be >= 1";
  }
  if (max_batch < 1) {
    return "max_batch must be >= 1, got " + std::to_string(max_batch);
  }
  if (max_route_attempts < 1 || max_route_attempts > num_devices) {
    return "max_route_attempts must be in [1, num_devices], got " +
           std::to_string(max_route_attempts);
  }
  if (slo_ms <= 0.0) {
    return "slo_ms must be positive, got " + std::to_string(slo_ms);
  }
  const std::string h = health.Validate();
  if (!h.empty()) {
    return "health config: " + h;
  }
  const std::string f = faults.Validate(num_devices);
  if (!f.empty()) {
    return "fault config: " + f;
  }
  if (max_request_retries < 0) {
    return "max_request_retries must be >= 0, got " + std::to_string(max_request_retries);
  }
  if (max_request_retries > 0 && retry_backoff < 1) {
    return "retry_backoff must be a positive tick count when retries are enabled";
  }
  if (hedge_requests && hedge_delay < 1) {
    return "hedge_delay must be a positive tick count";
  }
  if (hedge_requests && num_devices < 2) {
    return "hedged requests need at least two devices to duplicate onto";
  }
  if (request_timeout_ms < 0.0) {
    return "request_timeout_ms must be >= 0, got " + std::to_string(request_timeout_ms);
  }
  if (synthetic_service && faults.Any()) {
    return "synthetic service models no device internals to inject faults into; "
           "disable faults or use real devices";
  }
  if (execution == Execution::kPartitioned && !CanPartition()) {
    return "partitioned execution needs open-loop traffic, an oblivious placement "
           "policy, max_route_attempts == 1 and no fault/retry/hedge machinery";
  }
  return "";
}

bool FleetConfig::CanPartition() const {
  return traffic.model == TrafficConfig::Model::kOpenLoop && PolicyIsOblivious(policy) &&
         max_route_attempts == 1 && !faults.Any() && !hedge_requests &&
         max_request_retries == 0;
}

// One independently-simulated device plus its fleet-side serving state.
struct FleetSim::Shard {
  Shard(std::size_t queue_slots, const HealthConfig& health_cfg)
      : queue(queue_slots), health(health_cfg), breaker(health_cfg) {}

  int index = 0;
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<FlashAbacus> dev;
  AdmissionQueue queue;

  bool busy = false;
  std::vector<FleetRequest*> current_batch;

  // Installed (flash-resident) workload instances, reusable across requests.
  struct CachedInstance {
    std::unique_ptr<AppInstance> inst;
    std::uint64_t seed = 0;
    bool in_use = false;
  };
  std::vector<std::vector<CachedInstance>> cache;  // [workload_idx]
  // Synthetic service mode: which workloads' datasets this shard has
  // "installed" (first request per workload pays the install, later ones hit).
  std::vector<char> synthetic_installed;  // [workload_idx]

  FleetDeviceStats stats;
  bool verified = true;

  // --- Fault-tolerance state (docs/FLEET.md "Fleet fault tolerance") -------
  HealthTracker health;
  CircuitBreaker breaker;
  bool down = false;   // crashed, recovery pending
  bool dead = false;   // permanently failed
  Tick down_since = 0;
  Tick stall_until = 0;        // brownout window end
  double stall_factor = 1.0;   // service-time multiplier inside the window
  // Bumped on every crash so the torn batch's pending batch-done event is
  // recognized as stale and ignored.
  std::uint64_t batch_gen = 0;
  bool last_batch_failed = false;  // io_failures climbed during the batch
  double last_batch_ms = 0.0;
  // Partition-safe per-shard tallies (no shared fleet counter to race on).
  std::uint64_t timeouts = 0;
  std::uint64_t evictions = 0;
  // Snapshot-mode recovery: the device's last periodic checkpoint plus the
  // install-cache directory that goes with it.
  int batches_since_checkpoint = 0;
  std::vector<std::uint8_t> checkpoint;
  std::vector<std::uint8_t> checkpoint_cache;
};

// Advances a set of shards through their arrival / batch-completion / fault
// events in deterministic (time, sequence) order. The lockstep path runs one
// loop over every shard; the partitioned path runs one loop per shard
// (pre-routed arrivals, no router, no closed-loop generator, no faults) on
// the sweep pool.
struct FleetSim::ServeLoop {
  FleetSim* fleet;
  std::vector<Shard*> shards;             // lockstep: indexed by device id
  ShardRouter* router = nullptr;          // null = arrivals are pre-routed
  TrafficGenerator* gen = nullptr;        // closed-loop source (lockstep only)
  std::deque<FleetRequest>* pool = nullptr;  // owner of generated requests
  std::vector<FleetFaultEvent> fault_events;  // materialized plan (lockstep)

  // Streaming open-loop source (lockstep only): exactly one future generator
  // arrival lives in the heap at a time, so the loop never materializes the
  // whole schedule. Generator arrivals carry pre-assigned sequence numbers
  // stream_seq_lo + id — the numbers an eager push of the full schedule
  // would have produced — so event order is bit-identical to the eager path.
  TrafficGenerator* stream = nullptr;
  std::uint64_t stream_seq_lo = 0;  // seq of the window's first arrival
  std::uint64_t stream_seq_hi = 0;  // one past the last generator arrival seq
  int stream_base_id = -1;          // id of the window's first arrival
  // Retirement hooks (lockstep): fold each terminal request into the fleet's
  // streaming aggregates the moment it resolves, and — when recycling is safe
  // (no hedge timers holding stale pointers) — return its pool slot to a free
  // list so an unbounded request stream runs in O(in-flight) memory.
  bool retire_inline = false;
  bool recycle = false;
  std::vector<FleetRequest*> free_list;

  struct Ev {
    enum class Kind { kArrival, kBatchDone, kFault, kRecover, kHedge };
    Tick t = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::kArrival;
    FleetRequest* req = nullptr;  // kArrival / kHedge payload
    Shard* shard = nullptr;       // kBatchDone / kRecover payload
    std::uint64_t token = 0;      // kBatchDone staleness token (batch_gen)
    int fault = 0;                // kFault: index into fault_events
  };
  struct EvAfter {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, EvAfter> heap;
  std::uint64_t seq = 0;

  void PushArrival(FleetRequest* r) { PushArrivalAt(r, r->arrival); }
  void PushArrivalAt(FleetRequest* r, Tick t) {
    Ev e;
    e.t = t;
    e.seq = seq++;
    e.kind = Ev::Kind::kArrival;
    e.req = r;
    heap.push(e);
  }
  void PushBatchDone(Shard* s, Tick t) {
    Ev e;
    e.t = t;
    e.seq = seq++;
    e.kind = Ev::Kind::kBatchDone;
    e.shard = s;
    e.token = s->batch_gen;
    heap.push(e);
  }
  void PushFault(int idx, Tick t) {
    Ev e;
    e.t = t;
    e.seq = seq++;
    e.kind = Ev::Kind::kFault;
    e.fault = idx;
    heap.push(e);
  }
  void PushRecover(Shard* s, Tick t) {
    Ev e;
    e.t = t;
    e.seq = seq++;
    e.kind = Ev::Kind::kRecover;
    e.shard = s;
    heap.push(e);
  }
  void PushHedge(FleetRequest* r, Tick t) {
    Ev e;
    e.t = t;
    e.seq = seq++;
    e.kind = Ev::Kind::kHedge;
    e.req = r;
    heap.push(e);
  }

  // Pulls the next generator arrival into the heap (streaming path). Called
  // once to prime the loop and again as each generator arrival is popped, so
  // the heap holds at most one future arrival. Inter-arrival gaps are
  // non-negative, so the refill can never sort before the arrival that
  // triggered it.
  void PushNextStreamArrival() {
    FleetRequest next;
    if (stream == nullptr || !stream->NextArrival(&next)) {
      return;
    }
    next.arrival += fleet->resume_base_;
    FleetRequest* slot;
    if (!free_list.empty()) {
      slot = free_list.back();
      free_list.pop_back();
      *slot = next;
    } else {
      pool->push_back(next);
      slot = &pool->back();
    }
    if (stream_base_id < 0) {
      stream_base_id = slot->id;  // a resumed window's ids continue past 0
    }
    Ev e;
    e.t = slot->arrival;
    e.seq = stream_seq_lo + static_cast<std::uint64_t>(slot->id - stream_base_id);
    e.kind = Ev::Kind::kArrival;
    e.req = slot;
    heap.push(e);
  }

  void Run() {
    while (!heap.empty()) {
      const Ev e = heap.top();
      heap.pop();
      switch (e.kind) {
        case Ev::Kind::kArrival:
          if (stream != nullptr && e.seq >= stream_seq_lo && e.seq < stream_seq_hi) {
            PushNextStreamArrival();  // a generator arrival: refill the window
          }
          OnArrival(e.req, e.t);
          break;
        case Ev::Kind::kBatchDone:
          OnBatchDone(e.shard, e.t, e.token);
          break;
        case Ev::Kind::kFault:
          OnFault(fault_events[static_cast<std::size_t>(e.fault)], e.t);
          break;
        case Ev::Kind::kRecover:
          OnRecover(e.shard, e.t);
          break;
        case Ev::Kind::kHedge:
          OnHedge(e.req, e.t);
          break;
      }
    }
  }

  Shard* ShardByIndex(int index) const {
    // Lockstep loops hold every shard in device order — index directly.
    const std::size_t i = static_cast<std::size_t>(index);
    if (i < shards.size() && shards[i]->index == index) {
      return shards[i];
    }
    for (Shard* s : shards) {
      if (s->index == index) {
        return s;
      }
    }
    FAB_CHECK(false) << "no shard " << index << " in this serve loop";
    return nullptr;
  }

  // A request reached a terminal outcome on the lockstep path: stream it into
  // the fleet aggregates now instead of retaining it for a post-run walk.
  void Retire(FleetRequest* r) {
    if (!retire_inline) {
      return;
    }
    fleet->RetireRequest(*r);
    if (recycle) {
      free_list.push_back(r);
    }
  }

  std::vector<int> Outstanding() const {
    std::vector<int> out(static_cast<std::size_t>(fleet->config_.num_devices), 0);
    for (const Shard* s : shards) {
      out[static_cast<std::size_t>(s->index)] =
          static_cast<int>(s->queue.depth() + s->current_batch.size());
    }
    return out;
  }

  // Is any of the fault-tolerance machinery live? Every condition here forces
  // lockstep execution, so partition-legal configs take the legacy serving
  // path byte for byte.
  bool FaultsActive() const {
    const FleetConfig& c = fleet->config_;
    return c.faults.Any() || c.policy == PlacementPolicy::kHealthAware ||
           c.max_request_retries > 0 || c.hedge_requests;
  }

  bool HealthAware() const {
    return fleet->config_.policy == PlacementPolicy::kHealthAware;
  }

  std::vector<ShardHealthView> HealthViews(Tick now) {
    std::vector<ShardHealthView> views(static_cast<std::size_t>(fleet->config_.num_devices));
    for (Shard* s : shards) {
      s->breaker.Advance(now);
      ShardHealthView& v = views[static_cast<std::size_t>(s->index)];
      v.score = s->health.Score();
      if (s->down || s->dead) {
        v.routable = false;
        continue;
      }
      switch (s->breaker.state()) {
        case BreakerState::kClosed:
          break;
        case BreakerState::kOpen:
          v.routable = false;
          break;
        case BreakerState::kHalfOpen:
          v.probing = true;
          v.routable = s->breaker.AllowRequest();
          break;
      }
    }
    return views;
  }

  // May this shard take a new admission right now? Down/dead shards refuse
  // every policy; breaker gating applies only under health-aware routing so
  // the oblivious baselines keep their legacy behavior (and shed more under
  // failure — the contrast the chaos tests measure).
  bool CanAdmit(const Shard* s, const ShardHealthView& v) const {
    if (s->down || s->dead) {
      return false;
    }
    if (HealthAware() && !v.routable) {
      return false;
    }
    return true;
  }

  static bool CopyAlive(const FleetRequest* c) {
    return c != nullptr && !c->cancelled && c->outcome == FleetRequest::Outcome::kPending &&
           (c->queued_on >= 0 || c->in_flight);
  }

  // Enqueue `r` on `s`, displacing a strictly-lower-priority victim when the
  // SLO-aware shedder is on and the queue is full. Marks probes.
  bool AdmitTo(Shard* s, FleetRequest* r, bool probing, Tick now) {
    bool ok = s->queue.TryEnqueue(r, now);
    if (!ok && fleet->config_.priority_shedding) {
      FleetRequest* victim = s->queue.EvictWorseThan(r->priority, now);
      if (victim != nullptr) {
        ++s->evictions;
        victim->queued_on = -1;
        ShedRequest(victim, s, now);
        ok = s->queue.TryEnqueue(r, now);
        FAB_CHECK(ok) << "eviction freed no slot";
      }
    }
    if (!ok) {
      return false;
    }
    r->queued_on = s->index;
    r->device = s->index;
    if (probing) {
      r->is_probe = true;
      s->breaker.OnProbeDispatched();
      s->stats.probes += 1;
    }
    return true;
  }

  // A request leaves the fleet unserved at admission time: rejected by every
  // routing attempt, or displaced by the priority shedder.
  void ShedRequest(FleetRequest* r, Shard* charged, Tick now) {
    if (r->is_hedge) {
      // A displaced duplicate dies quietly; the primary still carries the
      // logical request.
      r->cancelled = true;
      ++fleet->tally_.hedges_cancelled;
      return;
    }
    if (CopyAlive(r->hedge_peer)) {
      r->cancelled = true;  // the duplicate still carries it
      return;
    }
    r->outcome = FleetRequest::Outcome::kShed;
    r->device = -1;
    r->queued_on = -1;
    charged->stats.shed += 1;
    ClientDone(r, now);  // a shed response still frees the client to retry
    Retire(r);
  }

  void OnArrival(FleetRequest* r, Tick now) {
    if (r->cancelled || r->outcome != FleetRequest::Outcome::kPending) {
      return;  // resolved while the event was in flight (hedge race)
    }
    Shard* admitted = nullptr;
    int primary = -1;
    if (router == nullptr) {
      primary = r->device;  // pre-routed
      Shard* s = ShardByIndex(primary);
      if (AdmitTo(s, r, false, now)) {
        admitted = s;
      }
    } else if (!FaultsActive() && PolicyIsOblivious(fleet->config_.policy)) {
      // Fast path for the common healthy-oblivious case: no shard can be
      // down, dead or breaker-gated, and round-robin/affinity routing reads
      // neither outstanding counts nor health views — skip building both
      // (two O(num_devices) allocations per arrival at fleet scale).
      RouteState state;
      for (int attempt = 0; attempt < fleet->config_.max_route_attempts; ++attempt) {
        const int d = router->Route(*r, state, attempt);
        if (attempt == 0) {
          primary = d;
        } else {
          ++r->route_retries;
        }
        Shard* s = ShardByIndex(d);
        if (AdmitTo(s, r, false, now)) {
          admitted = s;
          break;
        }
      }
    } else {
      const std::vector<int> outstanding = Outstanding();
      const std::vector<ShardHealthView> views = HealthViews(now);
      RouteState state;
      state.outstanding = &outstanding;
      state.health = &views;
      for (int attempt = 0; attempt < fleet->config_.max_route_attempts; ++attempt) {
        const int d = router->Route(*r, state, attempt);
        if (attempt == 0) {
          primary = d;
        } else {
          ++r->route_retries;
        }
        Shard* s = ShardByIndex(d);
        if (!CanAdmit(s, views[static_cast<std::size_t>(d)])) {
          continue;  // the refusal still consumed a routing attempt
        }
        const bool probe = HealthAware() && views[static_cast<std::size_t>(d)].probing;
        if (AdmitTo(s, r, probe, now)) {
          admitted = s;
          break;
        }
      }
    }
    if (admitted == nullptr) {
      ShedRequest(r, ShardByIndex(primary), now);
      return;
    }
    if (router != nullptr && fleet->config_.hedge_requests && !r->is_hedge && !r->hedged &&
        r->priority == RequestPriority::kLatency) {
      PushHedge(r, now + fleet->config_.hedge_delay);
    }
    if (!admitted->busy) {
      StartBatch(admitted, now);
    }
  }

  void OnBatchDone(Shard* s, Tick now, std::uint64_t token) {
    if (token != s->batch_gen) {
      return;  // the batch was torn by a crash; its requests are handled
    }
    const std::vector<FleetRequest*> batch = std::move(s->current_batch);
    s->current_batch.clear();
    s->busy = false;
    const bool failed = s->last_batch_failed;
    if (failed) {
      s->health.OnFailure();
    } else {
      s->health.OnSuccess(s->last_batch_ms);
    }
    if (FaultsActive()) {
      s->breaker.OnOutcome(!failed, now, s->health.error_ewma());
    }
    for (FleetRequest* r : batch) {
      r->in_flight = false;
      if (r->is_probe) {
        r->is_probe = false;
        s->breaker.OnProbeOutcome(!failed, now);
      }
      if (r->cancelled) {
        continue;  // lost the hedge race while in flight
      }
      if (failed) {
        OnCopyFailed(s, r, now);
      } else {
        OnCopyServed(s, r, now);
      }
    }
    if (!s->queue.empty() && !s->down && !s->dead) {
      StartBatch(s, now);
    }
  }

  // One physical copy (primary or hedge duplicate) finished cleanly.
  void OnCopyServed(Shard* s, FleetRequest* copy, Tick now) {
    FleetRequest* logical = copy->is_hedge ? copy->hedge_peer : copy;
    const double timeout_ms = fleet->config_.request_timeout_ms;
    if (timeout_ms > 0.0 && TicksToMs(copy->complete - logical->arrival) > timeout_ms) {
      ++s->timeouts;
      OnCopyFailed(s, copy, now);
      return;
    }
    if (copy->is_hedge) {
      Cancel(logical, now);  // first wins: the primary copy loses the race
      copy->outcome = FleetRequest::Outcome::kServed;
      logical->outcome = FleetRequest::Outcome::kServed;
      logical->complete = copy->complete;
      logical->device = s->index;
      ++fleet->tally_.hedges_won;
    } else {
      Cancel(copy->hedge_peer, now);
      copy->outcome = FleetRequest::Outcome::kServed;
    }
    s->stats.served += 1;
    ClientDone(logical, copy->complete);
    Retire(logical);
  }

  // One physical copy was lost: torn by a crash, an uncorrectable I/O error
  // in its batch, or a timeout. The logical request survives while its other
  // copy is still live; otherwise it burns a retry or fails for good.
  void OnCopyFailed(Shard* s, FleetRequest* copy, Tick now) {
    FleetRequest* logical = copy->is_hedge ? copy->hedge_peer : copy;
    FleetRequest* other = copy->hedge_peer;
    copy->cancelled = true;  // this physical copy is spent
    if (copy->is_hedge) {
      copy->outcome = FleetRequest::Outcome::kFailed;
    }
    if (CopyAlive(other)) {
      return;
    }
    FailLogical(logical, s, now);
  }

  void FailLogical(FleetRequest* r, Shard* charged, Tick now) {
    FAB_CHECK(!r->is_hedge);
    if (r->retries < fleet->config_.max_request_retries) {
      ++r->retries;
      ++fleet->tally_.request_retries;
      r->cancelled = false;
      r->hedged = false;
      r->hedge_peer = nullptr;
      r->is_probe = false;
      r->in_flight = false;
      r->queued_on = -1;
      r->device = -1;
      PushArrivalAt(r, now + fleet->config_.retry_backoff);
      return;
    }
    r->outcome = FleetRequest::Outcome::kFailed;
    r->in_flight = false;
    r->queued_on = -1;
    r->complete = now;  // a failure is the response the client observes
    r->device = charged->index;  // the shard the failure is charged to
    charged->stats.failures += 1;
    ClientDone(r, now);
    Retire(r);
  }

  // First-wins cancellation of the losing copy: removed from its admission
  // queue when still waiting, flagged when already in a device batch (its
  // completion is then ignored).
  void Cancel(FleetRequest* c, Tick now) {
    if (c == nullptr || c->cancelled || c->outcome != FleetRequest::Outcome::kPending) {
      return;
    }
    c->cancelled = true;
    ++fleet->tally_.hedges_cancelled;
    if (c->queued_on >= 0) {
      ShardByIndex(c->queued_on)->queue.Remove(c, now);
      c->queued_on = -1;
    }
  }

  // Hedge timer fired: if the request is still waiting in an admission queue,
  // issue a duplicate on a different shard.
  void OnHedge(FleetRequest* r, Tick now) {
    if (r->cancelled || r->outcome != FleetRequest::Outcome::kPending || r->hedged ||
        r->queued_on < 0) {
      return;
    }
    const std::vector<int> outstanding = Outstanding();
    const std::vector<ShardHealthView> views = HealthViews(now);
    RouteState state;
    state.outstanding = &outstanding;
    state.health = &views;
    FleetRequest h;
    h.id = r->id;
    h.client_id = r->client_id;
    h.workload_idx = r->workload_idx;
    h.priority = r->priority;
    h.arrival = r->arrival;
    h.is_hedge = true;
    pool->push_back(h);
    FleetRequest* dup = &pool->back();
    Shard* admitted = nullptr;
    for (int attempt = 0; attempt < fleet->config_.num_devices && admitted == nullptr;
         ++attempt) {
      const int d = router->Route(*dup, state, attempt);
      if (d == r->queued_on) {
        continue;  // duplicating onto the same queue hedges nothing
      }
      Shard* s = ShardByIndex(d);
      if (!CanAdmit(s, views[static_cast<std::size_t>(d)])) {
        continue;
      }
      const bool probe = HealthAware() && views[static_cast<std::size_t>(d)].probing;
      if (AdmitTo(s, dup, probe, now)) {
        admitted = s;
      }
    }
    if (admitted == nullptr) {
      dup->cancelled = true;  // nowhere to duplicate; the primary rides alone
      return;
    }
    r->hedged = true;
    r->hedge_peer = dup;
    dup->hedge_peer = r;
    ++fleet->tally_.hedges_issued;
    if (!admitted->busy) {
      StartBatch(admitted, now);
    }
  }

  void OnFault(const FleetFaultEvent& e, Tick now) {
    Shard* s = ShardByIndex(e.shard);
    if (s->dead) {
      return;  // nothing left to break
    }
    switch (e.kind) {
      case FleetFaultEvent::Kind::kStall:
        if (s->down) {
          return;
        }
        ++fleet->tally_.events_applied;
        s->stall_until = std::max(s->stall_until, now + e.duration);
        s->stall_factor = e.stall_factor;
        break;
      case FleetFaultEvent::Kind::kDegrade: {
        if (s->down) {
          return;
        }
        ++fleet->tally_.events_applied;
        const NandConfig& nand = fleet->config_.device.nand;
        const int ch = ((e.kill_channel % nand.channels) + nand.channels) % nand.channels;
        if (e.kill_whole_channel) {
          s->dev->backbone().faults().KillChannel(ch);
        } else {
          const int pkg = ((e.kill_package % nand.packages_per_channel) +
                           nand.packages_per_channel) %
                          nand.packages_per_channel;
          s->dev->backbone().faults().KillDie(ch, pkg);
        }
        break;
      }
      case FleetFaultEvent::Kind::kCrash:
        ++fleet->tally_.events_applied;
        CrashShard(s, now, /*permanent=*/false, e.duration);
        break;
      case FleetFaultEvent::Kind::kDeath:
        ++fleet->tally_.events_applied;
        CrashShard(s, now, /*permanent=*/true, 0);
        break;
    }
  }

  void CrashShard(Shard* s, Tick now, bool permanent, Tick downtime) {
    if (s->down) {
      if (permanent && !s->dead) {
        s->dead = true;  // the pending recovery event will find it dead
        ++fleet->tally_.deaths;
      }
      return;
    }
    ++fleet->tally_.crashes;
    s->stats.crashes += 1;
    if (permanent) {
      ++fleet->tally_.deaths;
    }
    s->down = true;
    s->dead = permanent;
    s->down_since = now;
    s->breaker.ForceOpen(now);
    // The batch in flight tears: its pending batch-done event goes stale and
    // its requests are lost at this tick (the device's flash may hold their
    // completed writes, but no response ever leaves the shard).
    ++s->batch_gen;
    const std::vector<FleetRequest*> torn = std::move(s->current_batch);
    s->current_batch.clear();
    s->busy = false;
    if (!s->dev->crashed()) {
      s->dev->CrashAt(std::max(s->sim->Now(), now));
      s->sim->Run();
    }
    for (FleetRequest* r : torn) {
      r->in_flight = false;
      r->is_probe = false;  // the force-open breaker takes no probe votes
      s->stats.torn += 1;
      ++fleet->tally_.torn_in_flight;
      if (r->cancelled) {
        continue;
      }
      OnCopyFailed(s, r, now);
    }
    // Queued requests fail over: drained and re-routed across the survivors.
    std::vector<FleetRequest*> drained;
    while (!s->queue.empty()) {
      drained.push_back(s->queue.Dequeue(now));
    }
    for (FleetRequest* r : drained) {
      r->queued_on = -1;
      r->is_probe = false;  // its probe slot died with the breaker
      if (r->cancelled) {
        continue;
      }
      ++fleet->tally_.failover_reroutes;
      PushArrivalAt(r, now);
    }
    if (!permanent) {
      PushRecover(s, now + std::max<Tick>(downtime, 1));
    }
  }

  void OnRecover(Shard* s, Tick now) {
    if (s->dead || !s->down) {
      return;  // superseded by a permanent death
    }
    s->down = false;
    s->stats.down_ns += now - s->down_since;
    s->stats.recoveries += 1;
    ++fleet->tally_.recoveries;
    if (fleet->config_.faults.recovery == FleetFaultConfig::Recovery::kSnapshot &&
        !s->checkpoint.empty()) {
      RestoreShardCheckpoint(s);
    } else {
      const Flashvisor::RecoveryReport rr = s->dev->RecoverFromFlash();
      s->stats.recovered_lost_groups += rr.lost_groups;
      s->stats.recovered_torn_groups += rr.torn_groups;
      if (rr.done > s->sim->Now()) {
        // The recovery scan occupies the device; batches queue behind it.
        s->sim->ScheduleAt(rr.done, []() {});
        s->sim->Run();
      }
      // The rebuilt FTL may have dropped torn or lost groups; re-install
      // datasets on demand instead of trusting the old extents.
      for (auto& slots : s->cache) {
        slots.clear();
      }
    }
    // Rejoin through probe traffic, not a full load slice.
    s->breaker.ForceHalfOpen(now);
  }

  // Snapshot-mode recovery: rebuild the shard from its last periodic device
  // checkpoint, install cache included.
  void RestoreShardCheckpoint(Shard* s) {
    SnapshotFile snap;
    std::string err;
    FAB_CHECK(SnapshotFile::Parse(s->checkpoint, &snap, &err)) << "shard checkpoint: " << err;
    s->sim = std::make_unique<Simulator>(fleet->config_.backend);
    s->dev = std::make_unique<FlashAbacus>(s->sim.get(), fleet->ShardDeviceConfig(s->index));
    FAB_CHECK(s->dev->Resume(snap, &err)) << "shard checkpoint: " << err;
    StateReader r(s->checkpoint_cache);
    fleet->ReadInstallCache(s, r);
    FAB_CHECK(r.ok() && r.AtEnd()) << "shard checkpoint cache: " << r.error();
  }

  void MaybeCheckpoint(Shard* s) {
    const FleetFaultConfig& fc = fleet->config_.faults;
    if (router == nullptr || !fc.Any() ||
        fc.recovery != FleetFaultConfig::Recovery::kSnapshot) {
      return;
    }
    if (++s->batches_since_checkpoint < fc.checkpoint_every_batches) {
      return;
    }
    s->batches_since_checkpoint = 0;
    s->checkpoint = s->dev->BuildSnapshot().Serialize();
    StateWriter w;
    FleetSim::WriteInstallCache(*s, w);
    s->checkpoint_cache = w.TakeBuffer();
  }

  void ClientDone(FleetRequest* r, Tick now) {
    if (gen == nullptr) {
      return;
    }
    FleetRequest next;
    if (gen->NextForClient(r->client_id, now, &next)) {
      pool->push_back(next);
      PushArrival(&pool->back());
    }
  }

  void StartBatch(Shard* s, Tick now) {
    FAB_CHECK(!s->busy);
    FAB_CHECK(!s->queue.empty());
    FAB_CHECK(!s->down && !s->dead) << "batch started on a crashed shard";
    s->busy = true;
    while (!s->queue.empty() &&
           s->current_batch.size() < static_cast<std::size_t>(fleet->config_.max_batch)) {
      FleetRequest* r = s->queue.Dequeue(now);
      r->dispatch = now;
      r->queued_on = -1;
      r->in_flight = true;
      s->current_batch.push_back(r);
    }
    PushBatchDone(s, RunBatch(s, now));
  }

  // Executes the shard's current batch on its device, eagerly running the
  // device simulator to completion, and returns the batch-done tick. Eager
  // execution is sound because shards only interact through routing, which
  // reads fleet-level bookkeeping processed in global event order. Outcomes
  // are assigned at the batch-done event, not here, so a crash landing inside
  // the service window can still tear the batch.
  Tick RunBatch(Shard* s, Tick now) {
    if (fleet->config_.synthetic_service) {
      return RunBatchSynthetic(s, now);
    }
    if (s->sim->Now() < now) {
      // Align the shard clock with fleet time (the previous batch's write
      // drain may have advanced it, an idle gap may lag it).
      s->sim->ScheduleAt(now, []() {});
      s->sim->Run();
    }
    std::vector<AppInstance*> insts;
    insts.reserve(s->current_batch.size());
    bool fresh_install = false;
    for (FleetRequest* r : s->current_batch) {
      insts.push_back(Acquire(s, r, &fresh_install));
    }
    if (fresh_install) {
      s->sim->Run();  // drain the dataset installs before the offload
    }
    const std::uint64_t io_failures_before = s->dev->io_failures();
    bool completed = false;
    Tick end = 0;
    RunReport rep;
    s->dev->Run(insts, fleet->config_.scheduler, [&](RunReport rr) {
      rep = std::move(rr);
      end = s->sim->Now();
      completed = true;
    });
    s->sim->Run();
    FAB_CHECK(completed) << "fleet batch did not complete on shard " << s->index;
    const bool failed = FaultsActive() && s->dev->io_failures() > io_failures_before;
    // Brownout: a batch dispatched inside a stall window runs slower by the
    // stall factor; the device clock advances to the inflated end so later
    // batches queue behind it.
    const bool stalled = s->stall_until > now;
    if (stalled) {
      const Tick inflated =
          now + static_cast<Tick>(static_cast<double>(end - now) * s->stall_factor);
      if (inflated > s->sim->Now()) {
        s->sim->ScheduleAt(inflated, []() {});
        s->sim->Run();
      }
      end = inflated;
    }
    for (std::size_t i = 0; i < insts.size(); ++i) {
      FleetRequest* r = s->current_batch[i];
      r->complete = stalled ? end : insts[i]->complete_time;
      if (!failed && fleet->config_.verify_outputs) {
        s->verified = s->verified &&
                      fleet->traffic_->mix()[static_cast<std::size_t>(r->workload_idx)]->Verify(
                          *insts[i]);
      }
      Release(s, r, insts[i]);
    }
    s->last_batch_failed = failed;
    s->last_batch_ms = TicksToMs(end - now);
    s->stats.batches += 1;
    s->stats.busy_ns += end - now;
    s->stats.batch_ms.Record(TicksToMs(end - now));
    s->stats.energy_j += rep.EnergySummary().total_j;
    MaybeCheckpoint(s);
    return end;
  }

  // Analytic service model (FleetConfig::synthetic_service): each request
  // costs its workload's modelled input bytes at kSyntheticNsPerMb, scaled by
  // a deterministic per-request jitter in [0.9, 1.1) drawn from a hash of
  // (seed, id, shard); the batch serves the requests back to back. No device
  // simulation runs, so a batch costs O(requests) arithmetic and the fleet
  // sustains ~10^6 requests per wall-second — the scale-out bench regime.
  Tick RunBatchSynthetic(Shard* s, Tick now) {
    Tick span = 0;
    for (FleetRequest* r : s->current_batch) {
      const std::size_t w = static_cast<std::size_t>(r->workload_idx);
      if (s->synthetic_installed[w] == 0) {
        s->synthetic_installed[w] = 1;
        s->stats.installs += 1;
      } else {
        s->stats.install_hits += 1;
      }
      const KernelSpec& spec = fleet->traffic_->mix()[w]->spec();
      const double mb = spec.model_input_mb * fleet->config_.device.model_scale;
      const std::uint64_t h =
          Mix64(fleet->config_.traffic.seed ^
                Mix64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(r->id)) * 2654435761ULL +
                      static_cast<std::uint64_t>(s->index) + 1));
      const double jitter =
          0.9 + 0.2 * static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      span += static_cast<Tick>(mb * kSyntheticNsPerMb * jitter) + 1;
    }
    const Tick end = now + span;
    for (FleetRequest* r : s->current_batch) {
      r->complete = end;
    }
    s->last_batch_failed = false;
    s->last_batch_ms = TicksToMs(span);
    s->stats.batches += 1;
    s->stats.busy_ns += span;
    s->stats.batch_ms.Record(TicksToMs(span));
    return end;
  }

  AppInstance* Acquire(Shard* s, FleetRequest* r, bool* fresh_install) {
    const Workload* wl = fleet->traffic_->mix()[static_cast<std::size_t>(r->workload_idx)];
    auto& cache = s->cache[static_cast<std::size_t>(r->workload_idx)];
    for (Shard::CachedInstance& slot : cache) {
      if (slot.in_use) {
        continue;
      }
      // Dataset already flash-resident: re-prepare the buffers with the
      // slot's original seed (matching the flash contents) and reset the
      // execution timeline.
      slot.in_use = true;
      AppInstance* inst = slot.inst.get();
      Rng rng(slot.seed);
      wl->Prepare(*inst, rng);
      inst->done = false;
      inst->submit_time = 0;
      inst->load_done_time = 0;
      inst->compute_done_time = 0;
      inst->complete_time = 0;
      s->stats.install_hits += 1;
      return inst;
    }
    const std::uint64_t seed =
        InstanceSeed(fleet->config_.traffic.seed, s->index, r->workload_idx, cache.size());
    auto inst = std::make_unique<AppInstance>(r->workload_idx, static_cast<int>(cache.size()),
                                              &wl->spec(), fleet->config_.device.model_scale);
    Rng rng(seed);
    wl->Prepare(*inst, rng);
    s->dev->InstallData(inst.get(), [](Tick) {});
    *fresh_install = true;
    s->stats.installs += 1;
    cache.push_back({std::move(inst), seed, true});
    return cache.back().inst.get();
  }

  void Release(Shard* s, FleetRequest* r, AppInstance* inst) {
    for (Shard::CachedInstance& slot : s->cache[static_cast<std::size_t>(r->workload_idx)]) {
      if (slot.inst.get() == inst) {
        slot.in_use = false;
        return;
      }
    }
    FAB_CHECK(false) << "released instance not in shard cache";
  }
};

FleetSim::FleetSim(const FleetConfig& config)
    : config_(config), router_(config.policy, std::max(config.num_devices, 1)) {
  const std::string problem = config_.Validate();
  FAB_CHECK(problem.empty()) << "bad FleetConfig: " << problem;
  traffic_ = std::make_unique<TrafficGenerator>(config_.traffic);
  BuildShards();
}

FleetSim::~FleetSim() = default;

FlashAbacusConfig FleetSim::ShardDeviceConfig(int shard) const {
  FlashAbacusConfig dev_cfg = config_.device;
  // Decorrelate the shards' random fault schedules; a common seed would
  // make "independent" devices fail in lockstep.
  dev_cfg.nand.fault.seed ^= Mix64(static_cast<std::uint64_t>(shard) + 0x51aDULL);
  return dev_cfg;
}

void FleetSim::BuildShards() {
  for (int d = 0; d < config_.num_devices; ++d) {
    auto shard = std::make_unique<Shard>(config_.queue_depth, config_.health);
    shard->index = d;
    if (!config_.synthetic_service) {
      // Synthetic shards have no device simulation at all — constructing 64+
      // full devices would dominate a scale-out run's footprint and startup.
      shard->sim = std::make_unique<Simulator>(config_.backend);
      shard->dev = std::make_unique<FlashAbacus>(shard->sim.get(), ShardDeviceConfig(d));
    }
    shard->cache.resize(traffic_->mix().size());
    shard->synthetic_installed.assign(traffic_->mix().size(), 0);
    shards_.push_back(std::move(shard));
  }
}

void FleetSim::WriteInstallCache(const Shard& shard, StateWriter& w) {
  // Install-cache directory: which datasets are flash-resident on this
  // shard, their preparation seeds and the extents they map. Enough to
  // rebuild the cached AppInstances without re-installing anything.
  w.U64(shard.cache.size());
  for (const auto& slots : shard.cache) {
    w.U64(slots.size());
    for (const Shard::CachedInstance& slot : slots) {
      FAB_CHECK(!slot.in_use) << "cached instance in use at snapshot";
      w.U64(slot.seed);
      w.U64(slot.inst->sections().size());
      for (const DataSection& s : slot.inst->sections()) {
        w.U64(s.flash_addr);
        w.U64(s.model_bytes);
      }
    }
  }
}

void FleetSim::ReadInstallCache(Shard* shard, StateReader& c) const {
  const std::uint64_t workloads = c.U64();
  if (c.ok() && workloads != shard->cache.size()) {
    c.Fail("install cache workload count mismatch");
    return;
  }
  for (std::size_t wl_idx = 0; wl_idx < shard->cache.size() && c.ok(); ++wl_idx) {
    auto& slots = shard->cache[wl_idx];
    slots.clear();
    const Workload* wl = traffic_->mix()[wl_idx];
    const std::uint64_t n_slots = c.U64();
    for (std::uint64_t slot_i = 0; slot_i < n_slots && c.ok(); ++slot_i) {
      const std::uint64_t seed = c.U64();
      auto inst = std::make_unique<AppInstance>(static_cast<int>(wl_idx),
                                                static_cast<int>(slot_i), &wl->spec(),
                                                config_.device.model_scale);
      Rng rng(seed);
      wl->Prepare(*inst, rng);
      const std::uint64_t n_secs = c.U64();
      if (n_secs != wl->spec().sections.size()) {
        c.Fail("cached instance section count mismatch");
        break;
      }
      inst->sections().clear();
      for (std::uint64_t si = 0; si < n_secs; ++si) {
        DataSection s;
        s.spec = &wl->spec().sections[si];
        s.flash_addr = c.U64();
        s.model_bytes = c.U64();
        inst->sections().push_back(s);
      }
      slots.push_back({std::move(inst), seed, false});
    }
  }
}

SnapshotBuilder FleetSim::BuildSnapshot() const {
  FAB_CHECK(!config_.synthetic_service)
      << "synthetic fleets have no device state to snapshot";
  SnapshotBuilder b("fleet");
  b.SetMeta("policy", PlacementPolicyName(config_.policy));
  b.SetMeta("traffic_model", TrafficModelName(config_.traffic.model));
  b.SetMeta("scheduler", SchedulerKindName(config_.scheduler));
  b.SetMeta("num_devices", static_cast<double>(config_.num_devices));
  {
    // v3: adds the sketch-geometry fingerprint so a snapshot written with a
    // different LogHistogram/BoundedTimeSeries layout is rejected up front
    // instead of mis-parsing any embedded sketch state.
    StateWriter& w = b.AddSection("fleet", 3);
    w.U32(static_cast<std::uint32_t>(config_.num_devices));
    w.U64(traffic_->mix().size());
    w.I32(LogHistogram::kMinExp2);
    w.I32(LogHistogram::kMaxExp2);
    w.I32(LogHistogram::kSubBuckets);
    w.U32(static_cast<std::uint32_t>(BoundedTimeSeries::kDefaultMaxBins));
    router_.SaveState(w);
    traffic_->SaveState(w);
  }
  for (const auto& shard : shards_) {
    FAB_CHECK(!shard->busy && shard->queue.empty())
        << "fleet shard " << shard->index << " still serving at snapshot";
    FAB_CHECK(!shard->dev->crashed())
        << "fleet shard " << shard->index << " is crashed; recover before snapshotting";
    const std::string prefix = "shard/" + std::to_string(shard->index);
    b.AddBlobSection(prefix + "/device", 1, shard->dev->BuildSnapshot().Serialize());
    StateWriter& w = b.AddSection(prefix + "/cache", 1);
    WriteInstallCache(*shard, w);
    StateWriter& h = b.AddSection(prefix + "/health", 1);
    shard->health.SaveState(h);
    shard->breaker.SaveState(h);
  }
  return b;
}

bool FleetSim::Snapshot(const std::string& path, std::string* error) const {
  return BuildSnapshot().WriteFile(path, error);
}

bool FleetSim::Resume(const SnapshotFile& snap, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  FAB_CHECK(!ran_) << "resume into a fresh FleetSim";
  if (config_.synthetic_service) {
    return fail("synthetic fleets have no device state; resume needs real devices");
  }
  if (snap.kind() != "fleet") {
    return fail("snapshot kind '" + snap.kind() + "' is not a fleet snapshot");
  }
  {
    StateReader r = snap.Open("fleet", 3);
    if (!r.ok()) {
      return fail(r.error());
    }
    const std::uint32_t devices = r.U32();
    const std::uint64_t mix = r.U64();
    const std::int32_t min_exp2 = r.I32();
    const std::int32_t max_exp2 = r.I32();
    const std::int32_t sub_buckets = r.I32();
    const std::uint32_t ts_bins = r.U32();
    if (!r.ok()) {
      return fail("corrupt fleet section: " + r.error());
    }
    if (devices != static_cast<std::uint32_t>(config_.num_devices)) {
      return fail("snapshot has " + std::to_string(devices) + " devices, this fleet has " +
                  std::to_string(config_.num_devices));
    }
    if (mix != traffic_->mix().size()) {
      return fail("snapshot workload mix size mismatch");
    }
    if (min_exp2 != LogHistogram::kMinExp2 || max_exp2 != LogHistogram::kMaxExp2 ||
        sub_buckets != LogHistogram::kSubBuckets ||
        ts_bins != static_cast<std::uint32_t>(BoundedTimeSeries::kDefaultMaxBins)) {
      return fail("snapshot sketch geometry mismatch (histogram/time-series layout changed)");
    }
    router_.LoadState(r);
    traffic_->LoadState(r);
    if (!r.ok()) {
      return fail("corrupt fleet section: " + r.error());
    }
    if (!r.AtEnd()) {
      return fail("fleet section has trailing bytes");
    }
  }
  resume_base_ = 0;
  for (auto& shard : shards_) {
    const std::string prefix = "shard/" + std::to_string(shard->index);
    const SnapshotFile::Section* dev = snap.Find(prefix + "/device");
    if (dev == nullptr) {
      return fail("missing section " + prefix + "/device");
    }
    SnapshotFile nested;
    std::string err;
    if (!SnapshotFile::Parse(dev->payload, &nested, &err)) {
      return fail(prefix + "/device: " + err);
    }
    if (!shard->dev->Resume(nested, &err)) {
      return fail(prefix + "/device: " + err);
    }
    resume_base_ = std::max(resume_base_, shard->sim->Now());

    StateReader c = snap.Open(prefix + "/cache", 1);
    if (!c.ok()) {
      return fail(c.error());
    }
    ReadInstallCache(shard.get(), c);
    if (!c.ok()) {
      return fail(prefix + "/cache: " + c.error());
    }
    if (!c.AtEnd()) {
      return fail(prefix + "/cache has trailing bytes");
    }

    StateReader h = snap.Open(prefix + "/health", 1);
    if (!h.ok()) {
      return fail(h.error());
    }
    shard->health.LoadState(h);
    shard->breaker.LoadState(h);
    if (!h.ok()) {
      return fail(prefix + "/health: " + h.error());
    }
    if (!h.AtEnd()) {
      return fail(prefix + "/health has trailing bytes");
    }
  }
  return true;
}

bool FleetSim::Resume(const std::string& path, std::string* error) {
  SnapshotFile snap;
  std::string err;
  if (!SnapshotFile::Load(path, &snap, &err)) {
    if (error != nullptr) {
      *error = err;
    }
    return false;
  }
  return Resume(snap, error);
}

FleetReport FleetSim::Run() {
  FAB_CHECK(!ran_) << "FleetSim is one-shot; build a new one per run";
  ran_ = true;
  // The lazily-built registry must exist before any worker threads read it.
  WorkloadRegistry::Get();

  agg_.served_by_workload.assign(traffic_->mix().size(), 0);
  agg_.client_latency_ms.resize(static_cast<std::size_t>(config_.traffic.num_clients));

  std::deque<FleetRequest> pool;
  const bool partitioned = config_.execution == FleetConfig::Execution::kPartitioned ||
                           (config_.execution == FleetConfig::Execution::kAuto &&
                            config_.CanPartition());
  if (partitioned) {
    FAB_CHECK(config_.CanPartition());
    // Oblivious routing: place the whole schedule up front, then serve every
    // shard's slice independently on the sweep pool. Aggregation happens
    // post-hoc in request-id order; the streaming sketches are order-
    // invariant, so the merged report is byte-identical to lockstep
    // execution at any thread count.
    for (FleetRequest& r : traffic_->InitialArrivals()) {
      // A resumed fleet's shard clocks sit at the snapshot point; arrivals
      // shift past it so the new serving window starts where the devices are.
      r.arrival += resume_base_;
      pool.push_back(r);
    }
    const std::vector<int> zeros(static_cast<std::size_t>(config_.num_devices), 0);
    std::vector<std::vector<FleetRequest*>> slices(
        static_cast<std::size_t>(config_.num_devices));
    for (FleetRequest& r : pool) {
      r.device = router_.Route(r, zeros, 0);
      slices[static_cast<std::size_t>(r.device)].push_back(&r);
    }
    SweepRunner runner(config_.sweep_threads);
    runner.RunIndexed(shards_.size(), [&](std::size_t d) {
      ServeLoop loop;
      loop.fleet = this;
      loop.shards = {shards_[d].get()};
      for (FleetRequest* r : slices[d]) {
        loop.PushArrival(r);
      }
      loop.Run();
    });
    // Pool insertion order is id order: retire the whole schedule in the
    // canonical sequence (none of these requests can be hedge duplicates).
    for (const FleetRequest& r : pool) {
      RetireRequest(r);
    }
  } else {
    ServeLoop loop;
    loop.fleet = this;
    for (auto& s : shards_) {
      loop.shards.push_back(s.get());
    }
    loop.router = &router_;
    loop.gen = traffic_.get();
    loop.pool = &pool;
    loop.retire_inline = true;
    // Fault events go in first so a fault and an arrival at the same tick
    // resolve fault-first: the arrival routes around the freshly-down shard.
    loop.fault_events = config_.faults.Materialize(config_.num_devices);
    for (std::size_t i = 0; i < loop.fault_events.size(); ++i) {
      loop.PushFault(static_cast<int>(i), loop.fault_events[i].at);
    }
    if (config_.traffic.model == TrafficConfig::Model::kOpenLoop) {
      // Stream the open-loop schedule one arrival at a time instead of
      // materializing total_requests up front, and — unless hedge timers may
      // hold pointers past retirement — recycle retired pool slots. Peak
      // memory becomes O(in-flight + queued), independent of request count.
      loop.stream = traffic_.get();
      loop.recycle = !config_.hedge_requests;
      loop.stream_seq_lo = loop.seq;  // == number of fault events pushed
      loop.stream_seq_hi =
          loop.stream_seq_lo + static_cast<std::uint64_t>(traffic_->total_requests());
      loop.seq = loop.stream_seq_hi;  // dynamic events sort after every arrival
      loop.PushNextStreamArrival();
    } else {
      for (FleetRequest& r : traffic_->InitialArrivals()) {
        r.arrival += resume_base_;
        pool.push_back(r);
      }
      for (std::size_t i = 0; i < pool.size(); ++i) {
        loop.PushArrival(&pool[i]);
      }
    }
    loop.Run();
  }
  return Finalize(partitioned ? "partitioned" : "lockstep");
}

void FleetSim::RetireRequest(const FleetRequest& r) {
  FAB_CHECK(!r.is_hedge) << "hedge duplicates are not client load";
  ++agg_.offered;
  const std::size_t pri = static_cast<std::size_t>(r.priority);
  ++agg_.offered_by_priority[pri];
  agg_.route_retries += static_cast<std::uint64_t>(r.route_retries);
  if (r.outcome == FleetRequest::Outcome::kShed) {
    ++agg_.shed;
    ++agg_.shed_by_priority[pri];
    agg_.makespan = std::max(agg_.makespan, r.arrival);
    return;
  }
  if (r.outcome == FleetRequest::Outcome::kFailed) {
    ++agg_.failed;
    ++agg_.failed_by_priority[pri];
    agg_.makespan = std::max(agg_.makespan, std::max(r.arrival, r.complete));
    return;
  }
  FAB_CHECK(r.outcome == FleetRequest::Outcome::kServed)
      << "request " << r.id << " neither served, failed nor shed";
  ++agg_.served;
  ++agg_.served_by_priority[pri];
  ++agg_.served_by_workload[static_cast<std::size_t>(r.workload_idx)];
  agg_.makespan = std::max(agg_.makespan, r.complete);
  const double lat_ms = TicksToMs(r.complete - r.arrival);
  if (lat_ms > config_.slo_ms) {
    ++agg_.slo_violations;
  }
  agg_.latency_ms.Record(lat_ms);
  agg_.priority_latency_ms[pri].Record(lat_ms);
  agg_.client_latency_ms[static_cast<std::size_t>(r.client_id)].Record(lat_ms);
  shards_[static_cast<std::size_t>(r.device)]->stats.latency_ms.Record(lat_ms);
}

FleetReport FleetSim::Finalize(const std::string& execution) {
  FleetReport rep;
  rep.policy = PlacementPolicyName(config_.policy);
  rep.traffic_model = TrafficModelName(config_.traffic.model);
  rep.scheduler = SchedulerKindName(config_.scheduler);
  rep.execution = execution;
  rep.num_devices = config_.num_devices;

  rep.offered = agg_.offered;
  rep.served = agg_.served;
  rep.shed = agg_.shed;
  rep.failed = agg_.failed;
  rep.route_retries = agg_.route_retries;
  rep.slo_violations = agg_.slo_violations;
  rep.makespan = agg_.makespan;
  for (int p = 0; p < kNumPriorities; ++p) {
    rep.offered_by_priority[p] = agg_.offered_by_priority[p];
    rep.served_by_priority[p] = agg_.served_by_priority[p];
    rep.shed_by_priority[p] = agg_.shed_by_priority[p];
    rep.failed_by_priority[p] = agg_.failed_by_priority[p];
    rep.priority_latency_ms[p] = agg_.priority_latency_ms[p];
  }
  rep.latency_ms = agg_.latency_ms;
  rep.client_latency_ms = std::move(agg_.client_latency_ms);

  // Served bytes reduce over per-workload served counts: an integer reduction
  // in mix order, exact however the requests were retired.
  double served_bytes = 0.0;
  for (std::size_t wi = 0; wi < agg_.served_by_workload.size(); ++wi) {
    const KernelSpec& spec = traffic_->mix()[wi]->spec();
    served_bytes += static_cast<double>(agg_.served_by_workload[wi]) * spec.model_input_mb *
                    1024.0 * 1024.0 * config_.device.model_scale;
  }
  // A resumed fleet reports its serving window only: the clock floor
  // inherited from the snapshot is not time this run spent serving.
  const Tick horizon = rep.makespan;  // absolute last-activity tick
  rep.makespan = rep.makespan > resume_base_ ? rep.makespan - resume_base_ : 0;
  rep.availability = rep.offered > 0
                         ? static_cast<double>(rep.served) / static_cast<double>(rep.offered)
                         : 1.0;

  const double seconds = TicksToSeconds(rep.makespan);
  rep.throughput_rps = seconds > 0.0 ? static_cast<double>(rep.served) / seconds : 0.0;
  rep.served_mb_s = seconds > 0.0 ? served_bytes / (1024.0 * 1024.0) / seconds : 0.0;

  rep.fault_events_applied = tally_.events_applied;
  rep.crashes = tally_.crashes;
  rep.deaths = tally_.deaths;
  rep.recoveries = tally_.recoveries;
  rep.torn_in_flight = tally_.torn_in_flight;
  rep.failover_reroutes = tally_.failover_reroutes;
  rep.request_retries = tally_.request_retries;
  rep.hedges_issued = tally_.hedges_issued;
  rep.hedges_won = tally_.hedges_won;
  rep.hedges_cancelled = tally_.hedges_cancelled;

  for (auto& shard : shards_) {
    shard->stats.utilization =
        rep.makespan > 0
            ? static_cast<double>(std::min(shard->stats.busy_ns, rep.makespan)) /
                  static_cast<double>(rep.makespan)
            : 0.0;
    shard->stats.peak_queue_depth = shard->queue.peak_depth();
    shard->stats.queue_depth = shard->queue.depth_series();
    shard->stats.events_executed =
        shard->sim != nullptr ? shard->sim->events_executed() : 0;
    shard->stats.dead = shard->dead;
    if ((shard->down || shard->dead) && horizon > shard->down_since) {
      // Still out at the end of the window: the outage runs to the horizon.
      shard->stats.down_ns += horizon - shard->down_since;
    }
    shard->stats.breaker_opens = shard->breaker.opens();
    shard->stats.breaker_closes = shard->breaker.closes();
    shard->stats.breaker_state = BreakerStateName(shard->breaker.state());
    shard->stats.health_latency_ewma_ms = shard->health.latency_ewma_ms();
    shard->stats.health_error_ewma = shard->health.error_ewma();
    rep.timeouts += shard->timeouts;
    rep.evictions += shard->evictions;
    rep.verified = rep.verified && shard->verified;
    rep.devices.push_back(shard->stats);
  }

  // Everything above also flows through the observability layer: one
  // fleet/* metrics hierarchy, snapshotted at the fleet makespan.
  MetricsRegistry reg;
  std::deque<Counter> counters;
  auto counter = [&](const std::string& name, std::uint64_t v) {
    counters.emplace_back();
    counters.back().Add(v);
    reg.RegisterCounter(name, &counters.back());
  };
  counter("fleet/offered", rep.offered);
  counter("fleet/served", rep.served);
  counter("fleet/shed", rep.shed);
  counter("fleet/failed", rep.failed);
  counter("fleet/route_retries", rep.route_retries);
  counter("fleet/slo_violations", rep.slo_violations);
  counter("fleet/fault/events_applied", rep.fault_events_applied);
  counter("fleet/fault/crashes", rep.crashes);
  counter("fleet/fault/deaths", rep.deaths);
  counter("fleet/fault/recoveries", rep.recoveries);
  counter("fleet/fault/torn_in_flight", rep.torn_in_flight);
  counter("fleet/fault/failover_reroutes", rep.failover_reroutes);
  counter("fleet/retry/requests", rep.request_retries);
  counter("fleet/retry/timeouts", rep.timeouts);
  counter("fleet/priority/evictions", rep.evictions);
  counter("fleet/hedge/issued", rep.hedges_issued);
  counter("fleet/hedge/won", rep.hedges_won);
  counter("fleet/hedge/cancelled", rep.hedges_cancelled);
  for (int p = 0; p < kNumPriorities; ++p) {
    const std::string prefix =
        std::string("fleet/priority/") + RequestPriorityName(static_cast<RequestPriority>(p)) +
        "/";
    counter(prefix + "offered", rep.offered_by_priority[p]);
    counter(prefix + "served", rep.served_by_priority[p]);
    counter(prefix + "shed", rep.shed_by_priority[p]);
    counter(prefix + "failed", rep.failed_by_priority[p]);
  }
  reg.RegisterGauge("fleet/throughput_rps", [&rep](Tick) { return rep.throughput_rps; });
  reg.RegisterGauge("fleet/availability", [&rep](Tick) { return rep.availability; });
  reg.RegisterHistogram("fleet/latency_ms", &rep.latency_ms);
  for (int p = 0; p < kNumPriorities; ++p) {
    reg.RegisterHistogram(std::string("fleet/priority/") +
                              RequestPriorityName(static_cast<RequestPriority>(p)) +
                              "/latency_ms",
                          &rep.priority_latency_ms[p]);
  }
  for (std::size_t d = 0; d < rep.devices.size(); ++d) {
    const std::string p = "fleet/device/" + std::to_string(d) + "/";
    const FleetDeviceStats& st = rep.devices[d];
    counter(p + "served", st.served);
    counter(p + "shed", st.shed);
    counter(p + "batches", st.batches);
    counter(p + "installs", st.installs);
    counter(p + "install_hits", st.install_hits);
    counter(p + "peak_queue_depth", st.peak_queue_depth);
    counter(p + "failures", st.failures);
    counter(p + "torn", st.torn);
    counter(p + "crashes", st.crashes);
    counter(p + "recoveries", st.recoveries);
    counter(p + "probes", st.probes);
    counter(p + "breaker_opens", st.breaker_opens);
    counter(p + "breaker_closes", st.breaker_closes);
    reg.RegisterGauge(p + "utilization", [&rep, d](Tick) { return rep.devices[d].utilization; });
    reg.RegisterGauge(p + "health/latency_ewma_ms",
                      [&rep, d](Tick) { return rep.devices[d].health_latency_ewma_ms; });
    reg.RegisterGauge(p + "health/error_ewma",
                      [&rep, d](Tick) { return rep.devices[d].health_error_ewma; });
    reg.RegisterHistogram(p + "latency_ms", &rep.devices[d].latency_ms);
    reg.RegisterHistogram(p + "batch_ms", &rep.devices[d].batch_ms);
  }
  for (std::size_t c = 0; c < rep.client_latency_ms.size(); ++c) {
    reg.RegisterHistogram("fleet/client/" + std::to_string(c) + "/latency_ms",
                          &rep.client_latency_ms[c]);
  }
  rep.metrics = reg.Snapshot(rep.makespan);
  return rep;
}

void FleetReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("schema_version", kJsonSchemaVersion);
  w->Field("policy", policy);
  w->Field("traffic_model", traffic_model);
  w->Field("scheduler", scheduler);
  w->Field("execution", execution);
  w->Field("num_devices", num_devices);
  w->Field("makespan_ms", TicksToMs(makespan));
  w->Field("offered", static_cast<double>(offered));
  w->Field("served", static_cast<double>(served));
  w->Field("shed", static_cast<double>(shed));
  w->Field("failed", static_cast<double>(failed));
  w->Field("route_retries", static_cast<double>(route_retries));
  w->Field("slo_violations", static_cast<double>(slo_violations));
  w->Field("throughput_rps", throughput_rps);
  w->Field("served_mb_s", served_mb_s);
  w->Field("availability", availability);
  w->Field("verified", verified);

  w->Key("faults").BeginObject();
  w->Field("events_applied", static_cast<double>(fault_events_applied))
      .Field("crashes", static_cast<double>(crashes))
      .Field("deaths", static_cast<double>(deaths))
      .Field("recoveries", static_cast<double>(recoveries))
      .Field("torn_in_flight", static_cast<double>(torn_in_flight))
      .Field("failover_reroutes", static_cast<double>(failover_reroutes))
      .Field("request_retries", static_cast<double>(request_retries))
      .Field("timeouts", static_cast<double>(timeouts))
      .Field("evictions", static_cast<double>(evictions))
      .Field("hedges_issued", static_cast<double>(hedges_issued))
      .Field("hedges_won", static_cast<double>(hedges_won))
      .Field("hedges_cancelled", static_cast<double>(hedges_cancelled));
  w->EndObject();

  w->Key("priorities").BeginArray();
  for (int p = 0; p < kNumPriorities; ++p) {
    w->BeginObject()
        .Field("class", RequestPriorityName(static_cast<RequestPriority>(p)))
        .Field("offered", static_cast<double>(offered_by_priority[p]))
        .Field("served", static_cast<double>(served_by_priority[p]))
        .Field("shed", static_cast<double>(shed_by_priority[p]))
        .Field("failed", static_cast<double>(failed_by_priority[p]));
    w->Key("latency_ms");
    WriteHistogramSummary(w, priority_latency_ms[p].Summarize());
    w->EndObject();
  }
  w->EndArray();

  w->Key("latency_ms");
  WriteHistogramSummary(w, latency_ms.Summarize());

  w->Key("clients").BeginArray();
  for (std::size_t c = 0; c < client_latency_ms.size(); ++c) {
    w->BeginObject().Field("client", static_cast<double>(c)).Key("latency_ms");
    WriteHistogramSummary(w, client_latency_ms[c].Summarize());
    w->EndObject();
  }
  w->EndArray();

  w->Key("devices").BeginArray();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const FleetDeviceStats& st = devices[d];
    w->BeginObject()
        .Field("device", static_cast<double>(d))
        .Field("served", static_cast<double>(st.served))
        .Field("shed", static_cast<double>(st.shed))
        .Field("failures", static_cast<double>(st.failures))
        .Field("batches", static_cast<double>(st.batches))
        .Field("installs", static_cast<double>(st.installs))
        .Field("install_hits", static_cast<double>(st.install_hits))
        .Field("busy_ms", TicksToMs(st.busy_ns))
        .Field("utilization", st.utilization)
        .Field("energy_j", st.energy_j)
        .Field("events_executed", static_cast<double>(st.events_executed))
        .Field("peak_queue_depth", static_cast<double>(st.peak_queue_depth))
        .Field("torn", static_cast<double>(st.torn))
        .Field("crashes", static_cast<double>(st.crashes))
        .Field("recoveries", static_cast<double>(st.recoveries))
        .Field("dead", st.dead)
        .Field("down_ms", TicksToMs(st.down_ns))
        .Field("recovered_lost_groups", static_cast<double>(st.recovered_lost_groups))
        .Field("recovered_torn_groups", static_cast<double>(st.recovered_torn_groups))
        .Field("breaker_opens", static_cast<double>(st.breaker_opens))
        .Field("breaker_closes", static_cast<double>(st.breaker_closes))
        .Field("probes", static_cast<double>(st.probes))
        .Field("breaker_state", st.breaker_state)
        .Field("health_latency_ewma_ms", st.health_latency_ewma_ms)
        .Field("health_error_ewma", st.health_error_ewma);
    w->Key("latency_ms");
    WriteHistogramSummary(w, st.latency_ms.Summarize());
    w->Key("batch_ms");
    WriteHistogramSummary(w, st.batch_ms.Summarize());
    w->Key("queue_depth").BeginObject();
    w->Field("samples", static_cast<double>(st.queue_depth.samples()));
    w->Key("series").BeginArray();
    if (!st.queue_depth.empty() && makespan > 0) {
      for (double v : st.queue_depth.Rebucket(makespan, kQueueDepthBuckets)) {
        w->Value(v);
      }
    }
    w->EndArray();
    w->EndObject();
    w->EndObject();
  }
  w->EndArray();

  w->Key("metrics");
  metrics.WriteJson(w);

  w->EndObject();
}

std::string FleetReport::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

FleetReport RunFleet(const FleetConfig& config) { return FleetSim(config).Run(); }

}  // namespace fabacus
