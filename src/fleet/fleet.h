// FleetSim: serve synthetic client traffic across N independently-simulated
// FlashAbacus devices (docs/FLEET.md).
//
// Each shard owns a private Simulator + FlashAbacus device plus a bounded
// AdmissionQueue; a ShardRouter places every arrival; admitted requests are
// coalesced into batches (up to `max_batch`) that run on the shard under the
// configured scheduler. Installed workload instances are cached per shard, so
// a request whose dataset is already flash-resident skips the install writes
// — the locality the data-affinity policy exploits.
//
// Execution models, both bit-deterministic per (config, seed):
//  * kLockstep    — one global event loop advances arrivals and batch
//    completions in (time, sequence) order across all shards. Required for
//    closed-loop traffic, state-aware routing and admission re-routing.
//  * kPartitioned — the whole open-loop schedule is routed up front, then
//    every shard simulates its own slice concurrently on a SweepRunner pool,
//    results merging in submission order. Valid only when the routing is
//    oblivious (round-robin / data-affinity, no re-route retries); produces
//    byte-identical reports to kLockstep at any thread count (fleet_test
//    locks both properties down).
//
// Per-client and per-device latency percentiles, SLO violations, shed/retry
// counters and queue-depth series all flow through a MetricsRegistry snapshot
// embedded in the FleetReport, which serializes to schema-stable JSON like
// RunReport does.
#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/flashabacus.h"
#include "src/fleet/admission_queue.h"
#include "src/fleet/fleet_faults.h"
#include "src/fleet/health.h"
#include "src/sim/event_queue.h"
#include "src/fleet/shard_router.h"
#include "src/fleet/traffic.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace fabacus {

struct FleetConfig {
  enum class Execution { kAuto, kLockstep, kPartitioned };

  int num_devices = 2;
  // Per-shard device; fault seeds are decorrelated per shard automatically.
  FlashAbacusConfig device = FlashAbacusConfig::Small();
  SchedulerKind scheduler = SchedulerKind::kIntraOutOfOrder;
  PlacementPolicy policy = PlacementPolicy::kRoundRobin;
  TrafficConfig traffic;

  std::size_t queue_depth = 16;  // admission bound per shard
  int max_route_attempts = 2;    // placements tried before shedding
  int max_batch = 4;             // requests coalesced per device dispatch
  double slo_ms = 250.0;         // client-latency objective per request
  bool verify_outputs = true;    // functional check of every served request

  // --- Fleet fault tolerance (docs/FLEET.md "Fleet fault tolerance") -------
  FleetFaultConfig faults;  // scripted/seeded per-shard fault events
  HealthConfig health;      // EWMA + circuit-breaker knobs (kHealthAware)
  // Bounded retry budget per request: a failed request (torn by a crash,
  // uncorrectable I/O, timeout) is resubmitted up to this many times, each
  // retry_backoff after the failure, before it counts as failed.
  int max_request_retries = 0;
  Tick retry_backoff = 2 * kMs;
  // Hedged duplicates for latency-class requests: a request still queued
  // hedge_delay after admission gets a duplicate on another shard; the first
  // completion wins and the loser is cancelled (first-wins accounting).
  bool hedge_requests = false;
  Tick hedge_delay = 50 * kMs;
  // A served completion slower than this counts as a timeout failure
  // (retried on the request's budget). 0 disables the timeout.
  double request_timeout_ms = 0.0;
  // SLO-aware shedding: a full admission queue evicts its youngest
  // strictly-lower-priority entry to admit a higher-priority arrival, so
  // overload degrades batch work before latency-class traffic.
  bool priority_shedding = false;

  // Synthetic service mode: shards model batch service time analytically
  // (workload bytes x a per-MB cost + deterministic per-request jitter)
  // instead of running a full device simulation. The serving plane — routing,
  // admission, batching, shedding, priorities, the whole report pipeline —
  // is exercised unchanged, at microseconds per request instead of
  // milliseconds, which is what lets bench_fleet_scaleout push the scenario
  // axis to >=10M requests / 64 devices. Device faults need real devices and
  // are rejected by Validate(); Snapshot/Resume are unavailable (there is no
  // device state to checkpoint). Deterministic per (config, seed) like the
  // real path.
  bool synthetic_service = false;

  // kAuto picks kPartitioned when legal (open loop + oblivious policy +
  // max_route_attempts == 1), else kLockstep.
  Execution execution = Execution::kAuto;
  int sweep_threads = 0;  // partitioned pool width; 0 = env/hardware default
  // Event-queue backend of every shard simulator.
  EventQueue::Backend backend = EventQueue::Backend::kCalendar;

  // Empty when runnable, else the first problem found.
  std::string Validate() const;
  bool CanPartition() const;
};

// Per-shard slice of a fleet run.
struct FleetDeviceStats {
  std::uint64_t served = 0;
  std::uint64_t shed = 0;       // rejections charged to this shard's queue
  std::uint64_t batches = 0;
  std::uint64_t installs = 0;       // fresh dataset installs (flash writes)
  std::uint64_t install_hits = 0;   // requests served from cached datasets
  Tick busy_ns = 0;                 // union of batch service windows
  double utilization = 0.0;         // busy_ns / fleet makespan
  double energy_j = 0.0;            // accelerator energy across its batches
  std::uint64_t events_executed = 0;
  std::size_t peak_queue_depth = 0;
  // Bounded streaming sketches (constant memory per shard however many
  // requests flow through; see docs/OBSERVABILITY.md "Streaming sketches").
  LogHistogram latency_ms;       // client-perceived latency of requests it served
  LogHistogram batch_ms;         // service window per batch
  BoundedTimeSeries queue_depth; // admission-queue depth over time

  // --- Fault-tolerance slice (fleet/fault/* + fleet/health/* metrics) ------
  std::uint64_t failures = 0;       // request failures charged to this shard
  std::uint64_t torn = 0;           // in-flight requests torn by a crash
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  bool dead = false;                // permanently failed, never rejoined
  Tick down_ns = 0;                 // total crash downtime
  std::uint64_t recovered_lost_groups = 0;  // FTL mappings lost in recovery
  std::uint64_t recovered_torn_groups = 0;  // half-programmed groups found
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t probes = 0;                 // requests admitted half-open
  std::string breaker_state = "closed";     // state at end of run
  double health_latency_ewma_ms = 0.0;
  double health_error_ewma = 0.0;
};

struct FleetReport {
  std::string policy;
  std::string traffic_model;
  std::string scheduler;
  std::string execution;  // "lockstep" | "partitioned"
  int num_devices = 0;

  Tick makespan = 0;  // last completion (or last arrival when all shed)
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;  // accepted but lost after every retry (torn/IO/timeout)
  std::uint64_t route_retries = 0;
  std::uint64_t slo_violations = 0;
  double throughput_rps = 0.0;  // served requests per simulated second
  double served_mb_s = 0.0;     // modelled bytes of served requests per second
  double availability = 1.0;    // served / offered — the goodput ratio
  bool verified = true;

  // --- Fault-tolerance rollup ----------------------------------------------
  std::uint64_t fault_events_applied = 0;
  std::uint64_t crashes = 0;
  std::uint64_t deaths = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t torn_in_flight = 0;    // requests torn by crashes
  std::uint64_t failover_reroutes = 0; // queued requests drained to other shards
  std::uint64_t request_retries = 0;   // failure-path resubmissions
  std::uint64_t timeouts = 0;
  std::uint64_t evictions = 0;         // priority-shed queue evictions
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;        // duplicate finished first
  std::uint64_t hedges_cancelled = 0;  // losers removed or ignored
  // Per-priority-class accounting, indexed by RequestPriority.
  std::uint64_t offered_by_priority[kNumPriorities] = {0, 0, 0};
  std::uint64_t served_by_priority[kNumPriorities] = {0, 0, 0};
  std::uint64_t shed_by_priority[kNumPriorities] = {0, 0, 0};
  std::uint64_t failed_by_priority[kNumPriorities] = {0, 0, 0};

  // Latency sketches: bounded mergeable LogHistograms, O(1) memory per
  // sketch regardless of request count. Percentiles carry the sketch's
  // <=1/64 relative quantization error; count/min/max are exact.
  LogHistogram latency_ms;                      // all served requests
  LogHistogram priority_latency_ms[kNumPriorities];  // served, per class
  std::vector<FleetDeviceStats> devices;        // indexed by shard
  std::vector<LogHistogram> client_latency_ms;  // indexed by client id
  MetricsSnapshot metrics;                      // fleet/* hierarchy

  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
};

class FleetSim {
 public:
  explicit FleetSim(const FleetConfig& config);
  ~FleetSim();
  FleetSim(const FleetSim&) = delete;
  FleetSim& operator=(const FleetSim&) = delete;

  // Serves the configured traffic to completion and returns the merged
  // report. One-shot: a FleetSim instance runs once (Resume() re-arms a
  // fresh instance for a warm-started run).
  FleetReport Run();

  const FleetConfig& config() const { return config_; }

  // --- Fleet checkpoint/restore (docs/SNAPSHOT.md) -------------------------
  // Fans every shard's device snapshot into one "fleet" container, together
  // with the traffic-generator stream position, the router cursor and each
  // shard's install cache (which datasets are flash-resident, and where).
  // Valid between runs only: every shard idle, every admission queue empty.
  bool Snapshot(const std::string& path, std::string* error = nullptr) const;
  SnapshotBuilder BuildSnapshot() const;

  // Restores a fleet snapshot into this (freshly constructed, identically
  // configured) fleet: shard devices resume exactly, install caches come
  // back warm, and the traffic/router streams continue where they stopped.
  // The next Run() serves a fresh traffic window — arrivals are offset to
  // the resumed clock and the report's makespan/throughput cover only the
  // new window (serving stats do not accumulate across segments). Returns
  // false with *error set on any mismatch; discard the fleet on failure.
  bool Resume(const SnapshotFile& snap, std::string* error = nullptr);
  bool Resume(const std::string& path, std::string* error = nullptr);

 private:
  struct Shard;
  struct ServeLoop;

  void BuildShards();
  // The per-shard device config (decorrelated fault seed); also what a
  // snapshot-mode recovery rebuilds a replacement device from.
  FlashAbacusConfig ShardDeviceConfig(int shard) const;
  // Install-cache directory encode/decode, shared by the fleet snapshot and
  // the per-shard crash-recovery checkpoints.
  static void WriteInstallCache(const Shard& shard, StateWriter& w);
  void ReadInstallCache(Shard* shard, StateReader& r) const;
  // Folds one finished (served / shed / failed) request into the streaming
  // aggregates. Sketch counts, min/max and the fixed-point sums are all
  // order-invariant, so the lockstep loop retiring in completion order and
  // the partitioned path retiring in id order produce byte-identical
  // reports. Single-threaded callers only.
  void RetireRequest(const FleetRequest& r);
  FleetReport Finalize(const std::string& execution);

  FleetConfig config_;
  std::unique_ptr<TrafficGenerator> traffic_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Fault-tolerance tallies, written by the (single-threaded) lockstep loop
  // and folded into the report by Finalize.
  struct FaultTally {
    std::uint64_t events_applied = 0;
    std::uint64_t crashes = 0;
    std::uint64_t deaths = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t torn_in_flight = 0;
    std::uint64_t failover_reroutes = 0;
    std::uint64_t request_retries = 0;
    std::uint64_t hedges_issued = 0;
    std::uint64_t hedges_won = 0;
    std::uint64_t hedges_cancelled = 0;
  };
  FaultTally tally_;
  // Streaming request aggregates, fed one retired request at a time by
  // RetireRequest. Replaces the old post-hoc walk over every retained
  // request: memory is O(devices + clients + priorities), not O(requests).
  struct Agg {
    std::uint64_t offered = 0;
    std::uint64_t served = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t route_retries = 0;
    std::uint64_t slo_violations = 0;
    std::uint64_t offered_by_priority[kNumPriorities] = {0, 0, 0};
    std::uint64_t served_by_priority[kNumPriorities] = {0, 0, 0};
    std::uint64_t shed_by_priority[kNumPriorities] = {0, 0, 0};
    std::uint64_t failed_by_priority[kNumPriorities] = {0, 0, 0};
    Tick makespan = 0;  // absolute last-activity tick
    // Served-request count per mix workload: served bytes reduce to
    // sum(count[w] * bytes[w]) in mix order — exact and order-invariant,
    // where a per-request double sum would depend on retirement order.
    std::vector<std::uint64_t> served_by_workload;
    LogHistogram latency_ms;
    LogHistogram priority_latency_ms[kNumPriorities];
    std::vector<LogHistogram> client_latency_ms;  // indexed by client id
  };
  Agg agg_;
  // Clock floor of a resumed fleet: arrivals shift past it and report
  // windows subtract it, so a warm-started run reads like a fresh one.
  Tick resume_base_ = 0;
  bool ran_ = false;
};

// Convenience: configure, run, report.
FleetReport RunFleet(const FleetConfig& config);

}  // namespace fabacus

#endif  // SRC_FLEET_FLEET_H_
