// Fleet-scope failure injection (docs/FLEET.md "Fleet fault tolerance").
//
// A FleetFaultConfig turns into a deterministic, time-sorted list of
// per-shard fault events that FleetSim's lockstep loop applies at exact
// simulation ticks:
//
//   * kStall   — a brownout window: every batch dispatched on the shard while
//     the window is open has its service time inflated by `stall_factor`.
//     Models thermal throttling / internal housekeeping storms.
//   * kDegrade — error-rate degradation: kills a die (or a whole channel) in
//     the shard's existing FaultModel, so reads detour around dead geometry
//     at reduced bandwidth and I/O failures climb (docs/RELIABILITY.md).
//   * kCrash   — full power-loss crash at a tick. In-flight requests tear,
//     queued requests fail over to other shards, and the device recovers
//     after `duration` via RecoverFromFlash (PR 2) or its last checkpoint
//     (PR 5), rejoining through the circuit breaker's half-open probes.
//   * kDeath   — a permanent crash: the shard never rejoins and the fleet
//     serves on the survivors.
//
// Events come from an explicit scripted plan, a seeded random chaos stream,
// or both; Materialize() merges them into one stable order so every run of
// the same (config, seed) applies the identical fault schedule.
#ifndef SRC_FLEET_FLEET_FAULTS_H_
#define SRC_FLEET_FLEET_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace fabacus {

struct FleetFaultEvent {
  enum class Kind { kStall, kDegrade, kCrash, kDeath };

  Kind kind = Kind::kStall;
  int shard = 0;
  Tick at = 0;
  // kStall: brownout window length. kCrash: downtime before recovery starts.
  Tick duration = 2 * kMs;
  double stall_factor = 4.0;  // kStall service-time multiplier
  // kDegrade target inside the shard (wrapped into the real geometry).
  bool kill_whole_channel = false;
  int kill_channel = 0;
  int kill_package = 0;
};

const char* FleetFaultKindName(FleetFaultEvent::Kind k);

struct FleetFaultConfig {
  // Scripted events, any order; Materialize() sorts them.
  std::vector<FleetFaultEvent> plan;

  // Seeded chaos: `random_events` extra events drawn over [0, random_horizon)
  // with kind weights below (kDeath is never drawn randomly — permanent
  // capacity loss is a scripted decision, not noise).
  std::uint64_t seed = 0xc4a05f00dULL;
  int random_events = 0;
  Tick random_horizon = 0;
  double weight_stall = 1.0;
  double weight_degrade = 1.0;
  double weight_crash = 1.0;
  Tick random_crash_downtime = 5 * kMs;
  Tick random_stall_duration = 2 * kMs;
  double random_stall_factor = 4.0;

  // How a crashed shard comes back (docs/RELIABILITY.md, docs/SNAPSHOT.md):
  //  * kFlash    — CrashAt + RecoverFromFlash: rebuild the FTL from flash
  //    (journal + OOB replay); the install cache is conservatively dropped.
  //  * kSnapshot — restore the shard's last periodic device checkpoint
  //    (taken every checkpoint_every_batches completed batches) into a fresh
  //    device, install cache included.
  enum class Recovery { kFlash, kSnapshot };
  Recovery recovery = Recovery::kFlash;
  int checkpoint_every_batches = 4;

  bool Any() const { return !plan.empty() || random_events > 0; }

  // Empty when well-formed for a fleet of `num_devices`, else the first
  // problem found.
  std::string Validate(int num_devices) const;

  // Scripted plan + seeded chaos, stably sorted by (tick, shard, kind).
  // Deterministic: identical config => identical event list.
  std::vector<FleetFaultEvent> Materialize(int num_devices) const;
};

const char* FleetRecoveryName(FleetFaultConfig::Recovery r);

}  // namespace fabacus

#endif  // SRC_FLEET_FLEET_FAULTS_H_
