#include "src/fleet/traffic.h"

#include <cmath>

#include "src/sim/log.h"

namespace fabacus {

namespace {

std::vector<TrafficMixEntry> DefaultMix() {
  return {{"ATAX", 1.0}, {"BICG", 1.0}, {"MVT", 1.0}, {"GESUM", 1.0}};
}

}  // namespace

const char* RequestPriorityName(RequestPriority p) {
  switch (p) {
    case RequestPriority::kLatency:
      return "latency";
    case RequestPriority::kThroughput:
      return "throughput";
    case RequestPriority::kBatch:
      return "batch";
  }
  return "?";
}

const char* TrafficModelName(TrafficConfig::Model m) {
  switch (m) {
    case TrafficConfig::Model::kOpenLoop:
      return "open-loop";
    case TrafficConfig::Model::kClosedLoop:
      return "closed-loop";
  }
  return "?";
}

std::string TrafficConfig::Validate() const {
  if (num_clients < 1) {
    return "num_clients must be >= 1, got " + std::to_string(num_clients);
  }
  if (model == Model::kOpenLoop) {
    if (arrival_rate_per_s <= 0.0) {
      return "arrival_rate_per_s must be positive, got " + std::to_string(arrival_rate_per_s);
    }
    if (total_requests < 1) {
      return "total_requests must be >= 1, got " + std::to_string(total_requests);
    }
  } else {
    if (requests_per_client < 1) {
      return "requests_per_client must be >= 1, got " + std::to_string(requests_per_client);
    }
  }
  for (const TrafficMixEntry& e : mix) {
    if (e.weight <= 0.0) {
      return "mix weight for " + e.workload + " must be positive";
    }
    if (WorkloadRegistry::Get().Find(e.workload) == nullptr) {
      return "unknown workload in mix: " + e.workload;
    }
  }
  if (latency_share < 0.0 || batch_share < 0.0 || latency_share + batch_share > 1.0) {
    return "priority shares must be non-negative and sum to <= 1 (latency_share=" +
           std::to_string(latency_share) + ", batch_share=" + std::to_string(batch_share) + ")";
  }
  return "";
}

TrafficGenerator::TrafficGenerator(const TrafficConfig& config)
    : config_(config), rng_(config.seed) {
  const std::string problem = config_.Validate();
  FAB_CHECK(problem.empty()) << "bad TrafficConfig: " << problem;
  if (config_.mix.empty()) {
    config_.mix = DefaultMix();
  }
  double total = 0.0;
  for (const TrafficMixEntry& e : config_.mix) {
    const Workload* wl = WorkloadRegistry::Get().Find(e.workload);
    FAB_CHECK(wl != nullptr) << "unknown workload in mix: " << e.workload;
    mix_.push_back(wl);
    total += e.weight;
  }
  double cum = 0.0;
  for (const TrafficMixEntry& e : config_.mix) {
    cum += e.weight / total;
    cumulative_weight_.push_back(cum);
  }
  cumulative_weight_.back() = 1.0;  // guard against rounding at the tail
  emitted_per_client_.assign(static_cast<std::size_t>(config_.num_clients), 0);
}

int TrafficGenerator::total_requests() const {
  return config_.model == TrafficConfig::Model::kOpenLoop
             ? config_.total_requests
             : config_.num_clients * config_.requests_per_client;
}

int TrafficGenerator::DrawWorkload() {
  const double u = rng_.NextDouble();
  for (std::size_t i = 0; i < cumulative_weight_.size(); ++i) {
    if (u < cumulative_weight_[i]) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(cumulative_weight_.size()) - 1;
}

Tick TrafficGenerator::DrawExponential(double mean_ns) {
  // Inverse-CDF sampling; NextDouble() < 1 keeps the log argument positive.
  const double u = rng_.NextDouble();
  return static_cast<Tick>(-mean_ns * std::log(1.0 - u));
}

FleetRequest TrafficGenerator::MakeRequest(int client, Tick arrival) {
  FleetRequest r;
  r.id = next_id_++;
  r.client_id = client;
  r.workload_idx = DrawWorkload();
  r.arrival = arrival;
  r.priority = PriorityFor(r.id);
  return r;
}

RequestPriority TrafficGenerator::PriorityFor(int id) const {
  if (config_.latency_share <= 0.0 && config_.batch_share <= 0.0) {
    return RequestPriority::kThroughput;
  }
  // Side SplitMix64 hash of (seed, id): deterministic per config without
  // consuming the main stream, so priority shares never move arrival times.
  std::uint64_t z = config_.seed ^ (static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ULL +
                                    0x632be59bd9b4e019ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  if (u < config_.latency_share) {
    return RequestPriority::kLatency;
  }
  if (u < config_.latency_share + config_.batch_share) {
    return RequestPriority::kBatch;
  }
  return RequestPriority::kThroughput;
}

std::vector<FleetRequest> TrafficGenerator::InitialArrivals() {
  std::vector<FleetRequest> out;
  if (config_.model == TrafficConfig::Model::kOpenLoop) {
    const double mean_gap_ns = 1e9 / config_.arrival_rate_per_s;
    Tick t = 0;
    out.reserve(static_cast<std::size_t>(config_.total_requests));
    for (int i = 0; i < config_.total_requests; ++i) {
      t += DrawExponential(mean_gap_ns);
      out.push_back(MakeRequest(i % config_.num_clients, t));
    }
    return out;
  }
  out.reserve(static_cast<std::size_t>(config_.num_clients));
  for (int c = 0; c < config_.num_clients; ++c) {
    out.push_back(MakeRequest(c, DrawExponential(static_cast<double>(config_.mean_think_time))));
    emitted_per_client_[static_cast<std::size_t>(c)] = 1;
  }
  return out;
}

bool TrafficGenerator::NextArrival(FleetRequest* out) {
  if (config_.model != TrafficConfig::Model::kOpenLoop) {
    return false;
  }
  // One serving window emits total_requests arrivals — counted per window,
  // not against next_id_, because a restored generator continues its id
  // stream past total_requests (each resumed Run serves a fresh window).
  if (open_emitted_ >= config_.total_requests) {
    return false;
  }
  ++open_emitted_;
  // Identical draws, ids and client assignment as one InitialArrivals() step.
  const double mean_gap_ns = 1e9 / config_.arrival_rate_per_s;
  open_clock_ += DrawExponential(mean_gap_ns);
  *out = MakeRequest(next_id_ % config_.num_clients, open_clock_);
  return true;
}

bool TrafficGenerator::NextForClient(int client, Tick now, FleetRequest* out) {
  if (config_.model == TrafficConfig::Model::kOpenLoop) {
    return false;
  }
  FAB_CHECK_GE(client, 0);
  FAB_CHECK_LT(client, config_.num_clients);
  int& emitted = emitted_per_client_[static_cast<std::size_t>(client)];
  if (emitted >= config_.requests_per_client) {
    return false;
  }
  ++emitted;
  *out = MakeRequest(client, now + DrawExponential(static_cast<double>(config_.mean_think_time)));
  return true;
}

}  // namespace fabacus
