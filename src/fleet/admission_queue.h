// Bounded admission queue of one fleet shard: requests the router placed on
// this device wait here for a batch slot. Depth is capped — an arrival that
// finds the queue full is rejected, and the router either re-routes it
// (bounded retries) or sheds it. Every transition is recorded in a
// queue-depth time series so overload is visible in the fleet report, not
// just in its tail latencies.
#ifndef SRC_FLEET_ADMISSION_QUEUE_H_
#define SRC_FLEET_ADMISSION_QUEUE_H_

#include <cstddef>
#include <deque>

#include "src/fleet/traffic.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t max_depth);

  // False when the queue is at max_depth (the request is NOT queued).
  bool TryEnqueue(FleetRequest* r, Tick now);
  // FIFO; CHECK-fails on an empty queue.
  FleetRequest* Dequeue(Tick now);
  // Removes a specific queued request (hedge first-wins cancellation). False
  // when `r` is not in the queue.
  bool Remove(FleetRequest* r, Tick now);
  // SLO-aware shedding: evicts and returns the youngest queued request whose
  // priority class is strictly worse than `p` (so a latency-class arrival can
  // displace batch work on a full queue), or nullptr when none qualifies.
  FleetRequest* EvictWorseThan(RequestPriority p, Tick now);

  std::size_t depth() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  std::size_t max_depth() const { return max_depth_; }

  std::uint64_t enqueued() const { return enqueued_.value(); }
  std::uint64_t rejected() const { return rejected_.value(); }
  std::size_t peak_depth() const { return peak_depth_; }
  // Depth after every enqueue/dequeue/evict, coarsened into a bounded bin
  // set (constant memory however many requests flow through; the report only
  // ever reads the Rebucketed view).
  const BoundedTimeSeries& depth_series() const { return depth_series_; }

 private:
  std::size_t max_depth_;
  std::deque<FleetRequest*> queue_;
  Counter enqueued_;
  Counter rejected_;
  std::size_t peak_depth_ = 0;
  BoundedTimeSeries depth_series_;
};

}  // namespace fabacus

#endif  // SRC_FLEET_ADMISSION_QUEUE_H_
