#include "src/fleet/health.h"

#include "src/sim/log.h"

namespace fabacus {

std::string HealthConfig::Validate() const {
  if (latency_alpha <= 0.0 || latency_alpha > 1.0) {
    return "latency_alpha must be in (0, 1], got " + std::to_string(latency_alpha);
  }
  if (error_alpha <= 0.0 || error_alpha > 1.0) {
    return "error_alpha must be in (0, 1], got " + std::to_string(error_alpha);
  }
  if (strikes_to_open < 1) {
    return "strikes_to_open must be >= 1, got " + std::to_string(strikes_to_open);
  }
  if (error_open_threshold <= 0.0 || error_open_threshold > 1.0) {
    return "error_open_threshold must be in (0, 1], got " +
           std::to_string(error_open_threshold);
  }
  if (open_cooldown < 1) {
    return "open_cooldown must be >= 1 tick";
  }
  if (half_open_probes < 1) {
    return "half_open_probes must be >= 1, got " + std::to_string(half_open_probes);
  }
  if (probe_successes_to_close < 1) {
    return "probe_successes_to_close must be >= 1, got " +
           std::to_string(probe_successes_to_close);
  }
  return "";
}

void HealthTracker::OnSuccess(double service_ms) {
  latency_ewma_ms_ = successes_ + failures_ == 0
                         ? service_ms
                         : latency_ewma_ms_ +
                               config_.latency_alpha * (service_ms - latency_ewma_ms_);
  error_ewma_ += config_.error_alpha * (0.0 - error_ewma_);
  consecutive_failures_ = 0;
  ++successes_;
}

void HealthTracker::OnFailure() {
  error_ewma_ = successes_ + failures_ == 0
                    ? 1.0
                    : error_ewma_ + config_.error_alpha * (1.0 - error_ewma_);
  ++consecutive_failures_;
  ++failures_;
}

void HealthTracker::SaveState(StateWriter& w) const {
  w.F64(latency_ewma_ms_);
  w.F64(error_ewma_);
  w.I32(consecutive_failures_);
  w.U64(successes_);
  w.U64(failures_);
}

void HealthTracker::LoadState(StateReader& r) {
  latency_ewma_ms_ = r.F64();
  error_ewma_ = r.F64();
  consecutive_failures_ = r.I32();
  successes_ = r.U64();
  failures_ = r.U64();
}

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::Advance(Tick now) {
  if (state_ == BreakerState::kOpen && now >= reopen_at_) {
    state_ = BreakerState::kHalfOpen;
    probes_inflight_ = 0;
    probe_successes_ = 0;
  }
}

bool CircuitBreaker::AllowRequest() const {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      return probes_inflight_ < config_.half_open_probes;
  }
  return false;
}

void CircuitBreaker::OnProbeDispatched() {
  FAB_CHECK(state_ == BreakerState::kHalfOpen) << "probes only exist half-open";
  ++probes_inflight_;
  probes_.Add();
}

void CircuitBreaker::OnProbeOutcome(bool success, Tick now) {
  if (state_ != BreakerState::kHalfOpen) {
    // A force-open (crash) can race an in-flight probe; its late outcome no
    // longer has a vote.
    return;
  }
  if (probes_inflight_ > 0) {
    --probes_inflight_;
  }
  if (!success) {
    Open(now);
    return;
  }
  if (++probe_successes_ >= config_.probe_successes_to_close) {
    Close();
  }
}

void CircuitBreaker::OnOutcome(bool success, Tick now, double error_ewma) {
  if (state_ != BreakerState::kClosed) {
    // Stragglers dispatched before the breaker left closed carry no weight;
    // half-open health is decided by probes alone.
    return;
  }
  if (success) {
    strikes_ = 0;
    return;
  }
  if (++strikes_ >= config_.strikes_to_open || error_ewma >= config_.error_open_threshold) {
    Open(now);
  }
}

void CircuitBreaker::ForceOpen(Tick now) { Open(now); }

void CircuitBreaker::ForceHalfOpen(Tick now) {
  if (state_ == BreakerState::kClosed) {
    // Count the pass through open so the open/close tallies stay paired.
    opens_.Add();
  }
  state_ = BreakerState::kHalfOpen;
  reopen_at_ = now;
  strikes_ = 0;
  probes_inflight_ = 0;
  probe_successes_ = 0;
}

void CircuitBreaker::Open(Tick now) {
  if (state_ != BreakerState::kOpen) {
    opens_.Add();
  }
  state_ = BreakerState::kOpen;
  reopen_at_ = now + config_.open_cooldown;
  strikes_ = 0;
  probes_inflight_ = 0;
  probe_successes_ = 0;
}

void CircuitBreaker::Close() {
  state_ = BreakerState::kClosed;
  strikes_ = 0;
  probes_inflight_ = 0;
  probe_successes_ = 0;
  closes_.Add();
}

void CircuitBreaker::SaveState(StateWriter& w) const {
  w.U8(static_cast<std::uint8_t>(state_));
  w.I32(strikes_);
  w.I64(reopen_at_);
  w.I32(probes_inflight_);
  w.I32(probe_successes_);
  opens_.SaveState(w);
  closes_.SaveState(w);
  probes_.SaveState(w);
}

void CircuitBreaker::LoadState(StateReader& r) {
  const std::uint8_t s = r.U8();
  if (s > static_cast<std::uint8_t>(BreakerState::kHalfOpen)) {
    r.Fail("invalid circuit breaker state byte");
    return;
  }
  state_ = static_cast<BreakerState>(s);
  strikes_ = r.I32();
  reopen_at_ = r.I64();
  probes_inflight_ = r.I32();
  probe_successes_ = r.I32();
  opens_.LoadState(r);
  closes_.LoadState(r);
  probes_.LoadState(r);
}

}  // namespace fabacus
