// Per-shard health telemetry and admission gating for the fleet layer
// (docs/FLEET.md "Fleet fault tolerance").
//
// HealthTracker keeps a deterministic EWMA of a shard's batch service latency
// and request failure rate plus a consecutive-failure streak — the signal.
// CircuitBreaker turns that signal into an admission state machine:
//
//   closed ──(strikes / error EWMA over threshold)──> open
//   open ──(cooldown elapses)──> half-open
//   half-open ──(probe successes)──> closed
//   half-open ──(any probe failure)──> open          (cooldown restarts)
//
// A crashed shard is forced open; a recovered shard is forced half-open so it
// rejoins through probe traffic instead of taking a full load slice while
// still unproven. Everything is driven by simulation ticks and counts, never
// wall clock, so fleet runs stay bit-deterministic per seed.
#ifndef SRC_FLEET_HEALTH_H_
#define SRC_FLEET_HEALTH_H_

#include <cstdint>
#include <string>

#include "src/sim/snapshot.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

struct HealthConfig {
  double latency_alpha = 0.3;  // EWMA smoothing of batch service latency
  double error_alpha = 0.25;   // EWMA smoothing of the failure indicator
  // Breaker-opening conditions while closed: a failure streak this long, or a
  // failure-rate EWMA at/above this threshold.
  int strikes_to_open = 3;
  double error_open_threshold = 0.5;
  Tick open_cooldown = 20 * kMs;      // open -> half-open wait
  int half_open_probes = 2;           // concurrent probes admitted half-open
  int probe_successes_to_close = 2;   // clean probes required to close

  // Empty when well-formed, else the first problem found.
  std::string Validate() const;
};

// Deterministic EWMA view of one shard's recent service quality.
class HealthTracker {
 public:
  explicit HealthTracker(const HealthConfig& config) : config_(config) {}

  void OnSuccess(double service_ms);
  void OnFailure();

  double latency_ewma_ms() const { return latency_ewma_ms_; }
  double error_ewma() const { return error_ewma_; }
  int consecutive_failures() const { return consecutive_failures_; }
  std::uint64_t successes() const { return successes_; }
  std::uint64_t failures() const { return failures_; }

  // Routing score: lower is healthier. Latency-dominated, inflated by the
  // failure-rate EWMA so an erroring shard ranks behind a merely slow one.
  double Score() const { return latency_ewma_ms_ * (1.0 + 4.0 * error_ewma_); }

  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  HealthConfig config_;
  double latency_ewma_ms_ = 0.0;
  double error_ewma_ = 0.0;
  int consecutive_failures_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t failures_ = 0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* BreakerStateName(BreakerState s);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const HealthConfig& config) : config_(config) {}

  // Lazily applies the open -> half-open cooldown transition; call before
  // reading state()/AllowRequest() at a new simulation tick.
  void Advance(Tick now);

  BreakerState state() const { return state_; }
  // May another request be admitted right now? Closed: always. Half-open:
  // only while the in-flight probe quota has room. Open: never.
  bool AllowRequest() const;

  // A request admitted while half-open is a probe; its outcome decides the
  // reopen-or-close question.
  void OnProbeDispatched();
  void OnProbeOutcome(bool success, Tick now);
  // Outcome of a regular (non-probe) request. Only a closed breaker reacts:
  // `error_ewma` is the tracker's failure-rate EWMA after this outcome.
  void OnOutcome(bool success, Tick now, double error_ewma);

  // Crash path: the shard is gone, stop routing to it immediately.
  void ForceOpen(Tick now);
  // Rejoin path: the shard recovered; admit probe traffic only until proven.
  void ForceHalfOpen(Tick now);

  std::uint64_t opens() const { return opens_.value(); }
  std::uint64_t closes() const { return closes_.value(); }
  std::uint64_t probes() const { return probes_.value(); }

  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  void Open(Tick now);
  void Close();

  HealthConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int strikes_ = 0;          // consecutive failures observed while closed
  Tick reopen_at_ = 0;       // open -> half-open transition tick
  int probes_inflight_ = 0;  // half-open probes awaiting an outcome
  int probe_successes_ = 0;
  Counter opens_;
  Counter closes_;
  Counter probes_;
};

}  // namespace fabacus

#endif  // SRC_FLEET_HEALTH_H_
