// Synthetic client traffic for the fleet serving layer (see docs/FLEET.md).
//
// A TrafficGenerator turns a seed plus a TrafficConfig into a deterministic
// request schedule over a kernel mix drawn from the WorkloadRegistry:
//  * open loop  — a Poisson arrival process at a fixed aggregate rate; the
//    whole schedule exists up front, so overload shows up as queueing and
//    shedding rather than back-pressure on the clients.
//  * closed loop — N clients that each keep one request in flight and think
//    (exponentially distributed) between completions; arrival times emerge
//    from the simulation, so the offered load adapts to service latency.
//
// Everything is drawn from one SplitMix64 stream: identical seed + config =>
// identical request ids, clients, workloads and arrival schedule (the fleet
// tests lock this down).
#ifndef SRC_FLEET_TRAFFIC_H_
#define SRC_FLEET_TRAFFIC_H_

#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"
#include "src/workloads/workload.h"

namespace fabacus {

// Service class of a request: what the fleet protects under overload and
// failure (docs/FLEET.md "Fleet fault tolerance"). Ordered best-first so the
// SLO-aware shedder can compare classes numerically.
enum class RequestPriority { kLatency = 0, kThroughput = 1, kBatch = 2 };
constexpr int kNumPriorities = 3;

const char* RequestPriorityName(RequestPriority p);

// One client request: execute one instance of a registry workload somewhere
// in the fleet. The routing/serving fields are filled in as the request moves
// through admission, dispatch and completion.
struct FleetRequest {
  enum class Outcome {
    kPending,
    kServed,
    kShed,    // rejected at admission (no queue slot / priority eviction)
    kFailed,  // accepted but lost: torn by a crash, uncorrectable I/O, timeout
  };

  int id = 0;            // global submission order (generator-assigned)
  int client_id = 0;
  int workload_idx = 0;  // index into TrafficGenerator::mix()
  RequestPriority priority = RequestPriority::kThroughput;
  Tick arrival = 0;

  Outcome outcome = Outcome::kPending;
  int device = -1;       // shard that admitted (or -1 when shed)
  int route_retries = 0; // admission rejections before placement/shedding
  Tick dispatch = 0;     // dequeued from admission into a device batch
  Tick complete = 0;     // device-reported completion (writeback accepted)
  bool slo_violated = false;

  // --- Fault-tolerance lifecycle (managed by FleetSim's serve loop) --------
  int retries = 0;          // fleet-level resubmissions after failures
  bool is_probe = false;    // admitted through a half-open circuit breaker
  bool is_hedge = false;    // this object is a hedged duplicate, not a client
                            // request (excluded from offered/served accounting)
  bool hedged = false;      // a hedge duplicate was issued for this request
  bool cancelled = false;   // lost the first-wins race; completion is ignored
  FleetRequest* hedge_peer = nullptr;  // primary <-> duplicate link
  int queued_on = -1;       // shard whose admission queue holds it (-1: none)
  bool in_flight = false;   // member of a dispatched device batch
};

struct TrafficMixEntry {
  std::string workload;  // registry name, e.g. "ATAX"
  double weight = 1.0;   // relative draw probability
};

struct TrafficConfig {
  enum class Model { kOpenLoop, kClosedLoop };

  Model model = Model::kOpenLoop;
  std::uint64_t seed = 1;
  int num_clients = 8;

  // Open loop: Poisson arrivals at `arrival_rate_per_s` aggregate across the
  // fleet until `total_requests` have been emitted; requests round-robin over
  // the clients.
  double arrival_rate_per_s = 2000.0;
  int total_requests = 128;

  // Closed loop: every client issues `requests_per_client` requests, one at a
  // time, with exponential think time (mean `mean_think_time`) after each
  // completion (or shed).
  int requests_per_client = 8;
  Tick mean_think_time = 500 * kUs;

  // Kernel mix; empty selects a light data-intensive default
  // (ATAX/BICG/MVT/GESUM, equal weights).
  std::vector<TrafficMixEntry> mix;

  // Priority-class shares: each request is latency-class with probability
  // `latency_share`, batch-class with `batch_share`, throughput otherwise.
  // Drawn from a side hash of (seed, request id) — NOT the main stream — so
  // enabling priorities never perturbs the arrival schedule.
  double latency_share = 0.0;
  double batch_share = 0.0;

  // Empty when well-formed, else a description of the first problem.
  std::string Validate() const;
};

const char* TrafficModelName(TrafficConfig::Model m);

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficConfig& config);

  const TrafficConfig& config() const { return config_; }
  // Resolved kernel mix, in config order.
  const std::vector<const Workload*>& mix() const { return mix_; }

  // Open loop: the complete arrival schedule, in arrival order.
  // Closed loop: each client's first request.
  std::vector<FleetRequest> InitialArrivals();

  // Open loop only: emits the next arrival of the exact same schedule
  // InitialArrivals() materializes, one request at a time (O(1) memory for
  // unbounded streams — the million-client path). Returns false once
  // total_requests have been emitted, and always for closed loop. Do not mix
  // with InitialArrivals() on one generator: both walk the same stream.
  bool NextArrival(FleetRequest* out);

  // Closed loop only: the next request of `client` after its previous one
  // finished (served or shed) at `now`. Returns false when the client has
  // issued its full quota (and always for open loop).
  bool NextForClient(int client, Tick now, FleetRequest* out);

  // Requests this generator will emit over its lifetime.
  int total_requests() const;

  // Checkpoint/restore of the generator's stream position: a restored
  // generator continues the same deterministic schedule (ids, workload
  // draws, inter-arrival gaps) exactly where the saved one stopped.
  void SaveState(StateWriter& w) const {
    w.U64(rng_.state());
    w.I32(next_id_);
    w.U64(emitted_per_client_.size());
    for (const int e : emitted_per_client_) {
      w.I32(e);
    }
  }
  void LoadState(StateReader& r) {
    rng_.set_state(r.U64());
    next_id_ = r.I32();
    // The open-loop clock and window counter restart on restore: a resumed
    // fleet serves a fresh total_requests window whose arrivals it offsets
    // by resume_base_, exactly as InitialArrivals() behaves.
    open_clock_ = 0;
    open_emitted_ = 0;
    const std::uint64_t n = r.U64();
    if (r.ok() && n != emitted_per_client_.size()) {
      r.Fail("traffic generator client count mismatch");
      return;
    }
    for (int& e : emitted_per_client_) {
      e = r.I32();
    }
  }

 private:
  FleetRequest MakeRequest(int client, Tick arrival);
  RequestPriority PriorityFor(int id) const;
  int DrawWorkload();
  Tick DrawExponential(double mean_ns);

  TrafficConfig config_;
  std::vector<const Workload*> mix_;
  std::vector<double> cumulative_weight_;  // normalized CDF over the mix
  Rng rng_;
  int next_id_ = 0;
  Tick open_clock_ = 0;   // last open-loop arrival time (streaming path)
  int open_emitted_ = 0;  // arrivals emitted in this window (streaming path)
  std::vector<int> emitted_per_client_;
};

}  // namespace fabacus

#endif  // SRC_FLEET_TRAFFIC_H_
