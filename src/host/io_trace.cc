#include "src/host/io_trace.h"

#include <cstdlib>
#include <sstream>

#include "src/sim/log.h"
#include "src/sim/rng.h"

namespace fabacus {

bool ParseIoTrace(const std::string& text, std::vector<IoTraceEntry>* out,
                  std::string* error) {
  out->clear();
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    double issue_us = 0.0;
    std::string op;
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
    if (!(fields >> issue_us)) {
      continue;  // blank / comment-only line
    }
    if (!(fields >> op >> addr >> bytes) || (op != "R" && op != "W") || issue_us < 0.0) {
      if (error != nullptr) {
        *error = "malformed trace line " + std::to_string(line_no) + ": " + line;
      }
      return false;
    }
    IoTraceEntry e;
    e.issue = static_cast<Tick>(issue_us * 1000.0);
    e.is_write = op == "W";
    e.addr = addr;
    e.bytes = bytes;
    out->push_back(e);
  }
  return true;
}

IoReplayResult ReplayIoTrace(Simulator* sim, Flashvisor* fv,
                             const std::vector<IoTraceEntry>& entries) {
  IoReplayResult result;
  const std::uint64_t group = fv->backbone().config().GroupBytes();
  const std::uint64_t capacity = fv->LogicalCapacityBytes();
  auto latest = std::make_shared<Tick>(0);
  const Tick t0 = sim->Now();

  for (const IoTraceEntry& e : entries) {
    sim->ScheduleAt(t0 + e.issue, [sim, fv, e, group, capacity, &result, latest]() {
      Flashvisor::IoRequest req;
      req.type = e.is_write ? Flashvisor::IoRequest::Type::kWrite
                            : Flashvisor::IoRequest::Type::kRead;
      const std::uint64_t aligned = (e.addr / group * group) % capacity;
      req.flash_addr = aligned;
      req.model_bytes =
          std::min<std::uint64_t>(std::max<std::uint64_t>(e.bytes, 1), capacity - aligned);
      const Tick issued = sim->Now();
      const bool is_write = e.is_write;
      req.on_complete = [issued, is_write, &result, latest](Tick done, IoStatus) {
        const double us = TicksToUs(done - issued);
        if (is_write) {
          result.write_latency_us.Record(us);
          ++result.writes;
        } else {
          result.read_latency_us.Record(us);
          ++result.reads;
        }
        *latest = std::max(*latest, done);
      };
      if (is_write) {
        result.write_mb += static_cast<double>(req.model_bytes) / 1048576.0;
      } else {
        result.read_mb += static_cast<double>(req.model_bytes) / 1048576.0;
      }
      fv->SubmitIo(std::move(req));
    });
  }
  sim->Run();
  result.makespan = *latest > t0 ? *latest - t0 : 0;
  return result;
}

std::vector<IoTraceEntry> SynthesizeIoTrace(int n, std::uint64_t bytes,
                                            double write_fraction,
                                            std::uint64_t span_bytes, Tick inter_arrival,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IoTraceEntry> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    IoTraceEntry e;
    e.issue = static_cast<Tick>(i) * inter_arrival;
    e.is_write = rng.NextDouble() < write_fraction;
    e.addr = rng.NextBelow(span_bytes);
    e.bytes = bytes;
    out.push_back(e);
  }
  return out;
}

}  // namespace fabacus
