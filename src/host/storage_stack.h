// Host storage stack model (paper §2.1, Figure 1b). Reading a file through
// Linux-style I/O costs, per request: a user/kernel mode switch plus file
// system CPU work, the NVMe device time, and a kernel-buffer -> user-buffer
// copy; the application then marshals the data into accelerator-recognisable
// objects (a second host-DRAM copy) before the PCIe download. Every copy
// occupies the host CPU and host DRAM — the dominant time/energy overhead the
// paper measures (49% of execution time, 85% of energy).
#ifndef SRC_HOST_STORAGE_STACK_H_
#define SRC_HOST_STORAGE_STACK_H_

#include <cstdint>
#include <string>

#include "src/core/serial_core.h"
#include "src/core/trace.h"
#include "src/host/nvme_ssd.h"
#include "src/sim/resource.h"
#include "src/sim/time.h"

namespace fabacus {

struct StorageStackConfig {
  std::uint64_t io_request_bytes = 1 << 20;  // stack splits I/O into 1 MB requests
  Tick syscall_overhead = 4 * kUs;           // mode switch + VFS + block layer per request
  double host_memcpy_gb_per_s = 12.8;        // effective single-stream memcpy
  Tick file_open_cost = 30 * kUs;            // prologue: open + allocate
};

// Drives file I/O through the modelled stack. Completion times compose from
// the host CPU (serial), the host DRAM copy engine and the NVMe device.
class StorageStack {
 public:
  StorageStack(SerialCore* host_cpu, NvmeSsd* ssd, RunTrace* trace,
               const StorageStackConfig& config = StorageStackConfig{});

  // File read into a user buffer including the marshalling copy; returns the
  // time the data is ready in host DRAM, object-formatted. `data` nullable.
  Tick ReadFile(Tick now, const std::string& name, std::uint64_t bytes, void* data);

  // User buffer -> file write (mirror path).
  Tick WriteFile(Tick now, const std::string& name, std::uint64_t bytes, const void* data);

  // Prologue cost (paper Fig 3a: open file, allocate resources).
  Tick OpenFile(Tick now);

  double host_cpu_busy_seconds(Tick now) const;
  const StorageStackConfig& config() const { return config_; }

 private:
  SerialCore* cpu_;
  NvmeSsd* ssd_;
  RunTrace* trace_;
  StorageStackConfig config_;
  BandwidthResource memcpy_engine_;
};

}  // namespace fabacus

#endif  // SRC_HOST_STORAGE_STACK_H_
