#include "src/host/offload_runtime.h"

#include "src/sim/log.h"

namespace fabacus {

OffloadRuntime::OffloadRuntime(const FlashAbacusConfig& config, std::uint64_t seed)
    : rng_(seed), device_(std::make_unique<FlashAbacus>(&sim_, config)) {}

OffloadRuntime::~OffloadRuntime() = default;

RunReport OffloadRuntime::Execute(const std::vector<Job>& jobs, SchedulerKind kind) {
  FAB_CHECK(!jobs.empty());
  last_raw_.clear();
  last_workloads_.clear();
  for (std::size_t a = 0; a < jobs.size(); ++a) {
    const Job& job = jobs[a];
    FAB_CHECK(job.workload != nullptr);
    FAB_CHECK_GT(job.instances, 0);
    last_workloads_.push_back(job.workload);
    for (int i = 0; i < job.instances; ++i) {
      owned_.push_back(std::make_unique<AppInstance>(
          static_cast<int>(a), i, &job.workload->spec(), device_->config().model_scale));
      job.workload->Prepare(*owned_.back(), rng_);
      last_raw_.push_back(owned_.back().get());
    }
  }
  for (AppInstance* inst : last_raw_) {
    device_->InstallData(inst, [](Tick) {});
  }
  sim_.Run();

  RunReport result;
  bool done = false;
  device_->Run(last_raw_, kind, [&](RunReport r) {
    result = std::move(r);
    done = true;
  });
  sim_.Run();
  FAB_CHECK(done) << "device run did not complete";
  return result;
}

bool OffloadRuntime::VerifyLast() const {
  for (const AppInstance* inst : last_raw_) {
    const Workload* wl = last_workloads_[static_cast<std::size_t>(inst->app_id())];
    if (!wl->Verify(*inst)) {
      return false;
    }
  }
  return !last_raw_.empty();
}

std::vector<float> OffloadRuntime::ReadBack(AppInstance* inst, int section_idx) {
  std::vector<float> out;
  bool done = false;
  device_->ReadSectionFromFlash(inst, section_idx, &out, [&](Tick) { done = true; });
  sim_.Run();
  FAB_CHECK(done);
  return out;
}

}  // namespace fabacus
