// External NVMe SSD model (Intel SSD 750-class, the paper's SIMD baseline
// storage). Device-level behaviour only: a command queue with per-command
// latency and direction-dependent bandwidth, plus a byte-accurate file
// namespace so workload data really round-trips through the device.
#ifndef SRC_HOST_NVME_SSD_H_
#define SRC_HOST_NVME_SSD_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/mem/byte_store.h"
#include "src/sim/metrics.h"
#include "src/sim/resource.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fabacus {

struct NvmeConfig {
  double read_gb_per_s = 2.4;   // sequential read
  double write_gb_per_s = 1.2;  // sequential write
  Tick command_latency = 100 * kUs;
  std::uint64_t capacity_bytes = 400ULL << 30;
};

class NvmeSsd {
 public:
  explicit NvmeSsd(const NvmeConfig& config = NvmeConfig{});

  // Creates (or truncates) a file of `bytes`; returns false when full.
  bool CreateFile(const std::string& name, std::uint64_t bytes);
  bool HasFile(const std::string& name) const { return files_.count(name) != 0; }
  std::uint64_t FileSize(const std::string& name) const;

  // Pre-populates a file without consuming device time (dataset staging
  // before an experiment starts). The first `data_bytes` come from `data`;
  // the rest of the file is zero.
  void InstallFile(const std::string& name, std::uint64_t file_bytes, const void* data,
                   std::uint64_t data_bytes);

  // Device-time read/write of a file range. `data` may be null (timing only).
  // Returns the command completion time.
  Tick Read(Tick now, const std::string& name, std::uint64_t offset, std::uint64_t bytes,
            void* data);
  Tick Write(Tick now, const std::string& name, std::uint64_t offset, std::uint64_t bytes,
             const void* data);

  const NvmeConfig& config() const { return config_; }
  double bytes_read() const { return bytes_read_; }
  double bytes_written() const { return bytes_written_; }
  std::uint64_t commands() const { return channel_.transfers(); }
  Tick BusyTime(Tick now) const { return channel_.BusyTime(now); }

  // Registers command counter plus byte/busy gauges under `prefix`
  // (e.g. "ssd").
  void RegisterMetrics(MetricsRegistry* reg, const std::string& prefix) const {
    reg->RegisterCounter(prefix + "/commands", &channel_.transfers_counter());
    reg->RegisterGauge(prefix + "/bytes_read", [this](Tick) { return bytes_read_; });
    reg->RegisterGauge(prefix + "/bytes_written", [this](Tick) { return bytes_written_; });
    reg->RegisterGauge(prefix + "/busy_ns",
                       [this](Tick now) { return static_cast<double>(BusyTime(now)); });
  }

 private:
  struct FileExtent {
    std::uint64_t base;
    std::uint64_t bytes;
  };
  const FileExtent& Extent(const std::string& name) const;

  NvmeConfig config_;
  BandwidthResource channel_;
  ByteStore data_;
  std::unordered_map<std::string, FileExtent> files_;
  std::uint64_t alloc_cursor_ = 0;
  double bytes_read_ = 0.0;
  double bytes_written_ = 0.0;
};

}  // namespace fabacus

#endif  // SRC_HOST_NVME_SSD_H_
