#include "src/host/storage_stack.h"

#include <algorithm>
#include <vector>

#include "src/sim/log.h"

namespace fabacus {

StorageStack::StorageStack(SerialCore* host_cpu, NvmeSsd* ssd, RunTrace* trace,
                           const StorageStackConfig& config)
    : cpu_(host_cpu),
      ssd_(ssd),
      trace_(trace),
      config_(config),
      memcpy_engine_("host_dram", config.host_memcpy_gb_per_s) {}

Tick StorageStack::OpenFile(Tick now) {
  const SerialCore::Interval iv = cpu_->Occupy(now, config_.file_open_cost);
  trace_->Add(TraceTag::kHostStack, iv.start, iv.end);
  return iv.end;
}

Tick StorageStack::ReadFile(Tick now, const std::string& name, std::uint64_t bytes,
                            void* data) {
  Tick t = now;
  std::uint64_t offset = 0;
  std::uint8_t* out = static_cast<std::uint8_t*>(data);
  while (offset < bytes) {
    const std::uint64_t n = std::min<std::uint64_t>(config_.io_request_bytes, bytes - offset);
    // 1. Mode switch + VFS/block-layer CPU work.
    const SerialCore::Interval sys = cpu_->Occupy(t, config_.syscall_overhead);
    trace_->Add(TraceTag::kHostStack, sys.start, sys.end);
    // 2. Device DMA into the kernel page cache.
    const Tick dev_done = ssd_->Read(sys.end, name, offset, n, out ? out + offset : nullptr);
    trace_->Add(TraceTag::kSsdOp, sys.end, dev_done);
    // 3. copy_to_user: kernel buffer -> user buffer (CPU + DRAM busy).
    const Tick copy_done = memcpy_engine_.Reserve(dev_done, static_cast<double>(n)).end;
    const SerialCore::Interval cp = cpu_->Occupy(dev_done, copy_done - dev_done);
    trace_->Add(TraceTag::kHostStack, cp.start, cp.end);
    t = std::max(copy_done, cp.end);
    offset += n;
  }
  // 4. Marshalling: reconstruct the raw bytes into accelerator objects —
  // one more pass over the data in host DRAM (paper Fig 1a, step 2).
  const Tick marshal_done = memcpy_engine_.Reserve(t, static_cast<double>(bytes)).end;
  const SerialCore::Interval m = cpu_->Occupy(t, marshal_done - t);
  trace_->Add(TraceTag::kHostStack, m.start, m.end);
  return std::max(marshal_done, m.end);
}

Tick StorageStack::WriteFile(Tick now, const std::string& name, std::uint64_t bytes,
                             const void* data) {
  // Un-marshal (object -> file layout) pass first.
  const Tick unmarshal_done = memcpy_engine_.Reserve(now, static_cast<double>(bytes)).end;
  const SerialCore::Interval um = cpu_->Occupy(now, unmarshal_done - now);
  trace_->Add(TraceTag::kHostStack, um.start, um.end);
  Tick t = std::max(unmarshal_done, um.end);

  std::uint64_t offset = 0;
  const std::uint8_t* in = static_cast<const std::uint8_t*>(data);
  while (offset < bytes) {
    const std::uint64_t n = std::min<std::uint64_t>(config_.io_request_bytes, bytes - offset);
    const SerialCore::Interval sys = cpu_->Occupy(t, config_.syscall_overhead);
    trace_->Add(TraceTag::kHostStack, sys.start, sys.end);
    // copy_from_user then device DMA out of the page cache.
    const Tick copy_done = memcpy_engine_.Reserve(sys.end, static_cast<double>(n)).end;
    const SerialCore::Interval cp = cpu_->Occupy(sys.end, copy_done - sys.end);
    trace_->Add(TraceTag::kHostStack, cp.start, cp.end);
    const Tick dev_done =
        ssd_->Write(std::max(copy_done, cp.end), name, offset, n, in ? in + offset : nullptr);
    trace_->Add(TraceTag::kSsdOp, std::max(copy_done, cp.end), dev_done);
    t = dev_done;
    offset += n;
  }
  return t;
}

double StorageStack::host_cpu_busy_seconds(Tick now) const {
  return TicksToSeconds(cpu_->BusyTime(now));
}

}  // namespace fabacus
