// I/O trace parsing and replay against Flashvisor. A trace is a text file of
// one request per line:
//
//     # comment
//     <issue_us> <R|W> <byte_addr> <bytes>
//
// (blktrace-style, the tool the paper uses for device-level measurements).
// Replay submits each request at its issue time through the normal
// Flashvisor path and collects per-request latency plus device counters —
// useful for studying the FTL under recorded or synthetic access patterns
// without writing a kernel.
#ifndef SRC_HOST_IO_TRACE_H_
#define SRC_HOST_IO_TRACE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/flashvisor.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace fabacus {

struct IoTraceEntry {
  Tick issue = 0;        // ns from trace start
  bool is_write = false;
  std::uint64_t addr = 0;   // logical byte address (group-aligned by replay)
  std::uint64_t bytes = 0;
};

// Parses trace text. Returns false and fills *error on malformed input.
// Lines starting with '#' and blank lines are skipped.
bool ParseIoTrace(const std::string& text, std::vector<IoTraceEntry>* out,
                  std::string* error);

struct IoReplayResult {
  Histogram read_latency_us;
  Histogram write_latency_us;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  Tick makespan = 0;
  double read_mb = 0.0;
  double write_mb = 0.0;
};

// Replays `entries` against `fv`, driving `sim` to completion. Addresses are
// aligned down to page-group boundaries and lengths rounded up; requests
// whose extent exceeds the device's logical capacity are wrapped.
IoReplayResult ReplayIoTrace(Simulator* sim, Flashvisor* fv,
                             const std::vector<IoTraceEntry>& entries);

// Synthesizes a trace: `n` requests of `bytes` each, alternating read/write
// with probability `write_fraction`, addresses uniform over `span_bytes`,
// issued every `inter_arrival` ns. Deterministic from `seed`.
std::vector<IoTraceEntry> SynthesizeIoTrace(int n, std::uint64_t bytes,
                                            double write_fraction,
                                            std::uint64_t span_bytes, Tick inter_arrival,
                                            std::uint64_t seed);

}  // namespace fabacus

#endif  // SRC_HOST_IO_TRACE_H_
