#include "src/host/simd_system.h"

#include <algorithm>
#include <deque>

#include "src/sim/log.h"

namespace fabacus {

struct SimdSystem::RunState {
  std::deque<AppInstance*> pending;
  std::vector<AppInstance*> instances;
  std::function<void(RunReport)> done_cb;
  Tick start_time = 0;
  RunReport result;
  bool finished = false;
};

SimdSystem::~SimdSystem() = default;

SimdSystem::SimdSystem(Simulator* sim, const SimdConfig& config) : sim_(sim), config_(config) {
  FAB_CHECK_GE(config_.num_lwps, 1);
  if (!config_.record_full_trace) {
    trace_.SetMask(kEnergyTraceTags);
  }
  trace_.Reserve(config_.record_full_trace ? 16384 : 1024);
  dram_ = std::make_unique<Dram>(config_.dram);
  tier1_ = std::make_unique<Crossbar>(config_.tier1);
  ssd_ = std::make_unique<NvmeSsd>(config_.nvme);
  host_cpu_ = std::make_unique<SerialCore>("host_cpu");
  stack_ = std::make_unique<StorageStack>(host_cpu_.get(), ssd_.get(), &trace_, config_.stack);
  pcie_ = std::make_unique<BandwidthResource>("simd.pcie", config_.pcie_gb_per_s,
                                              config_.pcie_latency);
  for (int i = 0; i < config_.num_lwps; ++i) {
    lwps_.push_back(
        std::make_unique<Lwp>(i, config_.lwp, dram_.get(), tier1_.get(), config_.cache));
  }
  RegisterMetrics();
}

void SimdSystem::RegisterMetrics() {
  for (const auto& l : lwps_) {
    l->RegisterMetrics(&metrics_, "lwp/" + std::to_string(l->id()));
  }
  dram_->RegisterMetrics(&metrics_, "dram");
  tier1_->RegisterMetrics(&metrics_, "noc/tier1");
  ssd_->RegisterMetrics(&metrics_, "ssd");
  metrics_.RegisterGauge("host_cpu/busy_ns", [this](Tick now) {
    return static_cast<double>(host_cpu_->BusyTime(now));
  });
  metrics_.RegisterGauge("host_cpu/utilization",
                         [this](Tick now) { return host_cpu_->Utilization(now); });
  metrics_.RegisterCounter("pcie/transfers", &pcie_->transfers_counter());
  metrics_.RegisterGauge("pcie/bytes_moved", [this](Tick) { return pcie_->bytes_moved(); });
  metrics_.RegisterGauge("pcie/busy_ns", [this](Tick now) {
    return static_cast<double>(pcie_->BusyTime(now));
  });
}

std::string SimdSystem::FileName(const AppInstance& inst, int section_idx) {
  return "app" + std::to_string(inst.app_id()) + "_i" + std::to_string(inst.instance_id()) +
         "_s" + std::to_string(section_idx);
}

std::uint64_t SimdSystem::SectionModelBytes(const AppInstance& inst,
                                            const DataSection& s) const {
  (void)this;
  std::uint64_t func_bytes = 0;
  if (s.spec->buffer_index >= 0) {
    func_bytes = inst.buffer(s.spec->buffer_index).size() * sizeof(float);
  }
  const double model = inst.model_input_bytes() * s.spec->model_fraction;
  return std::max<std::uint64_t>(std::max<std::uint64_t>(static_cast<std::uint64_t>(model),
                                                         func_bytes),
                                 1);
}

void SimdSystem::InstallData(AppInstance* inst) {
  inst->sections().clear();
  int idx = 0;
  for (const DataSectionSpec& spec : inst->spec().sections) {
    DataSection s;
    s.spec = &spec;
    s.flash_addr = 0;  // unused on the SIMD path: data is file-addressed
    std::uint64_t func_bytes = 0;
    const void* payload = nullptr;
    if (spec.buffer_index >= 0) {
      func_bytes = inst->buffer(spec.buffer_index).size() * sizeof(float);
      payload = inst->buffer(spec.buffer_index).data();
    }
    const double model = inst->model_input_bytes() * spec.model_fraction;
    s.model_bytes = std::max<std::uint64_t>(
        std::max<std::uint64_t>(static_cast<std::uint64_t>(model), func_bytes), 1);
    const std::string name = FileName(*inst, idx);
    // Input files carry the functional prefix; output files start zeroed.
    const bool carries = spec.dir == DataSectionSpec::Dir::kIn && payload != nullptr;
    ssd_->InstallFile(name, s.model_bytes, carries ? payload : nullptr,
                      carries ? func_bytes : 0);
    inst->sections().push_back(s);
    ++idx;
  }
}

void SimdSystem::Run(std::vector<AppInstance*> instances, std::function<void(RunReport)> done) {
  FAB_CHECK(run_ == nullptr || run_->finished);
  FAB_CHECK(!instances.empty());
  run_ = std::make_unique<RunState>();
  RunState* rs = run_.get();
  rs->instances = instances;
  rs->done_cb = std::move(done);
  rs->start_time = sim_->Now();
  rs->result.system = "SIMD";
  for (AppInstance* inst : instances) {
    inst->submit_time = sim_->Now();
    rs->pending.push_back(inst);
  }
  RunNextInstance(rs);
}

void SimdSystem::RunNextInstance(RunState* rs) {
  if (rs->pending.empty()) {
    rs->finished = true;
    FinalizeResult(rs);
    if (rs->done_cb) {
      rs->done_cb(std::move(rs->result));
    }
    return;
  }
  AppInstance* inst = rs->pending.front();
  rs->pending.pop_front();

  // Prologue: open files, allocate SSD + accelerator memory (Fig 3a).
  Tick t = stack_->OpenFile(sim_->Now());

  // Body, input half: read every input section through the storage stack,
  // then download it to the accelerator over PCIe. Strictly serialized.
  double total_model_bytes = 0.0;
  for (std::size_t i = 0; i < inst->sections().size(); ++i) {
    DataSection& s = inst->sections()[i];
    if (s.spec->dir != DataSectionSpec::Dir::kIn) {
      continue;
    }
    const std::string name = FileName(*inst, static_cast<int>(i));
    std::uint64_t func_bytes = 0;
    void* payload = nullptr;
    if (s.spec->buffer_index >= 0) {
      func_bytes = inst->buffer(s.spec->buffer_index).size() * sizeof(float);
      payload = inst->buffer(s.spec->buffer_index).data();
    }
    // Functional prefix carries data; the tail is timing-only.
    if (func_bytes > 0) {
      t = stack_->ReadFile(t, name, func_bytes, payload);
    }
    if (s.model_bytes > func_bytes) {
      t = stack_->ReadFile(t, name, s.model_bytes - func_bytes, nullptr);
    }
    total_model_bytes += static_cast<double>(s.model_bytes);
  }
  // PCIe download into accelerator DDR3L.
  const BandwidthResource::Reservation pcie = pcie_->Reserve(t, total_model_bytes);
  trace_.Add(TraceTag::kPcieXfer, pcie.start, pcie.end);
  const Tick in_dram = dram_->BulkAccess(pcie.end, total_model_bytes);

  inst->load_done_time = in_dram;
  sim_->ScheduleAt(in_dram, [this, rs, inst]() { RunMicroblock(rs, inst, 0, sim_->Now()); });
}

void SimdSystem::RunMicroblock(SimdSystem::RunState* rs, AppInstance* inst, int mblk,
                               Tick ready) {
  const MicroblockSpec& spec = inst->spec().microblocks[static_cast<std::size_t>(mblk)];
  const int fanout = spec.serial ? 1 : static_cast<int>(lwps_.size());
  Tick barrier = ready;
  for (int s = 0; s < fanout; ++s) {
    const ScreenWork work = ComputeScreenWork(*inst, mblk, s, fanout);
    const Lwp::ScreenTiming t = lwps_[static_cast<std::size_t>(s)]->ExecuteScreen(ready, work);
    trace_.Add(TraceTag::kLwpCompute, t.start, t.end, t.avg_fus_busy, s);
    barrier = std::max(barrier, t.end);
  }
  sim_->ScheduleAt(barrier, [this, rs, inst, mblk, fanout]() {
    const MicroblockSpec& m = inst->spec().microblocks[static_cast<std::size_t>(mblk)];
    if (m.body) {
      // OpenMP-style: the fork-join ran to the barrier; apply the whole
      // microblock's functional effect now, slice by slice.
      for (int s = 0; s < fanout; ++s) {
        std::size_t begin = 0;
        std::size_t end = 0;
        ScreenFuncRange(*inst, mblk, s, fanout, &begin, &end);
        m.body(*inst, begin, end);
      }
    }
    if (mblk + 1 < inst->spec().num_microblocks()) {
      RunMicroblock(rs, inst, mblk + 1, sim_->Now());
    } else {
      FinishCompute(rs, inst, sim_->Now());
    }
  });
}

void SimdSystem::FinishCompute(SimdSystem::RunState* rs, AppInstance* inst, Tick when) {
  inst->compute_done_time = when;
  // Body, output half: upload results over PCIe, write them back through the
  // storage stack (epilogue closes the files; folded into the write cost).
  double out_bytes = 0.0;
  for (const DataSection& s : inst->sections()) {
    if (s.spec->dir == DataSectionSpec::Dir::kOut) {
      out_bytes += static_cast<double>(s.model_bytes);
    }
  }
  Tick t = when;
  if (out_bytes > 0.0) {
    const Tick from_dram = dram_->BulkAccess(when, out_bytes);
    const BandwidthResource::Reservation pcie = pcie_->Reserve(from_dram, out_bytes);
    trace_.Add(TraceTag::kPcieXfer, pcie.start, pcie.end);
    t = pcie.end;
    for (std::size_t i = 0; i < inst->sections().size(); ++i) {
      const DataSection& s = inst->sections()[i];
      if (s.spec->dir != DataSectionSpec::Dir::kOut) {
        continue;
      }
      const std::string name = FileName(*inst, static_cast<int>(i));
      std::uint64_t func_bytes = 0;
      const void* payload = nullptr;
      if (s.spec->buffer_index >= 0) {
        func_bytes = inst->buffer(s.spec->buffer_index).size() * sizeof(float);
        payload = inst->buffer(s.spec->buffer_index).data();
      }
      if (func_bytes > 0) {
        t = stack_->WriteFile(t, name, func_bytes, payload);
      }
      if (s.model_bytes > func_bytes) {
        t = stack_->WriteFile(t, name, s.model_bytes - func_bytes, nullptr);
      }
    }
  }
  sim_->ScheduleAt(t, [this, rs, inst]() {
    inst->complete_time = sim_->Now();
    inst->done = true;
    rs->result.completion_times.push_back(sim_->Now() - rs->start_time);
    rs->result.kernel_latency_ms.Record(TicksToMs(sim_->Now() - inst->submit_time));
    RunNextInstance(rs);
  });
}

void SimdSystem::ReadSectionFromSsd(AppInstance* inst, int section_idx,
                                    std::vector<float>* out) {
  const DataSection& s = inst->sections().at(static_cast<std::size_t>(section_idx));
  std::uint64_t func_bytes = 0;
  if (s.spec->buffer_index >= 0) {
    func_bytes = inst->buffer(s.spec->buffer_index).size() * sizeof(float);
  }
  out->assign(func_bytes / sizeof(float), 0.0f);
  ssd_->Read(sim_->Now(), FileName(*inst, section_idx), 0, func_bytes, out->data());
}

void SimdSystem::FinalizeResult(SimdSystem::RunState* rs) {
  RunReport& res = rs->result;
  const Tick end = sim_->Now();
  res.metrics = metrics_.Snapshot(end);
  res.makespan = end - rs->start_time;
  double input_bytes = 0.0;
  for (const AppInstance* inst : rs->instances) {
    input_bytes += inst->model_input_bytes();
  }
  res.input_bytes = input_bytes;
  res.throughput_mb_s =
      res.makespan == 0 ? 0.0
                        : input_bytes / (1024.0 * 1024.0) / TicksToSeconds(res.makespan);
  double util = 0.0;
  for (const auto& l : lwps_) {
    util += l->Utilization(end);
  }
  res.worker_utilization = lwps_.empty() ? 0.0 : util / static_cast<double>(lwps_.size());

  // Scope the trace to this run.
  res.trace = trace_.Window(rs->start_time, end);

  // ---- Energy: host + accelerator + external SSD ----
  const PowerModel& p = config_.power;
  EnergyMeter& e = res.energy;
  const Tick T = res.makespan;

  const Tick cpu_busy = std::min(host_cpu_->BusyTime(end), T);
  e.AddActive(EnergyBucket::kDataMovement, "host_cpu", p.host_cpu_active_w, 0, cpu_busy);
  e.AddStatic(EnergyBucket::kDataMovement, "host_cpu", p.host_cpu_idle_w, T - cpu_busy);

  const Tick dram_host_busy = std::min(res.trace.UnionTime(TraceTag::kHostStack), T);
  e.AddActive(EnergyBucket::kDataMovement, "host_dram", p.host_dram_active_w, 0,
              dram_host_busy);
  e.AddStatic(EnergyBucket::kDataMovement, "host_dram", p.host_dram_idle_w,
              T - dram_host_busy);

  const Tick pcie_busy = std::min(res.trace.UnionTime(TraceTag::kPcieXfer), T);
  e.AddActive(EnergyBucket::kDataMovement, "pcie", p.pcie_active_w, 0, pcie_busy);
  e.AddStatic(EnergyBucket::kDataMovement, "pcie", p.pcie_idle_w, T - pcie_busy);

  const Tick ssd_busy = std::min(res.trace.UnionTime(TraceTag::kSsdOp), T);
  e.AddActive(EnergyBucket::kStorageAccess, "nvme", p.nvme_active_w, 0, ssd_busy);
  e.AddStatic(EnergyBucket::kStorageAccess, "nvme", p.nvme_idle_w, T - ssd_busy);

  for (const auto& l : lwps_) {
    const Tick busy = std::min(l->BusyTime(end), T);
    e.AddActive(EnergyBucket::kComputation, "lwp", p.lwp_active_w, 0, busy);
    e.AddStatic(EnergyBucket::kComputation, "lwp", p.lwp_idle_w, T - busy);
  }
  const Tick dram_busy = std::min(dram_->BusyTime(end), T);
  e.AddActive(EnergyBucket::kComputation, "ddr3l", p.ddr3l_active_w, 0, dram_busy);
  e.AddStatic(EnergyBucket::kComputation, "ddr3l", p.ddr3l_idle_w, T - dram_busy);
}

}  // namespace fabacus
