// Host-side offload runtime: the small user-level library an application
// links against to use a FlashAbacus device (the analogue of the
// "accelerator runtime" box in the paper's Figure 1b — except that here it
// only stages data and offloads kernel description tables; there is no I/O
// runtime and no file system, because the device self-governs storage).
//
// The runtime owns the simulator and device and exposes a synchronous
// convenience API: declare jobs, Execute() them under a scheduler, inspect
// and verify the results. Examples and tests use it to avoid simulator
// plumbing; lower-level control remains available through device().
#ifndef SRC_HOST_OFFLOAD_RUNTIME_H_
#define SRC_HOST_OFFLOAD_RUNTIME_H_

#include <memory>
#include <vector>

#include "src/core/flashabacus.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/workloads/workload.h"

namespace fabacus {

class OffloadRuntime {
 public:
  struct Job {
    const Workload* workload = nullptr;
    int instances = 1;
  };

  explicit OffloadRuntime(const FlashAbacusConfig& config = FlashAbacusConfig{},
                          std::uint64_t seed = 42);
  ~OffloadRuntime();
  OffloadRuntime(const OffloadRuntime&) = delete;
  OffloadRuntime& operator=(const OffloadRuntime&) = delete;

  // Prepares the jobs' instances (app_id = job index), installs their data
  // on flash, executes them under `kind`, and returns when everything has
  // completed. Can be called repeatedly; each call appends fresh instances.
  RunReport Execute(const std::vector<Job>& jobs, SchedulerKind kind);

  // Instances created by the most recent Execute().
  const std::vector<AppInstance*>& last_instances() const { return last_raw_; }

  // Verifies every instance of the most recent Execute() against its
  // workload's reference implementation.
  bool VerifyLast() const;

  // Reads an output section of one of the last instances back from flash
  // (synchronously drives the simulator).
  std::vector<float> ReadBack(AppInstance* inst, int section_idx);

  // Host-visible reliability tallies (see FlashAbacus::SubmitIoReliable):
  // uncorrectable completions that were resubmitted, and requests that
  // exhausted their attempts (or hit a program failure) and surfaced as-is.
  std::uint64_t io_retries() const { return device_->io_retries(); }
  std::uint64_t io_failures() const { return device_->io_failures(); }

  FlashAbacus& device() { return *device_; }
  Simulator& sim() { return sim_; }

 private:
  Simulator sim_;
  Rng rng_;
  std::unique_ptr<FlashAbacus> device_;
  std::vector<std::unique_ptr<AppInstance>> owned_;
  std::vector<AppInstance*> last_raw_;
  std::vector<const Workload*> last_workloads_;  // parallel to app ids
};

}  // namespace fabacus

#endif  // SRC_HOST_OFFLOAD_RUNTIME_H_
