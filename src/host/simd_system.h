// The conventional heterogeneous-computing baseline ("SIMD", paper §5):
// the same 8-LWP low-power accelerator, but driven by a host through the
// discrete software stacks of Figure 1 — data lives on an external NVMe SSD,
// every kernel follows the prologue/body/epilogue model of Figure 3a, and
// execution is OpenMP-style data-parallel: one kernel at a time, each
// non-serial microblock fanned out across all LWPs with a barrier, serial
// microblocks on a single LWP. No overlap between I/O and compute.
#ifndef SRC_HOST_SIMD_SYSTEM_H_
#define SRC_HOST_SIMD_SYSTEM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/flashabacus.h"
#include "src/core/kernel.h"
#include "src/core/lwp.h"
#include "src/core/serial_core.h"
#include "src/core/trace.h"
#include "src/host/nvme_ssd.h"
#include "src/host/storage_stack.h"
#include "src/mem/dram.h"
#include "src/noc/crossbar.h"
#include "src/power/power_model.h"
#include "src/sim/metrics.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace fabacus {

struct SimdConfig {
  int num_lwps = 8;  // all LWPs are workers (no self-governing firmware)
  LwpConfig lwp;
  CacheConfig cache;
  DramConfig dram;
  CrossbarConfig tier1{.name = "simd.tier1",
                       .ports = 12,
                       .port_gb_per_s = 16.0,
                       .fabric_gb_per_s = 16.0,
                       .hop_latency = 10};
  NvmeConfig nvme;
  StorageStackConfig stack;
  double pcie_gb_per_s = 1.0;
  Tick pcie_latency = 1 * kUs;
  double model_scale = 1.0 / 16.0;
  // Same semantics as FlashAbacusConfig::record_full_trace: full interval
  // trace for Chrome-trace/Fig-15 runs, energy-model tags only otherwise.
  bool record_full_trace = false;
  PowerModel power;
};

class SimdSystem {
 public:
  explicit SimdSystem(Simulator* sim, const SimdConfig& config = SimdConfig{});
  ~SimdSystem();
  SimdSystem(const SimdSystem&) = delete;
  SimdSystem& operator=(const SimdSystem&) = delete;

  // Stages the instance's input sections as files on the NVMe SSD and
  // creates (empty) output files. No simulated time elapses.
  void InstallData(AppInstance* inst);

  // Executes the instances in submission order (strictly serial body loops);
  // `done` receives the populated RunReport.
  void Run(std::vector<AppInstance*> instances, std::function<void(RunReport)> done);

  // Reads an output section's file contents (for end-to-end verification).
  void ReadSectionFromSsd(AppInstance* inst, int section_idx, std::vector<float>* out);

  static std::string FileName(const AppInstance& inst, int section_idx);

  NvmeSsd& ssd() { return *ssd_; }
  RunTrace& trace() { return trace_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const SimdConfig& config() const { return config_; }
  int num_lwps() const { return static_cast<int>(lwps_.size()); }

 private:
  struct RunState;

  void RunNextInstance(RunState* rs);
  void RunMicroblock(RunState* rs, AppInstance* inst, int mblk, Tick ready);
  void FinishCompute(RunState* rs, AppInstance* inst, Tick when);
  std::uint64_t SectionModelBytes(const AppInstance& inst, const DataSection& s) const;
  void FinalizeResult(RunState* rs);
  void RegisterMetrics();

  Simulator* sim_;
  SimdConfig config_;
  std::unique_ptr<Dram> dram_;
  std::unique_ptr<Crossbar> tier1_;
  std::unique_ptr<NvmeSsd> ssd_;
  std::unique_ptr<SerialCore> host_cpu_;
  std::unique_ptr<StorageStack> stack_;
  std::unique_ptr<BandwidthResource> pcie_;
  std::vector<std::unique_ptr<Lwp>> lwps_;
  RunTrace trace_;
  MetricsRegistry metrics_;
  std::unique_ptr<RunState> run_;
};

}  // namespace fabacus

#endif  // SRC_HOST_SIMD_SYSTEM_H_
