#include "src/host/nvme_ssd.h"

#include "src/sim/log.h"

namespace fabacus {

NvmeSsd::NvmeSsd(const NvmeConfig& config)
    : config_(config),
      channel_("nvme", config.read_gb_per_s, config.command_latency),
      data_(1 << 20) {}

bool NvmeSsd::CreateFile(const std::string& name, std::uint64_t bytes) {
  if (alloc_cursor_ + bytes > config_.capacity_bytes) {
    return false;
  }
  auto it = files_.find(name);
  if (it != files_.end()) {
    // Truncate-in-place when it fits; otherwise reallocate at the cursor.
    if (bytes <= it->second.bytes) {
      it->second.bytes = bytes;
      return true;
    }
    files_.erase(it);
  }
  files_[name] = FileExtent{alloc_cursor_, bytes};
  alloc_cursor_ += bytes;
  return true;
}

std::uint64_t NvmeSsd::FileSize(const std::string& name) const { return Extent(name).bytes; }

void NvmeSsd::InstallFile(const std::string& name, std::uint64_t file_bytes, const void* data,
                          std::uint64_t data_bytes) {
  FAB_CHECK(CreateFile(name, file_bytes)) << "NVMe capacity exhausted installing " << name;
  FAB_CHECK_LE(data_bytes, file_bytes);
  if (data != nullptr && data_bytes > 0) {
    data_.Write(Extent(name).base, data, data_bytes);
  }
}

const NvmeSsd::FileExtent& NvmeSsd::Extent(const std::string& name) const {
  auto it = files_.find(name);
  FAB_CHECK(it != files_.end()) << "no such file: " << name;
  return it->second;
}

Tick NvmeSsd::Read(Tick now, const std::string& name, std::uint64_t offset,
                   std::uint64_t bytes, void* data) {
  const FileExtent& ext = Extent(name);
  FAB_CHECK_LE(offset + bytes, ext.bytes) << "read past EOF of " << name;
  const Tick done = channel_.Reserve(now, static_cast<double>(bytes)).end;
  if (data != nullptr) {
    data_.Read(ext.base + offset, data, bytes);
  }
  bytes_read_ += static_cast<double>(bytes);
  return done;
}

Tick NvmeSsd::Write(Tick now, const std::string& name, std::uint64_t offset,
                    std::uint64_t bytes, const void* data) {
  const FileExtent& ext = Extent(name);
  FAB_CHECK_LE(offset + bytes, ext.bytes) << "write past EOF of " << name;
  // One shared channel: writes occupy it proportionally longer.
  const double scaled =
      static_cast<double>(bytes) * config_.read_gb_per_s / config_.write_gb_per_s;
  const Tick done = channel_.Reserve(now, scaled).end;
  if (data != nullptr) {
    data_.Write(ext.base + offset, data, bytes);
  }
  bytes_written_ += static_cast<double>(bytes);
  return done;
}

}  // namespace fabacus
