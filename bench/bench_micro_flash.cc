// google-benchmark microbenchmarks for the flash backbone: host-side cost of
// driving group reads/programs/erases (simulation bookkeeping throughput —
// how many device ops per wall-second the DES can push).
#include <benchmark/benchmark.h>

#include <vector>

#include "src/flash/flash_backbone.h"

namespace fabacus {
namespace {

NandConfig BenchNand() {
  NandConfig cfg;
  cfg.blocks_per_plane = 128;
  cfg.pages_per_block = 64;
  return cfg;
}

void BM_ReadGroupTimingOnly(benchmark::State& state) {
  FlashBackbone bb(BenchNand());
  std::uint64_t g = 0;
  const std::uint64_t total = bb.config().TotalGroups();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb.ReadGroup(0, g, nullptr).done);
    g = (g + 1) % total;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadGroupTimingOnly);

void BM_ReadGroupWithData(benchmark::State& state) {
  FlashBackbone bb(BenchNand());
  std::vector<std::uint8_t> buf(bb.config().GroupBytes());
  bb.ProgramGroup(0, 0, buf.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb.ReadGroup(0, 0, buf.data()).done);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bb.config().GroupBytes()));
}
BENCHMARK(BM_ReadGroupWithData);

void BM_ProgramEraseCycle(benchmark::State& state) {
  FlashBackbone bb(BenchNand());
  const int pages = bb.config().pages_per_block;
  const int pkgs = bb.config().packages_per_channel;
  for (auto _ : state) {
    for (int p = 0; p < pages * pkgs; ++p) {
      // Block 1, all slots in flat order (page-major across packages).
      const std::uint64_t g = static_cast<std::uint64_t>(bb.config().pages_per_block) *
                                  pkgs +  // block 1 base
                              static_cast<std::uint64_t>(p);
      bb.ProgramGroup(0, g, nullptr);
    }
    bb.EraseBlockGroup(0, 1);
  }
  state.SetItemsProcessed(state.iterations() * (pages * pkgs + 1));
}
BENCHMARK(BM_ProgramEraseCycle);

}  // namespace
}  // namespace fabacus

BENCHMARK_MAIN();
