// google-benchmark microbenchmarks for the FTL hot paths: mapping-table
// lookups/updates, snapshot serialization, and the Flashvisor write
// allocation path (including block sealing).
#include <benchmark/benchmark.h>

#include "src/core/flashvisor.h"
#include "src/core/mapping_table.h"
#include "src/flash/flash_backbone.h"
#include "src/mem/scratchpad.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

NandConfig SmallNand() {
  NandConfig cfg;
  cfg.blocks_per_plane = 64;
  cfg.pages_per_block = 64;
  return cfg;
}

void BM_MappingLookup(benchmark::State& state) {
  NandConfig nand = SmallNand();
  Scratchpad spm(ScratchpadConfig{});
  MappingTable map(nand, &spm);
  const std::uint64_t n = nand.TotalGroups();
  for (std::uint64_t g = 0; g < n; ++g) {
    map.Update(g, static_cast<std::uint32_t>((g * 7) % n));
  }
  std::uint64_t g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Lookup(g));
    g = (g + 13) % n;
  }
}
BENCHMARK(BM_MappingLookup);

void BM_MappingUpdate(benchmark::State& state) {
  NandConfig nand = SmallNand();
  Scratchpad spm(ScratchpadConfig{});
  MappingTable map(nand, &spm);
  const std::uint64_t n = nand.TotalGroups();
  std::uint64_t g = 0;
  for (auto _ : state) {
    map.Update(g % n, static_cast<std::uint32_t>((g * 31 + 7) % n));
    ++g;
  }
}
BENCHMARK(BM_MappingUpdate);

void BM_MappingSnapshot(benchmark::State& state) {
  NandConfig nand = SmallNand();
  Scratchpad spm(ScratchpadConfig{});
  MappingTable map(nand, &spm);
  for (std::uint64_t g = 0; g < nand.TotalGroups(); g += 3) {
    map.Update(g, static_cast<std::uint32_t>(g));
  }
  std::vector<std::uint8_t> snap;
  for (auto _ : state) {
    map.Snapshot(&snap);
    benchmark::DoNotOptimize(snap.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(map.table_bytes()));
}
BENCHMARK(BM_MappingSnapshot);

void BM_FlashvisorWritePath(benchmark::State& state) {
  // Host-side cost of the full synchronous write-allocation machinery:
  // allocation, mapping update, validity bookkeeping, group program
  // reservation (simulation bookkeeping only — no wall-clock flash latency).
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    NandConfig nand = SmallNand();
    FlashBackbone backbone(nand);
    DramConfig dc;
    Dram dram(dc);
    Scratchpad spm(ScratchpadConfig{});
    Flashvisor fv(&sim, &backbone, &dram, &spm);
    state.ResumeTiming();
    for (int g = 0; g < 512; ++g) {
      Tick io = 0;
      const std::uint32_t phys = fv.AllocatePhysicalGroup(0, &io);
      fv.mapping().Update(static_cast<std::uint64_t>(g), phys);
      fv.blocks().MarkValid(fv.BlockGroupOf(phys), fv.SlotOf(phys));
      benchmark::DoNotOptimize(phys);
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FlashvisorWritePath);

}  // namespace
}  // namespace fabacus

BENCHMARK_MAIN();
