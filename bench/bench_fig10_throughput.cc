// Figure 10: data-processing throughput of the five accelerated systems.
//  (a) homogeneous workloads — 6 instances of each PolyBench kernel;
//  (b) heterogeneous workloads MX1-MX14 — 24 instances (4 per app).
// Prints MB/s per system plus the IntraO3/SIMD improvement; the paper
// reports IntraO3 outperforming SIMD by 127% on average across all
// workloads (144% on data-intensive homogeneous workloads).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace fabacus {
namespace {

void RunHomogeneous(BenchJson* json) {
  const std::vector<const Workload*> kernels = WorkloadRegistry::Get().polybench();
  BenchSweep sweep;
  std::vector<std::size_t> first;
  for (const Workload* wl : kernels) {
    first.push_back(sweep.AddAllSystems({wl}, 6));
  }
  sweep.Run();

  PrintHeader("Fig 10a: throughput, homogeneous workloads (MB/s; 6 instances each)");
  PrintRow({"workload", "SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3", "O3/SIMD",
            "verified"});
  double geo_accum = 0.0;
  int count = 0;
  double data_accum = 0.0;
  int data_count = 0;
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const Workload* wl = kernels[k];
    const std::vector<BenchRun> runs = sweep.TakeSystems(first[k]);
    std::vector<std::string> row{wl->name()};
    bool verified = true;
    for (const BenchRun& r : runs) {
      row.push_back(Fmt(r.result.throughput_mb_s));
      verified = verified && r.verified;
      json->AddRun(wl->name(), r);
    }
    const double ratio = runs[4].result.throughput_mb_s / runs[0].result.throughput_mb_s;
    row.push_back(Fmt(ratio, 2) + "x");
    row.push_back(verified ? "yes" : "NO");
    PrintRow(row);
    geo_accum += ratio;
    ++count;
    if (!wl->compute_intensive()) {
      data_accum += ratio;
      ++data_count;
    }
  }
  std::printf("\nIntraO3 vs SIMD, mean speedup: %.2fx (paper: 127%% improvement overall)\n",
              geo_accum / count);
  std::printf("IntraO3 vs SIMD, data-intensive mean: %.2fx (paper: 144%% improvement)\n",
              data_accum / data_count);
}

void RunHeterogeneous(BenchJson* json) {
  BenchSweep sweep;
  std::vector<std::size_t> first;
  for (int m = 1; m <= WorkloadRegistry::kNumMixes; ++m) {
    first.push_back(sweep.AddAllSystems(WorkloadRegistry::Get().Mix(m), 4));
  }
  sweep.Run();

  PrintHeader("Fig 10b: throughput, heterogeneous workloads (MB/s; 24 instances, 4/app)");
  PrintRow({"mix", "SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3", "O3/SIMD",
            "verified"});
  double dy_vs_st = 0.0;
  double o3_vs_dy = 0.0;
  for (int m = 1; m <= WorkloadRegistry::kNumMixes; ++m) {
    const std::vector<BenchRun> runs = sweep.TakeSystems(first[static_cast<std::size_t>(m - 1)]);
    std::vector<std::string> row{"MX" + std::to_string(m)};
    bool verified = true;
    for (const BenchRun& r : runs) {
      row.push_back(Fmt(r.result.throughput_mb_s));
      verified = verified && r.verified;
      json->AddRun("MX" + std::to_string(m), r);
    }
    row.push_back(Fmt(runs[4].result.throughput_mb_s / runs[0].result.throughput_mb_s, 2) +
                  "x");
    row.push_back(verified ? "yes" : "NO");
    PrintRow(row);
    dy_vs_st += runs[3].result.throughput_mb_s / runs[1].result.throughput_mb_s;
    o3_vs_dy += runs[4].result.throughput_mb_s / runs[3].result.throughput_mb_s;
  }
  std::printf("\nInterDy vs InterSt, mean: %.2fx (paper: 177%% better)\n",
              dy_vs_st / WorkloadRegistry::kNumMixes);
  std::printf("IntraO3 vs InterDy, mean: %.2fx (paper: 15%% better)\n",
              o3_vs_dy / WorkloadRegistry::kNumMixes);
}

}  // namespace
}  // namespace fabacus

int main() {
  fabacus::BenchJson json("bench_fig10_throughput");
  fabacus::RunHomogeneous(&json);
  fabacus::RunHeterogeneous(&json);
  return 0;
}
