// Ablation: the power/sleep controller (paper §4, "Execution": Flashvisor
// parks LWPs through the PSC around kernel boots). With the PSC policy,
// workers idle beyond a threshold drop to deep-sleep power; without it they
// burn idle power for the whole run. The effect is largest when the device
// is under-subscribed (fewer kernels than workers).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/host/offload_runtime.h"

int main() {
  using namespace fabacus;
  PrintHeader("Ablation: PSC sleep states — energy vs kernels in flight (ATAX)");
  PrintRow({"kernels", "E with PSC (J)", "E no PSC (J)", "saved"}, 18);
  const Workload* wl = WorkloadRegistry::Get().Find("ATAX");
  const std::vector<int> points = {1, 2, 4, 6};
  // Two jobs per point (with/without PSC); each builds its own runtime.
  std::vector<std::function<RunReport()>> jobs;
  for (int kernels : points) {
    jobs.emplace_back([wl, kernels] {
      FlashAbacusConfig with_psc;
      with_psc.lwp.psc_sleep_threshold = 50 * kUs;
      OffloadRuntime rt(with_psc);
      return rt.Execute({{wl, kernels}}, SchedulerKind::kInterDynamic);
    });
    jobs.emplace_back([wl, kernels] {
      FlashAbacusConfig no_psc;
      no_psc.lwp.psc_sleep_threshold = 1000 * kSec;  // never sleep
      OffloadRuntime rt(no_psc);
      return rt.Execute({{wl, kernels}}, SchedulerKind::kInterDynamic);
    });
  }
  const std::vector<RunReport> reports = SweepRunner().Run(std::move(jobs));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RunReport& ra = reports[2 * i];
    const RunReport& rb = reports[2 * i + 1];
    PrintRow({Fmt(points[i], 0), Fmt(ra.EnergySummary().total_j, 3), Fmt(rb.EnergySummary().total_j, 3),
              Fmt((1.0 - ra.EnergySummary().total_j / rb.EnergySummary().total_j) * 100.0, 1) + "%"},
             18);
  }
  BenchJson json("bench_ablation_psc");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RunReport& ra = reports[2 * i];
    const RunReport& rb = reports[2 * i + 1];
    json.AddScalarRow("kernels" + std::to_string(points[i]), "InterDy",
                      {{"kernels", static_cast<double>(points[i])},
                       {"energy_with_psc_j", ra.EnergySummary().total_j},
                       {"energy_no_psc_j", rb.EnergySummary().total_j},
                       {"saved_frac",
                        1.0 - ra.EnergySummary().total_j / rb.EnergySummary().total_j}});
  }
  std::printf("\nIdle workers sleep when the device is under-subscribed; at full\n"
              "subscription (6 kernels on 6 workers) the PSC has little left to save.\n");
  return 0;
}
