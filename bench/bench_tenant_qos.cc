// bench_tenant_qos: multi-tenant QoS ablation (docs/QOS.md).
//
// Two scenarios, each run under the paper-default arbitration and the
// weighted-fair tenant scheduler, across the four paper scheduling policies:
//
//  1. Noisy neighbor — a fleet of compute/write-heavy "bully" kernels
//     (tenant 0) contends with a small latency-sensitive "probe" tenant
//     (tenant 1, latency class). The headline metric is the probe's p99
//     kernel latency relative to its solo (uncontended) p99: the paper
//     schedulers are FIFO and let the bullies starve the probe; the
//     weighted-fair scheduler prefers the latency class at every dispatch
//     and preemption point.
//  2. Fair share — three tenants with weights 1/2/4 running the same
//     workload; Jain's index over the weighted throughput rates shows
//     convergence to the configured shares under weighted-fair.
//
// Machine-parsable output:
//     PERF <metric> <label> <value>
// Gates (each skipped with a note when unset):
//     FABACUS_TENANT_P99_GATE   — max allowed probe p99 inflation (contended
//                                 weighted-fair vs solo) on InterDy; also
//                                 requires the paper-default inflation to be
//                                 at least twice that bound (the regression
//                                 the QoS layer exists to fix must stay
//                                 visible). Skipped below 4 hardware threads.
//     FABACUS_MIN_FAIRNESS_INDEX — min Jain's throughput index for the
//                                 weighted-fair fair-share scenario on
//                                 IntraO3. Skipped below 4 hardware threads.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/tenant_mix.h"

namespace fabacus {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr || v[0] == '\0' ? fallback : std::atof(v);
}

const TenantQosReport* FindTenant(const RunReport& r, std::uint32_t id) {
  for (const TenantQosReport& t : r.tenants) {
    if (t.id == id) {
      return &t;
    }
  }
  return nullptr;
}

FlashAbacusConfig QosConfig(const TenantSchedConfig& tenants) {
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  cfg.model_scale = kBenchScale;
  cfg.tenant_sched = tenants;
  return cfg;
}

struct NoisyResult {
  double solo_p99 = 0.0;
  double paper_p99 = 0.0;
  double wf_p99 = 0.0;
  bool verified = true;
};

// One noisy-neighbor ablation under `kind`: solo probe, contended paper,
// contended weighted-fair. Returns the probe's p99 in each.
NoisyResult RunNoisyNeighbor(SchedulerKind kind, BenchSweep* sweep, BenchJson* json) {
  auto bully = MakeBullyWriter();
  auto probe = MakeLatencyProbe();
  // Eight bully kernels against two probes; the bullies are listed first so
  // FIFO arbitration queues them ahead of the probes.
  std::vector<const Workload*> contended_apps = {bully.get(), bully.get(), bully.get(),
                                                 bully.get(), probe.get()};
  const std::vector<TenantId> contended_tenants = {0, 0, 0, 0, 1};
  std::vector<const Workload*> solo_apps = {probe.get()};
  const std::vector<TenantId> solo_tenants = {1};

  BenchOptions opt;
  const std::size_t i_solo = sweep->Add([=]() {
    return RunFlashAbacusSystemTenants(
        solo_apps, solo_tenants, 2, kind,
        QosConfig(NoisyNeighborTenants(TenantSchedPolicy::kWeightedFair)), opt);
  });
  const std::size_t i_paper = sweep->Add([=]() {
    return RunFlashAbacusSystemTenants(
        contended_apps, contended_tenants, 2, kind,
        QosConfig(NoisyNeighborTenants(TenantSchedPolicy::kPaper)), opt);
  });
  const std::size_t i_wf = sweep->Add([=]() {
    return RunFlashAbacusSystemTenants(
        contended_apps, contended_tenants, 2, kind,
        QosConfig(NoisyNeighborTenants(TenantSchedPolicy::kWeightedFair)), opt);
  });
  sweep->Run();

  const BenchRun& solo = sweep->Get(i_solo);
  const BenchRun& paper = sweep->Get(i_paper);
  const BenchRun& wf = sweep->Get(i_wf);
  NoisyResult res;
  res.verified = solo.verified && paper.verified && wf.verified;
  const TenantQosReport* t;
  if ((t = FindTenant(solo.result, 1)) != nullptr) {
    res.solo_p99 = t->latency_ms.p99;
  }
  if ((t = FindTenant(paper.result, 1)) != nullptr) {
    res.paper_p99 = t->latency_ms.p99;
  }
  if ((t = FindTenant(wf.result, 1)) != nullptr) {
    res.wf_p99 = t->latency_ms.p99;
  }

  const std::string label = std::string(SchedulerKindName(kind));
  json->AddScalarRow("noisy_" + label, label,
                     {{"probe_solo_p99_ms", res.solo_p99},
                      {"probe_paper_p99_ms", res.paper_p99},
                      {"probe_wf_p99_ms", res.wf_p99},
                      {"paper_inflation", res.solo_p99 > 0 ? res.paper_p99 / res.solo_p99 : 0},
                      {"wf_inflation", res.solo_p99 > 0 ? res.wf_p99 / res.solo_p99 : 0}});
  return res;
}

}  // namespace
}  // namespace fabacus

int main() {
  using namespace fabacus;
  BenchJson json("tenant_qos");
  int rc = 0;

  PrintHeader("Multi-tenant QoS: noisy neighbor (probe p99, ms)");
  PrintRow({"scheduler", "solo", "paper", "wf", "paper_x", "wf_x"});
  const SchedulerKind kinds[] = {SchedulerKind::kInterStatic, SchedulerKind::kInterDynamic,
                                 SchedulerKind::kIntraInOrder,
                                 SchedulerKind::kIntraOutOfOrder};
  double gate_paper_x = 0.0;
  double gate_wf_x = 0.0;
  bool all_verified = true;
  BenchSweep sweep;
  for (SchedulerKind kind : kinds) {
    const NoisyResult r = RunNoisyNeighbor(kind, &sweep, &json);
    all_verified = all_verified && r.verified;
    const double paper_x = r.solo_p99 > 0 ? r.paper_p99 / r.solo_p99 : 0.0;
    const double wf_x = r.solo_p99 > 0 ? r.wf_p99 / r.solo_p99 : 0.0;
    PrintRow({SchedulerKindName(kind), Fmt(r.solo_p99, 3), Fmt(r.paper_p99, 3),
              Fmt(r.wf_p99, 3), Fmt(paper_x, 2), Fmt(wf_x, 2)});
    std::printf("PERF probe_p99_inflation_paper %s %.3f\n", SchedulerKindName(kind), paper_x);
    std::printf("PERF probe_p99_inflation_wf %s %.3f\n", SchedulerKindName(kind), wf_x);
    if (kind == SchedulerKind::kInterDynamic) {
      gate_paper_x = paper_x;
      gate_wf_x = wf_x;
    }
  }

  PrintHeader("Multi-tenant QoS: fair share (weights 1/2/4, Jain over rates)");
  auto worker = MakeBullyWriter(16.0);
  std::vector<const Workload*> fair_apps = {worker.get(), worker.get(), worker.get()};
  const std::vector<TenantId> fair_tenants = {0, 1, 2};
  const std::vector<double> weights = {1.0, 2.0, 4.0};
  BenchOptions opt;
  BenchSweep fair_sweep;
  const std::size_t i_fp = fair_sweep.Add([&]() {
    return RunFlashAbacusSystemTenants(
        fair_apps, fair_tenants, 4, SchedulerKind::kIntraOutOfOrder,
        QosConfig(FairShareTenants(TenantSchedPolicy::kPaper, weights)), opt);
  });
  const std::size_t i_fw = fair_sweep.Add([&]() {
    return RunFlashAbacusSystemTenants(
        fair_apps, fair_tenants, 4, SchedulerKind::kIntraOutOfOrder,
        QosConfig(FairShareTenants(TenantSchedPolicy::kWeightedFair, weights)), opt);
  });
  fair_sweep.Run();
  const BenchRun& fair_paper = fair_sweep.Get(i_fp);
  const BenchRun& fair_wf = fair_sweep.Get(i_fw);
  all_verified = all_verified && fair_paper.verified && fair_wf.verified;
  const double jain_paper = fair_paper.result.fairness.jain_throughput;
  const double jain_wf = fair_wf.result.fairness.jain_throughput;
  PrintRow({"policy", "jain_tput", "jain_p99"});
  PrintRow({"paper", Fmt(jain_paper, 4), Fmt(fair_paper.result.fairness.jain_p99, 4)});
  PrintRow({"wf", Fmt(jain_wf, 4), Fmt(fair_wf.result.fairness.jain_p99, 4)});
  std::printf("PERF fairness_jain_throughput paper %.4f\n", jain_paper);
  std::printf("PERF fairness_jain_throughput wf %.4f\n", jain_wf);
  json.AddScalarRow("fair_share", "IntraO3",
                    {{"jain_paper", jain_paper},
                     {"jain_wf", jain_wf},
                     {"jain_p99_paper", fair_paper.result.fairness.jain_p99},
                     {"jain_p99_wf", fair_wf.result.fairness.jain_p99}});

  if (!all_verified) {
    std::fprintf(stderr, "PERF GATE FAILED: functional verification failed\n");
    rc = 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const double p99_gate = EnvDouble("FABACUS_TENANT_P99_GATE", 0.0);
  if (p99_gate > 0.0) {
    if (hw < 4) {
      std::printf("tenant p99 gate skipped: %u hardware threads < 4\n", hw);
    } else {
      if (gate_wf_x > p99_gate) {
        std::fprintf(stderr,
                     "PERF GATE FAILED: weighted-fair probe p99 inflation %.2fx > %.2fx\n",
                     gate_wf_x, p99_gate);
        rc = 1;
      }
      if (gate_paper_x < 2.0 * p99_gate) {
        std::fprintf(stderr,
                     "PERF GATE FAILED: paper-default probe p99 inflation %.2fx < %.2fx — "
                     "the noisy-neighbor regression the gate guards is gone\n",
                     gate_paper_x, 2.0 * p99_gate);
        rc = 1;
      }
    }
  }
  const double min_jain = EnvDouble("FABACUS_MIN_FAIRNESS_INDEX", 0.0);
  if (min_jain > 0.0) {
    if (hw < 4) {
      std::printf("fairness gate skipped: %u hardware threads < 4\n", hw);
    } else if (jain_wf < min_jain) {
      std::fprintf(stderr, "PERF GATE FAILED: weighted-fair Jain index %.4f < %.4f\n",
                   jain_wf, min_jain);
      rc = 1;
    }
  }
  return rc;
}
