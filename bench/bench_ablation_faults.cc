// Ablation: fault injection and the recovery ladder. The same workload mix
// runs on progressively less healthy devices — pristine flash, mid-life flash
// with wear-scaled raw bit errors, end-of-life flash that also fails
// programs, and a device that loses an entire die mid-run. Each step shows
// what the recovery machinery (read-retry ladder, program re-allocation, host
// retries, patrol scrub) costs in makespan versus what it absorbs: every
// configuration still completes and verifies.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

struct FaultOutcome {
  RunReport report;
  bool verified = true;
  bool completed = false;
};

FaultOutcome RunWithFaults(const FaultConfig& fault) {
  Simulator sim;
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  cfg.model_scale = kBenchScale;
  cfg.nand.fault = fault;
  FlashAbacus dev(&sim, cfg);

  std::vector<const Workload*> apps;
  apps.push_back(WorkloadRegistry::Get().Find("ATAX"));
  apps.push_back(WorkloadRegistry::Get().Find("GESUM"));
  Rng rng(42);
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> raw;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (int i = 0; i < 2; ++i) {
      auto inst = std::make_unique<AppInstance>(static_cast<int>(a), i, &apps[a]->spec(),
                                                cfg.model_scale);
      apps[a]->Prepare(*inst, rng);
      raw.push_back(inst.get());
      owned.push_back(std::move(inst));
    }
  }
  for (AppInstance* inst : raw) {
    dev.InstallData(inst, [](Tick) {});
  }
  sim.Run();

  FaultOutcome out;
  dev.Run(raw, SchedulerKind::kIntraOutOfOrder, [&](RunReport r) {
    out.report = std::move(r);
    out.completed = true;
  });
  sim.Run();
  for (const auto& inst : owned) {
    out.verified =
        out.verified && apps[static_cast<std::size_t>(inst->app_id())]->Verify(*inst);
  }
  return out;
}

double Metric(const FaultOutcome& o, const std::string& name) {
  return o.report.metrics.Has(name) ? o.report.metrics.Value(name) : 0.0;
}

}  // namespace
}  // namespace fabacus

int main() {
  using namespace fabacus;
  PrintHeader("Ablation: device health vs recovery-ladder work (IntraO3, ATAX+GESUM x2)");

  FaultConfig pristine;

  FaultConfig midlife;
  midlife.read_error_base = 0.02;
  midlife.read_error_wear_slope = 0.5;

  FaultConfig endoflife;
  endoflife.read_error_base = 0.2;
  endoflife.read_error_wear_slope = 0.5;
  endoflife.program_failure_rate = 0.02;

  FaultConfig diekill;
  diekill.read_error_base = 0.02;
  diekill.plan.push_back({FaultPlanEntry::Kind::kKillDie, 2 * kMs, 1, 2});

  struct Step {
    const char* label;
    FaultConfig fault;
  };
  const Step steps[] = {
      {"pristine", pristine},
      {"mid-life", midlife},
      {"end-of-life", endoflife},
      {"die-kill@2ms", diekill},
  };

  PrintRow({"device", "makespan(ms)", "retries", "uncorr", "prog-fail", "host-retry",
            "verified"},
           13);
  std::vector<std::function<FaultOutcome()>> jobs;
  for (const Step& s : steps) {
    jobs.emplace_back([&s] { return RunWithFaults(s.fault); });
  }
  const std::vector<FaultOutcome> outcomes = SweepRunner().Run(std::move(jobs));
  BenchJson json("bench_ablation_faults");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Step& s = steps[i];
    const FaultOutcome& o = outcomes[i];
    PrintRow({s.label, Fmt(TicksToMs(o.report.makespan), 2),
              Fmt(Metric(o, "flash/read_retries"), 0),
              Fmt(Metric(o, "flash/uncorrectable_reads"), 0),
              Fmt(Metric(o, "flashvisor/program_failure_reallocs"), 0),
              Fmt(Metric(o, "host/io_retries"), 0),
              o.completed && o.verified ? "yes" : "NO"},
             13);
    json.AddScalarRow(s.label, "IntraO3",
                      {{"makespan_ms", TicksToMs(o.report.makespan)},
                       {"read_retries", Metric(o, "flash/read_retries")},
                       {"uncorrectable_reads", Metric(o, "flash/uncorrectable_reads")},
                       {"program_failure_reallocs",
                        Metric(o, "flashvisor/program_failure_reallocs")},
                       {"host_io_retries", Metric(o, "host/io_retries")},
                       {"energy_total_j", o.report.EnergySummary().total_j},
                       {"verified", o.completed && o.verified ? 1.0 : 0.0}});
  }
  std::printf("\nEvery configuration completes and verifies: correctable errors cost\n"
              "retry-ladder latency, program failures cost re-allocated block groups,\n"
              "and a dead die costs degraded (but successful) striped reads.\n");
  return 0;
}
