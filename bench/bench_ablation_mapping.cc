// Ablation: mapping-table residency (paper §4.3: the full page-group map is
// kept in the 4 MB scratchpad — "the time spent to lookup and update the
// mapping information should not be an overhead").
//
// Two parts:
//  1. Replay a real kernel's group-access trace through a DFTL-style
//     demand-cached map (src/core/mapping_cache) to *measure* hit ratios and
//     the resulting mean translation cost for each residency option.
//  2. Re-run ATAX end to end with the measured per-group translation costs
//     plugged into Flashvisor, showing the throughput impact.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/mapping_cache.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

// Group-access traces reconstructed from the section layout. `streams` is
// the number of concurrently-executing kernels: their per-group requests
// interleave at Flashvisor, which is what a translation cache actually sees
// under multi-kernel execution.
std::vector<std::uint64_t> BuildTrace(int streams, std::uint64_t groups_per_stream) {
  std::vector<std::uint64_t> trace;
  for (std::uint64_t g = 0; g < groups_per_stream; ++g) {
    for (int s = 0; s < streams; ++s) {
      // Spread streams across the logical space (distinct translation pages).
      trace.push_back(static_cast<std::uint64_t>(s) * 4096 + g);
    }
  }
  return trace;
}

struct Residency {
  const char* name;
  MappingCacheConfig cache;
  bool full_table;  // scratchpad-resident: every access is a hit
};

Tick MeasuredMeanCost(const Residency& r, const std::vector<std::uint64_t>& trace,
                      double* hit_ratio) {
  if (r.full_table) {
    *hit_ratio = 1.0;
    return r.cache.hit_cost;
  }
  MappingCache cache(1 << 20, r.cache);
  Tick total = 0;
  for (std::uint64_t g : trace) {
    Tick cost = 0;
    cache.Lookup(g, &cost);
    total += cost;
  }
  *hit_ratio = cache.HitRatio();
  return total / trace.size();
}

double RunAtaxWithTranslateCost(Tick per_group) {
  const Workload* wl = WorkloadRegistry::Get().Find("ATAX");
  Simulator sim;
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  cfg.flashvisor.per_group_translate = per_group;
  FlashAbacus dev(&sim, cfg);
  Rng rng(42);
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> raw;
  for (int i = 0; i < 6; ++i) {
    owned.push_back(std::make_unique<AppInstance>(0, i, &wl->spec(), cfg.model_scale));
    wl->Prepare(*owned.back(), rng);
    raw.push_back(owned.back().get());
  }
  for (AppInstance* inst : raw) {
    dev.InstallData(inst, [](Tick) {});
  }
  sim.Run();
  double mbs = 0.0;
  dev.Run(raw, SchedulerKind::kIntraOutOfOrder, [&](RunReport r) { mbs = r.throughput_mb_s; });
  sim.Run();
  return mbs;
}

}  // namespace
}  // namespace fabacus

int main() {
  using namespace fabacus;
  // One kernel streaming alone vs 24 concurrent kernels (Fig 10b's setup).
  const std::vector<std::uint64_t> solo = BuildTrace(1, 3840);
  const std::vector<std::uint64_t> multi = BuildTrace(24, 640);

  Residency options[3];
  options[0] = {"scratchpad-resident (paper)", MappingCacheConfig{}, true};
  // Full table in DDR3L, small SRAM cache of translation pages.
  options[1] = {"DDR3L-resident + SRAM cache", MappingCacheConfig{}, false};
  options[1].cache.miss_cost = 2 * kUs;  // DDR3L fetch, not flash
  options[1].cache.writeback_cost = 2 * kUs;
  options[1].cache.cache_pages = 16;
  // DFTL: translation pages on flash.
  options[2] = {"flash-resident (DFTL-like)", MappingCacheConfig{}, false};
  options[2].cache.cache_pages = 16;

  PrintHeader("Ablation: mapping-table residency (trace-measured translation costs)");
  PrintRow({"design", "hit% solo", "hit% 24-kernel", "cost/group", "ATAX IntraO3 MB/s"}, 26);
  // Trace replay is cheap and serial; the end-to-end ATAX re-runs are the
  // expensive part, so those fan out across the sweep pool.
  double hit_solo[3];
  double hit_multi[3];
  Tick mean_cost[3];
  std::vector<std::function<double()>> jobs;
  for (int i = 0; i < 3; ++i) {
    MeasuredMeanCost(options[i], solo, &hit_solo[i]);
    mean_cost[i] = MeasuredMeanCost(options[i], multi, &hit_multi[i]);
    const Tick cost = mean_cost[i];
    jobs.emplace_back([cost] { return RunAtaxWithTranslateCost(cost); });
  }
  const std::vector<double> mbs = SweepRunner().Run(std::move(jobs));
  for (int i = 0; i < 3; ++i) {
    PrintRow({options[i].name, Fmt(hit_solo[i] * 100.0, 1), Fmt(hit_multi[i] * 100.0, 1),
              Fmt(static_cast<double>(mean_cost[i]) / 1000.0, 2) + " us", Fmt(mbs[i])},
             26);
  }
  BenchJson json("bench_ablation_mapping");
  for (int i = 0; i < 3; ++i) {
    json.AddScalarRow(options[i].name, "IntraO3",
                      {{"hit_rate_solo", hit_solo[i]},
                       {"hit_rate_24kernel", hit_multi[i]},
                       {"mean_cost_us", static_cast<double>(mean_cost[i]) / 1000.0},
                       {"atax_throughput_mb_s", mbs[i]}});
  }
  std::printf(
      "\nA lone streaming kernel keeps a DFTL cache warm, but 24 concurrent kernels\n"
      "cycle more translation pages than the cache holds and every miss serializes on\n"
      "the single Flashvisor core; the scratchpad-resident full table (2 MB for 32 GB)\n"
      "keeps translation constant-time off the data path (paper §4.3).\n");
  return 0;
}
