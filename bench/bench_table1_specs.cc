// Table 1: hardware specification of the baseline platform. Prints the
// configured simulator parameters next to the paper's figures so config
// drift is visible at a glance.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace fabacus;
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  PrintHeader("Table 1: hardware specification (configured vs paper)");
  PrintRow({"component", "configured", "paper"}, 34);
  PrintRow({"LWP", Fmt(cfg.num_lwps, 0) + " cores @ " + Fmt(cfg.lwp.clock_ghz, 1) + " GHz",
            "8 processors @ 1 GHz"},
           34);
  PrintRow({"LWP FUs (mul/alu/ldst)",
            Fmt(cfg.lwp.mul_fus, 0) + "/" + Fmt(cfg.lwp.alu_fus, 0) + "/" +
                Fmt(cfg.lwp.ldst_fus, 0),
            "2/4/2 per LWP"},
           34);
  PrintRow({"L1/L2 cache",
            Fmt(cfg.cache.l1_bytes / 1024.0, 0) + " KB / " +
                Fmt(cfg.cache.l2_bytes / 1024.0, 0) + " KB",
            "64 KB / 512 KB"},
           34);
  PrintRow({"Scratchpad",
            Fmt(cfg.scratchpad.capacity_bytes / 1048576.0, 0) + " MB, " +
                Fmt(cfg.scratchpad.total_gb_per_s, 0) + " GB/s",
            "4 MB, 16 GB/s"},
           34);
  PrintRow({"DDR3L",
            Fmt(cfg.dram.capacity_bytes / (1 << 30), 0) + " GB, " +
                Fmt(cfg.dram.total_gb_per_s, 1) + " GB/s",
            "1 GB, 6.4 GB/s"},
           34);
  const NandConfig& nand = cfg.nand;
  PrintRow({"SSD (flash backbone)",
            Fmt(nand.total_dies(), 0) + " packages, " +
                Fmt(nand.TotalBytes() / (1ULL << 30), 0) + " GB",
            "16 dies, 32 GB, 3.2 GB/s"},
           34);
  PrintRow({"Flash page / read / program",
            Fmt(nand.page_bytes / 1024.0, 0) + " KB / " + Fmt(TicksToUs(nand.read_latency), 0) +
                " us / " + Fmt(TicksToMs(nand.program_latency), 1) + " ms",
            "8 KB / 81 us / 2.6 ms"},
           34);
  PrintRow({"Page group", Fmt(nand.GroupBytes() / 1024.0, 0) + " KB",
            "64 KB (4 ch x 2 planes x 8 KB)"},
           34);
  PrintRow({"Mapping table",
            Fmt(nand.TotalGroups() * 4.0 / 1048576.0, 1) + " MB in scratchpad", "2 MB"},
           34);
  PrintRow({"PCIe", Fmt(cfg.pcie_gb_per_s, 1) + " GB/s", "v2.0 x2, 1 GB/s"}, 34);
  PrintRow({"Tier-1 crossbar", Fmt(cfg.tier1.fabric_gb_per_s, 1) + " GB/s", "16 GB/s"}, 34);
  SrioConfig srio;
  PrintRow({"SRIO to flash backbone",
            Fmt(srio.lanes, 0) + " lanes @ " + Fmt(srio.gbps_per_lane, 0) + " Gbps",
            "4 lanes @ 5 Gbps"},
           34);
  PowerModel p;
  PrintRow({"LWP power", Fmt(p.lwp_active_w, 1) + " W/core", "0.8 W/core"}, 34);
  PrintRow({"DDR3L power", Fmt(p.ddr3l_active_w, 1) + " W", "0.7 W"}, 34);
  PrintRow({"SSD power", Fmt(p.flash_active_w, 1) + " W", "11 W"}, 34);
  PrintRow({"PCIe power", Fmt(p.pcie_active_w, 2) + " W", "0.17 W"}, 34);
  return 0;
}
