// Figure 11: per-kernel latency (max / avg / min across instances),
// normalized to SIMD's average, for homogeneous (a) and heterogeneous (b)
// workloads. Paper anchors: on data-intensive homogeneous workloads SIMD's
// avg/max/min run 39%/87%/113% longer than FlashAbacus; InterDy cuts
// InterSt's average by ~57%; IntraO3 beats InterDy by 10% (avg) and 19%
// (max) on heterogeneous workloads.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace fabacus {
namespace {

void PrintLatencyRow(BenchJson* json, const std::string& label,
                     const std::vector<BenchRun>& runs) {
  const double simd_avg = runs[0].result.kernel_latency_ms.Mean();
  std::vector<std::string> row{label};
  for (const BenchRun& r : runs) {
    json->AddRun(label, r);
    const Histogram& h = r.result.kernel_latency_ms;
    row.push_back(Fmt(h.Max() / simd_avg, 2) + "/" + Fmt(h.Mean() / simd_avg, 2) + "/" +
                  Fmt(h.Min() / simd_avg, 2));
  }
  PrintRow(row, 18);
}

}  // namespace
}  // namespace fabacus

int main() {
  using namespace fabacus;
  BenchJson json("bench_fig11_latency");

  // Enqueue both figure grids up front so the whole bench runs as one sweep.
  const std::vector<const Workload*> kernels = WorkloadRegistry::Get().polybench();
  BenchSweep sweep;
  std::vector<std::size_t> homo_first;
  for (const Workload* wl : kernels) {
    homo_first.push_back(sweep.AddAllSystems({wl}, 6));
  }
  std::vector<std::size_t> mix_first;
  for (int m = 1; m <= WorkloadRegistry::kNumMixes; ++m) {
    mix_first.push_back(sweep.AddAllSystems(WorkloadRegistry::Get().Mix(m), 4));
  }
  sweep.Run();

  PrintHeader("Fig 11a: latency max/avg/min normalized to SIMD avg, homogeneous");
  PrintRow({"workload", "SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3"}, 18);
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    PrintLatencyRow(&json, kernels[k]->name(), sweep.TakeSystems(homo_first[k]));
  }

  PrintHeader("Fig 11b: latency max/avg/min normalized to SIMD avg, heterogeneous");
  PrintRow({"mix", "SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3"}, 18);
  for (int m = 1; m <= WorkloadRegistry::kNumMixes; ++m) {
    PrintLatencyRow(&json, "MX" + std::to_string(m),
                    sweep.TakeSystems(mix_first[static_cast<std::size_t>(m - 1)]));
  }
  std::printf(
      "\npaper anchors: SIMD avg/max/min 39%%/87%%/113%% above FlashAbacus on data-intensive;"
      "\nIntraO3 beats InterDy by 10%% (avg) / 19%% (max) on heterogeneous workloads\n");
  return 0;
}
