// Ablation: scale-out by adding LWPs (paper §6, "Platform selection": the
// terabit crossbar "potentially make[s] the platform a scale-out accelerator
// system (by adding up more LWPs into the network)"). Sweeps the worker
// count for a heterogeneous mix under IntraO3 and reports throughput and the
// point where the flash backbone (not compute) becomes the bottleneck.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

RunReport RunMixAtScale(const std::vector<const Workload*>& mix, int lwps) {
  Simulator sim;
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  cfg.num_lwps = lwps;  // 2 reserved for Flashvisor/Storengine
  // Scaling out means adding LWPs *into the network*: give the tier-1
  // crossbar a port per LWP plus the memory port (the paper's 12-port fabric
  // only covers the 8-LWP baseline, and Validate() rejects fewer).
  cfg.tier1.ports = std::max(cfg.tier1.ports, lwps + 1);
  FlashAbacus dev(&sim, cfg);
  Rng rng(42);
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> raw;
  for (std::size_t a = 0; a < mix.size(); ++a) {
    for (int i = 0; i < 2; ++i) {
      owned.push_back(std::make_unique<AppInstance>(static_cast<int>(a), i,
                                                    &mix[a]->spec(), cfg.model_scale));
      mix[a]->Prepare(*owned.back(), rng);
      raw.push_back(owned.back().get());
    }
  }
  for (AppInstance* inst : raw) {
    dev.InstallData(inst, [](Tick) {});
  }
  sim.Run();
  RunReport result;
  dev.Run(raw, SchedulerKind::kIntraOutOfOrder, [&](RunReport r) { result = std::move(r); });
  sim.Run();
  return result;
}

}  // namespace
}  // namespace fabacus

int main() {
  using namespace fabacus;
  const std::vector<const Workload*> mix = WorkloadRegistry::Get().Mix(2);
  PrintHeader("Ablation: scale-out — workers vs throughput (MX2 x12, IntraO3)");
  PrintRow({"LWPs(total)", "workers", "MB/s", "speedup", "worker util(%)"}, 14);
  const std::vector<int> points = {4, 6, 8, 12, 16, 24};
  std::vector<std::function<RunReport()>> jobs;
  for (int lwps : points) {
    jobs.emplace_back([&mix, lwps] { return RunMixAtScale(mix, lwps); });
  }
  const std::vector<RunReport> results = SweepRunner().Run(std::move(jobs));
  const double base = results[0].throughput_mb_s;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RunReport& result = results[i];
    PrintRow({Fmt(points[i], 0), Fmt(points[i] - 2, 0), Fmt(result.throughput_mb_s),
              Fmt(result.throughput_mb_s / base, 2) + "x",
              Fmt(result.worker_utilization * 100.0, 1)},
             14);
  }
  BenchJson json("bench_ablation_scaleout");
  for (std::size_t i = 0; i < points.size(); ++i) {
    json.AddScalarRow("lwps" + std::to_string(points[i]), "IntraO3",
                      {{"lwps_total", static_cast<double>(points[i])},
                       {"workers", static_cast<double>(points[i] - 2)},
                       {"throughput_mb_s", results[i].throughput_mb_s},
                       {"speedup", results[i].throughput_mb_s / base},
                       {"worker_utilization", results[i].worker_utilization}});
  }
  std::printf("\nThroughput scales with workers until the 3.2 GB/s flash backbone / 2.5\n"
              "GB/s SRIO link saturates; past that point added LWPs idle on data\n"
              "(diminishing utilization), matching the paper's scale-out discussion.\n");
  return 0;
}
