// google-benchmark microbenchmarks for the scheduling substrate: event-queue
// throughput, simulator dispatch, and execution-chain ready-screen queries
// under many concurrent applications.
#include <benchmark/benchmark.h>

#include "src/core/execution_chain.h"
#include "src/core/kernel.h"
#include "src/sim/simulator.h"
#include "src/workloads/workload.h"

namespace fabacus {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue q;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.Push(static_cast<Tick>((i * 37) % 97), []() {});
    }
    Tick when = 0;
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.Pop(&when));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 256; ++i) {
      sim.Schedule(static_cast<Tick>(i), [&fired]() { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SimulatorDispatch);

void BM_ChainNextReadyScreen(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));
  const Workload* wl = WorkloadRegistry::Get().Find("FDTD");
  std::vector<std::unique_ptr<AppInstance>> instances;
  ExecutionChain chain;
  for (int a = 0; a < apps; ++a) {
    instances.push_back(std::make_unique<AppInstance>(a, 0, &wl->spec(), 1.0 / 256));
    chain.AddApp(instances.back().get(), 6);
    chain.MarkLoadDone(instances.back().get());
  }
  for (auto _ : state) {
    ScreenRef ref;
    if (chain.NextReadyScreen(&ref)) {
      chain.OnDispatched(ref);
      chain.OnScreenComplete(ref);
    }
    benchmark::DoNotOptimize(ref.inst);
  }
}
BENCHMARK(BM_ChainNextReadyScreen)->Arg(6)->Arg(24)->Arg(96);

}  // namespace
}  // namespace fabacus

BENCHMARK_MAIN();
