// Fleet fault tolerance: goodput, availability and tail latency under
// injected failures, per placement policy (docs/FLEET.md "Fleet fault
// tolerance").
//
// Five scenarios on a 4-device fleet — no faults, a brownout stall, a
// die-kill degrade, a crash that recovers and rejoins, and a permanent
// death — each served under round-robin, least-outstanding and health-aware
// routing with a small retry budget and hedged latency-class requests. The
// table shows what the failover machinery buys: health-aware routing routes
// around the dead capacity (shed% stays near the no-fault row) while the
// oblivious baselines keep offering requests to shards that cannot take
// them. Deterministic per seed: running the bench twice produces
// byte-identical JSON (CI diffs it).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fleet/fleet.h"

namespace fabacus {
namespace {

constexpr int kDevices = 4;
constexpr int kRequests = 96;
constexpr double kArrivalRate = 600.0;

struct Scenario {
  const char* name;
  std::vector<FleetFaultEvent> plan;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"none", {}});
  {
    FleetFaultEvent stall;
    stall.kind = FleetFaultEvent::Kind::kStall;
    stall.shard = 0;
    stall.at = 20 * kMs;
    stall.duration = 80 * kMs;
    stall.stall_factor = 6.0;
    scenarios.push_back({"brownout", {stall}});
  }
  {
    FleetFaultEvent degrade;
    degrade.kind = FleetFaultEvent::Kind::kDegrade;
    degrade.shard = 0;
    degrade.at = 20 * kMs;
    degrade.kill_whole_channel = true;
    degrade.kill_channel = 1;
    scenarios.push_back({"degrade", {degrade}});
  }
  {
    FleetFaultEvent crash;
    crash.kind = FleetFaultEvent::Kind::kCrash;
    crash.shard = 1;
    crash.at = 40 * kMs;
    crash.duration = 60 * kMs;
    scenarios.push_back({"crash-rejoin", {crash}});
  }
  {
    FleetFaultEvent death;
    death.kind = FleetFaultEvent::Kind::kDeath;
    death.shard = 1;
    death.at = 40 * kMs;
    scenarios.push_back({"death", {death}});
  }
  return scenarios;
}

FleetConfig MakeConfig(const Scenario& scenario, PlacementPolicy policy) {
  FleetConfig cfg;
  cfg.num_devices = kDevices;
  cfg.policy = policy;
  cfg.traffic.model = TrafficConfig::Model::kOpenLoop;
  cfg.traffic.seed = 42;
  cfg.traffic.num_clients = 8;
  cfg.traffic.arrival_rate_per_s = kArrivalRate;
  cfg.traffic.total_requests = kRequests;
  cfg.traffic.latency_share = 0.25;
  cfg.queue_depth = 64;
  cfg.max_route_attempts = 1;
  cfg.max_request_retries = 2;
  cfg.hedge_requests = true;
  cfg.faults.plan = scenario.plan;
  return cfg;
}

const char* ShortPolicyName(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRoundRobin:
      return "rr";
    case PlacementPolicy::kLeastOutstanding:
      return "least-out";
    case PlacementPolicy::kDataAffinity:
      return "affinity";
    case PlacementPolicy::kHealthAware:
      return "health";
  }
  return "?";
}

void Run(BenchJson* json) {
  const std::vector<PlacementPolicy> policies = {PlacementPolicy::kRoundRobin,
                                                 PlacementPolicy::kLeastOutstanding,
                                                 PlacementPolicy::kHealthAware};

  PrintHeader("Fleet fault tolerance: goodput under injected failures (" +
              std::to_string(kDevices) + " devices, " + std::to_string(kRequests) +
              " requests @ " + Fmt(kArrivalRate, 0) + "/s, 2 retries, hedging on)");
  PrintRow({"scenario", "policy", "avail", "served", "shed", "failed", "retries", "hedges",
            "req/s", "p50 ms", "p99 ms", "torn", "down ms", "verified"});

  for (const Scenario& scenario : Scenarios()) {
    for (PlacementPolicy policy : policies) {
      const FleetReport rep = RunFleet(MakeConfig(scenario, policy));

      Tick down_ns = 0;
      for (const FleetDeviceStats& d : rep.devices) {
        down_ns += d.down_ns;
      }
      const double p50 = rep.latency_ms.count() > 0 ? rep.latency_ms.Percentile(50) : 0.0;
      const double p99 = rep.latency_ms.count() > 0 ? rep.latency_ms.Percentile(99) : 0.0;

      PrintRow({scenario.name, ShortPolicyName(policy), Fmt(rep.availability, 3),
                std::to_string(rep.served), std::to_string(rep.shed),
                std::to_string(rep.failed), std::to_string(rep.request_retries),
                std::to_string(rep.hedges_issued), Fmt(rep.throughput_rps, 1), Fmt(p50, 2),
                Fmt(p99, 2), std::to_string(rep.torn_in_flight), Fmt(TicksToMs(down_ns), 1),
                rep.verified ? "yes" : "NO"});

      json->AddScalarRow(scenario.name, ShortPolicyName(policy),
                         {{"offered", static_cast<double>(rep.offered)},
                          {"served", static_cast<double>(rep.served)},
                          {"shed", static_cast<double>(rep.shed)},
                          {"failed", static_cast<double>(rep.failed)},
                          {"availability", rep.availability},
                          {"throughput_rps", rep.throughput_rps},
                          {"latency_p50_ms", p50},
                          {"latency_p99_ms", p99},
                          {"request_retries", static_cast<double>(rep.request_retries)},
                          {"timeouts", static_cast<double>(rep.timeouts)},
                          {"hedges_issued", static_cast<double>(rep.hedges_issued)},
                          {"hedges_won", static_cast<double>(rep.hedges_won)},
                          {"crashes", static_cast<double>(rep.crashes)},
                          {"recoveries", static_cast<double>(rep.recoveries)},
                          {"torn_in_flight", static_cast<double>(rep.torn_in_flight)},
                          {"failover_reroutes", static_cast<double>(rep.failover_reroutes)},
                          {"down_ms", TicksToMs(down_ns)},
                          {"makespan_ms", TicksToMs(rep.makespan)},
                          {"verified", rep.verified ? 1.0 : 0.0}});
    }
  }

  std::printf(
      "\nHealth-aware vs round-robin availability under the crash-rejoin scenario is the\n"
      "headline number: the breaker + failover routing keeps goodput near the no-fault\n"
      "row while the oblivious baseline sheds every request it offers to the dead shard.\n");
}

}  // namespace
}  // namespace fabacus

int main() {
  fabacus::BenchJson json("bench_fleet_faults");
  fabacus::Run(&json);
  return 0;
}
