// Figure 3: performance-bottleneck analysis of low-power heterogeneous
// computing (the conventional SIMD accelerator + NVMe SSD system).
//  (b) throughput vs LWP count for serialized-execution fractions 0-50%
//  (c) core utilization for the same sweep
//  (d) execution-time breakdown (accelerator / SSD / host storage stack)
//  (e) energy breakdown for the same applications
// Paper anchors: 30% serial => ~44% throughput loss and <46% utilization;
// data-intensive apps spend ~77% of time and ~85% of energy on transfers.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace fabacus {
namespace {

void RunScalingSweep() {
  const std::vector<double> ratios = {0.5, 0.4, 0.3, 0.2, 0.1, 0.0};

  PrintHeader("Fig 3b: workload throughput (GB/s) vs cores x serial ratio");
  std::vector<std::string> head{"cores"};
  for (double r : ratios) {
    head.push_back(Fmt(r * 100, 0) + "%");
  }
  PrintRow(head);
  // Keep the per-(cores, ratio) results for the utilization table too.
  std::vector<std::vector<double>> util(9, std::vector<double>(ratios.size(), 0.0));
  for (int cores = 1; cores <= 8; ++cores) {
    std::vector<std::string> row{Fmt(cores, 0)};
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
      std::unique_ptr<Workload> syn = MakeSynthetic(ratios[ri], 640.0, /*io_free=*/true);
      BenchRun run = RunSimdSystem({syn.get()}, 6, kBenchScale, 42, cores);
      const double gb_s = run.result.input_bytes / 1e9 / TicksToSeconds(run.result.makespan);
      row.push_back(Fmt(gb_s, 2));
      util[static_cast<std::size_t>(cores)][ri] = run.result.worker_utilization * 100.0;
    }
    PrintRow(row);
  }

  PrintHeader("Fig 3c: core utilization (%) vs cores x serial ratio");
  PrintRow(head);
  for (int cores = 1; cores <= 8; ++cores) {
    std::vector<std::string> row{Fmt(cores, 0)};
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
      row.push_back(Fmt(util[static_cast<std::size_t>(cores)][ri], 1));
    }
    PrintRow(row);
  }
  std::printf(
      "\npaper anchors: 30%% serial -> ~44%% throughput loss vs 0%%; utilization <46%%\n");
}

void RunBreakdowns() {
  // The eleven applications of Fig 3d/3e, paper order.
  const std::vector<std::string> apps = {"ATAX", "BICG", "2DCON", "MVT",  "SYRK", "3MM",
                                         "GESUM", "ADI",  "COVAR", "FDTD"};
  PrintHeader("Fig 3d: execution-time breakdown on SIMD+NVMe (fractions of makespan)");
  PrintRow({"app", "accelerator", "ssd", "host stack"});
  struct Energy {
    std::string app;
    double accel;
    double ssd;
    double stack;
  };
  std::vector<Energy> energies;
  for (const std::string& name : apps) {
    const Workload* wl = WorkloadRegistry::Get().Find(name);
    BenchRun run = RunSimdSystem({wl}, 6);
    const double total = static_cast<double>(run.result.makespan);
    const double accel = static_cast<double>(run.result.trace.UnionTime(TraceTag::kLwpCompute));
    const double ssd = static_cast<double>(run.result.trace.UnionTime(TraceTag::kSsdOp));
    // Host-side transfer work: storage-stack CPU time plus the PCIe DMA the
    // host drives between its DRAM and the accelerator (paper: "CPU latency
    // that the host storage stack takes to transfer the data").
    const double stack = static_cast<double>(run.result.trace.UnionTime(TraceTag::kHostStack) +
                                             run.result.trace.UnionTime(TraceTag::kPcieXfer));
    const double sum = accel + ssd + stack;
    PrintRow({name, Fmt(accel / sum, 2), Fmt(ssd / sum, 2), Fmt(stack / sum, 2)});
    (void)total;
    energies.push_back({name, run.result.EnergySummary().computation_j, run.result.EnergySummary().storage_access_j,
                        run.result.EnergySummary().data_movement_j});
  }
  std::printf("\npaper anchor: ATAX/BICG/MVT spend ~77%% of time on data transfers\n");

  PrintHeader("Fig 3e: energy breakdown on SIMD+NVMe (fractions of total)");
  PrintRow({"app", "accelerator", "ssd", "host stack"});
  for (const Energy& e : energies) {
    const double sum = e.accel + e.ssd + e.stack;
    PrintRow({e.app, Fmt(e.accel / sum, 2), Fmt(e.ssd / sum, 2), Fmt(e.stack / sum, 2)});
  }
  std::printf("\npaper anchor: storage-stack accesses consume ~85%% of total energy\n");
}

}  // namespace
}  // namespace fabacus

int main() {
  fabacus::RunScalingSweep();
  fabacus::RunBreakdowns();
  return 0;
}
