// Figure 3: performance-bottleneck analysis of low-power heterogeneous
// computing (the conventional SIMD accelerator + NVMe SSD system).
//  (b) throughput vs LWP count for serialized-execution fractions 0-50%
//  (c) core utilization for the same sweep
//  (d) execution-time breakdown (accelerator / SSD / host storage stack)
//  (e) energy breakdown for the same applications
// Paper anchors: 30% serial => ~44% throughput loss and <46% utilization;
// data-intensive apps spend ~77% of time and ~85% of energy on transfers.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace fabacus {
namespace {

void RunScalingSweep(BenchJson* json) {
  const std::vector<double> ratios = {0.5, 0.4, 0.3, 0.2, 0.1, 0.0};

  // Enqueue the whole (cores x ratio) grid, then run it across the pool.
  BenchSweep sweep;
  std::vector<std::unique_ptr<Workload>> owned;  // keep workloads alive for the jobs
  std::vector<std::vector<std::size_t>> idx(9, std::vector<std::size_t>(ratios.size(), 0));
  for (int cores = 1; cores <= 8; ++cores) {
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
      owned.push_back(MakeSynthetic(ratios[ri], 640.0, /*io_free=*/true));
      const Workload* syn = owned.back().get();
      BenchOptions opt;
      opt.num_lwps = cores;
      idx[static_cast<std::size_t>(cores)][ri] =
          sweep.Add([syn, opt]() { return RunSimdSystem({syn}, 6, opt); });
    }
  }
  sweep.Run();

  PrintHeader("Fig 3b: workload throughput (GB/s) vs cores x serial ratio");
  std::vector<std::string> head{"cores"};
  for (double r : ratios) {
    head.push_back(Fmt(r * 100, 0) + "%");
  }
  PrintRow(head);
  for (int cores = 1; cores <= 8; ++cores) {
    std::vector<std::string> row{Fmt(cores, 0)};
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
      const BenchRun& run = sweep.Get(idx[static_cast<std::size_t>(cores)][ri]);
      const double gb_s = run.result.input_bytes / 1e9 / TicksToSeconds(run.result.makespan);
      row.push_back(Fmt(gb_s, 2));
      json->AddScalarRow("cores" + std::to_string(cores), Fmt(ratios[ri] * 100, 0) + "%serial",
                         {{"cores", static_cast<double>(cores)},
                          {"serial_ratio", ratios[ri]},
                          {"throughput_gb_s", gb_s},
                          {"utilization", run.result.worker_utilization}});
    }
    PrintRow(row);
  }

  PrintHeader("Fig 3c: core utilization (%) vs cores x serial ratio");
  PrintRow(head);
  for (int cores = 1; cores <= 8; ++cores) {
    std::vector<std::string> row{Fmt(cores, 0)};
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
      const BenchRun& run = sweep.Get(idx[static_cast<std::size_t>(cores)][ri]);
      row.push_back(Fmt(run.result.worker_utilization * 100.0, 1));
    }
    PrintRow(row);
  }
  std::printf(
      "\npaper anchors: 30%% serial -> ~44%% throughput loss vs 0%%; utilization <46%%\n");
}

void RunBreakdowns(BenchJson* json) {
  // The eleven applications of Fig 3d/3e, paper order.
  const std::vector<std::string> apps = {"ATAX", "BICG", "2DCON", "MVT",  "SYRK", "3MM",
                                         "GESUM", "ADI",  "COVAR", "FDTD"};
  // The time breakdown reads kLwpCompute/kSsdOp/kHostStack union times, so
  // these runs need the full interval trace.
  BenchOptions opt;
  opt.record_full_trace = true;
  BenchSweep sweep;
  std::vector<std::size_t> idx;
  for (const std::string& name : apps) {
    const Workload* wl = WorkloadRegistry::Get().Find(name);
    idx.push_back(sweep.Add([wl, opt]() { return RunSimdSystem({wl}, 6, opt); }));
  }
  sweep.Run();

  PrintHeader("Fig 3d: execution-time breakdown on SIMD+NVMe (fractions of makespan)");
  PrintRow({"app", "accelerator", "ssd", "host stack"});
  struct Energy {
    std::string app;
    double accel;
    double ssd;
    double stack;
  };
  std::vector<Energy> energies;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const BenchRun& run = sweep.Get(idx[a]);
    const double accel = static_cast<double>(run.result.trace.UnionTime(TraceTag::kLwpCompute));
    const double ssd = static_cast<double>(run.result.trace.UnionTime(TraceTag::kSsdOp));
    // Host-side transfer work: storage-stack CPU time plus the PCIe DMA the
    // host drives between its DRAM and the accelerator (paper: "CPU latency
    // that the host storage stack takes to transfer the data").
    const double stack = static_cast<double>(run.result.trace.UnionTime(TraceTag::kHostStack) +
                                             run.result.trace.UnionTime(TraceTag::kPcieXfer));
    const double sum = accel + ssd + stack;
    PrintRow({apps[a], Fmt(accel / sum, 2), Fmt(ssd / sum, 2), Fmt(stack / sum, 2)});
    json->AddScalarRow(apps[a], "SIMD",
                       {{"time_frac_accelerator", accel / sum},
                        {"time_frac_ssd", ssd / sum},
                        {"time_frac_host_stack", stack / sum}});
    energies.push_back({apps[a], run.result.EnergySummary().computation_j,
                        run.result.EnergySummary().storage_access_j,
                        run.result.EnergySummary().data_movement_j});
  }
  std::printf("\npaper anchor: ATAX/BICG/MVT spend ~77%% of time on data transfers\n");

  PrintHeader("Fig 3e: energy breakdown on SIMD+NVMe (fractions of total)");
  PrintRow({"app", "accelerator", "ssd", "host stack"});
  for (const Energy& e : energies) {
    const double sum = e.accel + e.ssd + e.stack;
    PrintRow({e.app, Fmt(e.accel / sum, 2), Fmt(e.ssd / sum, 2), Fmt(e.stack / sum, 2)});
  }
  std::printf("\npaper anchor: storage-stack accesses consume ~85%% of total energy\n");
}

}  // namespace
}  // namespace fabacus

int main() {
  fabacus::BenchJson json("bench_fig3_motivation");
  fabacus::RunScalingSweep(&json);
  fabacus::RunBreakdowns(&json);
  return 0;
}
