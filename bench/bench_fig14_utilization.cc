// Figure 14: LWP (worker) utilization for homogeneous (a) and heterogeneous
// (b) workloads. Paper anchors: InterDy keeps processors ~98% busy on
// homogeneous workloads (highest); on heterogeneous workloads IntraO3
// reaches >94%, ~15% above InterDy; SIMD trails IntraO3 by ~23% on
// data-intensive workloads.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace fabacus {
namespace {

void PrintUtilRow(BenchJson* json, const std::string& label,
                  const std::vector<BenchRun>& runs) {
  std::vector<std::string> row{label};
  for (const BenchRun& r : runs) {
    json->AddRun(label, r);
    row.push_back(Fmt(r.result.worker_utilization * 100.0, 1));
  }
  PrintRow(row);
}

}  // namespace
}  // namespace fabacus

int main() {
  using namespace fabacus;
  BenchJson json("bench_fig14_utilization");

  const std::vector<const Workload*> kernels = WorkloadRegistry::Get().polybench();
  BenchSweep sweep;
  std::vector<std::size_t> homo_first;
  for (const Workload* wl : kernels) {
    homo_first.push_back(sweep.AddAllSystems({wl}, 6));
  }
  std::vector<std::size_t> mix_first;
  for (int m = 1; m <= WorkloadRegistry::kNumMixes; ++m) {
    mix_first.push_back(sweep.AddAllSystems(WorkloadRegistry::Get().Mix(m), 4));
  }
  sweep.Run();

  PrintHeader("Fig 14a: LWP utilization (%), homogeneous");
  PrintRow({"workload", "SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3"});
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    PrintUtilRow(&json, kernels[k]->name(), sweep.TakeSystems(homo_first[k]));
  }
  PrintHeader("Fig 14b: LWP utilization (%), heterogeneous");
  PrintRow({"mix", "SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3"});
  for (int m = 1; m <= WorkloadRegistry::kNumMixes; ++m) {
    PrintUtilRow(&json, "MX" + std::to_string(m),
                 sweep.TakeSystems(mix_first[static_cast<std::size_t>(m - 1)]));
  }
  std::printf("\npaper anchors: InterDy ~98%% on homogeneous; IntraO3 >94%% and ~15%% above "
              "InterDy on heterogeneous\n");
  return 0;
}
