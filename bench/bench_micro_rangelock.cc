// google-benchmark microbenchmarks for the range lock's red-black interval
// tree: acquire/release throughput at different tree populations and the
// conflict-query cost.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/core/range_lock.h"
#include "src/sim/rng.h"

namespace fabacus {
namespace {

void BM_AcquireReleaseDisjoint(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  RangeLock lock;
  std::vector<RangeLock::LockId> held;
  held.reserve(static_cast<std::size_t>(population));
  for (int i = 0; i < population; ++i) {
    RangeLock::LockId id = 0;
    lock.TryAcquire(static_cast<std::uint64_t>(i) * 100, static_cast<std::uint64_t>(i) * 100 + 50,
                    LockMode::kRead, &id);
    held.push_back(id);
  }
  std::uint64_t next = static_cast<std::uint64_t>(population) * 100;
  for (auto _ : state) {
    RangeLock::LockId id = 0;
    benchmark::DoNotOptimize(lock.TryAcquire(next, next + 50, LockMode::kWrite, &id));
    lock.Release(id);
  }
  for (RangeLock::LockId id : held) {
    lock.Release(id);
  }
}
BENCHMARK(BM_AcquireReleaseDisjoint)->Arg(16)->Arg(256)->Arg(4096);

void BM_ConflictQuery(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  RangeLock lock;
  Rng rng(7);
  std::vector<RangeLock::LockId> held;
  for (int i = 0; i < population; ++i) {
    RangeLock::LockId id = 0;
    const std::uint64_t first = rng.NextBelow(1u << 24);
    if (lock.TryAcquire(first, first + rng.NextBelow(512), LockMode::kRead, &id)) {
      held.push_back(id);
    }
  }
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.Conflicts(probe, probe + 128, LockMode::kWrite));
    probe = (probe + 997) & ((1u << 24) - 1);
  }
  for (RangeLock::LockId id : held) {
    lock.Release(id);
  }
}
BENCHMARK(BM_ConflictQuery)->Arg(64)->Arg(1024)->Arg(16384);

void BM_WaiterDispatch(benchmark::State& state) {
  for (auto _ : state) {
    RangeLock lock;
    RangeLock::LockId writer = 0;
    lock.TryAcquire(0, 1000, LockMode::kWrite, &writer);
    int granted = 0;
    for (int i = 0; i < 64; ++i) {
      lock.Acquire(static_cast<std::uint64_t>(i) * 10, static_cast<std::uint64_t>(i) * 10 + 5,
                   LockMode::kRead, [&granted](RangeLock::LockId id) {
                     ++granted;
                     benchmark::DoNotOptimize(id);
                   });
    }
    lock.Release(writer);  // dispatches all 64 waiters
    benchmark::DoNotOptimize(granted);
  }
}
BENCHMARK(BM_WaiterDispatch);

}  // namespace
}  // namespace fabacus

BENCHMARK_MAIN();
