#include "bench/bench_util.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/sim/json.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

struct InstanceSet {
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> raw;
};

InstanceSet BuildInstances(const std::vector<const Workload*>& apps, int instances_per_app,
                           double model_scale, std::uint64_t seed) {
  InstanceSet set;
  Rng rng(seed);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (int i = 0; i < instances_per_app; ++i) {
      auto inst = std::make_unique<AppInstance>(static_cast<int>(a), i, &apps[a]->spec(),
                                                model_scale);
      apps[a]->Prepare(*inst, rng);
      set.raw.push_back(inst.get());
      set.owned.push_back(std::move(inst));
    }
  }
  return set;
}

bool VerifyAll(const std::vector<const Workload*>& apps, const InstanceSet& set) {
  bool ok = true;
  for (const auto& inst : set.owned) {
    ok = ok && apps[static_cast<std::size_t>(inst->app_id())]->Verify(*inst);
  }
  return ok;
}

// Wall-clock + engine counters around one simulated run.
class RunMeter {
 public:
  explicit RunMeter(BenchRun* run) : run_(run), start_(std::chrono::steady_clock::now()) {}
  void Finish(const Simulator& sim) {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    run_->wall_seconds = std::chrono::duration<double>(elapsed).count();
    run_->sim_ticks = static_cast<double>(sim.Now());
    run_->events_executed = sim.events_executed();
  }

 private:
  BenchRun* run_;
  std::chrono::steady_clock::time_point start_;
};

// The sweep pool every bench shares (sized once from FABACUS_SWEEP_THREADS /
// hardware concurrency).
const SweepRunner& SharedSweepRunner() {
  static SweepRunner runner;
  return runner;
}

}  // namespace

BenchRun RunFlashAbacusSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                              SchedulerKind kind, const BenchOptions& opt) {
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  cfg.model_scale = opt.model_scale;
  cfg.record_full_trace = opt.record_full_trace;
  return RunFlashAbacusSystem(apps, instances_per_app, kind, cfg, opt);
}

BenchRun RunFlashAbacusSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                              SchedulerKind kind, const FlashAbacusConfig& cfg,
                              const BenchOptions& opt) {
  BenchRun run;
  RunMeter meter(&run);
  Simulator sim(opt.backend);
  FlashAbacus dev(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, cfg.model_scale, opt.seed);
  for (AppInstance* inst : set.raw) {
    dev.InstallData(inst, [](Tick) {});
  }
  sim.Run();
  run.system = SchedulerKindName(kind);
  bool done = false;
  dev.Run(set.raw, kind, [&](RunReport r) {
    run.result = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "ERROR: %s run did not complete\n", run.system.c_str());
  }
  run.verified = VerifyAll(apps, set);
  meter.Finish(sim);
  return run;
}

BenchRun RunFlashAbacusSystemTenants(const std::vector<const Workload*>& apps,
                                     const std::vector<TenantId>& app_tenants,
                                     int instances_per_app, SchedulerKind kind,
                                     const FlashAbacusConfig& cfg, const BenchOptions& opt) {
  FAB_CHECK_EQ(apps.size(), app_tenants.size());
  BenchRun run;
  RunMeter meter(&run);
  Simulator sim(opt.backend);
  FlashAbacus dev(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, cfg.model_scale, opt.seed);
  std::vector<AppInstance*> admitted;
  for (AppInstance* inst : set.raw) {
    inst->tenant = app_tenants[static_cast<std::size_t>(inst->app_id())];
    if (dev.InstallData(inst, [](Tick) {})) {
      admitted.push_back(inst);
    }
  }
  sim.Run();
  run.system = SchedulerKindName(kind);
  bool done = false;
  if (!admitted.empty()) {
    dev.Run(admitted, kind, [&](RunReport r) {
      run.result = std::move(r);
      done = true;
    });
    sim.Run();
  } else {
    // Every instance was quota-denied; report the tenant rows anyway.
    run.result.system = SchedulerKindName(kind);
    run.result.tenants = dev.tenants().BuildReport();
    run.result.fairness = TenantManager::ComputeFairness(run.result.tenants);
    done = true;
  }
  if (!done) {
    std::fprintf(stderr, "ERROR: %s tenant run did not complete\n", run.system.c_str());
  }
  run.verified = true;
  for (const AppInstance* inst : admitted) {
    run.verified =
        run.verified && apps[static_cast<std::size_t>(inst->app_id())]->Verify(*inst);
  }
  meter.Finish(sim);
  return run;
}

BenchRun RunSimdSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                       const BenchOptions& opt) {
  BenchRun run;
  RunMeter meter(&run);
  Simulator sim(opt.backend);
  SimdConfig cfg;
  cfg.model_scale = opt.model_scale;
  cfg.num_lwps = opt.num_lwps;
  cfg.record_full_trace = opt.record_full_trace;
  SimdSystem simd(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, opt.model_scale, opt.seed);
  for (AppInstance* inst : set.raw) {
    simd.InstallData(inst);
  }
  run.system = "SIMD";
  bool done = false;
  simd.Run(set.raw, [&](RunReport r) {
    run.result = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "ERROR: SIMD run did not complete\n");
  }
  run.verified = VerifyAll(apps, set);
  meter.Finish(sim);
  return run;
}

std::vector<BenchRun> RunAllSystems(const std::vector<const Workload*>& apps,
                                    int instances_per_app, const BenchOptions& opt) {
  BenchSweep sweep;
  const std::size_t first = sweep.AddAllSystems(apps, instances_per_app, opt);
  sweep.Run();
  return sweep.TakeSystems(first);
}

std::size_t BenchSweep::Add(std::function<BenchRun()> job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t BenchSweep::AddAllSystems(std::vector<const Workload*> apps, int instances_per_app,
                                      const BenchOptions& opt) {
  const std::size_t first =
      Add([apps, instances_per_app, opt]() { return RunSimdSystem(apps, instances_per_app, opt); });
  for (SchedulerKind kind :
       {SchedulerKind::kInterStatic, SchedulerKind::kIntraInOrder, SchedulerKind::kInterDynamic,
        SchedulerKind::kIntraOutOfOrder}) {
    Add([apps, instances_per_app, kind, opt]() {
      return RunFlashAbacusSystem(apps, instances_per_app, kind, opt);
    });
  }
  return first;
}

void BenchSweep::Run() {
  if (executed_ == jobs_.size()) {
    return;
  }
  // The workload registry is built lazily; touch it once on this thread so
  // worker threads only ever read it.
  WorkloadRegistry::Get();
  results_.resize(jobs_.size());
  const std::size_t base = executed_;
  SharedSweepRunner().RunIndexed(jobs_.size() - base, [&](std::size_t i) {
    results_[base + i] = jobs_[base + i]();
  });
  executed_ = jobs_.size();
}

const BenchRun& BenchSweep::Get(std::size_t i) const {
  FAB_CHECK(i < executed_) << "BenchSweep::Get before Run()";
  return results_[i];
}

std::vector<BenchRun> BenchSweep::TakeSystems(std::size_t first) const {
  std::vector<BenchRun> out;
  out.reserve(5);
  for (std::size_t i = first; i < first + 5; ++i) {
    out.push_back(Get(i));
  }
  return out;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& c : cells) {
    std::printf("%-*s", width, c.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::uint64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

BenchJson::BenchJson(std::string bench_name) : bench_name_(std::move(bench_name)) {
  const char* dir = std::getenv("FABACUS_BENCH_JSON_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    out_dir_ = dir;
  }
}

void BenchJson::AddRun(const std::string& label, const BenchRun& run) {
  if (!enabled()) {
    return;
  }
  // Expand the BenchRun into the common fields+groups row shape. The field
  // order here is the JSON contract (docs/OBSERVABILITY.md): goldens and
  // external tooling byte-compare these documents.
  const EnergyBreakdown e = run.result.EnergySummary();
  const Histogram& lat = run.result.kernel_latency_ms;
  const double wall = run.wall_seconds;
  Row row;
  row.label = label;
  row.system = run.system;
  row.fields.push_back({"verified", 0.0, true, run.verified});
  const auto num = [&row](const std::string& name, double v) {
    row.fields.push_back({name, v, false, false});
  };
  num("makespan_ms", TicksToMs(run.result.makespan));
  num("throughput_mb_s", run.result.throughput_mb_s);
  num("worker_utilization", run.result.worker_utilization);
  num("wall_seconds", wall);
  num("sim_ticks_per_wall_second", wall > 0.0 ? run.sim_ticks / wall : 0.0);
  num("events_per_second",
      wall > 0.0 ? static_cast<double>(run.events_executed) / wall : 0.0);
  num("peak_rss_bytes", static_cast<double>(PeakRssBytes()));
  FieldGroup energy{"energy",
                    {{"total_j", e.total_j},
                     {"data_movement_j", e.data_movement_j},
                     {"computation_j", e.computation_j},
                     {"storage_access_j", e.storage_access_j}}};
  FieldGroup latency{"kernel_latency_ms",
                     {{"count", static_cast<double>(lat.count())}}};
  if (lat.count() > 0) {
    latency.fields.insert(latency.fields.end(),
                          {{"min", lat.Min()},
                           {"mean", lat.Mean()},
                           {"p50", lat.Percentile(50)},
                           {"p95", lat.Percentile(95)},
                           {"p99", lat.Percentile(99)},
                           {"max", lat.Max()}});
  }
  row.groups.push_back(std::move(energy));
  row.groups.push_back(std::move(latency));
  rows_.push_back(std::move(row));
}

void BenchJson::AddScalarRow(const std::string& label, const std::string& system,
                             const std::vector<std::pair<std::string, double>>& fields,
                             const std::vector<FieldGroup>& groups) {
  if (!enabled()) {
    return;
  }
  Row row;
  row.label = label;
  row.system = system;
  row.fields.push_back({"peak_rss_bytes", static_cast<double>(PeakRssBytes()), false, false});
  for (const auto& [name, value] : fields) {
    row.fields.push_back({name, value, false, false});
  }
  row.groups = groups;
  rows_.push_back(std::move(row));
}

BenchJson::~BenchJson() {
  if (!enabled()) {
    return;
  }
  JsonWriter w;
  w.BeginObject();
  w.Field("schema_version", kJsonSchemaVersion);
  w.Field("bench", bench_name_);
  w.Key("rows").BeginArray();
  for (const Row& row : rows_) {
    w.BeginObject().Field("label", row.label).Field("system", row.system);
    for (const Field& f : row.fields) {
      if (f.is_bool) {
        w.Field(f.name, f.flag);
      } else {
        w.Field(f.name, f.num);
      }
    }
    for (const FieldGroup& g : row.groups) {
      w.Key(g.name).BeginObject();
      for (const auto& [name, value] : g.fields) {
        w.Field(name, value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string path = out_dir_ + "/" + bench_name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace fabacus
