#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/sim/json.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

struct InstanceSet {
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> raw;
};

InstanceSet BuildInstances(const std::vector<const Workload*>& apps, int instances_per_app,
                           double model_scale, std::uint64_t seed) {
  InstanceSet set;
  Rng rng(seed);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (int i = 0; i < instances_per_app; ++i) {
      auto inst = std::make_unique<AppInstance>(static_cast<int>(a), i, &apps[a]->spec(),
                                                model_scale);
      apps[a]->Prepare(*inst, rng);
      set.raw.push_back(inst.get());
      set.owned.push_back(std::move(inst));
    }
  }
  return set;
}

bool VerifyAll(const std::vector<const Workload*>& apps, const InstanceSet& set) {
  bool ok = true;
  for (const auto& inst : set.owned) {
    ok = ok && apps[static_cast<std::size_t>(inst->app_id())]->Verify(*inst);
  }
  return ok;
}

}  // namespace

BenchRun RunFlashAbacusSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                              SchedulerKind kind, double model_scale, std::uint64_t seed) {
  Simulator sim;
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  cfg.model_scale = model_scale;
  FlashAbacus dev(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, model_scale, seed);
  for (AppInstance* inst : set.raw) {
    dev.InstallData(inst, [](Tick) {});
  }
  sim.Run();
  BenchRun run;
  run.system = SchedulerKindName(kind);
  bool done = false;
  dev.Run(set.raw, kind, [&](RunReport r) {
    run.result = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "ERROR: %s run did not complete\n", run.system.c_str());
  }
  run.verified = VerifyAll(apps, set);
  return run;
}

BenchRun RunSimdSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                       double model_scale, std::uint64_t seed, int num_lwps) {
  Simulator sim;
  SimdConfig cfg;
  cfg.model_scale = model_scale;
  cfg.num_lwps = num_lwps;
  SimdSystem simd(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, model_scale, seed);
  for (AppInstance* inst : set.raw) {
    simd.InstallData(inst);
  }
  BenchRun run;
  run.system = "SIMD";
  bool done = false;
  simd.Run(set.raw, [&](RunReport r) {
    run.result = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "ERROR: SIMD run did not complete\n");
  }
  run.verified = VerifyAll(apps, set);
  return run;
}

std::vector<BenchRun> RunAllSystems(const std::vector<const Workload*>& apps,
                                    int instances_per_app, double model_scale,
                                    std::uint64_t seed) {
  std::vector<BenchRun> runs;
  runs.push_back(RunSimdSystem(apps, instances_per_app, model_scale, seed));
  runs.push_back(RunFlashAbacusSystem(apps, instances_per_app, SchedulerKind::kInterStatic,
                                      model_scale, seed));
  runs.push_back(RunFlashAbacusSystem(apps, instances_per_app, SchedulerKind::kIntraInOrder,
                                      model_scale, seed));
  runs.push_back(RunFlashAbacusSystem(apps, instances_per_app, SchedulerKind::kInterDynamic,
                                      model_scale, seed));
  runs.push_back(RunFlashAbacusSystem(apps, instances_per_app,
                                      SchedulerKind::kIntraOutOfOrder, model_scale, seed));
  return runs;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& c : cells) {
    std::printf("%-*s", width, c.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

BenchJson::BenchJson(std::string bench_name) : bench_name_(std::move(bench_name)) {
  const char* dir = std::getenv("FABACUS_BENCH_JSON_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    out_dir_ = dir;
  }
}

void BenchJson::AddRun(const std::string& label, const BenchRun& run) {
  if (!enabled()) {
    return;
  }
  rows_.push_back(Row{label, run.system, run.verified, run.result});
}

BenchJson::~BenchJson() {
  if (!enabled()) {
    return;
  }
  JsonWriter w;
  w.BeginObject();
  w.Field("schema_version", RunReport::kSchemaVersion);
  w.Field("bench", bench_name_);
  w.Key("rows").BeginArray();
  for (const Row& row : rows_) {
    const EnergyBreakdown e = row.report.EnergySummary();
    const Histogram& lat = row.report.kernel_latency_ms;
    w.BeginObject()
        .Field("label", row.label)
        .Field("system", row.system)
        .Field("verified", row.verified)
        .Field("makespan_ms", TicksToMs(row.report.makespan))
        .Field("throughput_mb_s", row.report.throughput_mb_s)
        .Field("worker_utilization", row.report.worker_utilization);
    w.Key("energy")
        .BeginObject()
        .Field("total_j", e.total_j)
        .Field("data_movement_j", e.data_movement_j)
        .Field("computation_j", e.computation_j)
        .Field("storage_access_j", e.storage_access_j)
        .EndObject();
    w.Key("kernel_latency_ms").BeginObject();
    w.Field("count", static_cast<double>(lat.count()));
    if (lat.count() > 0) {
      w.Field("min", lat.Min())
          .Field("mean", lat.Mean())
          .Field("p50", lat.Percentile(50))
          .Field("p95", lat.Percentile(95))
          .Field("p99", lat.Percentile(99))
          .Field("max", lat.Max());
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string path = out_dir_ + "/" + bench_name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace fabacus
