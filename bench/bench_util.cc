#include "bench/bench_util.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/sim/json.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

struct InstanceSet {
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> raw;
};

InstanceSet BuildInstances(const std::vector<const Workload*>& apps, int instances_per_app,
                           double model_scale, std::uint64_t seed) {
  InstanceSet set;
  Rng rng(seed);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (int i = 0; i < instances_per_app; ++i) {
      auto inst = std::make_unique<AppInstance>(static_cast<int>(a), i, &apps[a]->spec(),
                                                model_scale);
      apps[a]->Prepare(*inst, rng);
      set.raw.push_back(inst.get());
      set.owned.push_back(std::move(inst));
    }
  }
  return set;
}

bool VerifyAll(const std::vector<const Workload*>& apps, const InstanceSet& set) {
  bool ok = true;
  for (const auto& inst : set.owned) {
    ok = ok && apps[static_cast<std::size_t>(inst->app_id())]->Verify(*inst);
  }
  return ok;
}

// Wall-clock + engine counters around one simulated run.
class RunMeter {
 public:
  explicit RunMeter(BenchRun* run) : run_(run), start_(std::chrono::steady_clock::now()) {}
  void Finish(const Simulator& sim) {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    run_->wall_seconds = std::chrono::duration<double>(elapsed).count();
    run_->sim_ticks = static_cast<double>(sim.Now());
    run_->events_executed = sim.events_executed();
  }

 private:
  BenchRun* run_;
  std::chrono::steady_clock::time_point start_;
};

// The sweep pool every bench shares (sized once from FABACUS_SWEEP_THREADS /
// hardware concurrency).
const SweepRunner& SharedSweepRunner() {
  static SweepRunner runner;
  return runner;
}

}  // namespace

BenchRun RunFlashAbacusSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                              SchedulerKind kind, const BenchOptions& opt) {
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  cfg.model_scale = opt.model_scale;
  cfg.record_full_trace = opt.record_full_trace;
  return RunFlashAbacusSystem(apps, instances_per_app, kind, cfg, opt);
}

BenchRun RunFlashAbacusSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                              SchedulerKind kind, const FlashAbacusConfig& cfg,
                              const BenchOptions& opt) {
  BenchRun run;
  RunMeter meter(&run);
  Simulator sim(opt.backend);
  FlashAbacus dev(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, cfg.model_scale, opt.seed);
  for (AppInstance* inst : set.raw) {
    dev.InstallData(inst, [](Tick) {});
  }
  sim.Run();
  run.system = SchedulerKindName(kind);
  bool done = false;
  dev.Run(set.raw, kind, [&](RunReport r) {
    run.result = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "ERROR: %s run did not complete\n", run.system.c_str());
  }
  run.verified = VerifyAll(apps, set);
  meter.Finish(sim);
  return run;
}

BenchRun RunSimdSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                       const BenchOptions& opt) {
  BenchRun run;
  RunMeter meter(&run);
  Simulator sim(opt.backend);
  SimdConfig cfg;
  cfg.model_scale = opt.model_scale;
  cfg.num_lwps = opt.num_lwps;
  cfg.record_full_trace = opt.record_full_trace;
  SimdSystem simd(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, opt.model_scale, opt.seed);
  for (AppInstance* inst : set.raw) {
    simd.InstallData(inst);
  }
  run.system = "SIMD";
  bool done = false;
  simd.Run(set.raw, [&](RunReport r) {
    run.result = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "ERROR: SIMD run did not complete\n");
  }
  run.verified = VerifyAll(apps, set);
  meter.Finish(sim);
  return run;
}

std::vector<BenchRun> RunAllSystems(const std::vector<const Workload*>& apps,
                                    int instances_per_app, const BenchOptions& opt) {
  BenchSweep sweep;
  const std::size_t first = sweep.AddAllSystems(apps, instances_per_app, opt);
  sweep.Run();
  return sweep.TakeSystems(first);
}

std::size_t BenchSweep::Add(std::function<BenchRun()> job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t BenchSweep::AddAllSystems(std::vector<const Workload*> apps, int instances_per_app,
                                      const BenchOptions& opt) {
  const std::size_t first =
      Add([apps, instances_per_app, opt]() { return RunSimdSystem(apps, instances_per_app, opt); });
  for (SchedulerKind kind :
       {SchedulerKind::kInterStatic, SchedulerKind::kIntraInOrder, SchedulerKind::kInterDynamic,
        SchedulerKind::kIntraOutOfOrder}) {
    Add([apps, instances_per_app, kind, opt]() {
      return RunFlashAbacusSystem(apps, instances_per_app, kind, opt);
    });
  }
  return first;
}

void BenchSweep::Run() {
  if (executed_ == jobs_.size()) {
    return;
  }
  // The workload registry is built lazily; touch it once on this thread so
  // worker threads only ever read it.
  WorkloadRegistry::Get();
  results_.resize(jobs_.size());
  const std::size_t base = executed_;
  SharedSweepRunner().RunIndexed(jobs_.size() - base, [&](std::size_t i) {
    results_[base + i] = jobs_[base + i]();
  });
  executed_ = jobs_.size();
}

const BenchRun& BenchSweep::Get(std::size_t i) const {
  FAB_CHECK(i < executed_) << "BenchSweep::Get before Run()";
  return results_[i];
}

std::vector<BenchRun> BenchSweep::TakeSystems(std::size_t first) const {
  std::vector<BenchRun> out;
  out.reserve(5);
  for (std::size_t i = first; i < first + 5; ++i) {
    out.push_back(Get(i));
  }
  return out;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& c : cells) {
    std::printf("%-*s", width, c.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::uint64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

BenchJson::BenchJson(std::string bench_name) : bench_name_(std::move(bench_name)) {
  const char* dir = std::getenv("FABACUS_BENCH_JSON_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    out_dir_ = dir;
  }
}

void BenchJson::AddRun(const std::string& label, const BenchRun& run) {
  if (!enabled()) {
    return;
  }
  Row row;
  row.label = label;
  row.system = run.system;
  row.verified = run.verified;
  row.has_report = true;
  row.report = run.result;
  row.wall_seconds = run.wall_seconds;
  row.sim_ticks = run.sim_ticks;
  row.events_executed = run.events_executed;
  row.peak_rss_bytes = PeakRssBytes();
  rows_.push_back(std::move(row));
}

void BenchJson::AddScalarRow(const std::string& label, const std::string& system,
                             const std::vector<std::pair<std::string, double>>& fields) {
  if (!enabled()) {
    return;
  }
  Row row;
  row.label = label;
  row.system = system;
  row.peak_rss_bytes = PeakRssBytes();
  row.scalars = fields;
  rows_.push_back(std::move(row));
}

BenchJson::~BenchJson() {
  if (!enabled()) {
    return;
  }
  JsonWriter w;
  w.BeginObject();
  w.Field("schema_version", RunReport::kSchemaVersion);
  w.Field("bench", bench_name_);
  w.Key("rows").BeginArray();
  for (const Row& row : rows_) {
    if (!row.has_report) {
      w.BeginObject()
          .Field("label", row.label)
          .Field("system", row.system)
          .Field("peak_rss_bytes", static_cast<double>(row.peak_rss_bytes));
      for (const auto& [name, value] : row.scalars) {
        w.Field(name, value);
      }
      w.EndObject();
      continue;
    }
    const EnergyBreakdown e = row.report.EnergySummary();
    const Histogram& lat = row.report.kernel_latency_ms;
    const double wall = row.wall_seconds;
    w.BeginObject()
        .Field("label", row.label)
        .Field("system", row.system)
        .Field("verified", row.verified)
        .Field("makespan_ms", TicksToMs(row.report.makespan))
        .Field("throughput_mb_s", row.report.throughput_mb_s)
        .Field("worker_utilization", row.report.worker_utilization)
        .Field("wall_seconds", wall)
        .Field("sim_ticks_per_wall_second", wall > 0.0 ? row.sim_ticks / wall : 0.0)
        .Field("events_per_second",
               wall > 0.0 ? static_cast<double>(row.events_executed) / wall : 0.0)
        .Field("peak_rss_bytes", static_cast<double>(row.peak_rss_bytes));
    w.Key("energy")
        .BeginObject()
        .Field("total_j", e.total_j)
        .Field("data_movement_j", e.data_movement_j)
        .Field("computation_j", e.computation_j)
        .Field("storage_access_j", e.storage_access_j)
        .EndObject();
    w.Key("kernel_latency_ms").BeginObject();
    w.Field("count", static_cast<double>(lat.count()));
    if (lat.count() > 0) {
      w.Field("min", lat.Min())
          .Field("mean", lat.Mean())
          .Field("p50", lat.Percentile(50))
          .Field("p95", lat.Percentile(95))
          .Field("p99", lat.Percentile(99))
          .Field("max", lat.Max());
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string path = out_dir_ + "/" + bench_name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace fabacus
