#include "bench/bench_util.h"

#include <cstdio>
#include <sstream>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

struct InstanceSet {
  std::vector<std::unique_ptr<AppInstance>> owned;
  std::vector<AppInstance*> raw;
};

InstanceSet BuildInstances(const std::vector<const Workload*>& apps, int instances_per_app,
                           double model_scale, std::uint64_t seed) {
  InstanceSet set;
  Rng rng(seed);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (int i = 0; i < instances_per_app; ++i) {
      auto inst = std::make_unique<AppInstance>(static_cast<int>(a), i, &apps[a]->spec(),
                                                model_scale);
      apps[a]->Prepare(*inst, rng);
      set.raw.push_back(inst.get());
      set.owned.push_back(std::move(inst));
    }
  }
  return set;
}

bool VerifyAll(const std::vector<const Workload*>& apps, const InstanceSet& set) {
  bool ok = true;
  for (const auto& inst : set.owned) {
    ok = ok && apps[static_cast<std::size_t>(inst->app_id())]->Verify(*inst);
  }
  return ok;
}

}  // namespace

BenchRun RunFlashAbacusSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                              SchedulerKind kind, double model_scale, std::uint64_t seed) {
  Simulator sim;
  FlashAbacusConfig cfg;
  cfg.model_scale = model_scale;
  FlashAbacus dev(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, model_scale, seed);
  for (AppInstance* inst : set.raw) {
    dev.InstallData(inst, [](Tick) {});
  }
  sim.Run();
  BenchRun run;
  run.system = SchedulerKindName(kind);
  bool done = false;
  dev.Run(set.raw, kind, [&](RunResult r) {
    run.result = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "ERROR: %s run did not complete\n", run.system.c_str());
  }
  run.verified = VerifyAll(apps, set);
  return run;
}

BenchRun RunSimdSystem(const std::vector<const Workload*>& apps, int instances_per_app,
                       double model_scale, std::uint64_t seed, int num_lwps) {
  Simulator sim;
  SimdConfig cfg;
  cfg.model_scale = model_scale;
  cfg.num_lwps = num_lwps;
  SimdSystem simd(&sim, cfg);
  InstanceSet set = BuildInstances(apps, instances_per_app, model_scale, seed);
  for (AppInstance* inst : set.raw) {
    simd.InstallData(inst);
  }
  BenchRun run;
  run.system = "SIMD";
  bool done = false;
  simd.Run(set.raw, [&](RunResult r) {
    run.result = std::move(r);
    done = true;
  });
  sim.Run();
  if (!done) {
    std::fprintf(stderr, "ERROR: SIMD run did not complete\n");
  }
  run.verified = VerifyAll(apps, set);
  return run;
}

std::vector<BenchRun> RunAllSystems(const std::vector<const Workload*>& apps,
                                    int instances_per_app, double model_scale,
                                    std::uint64_t seed) {
  std::vector<BenchRun> runs;
  runs.push_back(RunSimdSystem(apps, instances_per_app, model_scale, seed));
  runs.push_back(RunFlashAbacusSystem(apps, instances_per_app, SchedulerKind::kInterStatic,
                                      model_scale, seed));
  runs.push_back(RunFlashAbacusSystem(apps, instances_per_app, SchedulerKind::kIntraInOrder,
                                      model_scale, seed));
  runs.push_back(RunFlashAbacusSystem(apps, instances_per_app, SchedulerKind::kInterDynamic,
                                      model_scale, seed));
  runs.push_back(RunFlashAbacusSystem(apps, instances_per_app,
                                      SchedulerKind::kIntraOutOfOrder, model_scale, seed));
  return runs;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& c : cells) {
    std::printf("%-*s", width, c.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace fabacus
