// Ablation: Storengine's background garbage collection vs foreground
// (on-demand) reclamation (§4.3 "Storage management"). A write-heavy
// workload repeatedly overwrites logical ranges on a small flash geometry so
// the free pool keeps draining. With background GC the reclaim overlaps
// kernel I/O; without it every reclaim happens on demand when the pool is
// exhausted, stalling the write path.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/sim/stats.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace fabacus {
namespace {

struct GcOutcome {
  Tick total_time = 0;
  std::uint64_t gc_passes = 0;
  std::uint64_t migrated = 0;
  std::uint64_t erases = 0;
  std::uint64_t foreground = 0;
  double read_mean_us = 0.0;
  double read_p99_us = 0.0;
  double read_max_us = 0.0;
};

GcOutcome RunOverwriteChurn(bool background_gc) {
  Simulator sim;
  FlashAbacusConfig cfg = FlashAbacusConfig::Paper();
  cfg.nand.blocks_per_plane = 24;
  cfg.nand.pages_per_block = 32;  // 24 block groups of 128 groups (small)
  cfg.storengine.enable_background_gc = background_gc;
  cfg.storengine.gc_interval = 2 * kMs;
  cfg.storengine.gc_high_watermark = 8;
  cfg.flashvisor.gc_low_watermark = 3;
  FlashAbacus dev(&sim, cfg);
  dev.storengine().Start();

  // Overwrite a 4-block-group-sized logical window repeatedly: every pass
  // invalidates the previous pass's groups, creating GC work.
  const std::uint64_t group_bytes = cfg.nand.GroupBytes();
  const std::uint64_t window_groups = 4 * (cfg.nand.GroupsPerBlockGroup() - 2);
  const std::uint64_t window_bytes = window_groups * group_bytes;
  const std::uint64_t base = dev.flashvisor().AllocLogicalExtent(window_bytes);
  // A separate single-group extent for the latency probe (never overwritten,
  // so probe reads never contend on the range lock — only on the device).
  const std::uint64_t probe_addr = dev.flashvisor().AllocLogicalExtent(group_bytes);
  {
    Flashvisor::IoRequest seed;
    seed.type = Flashvisor::IoRequest::Type::kWrite;
    seed.flash_addr = probe_addr;
    seed.model_bytes = group_bytes;
    seed.on_complete = [](Tick, IoStatus) {};
    dev.flashvisor().SubmitIo(std::move(seed));
  }

  // Each pass is followed by a compute window (as between kernel output
  // bursts); background GC can reclaim inside these windows, on-demand GC
  // cannot run ahead of need.
  constexpr int kPasses = 12;
  constexpr Tick kComputeGap = 60 * kMs;
  int done = 0;
  std::function<void()> write_pass = [&]() {
    Flashvisor::IoRequest req;
    req.type = Flashvisor::IoRequest::Type::kWrite;
    req.flash_addr = base;
    req.model_bytes = window_bytes;
    req.on_complete = [&](Tick, IoStatus) {
      if (++done < kPasses) {
        // Next burst once the previous one has drained to flash plus a
        // compute window — the write buffer does not grow without bound.
        const Tick drain = std::max(dev.flashvisor().write_drain_horizon(), sim.Now());
        sim.ScheduleAt(drain + kComputeGap, write_pass);
      } else {
        // Disarm the periodic background tasks so the event queue drains.
        dev.storengine().Stop();
      }
    };
    dev.flashvisor().SubmitIo(std::move(req));
  };
  write_pass();

  // A latency-sensitive reader probes a 64 KB group every 5 ms while the
  // churn runs: the victim of any reclamation happening on its critical path.
  Histogram read_lat;
  bool stop_reader = false;
  std::function<void()> reader = [&]() {
    if (stop_reader) {
      return;
    }
    const Tick issued = sim.Now();
    Flashvisor::IoRequest req;
    req.type = Flashvisor::IoRequest::Type::kRead;
    req.flash_addr = probe_addr;
    req.model_bytes = group_bytes;
    req.on_complete = [&, issued](Tick t, IoStatus) {
      read_lat.Record(TicksToUs(t - issued));
      if (done < kPasses) {
        sim.Schedule(5 * kMs, reader);
      }
    };
    dev.flashvisor().SubmitIo(std::move(req));
  };
  reader();
  sim.Run();
  stop_reader = true;

  GcOutcome out;
  out.total_time = sim.Now();
  out.gc_passes = dev.storengine().gc_passes();
  out.migrated = dev.storengine().groups_migrated();
  out.erases = dev.backbone().erases();
  out.foreground = dev.flashvisor().foreground_reclaims();
  if (read_lat.count() > 0) {
    out.read_mean_us = read_lat.Mean();
    out.read_p99_us = read_lat.Percentile(99);
    out.read_max_us = read_lat.Max();
  }
  return out;
}

}  // namespace
}  // namespace fabacus

int main() {
  using namespace fabacus;
  PrintHeader("Ablation: background (Storengine) vs on-demand garbage collection");
  std::vector<std::function<GcOutcome()>> jobs;
  jobs.emplace_back([] { return RunOverwriteChurn(true); });
  jobs.emplace_back([] { return RunOverwriteChurn(false); });
  const std::vector<GcOutcome> outcomes = SweepRunner().Run(std::move(jobs));
  const GcOutcome& bg = outcomes[0];
  const GcOutcome& fg = outcomes[1];
  PrintRow({"mode", "bg passes", "fg reclaims", "read mean(us)", "read p99(us)",
            "read max(us)"},
           16);
  PrintRow({"background", Fmt(static_cast<double>(bg.gc_passes), 0),
            Fmt(static_cast<double>(bg.foreground), 0), Fmt(bg.read_mean_us),
            Fmt(bg.read_p99_us), Fmt(bg.read_max_us)},
           16);
  PrintRow({"on-demand", Fmt(static_cast<double>(fg.gc_passes), 0),
            Fmt(static_cast<double>(fg.foreground), 0), Fmt(fg.read_mean_us),
            Fmt(fg.read_p99_us), Fmt(fg.read_max_us)},
           16);
  BenchJson json("bench_ablation_gc");
  for (const auto& [label, o] : {std::pair<const char*, const GcOutcome&>{"background", bg},
                                 {"on-demand", fg}}) {
    json.AddScalarRow(label, "IntraO3",
                      {{"total_time_ms", TicksToMs(o.total_time)},
                       {"gc_passes", static_cast<double>(o.gc_passes)},
                       {"groups_migrated", static_cast<double>(o.migrated)},
                       {"erases", static_cast<double>(o.erases)},
                       {"foreground_reclaims", static_cast<double>(o.foreground)},
                       {"read_mean_us", o.read_mean_us},
                       {"read_p99_us", o.read_p99_us},
                       {"read_max_us", o.read_max_us}});
  }
  std::printf("\nBackground GC reclaims ahead of demand, keeping the write path from\n"
              "stalling on pool exhaustion (paper: Storengine overlaps reclamation with\n"
              "kernel execution and address translation).\n");
  return 0;
}
