// Fleet scale-out: aggregate serving throughput across 1/2/4 simulated
// devices under open-loop Poisson traffic at a fixed per-device arrival
// rate, for each placement policy (docs/FLEET.md).
//
// With the offered load scaled in proportion to the fleet, an ideal fleet
// serves 4x the requests of a single device in the same span; queueing,
// shedding and placement skew eat into that. The table reports per-policy
// aggregate throughput, client-latency percentiles, shed rate and re-route
// retries, plus the 1->4 device scaling factor (target: >= 3x).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/fleet/fleet.h"

namespace fabacus {
namespace {

constexpr double kPerDeviceRate = 200.0;  // arrivals/s offered per device
constexpr int kPerDeviceRequests = 24;    // requests offered per device

FleetConfig MakeConfig(int devices, PlacementPolicy policy) {
  FleetConfig cfg;
  cfg.num_devices = devices;
  cfg.policy = policy;
  cfg.traffic.model = TrafficConfig::Model::kOpenLoop;
  cfg.traffic.seed = 42;
  cfg.traffic.num_clients = 8;
  cfg.traffic.arrival_rate_per_s = kPerDeviceRate * devices;
  cfg.traffic.total_requests = kPerDeviceRequests * devices;
  cfg.max_route_attempts = 1;  // keeps every policy on the partitioned path
  return cfg;
}

struct Cell {
  int devices;
  FleetReport rep;
};

void Run(BenchJson* json) {
  const std::vector<PlacementPolicy> policies = {PlacementPolicy::kRoundRobin,
                                                 PlacementPolicy::kLeastOutstanding,
                                                 PlacementPolicy::kDataAffinity};
  const std::vector<int> device_counts = {1, 2, 4};

  PrintHeader("Fleet scale-out: aggregate throughput vs device count (" +
              Fmt(kPerDeviceRate, 0) + " req/s offered per device)");
  PrintRow({"policy", "devices", "exec", "served", "shed%", "retries", "req/s", "MB/s",
            "p50 ms", "p99 ms", "util", "inst hits", "verified"});

  std::vector<std::vector<Cell>> by_policy;
  for (PlacementPolicy policy : policies) {
    by_policy.emplace_back();
    for (int devices : device_counts) {
      FleetConfig cfg = MakeConfig(devices, policy);
      if (!PolicyIsOblivious(policy) && devices > 1) {
        cfg.max_route_attempts = 2;  // state-aware: lockstep anyway, use retries
      }
      FleetReport rep = RunFleet(cfg);

      double util = 0.0;
      std::uint64_t hits = 0;
      for (const FleetDeviceStats& d : rep.devices) {
        util += d.utilization;
        hits += d.install_hits;
      }
      util /= static_cast<double>(rep.devices.size());
      const double shed_pct =
          rep.offered > 0 ? 100.0 * static_cast<double>(rep.shed) /
                                static_cast<double>(rep.offered)
                          : 0.0;
      const double p50 = rep.latency_ms.count() > 0 ? rep.latency_ms.Percentile(50) : 0.0;
      const double p99 = rep.latency_ms.count() > 0 ? rep.latency_ms.Percentile(99) : 0.0;

      const char* short_name = policy == PlacementPolicy::kRoundRobin        ? "rr"
                               : policy == PlacementPolicy::kLeastOutstanding ? "least-out"
                                                                              : "affinity";
      PrintRow({short_name, std::to_string(devices), rep.execution,
                std::to_string(rep.served), Fmt(shed_pct, 1),
                std::to_string(rep.route_retries), Fmt(rep.throughput_rps, 1),
                Fmt(rep.served_mb_s, 2), Fmt(p50, 2), Fmt(p99, 2), Fmt(util, 2),
                std::to_string(hits), rep.verified ? "yes" : "NO"});

      json->AddScalarRow("d" + std::to_string(devices), rep.policy,
                         {{"devices", static_cast<double>(devices)},
                          {"offered", static_cast<double>(rep.offered)},
                          {"served", static_cast<double>(rep.served)},
                          {"shed", static_cast<double>(rep.shed)},
                          {"route_retries", static_cast<double>(rep.route_retries)},
                          {"slo_violations", static_cast<double>(rep.slo_violations)},
                          {"throughput_rps", rep.throughput_rps},
                          {"served_mb_s", rep.served_mb_s},
                          {"latency_p50_ms", p50},
                          {"latency_p99_ms", p99},
                          {"shed_rate", shed_pct / 100.0},
                          {"mean_utilization", util},
                          {"install_hits", static_cast<double>(hits)},
                          {"makespan_ms", TicksToMs(rep.makespan)},
                          {"verified", rep.verified ? 1.0 : 0.0}});
      by_policy.back().push_back({devices, std::move(rep)});
    }
  }

  std::printf("\nAggregate throughput scaling, 1 -> %d devices (ideal %.1fx, target >= 3x):\n",
              device_counts.back(), static_cast<double>(device_counts.back()));
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const Cell& one = by_policy[p].front();
    const Cell& top = by_policy[p].back();
    const double scaling = one.rep.throughput_rps > 0.0
                               ? top.rep.throughput_rps / one.rep.throughput_rps
                               : 0.0;
    std::printf("  %-18s %.2fx\n", PlacementPolicyName(policies[p]), scaling);
  }
}

// Warm start (docs/SNAPSHOT.md): serve one window cold, snapshot the fleet
// (pre-filled flash + install caches + traffic stream position), resume into
// a fresh fleet and serve the next window warm. The warm window should serve
// from flash-resident datasets — install writes near zero, install hits up —
// which is the steady-state measurement the cold window understates.
void WarmStart(BenchJson* json) {
  FleetConfig cfg = MakeConfig(4, PlacementPolicy::kDataAffinity);
  const std::string snap_path = "bench_fleet_scaleout_warm.snap";

  PrintHeader("Warm start from a fleet snapshot (affinity, " +
              std::to_string(cfg.num_devices) + " devices)");
  PrintRow({"window", "served", "installs", "inst hits", "req/s", "MB/s", "verified"});

  FleetSim cold(cfg);
  const FleetReport cold_rep = cold.Run();
  std::string err;
  if (!cold.Snapshot(snap_path, &err)) {
    std::fprintf(stderr, "bench_fleet_scaleout: snapshot failed: %s\n", err.c_str());
    return;
  }
  FleetSim warm(cfg);
  if (!warm.Resume(snap_path, &err)) {
    std::fprintf(stderr, "bench_fleet_scaleout: resume failed: %s\n", err.c_str());
    std::remove(snap_path.c_str());
    return;
  }
  const FleetReport warm_rep = warm.Run();
  std::remove(snap_path.c_str());

  const auto emit = [&](const char* window, const FleetReport& rep) {
    std::uint64_t installs = 0;
    std::uint64_t hits = 0;
    for (const FleetDeviceStats& d : rep.devices) {
      installs += d.installs;
      hits += d.install_hits;
    }
    PrintRow({window, std::to_string(rep.served), std::to_string(installs),
              std::to_string(hits), Fmt(rep.throughput_rps, 1),
              Fmt(rep.served_mb_s, 2), rep.verified ? "yes" : "NO"});
    json->AddScalarRow("warm_start", window,
                       {{"served", static_cast<double>(rep.served)},
                        {"installs", static_cast<double>(installs)},
                        {"install_hits", static_cast<double>(hits)},
                        {"throughput_rps", rep.throughput_rps},
                        {"served_mb_s", rep.served_mb_s},
                        {"makespan_ms", TicksToMs(rep.makespan)},
                        {"verified", rep.verified ? 1.0 : 0.0}});
  };
  emit("cold", cold_rep);
  emit("warm", warm_rep);
}

}  // namespace
}  // namespace fabacus

int main() {
  fabacus::BenchJson json("bench_fleet_scaleout");
  fabacus::Run(&json);
  fabacus::WarmStart(&json);
  return 0;
}
